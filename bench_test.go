// Package repro's root benchmark harness: one testing.B benchmark per table
// and figure of the paper. Each iteration regenerates the experiment from
// scratch (fresh models, fresh caches) and reports the headline metric of
// that table/figure via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. cmd/sigtables prints the full tables.
package repro

import (
	"testing"

	"repro/internal/activity"
	"repro/internal/bench"
	"repro/internal/icomp"
	"repro/internal/pcincr"
	"repro/internal/pipeline"
	"repro/internal/sigalu"
	"repro/internal/trace"
)

// suiteRecoder builds the profile-driven recoder once per process (the
// paper's Table 3 profiling step); its cost is charged to
// BenchmarkTable3FunctProfile, which measures exactly that step.
var suiteRecoder *icomp.Recoder

func recoder(b *testing.B) *icomp.Recoder {
	b.Helper()
	if suiteRecoder == nil {
		rc, _, err := trace.SuiteRecoder(bench.All())
		if err != nil {
			b.Fatal(err)
		}
		suiteRecoder = rc
	}
	return suiteRecoder
}

// BenchmarkTable1Patterns regenerates the significant-byte pattern
// frequencies (Table 1) over the full suite and reports the share of the
// dominant single-byte pattern.
func BenchmarkTable1Patterns(b *testing.B) {
	rc := recoder(b)
	for i := 0; i < b.N; i++ {
		ps := activity.NewPatternStats()
		for _, bm := range bench.All() {
			if _, err := trace.Run(bm, rc, ps); err != nil {
				b.Fatal(err)
			}
		}
		rows := ps.Rows()
		b.ReportMetric(rows[0].Percent, "top-pattern-%")
		b.ReportMetric(ps.TwoBitCoverage(), "2bit-coverage-%")
	}
}

// BenchmarkTable2PCIncrement regenerates the block-serial PC increment
// estimates (Table 2): the analytic series cross-checked against an
// empirical run over the traced PC stream of the suite.
func BenchmarkTable2PCIncrement(b *testing.B) {
	rc := recoder(b)
	for i := 0; i < b.N; i++ {
		emp := pcincr.NewEmpirical(8)
		for _, bm := range bench.All() {
			consumer := trace.ConsumerFunc(func(e trace.Event) {
				if e.NextPC == e.PC+4 {
					emp.Step(e.PC >> 2)
				}
			})
			if _, err := trace.Run(bm, rc, consumer); err != nil {
				b.Fatal(err)
			}
		}
		aAnalytic, _ := pcincr.Analytic(8)
		b.ReportMetric(emp.Activity(), "bits/incr-empirical")
		b.ReportMetric(aAnalytic, "bits/incr-analytic")
	}
}

// BenchmarkTable3FunctProfile regenerates the dynamic function-code
// histogram (Table 3) and reports the coverage of the recoded top-8.
func BenchmarkTable3FunctProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		counts, err := trace.FunctProfile(bench.All())
		if err != nil {
			b.Fatal(err)
		}
		var total, top uint64
		for _, n := range counts {
			total += n
		}
		for _, fn := range icomp.TopFuncts(counts, 8) {
			top += counts[fn]
		}
		b.ReportMetric(100*float64(top)/float64(total), "top8-coverage-%")
	}
}

// activityBench drives Tables 5 and 6: full-suite activity accounting at
// the given granularity, reporting the mean reduction of the RF-read and
// ALU columns.
func activityBench(b *testing.B, g int) {
	rc := recoder(b)
	for i := 0; i < b.N; i++ {
		var rfSum, aluSum float64
		suite := bench.All()
		for _, bm := range suite {
			c, err := bm.NewCPU()
			if err != nil {
				b.Fatal(err)
			}
			col := activity.NewCollector(g, rc, c.Mem)
			if err := trace.RunOn(c, bm, rc, col); err != nil {
				b.Fatal(err)
			}
			rfSum += col.Counts().RFRead.Reduction()
			aluSum += col.Counts().ALU.Reduction()
		}
		b.ReportMetric(rfSum/float64(len(suite)), "rfread-saving-%")
		b.ReportMetric(aluSum/float64(len(suite)), "alu-saving-%")
	}
}

// BenchmarkTable5ActivityByte regenerates Table 5 (byte granularity).
func BenchmarkTable5ActivityByte(b *testing.B) { activityBench(b, 1) }

// BenchmarkTable6ActivityHalf regenerates Table 6 (halfword granularity).
func BenchmarkTable6ActivityHalf(b *testing.B) { activityBench(b, 2) }

// cpiBench drives the CPI figures: the named models over the full suite,
// reporting each model's mean CPI.
func cpiBench(b *testing.B, names ...string) {
	rc := recoder(b)
	for i := 0; i < b.N; i++ {
		sums := make([]float64, len(names))
		suite := bench.All()
		for _, bm := range suite {
			models := make([]*pipeline.Model, len(names))
			consumers := make([]trace.Consumer, len(names))
			for j, n := range names {
				models[j] = pipeline.New(n)
				consumers[j] = models[j]
			}
			if _, err := trace.Run(bm, rc, consumers...); err != nil {
				b.Fatal(err)
			}
			for j, m := range models {
				sums[j] += m.Result().CPI()
			}
		}
		for j, n := range names {
			b.ReportMetric(sums[j]/float64(len(suite)), n+"-CPI")
		}
	}
}

// BenchmarkFig4ByteSerialCPI regenerates Figure 4: baseline vs byte-serial
// (and the 16-bit serial variant discussed with it).
func BenchmarkFig4ByteSerialCPI(b *testing.B) {
	cpiBench(b, pipeline.NameBaseline32, pipeline.NameByteSerial, pipeline.NameHalfwordSerial)
}

// BenchmarkFig6SemiParallelCPI regenerates Figure 6: baseline vs byte
// semi-parallel vs byte-serial.
func BenchmarkFig6SemiParallelCPI(b *testing.B) {
	cpiBench(b, pipeline.NameBaseline32, pipeline.NameSemiParallel, pipeline.NameByteSerial)
}

// BenchmarkFig8SkewedCPI regenerates Figure 8: baseline vs byte-parallel
// skewed.
func BenchmarkFig8SkewedCPI(b *testing.B) {
	cpiBench(b, pipeline.NameBaseline32, pipeline.NameParallelSkewed)
}

// BenchmarkFig10ParallelCPI regenerates Figure 10: baseline vs
// skewed+bypass vs compressed.
func BenchmarkFig10ParallelCPI(b *testing.B) {
	cpiBench(b, pipeline.NameBaseline32, pipeline.NameParallelSkewedBypass, pipeline.NameParallelCompressed)
}

// BenchmarkBottleneckStudy regenerates the §5 stall analysis of the
// byte-serial design, reporting the EX structural share (paper: 72%).
func BenchmarkBottleneckStudy(b *testing.B) {
	rc := recoder(b)
	for i := 0; i < b.N; i++ {
		var ex, total uint64
		for _, bm := range bench.All() {
			m := pipeline.NewByteSerial()
			if _, err := trace.Run(bm, rc, m); err != nil {
				b.Fatal(err)
			}
			for k, v := range m.Result().Stalls {
				total += v
				if k == pipeline.StallStructEX {
					ex += v
				}
			}
		}
		b.ReportMetric(100*float64(ex)/float64(total), "ex-stall-share-%")
	}
}

// BenchmarkInterpreter measures raw functional-simulation speed
// (instructions per second of the substrate itself).
func BenchmarkInterpreter(b *testing.B) {
	bm, _ := bench.ByName("crc32")
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		c, err := bm.NewCPU()
		if err != nil {
			b.Fatal(err)
		}
		n, err := c.Run(bm.MaxInsts)
		if err != nil {
			b.Fatal(err)
		}
		insts += n
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkAblationScheme regenerates the 2-bit vs 3-bit scheme comparison
// (§2.1's trade-off), reporting both schemes' mean RF-read savings.
func BenchmarkAblationScheme(b *testing.B) {
	rc := recoder(b)
	for i := 0; i < b.N; i++ {
		var rf3, rf2 float64
		suite := bench.All()
		for _, bm := range suite {
			c, err := bm.NewCPU()
			if err != nil {
				b.Fatal(err)
			}
			c3 := activity.NewCollector(1, rc, c.Mem)
			c2 := activity.NewCollectorScheme(1, activity.Scheme2, rc, c.Mem)
			if err := trace.RunOn(c, bm, rc, c3, c2); err != nil {
				b.Fatal(err)
			}
			rf3 += c3.Counts().RFRead.Reduction()
			rf2 += c2.Counts().RFRead.Reduction()
		}
		b.ReportMetric(rf3/float64(len(suite)), "rfread-3bit-%")
		b.ReportMetric(rf2/float64(len(suite)), "rfread-2bit-%")
	}
}

// BenchmarkAblationPrediction regenerates the branch-prediction study (§3
// future work), reporting baseline CPI with and without the predictor.
func BenchmarkAblationPrediction(b *testing.B) {
	rc := recoder(b)
	for i := 0; i < b.N; i++ {
		var plain, predicted float64
		suite := bench.All()
		for _, bm := range suite {
			m0 := pipeline.NewBaseline32()
			m1 := pipeline.NewPredicted(pipeline.NameBaseline32)
			if _, err := trace.Run(bm, rc, m0, m1); err != nil {
				b.Fatal(err)
			}
			plain += m0.Result().CPI()
			predicted += m1.Result().CPI()
		}
		b.ReportMetric(plain/float64(len(suite)), "baseline-CPI")
		b.ReportMetric(predicted/float64(len(suite)), "baseline+bp-CPI")
	}
}

// BenchmarkAblationPartition regenerates the word-partition study (§2.1
// future work), reporting the best candidate's and the paper byte scheme's
// mean stored bits per operand value.
func BenchmarkAblationPartition(b *testing.B) {
	rc := recoder(b)
	for i := 0; i < b.N; i++ {
		ps := activity.NewPartitionStats()
		for _, bm := range bench.All() {
			if _, err := trace.Run(bm, rc, ps); err != nil {
				b.Fatal(err)
			}
		}
		rows := ps.Rows()
		b.ReportMetric(rows[0].MeanBits, "best-bits/value")
		for _, row := range rows {
			if row.Name == "8-8-8-8 (paper byte)" {
				b.ReportMetric(row.MeanBits, "paper-byte-bits/value")
			}
		}
	}
}

// BenchmarkTable4Derivation regenerates the exact Case-3 exception classes
// (Table 4) by exhaustive enumeration, reporting the class count.
func BenchmarkTable4Derivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sigalu.DeriveTable4()
		b.ReportMetric(float64(len(rows)), "exception-classes")
	}
}
