// Batch replay: column-block fan-out of a Capture.
//
// Scalar replay (ReplayOn) materializes one Event per instruction and calls
// every consumer once per event — clean, but the per-event costs (a 200-byte
// Event copy into each Consume call, plus whatever per-event bookkeeping the
// consumer does) dominate replay time. Batch replay instead hands consumers
// *column blocks*: contiguous slices of the six u32 capture columns plus the
// per-block statics annotation table, so a batch-aware consumer can run
// branch-free kernels over whole columns and amortize its per-instruction
// overheads to (near) zero. Consumers that do not implement BatchConsumer
// are driven through a scalar-compatibility shim that reconstructs events
// exactly as ReplayOn does, so the two paths are bit-identical by
// construction for scalar consumers and by test for batch ones.
//
// Memory ordering. The scalar path applies each captured store just before
// fanning out its event, and memory-reading consumers (the activity
// collectors read cache-line contents at fill time) depend on that order. A
// block of rows spanning a store cannot simply be fanned out after applying
// all its stores — a consumer filling a cache line at row i must not observe
// a store from row j > i. ReplayBlocksOn therefore splits each block at
// store rows: rows [lo, i) are emitted, store i is applied, and the next
// span starts at i (the store row itself is emitted in the following span,
// after its own store has landed — the same state-then-consume order as the
// live loop and ReplayOn). With a nil memory image no splitting is needed
// and blocks are emitted whole.
package trace

import (
	"context"
	"fmt"

	"repro/internal/icomp"
	"repro/internal/mem"
)

// BlockRows is the batch replay span size: large enough to amortize
// per-block overhead, small enough that a block's columns stay cache
// resident while consumers sweep them.
const BlockRows = 4096

// PackedSig is one entry of the packed significance column. The accessors
// unpack the ten recoder-independent quantities (same values as the
// corresponding Event fields).
type PackedSig uint32

// SrcBytesA returns the significant byte count of source A (0 if not read).
func (s PackedSig) SrcBytesA() int { return int(s >> sigSrcBytesAShift & 7) }

// SrcBytesB returns the significant byte count of source B (0 if not read).
func (s PackedSig) SrcBytesB() int { return int(s >> sigSrcBytesBShift & 7) }

// SrcHalvesA returns the significant halfword count of source A.
func (s PackedSig) SrcHalvesA() int { return int(s >> sigSrcHalvesAShift & 3) }

// SrcHalvesB returns the significant halfword count of source B.
func (s PackedSig) SrcHalvesB() int { return int(s >> sigSrcHalvesBShift & 3) }

// ALUOps returns the significance-ALU byte operation count.
func (s PackedSig) ALUOps() int { return int(s >> sigALUOpsShift & 15) }

// ALUHalfOps returns the significance-ALU halfword operation count.
func (s PackedSig) ALUHalfOps() int { return int(s >> sigALUHalfShift & 7) }

// MemBytes returns the significant bytes moved by the data access.
func (s PackedSig) MemBytes() int { return int(s >> sigMemBytesShift & 7) }

// MemHalves returns the significant halfwords moved by the data access.
func (s PackedSig) MemHalves() int { return int(s >> sigMemHalvesShift & 3) }

// WBBytes returns the significant bytes of the written-back result.
func (s PackedSig) WBBytes() int { return int(s >> sigWBBytesShift & 7) }

// WBHalves returns the significant halfwords of the written-back result.
func (s PackedSig) WBHalves() int { return int(s >> sigWBHalvesShift & 3) }

// MaxSrcBytes mirrors Event.MaxSrcBytes: the larger significant-byte count
// of the two sources, floored at 1.
func (s PackedSig) MaxSrcBytes() int {
	a, b := s.SrcBytesA(), s.SrcBytesB()
	if b > a {
		a = b
	}
	if a == 0 {
		a = 1
	}
	return a
}

// MaxSrcHalves mirrors Event.MaxSrcHalves.
func (s PackedSig) MaxSrcHalves() int {
	a, b := s.SrcHalvesA(), s.SrcHalvesB()
	if b > a {
		a = b
	}
	if a == 0 {
		a = 1
	}
	return a
}

// Block is one contiguous span of a capture's columns, handed to
// BatchConsumers during batch replay. The column slices alias the capture's
// storage and are valid only for the duration of the ConsumeBlock call;
// consumers must not retain or mutate them.
//
// Row i of the block is instruction Start+i of the trace. Slot[i]'s low bits
// (SlotMask) index Statics and IFB; its top bit (TakenBit) is the branch
// outcome. Sig[i] is a PackedSig. The next-PC of row i is PC[i+1] within the
// block, or EndNextPC for the final row.
type Block struct {
	// Start is the trace-global index of row 0.
	Start int

	// The six capture columns, one entry per row.
	Slot   []uint32
	PC     []uint32
	SrcA   []uint32
	SrcB   []uint32
	Result []uint32
	Sig    []uint32

	// EndNextPC is the NextPC of the block's final row (the PC of the first
	// instruction after the block, or the trace's final NextPC).
	EndNextPC uint32

	// Statics is the capture's annotation table, indexed by Slot[i]&SlotMask.
	Statics []Static

	// IFB is the per-statics-slot compressed fetch size (3 or 4) under the
	// replay's recoder, indexed like Statics.
	IFB []uint8
}

// Len returns the number of rows in the block.
func (b *Block) Len() int { return len(b.Slot) }

// EventAt reconstructs row i of the block into *ev, exactly as the scalar
// replay path would have built it. The reused *ev pattern (instead of
// returning an Event) keeps the 200-byte struct out of per-row copies.
func (b *Block) EventAt(i int, ev *Event) {
	sw := b.Slot[i]
	st := &b.Statics[sw&SlotMask]
	*ev = Event{}
	e := &ev.Exec
	e.PC = b.PC[i]
	e.Raw = st.Inst.Raw
	e.Inst = st.Inst
	e.SrcA, e.ReadsA = b.SrcA[i], st.ReadsA
	e.SrcB, e.ReadsB = b.SrcB[i], st.ReadsB
	if st.HasDest {
		e.Dest, e.Result, e.HasDest = st.Dest, b.Result[i], true
	}
	e.Taken = sw&TakenBit != 0
	if i+1 < len(b.PC) {
		e.NextPC = b.PC[i+1]
	} else {
		e.NextPC = b.EndNextPC
	}
	if st.MemWidth > 0 {
		e.Addr = e.SrcA + st.Simm
		e.MemWidth = int(st.MemWidth)
		if st.IsStore {
			e.StoreVal = e.SrcB
		} else {
			e.Loaded = b.Result[i]
		}
	}
	s := PackedSig(b.Sig[i])
	ev.IFBytes = int(b.IFB[sw&SlotMask])
	ev.SrcBytesA = s.SrcBytesA()
	ev.SrcBytesB = s.SrcBytesB()
	ev.SrcHalvesA = s.SrcHalvesA()
	ev.SrcHalvesB = s.SrcHalvesB()
	ev.ALUOps = s.ALUOps()
	ev.ALUHalfOps = s.ALUHalfOps()
	ev.MemBytes = s.MemBytes()
	ev.MemHalves = s.MemHalves()
	ev.WBBytes = s.WBBytes()
	ev.WBHalves = s.WBHalves()
}

// BatchConsumer is a Consumer that can additionally ingest whole column
// blocks. Batch replay feeds ConsumeBlock; the embedded scalar Consume keeps
// the type usable with live runs and scalar replay unchanged.
type BatchConsumer interface {
	Consumer
	ConsumeBlock(b *Block)
}

// scalarShim adapts plain Consumers to the block interface by materializing
// events row by row — the compatibility path that keeps every existing
// consumer working under batch replay with unchanged semantics.
type scalarShim struct {
	consumers []Consumer
	ev        Event
}

func (s *scalarShim) Consume(e Event) {
	for _, c := range s.consumers {
		c.Consume(e)
	}
}

func (s *scalarShim) ConsumeBlock(b *Block) {
	for i := range b.Slot {
		b.EventAt(i, &s.ev)
		for _, c := range s.consumers {
			c.Consume(s.ev)
		}
	}
}

// ReplayBlocks is batch replay without a memory image: the recorded stores
// are not applied anywhere, which is sufficient for consumers that never
// read program memory (the pipeline timing models). Consumers that read
// memory (activity collectors) need ReplayBlocksOn with the benchmark's
// initial image (NewMemory), or the top-level BatchReplay.
func (cp *Capture) ReplayBlocks(ctx context.Context, rc *icomp.Recoder, consumers ...Consumer) error {
	return cp.ReplayBlocksOn(ctx, nil, rc, consumers...)
}

// BatchReplay is the batch twin of Replay: it rebuilds the benchmark's
// memory image and fans the trace out in column blocks, bit-identical to a
// live run for every consumer (batch-aware or not).
func (cp *Capture) BatchReplay(ctx context.Context, rc *icomp.Recoder, consumers ...Consumer) error {
	m, err := cp.NewMemory()
	if err != nil {
		return err
	}
	return cp.ReplayBlocksOn(ctx, m, rc, consumers...)
}

// ReplayBlocksOn is the batch twin of ReplayOn: it fans the capture out to
// the consumers in column blocks of up to BlockRows rows. BatchConsumers
// receive blocks directly; plain Consumers are driven through the scalar
// shim. With a non-nil memory image the blocks are additionally split at
// store rows so every consumer observes memory exactly as the live run did
// (see the package comment on memory ordering).
func (cp *Capture) ReplayBlocksOn(ctx context.Context, m *mem.Memory, rc *icomp.Recoder, consumers ...Consumer) error {
	ifb := cp.ifBytes(rc)
	sinks := gatherSinks(consumers)
	blk := Block{Statics: cp.statics, IFB: ifb}
	n := len(cp.slot)
	for base := 0; base < n; base += BlockRows {
		select {
		case <-ctx.Done():
			return fmt.Errorf("trace: replaying %s aborted after %d instructions: %w", cp.bench.Name, base, ctx.Err())
		default:
		}
		hi := base + BlockRows
		if hi > n {
			hi = n
		}
		endNextPC := cp.lastNextPC
		if hi < n {
			endNextPC = cp.pc[hi]
		}
		emitSpans(&blk, m, sinks, base,
			cp.slot[base:hi], cp.pc[base:hi], cp.srcA[base:hi], cp.srcB[base:hi],
			cp.result[base:hi], cp.sig[base:hi], endNextPC)
	}
	return nil
}

// gatherSinks partitions consumers into the block fan-out set: batch-aware
// consumers receive blocks directly, everything else rides one shared
// scalar-compatibility shim.
func gatherSinks(consumers []Consumer) []BatchConsumer {
	var sinks []BatchConsumer
	var scalars []Consumer
	for _, c := range consumers {
		if bc, ok := c.(BatchConsumer); ok {
			sinks = append(sinks, bc)
		} else {
			scalars = append(scalars, c)
		}
	}
	if len(scalars) > 0 {
		sinks = append(sinks, &scalarShim{consumers: scalars})
	}
	return sinks
}

// emitSpans fans one contiguous decoded column span out to the sinks,
// splitting at store rows when a memory image is present: rows [lo, i) are
// emitted, store i is applied, and the next span starts at i — the store
// row's own event is observed only after its store has landed, and before
// any later one, exactly like the scalar loop. Both residency tiers
// (in-memory ReplayBlocksOn and the streaming frame replayer) share this,
// so their memory ordering cannot diverge. start is the trace-global index
// of span row 0; endNextPC is the NextPC of the span's final row. blk
// carries the Statics/IFB annotation tables and is reused across calls.
func emitSpans(blk *Block, m *mem.Memory, sinks []BatchConsumer, start int,
	slot, pc, srcA, srcB, result, sig []uint32, endNextPC uint32) {
	n := len(slot)
	emit := func(lo, hi int) {
		if lo >= hi {
			return
		}
		blk.Start = start + lo
		blk.Slot = slot[lo:hi]
		blk.PC = pc[lo:hi]
		blk.SrcA = srcA[lo:hi]
		blk.SrcB = srcB[lo:hi]
		blk.Result = result[lo:hi]
		blk.Sig = sig[lo:hi]
		if hi < n {
			blk.EndNextPC = pc[hi]
		} else {
			blk.EndNextPC = endNextPC
		}
		for _, bc := range sinks {
			bc.ConsumeBlock(blk)
		}
	}
	if m == nil {
		emit(0, n)
		return
	}
	lo := 0
	for i := 0; i < n; i++ {
		st := &blk.Statics[slot[i]&SlotMask]
		if !st.IsStore {
			continue
		}
		emit(lo, i)
		addr := srcA[i] + st.Simm
		switch st.MemWidth {
		case 1:
			m.Store8(addr, byte(srcB[i]))
		case 2:
			m.Store16(addr, uint16(srcB[i]))
		default:
			m.Store32(addr, srcB[i])
		}
		lo = i
	}
	emit(lo, n)
}
