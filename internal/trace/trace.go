// Package trace runs benchmarks on the functional interpreter and annotates
// every retired instruction with the significance quantities the activity
// and timing models consume (§2): compressed fetch size, significant
// operand/result bytes, significance-ALU activity, and data-access
// significance — at both byte and halfword granularity.
//
// A benchmark's trace is produced once and fanned out to any number of
// consumers, exactly as the paper feeds one Mediabench trace to its
// trace-driven studies.
package trace

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/cpu"
	"repro/internal/icomp"
	"repro/internal/isa"
	"repro/internal/sig"
	"repro/internal/sigalu"
)

// Event is one retired instruction with its significance annotation.
type Event struct {
	cpu.Exec

	// IFBytes is the compressed instruction size (3 or 4, §2.3).
	IFBytes int

	// SrcBytesA/B are the significant byte counts of the register sources
	// under the 3-bit scheme (0 when the operand is not read).
	SrcBytesA, SrcBytesB int
	// SrcHalvesA/B are the halfword-granularity equivalents.
	SrcHalvesA, SrcHalvesB int

	// ALUOps is the number of byte positions the significance ALU operates
	// on for this instruction (§2.5); ALUHalfOps is the halfword count.
	ALUOps, ALUHalfOps int

	// MemBytes / MemHalves are the significant units moved by the D-cache
	// data access (0 for non-memory instructions).
	MemBytes, MemHalves int

	// WBBytes / WBHalves are the significant units of the written-back
	// result (0 when no register is written).
	WBBytes, WBHalves int
}

// MaxSrcBytes returns the larger significant-byte count of the two register
// sources (minimum 1: the low byte is always read when any operand is).
func (e Event) MaxSrcBytes() int {
	n := e.SrcBytesA
	if e.SrcBytesB > n {
		n = e.SrcBytesB
	}
	if n == 0 {
		n = 1
	}
	return n
}

// MaxSrcHalves is the halfword analogue of MaxSrcBytes.
func (e Event) MaxSrcHalves() int {
	n := e.SrcHalvesA
	if e.SrcHalvesB > n {
		n = e.SrcHalvesB
	}
	if n == 0 {
		n = 1
	}
	return n
}

// sigCap returns the significant bytes of v capped at the access width.
func sigCap(v uint32, width int) int {
	n := sig.Ext3Of(v).SigByteCount()
	if n > width {
		n = width
	}
	return n
}

func sigCapHalf(v uint32, width int) int {
	n := sig.SigHalves(v)
	if limit := (width + 1) / 2; n > limit {
		n = limit
	}
	return n
}

// aluActivity computes the significance-ALU activity of e at block
// granularity g (1 = byte, 2 = halfword), following §2.5 and the design
// decisions recorded in DESIGN.md.
func aluActivity(e cpu.Exec, g int) int {
	in := e.Inst
	a, b := e.SrcA, e.SrcB
	simm := uint32(int32(in.Imm))
	zimm := uint32(uint16(in.Imm))
	switch in.Op {
	case isa.OpSpecial:
		switch in.Funct {
		case isa.FnADD, isa.FnADDU:
			return sigalu.AddG(a, b, g).BlocksOperated
		case isa.FnSUB, isa.FnSUBU:
			return sigalu.SubG(a, b, g).BlocksOperated
		case isa.FnAND:
			return sigalu.AndG(a, b, g).BlocksOperated
		case isa.FnOR:
			return sigalu.OrG(a, b, g).BlocksOperated
		case isa.FnXOR:
			return sigalu.XorG(a, b, g).BlocksOperated
		case isa.FnNOR:
			return sigalu.NorG(a, b, g).BlocksOperated
		case isa.FnSLT:
			return sigalu.SetLessG(a, b, true, g).BlocksOperated
		case isa.FnSLTU:
			return sigalu.SetLessG(a, b, false, g).BlocksOperated
		case isa.FnSLL:
			return sigalu.ShiftLeftG(b, uint32(in.Shamt), g).BlocksOperated
		case isa.FnSRL:
			return sigalu.ShiftRightLG(b, uint32(in.Shamt), g).BlocksOperated
		case isa.FnSRA:
			return sigalu.ShiftRightAG(b, uint32(in.Shamt), g).BlocksOperated
		case isa.FnSLLV:
			return sigalu.ShiftLeftG(b, a, g).BlocksOperated
		case isa.FnSRLV:
			return sigalu.ShiftRightLG(b, a, g).BlocksOperated
		case isa.FnSRAV:
			return sigalu.ShiftRightAG(b, a, g).BlocksOperated
		case isa.FnMULT:
			_, _, r := sigalu.MultG(a, b, true, g)
			return r.BlocksOperated
		case isa.FnMULTU:
			_, _, r := sigalu.MultG(a, b, false, g)
			return r.BlocksOperated
		case isa.FnDIV:
			_, _, r := sigalu.DivG(a, b, true, g)
			return r.BlocksOperated
		case isa.FnDIVU:
			_, _, r := sigalu.DivG(a, b, false, g)
			return r.BlocksOperated
		case isa.FnJR:
			return 1 // address passthrough
		case isa.FnJALR, isa.FnMFHI, isa.FnMFLO, isa.FnMTHI, isa.FnMTLO:
			// Link/move values: the unit produces the significant blocks.
			return sigalu.SigBlocks(e.Result, g)
		default: // SYSCALL, BREAK
			return 1
		}
	case isa.OpADDI, isa.OpADDIU:
		return sigalu.AddG(a, simm, g).BlocksOperated
	case isa.OpSLTI:
		return sigalu.SetLessG(a, simm, true, g).BlocksOperated
	case isa.OpSLTIU:
		return sigalu.SetLessG(a, simm, false, g).BlocksOperated
	case isa.OpANDI:
		return sigalu.AndG(a, zimm, g).BlocksOperated
	case isa.OpORI:
		return sigalu.OrG(a, zimm, g).BlocksOperated
	case isa.OpXORI:
		return sigalu.XorG(a, zimm, g).BlocksOperated
	case isa.OpLUI:
		return sigalu.SigBlocks(e.Result, g)
	case isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLW,
		isa.OpSB, isa.OpSH, isa.OpSW:
		// Effective-address addition.
		return sigalu.AddG(a, simm, g).BlocksOperated
	case isa.OpBEQ, isa.OpBNE:
		_, r := sigalu.CompareG(a, b, g)
		return r.BlocksOperated
	case isa.OpBLEZ, isa.OpBGTZ, isa.OpRegimm:
		// Sign/zero tests examine the extension bits plus the top
		// significant block.
		return 1
	case isa.OpJ, isa.OpJAL:
		if _, ok := in.DestReg(); ok {
			return sigalu.SigBlocks(e.Result, g)
		}
		return 1
	}
	return 1
}

// Annotate derives the significance quantities of one Exec record. The
// recoder supplies the instruction-compression view.
func Annotate(e cpu.Exec, rc *icomp.Recoder) Event {
	ev := Event{Exec: e, IFBytes: rc.FetchBytes(e.Raw)}
	annotateSig(&ev)
	return ev
}

// annotateSig fills in the recoder-independent annotation: every quantity
// except IFBytes depends only on the Exec record (instruction shape and the
// dynamic values that flowed through it), never on the instruction recoding.
// This split is what lets a Capture store the significance columns once and
// replay them under any recoder.
func annotateSig(ev *Event) {
	e := ev.Exec
	if e.ReadsA {
		ev.SrcBytesA = sig.Ext3Of(e.SrcA).SigByteCount()
		ev.SrcHalvesA = sig.SigHalves(e.SrcA)
	}
	if e.ReadsB {
		ev.SrcBytesB = sig.Ext3Of(e.SrcB).SigByteCount()
		ev.SrcHalvesB = sig.SigHalves(e.SrcB)
	}
	ev.ALUOps = aluActivity(e, 1)
	ev.ALUHalfOps = aluActivity(e, 2)
	if e.MemWidth > 0 {
		v := e.Loaded
		if e.Inst.IsStore() {
			v = e.StoreVal
		}
		ev.MemBytes = sigCap(v, e.MemWidth)
		ev.MemHalves = sigCapHalf(v, e.MemWidth)
	}
	if e.HasDest {
		ev.WBBytes = sig.Ext3Of(e.Result).SigByteCount()
		ev.WBHalves = sig.SigHalves(e.Result)
	}
}

// annotator is Annotate with a per-raw-word memo of the recoder-dependent
// fetch size. FetchBytes is a pure function of the raw instruction word and
// the recoder, and a benchmark retires each static instruction many times,
// so the run loop resolves it through a small map instead of re-encoding on
// every retirement. Keyed by raw value (not PC), it is immune to aliasing
// and self-modifying code.
type annotator struct {
	rc  *icomp.Recoder
	ifb map[uint32]int8
}

func newAnnotator(rc *icomp.Recoder) *annotator {
	return &annotator{rc: rc, ifb: make(map[uint32]int8, 256)}
}

func (a *annotator) annotate(e cpu.Exec) Event {
	n, ok := a.ifb[e.Raw]
	if !ok {
		n = int8(a.rc.FetchBytes(e.Raw))
		a.ifb[e.Raw] = n
	}
	ev := Event{Exec: e, IFBytes: int(n)}
	annotateSig(&ev)
	return ev
}

// Consumer receives annotated events.
type Consumer interface {
	Consume(Event)
}

// ConsumerFunc adapts a function to the Consumer interface.
type ConsumerFunc func(Event)

// Consume implements Consumer.
func (f ConsumerFunc) Consume(e Event) { f(e) }

// Run executes b to completion, annotating with rc and fanning every event
// out to the consumers. It returns the finished CPU (checksum-verified).
// Consumers that need the program's memory image during consumption (the
// activity collectors read cache-line contents at fill time) should build
// the CPU first with b.NewCPU and use RunOn.
func Run(b bench.Benchmark, rc *icomp.Recoder, consumers ...Consumer) (*cpu.CPU, error) {
	return RunCtx(context.Background(), b, rc, consumers...)
}

// RunCtx is Run with request-scoped cancellation: it stops (returning
// ctx.Err) as soon as the context is cancelled or its deadline passes.
func RunCtx(ctx context.Context, b bench.Benchmark, rc *icomp.Recoder, consumers ...Consumer) (*cpu.CPU, error) {
	c, err := b.NewCPU()
	if err != nil {
		return nil, err
	}
	if err := RunOnCtx(ctx, c, b, rc, consumers...); err != nil {
		return nil, err
	}
	return c, nil
}

// RunOn drives a pre-built CPU (from b.NewCPU) to completion, fanning
// annotated events out to the consumers and verifying the checksum.
func RunOn(c *cpu.CPU, b bench.Benchmark, rc *icomp.Recoder, consumers ...Consumer) error {
	return RunOnCtx(context.Background(), c, b, rc, consumers...)
}

// ctxCheckMask sets how often the run loop polls the context: every
// (ctxCheckMask+1) instructions, cheap enough to be invisible in profiles
// while keeping cancellation latency well under a millisecond.
const ctxCheckMask = 0xFFF

// RunOnCtx is RunOn with request-scoped cancellation, the hook the serving
// layer (internal/simsvc) uses to abandon simulations whose client went
// away or whose deadline expired.
func RunOnCtx(ctx context.Context, c *cpu.CPU, b bench.Benchmark, rc *icomp.Recoder, consumers ...Consumer) error {
	an := newAnnotator(rc)
	var n uint64
	for !c.Done {
		if n&ctxCheckMask == 0 {
			select {
			case <-ctx.Done():
				return fmt.Errorf("trace: %s aborted after %d instructions: %w", b.Name, n, ctx.Err())
			default:
			}
		}
		if n >= b.MaxInsts {
			return fmt.Errorf("trace: %s exceeded %d instructions", b.Name, b.MaxInsts)
		}
		e, err := c.Step()
		if err != nil {
			return fmt.Errorf("trace: %s: %w", b.Name, err)
		}
		ev := an.annotate(e)
		for _, cons := range consumers {
			cons.Consume(ev)
		}
		n++
	}
	if got := c.Regs[bench.ChecksumReg]; got != b.Checksum {
		return fmt.Errorf("trace: %s checksum %#08x, want %#08x", b.Name, got, b.Checksum)
	}
	return nil
}

// FunctCounter is a Consumer that tallies dynamic R-format function-code
// frequencies — the input to the paper's Table 3 recoding.
type FunctCounter map[isa.Funct]uint64

// Consume implements Consumer.
func (fc FunctCounter) Consume(e Event) {
	if e.Inst.Op == isa.OpSpecial {
		fc[e.Inst.Funct]++
	}
}

// FunctProfile tallies dynamic R-format function-code frequencies over the
// whole suite — the input to the paper's Table 3 recoding. Profiling runs
// over the same (memoized, checksum-verified) path as every other consumer.
func FunctProfile(benchmarks []bench.Benchmark) (map[isa.Funct]uint64, error) {
	return FunctProfileCtx(context.Background(), benchmarks)
}

// FunctProfileCtx is FunctProfile with request-scoped cancellation.
func FunctProfileCtx(ctx context.Context, benchmarks []bench.Benchmark) (map[isa.Funct]uint64, error) {
	// Profiling precedes recoder construction, so annotate under the
	// paper's default recoding; the funct tally only reads decoded
	// instructions and is recoder-independent.
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	counts := make(FunctCounter)
	for _, b := range benchmarks {
		if _, err := RunCtx(ctx, b, rc, counts); err != nil {
			return nil, fmt.Errorf("trace: profiling: %w", err)
		}
	}
	return counts, nil
}

// SuiteRecoder builds the profile-driven instruction recoder over the given
// benchmarks (normally bench.All()).
func SuiteRecoder(benchmarks []bench.Benchmark) (*icomp.Recoder, map[isa.Funct]uint64, error) {
	counts, err := FunctProfile(benchmarks)
	if err != nil {
		return nil, nil, err
	}
	rc, err := icomp.NewRecoder(icomp.TopFuncts(counts, 8))
	if err != nil {
		return nil, nil, err
	}
	return rc, counts, nil
}
