package trace_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"os"
	"testing"

	"repro/internal/trace"
)

// TestCaptureFile2RoundTrip serializes each test bench as SIGCAP02,
// decodes it through the io.Reader entry point (magic dispatch), and
// demands a bit-identical replay plus a canonical re-encoding.
func TestCaptureFile2RoundTrip(t *testing.T) {
	for _, name := range captureTestBenches {
		cp, err := trace.CaptureRun(context.Background(), mustBench(t, name))
		if err != nil {
			t.Fatalf("%s: CaptureRun: %v", name, err)
		}
		var buf bytes.Buffer
		n, err := cp.WriteTo2(&buf)
		if err != nil {
			t.Fatalf("%s: WriteTo2: %v", name, err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("%s: WriteTo2 reported %d bytes, wrote %d", name, n, buf.Len())
		}
		got, err := trace.ReadCaptureFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadCaptureFrom: %v", name, err)
		}
		if got.Len() != cp.Len() || got.Statics() != cp.Statics() || got.Bench().Name != name {
			t.Fatalf("%s: decoded %d rows/%d statics/%q, want %d/%d/%q",
				name, got.Len(), got.Statics(), got.Bench().Name, cp.Len(), cp.Statics(), name)
		}
		want := replayEvents(t, cp)
		have := replayEvents(t, got)
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("%s: event %d diverges after v2 round trip", name, i)
			}
		}
		// Round-trip must be byte-stable: the decoded capture re-encodes
		// to exactly the bytes it came from.
		var again bytes.Buffer
		if _, err := got.WriteTo2(&again); err != nil {
			t.Fatalf("%s: re-encode: %v", name, err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatalf("%s: re-encoded SIGCAP02 differs (%d vs %d bytes)", name, buf.Len(), again.Len())
		}
	}
}

// TestCaptureFile2Corruption damages every structural region of a SIGCAP02
// image — leading magic, trailing magic, footer, header, frame payload,
// truncation — and requires the decoder to reject each with a
// *CorruptError instead of panicking or replaying garbage.
func TestCaptureFile2Corruption(t *testing.T) {
	cp, err := trace.CaptureRun(context.Background(), mustBench(t, captureTestBenches[0]))
	if err != nil {
		t.Fatalf("CaptureRun: %v", err)
	}
	var buf bytes.Buffer
	if _, err := cp.WriteTo2(&buf); err != nil {
		t.Fatalf("WriteTo2: %v", err)
	}
	good := buf.Bytes()

	check := func(label string, bad []byte) {
		t.Helper()
		_, err := trace.ReadCaptureFrom(bytes.NewReader(bad))
		if err == nil {
			t.Errorf("%s accepted", label)
			return
		}
		var ce *trace.CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v, want CorruptError", label, err)
		}
	}

	flip := func(at int) []byte {
		bad := bytes.Clone(good)
		bad[at] ^= 0x10
		return bad
	}
	check("flipped leading magic", flip(0))
	check("flipped trailing magic", flip(len(good)-1))
	check("flipped footer-offset byte", flip(len(good)-14))
	check("flipped header byte", flip(10))
	check("flipped frame payload byte", flip(len(good)/2))
	for _, cut := range []int{4, 40, len(good) / 2, len(good) - 2} {
		check("truncation", good[:cut])
	}
}

// TestCaptureFile2AdversarialHeader pins the hardened header handling: a
// header claiming counts that cannot possibly fit the input must be
// rejected (typed) before any column allocation — in both formats.
func TestCaptureFile2AdversarialHeader(t *testing.T) {
	var scratch [binary.MaxVarintLen64]byte
	v1 := []byte("SIGCAP01")
	v1 = append(v1, byte(len("dijkstra")))
	v1 = append(v1, "dijkstra"...)
	// statics count claiming ~1M entries in a few-byte file.
	n := binary.PutUvarint(scratch[:], 1<<19)
	v1 = append(v1, scratch[:n]...)
	_, err := trace.ReadCaptureFrom(bytes.NewReader(v1))
	var ce *trace.CorruptError
	if !errors.As(err, &ce) {
		t.Errorf("v1 oversized statics claim: %v, want CorruptError", err)
	}

	// Same attack on the rows field: tiny but valid statics table, then an
	// enormous row count.
	v1b := []byte("SIGCAP01")
	v1b = append(v1b, byte(len("dijkstra")))
	v1b = append(v1b, "dijkstra"...)
	v1b = append(v1b, 1)          // one static
	v1b = append(v1b, 0, 0, 0, 0) // raw word
	n = binary.PutUvarint(scratch[:], 1<<21)
	v1b = append(v1b, scratch[:n]...)
	if _, err := trace.ReadCaptureFrom(bytes.NewReader(v1b)); !errors.As(err, &ce) {
		t.Errorf("v1 oversized rows claim: %v, want CorruptError", err)
	}
}

// TestOpenMappedCaptureRejectsV1 checks the mapped tier refuses SIGCAP01
// files cleanly (no trailing index to map) so the cache falls back to the
// eager decode path for pre-migration spills.
func TestOpenMappedCaptureRejectsV1(t *testing.T) {
	cp, err := trace.CaptureRun(context.Background(), mustBench(t, captureTestBenches[0]))
	if err != nil {
		t.Fatalf("CaptureRun: %v", err)
	}
	dir := t.TempDir()
	path := trace.CaptureFilePath(dir, cp.Bench().Name)
	var buf bytes.Buffer
	if _, err := cp.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = trace.OpenMappedCapture(path)
	var ce *trace.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("OpenMappedCapture on SIGCAP01: %v, want CorruptError", err)
	}
	// The eager reader still takes it.
	if _, err := trace.ReadCaptureFile(path); err != nil {
		t.Fatalf("ReadCaptureFile on SIGCAP01: %v", err)
	}
}
