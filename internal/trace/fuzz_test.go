package trace_test

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/trace"
)

// The trace reader must never panic on arbitrary bytes: bad magic,
// truncated records and garbage all surface as errors.
func FuzzReaderNoPanic(f *testing.F) {
	f.Add([]byte("SIGTRC01"))
	f.Add([]byte("SIGTRC01" + "short"))
	f.Add([]byte("WRONGMAG........"))
	f.Add(bytes.Repeat([]byte{0xa5}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			_, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
		}
	})
}
