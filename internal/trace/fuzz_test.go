package trace_test

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

// The trace reader must never panic on arbitrary bytes: bad magic,
// truncated records and garbage all surface as errors.
func FuzzReaderNoPanic(f *testing.F) {
	f.Add([]byte("SIGTRC01"))
	f.Add([]byte("SIGTRC01" + "short"))
	f.Add([]byte("WRONGMAG........"))
	f.Add(bytes.Repeat([]byte{0xa5}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			_, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
		}
	})
}

// FuzzReadCapture throws arbitrary bytes at the persisted-capture decoder
// (both SIGCAP01 and SIGCAP02, dispatched on magic): decode must never
// panic, and any input it accepts must re-encode to a canonical fixed
// point — enc(dec(input)) decoded and encoded again is byte-identical.
// (The input itself need not re-encode identically: non-canonical varints
// decode fine but are written back in canonical form.) Seeded with both
// committed golden captures so the corpus starts from valid files of each
// format.
func FuzzReadCapture(f *testing.F) {
	for _, golden := range []string{
		filepath.Join("testdata", "dijkstra"+trace.CapFileExt),
		filepath.Join("testdata", "dijkstra"+trace.CapFileExt+"2"),
	} {
		data, err := os.ReadFile(golden)
		if err != nil {
			f.Fatalf("seed %s: %v", golden, err)
		}
		f.Add(data)
		// A truncated and a bit-flipped variant steer early coverage
		// toward the error paths.
		f.Add(data[:len(data)/3])
		flipped := bytes.Clone(data)
		flipped[len(flipped)/2] ^= 0x04
		f.Add(flipped)
	}
	f.Add([]byte("SIGCAP01"))
	f.Add([]byte("SIGCAP02"))
	f.Add([]byte("SIGCAP02........SIGCAP02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := trace.ReadCaptureFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: re-encode in the same format the input carried,
		// then demand decode∘encode is a fixed point.
		var enc func(*trace.Capture, *bytes.Buffer) error
		if bytes.HasPrefix(data, []byte("SIGCAP02")) {
			enc = func(cp *trace.Capture, buf *bytes.Buffer) error { _, err := cp.WriteTo2(buf); return err }
		} else {
			enc = func(cp *trace.Capture, buf *bytes.Buffer) error { _, err := cp.WriteTo(buf); return err }
		}
		var first bytes.Buffer
		if err := enc(cp, &first); err != nil {
			t.Fatalf("re-encoding accepted capture: %v", err)
		}
		cp2, err := trace.ReadCaptureFrom(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		var second bytes.Buffer
		if err := enc(cp2, &second); err != nil {
			t.Fatalf("re-encoding second pass: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("encode/decode not a fixed point: %d vs %d bytes", first.Len(), second.Len())
		}
	})
}
