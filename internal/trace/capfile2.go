package trace

// SIGCAP02: the mmap-friendly frame-indexed persistent form of a Capture.
//
// SIGCAP01 (capfile.go) is a single delta/varint stream: compact, but the
// per-slot predictors thread state through every row, so nothing replays
// until the whole file has been decoded back into resident columns. SIGCAP02
// keeps the same column codec but chops the trace into independently
// decodable frames of FrameRows rows: every predictor (the PC delta chain
// and the per-slot srcA/srcB/result/sig chains) resets to zero at each frame
// boundary, so any frame decodes from its own bytes alone — the "seed state"
// a frame needs is the constant zero state, at the cost of one absolute
// (rather than delta) varint per live slot per frame, well under the
// CapFileMaxBytesPerInst budget.
//
// Layout (integers little-endian, varints as in SIGCAP01):
//
//	header   magic "SIGCAP02"
//	         name      uvarint length + benchmark name bytes
//	         statics   uvarint count, then one raw u32 word per slot
//	         insts     uvarint row count
//	         lastNext  u32 NextPC of the final instruction
//	         crc       u32 IEEE CRC-32 of every preceding header byte
//	frames   ceil(insts/FrameRows) frames, contiguous, each:
//	         taken     ceil(rows/8) bytes, bit i = branch outcome
//	         slot      rows × uvarint statics index
//	         pc        rows × svarint delta (predictor reset per frame)
//	         srcA/B    rows × svarint per-slot delta (reset per frame)
//	         result    rows × svarint per-slot delta (reset per frame)
//	         sig       rows × uvarint per-slot XOR (reset per frame)
//	footer   one 20-byte entry per frame:
//	         off u64 · len u32 · crc u32 (IEEE, of the frame bytes) ·
//	         firstPC u32 (PC of the frame's first row — frame f's last
//	         row takes its NextPC from frame f+1's firstPC, so no frame
//	         needs its successor decoded)
//	tail     footerCRC u32 · footerOff u64 · magic "SIGCAP02"
//
// A reader validates the file from the tail inward (trailing magic →
// footer index → header) without touching a single frame, which is what
// makes the mmap tier's warm-start lazy: OpenMappedCapture (stream.go)
// costs the index and statics table only; frames decode one at a time,
// CRC-checked, as replay consumes them.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/bench"
	"repro/internal/isa"
)

const cap2Magic = "SIGCAP02"

// FrameRows is the SIGCAP02 frame granule. It deliberately equals BlockRows:
// one decoded frame feeds BatchConsumers as exactly one block, so streaming
// replay fans out the same block boundaries as in-memory batch replay.
const FrameRows = BlockRows

const (
	cap2FrameMeta = 20 // footer entry: off u64 + len u32 + crc u32 + firstPC u32
	cap2TailLen   = 20 // footerCRC u32 + footerOff u64 + trailing magic
)

// cap2MinRowBytes is the smallest possible encoding of one row (six
// one-byte varints), the lower bound used to reject row counts that cannot
// fit the input before any column is allocated.
const cap2MinRowBytes = 6

// cap2Frame is one parsed footer entry.
type cap2Frame struct {
	off     int64  // file offset of the frame's first byte
	len     uint32 // frame length in bytes
	crc     uint32 // IEEE CRC-32 of the frame bytes
	firstPC uint32 // PC of the frame's first row
}

// cap2Index is everything a SIGCAP02 file declares outside its frames: the
// parsed header plus the footer index. It is the whole resident cost of the
// mapped tier — O(statics + frames), not O(rows).
type cap2Index struct {
	b          bench.Benchmark
	statics    []Static
	rows       int
	lastNextPC uint32
	frames     []cap2Frame
	size       int64
}

// frameSpan returns the global row range [lo, hi) frame f covers.
func (ix *cap2Index) frameSpan(f int) (lo, hi int) {
	lo = f * FrameRows
	hi = lo + FrameRows
	if hi > ix.rows {
		hi = ix.rows
	}
	return lo, hi
}

// frameEndNextPC returns the NextPC of frame f's final row: the next
// frame's firstPC, or the trace's lastNextPC for the final frame.
func (ix *cap2Index) frameEndNextPC(f int) uint32 {
	if f+1 < len(ix.frames) {
		return ix.frames[f+1].firstPC
	}
	return ix.lastNextPC
}

// indexSizeBytes estimates the index's resident footprint: statics table
// (struct + raw→slot map entry, as staticSize) plus the footer entries.
func (ix *cap2Index) indexSizeBytes() int {
	return len(ix.statics)*staticSize + len(ix.frames)*cap2FrameMeta
}

// WriteTo2 serializes the capture as SIGCAP02. Like WriteTo, the capture
// must be complete; concurrent replays are fine, concurrent recording is
// not. Returns the bytes written.
func (cp *Capture) WriteTo2(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var scratch [binary.MaxVarintLen64]byte
	var total int64

	hcrc := crc32.NewIEEE()
	hdr := func(p []byte) {
		bw.Write(p)
		hcrc.Write(p)
		total += int64(len(p))
	}
	hdr([]byte(cap2Magic))
	n := binary.PutUvarint(scratch[:], uint64(len(cp.bench.Name)))
	hdr(scratch[:n])
	hdr([]byte(cp.bench.Name))
	n = binary.PutUvarint(scratch[:], uint64(len(cp.statics)))
	hdr(scratch[:n])
	for i := range cp.statics {
		binary.LittleEndian.PutUint32(scratch[:4], cp.statics[i].Inst.Raw)
		hdr(scratch[:4])
	}
	rows := len(cp.slot)
	n = binary.PutUvarint(scratch[:], uint64(rows))
	hdr(scratch[:n])
	binary.LittleEndian.PutUint32(scratch[:4], cp.lastNextPC)
	hdr(scratch[:4])
	binary.LittleEndian.PutUint32(scratch[:4], hcrc.Sum32())
	bw.Write(scratch[:4])
	total += 4

	nFrames := (rows + FrameRows - 1) / FrameRows
	footer := make([]byte, 0, nFrames*cap2FrameMeta)
	var fbuf bytes.Buffer
	sc := newCap2Scratch(len(cp.statics))
	for f := 0; f < nFrames; f++ {
		lo, hi := f*FrameRows, (f+1)*FrameRows
		if hi > rows {
			hi = rows
		}
		fbuf.Reset()
		cp.encodeFrame(&fbuf, lo, hi, sc)
		payload := fbuf.Bytes()
		var meta [cap2FrameMeta]byte
		binary.LittleEndian.PutUint64(meta[0:8], uint64(total))
		binary.LittleEndian.PutUint32(meta[8:12], uint32(len(payload)))
		binary.LittleEndian.PutUint32(meta[12:16], crc32.ChecksumIEEE(payload))
		binary.LittleEndian.PutUint32(meta[16:20], cp.pc[lo])
		footer = append(footer, meta[:]...)
		bw.Write(payload)
		total += int64(len(payload))
	}

	footerOff := total
	bw.Write(footer)
	total += int64(len(footer))
	var tail [cap2TailLen]byte
	binary.LittleEndian.PutUint32(tail[0:4], crc32.ChecksumIEEE(footer))
	binary.LittleEndian.PutUint64(tail[4:12], uint64(footerOff))
	copy(tail[12:20], cap2Magic)
	bw.Write(tail[:])
	total += cap2TailLen

	if err := bw.Flush(); err != nil {
		return total, err
	}
	return total, nil
}

// encodeFrame appends the self-contained encoding of rows [lo, hi) to buf.
// All predictors start from zero: the first occurrence of a slot in the
// frame pays an absolute varint instead of a delta.
func (cp *Capture) encodeFrame(buf *bytes.Buffer, lo, hi int, sc *cap2Scratch) {
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	n := hi - lo
	taken := sc.taken[:(n+7)/8]
	clear(taken)
	for i, sw := range cp.slot[lo:hi] {
		if sw&TakenBit != 0 {
			taken[i>>3] |= 1 << (i & 7)
		}
	}
	buf.Write(taken)
	for _, sw := range cp.slot[lo:hi] {
		putUvarint(uint64(sw & SlotMask))
	}
	var prevPC uint32
	for _, pc := range cp.pc[lo:hi] {
		putUvarint(zigzag(int32(pc - prevPC)))
		prevPC = pc
	}
	for ci, col := range [][]uint32{cp.srcA, cp.srcB, cp.result} {
		prev := sc.prev[ci]
		clear(prev)
		for i := lo; i < hi; i++ {
			s := cp.slot[i] & SlotMask
			putUvarint(zigzag(int32(col[i] - prev[s])))
			prev[s] = col[i]
		}
	}
	prev := sc.prev[3]
	clear(prev)
	for i := lo; i < hi; i++ {
		s := cp.slot[i] & SlotMask
		putUvarint(uint64(cp.sig[i] ^ prev[s]))
		prev[s] = cp.sig[i]
	}
}

// cap2Scratch is the per-slot predictor state reused across frame
// encodes/decodes: four prev arrays (srcA, srcB, result, sig) plus the
// taken-bitmap staging buffer. Frame independence means this is cleared,
// not carried, at every frame boundary.
type cap2Scratch struct {
	prev  [4][]uint32
	taken []byte
}

func newCap2Scratch(nStatics int) *cap2Scratch {
	sc := &cap2Scratch{taken: make([]byte, (FrameRows+7)/8)}
	for i := range sc.prev {
		sc.prev[i] = make([]uint32, nStatics)
	}
	return sc
}

// decodeCap2Frame decodes one frame payload into the caller's column
// slices (each len == the frame's row count), verifying the footer CRC and
// firstPC first. sc provides the per-slot predictor scratch; it is cleared
// here, never carried between frames. Returns a *CorruptError on any
// structural violation — decode never panics on arbitrary bytes.
func decodeCap2Frame(payload []byte, fr cap2Frame, nStatics uint64,
	slot, pc, srcA, srcB, result, sig []uint32, sc *cap2Scratch) error {
	corrupt := func(format string, args ...any) error {
		return &CorruptError{Format: cap2Magic, Reason: fmt.Sprintf(format, args...)}
	}
	if crc32.ChecksumIEEE(payload) != fr.crc {
		return corrupt("frame at offset %d fails CRC", fr.off)
	}
	n := len(slot)
	bm := (n + 7) / 8
	if len(payload) < bm {
		return corrupt("frame at offset %d truncated", fr.off)
	}
	taken := payload[:bm]
	p := payload[bm:]
	next := func() (uint64, error) {
		v, sz := binary.Uvarint(p)
		if sz <= 0 {
			return 0, corrupt("frame at offset %d truncated", fr.off)
		}
		p = p[sz:]
		return v, nil
	}
	for i := 0; i < n; i++ {
		s, err := next()
		if err != nil {
			return err
		}
		if s >= nStatics {
			return corrupt("frame row %d references slot %d of %d", i, s, nStatics)
		}
		sw := uint32(s)
		if taken[i>>3]&(1<<(i&7)) != 0 {
			sw |= TakenBit
		}
		slot[i] = sw
	}
	var prevPC uint32
	for i := range pc {
		d, err := next()
		if err != nil {
			return err
		}
		prevPC += unzigzag(d)
		pc[i] = prevPC
	}
	if n > 0 && pc[0] != fr.firstPC {
		return corrupt("frame at offset %d firstPC %#x disagrees with index %#x", fr.off, pc[0], fr.firstPC)
	}
	for ci, col := range [][]uint32{srcA, srcB, result} {
		prev := sc.prev[ci]
		clear(prev)
		for i := range col {
			d, err := next()
			if err != nil {
				return err
			}
			s := slot[i] & SlotMask
			prev[s] += unzigzag(d)
			col[i] = prev[s]
		}
	}
	prev := sc.prev[3]
	clear(prev)
	for i := range sig {
		d, err := next()
		if err != nil {
			return err
		}
		s := slot[i] & SlotMask
		prev[s] ^= uint32(d)
		sig[i] = prev[s]
	}
	if len(p) != 0 {
		return corrupt("frame at offset %d carries %d trailing bytes", fr.off, len(p))
	}
	return nil
}

// openCap2Index validates a SIGCAP02 file from the tail inward and returns
// its index without decoding any frame: trailing magic → footer (CRC,
// contiguity, offsets in bounds) → header (CRC, bench known, statics and
// row counts sized against the actual input before any allocation). This is
// the whole cost of a lazy warm-start.
func openCap2Index(ra io.ReaderAt, size int64) (*cap2Index, error) {
	corrupt := func(format string, args ...any) error {
		return &CorruptError{Format: cap2Magic, Reason: fmt.Sprintf(format, args...)}
	}
	minHeader := int64(len(cap2Magic)) + 1 + 1 + 1 + 4 + 4
	if size < minHeader+cap2TailLen {
		return nil, corrupt("file truncated (%d bytes)", size)
	}
	var tail [cap2TailLen]byte
	if _, err := ra.ReadAt(tail[:], size-cap2TailLen); err != nil {
		return nil, fmt.Errorf("trace: reading capture tail: %w", err)
	}
	if string(tail[12:20]) != cap2Magic {
		return nil, corrupt("bad trailing magic %q", tail[12:20])
	}
	footerCRC := binary.LittleEndian.Uint32(tail[0:4])
	footerOff := int64(binary.LittleEndian.Uint64(tail[4:12]))
	if footerOff < minHeader || footerOff > size-cap2TailLen {
		return nil, corrupt("footer offset %d outside file of %d bytes", footerOff, size)
	}
	footerLen := size - cap2TailLen - footerOff
	if footerLen%cap2FrameMeta != 0 {
		return nil, corrupt("footer length %d not a multiple of %d", footerLen, cap2FrameMeta)
	}
	footer := make([]byte, footerLen)
	if _, err := ra.ReadAt(footer, footerOff); err != nil {
		return nil, fmt.Errorf("trace: reading capture footer: %w", err)
	}
	if got := crc32.ChecksumIEEE(footer); got != footerCRC {
		return nil, corrupt("footer CRC mismatch: file %#08x, computed %#08x", footerCRC, got)
	}
	nFrames := int(footerLen / cap2FrameMeta)
	frames := make([]cap2Frame, nFrames)
	for f := range frames {
		e := footer[f*cap2FrameMeta:]
		frames[f] = cap2Frame{
			off:     int64(binary.LittleEndian.Uint64(e[0:8])),
			len:     binary.LittleEndian.Uint32(e[8:12]),
			crc:     binary.LittleEndian.Uint32(e[12:16]),
			firstPC: binary.LittleEndian.Uint32(e[16:20]),
		}
	}

	// Header: its extent is implied by the first frame offset (or the
	// footer, for an empty trace), so it can be read and CRC-checked whole.
	headerEnd := footerOff
	if nFrames > 0 {
		headerEnd = frames[0].off
	}
	if headerEnd < minHeader || headerEnd > footerOff {
		return nil, corrupt("header extent %d out of bounds", headerEnd)
	}
	hdr := make([]byte, headerEnd)
	if _, err := ra.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("trace: reading capture header: %w", err)
	}
	if got := crc32.ChecksumIEEE(hdr[:headerEnd-4]); got != binary.LittleEndian.Uint32(hdr[headerEnd-4:]) {
		return nil, corrupt("header CRC mismatch")
	}
	p := hdr[:headerEnd-4]
	if string(p[:len(cap2Magic)]) != cap2Magic {
		return nil, corrupt("bad capture magic %q", p[:len(cap2Magic)])
	}
	p = p[len(cap2Magic):]
	next := func(what string) (uint64, error) {
		v, sz := binary.Uvarint(p)
		if sz <= 0 {
			return 0, corrupt("header %s truncated", what)
		}
		p = p[sz:]
		return v, nil
	}
	nameLen, err := next("name")
	if err != nil {
		return nil, err
	}
	if nameLen > capFileMaxName || nameLen > uint64(len(p)) {
		return nil, corrupt("bench name length %d", nameLen)
	}
	name := string(p[:nameLen])
	p = p[nameLen:]
	b, ok := bench.ByName(name)
	if !ok {
		return nil, corrupt("unknown benchmark %q", name)
	}
	nStatics, err := next("statics count")
	if err != nil {
		return nil, err
	}
	if nStatics > capFileMaxStatics || nStatics*4 > uint64(size) {
		return nil, corrupt("statics count %d exceeds %d-byte input", nStatics, size)
	}
	if nStatics*4 > uint64(len(p)) {
		return nil, corrupt("statics table truncated")
	}
	ix := &cap2Index{b: b, frames: frames, size: size}
	ix.statics = make([]Static, nStatics)
	for i := range ix.statics {
		ix.statics[i] = staticFor(isa.Decode(binary.LittleEndian.Uint32(p[i*4:])))
	}
	p = p[nStatics*4:]
	rows, err := next("row count")
	if err != nil {
		return nil, err
	}
	if rows > b.MaxInsts {
		return nil, corrupt("rows %d exceed %s's limit %d", rows, b.Name, b.MaxInsts)
	}
	if rows*cap2MinRowBytes > uint64(size) {
		return nil, corrupt("rows %d cannot fit %d-byte input", rows, size)
	}
	if len(p) != 4 {
		return nil, corrupt("header carries %d trailing bytes", len(p))
	}
	ix.rows = int(rows)
	ix.lastNextPC = binary.LittleEndian.Uint32(p)

	if want := (ix.rows + FrameRows - 1) / FrameRows; nFrames != want {
		return nil, corrupt("%d frames indexed, %d rows imply %d", nFrames, ix.rows, want)
	}
	// Frames must tile [headerEnd, footerOff) exactly; contiguity makes
	// every payload slice of a mapped file safe by construction.
	expect := headerEnd
	for f := range frames {
		if frames[f].off != expect {
			return nil, corrupt("frame %d at offset %d, expected %d", f, frames[f].off, expect)
		}
		expect += int64(frames[f].len)
	}
	if expect != footerOff {
		return nil, corrupt("frames end at %d, footer starts at %d", expect, footerOff)
	}
	return ix, nil
}

// decodeAll eagerly decodes every frame into a fully resident Capture, the
// SIGCAP01-equivalent tier. payload returns the raw bytes of one frame.
func (ix *cap2Index) decodeAll(payload func(cap2Frame) ([]byte, error)) (*Capture, error) {
	cp := NewCapture(ix.b)
	cp.statics = ix.statics
	for i := range ix.statics {
		cp.slotOf[ix.statics[i].Inst.Raw] = uint32(i)
	}
	cp.lastNextPC = ix.lastNextPC
	n := ix.rows
	cp.slot = make([]uint32, n)
	cp.pc = make([]uint32, n)
	cp.srcA = make([]uint32, n)
	cp.srcB = make([]uint32, n)
	cp.result = make([]uint32, n)
	cp.sig = make([]uint32, n)
	sc := newCap2Scratch(len(ix.statics))
	for f := range ix.frames {
		lo, hi := ix.frameSpan(f)
		p, err := payload(ix.frames[f])
		if err != nil {
			return nil, err
		}
		if err := decodeCap2Frame(p, ix.frames[f], uint64(len(ix.statics)),
			cp.slot[lo:hi], cp.pc[lo:hi], cp.srcA[lo:hi], cp.srcB[lo:hi],
			cp.result[lo:hi], cp.sig[lo:hi], sc); err != nil {
			return nil, err
		}
	}
	return cp, nil
}

// readCapture2Bytes eagerly decodes an in-memory SIGCAP02 image, the
// io.Reader entry point's v2 branch.
func readCapture2Bytes(data []byte) (*Capture, error) {
	ix, err := openCap2Index(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	return ix.decodeAll(func(fr cap2Frame) ([]byte, error) {
		return data[fr.off : fr.off+int64(fr.len)], nil
	})
}
