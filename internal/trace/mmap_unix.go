//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package trace

// Read-only file mapping via the stdlib syscall package. The repo carries
// no external dependencies, so golang.org/x/sys is deliberately not used;
// on the platforms above syscall.Mmap has identical semantics. Other
// platforms fall back to io.ReaderAt frame reads (mmap_other.go) — same
// bytes, same replay results, one copy per frame instead of zero.

import "syscall"

const mmapSupported = true

// mmapFile maps fd read-only for its first size bytes. MAP_SHARED keeps
// the pages backed by the page cache, so co-located shards mapping the
// same capture file share one physical copy.
func mmapFile(fd int, size int64) ([]byte, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(fd, 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error { return syscall.Munmap(data) }
