package trace_test

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"

	"repro/internal/icomp"
	"repro/internal/trace"
)

// mappedForTest captures b, persists it as SIGCAP02, and opens the mapped
// handle, returning both tiers of the same trace.
func mappedForTest(t *testing.T, name string) (*trace.Capture, *trace.MappedCapture) {
	t.Helper()
	cp, err := trace.CaptureRun(context.Background(), mustBench(t, name))
	if err != nil {
		t.Fatalf("capture %s: %v", name, err)
	}
	dir := t.TempDir()
	path, err := trace.WriteCaptureFile(dir, cp)
	if err != nil {
		t.Fatalf("WriteCaptureFile: %v", err)
	}
	mc, err := trace.OpenMappedCapture(path)
	if err != nil {
		t.Fatalf("OpenMappedCapture: %v", err)
	}
	t.Cleanup(func() { mc.Close() })
	return cp, mc
}

// TestStreamReplayIdentical is the tentpole equivalence gate: streaming
// replay off the mapped file must produce exactly the event stream the
// fully resident capture produces — scalar and batch flavors both —
// including the memory-dependent fields whose store ordering crosses frame
// boundaries (the suite's traces span many 4096-row frames, so store spans
// straddling a frame edge are exercised by construction).
func TestStreamReplayIdentical(t *testing.T) {
	ctx := context.Background()
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	for _, name := range captureTestBenches {
		cp, mc := mappedForTest(t, name)
		if mc.Len() != cp.Len() || mc.Statics() != cp.Statics() {
			t.Fatalf("%s: mapped %d rows/%d statics, capture %d/%d",
				name, mc.Len(), mc.Statics(), cp.Len(), cp.Statics())
		}
		if want := (cp.Len() + trace.FrameRows - 1) / trace.FrameRows; mc.Frames() != want {
			t.Fatalf("%s: %d frames, want %d", name, mc.Frames(), want)
		}
		var resident, streamed eventRecorder
		if err := cp.BatchReplay(ctx, rc, &resident); err != nil {
			t.Fatalf("%s resident batch replay: %v", name, err)
		}
		if err := mc.BatchReplay(ctx, rc, &streamed); err != nil {
			t.Fatalf("%s streamed batch replay: %v", name, err)
		}
		if len(resident.events) != len(streamed.events) {
			t.Fatalf("%s: resident %d events, streamed %d", name, len(resident.events), len(streamed.events))
		}
		for i := range resident.events {
			if resident.events[i] != streamed.events[i] {
				t.Fatalf("%s: event %d diverges (frame %d, row %d)\nresident: %+v\nstreamed: %+v",
					name, i, i/trace.FrameRows, i%trace.FrameRows,
					resident.events[i], streamed.events[i])
			}
		}
		var scalar eventRecorder
		if err := mc.Replay(ctx, rc, &scalar); err != nil {
			t.Fatalf("%s streamed scalar replay: %v", name, err)
		}
		for i := range resident.events {
			if resident.events[i] != scalar.events[i] {
				t.Fatalf("%s: scalar event %d diverges", name, i)
			}
		}
	}
}

// TestStreamBlockShape mirrors TestBatchReplayBlockShape for the streaming
// tier: one decoded frame is exactly one block (except a short final one),
// Start is global, and EndNextPC chains across the frame seams the footer
// index stitched with firstPC.
func TestStreamBlockShape(t *testing.T) {
	ctx := context.Background()
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	cp, mc := mappedForTest(t, captureTestBenches[0])
	next := 0
	var lastEnd uint32
	err := mc.ReplayBlocks(ctx, rc, blockCollector(func(blk *trace.Block) {
		if blk.Start != next {
			t.Fatalf("block starts at %d, want %d", blk.Start, next)
		}
		if blk.Len() == 0 || blk.Len() > trace.BlockRows {
			t.Fatalf("block has %d rows", blk.Len())
		}
		if next > 0 && blk.PC[0] != lastEnd {
			t.Fatalf("block PC[0]=%#x, previous EndNextPC=%#x", blk.PC[0], lastEnd)
		}
		next += blk.Len()
		lastEnd = blk.EndNextPC
	}))
	if err != nil {
		t.Fatalf("streamed block replay: %v", err)
	}
	if next != cp.Len() {
		t.Fatalf("blocks covered %d rows, capture has %d", next, cp.Len())
	}
}

// TestStreamMaterialize checks the promotion path: a capture decoded whole
// off the mapped handle replays identically to the original recording.
func TestStreamMaterialize(t *testing.T) {
	ctx := context.Background()
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	cp, mc := mappedForTest(t, captureTestBenches[1])
	dense, err := mc.Materialize()
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	var want, got eventRecorder
	if err := cp.BatchReplay(ctx, rc, &want); err != nil {
		t.Fatalf("resident replay: %v", err)
	}
	if err := dense.BatchReplay(ctx, rc, &got); err != nil {
		t.Fatalf("materialized replay: %v", err)
	}
	if len(want.events) != len(got.events) {
		t.Fatalf("materialized %d events, want %d", len(got.events), len(want.events))
	}
	for i := range want.events {
		if want.events[i] != got.events[i] {
			t.Fatalf("materialized event %d diverges", i)
		}
	}
}

// TestStreamReplayCancelMidFrame cancels the context from inside a
// consumer partway through the trace; the streaming replayer must stop at
// the next frame seam with the context error instead of replaying to the
// end.
func TestStreamReplayCancelMidFrame(t *testing.T) {
	_, mc := mappedForTest(t, captureTestBenches[0])
	if mc.Len() < trace.FrameRows+2 {
		t.Skipf("trace too short (%d rows) to cancel mid-frame", mc.Len())
	}
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	stop := trace.FrameRows/2 + 1 // mid-first-frame
	err := mc.ReplayBlocks(ctx, rc, trace.ConsumerFunc(func(trace.Event) {
		seen++
		if seen == stop {
			cancel()
		}
	}))
	if err == nil {
		t.Fatal("cancelled streaming replay succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if seen >= mc.Len() {
		t.Fatalf("replay consumed all %d rows despite cancellation", mc.Len())
	}
}

// TestStreamConcurrentReplays replays one shared mapped capture from many
// goroutines under distinct recoders — the N-model-sweep shape — and
// checks every replay observes the identical stream (run with -race to
// catch shared decode state).
func TestStreamConcurrentReplays(t *testing.T) {
	ctx := context.Background()
	cp, mc := mappedForTest(t, captureTestBenches[2])
	narrow := icomp.MustNewRecoder(icomp.DefaultTopFuncts()[:4])
	rcs := []*icomp.Recoder{
		icomp.MustNewRecoder(icomp.DefaultTopFuncts()),
		icomp.MustNewRecoder(icomp.DefaultTopFuncts()),
		narrow,
		narrow,
	}
	want := make([]*eventRecorder, len(rcs))
	for i, rc := range rcs {
		want[i] = &eventRecorder{}
		if err := cp.BatchReplay(ctx, rc, want[i]); err != nil {
			t.Fatalf("resident replay %d: %v", i, err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(rcs))
	got := make([]*eventRecorder, len(rcs))
	for i, rc := range rcs {
		wg.Add(1)
		got[i] = &eventRecorder{}
		go func(i int, rc *icomp.Recoder) {
			defer wg.Done()
			errs[i] = mc.BatchReplay(ctx, rc, got[i])
		}(i, rc)
	}
	wg.Wait()
	for i := range rcs {
		if errs[i] != nil {
			t.Fatalf("concurrent replay %d: %v", i, errs[i])
		}
		if len(got[i].events) != len(want[i].events) {
			t.Fatalf("replay %d: %d events, want %d", i, len(got[i].events), len(want[i].events))
		}
		for j := range want[i].events {
			if got[i].events[j] != want[i].events[j] {
				t.Fatalf("replay %d event %d diverges", i, j)
			}
		}
	}
}

// TestStreamCloseDuringReplay is the eviction race: Close (what cache
// eviction calls) while replays are in flight must neither unmap pages
// under a frame decode nor fail the replays — they hold references, so the
// unmap defers until the last one finishes. New replays after Close fail
// with ErrMappedClosed, which is transient (the file is still on disk).
func TestStreamCloseDuringReplay(t *testing.T) {
	_, mc := mappedForTest(t, captureTestBenches[0])
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	ctx := context.Background()

	const replays = 4
	var started sync.WaitGroup
	started.Add(replays)
	var wg sync.WaitGroup
	errs := make([]error, replays)
	for i := 0; i < replays; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var once sync.Once
			errs[i] = mc.ReplayBlocks(ctx, rc, trace.ConsumerFunc(func(trace.Event) {
				once.Do(started.Done)
			}))
		}(i)
	}
	started.Wait() // every replay has fanned out at least one event
	if err := mc.Close(); err != nil {
		t.Fatalf("Close during replay: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("in-flight replay %d failed after Close: %v", i, err)
		}
	}
	err := mc.ReplayBlocks(ctx, rc, trace.ConsumerFunc(func(trace.Event) {}))
	if !errors.Is(err, trace.ErrMappedClosed) {
		t.Fatalf("replay after Close: %v, want ErrMappedClosed", err)
	}
	if mc.Close() != nil {
		t.Fatal("second Close errored")
	}
}

// TestStreamSizeBytesLazy pins the residency claim behind the mapped tier:
// the handle's accounted footprint must stay far below the decoded column
// bytes (the ISSUE gate: under a quarter), since only index + statics +
// one frame's buffers are resident.
func TestStreamSizeBytesLazy(t *testing.T) {
	for _, name := range captureTestBenches {
		cp, mc := mappedForTest(t, name)
		decoded := cp.Len() * 24 // six u32 columns
		if mc.Len() < 4*trace.FrameRows {
			continue // tiny traces have nothing to amortize
		}
		if mc.SizeBytes() >= decoded/4 {
			t.Errorf("%s: mapped SizeBytes %d, want < 1/4 of decoded columns %d",
				name, mc.SizeBytes(), decoded)
		}
	}
}

// TestStreamCorruptFrame flips one payload byte of a persisted SIGCAP02
// file: open (which only checks header and footer) must succeed, and the
// replay touching the damaged frame must fail its CRC as a CorruptError
// rather than fan out garbage.
func TestStreamCorruptFrame(t *testing.T) {
	cp, err := trace.CaptureRun(context.Background(), mustBench(t, captureTestBenches[0]))
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	dir := t.TempDir()
	path, err := trace.WriteCaptureFile(dir, cp)
	if err != nil {
		t.Fatalf("WriteCaptureFile: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10 // mid-file: inside some frame payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	mc, err := trace.OpenMappedCapture(path)
	if err != nil {
		t.Fatalf("open of frame-corrupt file failed at index time: %v", err)
	}
	defer mc.Close()
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	err = mc.ReplayBlocks(context.Background(), rc, trace.ConsumerFunc(func(trace.Event) {}))
	var ce *trace.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("replay of corrupt frame: %v, want CorruptError", err)
	}
}
