package trace_test

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata golden capture")

// replayEvents replays cp under the default recoder and returns the full
// annotated event stream.
func replayEvents(t *testing.T, cp *trace.Capture) []trace.Event {
	t.Helper()
	rec := &eventRecorder{}
	if err := cp.Replay(context.Background(), defaultRecoder(t), rec); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return rec.events
}

// TestCaptureFileRoundTrip serializes a capture, decodes it, and demands
// the decoded capture replays a bit-identical event stream — every Exec
// field and every significance quantity — for each capture test bench.
func TestCaptureFileRoundTrip(t *testing.T) {
	for _, name := range captureTestBenches {
		cp, err := trace.CaptureRun(context.Background(), mustBench(t, name))
		if err != nil {
			t.Fatalf("%s: CaptureRun: %v", name, err)
		}
		var buf bytes.Buffer
		n, err := cp.WriteTo(&buf)
		if err != nil {
			t.Fatalf("%s: WriteTo: %v", name, err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("%s: WriteTo reported %d bytes, wrote %d", name, n, buf.Len())
		}
		got, err := trace.ReadCaptureFrom(&buf)
		if err != nil {
			t.Fatalf("%s: ReadCaptureFrom: %v", name, err)
		}
		if got.Len() != cp.Len() || got.Statics() != cp.Statics() {
			t.Fatalf("%s: decoded %d rows/%d statics, want %d/%d",
				name, got.Len(), got.Statics(), cp.Len(), cp.Statics())
		}
		if got.Bench().Name != name {
			t.Fatalf("%s: decoded bench %q", name, got.Bench().Name)
		}
		want := replayEvents(t, cp)
		have := replayEvents(t, got)
		if len(want) != len(have) {
			t.Fatalf("%s: decoded capture replays %d events, want %d", name, len(have), len(want))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("%s: event %d diverges after round trip\noriginal: %+v\ndecoded:  %+v",
					name, i, want[i], have[i])
			}
		}
	}
}

// TestCaptureFileBytesPerInst enforces the persistent-format budget over
// the whole standard suite: the serialized size must average at or under
// CapFileMaxBytesPerInst bytes per recorded instruction for every
// benchmark.
func TestCaptureFileBytesPerInst(t *testing.T) {
	if testing.Short() {
		t.Skip("captures the full suite")
	}
	for _, b := range bench.All() {
		cp, err := trace.CaptureRun(context.Background(), b)
		if err != nil {
			t.Fatalf("%s: CaptureRun: %v", b.Name, err)
		}
		var buf, buf2 bytes.Buffer
		if _, err := cp.WriteTo(&buf); err != nil {
			t.Fatalf("%s: WriteTo: %v", b.Name, err)
		}
		if _, err := cp.WriteTo2(&buf2); err != nil {
			t.Fatalf("%s: WriteTo2: %v", b.Name, err)
		}
		perInst := float64(buf.Len()) / float64(cp.Len())
		perInst2 := float64(buf2.Len()) / float64(cp.Len())
		t.Logf("%s: %d insts, v1 %d bytes (%.2f B/inst), v2 %d bytes (%.2f B/inst)",
			b.Name, cp.Len(), buf.Len(), perInst, buf2.Len(), perInst2)
		if perInst > trace.CapFileMaxBytesPerInst {
			t.Errorf("%s: v1 %.2f B/inst exceeds budget %d", b.Name, perInst, trace.CapFileMaxBytesPerInst)
		}
		// The frame-independence overhead (predictor resets + footer index)
		// must stay inside the same budget.
		if perInst2 > trace.CapFileMaxBytesPerInst {
			t.Errorf("%s: v2 %.2f B/inst exceeds budget %d", b.Name, perInst2, trace.CapFileMaxBytesPerInst)
		}
	}
}

// TestCaptureFileCorruption checks the decoder rejects damaged streams
// instead of silently replaying garbage: bad magic, truncation anywhere,
// and a flipped payload bit (CRC).
func TestCaptureFileCorruption(t *testing.T) {
	cp, err := trace.CaptureRun(context.Background(), mustBench(t, captureTestBenches[0]))
	if err != nil {
		t.Fatalf("CaptureRun: %v", err)
	}
	var buf bytes.Buffer
	if _, err := cp.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	good := buf.Bytes()

	bad := append([]byte{}, good...)
	bad[0] ^= 0xFF
	if _, err := trace.ReadCaptureFrom(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	for _, cut := range []int{4, len(good) / 2, len(good) - 2} {
		if _, err := trace.ReadCaptureFrom(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	bad = append([]byte{}, good...)
	bad[len(bad)/2] ^= 0x10 // payload bit flip: must fail CRC (or decode)
	if _, err := trace.ReadCaptureFrom(bytes.NewReader(bad)); err == nil {
		t.Error("flipped payload bit accepted")
	}
}

// TestCaptureFileDir exercises the directory helpers: write-then-read at
// the conventional path, atomic overwrite, and a decodable result.
func TestCaptureFileDir(t *testing.T) {
	dir := t.TempDir()
	cp, err := trace.CaptureRun(context.Background(), mustBench(t, captureTestBenches[0]))
	if err != nil {
		t.Fatalf("CaptureRun: %v", err)
	}
	path, err := trace.WriteCaptureFile(dir, cp)
	if err != nil {
		t.Fatalf("WriteCaptureFile: %v", err)
	}
	if want := trace.CaptureFilePath(dir, captureTestBenches[0]); path != want {
		t.Errorf("wrote to %q, conventional path is %q", path, want)
	}
	// Overwrite must go through the tmp+rename path and leave no droppings.
	if _, err := trace.WriteCaptureFile(dir, cp); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries after rewrite, want 1", len(entries))
	}
	got, err := trace.ReadCaptureFile(path)
	if err != nil {
		t.Fatalf("ReadCaptureFile: %v", err)
	}
	if got.Len() != cp.Len() {
		t.Errorf("loaded %d rows, want %d", got.Len(), cp.Len())
	}
}

// TestCaptureFileGolden pins both on-disk formats: each committed golden
// file must keep decoding to a capture that replays bit-identically to a
// fresh capture of the same benchmark. The SIGCAP01 golden additionally
// guards the compatibility promise that pre-SIGCAP02 spill directories
// stay readable. Any layout change breaks this test — bump the magic and
// regenerate with -update.
func TestCaptureFileGolden(t *testing.T) {
	const goldenBench = "dijkstra"
	fresh, err := trace.CaptureRun(context.Background(), mustBench(t, goldenBench))
	if err != nil {
		t.Fatalf("CaptureRun: %v", err)
	}
	want := replayEvents(t, fresh)
	for _, tc := range []struct {
		format string
		path   string
		write  func(*trace.Capture, *bytes.Buffer) error
	}{
		{"SIGCAP01", filepath.Join("testdata", goldenBench+trace.CapFileExt),
			func(cp *trace.Capture, buf *bytes.Buffer) error { _, err := cp.WriteTo(buf); return err }},
		{"SIGCAP02", filepath.Join("testdata", goldenBench+trace.CapFileExt+"2"),
			func(cp *trace.Capture, buf *bytes.Buffer) error { _, err := cp.WriteTo2(buf); return err }},
	} {
		if *updateGolden {
			var buf bytes.Buffer
			if err := tc.write(fresh, &buf); err != nil {
				t.Fatalf("%s: regenerating golden: %v", tc.format, err)
			}
			if err := os.WriteFile(tc.path, buf.Bytes(), 0o644); err != nil {
				t.Fatalf("%s: regenerating golden: %v", tc.format, err)
			}
			t.Logf("regenerated %s", tc.path)
		}
		got, err := trace.ReadCaptureFile(tc.path)
		if err != nil {
			t.Fatalf("%s golden unreadable (regenerate with -update after a format change): %v", tc.format, err)
		}
		have := replayEvents(t, got)
		if len(want) != len(have) {
			t.Fatalf("%s golden replays %d events, fresh capture %d", tc.format, len(have), len(want))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("%s golden event %d diverges from fresh capture\nfresh:  %+v\ngolden: %+v",
					tc.format, i, want[i], have[i])
			}
		}
	}
}

// TestFileReplayCtxCancel pins the SIGTRC01 reader's cancellation path: a
// cancelled context must abort the replay with its error instead of
// running the trace to exhaustion.
func TestFileReplayCtxCancel(t *testing.T) {
	b := mustBench(t, captureTestBenches[0])
	rc := defaultRecoder(t)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if _, err := trace.Run(b, rc, w); err != nil {
		t.Fatalf("recording: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.ReplayCtx(ctx, rc, trace.ConsumerFunc(func(trace.Event) {})); err == nil {
		t.Error("cancelled file replay succeeded")
	}

	// The uncancelled path still replays the whole trace.
	r2, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	n, err := r2.ReplayCtx(context.Background(), rc, trace.ConsumerFunc(func(trace.Event) {}))
	if err != nil {
		t.Fatalf("ReplayCtx: %v", err)
	}
	if n != w.Count() {
		t.Errorf("replayed %d records, recorded %d", n, w.Count())
	}
}
