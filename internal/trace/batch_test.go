package trace_test

import (
	"context"
	"testing"

	"repro/internal/icomp"
	"repro/internal/trace"
)

// TestBatchReplayShimIdentical verifies the scalar-compatibility shim: a
// plain Consumer fed through batch replay must observe exactly the event
// stream the scalar replay path produces, including the memory-dependent
// fields (store ordering), for every benchmark in the capture test set.
func TestBatchReplayShimIdentical(t *testing.T) {
	ctx := context.Background()
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	for _, name := range captureTestBenches {
		b := mustBench(t, name)
		cp, err := trace.CaptureRun(ctx, b)
		if err != nil {
			t.Fatalf("capture %s: %v", name, err)
		}
		var scalar, batch eventRecorder
		if err := cp.Replay(ctx, rc, &scalar); err != nil {
			t.Fatalf("%s scalar replay: %v", name, err)
		}
		if err := cp.BatchReplay(ctx, rc, &batch); err != nil {
			t.Fatalf("%s batch replay: %v", name, err)
		}
		if len(scalar.events) != len(batch.events) {
			t.Fatalf("%s: scalar replay %d events, batch %d", name, len(scalar.events), len(batch.events))
		}
		for i := range scalar.events {
			if scalar.events[i] != batch.events[i] {
				t.Fatalf("%s: event %d diverges\nscalar: %+v\nbatch:  %+v",
					name, i, scalar.events[i], batch.events[i])
			}
		}
	}
}

// TestBatchReplayBlockShape checks the block invariants a BatchConsumer may
// rely on: rows partition the trace in order, Start is the global index,
// EndNextPC chains to the next block's first PC, and the statics/IFB tables
// are shared across blocks.
func TestBatchReplayBlockShape(t *testing.T) {
	ctx := context.Background()
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	cp, err := trace.CaptureRun(ctx, mustBench(t, captureTestBenches[0]))
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	next := 0
	var lastEnd uint32
	err = cp.ReplayBlocks(ctx, rc, blockCollector(func(blk *trace.Block) {
		if blk.Start != next {
			t.Fatalf("block starts at %d, want %d", blk.Start, next)
		}
		if blk.Len() == 0 {
			t.Fatal("empty block emitted")
		}
		if blk.Len() > trace.BlockRows {
			t.Fatalf("block has %d rows, cap is %d", blk.Len(), trace.BlockRows)
		}
		if next > 0 && blk.PC[0] != lastEnd {
			t.Fatalf("block PC[0]=%#x, previous EndNextPC=%#x", blk.PC[0], lastEnd)
		}
		if len(blk.Statics) != cp.Statics() || len(blk.IFB) != cp.Statics() {
			t.Fatalf("annotation tables sized %d/%d, want %d", len(blk.Statics), len(blk.IFB), cp.Statics())
		}
		next += blk.Len()
		lastEnd = blk.EndNextPC
	}))
	if err != nil {
		t.Fatalf("batch replay: %v", err)
	}
	if next != cp.Len() {
		t.Fatalf("blocks covered %d rows, capture has %d", next, cp.Len())
	}
}

type blockCollector func(*trace.Block)

func (f blockCollector) Consume(trace.Event)         { panic("scalar path not expected") }
func (f blockCollector) ConsumeBlock(b *trace.Block) { f(b) }

// TestBatchReplayCancel mirrors TestCaptureReplayCancel for the batch path.
func TestBatchReplayCancel(t *testing.T) {
	cp, err := trace.CaptureRun(context.Background(), mustBench(t, captureTestBenches[0]))
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	if err := cp.ReplayBlocks(ctx, rc, trace.ConsumerFunc(func(trace.Event) {})); err == nil {
		t.Fatal("batch replay with cancelled context succeeded")
	}
}
