package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/cpu"
	"repro/internal/icomp"
	"repro/internal/isa"
)

// Binary trace record/replay. A recorded trace captures the raw Exec
// stream, so timing and activity studies can be re-run (or run elsewhere)
// without re-executing the program — the classic trace-driven-simulation
// workflow the paper's methodology is built on.
//
// Format: an 8-byte magic/version header, then one fixed-size
// little-endian record per instruction. Annotation (significance
// quantities) is recomputed at replay time, so traces stay recoder-
// independent.

const traceMagic = "SIGTRC01"

// recordSize is the on-disk size of one instruction record.
const recordSize = 4 + 4 + 4 + 4 + 4 + 4 + 4 + 4 + 1 + 1 + 1 + 4

// flag bits for the record's boolean fields.
const (
	flagReadsA uint8 = 1 << iota
	flagReadsB
	flagHasDest
	flagTaken
)

// Writer streams Exec records to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	count uint64
	err   error
}

// NewWriter starts a trace, writing the header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Consume implements Consumer so a Writer can sit in a trace.Run fan-out.
func (t *Writer) Consume(e Event) { t.Write(e.Exec) }

// Write appends one record.
func (t *Writer) Write(e cpu.Exec) {
	if t.err != nil {
		return
	}
	var buf [recordSize]byte
	le := binary.LittleEndian
	le.PutUint32(buf[0:], e.PC)
	le.PutUint32(buf[4:], e.Raw)
	le.PutUint32(buf[8:], e.SrcA)
	le.PutUint32(buf[12:], e.SrcB)
	le.PutUint32(buf[16:], e.Result)
	le.PutUint32(buf[20:], e.Addr)
	le.PutUint32(buf[24:], e.StoreVal)
	le.PutUint32(buf[28:], e.Loaded)
	var flags uint8
	if e.ReadsA {
		flags |= flagReadsA
	}
	if e.ReadsB {
		flags |= flagReadsB
	}
	if e.HasDest {
		flags |= flagHasDest
	}
	if e.Taken {
		flags |= flagTaken
	}
	buf[32] = flags
	buf[33] = uint8(e.Dest)
	buf[34] = uint8(e.MemWidth)
	le.PutUint32(buf[35:], e.NextPC)
	if _, err := t.w.Write(buf[:]); err != nil {
		t.err = err
		return
	}
	t.count++
}

// Close flushes the stream and reports any deferred write error.
func (t *Writer) Close() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Count returns the records written so far.
func (t *Writer) Count() uint64 { return t.count }

// Reader replays a recorded trace.
type Reader struct {
	r     *bufio.Reader
	count uint64
}

// NewReader validates the header and prepares for replay.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	return &Reader{r: br}, nil
}

// Next returns the next record, or io.EOF at end of trace.
func (t *Reader) Next() (cpu.Exec, error) {
	var buf [recordSize]byte
	if _, err := io.ReadFull(t.r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return cpu.Exec{}, fmt.Errorf("trace: truncated record at %d", t.count)
		}
		return cpu.Exec{}, err
	}
	le := binary.LittleEndian
	e := cpu.Exec{
		PC:       le.Uint32(buf[0:]),
		Raw:      le.Uint32(buf[4:]),
		SrcA:     le.Uint32(buf[8:]),
		SrcB:     le.Uint32(buf[12:]),
		Result:   le.Uint32(buf[16:]),
		Addr:     le.Uint32(buf[20:]),
		StoreVal: le.Uint32(buf[24:]),
		Loaded:   le.Uint32(buf[28:]),
		Dest:     isa.Reg(buf[33]),
		MemWidth: int(buf[34]),
		NextPC:   le.Uint32(buf[35:]),
	}
	flags := buf[32]
	e.ReadsA = flags&flagReadsA != 0
	e.ReadsB = flags&flagReadsB != 0
	e.HasDest = flags&flagHasDest != 0
	e.Taken = flags&flagTaken != 0
	e.Inst = isa.Decode(e.Raw)
	t.count++
	return e, nil
}

// Replay annotates every record with rc and fans it out to the consumers,
// returning the number of instructions replayed. It cannot be cancelled;
// use ReplayCtx when the caller may need to abort a long trace.
func (t *Reader) Replay(rc *icomp.Recoder, consumers ...Consumer) (uint64, error) {
	return t.ReplayCtx(context.Background(), rc, consumers...)
}

// ReplayCtx is Replay with cancellation: the context is polled every
// (ctxCheckMask+1) records — the same cadence as the live-run and
// capture-replay loops — so aborting a request stops a file replay within
// a few thousand instructions instead of running the trace to exhaustion.
func (t *Reader) ReplayCtx(ctx context.Context, rc *icomp.Recoder, consumers ...Consumer) (uint64, error) {
	var n uint64
	for {
		if n&ctxCheckMask == 0 {
			select {
			case <-ctx.Done():
				return n, fmt.Errorf("trace: file replay aborted after %d records: %w", n, ctx.Err())
			default:
			}
		}
		e, err := t.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		ev := Annotate(e, rc)
		for _, c := range consumers {
			c.Consume(ev)
		}
		n++
	}
}
