package trace

import (
	"context"
	"errors"
	"testing"

	"repro/internal/bench"
	"repro/internal/cpu"
	"repro/internal/icomp"
	"repro/internal/isa"
)

var rc = icomp.MustNewRecoder(icomp.DefaultTopFuncts())

func TestAnnotateALUEvent(t *testing.T) {
	raw := isa.EncodeR(isa.FnADDU, isa.RegT0, isa.RegT1, isa.RegT2, 0)
	e := cpu.Exec{
		PC: 0x400000, Raw: raw, Inst: isa.Decode(raw),
		SrcA: 0x12345678, SrcB: 0x3, ReadsA: true, ReadsB: true,
		Dest: isa.RegT2, Result: 0x1234567b, HasDest: true, NextPC: 0x400004,
	}
	ev := Annotate(e, rc)
	if ev.IFBytes != 3 { // addu is in the default top-8
		t.Errorf("IFBytes = %d", ev.IFBytes)
	}
	if ev.SrcBytesA != 4 || ev.SrcBytesB != 1 {
		t.Errorf("src bytes: %d/%d", ev.SrcBytesA, ev.SrcBytesB)
	}
	if ev.SrcHalvesA != 2 || ev.SrcHalvesB != 1 {
		t.Errorf("src halves: %d/%d", ev.SrcHalvesA, ev.SrcHalvesB)
	}
	if ev.ALUOps != 4 {
		t.Errorf("ALU ops = %d (adding into a 4-byte value)", ev.ALUOps)
	}
	if ev.WBBytes != 4 {
		t.Errorf("WB bytes = %d", ev.WBBytes)
	}
	if ev.MaxSrcBytes() != 4 || ev.MaxSrcHalves() != 2 {
		t.Errorf("max src: %d/%d", ev.MaxSrcBytes(), ev.MaxSrcHalves())
	}
}

func TestAnnotateLoadStore(t *testing.T) {
	// lb: one byte moved regardless of value.
	raw := isa.EncodeI(isa.OpLB, isa.RegT0, isa.RegT1, 0)
	e := cpu.Exec{
		PC: 0x400000, Raw: raw, Inst: isa.Decode(raw),
		SrcA: 0x10000000, ReadsA: true,
		Dest: isa.RegT1, Result: 0xfffffff0, HasDest: true,
		Addr: 0x10000000, MemWidth: 1, Loaded: 0xfffffff0,
		NextPC: 0x400004,
	}
	ev := Annotate(e, rc)
	if ev.MemBytes != 1 || ev.MemHalves != 1 {
		t.Errorf("lb moved %d bytes / %d halves", ev.MemBytes, ev.MemHalves)
	}
	if ev.WBBytes != 1 { // sign-extended negative: one significant byte
		t.Errorf("lb WB bytes = %d", ev.WBBytes)
	}

	// sw of a small value: one significant byte moved.
	raw = isa.EncodeI(isa.OpSW, isa.RegT0, isa.RegT1, 0)
	e = cpu.Exec{
		PC: 0x400000, Raw: raw, Inst: isa.Decode(raw),
		SrcA: 0x10000000, SrcB: 7, ReadsA: true, ReadsB: true,
		Addr: 0x10000000, MemWidth: 4, StoreVal: 7,
		NextPC: 0x400004,
	}
	ev = Annotate(e, rc)
	if ev.MemBytes != 1 {
		t.Errorf("sw of 7 moved %d bytes", ev.MemBytes)
	}
	if ev.WBBytes != 0 {
		t.Errorf("store has WB bytes %d", ev.WBBytes)
	}
}

func TestAnnotateNoSources(t *testing.T) {
	raw := isa.EncodeJ(isa.OpJ, 0x100)
	e := cpu.Exec{PC: 0x400000, Raw: raw, Inst: isa.Decode(raw), Taken: true, NextPC: 0x400400}
	ev := Annotate(e, rc)
	if ev.SrcBytesA != 0 || ev.SrcBytesB != 0 {
		t.Errorf("jump reads: %d/%d", ev.SrcBytesA, ev.SrcBytesB)
	}
	if ev.MaxSrcBytes() != 1 {
		t.Errorf("MaxSrcBytes floor = %d", ev.MaxSrcBytes())
	}
	if ev.IFBytes != 4 {
		t.Errorf("j should fetch 4 bytes, got %d", ev.IFBytes)
	}
}

func TestRunVerifiesChecksum(t *testing.T) {
	b, _ := bench.ByName("rawcaudio")
	bad := b
	bad.Checksum++ // corrupt the expectation
	if _, err := Run(bad, rc); err == nil {
		t.Fatal("Run must fail on checksum mismatch")
	}
	if _, err := Run(b, rc); err != nil {
		t.Fatalf("Run failed on valid benchmark: %v", err)
	}
}

func TestRunFanOut(t *testing.T) {
	b, _ := bench.ByName("g711dec")
	var n1, n2 uint64
	c1 := ConsumerFunc(func(Event) { n1++ })
	c2 := ConsumerFunc(func(Event) { n2++ })
	c, err := Run(b, rc, c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != c.Retired || n2 != c.Retired {
		t.Fatalf("consumers saw %d/%d events, cpu retired %d", n1, n2, c.Retired)
	}
}

func TestRunCtxCancelled(t *testing.T) {
	b, _ := bench.ByName("crc32")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must abort at the first poll
	if _, err := RunCtx(ctx, b, rc); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx on cancelled context: err = %v, want context.Canceled", err)
	}
}

func TestRunCtxMidRunCancel(t *testing.T) {
	b, _ := bench.ByName("crc32")
	ctx, cancel := context.WithCancel(context.Background())
	var n uint64
	stop := ConsumerFunc(func(Event) {
		n++
		if n == 10_000 { // cancel mid-trace; crc32 retires ~200k instructions
			cancel()
		}
	})
	_, err := RunCtx(ctx, b, rc, stop)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err = %v, want context.Canceled", err)
	}
	if n >= 100_000 {
		t.Fatalf("run consumed %d events after cancellation", n)
	}
}

func TestRunInstructionLimit(t *testing.T) {
	b, _ := bench.ByName("crc32")
	b.MaxInsts = 100
	if _, err := Run(b, rc); err == nil {
		t.Fatal("expected instruction-limit error")
	}
}

func TestFunctProfileAndRecoder(t *testing.T) {
	counts, err := FunctProfile(bench.All()[:2])
	if err != nil {
		t.Fatal(err)
	}
	if counts[isa.FnADDU] == 0 {
		t.Error("addu must appear in any real trace")
	}
	r2, counts2, err := SuiteRecoder(bench.All()[:2])
	if err != nil {
		t.Fatal(err)
	}
	if r2 == nil || len(counts2) == 0 {
		t.Fatal("empty recoder or profile")
	}
	// The most frequent funct must be compact.
	top := icomp.TopFuncts(counts2, 1)
	if !r2.IsCompact(top[0]) {
		t.Errorf("top funct %v not compact", top[0])
	}
}

func TestALUActivityBranches(t *testing.T) {
	// beq with equal small operands: one byte compared.
	raw := isa.EncodeI(isa.OpBEQ, isa.RegT0, isa.RegT1, 4)
	e := cpu.Exec{
		PC: 0x400000, Raw: raw, Inst: isa.Decode(raw),
		SrcA: 5, SrcB: 5, ReadsA: true, ReadsB: true, NextPC: 0x400004,
	}
	if got := Annotate(e, rc).ALUOps; got != 1 {
		t.Errorf("narrow beq ALU ops = %d", got)
	}
	e.SrcA, e.SrcB = 0x12345678, 0x12345678
	if got := Annotate(e, rc).ALUOps; got != 4 {
		t.Errorf("wide beq ALU ops = %d", got)
	}
	// Sign test: extension bits plus top block only.
	raw = isa.EncodeI(isa.OpBLEZ, isa.RegT0, 0, 4)
	e = cpu.Exec{
		PC: 0x400000, Raw: raw, Inst: isa.Decode(raw),
		SrcA: 0x12345678, ReadsA: true, NextPC: 0x400004,
	}
	if got := Annotate(e, rc).ALUOps; got != 1 {
		t.Errorf("blez ALU ops = %d", got)
	}
}

func TestALUActivityShiftAndLui(t *testing.T) {
	raw := isa.EncodeI(isa.OpLUI, 0, isa.RegT0, 0x1000)
	e := cpu.Exec{
		PC: 0x400000, Raw: raw, Inst: isa.Decode(raw),
		Dest: isa.RegT0, Result: 0x10000000, HasDest: true, NextPC: 0x400004,
	}
	// 0x10000000 = pattern "sees": 2 significant bytes.
	if got := Annotate(e, rc).ALUOps; got != 2 {
		t.Errorf("lui ALU ops = %d", got)
	}
}
