// Capture-once / replay-many trace engine.
//
// A Capture records a benchmark's retired-instruction stream into a compact
// columnar buffer so the trace can be replayed to any number of consumers
// without re-running the interpreter. The paper's methodology is exactly
// this shape: one Mediabench trace feeds every activity and timing study
// (§3), so sweeping N pipeline models should cost one execution plus N
// cheap fan-outs, not N executions.
//
// Layout. Per-instruction state is split into parallel fixed-width columns
// (six uint32 words = 24 B/instruction, enforced at ≤ MaxBytesPerInst by
// SizeBytes and a test). Everything static per instruction word — decoded
// form, source/dest register usage, memory width, sign-extended immediate —
// lives once in a statics table, keyed by the raw word value (not PC, so
// aliasing and self-modifying code are handled). The dynamic columns are:
//
//	slot    statics index, with the branch outcome in the top bit
//	pc      instruction address
//	srcA/B  register operand values (zero when the port is not read)
//	result  written-back value, or the loaded value for load-to-$zero
//	sig     the ten recoder-independent significance quantities, packed
//
// Every remaining cpu.Exec field is derived on replay: Addr = SrcA + simm,
// StoreVal = SrcB, NextPC = next instruction's PC (the interpreter retires
// in program order), destination register/flags from the statics. The
// recoder-dependent IFBytes is deliberately NOT captured: it is a pure
// function of the raw word and the recoder, so Replay resolves it through a
// per-statics-slot table built once per (Capture, Recoder) pair — the same
// trace replays under any instruction recoding.
//
// Memory. Consumers may read the program's memory image (the activity
// collectors read cache-line contents at fill time), and only stores mutate
// memory during a run (syscalls write the CPU's output buffer, never
// memory). Replay therefore rebuilds the initial image and applies each
// captured store just before fanning out its event — the same
// state-then-consume order as the live loop — making replay bit-identical
// to live execution, which the equivalence tests assert.
package trace

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bench"
	"repro/internal/icomp"
	"repro/internal/isa"
	"repro/internal/mem"
)

// MaxBytesPerInst is the capture-format budget: SizeBytes()/Len() must stay
// at or under this, enforced by test. The columnar layout currently uses
// 24 B/instruction plus the (amortized-to-nothing) statics table.
const MaxBytesPerInst = 40

// TakenBit stores the branch outcome in the slot column's top bit; the low
// 31 bits (SlotMask) index the statics table. Exported so BatchConsumers can
// decode the raw slot column.
const (
	TakenBit = 1 << 31
	SlotMask = TakenBit - 1
)

// Packed significance-column field offsets/widths. The ten quantities fit
// in 27 bits: byte counts are 0..4 (3 bits), halfword counts 0..2 (2 bits),
// ALUOps 0..8 (4 bits: mult/div count both operands' blocks), ALUHalfOps
// 0..4 (3 bits).
const (
	sigSrcBytesAShift  = 0  // 3 bits
	sigSrcBytesBShift  = 3  // 3 bits
	sigSrcHalvesAShift = 6  // 2 bits
	sigSrcHalvesBShift = 8  // 2 bits
	sigALUOpsShift     = 10 // 4 bits
	sigALUHalfShift    = 14 // 3 bits
	sigMemBytesShift   = 17 // 3 bits
	sigMemHalvesShift  = 20 // 2 bits
	sigWBBytesShift    = 22 // 3 bits
	sigWBHalvesShift   = 25 // 2 bits
)

// Static is everything about an instruction word that never changes between
// dynamic instances. The statics table is exposed to BatchConsumers as the
// per-block annotation table (Block.Statics), so its fields are exported.
type Static struct {
	Inst     isa.Inst
	Simm     uint32 // sign-extended immediate (effective-address offset)
	Dest     isa.Reg
	MemWidth uint8 // 0 for non-memory instructions
	ReadsA   bool
	ReadsB   bool
	HasDest  bool
	IsStore  bool
}

// staticSize estimates the resident bytes of one statics entry: the struct
// itself plus its raw→slot map entry (key, value, bucket overhead).
const staticSize = 96

// ifbMemoOverhead estimates the per-memo resident bytes beyond the table
// itself: the 64-byte Profile key, its map bucket share, and the slice
// header. Included in SizeBytes so the byte-budgeted trace cache sees the
// memo's real footprint.
const ifbMemoOverhead = 144

// maxIFBMemos bounds how many recoder profiles a capture memoizes fetch
// sizes for. A process normally has one or two live recodings (the static
// default and the suite-profiled one); under recoder churn — sweeps that
// build a fresh Recoder per request — the oldest memo is dropped instead of
// letting the map retain every recoding ever replayed.
const maxIFBMemos = 4

// Replayer is the read side of a recorded trace: everything the serving and
// evaluation layers need to fan a captured benchmark out to consumers. It is
// satisfied by both residency tiers of a capture — the fully decoded
// in-memory Capture and the mmap-backed MappedCapture (stream.go), whose
// replay memory is O(frame) instead of O(trace). The two are byte-identical
// by test, so callers choose a tier purely on memory/latency grounds.
type Replayer interface {
	// Bench returns the benchmark the trace recorded.
	Bench() bench.Benchmark
	// Len returns the number of recorded instructions.
	Len() int
	// SizeBytes estimates the replayer's resident memory (what a
	// byte-budgeted cache should charge for holding it).
	SizeBytes() int
	// NewMemory rebuilds the benchmark's initial memory image, for
	// consumers that read program memory during replay.
	NewMemory() (*mem.Memory, error)
	// ClearMemos drops memoized per-recoder fetch-size tables.
	ClearMemos()
	// ReplayOn is the scalar (event-at-a-time) replay over a caller
	// memory image; see Capture.ReplayOn for the contract.
	ReplayOn(ctx context.Context, m *mem.Memory, rc *icomp.Recoder, consumers ...Consumer) error
	// ReplayBlocks is batch replay without a memory image.
	ReplayBlocks(ctx context.Context, rc *icomp.Recoder, consumers ...Consumer) error
	// ReplayBlocksOn is batch replay over a caller memory image; see
	// Capture.ReplayBlocksOn for the memory-ordering contract.
	ReplayBlocksOn(ctx context.Context, m *mem.Memory, rc *icomp.Recoder, consumers ...Consumer) error
}

// ifbMemo memoizes per-slot compressed fetch sizes per recoder profile:
// IFBytes is static per (raw word, recoding), so one pass over the statics
// table serves every instruction of a replay, and keying by icomp.Profile
// (not recoder pointer) lets distinct Recoder instances with the same
// recoding share one table. order tracks insertion so the memo stays
// bounded (maxIFBMemos, oldest dropped). Both capture tiers embed one.
type ifbMemo struct {
	mu    sync.Mutex
	tabs  map[icomp.Profile][]uint8
	order []icomp.Profile
}

// tableFor returns the per-statics-slot fetch-size table under rc,
// computing it once per recoder profile.
func (mm *ifbMemo) tableFor(rc *icomp.Recoder, statics []Static) []uint8 {
	key := rc.Profile()
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if t, ok := mm.tabs[key]; ok {
		return t
	}
	t := make([]uint8, len(statics))
	for i := range statics {
		t[i] = uint8(rc.FetchBytes(statics[i].Inst.Raw))
	}
	if mm.tabs == nil {
		mm.tabs = make(map[icomp.Profile][]uint8, 1)
	}
	for len(mm.tabs) >= maxIFBMemos {
		delete(mm.tabs, mm.order[0])
		mm.order = mm.order[1:]
	}
	mm.tabs[key] = t
	mm.order = append(mm.order, key)
	return t
}

// clear drops every memoized table; replays rebuild them on demand.
func (mm *ifbMemo) clear() {
	mm.mu.Lock()
	mm.tabs = nil
	mm.order = nil
	mm.mu.Unlock()
}

// sizeBytes estimates the memo's resident footprint for a statics table of
// nStatics entries.
func (mm *ifbMemo) sizeBytes(nStatics int) int {
	mm.mu.Lock()
	n := len(mm.tabs)
	mm.mu.Unlock()
	return n * (nStatics + ifbMemoOverhead)
}

// Capture is one benchmark's recorded trace. Record it by running the
// benchmark to completion (CaptureRun, or Consume riding along any live
// run); once complete it is immutable and safe for concurrent Replays.
type Capture struct {
	bench   bench.Benchmark
	statics []Static
	slotOf  map[uint32]uint32 // raw instruction word -> statics index

	slot   []uint32 // statics index | TakenBit
	pc     []uint32
	srcA   []uint32
	srcB   []uint32
	result []uint32
	sig    []uint32

	lastNextPC uint32 // NextPC of the final instruction (no successor row)

	memo ifbMemo // per-recoder-profile fetch-size tables
}

// NewCapture returns an empty capture for b, ready to record (via Consume
// as a run consumer, or internally via CaptureRun).
func NewCapture(b bench.Benchmark) *Capture {
	return &Capture{
		bench:  b,
		slotOf: make(map[uint32]uint32, 512),
	}
}

// CaptureRun executes b to completion and records its trace. It is the
// recoder-free twin of RunCtx: significance annotation is computed (and
// stored) for every event, but no instruction recoding is consulted — that
// binding happens at Replay time.
func CaptureRun(ctx context.Context, b bench.Benchmark) (*Capture, error) {
	c, err := b.NewCPU()
	if err != nil {
		return nil, err
	}
	cp := NewCapture(b)
	cp.grow(int(b.MaxInsts))
	var n uint64
	for !c.Done {
		if n&ctxCheckMask == 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("trace: capturing %s aborted after %d instructions: %w", b.Name, n, ctx.Err())
			default:
			}
		}
		if n >= b.MaxInsts {
			return nil, fmt.Errorf("trace: %s exceeded %d instructions", b.Name, b.MaxInsts)
		}
		e, err := c.Step()
		if err != nil {
			return nil, fmt.Errorf("trace: capturing %s: %w", b.Name, err)
		}
		ev := Event{Exec: e}
		annotateSig(&ev)
		cp.record(ev)
		n++
	}
	if got := c.Regs[bench.ChecksumReg]; got != b.Checksum {
		return nil, fmt.Errorf("trace: %s checksum %#08x, want %#08x", b.Name, got, b.Checksum)
	}
	cp.Finalize()
	return cp, nil
}

// grow pre-sizes the dynamic columns. The hint is capped well below the
// runaway guard MaxInsts (which most benchmarks finish far under) so a
// capture never over-commits memory; append growth covers longer traces and
// compact trims the slack afterwards.
func (cp *Capture) grow(hint int) {
	if hint <= 0 {
		return
	}
	if hint > 1<<16 {
		hint = 1 << 16
	}
	cp.slot = make([]uint32, 0, hint)
	cp.pc = make([]uint32, 0, hint)
	cp.srcA = make([]uint32, 0, hint)
	cp.srcB = make([]uint32, 0, hint)
	cp.result = make([]uint32, 0, hint)
	cp.sig = make([]uint32, 0, hint)
}

// Finalize trims append slack so SizeBytes reflects exactly the recorded
// trace. Call it once recording is finished: CaptureRun does, and any
// capture recorded by riding along a live run (Consume) must be finalized
// by the ride-along site before the capture is sized or cached — append
// growth otherwise leaves up to ~2x slack in the dynamic columns. Safe to
// call more than once; a finalized capture with no slack is left untouched.
func (cp *Capture) Finalize() {
	trim := func(s []uint32) []uint32 {
		if cap(s) == len(s) {
			return s
		}
		out := make([]uint32, len(s))
		copy(out, s)
		return out
	}
	cp.slot = trim(cp.slot)
	cp.pc = trim(cp.pc)
	cp.srcA = trim(cp.srcA)
	cp.srcB = trim(cp.srcB)
	cp.result = trim(cp.result)
	cp.sig = trim(cp.sig)
}

// Consume implements Consumer, so a Capture can ride along any live run
// (Run/RunOnCtx) and record the stream while other consumers observe it.
func (cp *Capture) Consume(ev Event) { cp.record(ev) }

// staticFor derives the statics-table entry for one decoded instruction.
// record and the SIGCAP01 reader (capfile.go) share it, so a capture decoded
// from disk rebuilds exactly the table the original recording held.
func staticFor(in isa.Inst) Static {
	dest, hasDest := in.DestReg()
	st := Static{
		Inst:    in,
		Simm:    uint32(int32(in.Imm)),
		Dest:    dest,
		HasDest: hasDest,
		ReadsA:  in.ReadsRs(),
		ReadsB:  in.ReadsRt(),
		IsStore: in.IsStore(),
	}
	if in.IsMem() {
		st.MemWidth = uint8(in.MemBytes())
	}
	return st
}

func (cp *Capture) record(ev Event) {
	idx, ok := cp.slotOf[ev.Raw]
	if !ok {
		st := staticFor(ev.Inst)
		idx = uint32(len(cp.statics))
		cp.statics = append(cp.statics, st)
		cp.slotOf[ev.Raw] = idx
	}
	sw := idx
	if ev.Taken {
		sw |= TakenBit
	}
	res := ev.Result
	if !ev.HasDest {
		// Load-to-$zero retires with Loaded set but no register write;
		// park the loaded value in the result column so replay can
		// reconstruct it. Every other dest-less instruction leaves 0 here.
		res = ev.Loaded
	}
	cp.slot = append(cp.slot, sw)
	cp.pc = append(cp.pc, ev.PC)
	cp.srcA = append(cp.srcA, ev.SrcA)
	cp.srcB = append(cp.srcB, ev.SrcB)
	cp.result = append(cp.result, res)
	cp.sig = append(cp.sig, packSig(ev))
	cp.lastNextPC = ev.NextPC
}

func packSig(ev Event) uint32 {
	return uint32(ev.SrcBytesA)<<sigSrcBytesAShift |
		uint32(ev.SrcBytesB)<<sigSrcBytesBShift |
		uint32(ev.SrcHalvesA)<<sigSrcHalvesAShift |
		uint32(ev.SrcHalvesB)<<sigSrcHalvesBShift |
		uint32(ev.ALUOps)<<sigALUOpsShift |
		uint32(ev.ALUHalfOps)<<sigALUHalfShift |
		uint32(ev.MemBytes)<<sigMemBytesShift |
		uint32(ev.MemHalves)<<sigMemHalvesShift |
		uint32(ev.WBBytes)<<sigWBBytesShift |
		uint32(ev.WBHalves)<<sigWBHalvesShift
}

// Bench returns the benchmark this capture recorded.
func (cp *Capture) Bench() bench.Benchmark { return cp.bench }

// Len returns the number of recorded instructions.
func (cp *Capture) Len() int { return len(cp.slot) }

// Statics returns the number of distinct instruction words recorded.
func (cp *Capture) Statics() int { return len(cp.statics) }

// SizeBytes estimates the capture's resident memory: the six dynamic
// columns (exact), the statics table and its lookup map (estimated per
// entry), and the per-recoder-profile fetch-size memos replays have built
// (one byte per statics slot each, plus key/bucket overhead). The memos are
// included so the byte-budgeted trace cache in internal/simsvc accounts for
// everything a cached capture actually keeps resident, not just its columns.
func (cp *Capture) SizeBytes() int {
	cols := cap(cp.slot) + cap(cp.pc) + cap(cp.srcA) + cap(cp.srcB) + cap(cp.result) + cap(cp.sig)
	return cols*4 + len(cp.statics)*staticSize + cp.memo.sizeBytes(len(cp.statics))
}

// ClearMemos drops every memoized per-recoder fetch-size table, releasing
// the memory SizeBytes attributes to them. Replays rebuild tables on demand;
// the capture itself is untouched.
func (cp *Capture) ClearMemos() { cp.memo.clear() }

// FunctCounts tallies the dynamic R-format function-code frequencies of the
// recorded trace — the per-benchmark input to the paper's Table 3 recoding,
// for free from the capture (no re-execution, no annotation).
func (cp *Capture) FunctCounts() map[isa.Funct]uint64 {
	perSlot := make([]uint64, len(cp.statics))
	for _, sw := range cp.slot {
		perSlot[sw&SlotMask]++
	}
	counts := make(map[isa.Funct]uint64)
	for i := range cp.statics {
		if st := &cp.statics[i]; st.Inst.Op == isa.OpSpecial && perSlot[i] > 0 {
			counts[st.Inst.Funct] += perSlot[i]
		}
	}
	return counts
}

// NewMemory builds the benchmark's initial memory image, for ReplayOn
// consumers that read program memory (the activity collectors).
func (cp *Capture) NewMemory() (*mem.Memory, error) {
	c, err := cp.bench.NewCPU()
	if err != nil {
		return nil, err
	}
	return c.Mem, nil
}

// ifBytes returns the per-statics-slot compressed fetch size under rc,
// computing it once per (Capture, recoder profile). The memo holds at most
// maxIFBMemos profiles; beyond that the oldest is evicted, so a capture's
// footprint stays bounded no matter how many distinct recodings replay
// against it over its cached lifetime.
func (cp *Capture) ifBytes(rc *icomp.Recoder) []uint8 {
	return cp.memo.tableFor(rc, cp.statics)
}

// Replay re-annotates the recorded trace under rc and fans every event out
// to the consumers, bit-identical to a live run but without the
// interpreter. It rebuilds the benchmark's memory image so consumers that
// read program memory observe exactly the live-run contents; replays of one
// Capture are independent and may run concurrently.
func (cp *Capture) Replay(ctx context.Context, rc *icomp.Recoder, consumers ...Consumer) error {
	m, err := cp.NewMemory()
	if err != nil {
		return err
	}
	return cp.ReplayOn(ctx, m, rc, consumers...)
}

// ReplayOn is Replay over a caller-supplied memory image, the hook for
// consumers built around a shared *mem.Memory (activity collectors read
// cache-line contents at fill time). m must be the benchmark's initial
// image (NewMemory); ReplayOn applies the trace's stores to it in program
// order, each just before its event is fanned out, mirroring the live
// step-then-consume sequence.
func (cp *Capture) ReplayOn(ctx context.Context, m *mem.Memory, rc *icomp.Recoder, consumers ...Consumer) error {
	ifb := cp.ifBytes(rc)
	n := len(cp.slot)
	for i := 0; i < n; i++ {
		if i&ctxCheckMask == 0 {
			select {
			case <-ctx.Done():
				return fmt.Errorf("trace: replaying %s aborted after %d instructions: %w", cp.bench.Name, i, ctx.Err())
			default:
			}
		}
		sw := cp.slot[i]
		st := &cp.statics[sw&SlotMask]
		var ev Event
		e := &ev.Exec
		e.PC = cp.pc[i]
		e.Raw = st.Inst.Raw
		e.Inst = st.Inst
		e.SrcA, e.ReadsA = cp.srcA[i], st.ReadsA
		e.SrcB, e.ReadsB = cp.srcB[i], st.ReadsB
		if st.HasDest {
			e.Dest, e.Result, e.HasDest = st.Dest, cp.result[i], true
		}
		e.Taken = sw&TakenBit != 0
		if i+1 < n {
			e.NextPC = cp.pc[i+1]
		} else {
			e.NextPC = cp.lastNextPC
		}
		if st.MemWidth > 0 {
			e.Addr = e.SrcA + st.Simm
			e.MemWidth = int(st.MemWidth)
			if st.IsStore {
				e.StoreVal = e.SrcB
				if m != nil {
					switch st.MemWidth {
					case 1:
						m.Store8(e.Addr, byte(e.SrcB))
					case 2:
						m.Store16(e.Addr, uint16(e.SrcB))
					default:
						m.Store32(e.Addr, e.SrcB)
					}
				}
			} else {
				e.Loaded = cp.result[i]
			}
		}
		s := cp.sig[i]
		ev.IFBytes = int(ifb[sw&SlotMask])
		ev.SrcBytesA = int(s >> sigSrcBytesAShift & 7)
		ev.SrcBytesB = int(s >> sigSrcBytesBShift & 7)
		ev.SrcHalvesA = int(s >> sigSrcHalvesAShift & 3)
		ev.SrcHalvesB = int(s >> sigSrcHalvesBShift & 3)
		ev.ALUOps = int(s >> sigALUOpsShift & 15)
		ev.ALUHalfOps = int(s >> sigALUHalfShift & 7)
		ev.MemBytes = int(s >> sigMemBytesShift & 7)
		ev.MemHalves = int(s >> sigMemHalvesShift & 3)
		ev.WBBytes = int(s >> sigWBBytesShift & 7)
		ev.WBHalves = int(s >> sigWBHalvesShift & 3)
		for _, cons := range consumers {
			cons.Consume(ev)
		}
	}
	return nil
}
