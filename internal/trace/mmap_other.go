//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package trace

// Platforms without a wired-up mmap read frames through io.ReaderAt
// instead (see MappedCapture.framePayload): identical replay semantics,
// one frame-sized copy per decode.

import "errors"

const mmapSupported = false

func mmapFile(fd int, size int64) ([]byte, error) {
	return nil, errors.New("trace: mmap unsupported on this platform")
}

func munmapFile(data []byte) error { return nil }
