package trace

// SIGCAP01: the compact persistent form of a Capture.
//
// SIGTRC01 (file.go) streams full 37-byte Exec records so a trace can be
// replayed anywhere without the benchmark binary; it is the interchange
// format. SIGCAP01 instead persists the in-memory columnar Capture — the
// representation the replay engine actually consumes — at a fraction of the
// size, so the simulation service can demote cold captures to disk and warm
// new shards from a capture directory instead of re-interpreting.
//
// Layout (all integers little-endian; "uvarint"/"svarint" are Go's
// binary.{Put,Read}Uvarint with svarint zigzag-mapped first):
//
//	magic     "SIGCAP01"
//	name      uvarint length + benchmark name bytes
//	statics   uvarint count, then one raw u32 instruction word per slot —
//	          every other Static field is re-derived by isa.Decode on load
//	insts     uvarint row count
//	lastNext  u32 NextPC of the final instruction
//	taken     ceil(insts/8) bytes, bit i = branch outcome of row i
//	slot      insts × uvarint statics index
//	pc        insts × svarint delta vs previous row's pc
//	srcA      insts × svarint delta vs previous row of the SAME slot
//	srcB      insts × svarint delta, per slot as srcA
//	result    insts × svarint delta, per slot as srcA
//	sig       insts × uvarint XOR vs previous row of the same slot
//	crc       u32 IEEE CRC-32 of every preceding byte
//
// The per-slot predictors are what make the format compact: a load in a
// loop sees its base register step by the stride (tiny signed delta) and
// its packed significance word barely change (XOR ≈ 0), so the columns
// that dominate the in-memory capture (24 B/row) shrink to ~1–2 B each.
// The suite-wide budget is ≤ CapFileMaxBytesPerInst, enforced by test.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/isa"
)

const capMagic = "SIGCAP01"

// CapFileMaxBytesPerInst is the persistent-format budget: a serialized
// capture must average at or under this many bytes per recorded
// instruction across the standard suite (enforced by test). Half the
// in-memory columnar footprint, a third of a SIGTRC01 record.
const CapFileMaxBytesPerInst = 12

// CapFileExt is the conventional filename extension for SIGCAP01 files.
const CapFileExt = ".sigcap"

// capFileMaxName bounds the benchmark-name field when decoding.
const capFileMaxName = 256

// capFileMaxStatics bounds the statics table when decoding; real traces
// hold a few hundred distinct words, so anything near this is corruption.
const capFileMaxStatics = 1 << 20

// CorruptError reports a structurally invalid capture file: bad magic,
// truncation, counts that cannot fit the input, CRC mismatch. The trace
// cache treats it like any load failure — degrade to a cache miss and
// re-capture — but the type lets callers distinguish a damaged file from
// an environmental error (permissions, I/O) worth retrying.
type CorruptError struct {
	Format string // "SIGCAP01" or "SIGCAP02"
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("trace: corrupt %s capture: %s", e.Format, e.Reason)
}

// zigzag maps a signed 32-bit delta to an unsigned value with small
// magnitudes near zero, the standard varint-friendly encoding.
func zigzag(d int32) uint64 {
	return uint64((uint32(d) << 1) ^ uint32(d>>31))
}

func unzigzag(u uint64) uint32 {
	v := uint32(u)
	return (v >> 1) ^ -(v & 1)
}

// crcWriter counts and checksums everything written through it.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
	n   int64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc.Write(p[:n])
	cw.n += int64(n)
	return n, err
}

// WriteTo serializes the capture as SIGCAP01, implementing io.WriterTo.
// The capture must be complete (CaptureRun, or ride-along + Finalize);
// concurrent Replays are fine, concurrent recording is not.
func (cp *Capture) WriteTo(w io.Writer) (int64, error) {
	cw := &crcWriter{w: w, crc: crc32.NewIEEE()}
	bw := bufio.NewWriterSize(cw, 1<<16)
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		bw.Write(scratch[:n])
	}
	putU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		bw.Write(scratch[:4])
	}

	bw.WriteString(capMagic)
	putUvarint(uint64(len(cp.bench.Name)))
	bw.WriteString(cp.bench.Name)

	putUvarint(uint64(len(cp.statics)))
	for i := range cp.statics {
		putU32(cp.statics[i].Inst.Raw)
	}

	n := len(cp.slot)
	putUvarint(uint64(n))
	putU32(cp.lastNextPC)

	taken := make([]byte, (n+7)/8)
	for i, sw := range cp.slot {
		if sw&TakenBit != 0 {
			taken[i>>3] |= 1 << (i & 7)
		}
	}
	bw.Write(taken)

	for _, sw := range cp.slot {
		putUvarint(uint64(sw & SlotMask))
	}
	var prevPC uint32
	for _, pc := range cp.pc {
		putUvarint(zigzag(int32(pc - prevPC)))
		prevPC = pc
	}
	prev := make([]uint32, len(cp.statics))
	for _, col := range [][]uint32{cp.srcA, cp.srcB, cp.result} {
		clear(prev)
		for i, v := range col {
			s := cp.slot[i] & SlotMask
			putUvarint(zigzag(int32(v - prev[s])))
			prev[s] = v
		}
	}
	clear(prev)
	for i, v := range cp.sig {
		s := cp.slot[i] & SlotMask
		putUvarint(uint64(v ^ prev[s]))
		prev[s] = v
	}

	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	sum := cw.crc.Sum32()
	binary.LittleEndian.PutUint32(scratch[:4], sum)
	if _, err := cw.Write(scratch[:4]); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// crcReader checksums everything read through it; the trailer is read from
// the underlying bufio.Reader directly so it is not hashed.
type crcReader struct {
	r   *bufio.Reader
	crc hash.Hash32
	one [1]byte
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc.Write(p[:n])
	return n, err
}

func (cr *crcReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.one[0] = b
		cr.crc.Write(cr.one[:])
	}
	return b, err
}

// ReadCaptureFrom decodes a persisted capture stream — SIGCAP01 or
// SIGCAP02, dispatched on the leading magic — back into a fully resident,
// replay-ready Capture. The benchmark named in the header must exist in the
// served suite (its memory image is rebuilt from the benchmark, not the
// file). Decoding verifies every CRC; a capture that loads cleanly replays
// bit-identically to the one that was written. Structural damage surfaces
// as a *CorruptError, and header counts are validated against the input
// size (when the reader exposes one) before any column is allocated, so a
// corrupt or adversarial header cannot trigger a huge allocation.
func ReadCaptureFrom(r io.Reader) (*Capture, error) {
	return readCaptureFrom(r, inputSize(r))
}

// inputSize reports how many bytes r can still yield, or -1 when unknowable.
// Known sizes let the header decoders reject impossible counts up front.
func inputSize(r io.Reader) int64 {
	switch v := r.(type) {
	case *os.File:
		if fi, err := v.Stat(); err == nil && fi.Mode().IsRegular() {
			return fi.Size()
		}
	case *bytes.Reader:
		return int64(v.Len())
	}
	return -1
}

func readCaptureFrom(r io.Reader, size int64) (*Capture, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.Peek(len(capMagic))
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, &CorruptError{Format: "capture", Reason: "file truncated"}
		}
		return nil, fmt.Errorf("trace: reading capture: %w", err)
	}
	switch string(magic) {
	case capMagic:
		return readCapture1(br, size)
	case cap2Magic:
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading capture: %w", err)
		}
		return readCapture2Bytes(data)
	default:
		return nil, &CorruptError{Format: "capture", Reason: fmt.Sprintf("bad capture magic %q", magic)}
	}
}

// readCapture1 decodes the SIGCAP01 single-stream format. size is the total
// input size when known (-1 otherwise), used to bound header counts before
// allocation.
func readCapture1(br *bufio.Reader, size int64) (*Capture, error) {
	cr := &crcReader{r: br, crc: crc32.NewIEEE()}
	fail := func(err error) (*Capture, error) {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, &CorruptError{Format: capMagic, Reason: "file truncated"}
		}
		return nil, fmt.Errorf("trace: reading capture: %w", err)
	}
	corrupt := func(format string, args ...any) (*Capture, error) {
		return nil, &CorruptError{Format: capMagic, Reason: fmt.Sprintf(format, args...)}
	}

	magic := make([]byte, len(capMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return fail(err)
	}
	nameLen, err := binary.ReadUvarint(cr)
	if err != nil {
		return fail(err)
	}
	if nameLen > capFileMaxName {
		return corrupt("bench name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(cr, name); err != nil {
		return fail(err)
	}
	b, ok := bench.ByName(string(name))
	if !ok {
		return corrupt("unknown benchmark %q", name)
	}
	cp := NewCapture(b)

	nStatics, err := binary.ReadUvarint(cr)
	if err != nil {
		return fail(err)
	}
	if nStatics > capFileMaxStatics {
		return corrupt("statics table size %d", nStatics)
	}
	if size >= 0 && nStatics*4 > uint64(size) {
		return corrupt("statics count %d exceeds %d-byte input", nStatics, size)
	}
	cp.statics = make([]Static, nStatics)
	var word [4]byte
	for i := range cp.statics {
		if _, err := io.ReadFull(cr, word[:]); err != nil {
			return fail(err)
		}
		raw := binary.LittleEndian.Uint32(word[:])
		cp.statics[i] = staticFor(isa.Decode(raw))
		cp.slotOf[raw] = uint32(i)
	}

	rows, err := binary.ReadUvarint(cr)
	if err != nil {
		return fail(err)
	}
	if rows > b.MaxInsts {
		return corrupt("rows %d exceed %s's limit %d", rows, b.Name, b.MaxInsts)
	}
	if size >= 0 && rows*cap2MinRowBytes > uint64(size) {
		return corrupt("rows %d cannot fit %d-byte input", rows, size)
	}
	n := int(rows)
	if _, err := io.ReadFull(cr, word[:]); err != nil {
		return fail(err)
	}
	cp.lastNextPC = binary.LittleEndian.Uint32(word[:])

	taken := make([]byte, (n+7)/8)
	if _, err := io.ReadFull(cr, taken); err != nil {
		return fail(err)
	}

	cp.slot = make([]uint32, n)
	for i := range cp.slot {
		s, err := binary.ReadUvarint(cr)
		if err != nil {
			return fail(err)
		}
		if s >= nStatics {
			return corrupt("row %d references slot %d of %d", i, s, nStatics)
		}
		sw := uint32(s)
		if taken[i>>3]&(1<<(i&7)) != 0 {
			sw |= TakenBit
		}
		cp.slot[i] = sw
	}
	cp.pc = make([]uint32, n)
	var prevPC uint32
	for i := range cp.pc {
		d, err := binary.ReadUvarint(cr)
		if err != nil {
			return fail(err)
		}
		prevPC += unzigzag(d)
		cp.pc[i] = prevPC
	}
	prev := make([]uint32, nStatics)
	for _, col := range []*[]uint32{&cp.srcA, &cp.srcB, &cp.result} {
		*col = make([]uint32, n)
		clear(prev)
		for i := range *col {
			d, err := binary.ReadUvarint(cr)
			if err != nil {
				return fail(err)
			}
			s := cp.slot[i] & SlotMask
			prev[s] += unzigzag(d)
			(*col)[i] = prev[s]
		}
	}
	cp.sig = make([]uint32, n)
	clear(prev)
	for i := range cp.sig {
		d, err := binary.ReadUvarint(cr)
		if err != nil {
			return fail(err)
		}
		if d > 1<<32-1 {
			return corrupt("row %d sig delta overflows", i)
		}
		s := cp.slot[i] & SlotMask
		prev[s] ^= uint32(d)
		cp.sig[i] = prev[s]
	}

	sum := cr.crc.Sum32()
	if _, err := io.ReadFull(br, word[:]); err != nil {
		return fail(err)
	}
	if got := binary.LittleEndian.Uint32(word[:]); got != sum {
		return corrupt("CRC mismatch: file %#08x, computed %#08x", got, sum)
	}
	return cp, nil
}

// CaptureFilePath is the conventional location for b's persisted capture
// inside dir: <dir>/<bench-name>.sigcap.
func CaptureFilePath(dir, benchName string) string {
	return filepath.Join(dir, benchName+CapFileExt)
}

// WriteCaptureFile persists cp under dir at its conventional path,
// atomically (tmp + rename), so concurrent readers never observe a partial
// file. It returns the final path. New files are written as SIGCAP02 so
// they are mmap-servable (OpenMappedCapture); ReadCaptureFile still reads
// SIGCAP01 spills from before the format switch.
func WriteCaptureFile(dir string, cp *Capture) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := CaptureFilePath(dir, cp.bench.Name)
	tmp, err := os.CreateTemp(dir, cp.bench.Name+".tmp*")
	if err != nil {
		return "", err
	}
	if _, err := cp.WriteTo2(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	// CreateTemp makes 0600 files; captures are shareable artifacts.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return path, nil
}

// ReadCaptureFile eagerly loads a capture file written by WriteCaptureFile,
// either format. SIGCAP02 files decode through their footer index with one
// reused frame buffer (no whole-file copy); for the lazy O(index) tier use
// OpenMappedCapture instead.
func ReadCaptureFile(path string) (*Capture, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [len(cap2Magic)]byte
	if _, err := f.ReadAt(magic[:], 0); err == nil && string(magic[:]) == cap2Magic {
		fi, err := f.Stat()
		if err != nil {
			return nil, err
		}
		ix, err := openCap2Index(f, fi.Size())
		if err != nil {
			return nil, err
		}
		var buf []byte
		return ix.decodeAll(func(fr cap2Frame) ([]byte, error) {
			if int(fr.len) > cap(buf) {
				buf = make([]byte, fr.len)
			}
			b := buf[:fr.len]
			if _, err := f.ReadAt(b, fr.off); err != nil {
				return nil, err
			}
			return b, nil
		})
	}
	return ReadCaptureFrom(f)
}
