package trace_test

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/icomp"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

var rc = icomp.MustNewRecoder(icomp.DefaultTopFuncts())

// Recording a benchmark and replaying it must reproduce the exact pipeline
// result of the live run.
func TestRecordReplayEquivalence(t *testing.T) {
	b, _ := bench.ByName("g711dec")

	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	live := pipeline.NewByteSerial()
	if _, err := trace.Run(b, rc, w, live); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	liveRes := live.Result()
	if w.Count() != liveRes.Insts {
		t.Fatalf("wrote %d records, live saw %d", w.Count(), liveRes.Insts)
	}

	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayed := pipeline.NewByteSerial()
	n, err := r.Replay(rc, replayed)
	if err != nil {
		t.Fatal(err)
	}
	repRes := replayed.Result()
	if n != liveRes.Insts || repRes.Cycles != liveRes.Cycles {
		t.Fatalf("replay: %d insts %d cycles; live: %d insts %d cycles",
			n, repRes.Cycles, liveRes.Insts, liveRes.Cycles)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := trace.NewReader(bytes.NewReader([]byte("NOTATRACE..."))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := trace.NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := bench.ByName("g711dec")
	if _, err := trace.Run(b, rc, w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-5] // chop mid-record
	r, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := r.Next()
		if err == io.EOF {
			t.Fatal("truncation not detected")
		}
		if err != nil {
			return // truncated-record error surfaced
		}
	}
}

func TestRecordRoundTripFields(t *testing.T) {
	b, _ := bench.ByName("rawcaudio")
	var buf bytes.Buffer
	w, _ := trace.NewWriter(&buf)
	var originals []trace.Event
	collect := trace.ConsumerFunc(func(e trace.Event) {
		if len(originals) < 500 {
			originals = append(originals, e)
		}
	})
	if _, err := trace.Run(b, rc, w, collect); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range originals {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != want.Exec {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, want.Exec)
		}
	}
}
