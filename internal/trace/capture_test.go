package trace_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/activity"
	"repro/internal/bench"
	"repro/internal/icomp"
	"repro/internal/trace"
)

// captureTestBenches are small suite members that still cover loads,
// stores, branches, mult/div, and jal/jr shapes.
var captureTestBenches = []string{"dijkstra", "g711dec", "rawdaudio"}

func mustBench(t testing.TB, name string) bench.Benchmark {
	t.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("benchmark %q not in suite", name)
	}
	return b
}

func defaultRecoder(t *testing.T) *icomp.Recoder {
	t.Helper()
	return icomp.MustNewRecoder(icomp.DefaultTopFuncts())
}

type eventRecorder struct{ events []trace.Event }

func (r *eventRecorder) Consume(e trace.Event) { r.events = append(r.events, e) }

// TestReplayBitIdentical replays a captured trace and demands exact Event
// equality — every cpu.Exec field and every significance quantity — with
// the live run, for a capture built by CaptureRun and for one recorded by
// riding along the live run as a Consumer.
func TestReplayBitIdentical(t *testing.T) {
	rc := defaultRecoder(t)
	for _, name := range captureTestBenches {
		b := mustBench(t, name)
		live := &eventRecorder{}
		rideAlong := trace.NewCapture(b)
		if _, err := trace.Run(b, rc, live, rideAlong); err != nil {
			t.Fatalf("%s: live run: %v", name, err)
		}

		captured, err := trace.CaptureRun(context.Background(), b)
		if err != nil {
			t.Fatalf("%s: CaptureRun: %v", name, err)
		}
		if captured.Len() != len(live.events) {
			t.Fatalf("%s: capture has %d events, live run %d", name, captured.Len(), len(live.events))
		}

		for whose, cp := range map[string]*trace.Capture{"CaptureRun": captured, "ride-along": rideAlong} {
			replayed := &eventRecorder{}
			if err := cp.Replay(context.Background(), rc, replayed); err != nil {
				t.Fatalf("%s: replay (%s): %v", name, whose, err)
			}
			if len(replayed.events) != len(live.events) {
				t.Fatalf("%s: replay (%s) produced %d events, live %d",
					name, whose, len(replayed.events), len(live.events))
			}
			for i := range live.events {
				if !reflect.DeepEqual(replayed.events[i], live.events[i]) {
					t.Fatalf("%s: replay (%s) event %d differs:\n live   %+v\n replay %+v",
						name, whose, i, live.events[i], replayed.events[i])
				}
			}
		}
	}
}

// TestReplayActivityIdentical runs the activity collector (which reads
// program memory at cache-fill time) live and over a replayed shadow
// memory, and demands identical counts at both granularities.
func TestReplayActivityIdentical(t *testing.T) {
	rc := defaultRecoder(t)
	for _, name := range captureTestBenches {
		b := mustBench(t, name)
		for _, gran := range []int{1, 2} {
			c, err := b.NewCPU()
			if err != nil {
				t.Fatalf("%s: NewCPU: %v", name, err)
			}
			liveCol := activity.NewCollector(gran, rc, c.Mem)
			if err := trace.RunOn(c, b, rc, liveCol); err != nil {
				t.Fatalf("%s: live run: %v", name, err)
			}

			cp, err := trace.CaptureRun(context.Background(), b)
			if err != nil {
				t.Fatalf("%s: CaptureRun: %v", name, err)
			}
			m, err := cp.NewMemory()
			if err != nil {
				t.Fatalf("%s: NewMemory: %v", name, err)
			}
			replayCol := activity.NewCollector(gran, rc, m)
			if err := cp.ReplayOn(context.Background(), m, rc, replayCol); err != nil {
				t.Fatalf("%s: replay: %v", name, err)
			}
			if got, want := replayCol.Counts(), liveCol.Counts(); !reflect.DeepEqual(got, want) {
				t.Errorf("%s gran %d: replayed activity differs:\n live   %+v\n replay %+v",
					name, gran, want, got)
			}
		}
	}
}

// TestCaptureSizeBound pins the capture format to the documented
// per-instruction budget.
func TestCaptureSizeBound(t *testing.T) {
	for _, name := range captureTestBenches {
		b := mustBench(t, name)
		cp, err := trace.CaptureRun(context.Background(), b)
		if err != nil {
			t.Fatalf("%s: CaptureRun: %v", name, err)
		}
		if cp.Len() == 0 {
			t.Fatalf("%s: empty capture", name)
		}
		perInst := float64(cp.SizeBytes()) / float64(cp.Len())
		if perInst > trace.MaxBytesPerInst {
			t.Errorf("%s: %.1f B/instruction exceeds budget %d (size %d, %d insts, %d statics)",
				name, perInst, trace.MaxBytesPerInst, cp.SizeBytes(), cp.Len(), cp.Statics())
		}
		t.Logf("%s: %d insts, %d statics, %.1f B/instruction", name, cp.Len(), cp.Statics(), perInst)
	}
}

// TestCaptureFunctCounts checks that the capture's dynamic funct tally
// matches the interpreter-based profile.
func TestCaptureFunctCounts(t *testing.T) {
	b := mustBench(t, captureTestBenches[0])
	want, err := trace.FunctProfile([]bench.Benchmark{b})
	if err != nil {
		t.Fatalf("FunctProfile: %v", err)
	}
	cp, err := trace.CaptureRun(context.Background(), b)
	if err != nil {
		t.Fatalf("CaptureRun: %v", err)
	}
	if got := cp.FunctCounts(); !reflect.DeepEqual(got, want) {
		t.Errorf("FunctCounts = %v, want %v", got, want)
	}
}

// TestReplaySecondRecoder replays one capture under a different recoding
// and checks the re-derived IFBytes against the pure Annotate path.
func TestReplaySecondRecoder(t *testing.T) {
	b := mustBench(t, captureTestBenches[0])
	cp, err := trace.CaptureRun(context.Background(), b)
	if err != nil {
		t.Fatalf("CaptureRun: %v", err)
	}
	rc2, _, err := trace.SuiteRecoder([]bench.Benchmark{b})
	if err != nil {
		t.Fatalf("SuiteRecoder: %v", err)
	}
	checked := 0
	err = cp.Replay(context.Background(), rc2, trace.ConsumerFunc(func(e trace.Event) {
		if want := rc2.FetchBytes(e.Raw); e.IFBytes != want {
			t.Fatalf("event %d: IFBytes %d, want %d", checked, e.IFBytes, want)
		}
		checked++
	}))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if checked != cp.Len() {
		t.Fatalf("replayed %d events, capture holds %d", checked, cp.Len())
	}
}

// TestCaptureReplayCancel exercises context cancellation on both the
// capture and replay loops.
func TestCaptureReplayCancel(t *testing.T) {
	b := mustBench(t, captureTestBenches[0])
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := trace.CaptureRun(ctx, b); err == nil {
		t.Error("CaptureRun under cancelled context succeeded")
	}
	cp, err := trace.CaptureRun(context.Background(), b)
	if err != nil {
		t.Fatalf("CaptureRun: %v", err)
	}
	if err := cp.Replay(ctx, defaultRecoder(t)); err == nil {
		t.Error("Replay under cancelled context succeeded")
	}
}
