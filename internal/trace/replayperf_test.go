package trace_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// TestStreamingReplayPerfSmoke is the CI gate for the streaming tier at the
// suite-replay unit: one replay feeding the FULL consumer set (every
// pipeline model plus an activity collector), which is how RunBenchReplay
// and the sigserve suite endpoint drive a capture — decode once, consume
// many. Gates, per the SIGCAP02 design budget:
//
//   - streaming (mapped SIGCAP02, per-frame decode) within 1.3x of the
//     resident batch replay, best-of-N wall clock summed over the benches;
//   - the mapped handle's accounted resident bytes under a quarter of the
//     decoded column size (6 u32 columns/row) — replay memory is O(frame),
//     not O(trace).
//
// Wall-clock gates are too noisy for every developer run, so like the
// simsvc replay smoke this only arms under SIGPERF_SMOKE=1. When
// BENCH_REPLAY_OUT names a file, the measured totals for all three engines
// (batch, scalar, streaming) are written there as JSON for the CI artifact
// trail.
func TestStreamingReplayPerfSmoke(t *testing.T) {
	if os.Getenv("SIGPERF_SMOKE") == "" {
		t.Skip("set SIGPERF_SMOKE=1 to run the wall-clock replay smoke (CI does)")
	}
	benches := []string{"dijkstra", "g711dec", "rawdaudio"}
	rc := defaultRecoder(t)
	ctx := context.Background()
	dir := t.TempDir()

	type arm struct {
		rep trace.Replayer
	}
	resident := make([]arm, len(benches))
	streamed := make([]arm, len(benches))
	var decodedBytes, mappedBytes int64
	for i, name := range benches {
		cp, err := trace.CaptureRun(ctx, mustBench(t, name))
		if err != nil {
			t.Fatalf("%s: CaptureRun: %v", name, err)
		}
		path, err := trace.WriteCaptureFile(dir, cp)
		if err != nil {
			t.Fatalf("%s: WriteCaptureFile: %v", name, err)
		}
		mc, err := trace.OpenMappedCapture(path)
		if err != nil {
			t.Fatalf("%s: OpenMappedCapture: %v", name, err)
		}
		t.Cleanup(func() { mc.Close() })
		resident[i], streamed[i] = arm{cp}, arm{mc}
		decodedBytes += int64(cp.Len()) * 24 // six u32 columns per row
		mappedBytes += int64(mc.SizeBytes())
	}

	// One replay drives every model plus a byte-granularity activity
	// collector — the suite evaluation's consumer set.
	replay := func(rep trace.Replayer, scalar bool) error {
		m, err := rep.NewMemory()
		if err != nil {
			return err
		}
		models := pipeline.NewAll()
		consumers := make([]trace.Consumer, 0, len(models)+1)
		for _, pm := range models {
			consumers = append(consumers, pm)
		}
		consumers = append(consumers, activity.NewCollector(1, rc, m))
		if scalar {
			return rep.ReplayOn(ctx, m, rc, consumers...)
		}
		return rep.ReplayBlocksOn(ctx, m, rc, consumers...)
	}

	const rounds = 3
	measure := func(arms []arm, scalar bool) time.Duration {
		t.Helper()
		// Warm-up pass: page in the mapping, fill the recoder memos.
		for _, a := range arms {
			if err := replay(a.rep, scalar); err != nil {
				t.Fatal(err)
			}
		}
		best := time.Duration(0)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for _, a := range arms {
				if err := replay(a.rep, scalar); err != nil {
					t.Fatal(err)
				}
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}

	batch := measure(resident, false)
	scalar := measure(resident, true)
	streaming := measure(streamed, false)
	t.Logf("suite replay best-of-%d: batch %v, scalar %v, streaming %v (%.2fx of batch); decoded %d B, mapped resident %d B (%.1f%%)",
		rounds, batch, scalar, streaming, float64(streaming)/float64(batch),
		decodedBytes, mappedBytes, 100*float64(mappedBytes)/float64(decodedBytes))

	if streaming*10 >= batch*13 {
		t.Errorf("streaming replay too slow: %v vs batch %v (gate 1.3x)", streaming, batch)
	}
	if mappedBytes*4 >= decodedBytes {
		t.Errorf("mapped tier holds %d resident bytes, decoded columns are %d: want < 1/4 (O(frame), not O(trace))",
			mappedBytes, decodedBytes)
	}

	if out := os.Getenv("BENCH_REPLAY_OUT"); out != "" {
		doc, err := json.MarshalIndent(map[string]interface{}{
			"benches":             benches,
			"rounds":              rounds,
			"batchNs":             batch.Nanoseconds(),
			"scalarNs":            scalar.Nanoseconds(),
			"streamingNs":         streaming.Nanoseconds(),
			"streamingVsBatch":    float64(streaming) / float64(batch),
			"decodedColumnBytes":  decodedBytes,
			"mappedResidentBytes": mappedBytes,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", out, err)
		}
		t.Logf("wrote %s", out)
	}
}
