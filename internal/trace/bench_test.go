package trace_test

import (
	"context"
	"testing"

	"repro/internal/icomp"
	"repro/internal/trace"
)

func benchRecoder(b *testing.B) *icomp.Recoder {
	b.Helper()
	rc, err := icomp.NewRecoder(icomp.DefaultTopFuncts())
	if err != nil {
		b.Fatal(err)
	}
	return rc
}

// BenchmarkStepAnnotate measures the live path: interpret the benchmark and
// annotate every retired instruction (the per-raw IFBytes memo included).
func BenchmarkStepAnnotate(b *testing.B) {
	bm := mustBench(b, "dijkstra")
	rc := benchRecoder(b)
	sink := trace.ConsumerFunc(func(trace.Event) {})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.RunCtx(ctx, bm, rc, sink); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCapture measures capture alone: interpret once, record the
// columnar trace, no annotation consumers attached.
func BenchmarkCapture(b *testing.B) {
	bm := mustBench(b, "dijkstra")
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.CaptureRun(ctx, bm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures re-annotating a captured trace without the
// interpreter — the hot loop of every warm sweep.
func BenchmarkReplay(b *testing.B) {
	bm := mustBench(b, "dijkstra")
	rc := benchRecoder(b)
	ctx := context.Background()
	cp, err := trace.CaptureRun(ctx, bm)
	if err != nil {
		b.Fatal(err)
	}
	sink := trace.ConsumerFunc(func(trace.Event) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cp.Replay(ctx, rc, sink); err != nil {
			b.Fatal(err)
		}
	}
}

// batchSink is a BatchConsumer that discards blocks: benchmarks of the
// replay engines themselves, with no consumer work attached.
type batchSink struct{}

func (batchSink) Consume(trace.Event)       {}
func (batchSink) ConsumeBlock(*trace.Block) {}

// BenchmarkReplayBlocks measures the column-block batch path over a fully
// resident capture — the hot loop of a warm sweep once the trace is decoded.
func BenchmarkReplayBlocks(b *testing.B) {
	bm := mustBench(b, "dijkstra")
	rc := benchRecoder(b)
	ctx := context.Background()
	cp, err := trace.CaptureRun(ctx, bm)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cp.ReplayBlocks(ctx, rc, batchSink{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayStreamed measures the same batch replay streamed from a
// mapped SIGCAP02 file: every frame is varint-decoded on the fly into one
// reused buffer, so replay memory is O(frame) instead of O(trace). The
// delta against BenchmarkReplayBlocks is the pure per-frame decode cost.
func BenchmarkReplayStreamed(b *testing.B) {
	bm := mustBench(b, "dijkstra")
	rc := benchRecoder(b)
	ctx := context.Background()
	cp, err := trace.CaptureRun(ctx, bm)
	if err != nil {
		b.Fatal(err)
	}
	path, err := trace.WriteCaptureFile(b.TempDir(), cp)
	if err != nil {
		b.Fatal(err)
	}
	mc, err := trace.OpenMappedCapture(path)
	if err != nil {
		b.Fatal(err)
	}
	defer mc.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mc.ReplayBlocks(ctx, rc, batchSink{}); err != nil {
			b.Fatal(err)
		}
	}
}
