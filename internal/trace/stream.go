package trace

// Streaming replay off a mapped SIGCAP02 capture.
//
// MappedCapture is the lazy residency tier of a persisted capture: opening
// one costs the footer index and statics table (O(statics + frames) bytes),
// and replay decodes one frame at a time into a small per-replay buffer —
// O(FrameRows), not O(trace) — feeding consumers exactly the block
// boundaries and store-ordering that in-memory batch replay produces
// (emitSpans is shared, so the two tiers cannot diverge; the equivalence
// tests assert byte-identical results). The file itself is mapped read-only
// and MAP_SHARED, so N concurrent replays, N sweeping models, or N
// co-located shards all touch one page-cache copy of the cold columns.
//
// Lifecycle: Close marks the handle dead for new replays (ErrMappedClosed,
// a transient error — the file is still on disk, reopening succeeds) but
// the unmap itself is deferred until the last in-flight replay releases its
// reference, so cache eviction can never pull pages out from under a frame
// decode.

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"

	"repro/internal/bench"
	"repro/internal/icomp"
	"repro/internal/mem"
)

// ErrMappedClosed reports a replay attempted on a MappedCapture after
// Close (typically: the trace cache evicted the entry). It is transient —
// the capture file is intact on disk and re-opening it succeeds — so
// retry layers treat it like any recoverable fault.
var ErrMappedClosed error = &mappedClosedError{}

type mappedClosedError struct{}

func (*mappedClosedError) Error() string { return "trace: mapped capture closed" }

// Transient marks the error retryable for faultinject.IsTransient.
func (*mappedClosedError) Transient() bool { return true }

// MappedCapture is a SIGCAP02 capture served straight from its file. It
// implements Replayer next to *Capture; replays are independent and may run
// concurrently (each owns its decode buffers). Resident cost is the index,
// the statics table, and per-recoder memos — the columns stay on disk
// until a frame decode touches them.
type MappedCapture struct {
	ix   *cap2Index
	f    *os.File
	data []byte // whole-file mapping; nil on the io.ReaderAt fallback
	memo ifbMemo

	mu     sync.Mutex
	refs   int  // in-flight replays
	closed bool // no new replays; unmap when refs drains to 0
}

// OpenMappedCapture maps path (a SIGCAP02 file) for streaming replay,
// validating magic, footer index, and header — but decoding no frames.
// This is the cheap warm-start: a directory of captures can be opened in
// O(index) time and bytes, with column data faulted in on first replay.
// If the platform cannot mmap, the handle transparently falls back to
// positional reads; callers cannot tell apart from Mapped().
func OpenMappedCapture(path string) (*MappedCapture, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	ix, err := openCap2Index(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	mc := &MappedCapture{ix: ix, f: f}
	if mmapSupported {
		if data, err := mmapFile(int(f.Fd()), fi.Size()); err == nil {
			mc.data = data
		}
		// A failed map (exotic filesystem, address-space pressure) is not
		// an error: positional reads serve the same bytes.
	}
	// Backstop for leaked handles; the cache closes explicitly on evict.
	runtime.SetFinalizer(mc, (*MappedCapture).Close)
	return mc, nil
}

// Bench returns the benchmark the capture recorded.
func (mc *MappedCapture) Bench() bench.Benchmark { return mc.ix.b }

// Len returns the number of recorded instructions.
func (mc *MappedCapture) Len() int { return mc.ix.rows }

// Statics returns the number of distinct instruction words recorded.
func (mc *MappedCapture) Statics() int { return len(mc.ix.statics) }

// Frames returns the number of independently decodable frames.
func (mc *MappedCapture) Frames() int { return len(mc.ix.frames) }

// Mapped reports whether the file is memory-mapped (false on the
// io.ReaderAt fallback).
func (mc *MappedCapture) Mapped() bool { return mc.data != nil }

// FileSizeBytes returns the on-disk capture size (what the page cache may
// hold, shared machine-wide — not a per-handle resident cost).
func (mc *MappedCapture) FileSizeBytes() int64 { return mc.ix.size }

// SizeBytes estimates the handle's resident memory: footer index, statics
// table, one replay's decode buffers, and the per-recoder memos. Mapped
// column pages are deliberately excluded — they are clean, evictable, and
// shared with every other replayer of the same file — which is what makes
// this tier near-free for a byte-budgeted cache.
func (mc *MappedCapture) SizeBytes() int {
	return mc.ix.indexSizeBytes() + frameDecSizeBytes(len(mc.ix.statics)) +
		mc.memo.sizeBytes(len(mc.ix.statics))
}

// ClearMemos drops memoized per-recoder fetch-size tables.
func (mc *MappedCapture) ClearMemos() { mc.memo.clear() }

// NewMemory rebuilds the benchmark's initial memory image.
func (mc *MappedCapture) NewMemory() (*mem.Memory, error) {
	c, err := mc.ix.b.NewCPU()
	if err != nil {
		return nil, err
	}
	return c.Mem, nil
}

// Close retires the handle: new replays fail with ErrMappedClosed, and the
// mapping and file close once the last in-flight replay finishes (at once
// when idle). Safe to call more than once.
func (mc *MappedCapture) Close() error {
	mc.mu.Lock()
	if mc.closed {
		mc.mu.Unlock()
		return nil
	}
	mc.closed = true
	idle := mc.refs == 0
	mc.mu.Unlock()
	if idle {
		return mc.unmap()
	}
	return nil
}

func (mc *MappedCapture) acquire() error {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.closed {
		return fmt.Errorf("trace: replaying %s: %w", mc.ix.b.Name, ErrMappedClosed)
	}
	mc.refs++
	return nil
}

func (mc *MappedCapture) release() {
	mc.mu.Lock()
	mc.refs--
	last := mc.closed && mc.refs == 0
	mc.mu.Unlock()
	if last {
		mc.unmap()
	}
}

// unmap releases the mapping and file. Reached exactly once: by Close when
// idle, or by the final release after Close — never while a replay holds a
// reference.
func (mc *MappedCapture) unmap() error {
	runtime.SetFinalizer(mc, nil)
	var err error
	if mc.data != nil {
		err = munmapFile(mc.data)
		mc.data = nil
	}
	if cerr := mc.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// frameDec is one replay's private decode state: six column buffers of
// FrameRows rows, the per-slot predictor scratch, and (fallback only) a
// raw frame byte buffer. Concurrent replays of one MappedCapture never
// share mutable state.
type frameDec struct {
	cols [6][]uint32
	sc   *cap2Scratch
	raw  []byte
}

func newFrameDec(nStatics int) *frameDec {
	d := &frameDec{sc: newCap2Scratch(nStatics)}
	backing := make([]uint32, 6*FrameRows)
	for i := range d.cols {
		d.cols[i] = backing[i*FrameRows : (i+1)*FrameRows]
	}
	return d
}

// frameDecSizeBytes is the resident estimate of one replay's decode
// buffers, charged by SizeBytes so the cache accounts for a live replay.
func frameDecSizeBytes(nStatics int) int {
	return 6*FrameRows*4 + 4*nStatics*4 + (FrameRows+7)/8
}

// framePayload returns frame f's raw bytes: a zero-copy slice of the
// mapping, or a positional read into the replay's reuse buffer.
func (mc *MappedCapture) framePayload(f int, d *frameDec) ([]byte, error) {
	fr := mc.ix.frames[f]
	if mc.data != nil {
		return mc.data[fr.off : fr.off+int64(fr.len)], nil
	}
	if int(fr.len) > cap(d.raw) {
		d.raw = make([]byte, fr.len)
	}
	b := d.raw[:fr.len]
	if _, err := mc.f.ReadAt(b, fr.off); err != nil {
		return nil, err
	}
	return b, nil
}

// replayFrames is the single replay engine behind every MappedCapture
// replay flavor: decode frame, CRC-checked, into the replay's buffers,
// then fan it out through the shared emitSpans — one frame is exactly one
// block, so consumers see the same boundaries as Capture.ReplayBlocksOn.
func (mc *MappedCapture) replayFrames(ctx context.Context, m *mem.Memory, rc *icomp.Recoder, sinks []BatchConsumer) error {
	if err := mc.acquire(); err != nil {
		return err
	}
	defer mc.release()
	ifb := mc.memo.tableFor(rc, mc.ix.statics)
	d := newFrameDec(len(mc.ix.statics))
	blk := Block{Statics: mc.ix.statics, IFB: ifb}
	nStatics := uint64(len(mc.ix.statics))
	for f := range mc.ix.frames {
		select {
		case <-ctx.Done():
			return fmt.Errorf("trace: replaying %s aborted after %d instructions: %w",
				mc.ix.b.Name, f*FrameRows, ctx.Err())
		default:
		}
		lo, hi := mc.ix.frameSpan(f)
		rows := hi - lo
		payload, err := mc.framePayload(f, d)
		if err != nil {
			return fmt.Errorf("trace: reading %s frame %d: %w", mc.ix.b.Name, f, err)
		}
		if err := decodeCap2Frame(payload, mc.ix.frames[f], nStatics,
			d.cols[0][:rows], d.cols[1][:rows], d.cols[2][:rows],
			d.cols[3][:rows], d.cols[4][:rows], d.cols[5][:rows], d.sc); err != nil {
			return fmt.Errorf("trace: replaying %s: %w", mc.ix.b.Name, err)
		}
		emitSpans(&blk, m, sinks, lo,
			d.cols[0][:rows], d.cols[1][:rows], d.cols[2][:rows],
			d.cols[3][:rows], d.cols[4][:rows], d.cols[5][:rows],
			mc.ix.frameEndNextPC(f))
	}
	return nil
}

// Replay streams the capture to the consumers under rc, rebuilding the
// benchmark's memory image first; see Capture.Replay for the contract.
func (mc *MappedCapture) Replay(ctx context.Context, rc *icomp.Recoder, consumers ...Consumer) error {
	m, err := mc.NewMemory()
	if err != nil {
		return err
	}
	return mc.ReplayOn(ctx, m, rc, consumers...)
}

// ReplayOn is scalar (event-at-a-time) streaming replay over a caller
// memory image: every consumer is driven through the scalar shim, exactly
// like Capture.ReplayOn drives them directly.
func (mc *MappedCapture) ReplayOn(ctx context.Context, m *mem.Memory, rc *icomp.Recoder, consumers ...Consumer) error {
	return mc.replayFrames(ctx, m, rc, []BatchConsumer{&scalarShim{consumers: consumers}})
}

// BatchReplay is batch streaming replay over a freshly rebuilt memory
// image; see Capture.BatchReplay for the contract.
func (mc *MappedCapture) BatchReplay(ctx context.Context, rc *icomp.Recoder, consumers ...Consumer) error {
	m, err := mc.NewMemory()
	if err != nil {
		return err
	}
	return mc.ReplayBlocksOn(ctx, m, rc, consumers...)
}

// ReplayBlocks is batch streaming replay without a memory image.
func (mc *MappedCapture) ReplayBlocks(ctx context.Context, rc *icomp.Recoder, consumers ...Consumer) error {
	return mc.replayFrames(ctx, nil, rc, gatherSinks(consumers))
}

// ReplayBlocksOn is batch streaming replay over a caller memory image; see
// Capture.ReplayBlocksOn for the memory-ordering contract.
func (mc *MappedCapture) ReplayBlocksOn(ctx context.Context, m *mem.Memory, rc *icomp.Recoder, consumers ...Consumer) error {
	return mc.replayFrames(ctx, m, rc, gatherSinks(consumers))
}

// Materialize eagerly decodes the whole capture into a resident *Capture,
// for callers that need the dense tier (e.g. a capture promoted back off
// disk for repeated tight-loop replays).
func (mc *MappedCapture) Materialize() (*Capture, error) {
	if err := mc.acquire(); err != nil {
		return nil, err
	}
	defer mc.release()
	d := newFrameDec(len(mc.ix.statics))
	return mc.ix.decodeAll(func(fr cap2Frame) ([]byte, error) {
		if mc.data != nil {
			return mc.data[fr.off : fr.off+int64(fr.len)], nil
		}
		if int(fr.len) > cap(d.raw) {
			d.raw = make([]byte, fr.len)
		}
		b := d.raw[:fr.len]
		if _, err := mc.f.ReadAt(b, fr.off); err != nil {
			return nil, err
		}
		return b, nil
	})
}

// Interface conformance for both residency tiers.
var (
	_ Replayer = (*Capture)(nil)
	_ Replayer = (*MappedCapture)(nil)
)
