package sigalu_test

import (
	"fmt"

	"repro/internal/sigalu"
)

// Adding two short operands touches one byte; the paper's Case-3 exception
// (0x01 + 0x7f) forces a second byte to be generated.
func ExampleAdd() {
	r := sigalu.Add(3, 4)
	fmt.Printf("3+4: value=%d bytes=%d\n", r.Value, r.BlocksOperated)
	r = sigalu.Add(0x01, 0x7f)
	fmt.Printf("0x01+0x7f: value=%#x bytes=%d\n", r.Value, r.BlocksOperated)
	// Output:
	// 3+4: value=7 bytes=1
	// 0x01+0x7f: value=0x80 bytes=2
}

// Results are always bit-exact; activity varies with significance.
func ExampleSub() {
	r := sigalu.Sub(5, 5)
	fmt.Printf("5-5: value=%d significant-bytes=%d\n", r.Value, r.Ext.SigByteCount())
	// Output:
	// 5-5: value=0 significant-bytes=1
}
