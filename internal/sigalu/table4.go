package sigalu

import "fmt"

// Table4Row characterizes one class of Case-3 exceptions (the paper's
// Table 4): a pair of top-two-bit patterns of the preceding bytes for
// which the sign-extension prediction of the next result byte can fail, and
// whether the failure depends on the carry out of bit 6 ("the 5th bit
// produces carry" in the paper's counting).
type Table4Row struct {
	// TopBitsA and TopBitsB are the top two bits of the preceding operand
	// bytes (unordered pair, A ≤ B numerically).
	TopBitsA, TopBitsB uint8
	// CarryDependent is true when only some byte values of the class
	// except (the exception requires a carry crossing bit 6); false when
	// every byte pair of the class excepts.
	CarryDependent bool
	// Exceptions counts the (byte, byte, carry-in) combinations of the
	// class that except.
	Exceptions int
	// Population counts all combinations in the class.
	Population int
}

// String renders the row in the paper's "xx"-pattern notation.
func (r Table4Row) String() string {
	cond := "always"
	if r.CarryDependent {
		cond = "when bit 6 carries"
	}
	return fmt.Sprintf("%02bxxxxxx + %02bxxxxxx: exception %s (%d/%d cases)",
		r.TopBitsA, r.TopBitsB, cond, r.Exceptions, r.Population)
}

// DeriveTable4 enumerates all preceding-byte pairs and carry-ins where both
// current bytes are sign extensions, and returns the classes that ever
// produce a Case-3 exception. This is the exact version of the paper's
// Table 4 (two of the paper's six printed rows — the mixed-sign pairs
// (00,11) and (01,10) — never except under exact arithmetic and so do not
// appear; see the package tests).
func DeriveTable4() []Table4Row {
	classes := make(map[[2]uint8]*Table4Row)
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			for cin := uint32(0); cin < 2; cin++ {
				sum0 := uint32(a) + uint32(b) + cin
				c0 := sum0 & 0xff
				carry := sum0 >> 8
				c1 := (signExtBlock(uint32(a), 1) + signExtBlock(uint32(b), 1) + carry) & 0xff
				key := [2]uint8{uint8(a >> 6), uint8(b >> 6)}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				row, ok := classes[key]
				if !ok {
					row = &Table4Row{TopBitsA: key[0], TopBitsB: key[1]}
					classes[key] = row
				}
				row.Population++
				if c1 != signExtBlock(c0, 1) {
					row.Exceptions++
				}
			}
		}
	}
	var out []Table4Row
	for _, row := range classes {
		if row.Exceptions == 0 {
			continue
		}
		row.CarryDependent = row.Exceptions < row.Population
		out = append(out, *row)
	}
	// Deterministic order: by top-bit pair.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].TopBitsA < out[i].TopBitsA ||
				(out[j].TopBitsA == out[i].TopBitsA && out[j].TopBitsB < out[i].TopBitsB) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
