package sigalu

import (
	"testing"
	"testing/quick"

	"repro/internal/sig"
)

// All operations must be bit-exact with the conventional 32-bit datapath.
func TestAddBitExact(t *testing.T) {
	f := func(a, b uint32) bool { return Add(a, b).Value == a+b }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubBitExact(t *testing.T) {
	f := func(a, b uint32) bool { return Sub(a, b).Value == a-b }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHalfwordAddBitExact(t *testing.T) {
	f := func(a, b uint32) bool {
		return AddG(a, b, 2).Value == a+b && SubG(a, b, 2).Value == a-b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogicBitExact(t *testing.T) {
	f := func(a, b uint32) bool {
		return And(a, b).Value == a&b &&
			Or(a, b).Value == a|b &&
			Xor(a, b).Value == a^b &&
			Nor(a, b).Value == ^(a|b) &&
			AndG(a, b, 2).Value == a&b &&
			NorG(a, b, 2).Value == ^(a|b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShiftBitExact(t *testing.T) {
	f := func(v, s uint32) bool {
		s &= 31
		return ShiftLeft(v, s).Value == v<<s &&
			ShiftRightL(v, s).Value == v>>s &&
			ShiftRightA(v, s).Value == uint32(int32(v)>>s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetLessBitExact(t *testing.T) {
	f := func(a, b uint32) bool {
		wantS := uint32(0)
		if int32(a) < int32(b) {
			wantS = 1
		}
		wantU := uint32(0)
		if a < b {
			wantU = 1
		}
		return SetLess(a, b, true).Value == wantS && SetLess(a, b, false).Value == wantU
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultDivBitExact(t *testing.T) {
	f := func(a, b uint32) bool {
		hi, lo, _ := Mult(a, b, true)
		p := uint64(int64(int32(a)) * int64(int32(b)))
		if hi != uint32(p>>32) || lo != uint32(p) {
			return false
		}
		hi, lo, _ = Mult(a, b, false)
		p = uint64(a) * uint64(b)
		if hi != uint32(p>>32) || lo != uint32(p) {
			return false
		}
		if b != 0 {
			q, r, _ := Div(a, b, false)
			if q != a/b || r != a%b {
				return false
			}
			if int32(b) != 0 {
				q, r, _ = Div(a, b, true)
				if q != uint32(int32(a)/int32(b)) || r != uint32(int32(a)%int32(b)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivByZeroDoesNotPanic(t *testing.T) {
	q, r, _ := Div(42, 0, true)
	if q != ^uint32(0) || r != 42 {
		t.Fatalf("div by zero: q=%#x r=%d", q, r)
	}
}

func TestResultExtMatchesValue(t *testing.T) {
	f := func(a, b uint32) bool {
		r := Add(a, b)
		return r.Ext == sig.Ext3Of(r.Value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Short operands must yield low activity: adding two one-byte values
// touches one byte (plus possibly an exception byte).
func TestShortOperandActivity(t *testing.T) {
	r := Add(3, 4)
	if r.BlocksOperated != 1 || r.Cycles != 1 {
		t.Fatalf("3+4: ops=%d cycles=%d", r.BlocksOperated, r.Cycles)
	}
	if r.BitsOperated() != 8 {
		t.Fatalf("3+4 bits: %d", r.BitsOperated())
	}
	// 3 + -3 = 0: result reclassified as fully compressible.
	r = Add(3, ^uint32(3)+1)
	if r.Value != 0 || r.Ext.SigByteCount() != 1 {
		t.Fatalf("3+-3: value=%#x sig=%d", r.Value, r.Ext.SigByteCount())
	}
	// Full-width operands touch all four bytes.
	r = Add(0x12345678, 0x11111111)
	if r.BlocksOperated != 4 {
		t.Fatalf("wide add ops=%d", r.BlocksOperated)
	}
}

// The paper's Case 3 example: Ai-1=0x01, Bi-1=0x7F, both next bytes are
// extensions (zero). The sum byte Ci-1 = 0x80 has its top bit set, so Ci
// would be predicted 0xFF by the general rule but is really 0x00: the ALU
// must generate it (an exception, i.e. an operated byte).
func TestCase3ExceptionPaperExample(t *testing.T) {
	a, b := uint32(0x01), uint32(0x7f)
	r := Add(a, b)
	if r.Value != 0x80 {
		t.Fatalf("value=%#x", r.Value)
	}
	// byte0: case 1 (operated). byte1: case 3 exception (operated).
	// bytes 2,3: extensions of 0x00 which is signext(0x80)? signext(0x80) =
	// 0xff, actual byte1 = 0x00... byte1 had the exception; byte2 is
	// signext(byte1=0x00)=0x00 = actual -> general rule, free.
	if r.BlocksOperated != 2 {
		t.Fatalf("ops=%d, want 2 (low byte + exception byte)", r.BlocksOperated)
	}
}

// Exhaustively verify the Case-3/Table-4 semantics: for every pair of
// preceding bytes and carry-in where both current bytes are sign
// extensions, the general rule (result byte = sign extension of previous
// result byte) must be correct exactly when our adder charges no activity.
func TestTable4ExceptionCharacterization(t *testing.T) {
	exceptions := 0
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			for cin := uint32(0); cin < 2; cin++ {
				// Construct two-byte operands whose upper byte is a sign
				// extension; place them at bytes 0-1 so byte1 is Case 3.
				av := uint32(a) | uint32(signExtBlock(uint32(a), 1))<<8
				bv := uint32(b) | uint32(signExtBlock(uint32(b), 1))<<8
				sum0 := uint32(a) + uint32(b) + cin
				c0 := sum0 & 0xff
				carry := sum0 >> 8
				c1 := (blockOf(av, 1, 1) + blockOf(bv, 1, 1) + carry) & 0xff
				exceptional := c1 != signExtBlock(c0, 1)
				if exceptional {
					exceptions++
					// Table 4 says exceptions only arise for specific
					// top-two-bit combinations of the preceding bytes:
					// both tops "same direction" overflowing, or opposite
					// with a carry crossing. Verify the coarse property
					// the table encodes: an exception implies the byte sum
					// (with carry-in) overflowed the sign prediction, i.e.
					// the true upper byte is NOT the sign extension.
					got := addBlocks(av, bv, cin, 1)
					// byte0 always operated; exception adds byte1.
					if got.BlocksOperated < 2 {
						t.Fatalf("a=%#x b=%#x cin=%d: exception not charged", a, b, cin)
					}
				}
				// Regardless of exception, the value must be exact.
				if got := addBlocks(av, bv, cin, 1); got.Value != av+bv+cin {
					t.Fatalf("a=%#x b=%#x cin=%d: value %#x != %#x", a, b, cin, got.Value, av+bv+cin)
				}
			}
		}
	}
	if exceptions == 0 {
		t.Fatal("enumeration found no Table-4 exceptions; test is vacuous")
	}
	t.Logf("Table-4 exception cases among ext-ext byte pairs: %d / %d", exceptions, 256*256*2)
}

// Table 4's structural claim: exceptions never occur when the preceding
// bytes' top two bits are 00+00, 11+11, 00+10, or 01+11 (pairs absent from
// the table). Enumerate and verify.
func TestTable4NonExceptionPairs(t *testing.T) {
	isExceptional := func(a, b int, cin uint32) bool {
		sum0 := uint32(a) + uint32(b) + cin
		c0 := sum0 & 0xff
		carry := sum0 >> 8
		c1 := (signExtBlock(uint32(a), 1) + signExtBlock(uint32(b), 1) + carry) & 0xff
		return c1 != signExtBlock(c0, 1)
	}
	top2 := func(v int) int { return v >> 6 }
	// Collect which (top2(a), top2(b)) unordered pairs ever produce
	// exceptions.
	seen := map[[2]int]bool{}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			for cin := uint32(0); cin < 2; cin++ {
				if isExceptional(a, b, cin) {
					p := [2]int{top2(a), top2(b)}
					if p[0] > p[1] {
						p[0], p[1] = p[1], p[0]
					}
					seen[p] = true
				}
			}
		}
	}
	// Table 4 lists six row pairs; exhaustive enumeration shows that under
	// exact semantics only four unordered top-2-bit pairs can actually
	// produce exceptions: (00,01), (01,01), (10,11), (10,10). The paper's
	// remaining rows (00,11) and (01,10) — mixed-sign pairs — never
	// mispredict the sign extension (the carry exactly compensates), so
	// they appear to be a conservative simplification of the detection
	// hardware. We charge activity only for true exceptions.
	want := map[[2]int]bool{
		{0b00, 0b01}: true,
		{0b01, 0b01}: true,
		{0b10, 0b11}: true,
		{0b10, 0b10}: true,
	}
	for p := range seen {
		if !want[p] {
			t.Errorf("exception occurs for pair %02b,%02b not listed in Table 4", p[0], p[1])
		}
	}
	for p := range want {
		if !seen[p] {
			t.Errorf("Table 4 pair %02b,%02b never produced an exception", p[0], p[1])
		}
	}
}

func TestLogicActivityGating(t *testing.T) {
	// Two small values: only byte0 operated.
	if got := And(0x7f, 0x01).BlocksOperated; got != 1 {
		t.Fatalf("and small: ops=%d", got)
	}
	// One wide, one small: all four bytes of the wide one count.
	if got := Or(0x12345678, 0x01).BlocksOperated; got != 4 {
		t.Fatalf("or wide: ops=%d", got)
	}
}

func TestCompare(t *testing.T) {
	eq, r := Compare(5, 5)
	if !eq || r.BlocksOperated != 1 {
		t.Fatalf("compare equal small: eq=%v ops=%d", eq, r.BlocksOperated)
	}
	eq, r = Compare(5, 0x10000009)
	if eq || r.BlocksOperated != 2 {
		// 0x10000009 stores 2 bytes under the 3-bit scheme.
		t.Fatalf("compare mixed: eq=%v ops=%d", eq, r.BlocksOperated)
	}
}

func TestHalfwordActivityCoarser(t *testing.T) {
	// Halfword granularity can never operate on more bits than... it CAN
	// operate on more bits (coarser blocks) but never on more blocks.
	f := func(a, b uint32) bool {
		rb := Add(a, b)
		rh := AddG(a, b, 2)
		return rh.BlocksOperated <= rb.BlocksOperated && rh.BlocksOperated <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSigBlocksConsistentWithSigPackage(t *testing.T) {
	f := func(v uint32) bool {
		return SigBlocks(v, 1) == sig.Ext3Of(v).SigByteCount() &&
			SigBlocks(v, 2) == sig.SigHalves(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCyclesAtLeastOne(t *testing.T) {
	f := func(a, b uint32) bool {
		return Add(a, b).Cycles >= 1 && And(a, b).Cycles >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// DeriveTable4 must agree with the exhaustive characterization tests: four
// exception classes, with the same-sign saturating pairs fully or partly
// carry-dependent.
func TestDeriveTable4(t *testing.T) {
	rows := DeriveTable4()
	if len(rows) != 4 {
		t.Fatalf("classes: %d, want 4", len(rows))
	}
	want := map[[2]uint8]bool{ // pair -> must be present
		{0b00, 0b01}: true,
		{0b01, 0b01}: true,
		{0b10, 0b10}: true,
		{0b10, 0b11}: true,
	}
	for _, r := range rows {
		if !want[[2]uint8{r.TopBitsA, r.TopBitsB}] {
			t.Errorf("unexpected class %02b,%02b", r.TopBitsA, r.TopBitsB)
		}
		if r.Exceptions == 0 || r.Exceptions > r.Population {
			t.Errorf("class %v: bad counts", r)
		}
		if r.String() == "" {
			t.Error("empty rendering")
		}
	}
	// (01,01): adding two bytes both in [0x40,0x7f] always overflows the
	// sign prediction -> never carry-dependent.
	for _, r := range rows {
		if r.TopBitsA == 0b01 && r.TopBitsB == 0b01 && r.CarryDependent {
			t.Error("(01,01) should except unconditionally")
		}
		if r.TopBitsA == 0b00 && r.TopBitsB == 0b01 && !r.CarryDependent {
			t.Error("(00,01) should be carry-dependent")
		}
	}
}
