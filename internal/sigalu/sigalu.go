// Package sigalu implements the paper's significance-gated ALU (§2.5).
//
// Operations consume the significant operand bytes plus extension bits and
// produce the significant result bytes plus their extension bits. For
// addition/subtraction each byte position falls into one of three cases:
//
//	Case 1: both operand bytes significant            -> byte is operated on.
//	Case 2: exactly one operand byte significant      -> byte is operated on
//	        (the paper notes the add could be bypassed but does not count
//	        that optimization in its activity statistics; neither do we).
//	Case 3: neither byte significant. General rule: the result byte is the
//	        sign extension of the previous result byte and costs nothing.
//	        Exceptions (the paper's Table 4): when the actual sum byte
//	        differs from that sign extension, the ALU must generate the full
//	        byte value, which counts as an operated byte.
//
// Rather than transcribing Table 4's top-two-bit patterns, the
// implementation evaluates the exception condition semantically (does the
// true sum byte equal the sign extension of the previous result byte?).
// TestTable4ExceptionCharacterization proves by exhaustive enumeration that
// this is exactly the set of cases Table 4 describes.
//
// The engine is parameterized by block size so the same logic yields the
// paper's byte-granularity (1) and halfword-granularity (2) results.
package sigalu

import "repro/internal/sig"

// Result describes one significance-gated ALU operation.
type Result struct {
	// Value is the 32-bit result, always bit-exact with the conventional
	// 32-bit operation.
	Value uint32
	// Ext is the recomputed extension field of the result (the paper's
	// result-examination logic also re-detects e.g. 3 + -3 = 0).
	Ext sig.Ext3
	// BlocksOperated counts block positions where datapath work happened
	// (cases 1 and 2 plus case-3 exceptions).
	BlocksOperated int
	// BlockBytes is the granularity the operation ran at (1 or 2).
	BlockBytes int
	// Cycles is the serial-ALU occupancy: one cycle per operated block,
	// minimum one.
	Cycles int
}

// BitsOperated returns the datapath bits switched by the operation.
func (r Result) BitsOperated() int { return r.BlocksOperated * r.BlockBytes * 8 }

func finish(value uint32, blocks, blockBytes int) Result {
	cycles := blocks
	if cycles < 1 {
		cycles = 1
	}
	return Result{
		Value:          value,
		Ext:            sig.Ext3Of(value),
		BlocksOperated: blocks,
		BlockBytes:     blockBytes,
		Cycles:         cycles,
	}
}

// blockCount returns how many g-byte blocks make a word.
func blockCount(g int) int { return sig.WordBytes / g }

// blockOf extracts block i (little-endian order) of v at granularity g.
func blockOf(v uint32, i, g int) uint32 {
	shift := uint(8 * g * i)
	mask := uint32(1)<<(8*g) - 1
	return (v >> shift) & mask
}

// signExtBlock returns the block that sign-extends b at granularity g.
func signExtBlock(b uint32, g int) uint32 {
	top := uint32(1) << (8*g - 1)
	if b&top != 0 {
		return uint32(1)<<(8*g) - 1
	}
	return 0
}

// extMask computes the per-block extension marking of v at granularity g:
// bit i-1 set means block i is the sign extension of block i-1.
func extMask(v uint32, g int) uint32 {
	var m uint32
	n := blockCount(g)
	for i := 1; i < n; i++ {
		if blockOf(v, i, g) == signExtBlock(blockOf(v, i-1, g), g) {
			m |= 1 << (i - 1)
		}
	}
	return m
}

// SigBlocks returns the number of stored blocks of v at granularity g
// (equals Ext3.SigByteCount for g=1 and SigHalves for g=2).
func SigBlocks(v uint32, g int) int {
	m := extMask(v, g)
	n := 1
	for i := 1; i < blockCount(g); i++ {
		if m&(1<<(i-1)) == 0 {
			n++
		}
	}
	return n
}

// addBlocks is the significance adder core: a + b + cin at granularity g.
func addBlocks(a, b uint32, cin uint32, g int) Result {
	ea, eb := extMask(a, g), extMask(b, g)
	n := blockCount(g)
	bits := uint(8 * g)
	mask := uint32(1)<<bits - 1
	carry := cin
	var value uint32
	ops := 0
	var prev uint32
	for i := 0; i < n; i++ {
		s := blockOf(a, i, g) + blockOf(b, i, g) + carry
		cb := s & mask
		carry = s >> bits
		value |= cb << (uint(i) * bits)
		aSig := i == 0 || ea&(1<<(i-1)) == 0
		bSig := i == 0 || eb&(1<<(i-1)) == 0
		switch {
		case aSig || bSig:
			ops++ // cases 1 and 2
		default:
			// Case 3: work only in the Table-4 exception cases.
			if cb != signExtBlock(prev, g) {
				ops++
			}
		}
		prev = cb
	}
	return finish(value, ops, g)
}

// Add computes a + b at byte granularity.
func Add(a, b uint32) Result { return AddG(a, b, 1) }

// AddG computes a + b at block granularity g (1 = byte, 2 = halfword).
func AddG(a, b uint32, g int) Result { return addBlocks(a, b, 0, g) }

// Sub computes a - b at byte granularity.
func Sub(a, b uint32) Result { return SubG(a, b, 1) }

// SubG computes a - b at block granularity g via a + ^b + 1. Complementing
// preserves extension structure (the sign-extension relation is closed
// under bitwise NOT), so the case analysis is unchanged.
func SubG(a, b uint32, g int) Result { return addBlocks(a, ^b, 1, g) }

// logicOp applies a bitwise function per block; blocks where both operands
// are extensions produce extension blocks for free.
func logicOp(a, b uint32, g int, f func(x, y uint32) uint32) Result {
	ea, eb := extMask(a, g), extMask(b, g)
	n := blockCount(g)
	bits := uint(8 * g)
	mask := uint32(1)<<bits - 1
	var value uint32
	ops := 0
	for i := 0; i < n; i++ {
		value |= (f(blockOf(a, i, g), blockOf(b, i, g)) & mask) << (uint(i) * bits)
		aSig := i == 0 || ea&(1<<(i-1)) == 0
		bSig := i == 0 || eb&(1<<(i-1)) == 0
		if aSig || bSig {
			ops++
		}
	}
	return finish(value, ops, g)
}

// And computes a & b with significance gating.
func And(a, b uint32) Result { return AndG(a, b, 1) }

// AndG computes a & b at granularity g.
func AndG(a, b uint32, g int) Result {
	return logicOp(a, b, g, func(x, y uint32) uint32 { return x & y })
}

// Or computes a | b with significance gating.
func Or(a, b uint32) Result { return OrG(a, b, 1) }

// OrG computes a | b at granularity g.
func OrG(a, b uint32, g int) Result {
	return logicOp(a, b, g, func(x, y uint32) uint32 { return x | y })
}

// Xor computes a ^ b with significance gating.
func Xor(a, b uint32) Result { return XorG(a, b, 1) }

// XorG computes a ^ b at granularity g.
func XorG(a, b uint32, g int) Result {
	return logicOp(a, b, g, func(x, y uint32) uint32 { return x ^ y })
}

// Nor computes ^(a | b) with significance gating.
func Nor(a, b uint32) Result { return NorG(a, b, 1) }

// NorG computes ^(a | b) at granularity g.
func NorG(a, b uint32, g int) Result {
	return logicOp(a, b, g, func(x, y uint32) uint32 { return ^(x | y) })
}

// shiftActivity is the documented design decision for shifts (the paper
// does not detail them): the shifter touches the larger of the source's and
// the result's significant block counts.
func shiftActivity(src, res uint32, g int) Result {
	in, out := SigBlocks(src, g), SigBlocks(res, g)
	ops := in
	if out > ops {
		ops = out
	}
	return finish(res, ops, g)
}

// ShiftLeft computes v << s (s masked to 5 bits as in MIPS).
func ShiftLeft(v uint32, s uint32) Result { return ShiftLeftG(v, s, 1) }

// ShiftLeftG computes v << s at granularity g.
func ShiftLeftG(v, s uint32, g int) Result { return shiftActivity(v, v<<(s&31), g) }

// ShiftRightL computes the logical right shift v >> s.
func ShiftRightL(v, s uint32) Result { return ShiftRightLG(v, s, 1) }

// ShiftRightLG computes v >> s at granularity g.
func ShiftRightLG(v, s uint32, g int) Result { return shiftActivity(v, v>>(s&31), g) }

// ShiftRightA computes the arithmetic right shift.
func ShiftRightA(v, s uint32) Result { return ShiftRightAG(v, s, 1) }

// ShiftRightAG computes the arithmetic right shift at granularity g.
func ShiftRightAG(v, s uint32, g int) Result {
	return shiftActivity(v, uint32(int32(v)>>(s&31)), g)
}

// SetLess computes the SLT/SLTU result via a significance subtract; the
// activity is that of the subtraction.
func SetLess(a, b uint32, signed bool) Result { return SetLessG(a, b, signed, 1) }

// SetLessG computes SLT/SLTU at granularity g.
func SetLessG(a, b uint32, signed bool, g int) Result {
	sub := SubG(a, b, g)
	var lt bool
	if signed {
		lt = int32(a) < int32(b)
	} else {
		lt = a < b
	}
	var v uint32
	if lt {
		v = 1
	}
	return finish(v, sub.BlocksOperated, g)
}

// Compare performs the byte-wise equality comparison used by BEQ/BNE: the
// extension fields are compared for free; stored blocks up to the larger
// significant count are compared. Returns equality and the activity result.
func Compare(a, b uint32) (bool, Result) { return CompareG(a, b, 1) }

// CompareG performs equality comparison at granularity g.
func CompareG(a, b uint32, g int) (bool, Result) {
	na, nb := SigBlocks(a, g), SigBlocks(b, g)
	ops := na
	if nb > ops {
		ops = nb
	}
	eq := a == b
	var v uint32
	if eq {
		v = 1
	}
	return eq, finish(v, ops, g)
}

// Mult models the iterative multiply: the paper leaves multiply/divide
// undetailed, so we adopt (and document in DESIGN.md) an operand-gated
// iterative unit whose activity is the product-significant blocks it must
// produce, bounded below by the operated source blocks.
func Mult(a, b uint32, signed bool) (hi, lo uint32, r Result) {
	return MultG(a, b, signed, 1)
}

// MultG models multiply at granularity g.
func MultG(a, b uint32, signed bool, g int) (hi, lo uint32, r Result) {
	var p uint64
	if signed {
		p = uint64(int64(int32(a)) * int64(int32(b)))
	} else {
		p = uint64(a) * uint64(b)
	}
	hi, lo = uint32(p>>32), uint32(p)
	ops := SigBlocks(a, g) + SigBlocks(b, g)
	r = finish(lo, ops, g)
	return hi, lo, r
}

// Div models divide with the same gating convention as Mult.
func Div(a, b uint32, signed bool) (quo, rem uint32, r Result) {
	return DivG(a, b, signed, 1)
}

// DivG models divide at granularity g. Division by zero leaves quotient and
// remainder implementation-defined (we return ^0 and a, matching common
// hardware); MIPS does not trap.
func DivG(a, b uint32, signed bool, g int) (quo, rem uint32, r Result) {
	if b == 0 {
		quo, rem = ^uint32(0), a
	} else if signed {
		quo = uint32(int32(a) / int32(b))
		rem = uint32(int32(a) % int32(b))
	} else {
		quo, rem = a/b, a%b
	}
	ops := SigBlocks(a, g) + SigBlocks(b, g)
	r = finish(quo, ops, g)
	return quo, rem, r
}
