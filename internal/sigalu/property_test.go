package sigalu

import (
	"math/rand"
	"testing"

	"repro/internal/sig"
)

// edgeValues anchors the random sweep at the significance boundaries the
// Table-4 analysis is about: sign flips at each byte and halfword seam.
var edgeValues = []uint32{
	0, 1, 0x7f, 0x80, 0xff, 0x100, 0x7fff, 0x8000, 0xffff, 0x1_0000,
	0x7f_ffff, 0x80_0000, 0xff_ffff, 0x7fff_ffff, 0x8000_0000,
	0xffff_ff80, 0xffff_ff7f, 0xffff_8000, 0xffff_7fff, 0xffff_ffff,
}

// operands yields a deterministic mix of edge-anchored and random pairs.
func operands(n int) [][2]uint32 {
	rng := rand.New(rand.NewSource(4))
	var out [][2]uint32
	for _, a := range edgeValues {
		for _, b := range edgeValues {
			out = append(out, [2]uint32{a, b})
		}
	}
	for i := 0; i < n; i++ {
		out = append(out, [2]uint32{rng.Uint32(), rng.Uint32()})
		// Mixed: one edge operand against one random operand.
		out = append(out, [2]uint32{edgeValues[i%len(edgeValues)], rng.Uint32()})
	}
	return out
}

// TestPropertyAllOpsMatchReference is the byte-serial correctness property:
// for every exported operation and both granularities, the significance
// ALU's value is bit-exact with the conventional 32-bit reference, the
// re-detected extension field matches sig.Ext3Of of the value, and the
// cycle count obeys the one-cycle-per-operated-block contract.
func TestPropertyAllOpsMatchReference(t *testing.T) {
	ops := []struct {
		name string
		sig  func(a, b uint32, g int) Result
		ref  func(a, b uint32) uint32
	}{
		{"add", AddG, func(a, b uint32) uint32 { return a + b }},
		{"sub", SubG, func(a, b uint32) uint32 { return a - b }},
		{"and", AndG, func(a, b uint32) uint32 { return a & b }},
		{"or", OrG, func(a, b uint32) uint32 { return a | b }},
		{"xor", XorG, func(a, b uint32) uint32 { return a ^ b }},
		{"nor", NorG, func(a, b uint32) uint32 { return ^(a | b) }},
		{"sll", func(a, b uint32, g int) Result { return ShiftLeftG(a, b, g) },
			func(a, b uint32) uint32 { return a << (b & 31) }},
		{"srl", func(a, b uint32, g int) Result { return ShiftRightLG(a, b, g) },
			func(a, b uint32) uint32 { return a >> (b & 31) }},
		{"sra", func(a, b uint32, g int) Result { return ShiftRightAG(a, b, g) },
			func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) }},
		{"slt", func(a, b uint32, g int) Result { return SetLessG(a, b, true, g) },
			func(a, b uint32) uint32 {
				if int32(a) < int32(b) {
					return 1
				}
				return 0
			}},
		{"sltu", func(a, b uint32, g int) Result { return SetLessG(a, b, false, g) },
			func(a, b uint32) uint32 {
				if a < b {
					return 1
				}
				return 0
			}},
	}
	pairs := operands(2000)
	for _, op := range ops {
		for _, g := range []int{1, 2} {
			for _, pr := range pairs {
				a, b := pr[0], pr[1]
				r := op.sig(a, b, g)
				if want := op.ref(a, b); r.Value != want {
					t.Fatalf("%s g=%d (%#x, %#x): value %#x, reference %#x", op.name, g, a, b, r.Value, want)
				}
				checkResultInvariants(t, op.name, g, r)
			}
		}
	}
}

// TestPropertyCompareMatchesReference covers the equality comparator, whose
// byte-serial short-circuit must agree with ==.
func TestPropertyCompareMatchesReference(t *testing.T) {
	pairs := operands(2000)
	for _, g := range []int{1, 2} {
		for _, pr := range pairs {
			a, b := pr[0], pr[1]
			eq, r := CompareG(a, b, g)
			if eq != (a == b) {
				t.Fatalf("compare g=%d (%#x, %#x) = %v", g, a, b, eq)
			}
			checkResultInvariants(t, "compare", g, r)
			if eq2, _ := CompareG(a, a, g); !eq2 {
				t.Fatalf("compare g=%d (%#x, %#x) self-inequality", g, a, a)
			}
		}
	}
}

// TestPropertyMultDivMatchReference checks the iterative multiplier and
// divider against 64-bit reference arithmetic, signed and unsigned.
func TestPropertyMultDivMatchReference(t *testing.T) {
	pairs := operands(1000)
	for _, g := range []int{1, 2} {
		for _, signed := range []bool{false, true} {
			for _, pr := range pairs {
				a, b := pr[0], pr[1]
				hi, lo, r := MultG(a, b, signed, g)
				var wide uint64
				if signed {
					wide = uint64(int64(int32(a)) * int64(int32(b)))
				} else {
					wide = uint64(a) * uint64(b)
				}
				if hi != uint32(wide>>32) || lo != uint32(wide) {
					t.Fatalf("mult signed=%v g=%d (%#x, %#x): %#x:%#x, want %#x", signed, g, a, b, hi, lo, wide)
				}
				checkResultInvariants(t, "mult", g, r)

				quo, rem, r := DivG(a, b, signed, g)
				wantQ, wantR := refDiv(a, b, signed)
				if quo != wantQ || rem != wantR {
					t.Fatalf("div signed=%v g=%d (%#x, %#x): %#x r %#x, want %#x r %#x",
						signed, g, a, b, quo, rem, wantQ, wantR)
				}
				checkResultInvariants(t, "div", g, r)
			}
		}
	}
}

// refDiv mirrors the MIPS (and cpu package) convention: division by zero
// yields quotient ^0 and remainder a.
func refDiv(a, b uint32, signed bool) (quo, rem uint32) {
	if b == 0 {
		return ^uint32(0), a
	}
	if signed {
		return uint32(int32(a) / int32(b)), uint32(int32(a) % int32(b))
	}
	return a / b, a % b
}

func checkResultInvariants(t *testing.T, name string, g int, r Result) {
	t.Helper()
	if r.Ext != sig.Ext3Of(r.Value) {
		t.Fatalf("%s g=%d: Ext %03b, want %03b for value %#x", name, g, uint8(r.Ext), uint8(sig.Ext3Of(r.Value)), r.Value)
	}
	if r.BlockBytes != g {
		t.Fatalf("%s g=%d: BlockBytes %d", name, g, r.BlockBytes)
	}
	// Mult/Div count the significant blocks of BOTH source operands, so the
	// iterative units may operate up to twice a word's block count.
	maxBlocks := blockCount(g)
	if name == "mult" || name == "div" {
		maxBlocks *= 2
	}
	if r.BlocksOperated < 0 || r.BlocksOperated > maxBlocks {
		t.Fatalf("%s g=%d: BlocksOperated %d out of range", name, g, r.BlocksOperated)
	}
	want := r.BlocksOperated
	if want < 1 {
		want = 1
	}
	if r.Cycles != want {
		t.Fatalf("%s g=%d: Cycles %d, want %d (blocks %d)", name, g, r.Cycles, want, r.BlocksOperated)
	}
}

// TestTable4ExceptionsAreExactlyTheAdderCase3Work cross-checks table4.go
// against the adder: for preceding-byte classes that DeriveTable4 marks
// carry-independent, every both-extension byte add must do case-3 work, and
// classes absent from the table must never produce a case-3 exception.
func TestTable4ExceptionsAreExactlyTheAdderCase3Work(t *testing.T) {
	rows := map[[2]uint8]Table4Row{}
	for _, r := range DeriveTable4() {
		rows[[2]uint8{r.TopBitsA, r.TopBitsB}] = r
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20000; trial++ {
		a8, b8 := uint32(rng.Intn(256)), uint32(rng.Intn(256))
		cin := uint32(rng.Intn(2))
		sum0 := a8 + b8 + cin
		c0, carry := sum0&0xff, sum0>>8
		c1 := (signExtBlock(a8, 1) + signExtBlock(b8, 1) + carry) & 0xff
		excepts := c1 != signExtBlock(c0, 1)
		key := [2]uint8{uint8(a8 >> 6), uint8(b8 >> 6)}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		row, inTable := rows[key]
		if excepts && !inTable {
			t.Fatalf("pair (%#x, %#x, cin %d) excepts but class %v not in Table 4", a8, b8, cin, key)
		}
		if inTable && !row.CarryDependent && !excepts {
			t.Fatalf("pair (%#x, %#x, cin %d) in always-excepting class %v but did not except", a8, b8, cin, key)
		}
	}
}
