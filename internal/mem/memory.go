// Package mem provides the memory-system substrates the simulator depends
// on: a sparse flat memory for the functional interpreter, and
// set-associative cache and TLB timing models configured to the paper's
// hierarchy (§3).
package mem

import (
	"encoding/binary"
	"fmt"
)

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse, page-granular byte-addressable memory. Reads of
// untouched locations return zero, matching a zero-initialized address
// space. All multi-byte accesses are little-endian (the simulator's MIPS is
// little-endian, as SimpleScalar PISA on x86 hosts was).
type Memory struct {
	pages map[uint32][]byte
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32][]byte)}
}

func (m *Memory) page(addr uint32, create bool) []byte {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && create {
		p = make([]byte, pageSize)
		m.pages[pn] = p
	}
	return p
}

// Load8 returns the byte at addr.
func (m *Memory) Load8(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Store8 stores one byte at addr.
func (m *Memory) Store8(addr uint32, v byte) {
	m.page(addr, true)[addr&pageMask] = v
}

// Load16 returns the little-endian 16-bit value at addr.
func (m *Memory) Load16(addr uint32) uint16 {
	if addr&pageMask <= pageSize-2 {
		if p := m.page(addr, false); p != nil {
			return binary.LittleEndian.Uint16(p[addr&pageMask:])
		}
		return 0
	}
	return uint16(m.Load8(addr)) | uint16(m.Load8(addr+1))<<8
}

// Store16 stores a little-endian 16-bit value at addr.
func (m *Memory) Store16(addr uint32, v uint16) {
	if addr&pageMask <= pageSize-2 {
		binary.LittleEndian.PutUint16(m.page(addr, true)[addr&pageMask:], v)
		return
	}
	m.Store8(addr, byte(v))
	m.Store8(addr+1, byte(v>>8))
}

// Load32 returns the little-endian 32-bit value at addr.
func (m *Memory) Load32(addr uint32) uint32 {
	if addr&pageMask <= pageSize-4 {
		if p := m.page(addr, false); p != nil {
			return binary.LittleEndian.Uint32(p[addr&pageMask:])
		}
		return 0
	}
	return uint32(m.Load16(addr)) | uint32(m.Load16(addr+2))<<16
}

// Store32 stores a little-endian 32-bit value at addr.
func (m *Memory) Store32(addr uint32, v uint32) {
	if addr&pageMask <= pageSize-4 {
		binary.LittleEndian.PutUint32(m.page(addr, true)[addr&pageMask:], v)
		return
	}
	m.Store16(addr, uint16(v))
	m.Store16(addr+2, uint16(v>>16))
}

// LoadSegment copies data into memory starting at base.
func (m *Memory) LoadSegment(base uint32, data []byte) {
	for i, b := range data {
		m.Store8(base+uint32(i), b)
	}
}

// Footprint reports the number of distinct pages touched.
func (m *Memory) Footprint() int { return len(m.pages) }

// CacheConfig describes one cache or TLB array.
type CacheConfig struct {
	Name      string
	Size      int // total bytes (caches) or entries*PageBytes (TLBs use Sets/Assoc directly)
	LineBytes int
	Assoc     int // 1 = direct mapped
}

// Validate reports configuration errors.
func (c CacheConfig) Validate() error {
	if c.Size <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("mem: %s: non-positive geometry %+v", c.Name, c)
	}
	if c.Size%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("mem: %s: size %d not divisible by line*assoc", c.Name, c.Size)
	}
	sets := c.Size / (c.LineBytes * c.Assoc)
	if sets&(sets-1) != 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: %s: sets (%d) and line size (%d) must be powers of two", c.Name, sets, c.LineBytes)
	}
	return nil
}

type cacheLine struct {
	tag   uint32
	valid bool
	dirty bool
	lru   uint64 // last-use stamp
}

// Cache is a set-associative, write-back, write-allocate cache with true-LRU
// replacement. It models hit/miss behaviour and statistics only; data
// contents live in Memory.
type Cache struct {
	cfg       CacheConfig
	sets      [][]cacheLine
	setShift  uint
	setMask   uint32
	stamp     uint64
	Accesses  uint64
	Misses    uint64
	Writeback uint64
}

// NewCache builds a cache from cfg; the configuration must be valid.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Size / (cfg.LineBytes * cfg.Assoc)
	c := &Cache{cfg: cfg}
	c.sets = make([][]cacheLine, nsets)
	lines := make([]cacheLine, nsets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i], lines = lines[:cfg.Assoc], lines[cfg.Assoc:]
	}
	for c.setShift = 0; 1<<c.setShift < cfg.LineBytes; c.setShift++ {
	}
	c.setMask = uint32(nsets - 1)
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// AccessResult describes the outcome of one cache access.
type AccessResult struct {
	Hit         bool
	Writeback   bool // a dirty victim was evicted
	FillAddress uint32
}

// Access looks up addr, allocating on miss. write marks the line dirty.
func (c *Cache) Access(addr uint32, write bool) AccessResult {
	c.Accesses++
	c.stamp++
	set := c.sets[(addr>>c.setShift)&c.setMask]
	tag := addr >> c.setShift >> log2(uint32(len(c.sets)))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.stamp
			if write {
				set[i].dirty = true
			}
			return AccessResult{Hit: true}
		}
	}
	// Miss: evict LRU way.
	c.Misses++
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[victim].valid {
			break // keep the free way
		}
		if !set[i].valid || set[i].lru < set[victim].lru {
			victim = i
		}
	}
	res := AccessResult{FillAddress: addr &^ uint32(c.cfg.LineBytes-1)}
	if set[victim].valid && set[victim].dirty {
		res.Writeback = true
		c.Writeback++
	}
	set[victim] = cacheLine{tag: tag, valid: true, dirty: write, lru: c.stamp}
	return res
}

// MissRate returns misses/accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = cacheLine{}
		}
	}
	c.stamp, c.Accesses, c.Misses, c.Writeback = 0, 0, 0, 0
}

func log2(v uint32) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// TLB is a set-associative translation lookaside buffer over 4 KiB pages.
type TLB struct {
	cache *Cache
}

// NewTLB builds a TLB with the given entry count and associativity.
func NewTLB(name string, entries, assoc int) *TLB {
	// Reuse the cache machinery: one "line" per page.
	return &TLB{cache: NewCache(CacheConfig{
		Name:      name,
		Size:      entries * pageSize,
		LineBytes: pageSize,
		Assoc:     assoc,
	})}
}

// Lookup returns true on a TLB hit for the page containing addr.
func (t *TLB) Lookup(addr uint32) bool { return t.cache.Access(addr, false).Hit }

// Accesses returns the total lookups performed.
func (t *TLB) Accesses() uint64 { return t.cache.Accesses }

// Misses returns the lookups that missed.
func (t *TLB) Misses() uint64 { return t.cache.Misses }

// Reset clears contents and statistics.
func (t *TLB) Reset() { t.cache.Reset() }
