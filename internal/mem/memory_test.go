package mem

import (
	"testing"
	"testing/quick"
)

func TestMemoryZeroInitialized(t *testing.T) {
	m := NewMemory()
	if m.Load32(0x1000_0000) != 0 {
		t.Fatal("untouched memory should read zero")
	}
	if m.Load8(0xffff_ffff) != 0 {
		t.Fatal("top of address space should read zero")
	}
}

func TestMemoryWordRoundTrip(t *testing.T) {
	f := func(addr, v uint32) bool {
		m := NewMemory()
		m.Store32(addr, v)
		return m.Load32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryLittleEndian(t *testing.T) {
	m := NewMemory()
	m.Store32(0x100, 0x04030201)
	for i, want := range []byte{1, 2, 3, 4} {
		if got := m.Load8(0x100 + uint32(i)); got != want {
			t.Errorf("byte %d: got %d want %d", i, got, want)
		}
	}
	if got := m.Load16(0x102); got != 0x0403 {
		t.Errorf("half: got %#x", got)
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	m := NewMemory()
	addr := uint32(pageSize - 2) // word straddles the page boundary
	m.Store32(addr, 0xdeadbeef)
	if got := m.Load32(addr); got != 0xdeadbeef {
		t.Fatalf("cross-page word: got %#x", got)
	}
	addr = uint32(pageSize - 1)
	m.Store16(addr, 0xa55a)
	if got := m.Load16(addr); got != 0xa55a {
		t.Fatalf("cross-page half: got %#x", got)
	}
}

func TestMemoryLoadSegment(t *testing.T) {
	m := NewMemory()
	data := []byte{10, 20, 30, 40, 50}
	m.LoadSegment(0x1000_0000, data)
	for i, want := range data {
		if got := m.Load8(0x1000_0000 + uint32(i)); got != want {
			t.Errorf("segment byte %d: got %d want %d", i, got, want)
		}
	}
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{Name: "zero"},
		{Name: "nondiv", Size: 100, LineBytes: 32, Assoc: 1},
		{Name: "npo2", Size: 96, LineBytes: 32, Assoc: 1}, // 3 sets
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.Name)
		}
	}
	good := CacheConfig{Name: "ok", Size: 8 << 10, LineBytes: 32, Assoc: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestCacheDirectMappedConflict(t *testing.T) {
	// 8 KB direct mapped, 32 B lines => 256 sets; addresses 8 KB apart
	// conflict.
	c := NewCache(CacheConfig{Name: "dm", Size: 8 << 10, LineBytes: 32, Assoc: 1})
	if c.Access(0x0, false).Hit {
		t.Fatal("cold miss expected")
	}
	if !c.Access(0x0, false).Hit {
		t.Fatal("second access should hit")
	}
	if c.Access(8<<10, false).Hit {
		t.Fatal("conflicting line should miss")
	}
	if c.Access(0x0, false).Hit {
		t.Fatal("original line should have been evicted")
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// 2-way, 1 set: two lines fit, third evicts the least recently used.
	c := NewCache(CacheConfig{Name: "lru", Size: 64, LineBytes: 32, Assoc: 2})
	c.Access(0*32, false) // A
	c.Access(2*32, false) // B (same set: only one set exists)
	c.Access(0*32, false) // touch A
	c.Access(4*32, false) // C evicts B
	if !c.Access(0*32, false).Hit {
		t.Fatal("A should still be resident")
	}
	if c.Access(2*32, false).Hit {
		t.Fatal("B should have been evicted")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c := NewCache(CacheConfig{Name: "wb", Size: 32, LineBytes: 32, Assoc: 1})
	c.Access(0, true) // dirty fill
	res := c.Access(64, false)
	if !res.Writeback {
		t.Fatal("evicting a dirty line must report a writeback")
	}
	if c.Writeback != 1 {
		t.Fatalf("writeback count: %d", c.Writeback)
	}
	// Clean eviction: no writeback.
	if res := c.Access(128, false); res.Writeback {
		t.Fatal("clean eviction should not write back")
	}
}

func TestCacheSpatialLocalityWithinLine(t *testing.T) {
	c := NewCache(CacheConfig{Name: "line", Size: 8 << 10, LineBytes: 32, Assoc: 1})
	c.Access(0x40, false)
	for off := uint32(0x40); off < 0x60; off += 4 {
		if !c.Access(off, false).Hit {
			t.Fatalf("same-line access at %#x should hit", off)
		}
	}
	if c.Misses != 1 {
		t.Fatalf("misses: %d", c.Misses)
	}
}

func TestCacheStats(t *testing.T) {
	c := NewCache(CacheConfig{Name: "st", Size: 1 << 10, LineBytes: 32, Assoc: 1})
	c.Access(0, false)
	c.Access(0, false)
	c.Access(32, false)
	if c.Accesses != 3 || c.Misses != 2 {
		t.Fatalf("stats: %d/%d", c.Misses, c.Accesses)
	}
	if got, want := c.MissRate(), 2.0/3.0; got != want {
		t.Fatalf("miss rate: %v", got)
	}
	c.Reset()
	if c.Accesses != 0 || c.MissRate() != 0 {
		t.Fatal("reset should clear stats")
	}
	if c.Access(0, false).Hit {
		t.Fatal("reset should clear contents")
	}
}

func TestTLBBehaviour(t *testing.T) {
	tlb := NewTLB("itlb", 16, 4)
	if tlb.Lookup(0x0040_0000) {
		t.Fatal("cold TLB should miss")
	}
	if !tlb.Lookup(0x0040_0ffc) {
		t.Fatal("same page should hit")
	}
	if tlb.Lookup(0x0040_1000) {
		t.Fatal("next page should miss")
	}
	if tlb.Misses() != 2 || tlb.Accesses() != 3 {
		t.Fatalf("tlb stats: %d/%d", tlb.Misses(), tlb.Accesses())
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// Cold fetch: ITLB miss (30) + L1I miss -> L2 cold miss (6+30).
	if got, want := h.Fetch(0x0040_0000), 30+6+30; got != want {
		t.Fatalf("cold fetch stall: got %d want %d", got, want)
	}
	// Warm fetch: everything hits, no extra stall.
	if got := h.Fetch(0x0040_0000); got != 0 {
		t.Fatalf("warm fetch stall: got %d", got)
	}
	// Same line, different word: still a hit.
	if got := h.Fetch(0x0040_0004); got != 0 {
		t.Fatalf("same-line fetch stall: got %d", got)
	}
	// Data access on a different page: cold.
	if got, want := h.Data(0x1000_0000, false), 30+6+30; got != want {
		t.Fatalf("cold data stall: got %d want %d", got, want)
	}
	if got := h.Data(0x1000_0000, true); got != 0 {
		t.Fatalf("warm store stall: got %d", got)
	}
	if h.DataFills != 1 || h.InstFills != 1 {
		t.Fatalf("fills: %d/%d", h.DataFills, h.InstFills)
	}
}

func TestHierarchyL2CatchesL1Victims(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.Data(0x0000_0000, false)
	// Evict from L1D (8 KB apart) but stay within L2 (64 KB 4-way).
	h.Data(0x0000_2000, false)
	// Original line should now be an L1 miss but an L2 hit: 6-cycle stall.
	if got, want := h.Data(0x0000_0000, false), 6; got != want {
		t.Fatalf("L2 hit stall: got %d want %d", got, want)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.Fetch(0x0040_0000)
	h.Data(0x1000_0000, true)
	h.Reset()
	if h.L1I.Accesses != 0 || h.L1D.Accesses != 0 || h.DataFills != 0 {
		t.Fatal("reset should clear statistics")
	}
	if got, want := h.Fetch(0x0040_0000), 30+6+30; got != want {
		t.Fatalf("post-reset fetch should be cold: got %d", got)
	}
}
