package mem

// HierarchyConfig carries the latencies and geometries of the two-level
// memory system. DefaultHierarchyConfig matches the paper's §3 exactly.
type HierarchyConfig struct {
	L1I, L1D, L2  CacheConfig
	ITLBEntries   int
	ITLBAssoc     int
	DTLBEntries   int
	DTLBAssoc     int
	L1HitCycles   int
	L2HitCycles   int
	MemCycles     int // L2 miss penalty
	TLBMissCycles int
}

// DefaultHierarchyConfig returns the paper's microarchitecture parameters:
// split 8 KB direct-mapped L1s with 32-byte lines and 1-cycle hits, a
// unified 64 KB 4-way L2 with 6-cycle hits and a 30-cycle miss penalty,
// a 16-entry 4-way ITLB and a 32-entry 4-way DTLB with 30-cycle misses.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:           CacheConfig{Name: "L1I", Size: 8 << 10, LineBytes: 32, Assoc: 1},
		L1D:           CacheConfig{Name: "L1D", Size: 8 << 10, LineBytes: 32, Assoc: 1},
		L2:            CacheConfig{Name: "L2", Size: 64 << 10, LineBytes: 32, Assoc: 4},
		ITLBEntries:   16,
		ITLBAssoc:     4,
		DTLBEntries:   32,
		DTLBAssoc:     4,
		L1HitCycles:   1,
		L2HitCycles:   6,
		MemCycles:     30,
		TLBMissCycles: 30,
	}
}

// Hierarchy simulates the paper's two-level cache system plus TLBs and
// reports the access latency in cycles for instruction fetches and data
// accesses. The latency of an L1 hit is folded into the pipeline stage (1
// cycle), so Hierarchy returns only *additional* stall cycles beyond it.
type Hierarchy struct {
	cfg  HierarchyConfig
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	ITLB *TLB
	DTLB *TLB

	// DataFills counts L1D line fills (used by the activity model: fills
	// move whole lines through the data array).
	DataFills uint64
	// InstFills counts L1I line fills.
	InstFills uint64
}

// NewHierarchy builds the memory system from cfg.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		cfg:  cfg,
		L1I:  NewCache(cfg.L1I),
		L1D:  NewCache(cfg.L1D),
		L2:   NewCache(cfg.L2),
		ITLB: NewTLB("ITLB", cfg.ITLBEntries, cfg.ITLBAssoc),
		DTLB: NewTLB("DTLB", cfg.DTLBEntries, cfg.DTLBAssoc),
	}
}

// Config returns the hierarchy parameters.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

func (h *Hierarchy) l2Penalty(addr uint32, write bool) int {
	if h.L2.Access(addr, write).Hit {
		return h.cfg.L2HitCycles
	}
	return h.cfg.L2HitCycles + h.cfg.MemCycles
}

// Fetch performs an instruction fetch at addr and returns the stall cycles
// beyond the 1-cycle pipelined L1I hit.
func (h *Hierarchy) Fetch(addr uint32) int {
	stall := 0
	if !h.ITLB.Lookup(addr) {
		stall += h.cfg.TLBMissCycles
	}
	res := h.L1I.Access(addr, false)
	if !res.Hit {
		h.InstFills++
		stall += h.l2Penalty(addr, false)
		if res.Writeback {
			h.L2.Access(addr, true) // write the victim back into L2
		}
	}
	return stall
}

// Data performs a load (write=false) or store (write=true) at addr and
// returns the stall cycles beyond the 1-cycle pipelined L1D hit.
func (h *Hierarchy) Data(addr uint32, write bool) int {
	stall := 0
	if !h.DTLB.Lookup(addr) {
		stall += h.cfg.TLBMissCycles
	}
	res := h.L1D.Access(addr, write)
	if !res.Hit {
		h.DataFills++
		stall += h.l2Penalty(addr, false)
		if res.Writeback {
			h.L2.Access(addr, true)
		}
	}
	return stall
}

// Reset clears all arrays and statistics.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.ITLB.Reset()
	h.DTLB.Reset()
	h.DataFills, h.InstFills = 0, 0
}
