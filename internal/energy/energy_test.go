package energy

import (
	"testing"

	"repro/internal/activity"
)

func synthCounts() activity.Counts {
	var c activity.Counts
	c.Fetch.Add(3200, 2500)
	c.RFRead.Add(6400, 3400)
	c.RFWrite.Add(3200, 1800)
	c.ALU.Add(3200, 2100)
	c.DCacheData.Add(1000, 700)
	c.DCacheTag.Add(190, 190)
	c.PCIncr.Add(3200, 810)
	c.Latch.Add(16000, 8500)
	c.Insts = 100
	return c
}

func TestDefaultWeightsValid(t *testing.T) {
	if err := DefaultWeights().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultWeights()
	bad.ALUBit = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero weight should be invalid")
	}
}

func TestEstimateSavings(t *testing.T) {
	e := FromCounts(synthCounts(), DefaultWeights())
	if len(e.Stages) != 8 {
		t.Fatalf("stages: %d", len(e.Stages))
	}
	b, c := e.Totals()
	if b <= 0 || c <= 0 || c >= b {
		t.Fatalf("totals: %f/%f", c, b)
	}
	s := e.Saving()
	if s < 20 || s > 60 {
		t.Fatalf("overall saving %.1f%% outside sanity band", s)
	}
	// Tag stage saves nothing.
	for _, st := range e.Stages {
		if st.Stage == "dcache-tag" && st.Saving() != 0 {
			t.Fatalf("tag saving %.1f%%", st.Saving())
		}
	}
}

func TestStageWeighting(t *testing.T) {
	// Doubling a stage's weight doubles its energy but leaves its
	// percentage saving unchanged.
	w := DefaultWeights()
	e1 := FromCounts(synthCounts(), w)
	w.RFBit *= 2
	e2 := FromCounts(synthCounts(), w)
	var r1, r2 StageEstimate
	for i := range e1.Stages {
		if e1.Stages[i].Stage == "rf-read" {
			r1, r2 = e1.Stages[i], e2.Stages[i]
		}
	}
	if r2.Baseline != 2*r1.Baseline {
		t.Fatalf("weight scaling: %f vs %f", r2.Baseline, r1.Baseline)
	}
	if r1.Saving() != r2.Saving() {
		t.Fatal("saving must be weight-invariant")
	}
}

func TestEDP(t *testing.T) {
	if EDP(100, 50) != 5000 {
		t.Fatal("EDP arithmetic")
	}
	// A design with lower energy but more cycles can lose on EDP.
	if EDP(70, 180) <= EDP(100, 100) {
		t.Fatal("expected the slow design to lose on EDP here")
	}
}

func TestZeroCountsSafe(t *testing.T) {
	var c activity.Counts
	e := FromCounts(c, DefaultWeights())
	if e.Saving() != 0 {
		t.Fatal("empty counts should report zero saving")
	}
	var s StageEstimate
	if s.Saving() != 0 {
		t.Fatal("empty stage should report zero saving")
	}
}
