// Package energy converts the activity study into first-order dynamic
// energy estimates — the step the paper's §7 defers to circuit-level work
// ("The final quantification of energy requires a further detailed
// circuit-level analysis"). The estimates here are deliberately
// coarse-grained and *relative*: each pipeline structure gets a weight in
// "energy units per bit of activity", so the output is meaningful as a
// comparison between the baseline and compressed machines (and between
// designs via energy-delay product), never as absolute joules.
//
// Default weights follow standard first-order CMOS reasoning: array
// accesses (caches, register file) cost more per bit than random logic
// because of word/bit-line and sense-amplifier capacitance (see
// internal/rfmodel for the §2.4 decomposition); latches cost less per bit
// but include their share of clock load; the PC incrementer is narrow
// ripple logic. Users with real technology data substitute their own
// Weights.
package energy

import (
	"fmt"

	"repro/internal/activity"
)

// Weights are relative energy units per bit of activity per structure.
type Weights struct {
	FetchBit  float64 // I-cache data array read/fill bits
	RFBit     float64 // register file read/write bits
	ALUBit    float64 // ALU datapath bit operations
	DCacheBit float64 // D-cache data array bits
	TagBit    float64 // cache tag array bits
	PCBit     float64 // PC increment bits
	LatchBit  float64 // pipeline latch bits (incl. clock share)
}

// DefaultWeights returns the documented first-order relative weights.
func DefaultWeights() Weights {
	return Weights{
		FetchBit:  2.0, // SRAM array + sense amps
		RFBit:     1.5, // small multi-ported array
		ALUBit:    1.0, // random logic reference
		DCacheBit: 2.0,
		TagBit:    2.0,
		PCBit:     0.6, // short ripple chains
		LatchBit:  0.8, // latch + local clock
	}
}

// Validate rejects non-positive weights.
func (w Weights) Validate() error {
	for _, v := range []float64{w.FetchBit, w.RFBit, w.ALUBit, w.DCacheBit, w.TagBit, w.PCBit, w.LatchBit} {
		if v <= 0 {
			return fmt.Errorf("energy: non-positive weight in %+v", w)
		}
	}
	return nil
}

// StageEstimate is one structure's baseline and compressed energy.
type StageEstimate struct {
	Stage      string
	Baseline   float64
	Compressed float64
}

// Saving returns the percent energy reduction of the stage.
func (s StageEstimate) Saving() float64 {
	if s.Baseline == 0 {
		return 0
	}
	return 100 * (1 - s.Compressed/s.Baseline)
}

// Estimate is a full-machine relative energy comparison.
type Estimate struct {
	Stages []StageEstimate
}

// FromCounts weights the activity tallies into an Estimate.
func FromCounts(c activity.Counts, w Weights) Estimate {
	mk := func(name string, sb activity.StageBits, weight float64) StageEstimate {
		return StageEstimate{
			Stage:      name,
			Baseline:   float64(sb.Baseline) * weight,
			Compressed: float64(sb.Compressed) * weight,
		}
	}
	return Estimate{Stages: []StageEstimate{
		mk("fetch", c.Fetch, w.FetchBit),
		mk("rf-read", c.RFRead, w.RFBit),
		mk("rf-write", c.RFWrite, w.RFBit),
		mk("alu", c.ALU, w.ALUBit),
		mk("dcache-data", c.DCacheData, w.DCacheBit),
		mk("dcache-tag", c.DCacheTag, w.TagBit),
		mk("pc", c.PCIncr, w.PCBit),
		mk("latches", c.Latch, w.LatchBit),
	}}
}

// Totals returns the machine-level baseline and compressed energy.
func (e Estimate) Totals() (baseline, compressed float64) {
	for _, s := range e.Stages {
		baseline += s.Baseline
		compressed += s.Compressed
	}
	return baseline, compressed
}

// Saving returns the overall percent energy reduction.
func (e Estimate) Saving() float64 {
	b, c := e.Totals()
	if b == 0 {
		return 0
	}
	return 100 * (1 - c/b)
}

// EDP is the energy-delay product in relative units: design comparisons
// multiply each machine's energy by its cycle count. Lower is better.
func EDP(energyUnits float64, cycles uint64) float64 {
	return energyUnits * float64(cycles)
}
