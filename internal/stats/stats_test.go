package stats

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.AddRow("alpha", 1.234)
	tbl.AddRow("b", 10)
	out := tbl.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("render: %q", out)
	}
	if !strings.Contains(out, "1.23") {
		t.Fatalf("float formatting: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, header, rule, two rows.
	if len(lines) != 5 {
		t.Fatalf("lines: %d\n%s", len(lines), out)
	}
	// Columns align: header and data share the width of the widest cell.
	if tbl.Rows() != 2 {
		t.Fatalf("rows: %d", tbl.Rows())
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddStringRow("1", "2")
	if got := tbl.CSV(); got != "a,b\n1,2\n" {
		t.Fatalf("csv: %q", got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean: %v", got)
	}
}

func TestPctAndRatio(t *testing.T) {
	if got := Pct(12.345); got != "12.3%" {
		t.Fatalf("pct: %q", got)
	}
	if got := Ratio(1.5, 1.0); got != "+50.0%" {
		t.Fatalf("ratio: %q", got)
	}
	if got := Ratio(0.8, 1.0); got != "-20.0%" {
		t.Fatalf("ratio down: %q", got)
	}
	if got := Ratio(1, 0); got != "n/a" {
		t.Fatalf("ratio by zero: %q", got)
	}
}

func TestTableJSON(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddStringRow("1", "2")
	tb.AddRow("x", 3.14159)
	j := tb.JSON()
	if j.Title != "T" || len(j.Headers) != 2 || len(j.Rows) != 2 {
		t.Fatalf("shape: %+v", j)
	}
	if j.Rows[1][1] != "3.14" {
		t.Fatalf("formatted cell: %q", j.Rows[1][1])
	}
	// The JSON view is a copy: mutating it must not touch the table.
	j.Rows[0][0] = "mutated"
	if tb.JSON().Rows[0][0] != "1" {
		t.Fatal("JSON rows alias the table's rows")
	}
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var back TableJSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, tb.JSON()) {
		t.Fatalf("marshal round trip: %+v", back)
	}
}
