// Package stats renders the experiment results as aligned text tables (and
// CSV), in the layout of the paper's tables and figure data series.
package stats

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddStringRow appends a pre-formatted row.
func (t *Table) AddStringRow(cells ...string) { t.rows = append(t.rows, cells) }

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&sb, "%*s", widths[i], c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// TableJSON is the machine-readable shape of a rendered table, consumed by
// the sigserve service and any tooling that post-processes saved results.
type TableJSON struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// JSON returns the table in its machine-readable shape.
func (t *Table) JSON() TableJSON {
	rows := make([][]string, len(t.rows))
	for i, r := range t.rows {
		rows[i] = append([]string(nil), r...)
	}
	return TableJSON{Title: t.Title, Headers: t.Headers, Rows: rows}
}

// MarshalJSON implements json.Marshaler via the TableJSON shape.
func (t *Table) MarshalJSON() ([]byte, error) { return json.Marshal(t.JSON()) }

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Headers, ","))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// Ratio formats a CPI-vs-baseline ratio as a signed percentage.
func Ratio(v, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(v/base-1))
}
