package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// spillStore persists evicted programs as one JSON file per content hash so
// registry cache pressure does not forget accepted work. Writes go through
// a temp file + rename (crash-safe: a partial file is never visible under
// the final name); loads re-verify the content hash, so a corrupted or
// tampered spill file reads as a miss, never as a different program.
type spillStore struct {
	dir string
}

func newSpillStore(dir string) (*spillStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &spillStore{dir: dir}, nil
}

// path resolves an id to its spill file, rejecting anything that is not a
// plain hex hash (an id is attacker-influenced input; it must never become
// a path traversal).
func (s *spillStore) path(id string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\.") {
		return "", fmt.Errorf("workload: bad spill id %q", id)
	}
	return filepath.Join(s.dir, id+".json"), nil
}

func (s *spillStore) save(p *Program) error {
	path, err := s.path(p.ID)
	if err != nil {
		return err
	}
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".spill-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func (s *spillStore) load(id string) (*Program, error) {
	path, err := s.path(id)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Program
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("workload: spill %s: %w", id, err)
	}
	if p.ID != id || ProgramID(p.Lang, p.Source) != id || p.Name != "user:"+id {
		return nil, fmt.Errorf("workload: spill %s: content hash mismatch", id)
	}
	return &p, nil
}
