// Package workload turns the fixed benchmark suite into an open service:
// it accepts programs (miniC source or MIPS assembly) from untrusted
// callers, pushes them through a layered validation wall, and registers the
// survivors as runnable benchmarks under content-addressed "user:" names.
//
// The wall, in order:
//
//  1. Size: the raw source is bounded before any parsing happens.
//  2. Compile/assemble: miniC goes through the compiler, assembly through
//     the two-pass assembler; diagnostics keep their line/column.
//  3. Static checks: nonempty text, entry inside text, a reachable halt
//     (syscall present), a bounded data segment, and — for raw assembly —
//     the fuzz generator's addressing discipline ($gp may only be written
//     by the canonical data-base LUI; loads and stores must be $gp- or
//     $sp-based). miniC output is exempt from the addressing rule because
//     its codegen materialises symbol addresses into temporaries; it relies
//     on the dynamic sandbox instead.
//  4. Probation: a budgeted execution on the golden interpreter with a
//     retired-instruction cap, a wall-clock deadline, per-access sandbox
//     windows (data segment + a bounded stack), a PC-in-text check every
//     step (sparse memory reads as zero, so a runaway PC would nop-sled
//     forever), and an output-bytes cap. Panics are contained.
//  5. Spot-check: the accepted prefix is re-run in lockstep against the
//     fully-compressed shadow machine (diffsim.CheckBinary) so a program
//     that diverges the significance-compression paths never reaches the
//     served suite.
//
// Programs that fail layers 1–4 deterministically are rejected (a property
// of the source; resubmission fails identically). Programs that fault the
// harness — a contained panic, an interpreter error, a lockstep mismatch —
// are quarantined by content hash and never re-executed.
package workload

import (
	"time"

	"repro/internal/bench"
	"repro/internal/faultinject"
)

// Defaults for Options fields left zero.
const (
	DefaultMaxSourceBytes = 256 << 10
	DefaultMaxDataBytes   = 1 << 20
	DefaultMaxOutputBytes = 64 << 10
	DefaultMaxInsts       = 2_000_000
	DefaultDeadline       = 2 * time.Second
	DefaultSpotCheckSteps = 50_000
	DefaultStackBytes     = 64 << 10
	DefaultMaxPrograms    = 256
	DefaultMaxStoredBytes = 16 << 20
	DefaultTenantPrograms = 32
	DefaultSubmitPerMin   = 30
	DefaultInstallPerMin  = 120
)

// Options bounds the intake pipeline and the registry behind it. The zero
// value is usable: every field defaults as documented.
type Options struct {
	// MaxSourceBytes caps the submitted source before parsing.
	MaxSourceBytes int
	// MaxDataBytes caps the assembled data segment (a ten-byte source with
	// a huge .space would otherwise allocate its size in pages here and in
	// every simulation worker).
	MaxDataBytes int
	// MaxOutputBytes caps bytes written by print syscalls during probation.
	MaxOutputBytes int
	// MaxInsts is the probation retired-instruction budget; it also becomes
	// the accepted benchmark's runaway guard.
	MaxInsts uint64
	// Deadline is the probation wall-clock budget.
	Deadline time.Duration
	// SpotCheckSteps caps the diffsim lockstep pass (StopAtCap: reaching it
	// is success — only a prefix is cross-checked).
	SpotCheckSteps uint64
	// StackBytes sizes the sandbox stack window below the stack top.
	StackBytes uint32

	// MaxPrograms and MaxStoredBytes bound the in-memory registry (LRU).
	MaxPrograms    int
	MaxStoredBytes int64
	// SpillDir, when set, receives evicted programs as JSON files so they
	// survive cache pressure; lookups fall back to it and re-verify the
	// content hash on load.
	SpillDir string

	// TenantPrograms caps accepted programs per tenant; SubmitPerMin is a
	// token-bucket rate limit on submissions (accepted or not).
	TenantPrograms int
	SubmitPerMin   int
	// InstallPerMin is a registry-wide token bucket on replica installs
	// (Install). Replication is fleet traffic, not tenant traffic, so the
	// budget is global: it bounds the compile/assemble CPU an install flood
	// can burn, without letting an attacker-chosen tenant name dodge it.
	InstallPerMin int

	// Faults optionally injects failures at the probation point.
	Faults *faultinject.Injector
	// Now is the quota clock (tests inject a fake one). Nil means
	// time.Now.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxSourceBytes <= 0 {
		o.MaxSourceBytes = DefaultMaxSourceBytes
	}
	if o.MaxDataBytes <= 0 {
		o.MaxDataBytes = DefaultMaxDataBytes
	}
	if o.MaxOutputBytes <= 0 {
		o.MaxOutputBytes = DefaultMaxOutputBytes
	}
	if o.MaxInsts == 0 {
		o.MaxInsts = DefaultMaxInsts
	}
	if o.Deadline <= 0 {
		o.Deadline = DefaultDeadline
	}
	if o.SpotCheckSteps == 0 {
		o.SpotCheckSteps = DefaultSpotCheckSteps
	}
	if o.StackBytes == 0 {
		o.StackBytes = DefaultStackBytes
	}
	if o.MaxPrograms <= 0 {
		o.MaxPrograms = DefaultMaxPrograms
	}
	if o.MaxStoredBytes <= 0 {
		o.MaxStoredBytes = DefaultMaxStoredBytes
	}
	if o.TenantPrograms <= 0 {
		o.TenantPrograms = DefaultTenantPrograms
	}
	if o.SubmitPerMin <= 0 {
		o.SubmitPerMin = DefaultSubmitPerMin
	}
	if o.InstallPerMin <= 0 {
		o.InstallPerMin = DefaultInstallPerMin
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Languages accepted by Submit.
const (
	LangAsm   = "asm"
	LangMiniC = "minic"
)

// Program is one accepted submission.
type Program struct {
	// ID is the sha256 of (language, source); Name is "user:" + ID — the
	// namespace keeps user programs disjoint from the built-in suite and
	// makes the name self-verifying across shards.
	ID   string `json:"id"`
	Name string `json:"name"`
	// Tenant is the submitting tenant (quota accounting key).
	Tenant string `json:"tenant"`
	// Lang is LangAsm or LangMiniC; Source is the submitted text and Asm
	// the assembly actually executed (identical for LangAsm).
	Lang   string `json:"lang"`
	Source string `json:"source"`
	Asm    string `json:"asm"`
	// Probation observations: retired instructions, final $s7 (recorded as
	// the benchmark's expected checksum — execution is deterministic, so
	// later runs must reproduce it), output bytes, and how many lockstep
	// steps the shadow cross-checked.
	Insts     uint64 `json:"insts"`
	Checksum  uint32 `json:"checksum"`
	OutBytes  int    `json:"outBytes"`
	SpotSteps uint64 `json:"spotSteps"`
	// MaxInsts is the runaway guard granted to suite runs (the probation
	// budget it was admitted under).
	MaxInsts uint64 `json:"maxInsts"`
}

// Bytes is the program's registry footprint.
func (p *Program) Bytes() int64 { return int64(len(p.Source) + len(p.Asm)) }

// Benchmark adapts the program to the universal workload currency. The
// checksum is the probation observation, so RunVerified-style checks hold
// by determinism.
func (p *Program) Benchmark() bench.Benchmark {
	return bench.Benchmark{
		Name:        p.Name,
		Description: "user-submitted " + p.Lang + " program (" + p.Tenant + ")",
		Source:      p.Asm,
		Checksum:    p.Checksum,
		MaxInsts:    p.MaxInsts,
	}
}

// IsUserName reports whether name is in the user-program namespace.
func IsUserName(name string) bool {
	return len(name) > 5 && name[:5] == "user:"
}
