package workload

import (
	"fmt"
	"time"
)

// SourceError is a compile or assembly diagnostic for a submitted program,
// carrying its 1-based source position (0 when unknown). It maps to a 400
// with the position surfaced as structured JSON fields so a client can
// highlight the offending line.
type SourceError struct {
	Stage string // "compile" (miniC) or "assemble"
	Line  int
	Col   int
	Msg   string
}

func (e *SourceError) Error() string {
	switch {
	case e.Line > 0 && e.Col > 0:
		return fmt.Sprintf("workload: %s: line %d:%d: %s", e.Stage, e.Line, e.Col, e.Msg)
	case e.Line > 0:
		return fmt.Sprintf("workload: %s: line %d: %s", e.Stage, e.Line, e.Msg)
	}
	return fmt.Sprintf("workload: %s: %s", e.Stage, e.Msg)
}

// RejectedError means the program compiled but failed the validation wall —
// a static check (entry/halt shape, addressing discipline) or a probation
// limit (instruction budget, sandbox window, output cap, nonzero exit).
// Rejections are deterministic properties of the source: resubmitting the
// same bytes fails the same way, so it maps to a 400.
type RejectedError struct {
	Check  string // which wall layer fired: "size", "static", "probation"
	Reason string
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("workload: rejected (%s): %s", e.Check, e.Reason)
}

// QuarantinedError means the program faulted the harness during probation —
// a contained panic, an interpreter error, or a lockstep divergence against
// the shadow machine. The program ID is remembered and never re-executed:
// resubmissions of the same source get this error back immediately instead
// of a retry.
type QuarantinedError struct {
	ID     string
	Reason string
}

func (e *QuarantinedError) Error() string {
	return fmt.Sprintf("workload: program %s quarantined: %s", e.ID, e.Reason)
}

// QuotaError means a per-tenant budget (program count, stored bytes, or
// submission rate) is exhausted. RetryAfter is nonzero only for the rate
// limit, where waiting actually helps.
type QuotaError struct {
	Tenant     string
	Reason     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("workload: tenant %q over quota: %s", e.Tenant, e.Reason)
}

// NotFoundError means no accepted program has the requested name.
type NotFoundError struct{ Name string }

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("workload: unknown program %q", e.Name)
}
