package workload

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/faultinject"
)

// validAsm is a tiny well-behaved kernel: sums the data words through $gp
// and leaves the total in $s7.
const validAsm = `
.text
main:
    lui $gp, 0x1000
    lw $t0, 0($gp)
    lw $t1, 4($gp)
    addu $s7, $t0, $t1
    addiu $v0, $zero, 10
    syscall

.data
a: .word 40
b: .word 2
`

const validMiniC = `int main() { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; } return s; }`

func corpus(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func newTestRegistry(t *testing.T, opts Options) *Registry {
	t.Helper()
	r, err := NewRegistry(opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSubmitAsmAccepted(t *testing.T) {
	r := newTestRegistry(t, Options{})
	p, err := r.Submit(context.Background(), "alice", LangAsm, validAsm)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if p.Checksum != 42 {
		t.Fatalf("checksum %d, want 42", p.Checksum)
	}
	if !IsUserName(p.Name) || p.Name != "user:"+ProgramID(LangAsm, validAsm) {
		t.Fatalf("bad name %q", p.Name)
	}
	if p.Insts == 0 || p.SpotSteps != p.Insts {
		t.Fatalf("probation observed %d insts, spot-checked %d", p.Insts, p.SpotSteps)
	}
	// The adapted benchmark must pass the same verification the built-in
	// suite does (deterministic checksum, bounded run).
	if _, err := p.Benchmark().RunVerified(); err != nil {
		t.Fatalf("RunVerified on accepted program: %v", err)
	}
	// Resubmission is a cheap cache hit, same object.
	p2, err := r.Submit(context.Background(), "alice", LangAsm, validAsm)
	if err != nil || p2 != p {
		t.Fatalf("resubmit: %v (dedup %v)", err, p2 == p)
	}
}

func TestSubmitMiniC(t *testing.T) {
	r := newTestRegistry(t, Options{})
	p, err := r.Submit(context.Background(), "bob", LangMiniC, validMiniC)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if p.Checksum != 45 { // sum 0..9, left in $s7 by the startup stub
		t.Fatalf("checksum %d, want 45", p.Checksum)
	}
	if p.Asm == p.Source || !strings.Contains(p.Asm, "main:") {
		t.Fatalf("compiled asm not recorded")
	}
	if _, err := p.Benchmark().RunVerified(); err != nil {
		t.Fatalf("RunVerified: %v", err)
	}
}

func TestSourceErrorsCarryPosition(t *testing.T) {
	r := newTestRegistry(t, Options{})
	_, err := r.Submit(context.Background(), "t", LangMiniC, "int main() {\n  return x;\n}")
	var se *SourceError
	if !errors.As(err, &se) || se.Stage != "compile" || se.Line != 2 {
		t.Fatalf("minic error: got %v (parsed %+v)", err, se)
	}
	// A lexer-level diagnostic carries the column too.
	_, err = r.Submit(context.Background(), "t", LangMiniC, "int main() {\n  int x = `3;\n}")
	se = nil
	if !errors.As(err, &se) || se.Stage != "compile" || se.Line != 2 || se.Col == 0 {
		t.Fatalf("minic lex error: got %v (parsed %+v)", err, se)
	}
	_, err = r.Submit(context.Background(), "t", LangAsm, ".text\nmain:\n    bogus $t0, $t1\n    syscall\n")
	se = nil
	if !errors.As(err, &se) || se.Stage != "assemble" || se.Line != 3 || se.Col == 0 {
		t.Fatalf("asm error: got %v (parsed %+v)", err, se)
	}
}

// TestCorpusContained runs the malicious corpus through the wall and
// asserts each program dies at the intended layer with a typed error.
func TestCorpusContained(t *testing.T) {
	opts := Options{
		MaxInsts:       50_000,
		MaxOutputBytes: 1 << 10,
		SubmitPerMin:   1000,
	}
	cases := []struct {
		file  string
		check string // expected RejectedError.Check
		want  string // substring of the reason
	}{
		{"infinite_loop.s", "probation", "budget exhausted"},
		{"budget_burn.s", "probation", "budget exhausted"},
		{"oob_store.s", "probation", "outside the sandbox"},
		{"print_flood.s", "probation", "output exceeded"},
		{"gp_hijack.s", "static", "writes $gp"},
	}
	r := newTestRegistry(t, opts)
	for _, tc := range cases {
		_, err := r.Submit(context.Background(), "mallory", LangAsm, corpus(t, tc.file))
		var re *RejectedError
		if !errors.As(err, &re) {
			t.Fatalf("%s: got %v, want RejectedError", tc.file, err)
		}
		if re.Check != tc.check || !strings.Contains(re.Reason, tc.want) {
			t.Fatalf("%s: got (%s) %q, want (%s) ...%q...", tc.file, re.Check, re.Reason, tc.check, tc.want)
		}
	}
	if st := r.Stats(); st.Rejected != uint64(len(cases)) || st.Programs != 0 {
		t.Fatalf("stats after corpus: %+v", st)
	}
}

func TestStaticWall(t *testing.T) {
	r := newTestRegistry(t, Options{SubmitPerMin: 1000})
	cases := []struct {
		name, src, want string
	}{
		{"no-halt", ".text\nmain:\n    addu $t0, $t1, $t2\n", "cannot halt"},
		{"empty", ".data\nx: .word 1\n", "empty text"},
		{"bad-base", ".text\nmain:\n    lui $t0, 0x1000\n    lw $t1, 0($t0)\n    addiu $v0, $zero, 10\n    syscall\n", "through $gp or $sp"},
		{"oversized-data", ".text\nmain:\n    addiu $v0, $zero, 10\n    syscall\n.data\nbig: .space 99999999\n", "data segment"},
	}
	for _, tc := range cases {
		_, err := r.Submit(context.Background(), "t", LangAsm, tc.src)
		var re *RejectedError
		if !errors.As(err, &re) || !strings.Contains(re.Reason, tc.want) {
			t.Fatalf("%s: got %v, want static reject ...%q...", tc.name, err, tc.want)
		}
	}
	// miniC is exempt from the base-register rule (its codegen uses
	// materialised addresses) but still sandboxed dynamically.
	if _, err := r.Submit(context.Background(), "t", LangMiniC, "int g; int main() { g = 7; return g; }"); err != nil {
		t.Fatalf("minic global store rejected: %v", err)
	}
}

func TestOversizedSource(t *testing.T) {
	r := newTestRegistry(t, Options{MaxSourceBytes: 512})
	src := ".text\nmain:\n# " + strings.Repeat("x", 1024) + "\n    addiu $v0, $zero, 10\n    syscall\n"
	_, err := r.Submit(context.Background(), "t", LangAsm, src)
	var re *RejectedError
	if !errors.As(err, &re) || re.Check != "size" {
		t.Fatalf("got %v, want size reject", err)
	}
}

func TestTenantQuotas(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	r := newTestRegistry(t, Options{TenantPrograms: 2, SubmitPerMin: 4, Now: clock})

	variant := func(i byte) string {
		return validAsm + "\n# variant " + string('a'+i) + "\n"
	}
	for i := byte(0); i < 2; i++ {
		if _, err := r.Submit(context.Background(), "alice", LangAsm, variant(i)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err := r.Submit(context.Background(), "alice", LangAsm, variant(2))
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.RetryAfter != 0 {
		t.Fatalf("count quota: got %v", err)
	}
	// Other tenants are unaffected.
	if _, err := r.Submit(context.Background(), "carol", LangAsm, variant(2)); err != nil {
		t.Fatalf("carol blocked by alice's quota: %v", err)
	}
}

func TestSubmitRateLimit(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	r := newTestRegistry(t, Options{SubmitPerMin: 4, Now: clock})

	variant := func(i byte) string {
		return validAsm + "\n# variant " + string('a'+i) + "\n"
	}
	for i := byte(0); i < 4; i++ {
		if _, err := r.Submit(context.Background(), "carol", LangAsm, variant(i)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err := r.Submit(context.Background(), "carol", LangAsm, variant(4))
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.RetryAfter <= 0 {
		t.Fatalf("rate quota: got %v", err)
	}
	// Another tenant has its own bucket.
	if _, err := r.Submit(context.Background(), "dave", LangAsm, variant(4)); err != nil {
		t.Fatalf("dave blocked by carol's rate: %v", err)
	}
	// The bucket refills with the clock.
	now = now.Add(time.Minute)
	if _, err := r.Submit(context.Background(), "carol", LangAsm, variant(5)); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

func TestEvictionSpillsAndReloads(t *testing.T) {
	dir := t.TempDir()
	r := newTestRegistry(t, Options{MaxPrograms: 2, SpillDir: dir, SubmitPerMin: 1000})
	srcs := make([]string, 4)
	names := make([]string, 4)
	for i := range srcs {
		srcs[i] = validAsm + "\n# v" + string(rune('a'+i)) + "\n"
		p, err := r.Submit(context.Background(), "t", LangAsm, srcs[i])
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		names[i] = p.Name
	}
	if st := r.Stats(); st.Programs != 2 {
		t.Fatalf("resident %d, want 2", st.Programs)
	}
	// The first two were evicted to disk; lookups reload and hash-verify.
	p, err := r.Get(names[0])
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if p.Source != srcs[0] || p.Checksum != 42 {
		t.Fatalf("reloaded program differs")
	}
	// A tampered spill file must read as a miss, not as a program.
	id := strings.TrimPrefix(names[1], "user:")
	path := filepath.Join(dir, id+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(data), "addu", "subu", 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	var nf *NotFoundError
	if _, err := r.Get(names[1]); !errors.As(err, &nf) {
		t.Fatalf("tampered spill: got %v, want NotFoundError", err)
	}
}

func TestEvictionWithoutSpillForgets(t *testing.T) {
	r := newTestRegistry(t, Options{MaxPrograms: 1, SubmitPerMin: 1000})
	p1, err := r.Submit(context.Background(), "t", LangAsm, validAsm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(context.Background(), "t", LangAsm, validAsm+"\n# v2\n"); err != nil {
		t.Fatal(err)
	}
	var nf *NotFoundError
	if _, err := r.Get(p1.Name); !errors.As(err, &nf) {
		t.Fatalf("got %v, want NotFoundError", err)
	}
}

// TestInjectedPanicQuarantines proves a probationary run killed by fault
// injection is contained: the submission fails typed, the program is
// quarantined by content hash, and resubmission never re-executes it.
func TestInjectedPanicQuarantines(t *testing.T) {
	inj := faultinject.MustNew(1, faultinject.Rule{
		Point: faultinject.PointProbation, Kind: faultinject.KindPanic, Prob: 1,
	})
	inj.SetEnabled(true)
	r := newTestRegistry(t, Options{Faults: inj, SubmitPerMin: 1000})
	_, err := r.Submit(context.Background(), "t", LangAsm, validAsm)
	var qe *QuarantinedError
	if !errors.As(err, &qe) || qe.ID == "" {
		t.Fatalf("got %v, want QuarantinedError with ID", err)
	}
	// Even with faults off, the quarantine holds: no retry.
	inj.SetEnabled(false)
	_, err = r.Submit(context.Background(), "t", LangAsm, validAsm)
	qe = nil
	if !errors.As(err, &qe) {
		t.Fatalf("resubmit after quarantine: got %v", err)
	}
	if st := r.Stats(); st.Quarantined != 1 || st.Quarantines != 1 || st.Programs != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if qs := r.Quarantined(); len(qs) != 1 || !strings.Contains(qs[0].Reason, "panic") {
		t.Fatalf("quarantine list: %+v", qs)
	}
}

// TestInjectedErrorIsTransient proves a non-panic injected fault fails the
// submission without blaming the program: no quarantine, and a clean retry
// succeeds.
func TestInjectedErrorIsTransient(t *testing.T) {
	inj := faultinject.MustNew(1, faultinject.Rule{
		Point: faultinject.PointProbation, Kind: faultinject.KindError, Prob: 1,
	})
	inj.SetEnabled(true)
	r := newTestRegistry(t, Options{Faults: inj, SubmitPerMin: 1000})
	_, err := r.Submit(context.Background(), "t", LangAsm, validAsm)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("got %v, want injected error", err)
	}
	inj.SetEnabled(false)
	if _, err := r.Submit(context.Background(), "t", LangAsm, validAsm); err != nil {
		t.Fatalf("retry after transient fault: %v", err)
	}
	if st := r.Stats(); st.Quarantined != 0 || st.Accepted != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestInstallReplication(t *testing.T) {
	src, dst := newTestRegistry(t, Options{}), newTestRegistry(t, Options{})
	p, err := src.Submit(context.Background(), "alice", LangAsm, validAsm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Install(p); err != nil {
		t.Fatalf("install: %v", err)
	}
	got, err := dst.Get(p.Name)
	if err != nil || got.Checksum != p.Checksum {
		t.Fatalf("replicated lookup: %v", err)
	}
	// A forged replica (bytes not matching the claimed hash) is refused.
	forged := *p
	forged.Source += "\n# evil\n"
	if _, err := dst.Install(&forged); err == nil {
		t.Fatal("forged replica accepted")
	}
}

// TestInstallClampsForgedBudgets: a replica that self-claims a huge
// instruction budget (the probation layers it never ran would have bounded
// it) installs with this registry's own budget, and a claimed retired count
// above the budget is refused outright — replication cannot grant more CPU
// or memory than a local acceptance would.
func TestInstallClampsForgedBudgets(t *testing.T) {
	src, dst := newTestRegistry(t, Options{}), newTestRegistry(t, Options{})
	p, err := src.Submit(context.Background(), "alice", LangAsm, validAsm)
	if err != nil {
		t.Fatal(err)
	}

	forged := *p
	forged.MaxInsts = 1 << 62 // self-"accepted" runaway budget
	installed, err := dst.Install(&forged)
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	if want := dst.opts.MaxInsts; installed.MaxInsts != want {
		t.Fatalf("installed MaxInsts = %d, want clamped to %d", installed.MaxInsts, want)
	}
	if got, err := dst.Get(p.Name); err != nil || got.MaxInsts != dst.opts.MaxInsts {
		t.Fatalf("resident replica kept forged budget: %v (MaxInsts %d)", err, got.MaxInsts)
	}

	over := *p
	over.Insts = dst.opts.MaxInsts + 1
	var rejected *RejectedError
	if _, err := newTestRegistry(t, Options{}).Install(&over); !errors.As(err, &rejected) {
		t.Fatalf("over-budget Insts claim: err = %v, want RejectedError", err)
	}
}

// TestInstallAdmission: replica installs are metered (global InstallPerMin
// bucket, charged before the compile) and honor the original tenant's
// program cap — replication is not a side door around Submit's admission
// control.
func TestInstallAdmission(t *testing.T) {
	src := newTestRegistry(t, Options{SubmitPerMin: 1000})
	progs := make([]*Program, 3)
	for i := range progs {
		p, err := src.Submit(context.Background(), "alice", LangAsm,
			validAsm+"\n# variant "+strings.Repeat("x", i+1)+"\n")
		if err != nil {
			t.Fatal(err)
		}
		progs[i] = p
	}

	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }

	// Rate: a bucket of 2/min admits two installs, then sheds with a
	// Retry-After hint; refilling the bucket readmits.
	rated := newTestRegistry(t, Options{InstallPerMin: 2, Now: clock})
	for i := 0; i < 2; i++ {
		if _, err := rated.Install(progs[i]); err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
	}
	var quota *QuotaError
	if _, err := rated.Install(progs[2]); !errors.As(err, &quota) || quota.RetryAfter <= 0 {
		t.Fatalf("third install: err = %v, want rate QuotaError with Retry-After", err)
	}
	now = now.Add(time.Minute)
	if _, err := rated.Install(progs[2]); err != nil {
		t.Fatalf("install after refill: %v", err)
	}

	// Tenant cap: the original tenant's program count is enforced.
	capped := newTestRegistry(t, Options{TenantPrograms: 1})
	if _, err := capped.Install(progs[0]); err != nil {
		t.Fatalf("install under cap: %v", err)
	}
	if _, err := capped.Install(progs[1]); !errors.As(err, &quota) {
		t.Fatalf("install over tenant cap: err = %v, want QuotaError", err)
	}
}

// TestTenantStatesPruned: rotating tenant names per request (the header is
// caller-supplied) cannot grow the tenants map without bound — idle states
// whose buckets refilled are swept once the map passes its threshold.
func TestTenantStatesPruned(t *testing.T) {
	now := time.Unix(1000, 0)
	r := newTestRegistry(t, Options{Now: func() time.Time { return now }})
	ctx := context.Background()
	for i := 0; i < maxTenantStates+100; i++ {
		// Rejections are fine (and cheap) — only the tenant state matters.
		r.Submit(ctx, "tenant-"+strings.Repeat("x", i%7)+fmt.Sprint(i), LangAsm, "")
		now = now.Add(10 * time.Minute) // every earlier bucket has refilled
	}
	r.mu.Lock()
	n := len(r.tenants)
	r.mu.Unlock()
	if n > maxTenantStates {
		t.Fatalf("%d tenant states resident, want <= %d after pruning", n, maxTenantStates)
	}
}

func TestConcurrentSubmitDedup(t *testing.T) {
	r := newTestRegistry(t, Options{SubmitPerMin: 1000})
	var wg sync.WaitGroup
	progs := make([]*Program, 8)
	for i := range progs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := r.Submit(context.Background(), "t", LangAsm, validAsm)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	if st := r.Stats(); st.Programs != 1 {
		t.Fatalf("%d programs after concurrent identical submits", st.Programs)
	}
	for _, p := range progs {
		if p == nil || p.Name != progs[0].Name {
			t.Fatal("divergent results from concurrent submits")
		}
	}
}

func TestChecksumRegisterMatchesBench(t *testing.T) {
	// The probation checksum register must be the suite's: a drift here
	// would accept programs whose benchmark verification then fails.
	if bench.ChecksumReg != 23 {
		t.Fatalf("checksum register moved to %d; update workload probation", bench.ChecksumReg)
	}
}
