package workload

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/cpu"
	"repro/internal/diffsim"
	"repro/internal/faultinject"
	"repro/internal/mem"
)

// probationOutcome is what a survived probation observed.
type probationOutcome struct {
	insts     uint64
	checksum  uint32
	outBytes  int
	spotSteps uint64
}

// ctxCheckStride is how often the probation loop polls the deadline; cheap
// enough to leave the hot loop tight, frequent enough that a wall-clock
// overrun is caught within microseconds of real work.
const ctxCheckStride = 4096

var (
	oracleOnce sync.Once
	oracle     *diffsim.Oracle
)

func spotOracle() *diffsim.Oracle {
	oracleOnce.Do(func() { oracle = diffsim.DefaultOracle() })
	return oracle
}

// sandboxWindows returns the allowed data-access ranges for a submitted
// program: its data segment plus a bounded stack below the stack top.
func sandboxWindows(p *asm.Program, opts Options) []diffsim.MemWindow {
	return []diffsim.MemWindow{
		{Base: p.DataBase, Size: uint32(len(p.Data))},
		{Base: asm.DefaultStackTop - opts.StackBytes, Size: opts.StackBytes},
	}
}

// probation runs wall layers 4–5: the budgeted execution on the golden
// interpreter, then the lockstep spot-check against the compressed-path
// shadow machine.
//
// Error classes: *RejectedError for deterministic source properties (budget
// exhaustion, sandbox violation, interpreter-visible faults, nonzero exit),
// *QuarantinedError (without ID — the caller stamps it) for harness faults
// (contained panics, lockstep divergence), and transient context/injection
// errors passed through untouched so infrastructure trouble is not pinned
// on the program.
func probation(ctx context.Context, prog *asm.Program, opts Options) (out probationOutcome, err error) {
	defer func() {
		if v := recover(); v != nil {
			// A panic inside the interpreter (or injected at the probation
			// point) is a harness fault: contain it, quarantine the program.
			err = &QuarantinedError{Reason: fmt.Sprintf("probation panic: %v", v)}
		}
	}()
	if ferr := opts.Faults.Fire(ctx, faultinject.PointProbation); ferr != nil {
		return out, ferr
	}

	ctx, cancel := context.WithTimeout(ctx, opts.Deadline)
	defer cancel()

	reject := func(format string, args ...interface{}) error {
		return &RejectedError{Check: "probation", Reason: fmt.Sprintf(format, args...)}
	}

	m := mem.NewMemory()
	prog.LoadInto(m)
	c := cpu.New(m, prog.Entry, asm.DefaultStackTop)
	textEnd := prog.TextBase + 4*uint32(len(prog.Text))
	windows := sandboxWindows(prog, opts)
	inWindow := func(addr uint32, width int) bool {
		for _, w := range windows {
			if w.Contains(addr, width) {
				return true
			}
		}
		return false
	}

	for !c.Done {
		if out.insts >= opts.MaxInsts {
			return out, reject("budget exhausted: %d instructions without halting", opts.MaxInsts)
		}
		if out.insts%ctxCheckStride == 0 {
			if cerr := ctx.Err(); cerr != nil {
				if ctx.Err() == context.DeadlineExceeded {
					return out, reject("deadline exceeded after %d instructions (%v wall clock)", out.insts, opts.Deadline)
				}
				return out, cerr
			}
		}
		// Sparse memory reads as zero, so a PC that escapes the text image
		// would nop-sled through unmapped pages until the budget burned;
		// catch it the step it happens.
		if c.PC < prog.TextBase || c.PC >= textEnd {
			return out, reject("PC %#x left the text segment [%#x, %#x) after %d instructions",
				c.PC, prog.TextBase, textEnd, out.insts)
		}
		e, serr := c.Step()
		if serr != nil {
			return out, reject("step %d: %v", out.insts, serr)
		}
		if e.MemWidth > 0 && !inWindow(e.Addr, e.MemWidth) {
			return out, reject("step %d: %d-byte access at %#08x outside the sandbox (data segment + %d-byte stack)",
				out.insts, e.MemWidth, e.Addr, opts.StackBytes)
		}
		if c.Output.Len() > opts.MaxOutputBytes {
			return out, reject("step %d: output exceeded %d bytes", out.insts, opts.MaxOutputBytes)
		}
		out.insts++
	}
	if c.ExitCode != 0 {
		return out, reject("exit code %d (want 0)", c.ExitCode)
	}
	out.checksum = c.Regs[bench.ChecksumReg]
	out.outBytes = c.Output.Len()

	// Spot-check: replay a budgeted prefix in lockstep against the fully
	// compressed shadow machine. A divergence here is not the submitter's
	// bug to fix by resubmitting — quarantine it for a human.
	steps := opts.SpotCheckSteps
	if steps > out.insts {
		steps = out.insts
	}
	rep := diffsim.CheckBinary(prog.Text, prog.Data, spotOracle(), diffsim.CheckOpts{
		MaxSteps:    steps,
		StopAtCap:   true,
		Entry:       prog.Entry,
		Windows:     windows,
		AllowPrints: true,
	})
	if !rep.OK() {
		return out, &QuarantinedError{Reason: fmt.Sprintf("lockstep spot-check diverged: %v", rep.Mismatch)}
	}
	out.spotSteps = rep.Steps
	return out, nil
}
