package workload

import (
	"errors"
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/minic"
)

// gpPrologue is the one instruction allowed to write $gp in raw assembly:
// the canonical data-segment base load the fuzz generator's prologue emits
// (DataBase's low half is zero, so a single LUI establishes it exactly).
var gpPrologue = isa.EncodeI(isa.OpLUI, 0, isa.RegGP, int16(asm.DefaultDataBase>>16))

// build runs wall layers 1–3: size, compile/assemble, static shape checks.
// Returned errors are *SourceError or *RejectedError.
func build(lang, source string, opts Options) (*asm.Program, string, error) {
	if len(source) > opts.MaxSourceBytes {
		return nil, "", &RejectedError{Check: "size",
			Reason: fmt.Sprintf("source is %d bytes, limit %d", len(source), opts.MaxSourceBytes)}
	}
	asmSrc := source
	switch lang {
	case LangMiniC:
		text, err := minic.CompileToAsm(source)
		if err != nil {
			var me *minic.Error
			if errors.As(err, &me) {
				return nil, "", &SourceError{Stage: "compile", Line: me.Line, Col: me.Col, Msg: me.Msg}
			}
			return nil, "", &SourceError{Stage: "compile", Msg: err.Error()}
		}
		asmSrc = text
	case LangAsm:
	default:
		return nil, "", &RejectedError{Check: "size",
			Reason: fmt.Sprintf("unknown language %q (want %q or %q)", lang, LangAsm, LangMiniC)}
	}
	prog, err := asm.Assemble(asmSrc)
	if err != nil {
		var ae *asm.Error
		if errors.As(err, &ae) {
			stage := "assemble"
			if lang == LangMiniC {
				// The compiler produced unassemblable text: an intake bug,
				// not the caller's — but still a deterministic rejection.
				stage = "compile"
			}
			return nil, "", &SourceError{Stage: stage, Line: ae.Line, Col: ae.Col, Msg: ae.Msg}
		}
		return nil, "", &SourceError{Stage: "assemble", Msg: err.Error()}
	}
	if err := staticCheck(prog, lang == LangAsm, opts); err != nil {
		return nil, "", err
	}
	return prog, asmSrc, nil
}

// staticCheck enforces the executable shape before anything runs: nonempty
// text at the framework base, entry inside text, a halt in reach (at least
// one syscall word), a bounded data segment, and — for raw assembly — the
// generator's addressing discipline.
func staticCheck(p *asm.Program, rawAsm bool, opts Options) error {
	reject := func(format string, args ...interface{}) error {
		return &RejectedError{Check: "static", Reason: fmt.Sprintf(format, args...)}
	}
	if len(p.Text) == 0 {
		return reject("empty text segment")
	}
	if p.TextBase != asm.DefaultTextBase || p.DataBase != asm.DefaultDataBase {
		return reject("nonstandard segment bases (text %#x, data %#x)", p.TextBase, p.DataBase)
	}
	textEnd := p.TextBase + 4*uint32(len(p.Text))
	if p.Entry < p.TextBase || p.Entry >= textEnd || p.Entry%4 != 0 {
		return reject("entry %#x outside text [%#x, %#x)", p.Entry, p.TextBase, textEnd)
	}
	if len(p.Data) > opts.MaxDataBytes {
		return reject("data segment is %d bytes, limit %d", len(p.Data), opts.MaxDataBytes)
	}
	hasSyscall := false
	for i, w := range p.Text {
		inst := isa.Decode(w)
		if inst.Op == isa.OpSpecial && inst.Funct == isa.FnSYSCALL {
			hasSyscall = true
		}
		if !rawAsm {
			continue
		}
		pc := p.TextBase + 4*uint32(i)
		// $gp is the sandbox base: only the canonical prologue LUI may
		// write it, so every $gp-relative access provably lands in the
		// data segment's page range.
		if dest, ok := inst.DestReg(); ok && dest == isa.RegGP && w != gpPrologue {
			return reject("instruction at %#x writes $gp (%s); only `lui $gp, %#x` is allowed",
				pc, inst.Disassemble(pc), asm.DefaultDataBase>>16)
		}
		// Loads and stores must be $gp- or $sp-based (the generator
		// discipline). miniC output is exempt: its codegen materialises
		// symbol addresses into temporaries and relies on the dynamic
		// sandbox windows instead.
		if inst.IsMem() && inst.Rs != isa.RegGP && inst.Rs != isa.RegSP {
			return reject("memory access at %#x uses base %s (%s); raw assembly must address through $gp or $sp",
				pc, inst.Rs, inst.Disassemble(pc))
		}
	}
	if !hasSyscall {
		return reject("no syscall instruction: program cannot halt")
	}
	return nil
}
