package workload

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry is the content-addressed store of accepted user programs. It is
// safe for concurrent use. Entries are bounded by count and bytes with LRU
// eviction; evicted programs spill to SpillDir (when configured) and are
// reloaded — hash-verified — on demand. Quarantined IDs are remembered
// forever (within the process) and never re-executed.
type Registry struct {
	opts Options

	mu          sync.Mutex
	byID        map[string]*list.Element // -> *entry
	lru         *list.List               // front = most recent
	bytes       int64
	quarantined map[string]string // id -> reason
	tenants     map[string]*tenantState
	inflight    map[string]*submitCall
	spill       *spillStore

	// Global install-rate bucket (InstallPerMin): replica installs are not
	// tenant traffic, so they are metered registry-wide.
	installTokens float64
	installLast   time.Time

	accepted, rejected, quarantines uint64
}

type entry struct {
	prog *Program
}

type tenantState struct {
	programs int
	// Token bucket for the submission rate limit.
	tokens float64
	last   time.Time
}

// submitCall deduplicates concurrent submissions of identical content: the
// first caller runs the wall, the rest wait for its outcome.
type submitCall struct {
	done chan struct{}
	prog *Program
	err  error
}

// NewRegistry builds a registry with opts (zero fields defaulted).
func NewRegistry(opts Options) (*Registry, error) {
	opts = opts.withDefaults()
	r := &Registry{
		opts:          opts,
		byID:          make(map[string]*list.Element),
		lru:           list.New(),
		quarantined:   make(map[string]string),
		tenants:       make(map[string]*tenantState),
		inflight:      make(map[string]*submitCall),
		installTokens: float64(opts.InstallPerMin),
		installLast:   opts.Now(),
	}
	if opts.SpillDir != "" {
		st, err := newSpillStore(opts.SpillDir)
		if err != nil {
			return nil, fmt.Errorf("workload: spill dir: %w", err)
		}
		r.spill = st
	}
	return r, nil
}

// ProgramID is the content address: sha256 over (language, source).
func ProgramID(lang, source string) string {
	h := sha256.New()
	h.Write([]byte(lang))
	h.Write([]byte{0})
	h.Write([]byte(source))
	return hex.EncodeToString(h.Sum(nil))
}

// Submit pushes source through the validation wall and, on success,
// registers it under "user:" + its content hash. Identical content is
// deduplicated (including concurrently), so resubmitting an accepted
// program is cheap and never re-executes it.
func (r *Registry) Submit(ctx context.Context, tenant, lang, source string) (*Program, error) {
	if tenant == "" {
		tenant = "anonymous"
	}
	if lang == "" {
		lang = LangAsm
	}
	id := ProgramID(lang, source)

	r.mu.Lock()
	if reason, ok := r.quarantined[id]; ok {
		r.mu.Unlock()
		return nil, &QuarantinedError{ID: id, Reason: reason}
	}
	// The rate limit charges every submission attempt — the wall itself is
	// the expensive thing a flooding tenant burns.
	if err := r.takeTokenLocked(tenant); err != nil {
		r.mu.Unlock()
		r.rejected++
		return nil, err
	}
	if el, ok := r.byID[id]; ok {
		r.lru.MoveToFront(el)
		p := el.Value.(*entry).prog
		r.mu.Unlock()
		return p, nil
	}
	if call, ok := r.inflight[id]; ok {
		r.mu.Unlock()
		select {
		case <-call.done:
			return call.prog, call.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// Count quota before running the wall so a tenant at the cap cannot
	// burn probation cycles either.
	ts := r.tenant(tenant)
	if ts.programs >= r.opts.TenantPrograms {
		r.mu.Unlock()
		r.rejected++
		return nil, &QuotaError{Tenant: tenant,
			Reason: fmt.Sprintf("%d programs registered, limit %d", ts.programs, r.opts.TenantPrograms)}
	}
	call := &submitCall{done: make(chan struct{})}
	r.inflight[id] = call
	r.mu.Unlock()

	prog, err := r.runWall(ctx, id, tenant, lang, source)

	r.mu.Lock()
	delete(r.inflight, id)
	if err == nil {
		r.installLocked(prog)
		r.accepted++
	} else {
		switch qe := err.(type) {
		case *QuarantinedError:
			qe.ID = id
			r.quarantined[id] = qe.Reason
			r.quarantines++
		case *RejectedError, *SourceError:
			r.rejected++
		}
	}
	// Publish only after the outcome is fully stamped (quarantine ID and
	// bookkeeping): waiters read call.prog/call.err the moment done closes,
	// so any later mutation of the shared error would race them.
	call.prog, call.err = prog, err
	close(call.done)
	r.mu.Unlock()
	return prog, err
}

// runWall executes layers 1–5 outside the registry lock.
func (r *Registry) runWall(ctx context.Context, id, tenant, lang, source string) (*Program, error) {
	prog, asmSrc, err := build(lang, source, r.opts)
	if err != nil {
		return nil, err
	}
	out, err := probation(ctx, prog, r.opts)
	if err != nil {
		return nil, err
	}
	return &Program{
		ID:        id,
		Name:      "user:" + id,
		Tenant:    tenant,
		Lang:      lang,
		Source:    source,
		Asm:       asmSrc,
		Insts:     out.insts,
		Checksum:  out.checksum,
		OutBytes:  out.outBytes,
		SpotSteps: out.spotSteps,
		MaxInsts:  r.opts.MaxInsts,
	}, nil
}

// Install registers an already-validated program (cross-shard replication:
// the peer that accepted it ran the wall; the content hash is re-verified
// so a corrupt or forged replica cannot smuggle different bytes under an
// accepted name) and returns the resident copy. Nothing else in the replica
// is trusted:
//
//   - The compiled form is re-derived from the content-addressed source
//     through the same compile + static layers, so a replica whose Asm
//     field disagrees with its Source runs what the source says, not what
//     the forger sent.
//   - The runaway budget is never the replica's claim: MaxInsts is clamped
//     to this registry's own probation budget, and a claimed Insts above it
//     is refused outright — otherwise a self-"accepted" replica could grant
//     itself an effectively unbounded instruction budget and turn its first
//     run into a CPU/memory burn. With the budget pinned, a lie in the
//     remaining observations (Checksum, OutBytes, ...) surfaces as a
//     contained checksum-mismatch failure on first run, never as extra
//     cost.
//   - Installs ride admission control like any other write: a global
//     InstallPerMin bucket is charged before the rebuild (the compile is
//     the CPU an install flood would otherwise burn unmetered) and the
//     original tenant's program cap is enforced, so replication cannot
//     exceed the quotas Submit guards.
//
// Fleet budgets are assumed uniform (the same reason scattered suites
// require identical served suites): a replica accepted under a larger
// MaxInsts than this shard's is refused rather than trimmed.
func (r *Registry) Install(p *Program) (*Program, error) {
	if p == nil || p.ID != ProgramID(p.Lang, p.Source) || p.Name != "user:"+p.ID {
		return nil, &RejectedError{Check: "static", Reason: "replica content hash mismatch"}
	}
	if p.Insts > r.opts.MaxInsts {
		return nil, &RejectedError{Check: "static", Reason: fmt.Sprintf(
			"replica claims %d retired instructions, above this shard's probation budget %d", p.Insts, r.opts.MaxInsts)}
	}
	r.mu.Lock()
	if reason, ok := r.quarantined[p.ID]; ok {
		r.mu.Unlock()
		return nil, &QuarantinedError{ID: p.ID, Reason: reason}
	}
	if el, ok := r.byID[p.ID]; ok {
		// Re-pushes of a resident replica are free (and common: the gateway
		// re-pushes before every scatter until the shard confirms).
		r.lru.MoveToFront(el)
		got := el.Value.(*entry).prog
		r.mu.Unlock()
		return got, nil
	}
	if err := r.takeInstallTokenLocked(); err != nil {
		r.mu.Unlock()
		return nil, err
	}
	if ts := r.tenant(p.Tenant); ts.programs >= r.opts.TenantPrograms {
		r.mu.Unlock()
		return nil, &QuotaError{Tenant: p.Tenant,
			Reason: fmt.Sprintf("%d programs registered, limit %d", ts.programs, r.opts.TenantPrograms)}
	}
	r.mu.Unlock()

	_, asmSrc, err := build(p.Lang, p.Source, r.opts)
	if err != nil {
		return nil, err
	}
	cp := *p
	cp.Asm = asmSrc
	cp.MaxInsts = r.opts.MaxInsts

	r.mu.Lock()
	defer r.mu.Unlock()
	if reason, ok := r.quarantined[cp.ID]; ok {
		return nil, &QuarantinedError{ID: cp.ID, Reason: reason}
	}
	if el, ok := r.byID[cp.ID]; ok { // raced with another installer
		r.lru.MoveToFront(el)
		return el.Value.(*entry).prog, nil
	}
	if ts := r.tenant(cp.Tenant); ts.programs >= r.opts.TenantPrograms {
		return nil, &QuotaError{Tenant: cp.Tenant,
			Reason: fmt.Sprintf("%d programs registered, limit %d", ts.programs, r.opts.TenantPrograms)}
	}
	r.installLocked(&cp)
	return &cp, nil
}

// takeInstallTokenLocked charges one replica install against the global
// install bucket (InstallPerMin capacity, refilled continuously).
func (r *Registry) takeInstallTokenLocked() error {
	now := r.opts.Now()
	rate := float64(r.opts.InstallPerMin)
	r.installTokens += now.Sub(r.installLast).Minutes() * rate
	r.installLast = now
	if r.installTokens > rate {
		r.installTokens = rate
	}
	if r.installTokens < 1 {
		wait := time.Duration((1 - r.installTokens) / rate * float64(time.Minute))
		return &QuotaError{Tenant: "fleet",
			Reason:     fmt.Sprintf("replica install rate above %d/min", r.opts.InstallPerMin),
			RetryAfter: wait}
	}
	r.installTokens--
	return nil
}

// installLocked assumes r.mu held and the id not present.
func (r *Registry) installLocked(p *Program) {
	el := r.lru.PushFront(&entry{prog: p})
	r.byID[p.ID] = el
	r.bytes += p.Bytes()
	r.tenant(p.Tenant).programs++
	r.evictLocked()
}

// evictLocked drops LRU tails until both budgets hold, spilling each victim
// when a spill store is configured. A spilled program still counts against
// its tenant (the bytes live on, just on disk); a dropped one does not.
func (r *Registry) evictLocked() {
	for (r.lru.Len() > r.opts.MaxPrograms || r.bytes > r.opts.MaxStoredBytes) && r.lru.Len() > 1 {
		el := r.lru.Back()
		e := el.Value.(*entry)
		r.lru.Remove(el)
		delete(r.byID, e.prog.ID)
		r.bytes -= e.prog.Bytes()
		if r.spill != nil && r.spill.save(e.prog) == nil {
			continue
		}
		if ts := r.tenants[e.prog.Tenant]; ts != nil && ts.programs > 0 {
			ts.programs--
		}
	}
}

// Get looks a program up by name ("user:<id>") or bare id, falling back to
// the spill store on a cache miss.
func (r *Registry) Get(name string) (*Program, error) {
	id := strings.TrimPrefix(name, "user:")
	r.mu.Lock()
	if reason, ok := r.quarantined[id]; ok {
		r.mu.Unlock()
		return nil, &QuarantinedError{ID: id, Reason: reason}
	}
	if el, ok := r.byID[id]; ok {
		r.lru.MoveToFront(el)
		p := el.Value.(*entry).prog
		r.mu.Unlock()
		return p, nil
	}
	spill := r.spill
	r.mu.Unlock()
	if spill == nil {
		return nil, &NotFoundError{Name: name}
	}
	p, err := spill.load(id)
	if err != nil {
		return nil, &NotFoundError{Name: name}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.byID[id]; ok { // raced with another loader
		return el.Value.(*entry).prog, nil
	}
	// Reinstall without recharging the tenant: a spilled program stayed on
	// its account the whole time.
	el := r.lru.PushFront(&entry{prog: p})
	r.byID[id] = el
	r.bytes += p.Bytes()
	r.evictLocked()
	return p, nil
}

// List returns the resident programs, most recently used first.
func (r *Registry) List() []*Program {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Program, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).prog)
	}
	return out
}

// Quarantined returns the quarantined IDs and reasons, sorted by ID.
func (r *Registry) Quarantined() []QuarantinedError {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]QuarantinedError, 0, len(r.quarantined))
	for id, reason := range r.quarantined {
		out = append(out, QuarantinedError{ID: id, Reason: reason})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats is a point-in-time registry summary for metrics endpoints.
type Stats struct {
	Programs    int    `json:"programs"`
	StoredBytes int64  `json:"storedBytes"`
	Quarantined int    `json:"quarantined"`
	Accepted    uint64 `json:"accepted"`
	Rejected    uint64 `json:"rejected"`
	Quarantines uint64 `json:"quarantines"`
}

// Stats snapshots the registry counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Programs:    r.lru.Len(),
		StoredBytes: r.bytes,
		Quarantined: len(r.quarantined),
		Accepted:    r.accepted,
		Rejected:    r.rejected,
		Quarantines: r.quarantines,
	}
}

// maxTenantStates is the tenants-map size past which inserting a new state
// first sweeps out idle ones. Tenant identity is a caller-supplied header,
// so without this an attacker rotating names per request would grow the map
// without bound; with it, rotated names can pin at most this many states
// plus one refill window's worth, while states holding accepted programs
// are kept (they are bounded by the program store itself).
const maxTenantStates = 1024

func (r *Registry) tenant(name string) *tenantState {
	ts := r.tenants[name]
	if ts == nil {
		if len(r.tenants) >= maxTenantStates {
			r.pruneTenantsLocked()
		}
		ts = &tenantState{tokens: float64(r.opts.SubmitPerMin), last: r.opts.Now()}
		r.tenants[name] = ts
	}
	return ts
}

// pruneTenantsLocked drops tenant states that carry no information: no
// accepted programs and a rate bucket that has refilled to full, so
// recreating the state on the tenant's next submission is lossless.
func (r *Registry) pruneTenantsLocked() {
	now := r.opts.Now()
	rate := float64(r.opts.SubmitPerMin)
	for name, ts := range r.tenants {
		if ts.programs > 0 {
			continue
		}
		if ts.tokens+now.Sub(ts.last).Minutes()*rate >= rate {
			delete(r.tenants, name)
		}
	}
}

// takeTokenLocked charges one submission against the tenant's rate bucket
// (SubmitPerMin capacity, refilled continuously at SubmitPerMin per
// minute).
func (r *Registry) takeTokenLocked(tenant string) error {
	ts := r.tenant(tenant)
	now := r.opts.Now()
	rate := float64(r.opts.SubmitPerMin)
	ts.tokens += now.Sub(ts.last).Minutes() * rate
	ts.last = now
	if ts.tokens > rate {
		ts.tokens = rate
	}
	if ts.tokens < 1 {
		wait := time.Duration((1 - ts.tokens) / rate * float64(time.Minute))
		return &QuotaError{Tenant: tenant,
			Reason:     fmt.Sprintf("submission rate above %d/min", r.opts.SubmitPerMin),
			RetryAfter: wait}
	}
	ts.tokens--
	return nil
}
