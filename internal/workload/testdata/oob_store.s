# Stores far past its own data segment through the sanctioned $gp base.
# Static checks pass (the base register is $gp); the dynamic sandbox window
# must catch the access.
.text
main:
    lui $gp, 0x1000
    sw $zero, 0x7f00($gp)
    addiu $v0, $zero, 10
    syscall

.data
buf: .space 16
