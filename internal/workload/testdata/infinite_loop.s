# Never halts: the static wall sees a syscall (so the halt-shape check
# passes) but control never reaches it. Probation must cut it off at the
# instruction budget.
.text
main:
    lui $gp, 0x1000
loop:
    j loop
    addiu $v0, $zero, 10
    syscall
