# Re-points $gp at the stack after the sanctioned prologue so its "data"
# accesses would land wherever it likes. The static $gp-write rule must
# reject it before anything runs.
.text
main:
    lui $gp, 0x1000
    lui $gp, 0x7fff
    sw $zero, 0($gp)
    addiu $v0, $zero, 10
    syscall
