# Terminates eventually, but only after ~200k retired instructions — far
# beyond the probation budget the containment tests grant it.
.text
main:
    lui $gp, 0x1000
    lui $k0, 0x0001
loop:
    addiu $k0, $k0, -1
    bgtz $k0, loop
    addiu $v0, $zero, 10
    syscall
