# Prints forever: each putc syscall appends to the interpreter's output
# buffer, so without the output-bytes cap this allocates until probation's
# instruction budget — the cap must fire first.
.text
main:
    lui $gp, 0x1000
    addiu $a0, $zero, 65
loop:
    addiu $v0, $zero, 11
    syscall
    j loop
    addiu $v0, $zero, 10
    syscall
