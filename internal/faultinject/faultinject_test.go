package faultinject

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Fire(context.Background(), PointPoolPickup); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if in.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
	in.SetEnabled(true) // must not panic
	if in.Fired() != nil || in.Hits() != nil {
		t.Fatal("nil injector reports counts")
	}
}

func TestDisabledInjectorIsNoOp(t *testing.T) {
	in := MustNew(1, Rule{Point: PointPoolPickup, Kind: KindPanic, Prob: 1})
	in.SetEnabled(false)
	for i := 0; i < 100; i++ {
		if err := in.Fire(context.Background(), PointPoolPickup); err != nil {
			t.Fatalf("disabled injector fired: %v", err)
		}
	}
	if n := in.Fired()[PointPoolPickup]; n != 0 {
		t.Fatalf("disabled injector counted %d fires", n)
	}
}

func TestErrorKindIsTransient(t *testing.T) {
	in := MustNew(1, Rule{Point: PointCacheGet, Kind: KindError, Prob: 1})
	err := in.Fire(context.Background(), PointCacheGet)
	if err == nil {
		t.Fatal("no error injected at probability 1")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !IsTransient(err) {
		t.Fatal("injected error not transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", err)) {
		t.Fatal("wrapped injected error not transient")
	}
	if IsTransient(errors.New("plain")) || IsTransient(nil) {
		t.Fatal("non-injected error reported transient")
	}
	// Only the armed point fires.
	if err := in.Fire(context.Background(), PointCachePut); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestCancelKind(t *testing.T) {
	in := MustNew(1, Rule{Point: PointFlightJoin, Kind: KindCancel, Prob: 1})
	err := in.Fire(context.Background(), PointFlightJoin)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if IsTransient(err) {
		t.Fatal("cancellation must not be retryable")
	}
}

func TestPanicKind(t *testing.T) {
	in := MustNew(1, Rule{Point: PointTraceRunStart, Kind: KindPanic, Prob: 1})
	defer func() {
		v := recover()
		pv, ok := v.(*PanicValue)
		if !ok {
			t.Fatalf("recovered %v (%T), want *PanicValue", v, v)
		}
		if pv.Point != PointTraceRunStart {
			t.Fatalf("panic point %q", pv.Point)
		}
	}()
	in.Fire(context.Background(), PointTraceRunStart)
	t.Fatal("unreachable: panic rule did not panic")
}

func TestLatencyKind(t *testing.T) {
	in := MustNew(1, Rule{Point: PointSuiteBench, Kind: KindLatency, Latency: 30 * time.Millisecond, Prob: 1})
	start := time.Now()
	if err := in.Fire(context.Background(), PointSuiteBench); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency fault slept only %v", d)
	}
}

func TestLatencyRespectsContext(t *testing.T) {
	in := MustNew(1, Rule{Point: PointSuiteBench, Kind: KindLatency, Latency: time.Minute, Prob: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.Fire(ctx, PointSuiteBench)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("latency fault ignored cancellation for %v", d)
	}
}

// The same seed must reproduce the same fire/skip decision stream.
func TestDeterministicSchedule(t *testing.T) {
	schedule := func(seed int64) []bool {
		in := MustNew(seed, Rule{Point: PointPoolPickup, Kind: KindError, Prob: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Fire(context.Background(), PointPoolPickup) != nil
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at call %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("probability 0.3 fired %d/%d times", fired, len(a))
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestCounts(t *testing.T) {
	in := MustNew(7, Rule{Point: PointCachePut, Kind: KindError, Prob: 0.5})
	const calls = 100
	for i := 0; i < calls; i++ {
		in.Fire(context.Background(), PointCachePut)
	}
	hits, fired := in.Hits()[PointCachePut], in.Fired()[PointCachePut]
	if hits != calls {
		t.Fatalf("hits = %d, want %d", hits, calls)
	}
	if fired == 0 || fired == calls {
		t.Fatalf("fired = %d of %d at probability 0.5", fired, calls)
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "42:pool.pickup=error@0.2,trace.run.start=latency(5ms)@0.5,suite.bench=panic"
	in, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Enabled() {
		t.Fatal("parsed injector not armed")
	}
	// String renders rules sorted by point; re-parsing it must succeed and
	// render identically (canonical form fixed point).
	canon := in.String()
	in2, err := Parse(canon)
	if err != nil {
		t.Fatalf("re-parsing %q: %v", canon, err)
	}
	if got := in2.String(); got != canon {
		t.Fatalf("round trip %q -> %q", canon, got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"42",                         // no rules
		"x:pool.pickup=error",        // bad seed
		"42:pool.pickup",             // no kind
		"42:nope=error",              // unknown point
		"42:pool.pickup=explode",     // unknown kind
		"42:pool.pickup=error@2",     // probability out of range
		"42:pool.pickup=error@x",     // bad probability
		"42:pool.pickup=latency",     // latency without duration
		"42:pool.pickup=latency(x)",  // bad duration
		"42:pool.pickup=latency(5ms", // unclosed argument
		"42:pool.pickup=error(5ms)",  // duration on a non-latency kind
		"42:",                        // empty rule list
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestNewRejectsBadRules(t *testing.T) {
	if _, err := New(1, Rule{Point: "nope", Kind: KindError}); err == nil {
		t.Error("unknown point accepted")
	}
	if _, err := New(1, Rule{Point: PointCacheGet, Kind: Kind(99)}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := New(1, Rule{Point: PointCacheGet, Kind: KindError, Prob: -0.5}); err == nil {
		t.Error("negative probability accepted")
	}
}
