// Package faultinject is a deterministic, seeded fault injector for
// operational-resilience testing. Code under test declares named injection
// points at its seams (trace run start, cache access, worker-pool job
// pickup, singleflight join, ...) and calls Fire at each one; an Injector
// configured with a schedule of rules decides — reproducibly, from a seed —
// whether that point this time injects added latency, a transient error, a
// simulated cancellation, or a panic. A nil or disabled Injector is a
// zero-cost no-op, so production paths keep their hooks permanently.
//
// The spec grammar accepted by Parse (and sigserve's dev-only -chaos flag):
//
//	spec  := seed ":" rule ("," rule)*
//	rule  := point "=" kind [ "(" dur ")" ] [ "@" prob ]
//	kind  := "latency" | "error" | "cancel" | "panic"
//
// e.g. "42:pool.pickup=error@0.2,trace.run.start=latency(5ms)@0.5,
// suite.bench=panic@0.05". prob defaults to 1 (always fire); latency takes
// a time.ParseDuration argument and is the only kind that does.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site. Sites are declared here, next to the
// injector, so specs can be validated without importing the code under
// test.
type Point string

// The injection points threaded through the simulation service seams.
const (
	PointTraceRunStart Point = "trace.run.start" // start of one trace execution
	PointCacheGet      Point = "cache.get"       // LRU result-cache lookup
	PointCachePut      Point = "cache.put"       // LRU result-cache store
	PointPoolPickup    Point = "pool.pickup"     // worker picked a job off the queue
	PointFlightJoin    Point = "flight.join"     // follower joining a singleflight leader
	PointSuiteBench    Point = "suite.bench"     // one per-benchmark step of the full suite
	PointProbation     Point = "workload.probe"  // probationary execution of a submitted program
)

// Points returns every declared injection point, sorted.
func Points() []Point {
	ps := []Point{
		PointTraceRunStart, PointCacheGet, PointCachePut,
		PointPoolPickup, PointFlightJoin, PointSuiteBench,
		PointProbation,
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}

func validPoint(p Point) bool {
	for _, q := range Points() {
		if p == q {
			return true
		}
	}
	return false
}

// Kind is a fault class.
type Kind uint8

const (
	// KindLatency sleeps for the rule's Latency (interruptibly) and then
	// lets the operation proceed.
	KindLatency Kind = iota
	// KindError injects a transient *InjectedError (IsTransient reports
	// true, so retry layers may re-attempt).
	KindError
	// KindCancel injects an error wrapping context.Canceled, simulating a
	// client that went away at this point.
	KindCancel
	// KindPanic panics with a *PanicValue; containment layers must recover
	// it.
	KindPanic
)

func (k Kind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindError:
		return "error"
	case KindCancel:
		return "cancel"
	case KindPanic:
		return "panic"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Rule arms one fault at one point: with probability Prob (1 = every hit),
// Fire(point) injects Kind.
type Rule struct {
	Point   Point
	Kind    Kind
	Latency time.Duration // KindLatency only
	Prob    float64       // 0 or 1 means always
}

func (r Rule) String() string {
	s := string(r.Point) + "=" + r.Kind.String()
	if r.Kind == KindLatency {
		s += "(" + r.Latency.String() + ")"
	}
	if r.Prob > 0 && r.Prob < 1 {
		s += "@" + strconv.FormatFloat(r.Prob, 'g', -1, 64)
	}
	return s
}

// ErrInjected is the sentinel wrapped by every injected transient error.
var ErrInjected = errors.New("faultinject: injected transient error")

// InjectedError is the transient error produced by KindError rules.
type InjectedError struct{ Point Point }

func (e *InjectedError) Error() string {
	return "faultinject: injected transient error at " + string(e.Point)
}

// Unwrap makes errors.Is(err, ErrInjected) hold.
func (e *InjectedError) Unwrap() error { return ErrInjected }

// Transient marks the error as retryable (see IsTransient).
func (e *InjectedError) Transient() bool { return true }

// IsTransient reports whether err (or anything it wraps) advertises itself
// as retryable via a `Transient() bool` method. Retry layers use this to
// distinguish worth-retrying faults from permanent failures.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// PanicValue is what KindPanic rules panic with, so containment layers (and
// their tests) can tell an injected panic from a genuine bug.
type PanicValue struct{ Point Point }

func (p *PanicValue) String() string {
	return "faultinject: injected panic at " + string(p.Point)
}

// Injector decides, per Fire call, whether to inject a fault. The decision
// stream is driven by one seeded PRNG, so a given seed and call sequence
// reproduces the same schedule. All methods are safe for concurrent use and
// are no-ops on a nil receiver.
type Injector struct {
	enabled atomic.Bool

	mu    sync.Mutex
	seed  int64
	rng   *rand.Rand
	rules map[Point][]Rule
	hits  map[Point]uint64 // Fire calls per point (while enabled)
	fired map[Point]uint64 // injected faults per point
}

// New builds an enabled Injector from seed and rules. Rules for unknown
// points are rejected.
func New(seed int64, rules ...Rule) (*Injector, error) {
	in := &Injector{
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[Point][]Rule),
		hits:  make(map[Point]uint64),
		fired: make(map[Point]uint64),
	}
	for _, r := range rules {
		if !validPoint(r.Point) {
			return nil, fmt.Errorf("faultinject: unknown point %q", r.Point)
		}
		if r.Kind > KindPanic {
			return nil, fmt.Errorf("faultinject: unknown kind %d", r.Kind)
		}
		if r.Prob < 0 || r.Prob > 1 {
			return nil, fmt.Errorf("faultinject: probability %v outside [0,1]", r.Prob)
		}
		in.rules[r.Point] = append(in.rules[r.Point], r)
	}
	in.enabled.Store(true)
	return in, nil
}

// MustNew is New for tests and literals with known-good rules.
func MustNew(seed int64, rules ...Rule) *Injector {
	in, err := New(seed, rules...)
	if err != nil {
		panic(err)
	}
	return in
}

// Parse builds an Injector from the "seed:rule,rule,..." spec grammar
// documented at the top of the package.
func Parse(spec string) (*Injector, error) {
	seedStr, ruleStr, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("faultinject: spec %q missing \"seed:\" prefix", spec)
	}
	seed, err := strconv.ParseInt(strings.TrimSpace(seedStr), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("faultinject: bad seed %q: %v", seedStr, err)
	}
	var rules []Rule
	for _, part := range strings.Split(ruleStr, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultinject: spec %q has no rules", spec)
	}
	return New(seed, rules...)
}

func parseRule(s string) (Rule, error) {
	pointStr, kindStr, ok := strings.Cut(s, "=")
	if !ok {
		return Rule{}, fmt.Errorf("faultinject: rule %q missing \"point=kind\"", s)
	}
	r := Rule{Point: Point(strings.TrimSpace(pointStr)), Prob: 1}
	if !validPoint(r.Point) {
		return Rule{}, fmt.Errorf("faultinject: unknown point %q (valid: %v)", r.Point, Points())
	}
	kindStr = strings.TrimSpace(kindStr)
	if at := strings.LastIndex(kindStr, "@"); at >= 0 {
		p, err := strconv.ParseFloat(kindStr[at+1:], 64)
		if err != nil || p < 0 || p > 1 {
			return Rule{}, fmt.Errorf("faultinject: bad probability %q in rule %q", kindStr[at+1:], s)
		}
		r.Prob = p
		kindStr = kindStr[:at]
	}
	if open := strings.Index(kindStr, "("); open >= 0 {
		if !strings.HasSuffix(kindStr, ")") {
			return Rule{}, fmt.Errorf("faultinject: unclosed argument in rule %q", s)
		}
		d, err := time.ParseDuration(kindStr[open+1 : len(kindStr)-1])
		if err != nil {
			return Rule{}, fmt.Errorf("faultinject: bad latency in rule %q: %v", s, err)
		}
		r.Latency = d
		kindStr = kindStr[:open]
	}
	switch kindStr {
	case "latency":
		r.Kind = KindLatency
		if r.Latency <= 0 {
			return Rule{}, fmt.Errorf("faultinject: latency rule %q needs a duration, e.g. latency(5ms)", s)
		}
	case "error":
		r.Kind = KindError
	case "cancel":
		r.Kind = KindCancel
	case "panic":
		r.Kind = KindPanic
	default:
		return Rule{}, fmt.Errorf("faultinject: unknown kind %q in rule %q", kindStr, s)
	}
	if r.Kind != KindLatency && r.Latency != 0 {
		return Rule{}, fmt.Errorf("faultinject: %s rule %q cannot take a duration", r.Kind, s)
	}
	return r, nil
}

// SetEnabled arms or disarms the injector; disabled, Fire is a near-free
// atomic load. Chaos tests disarm it to prove fault-free reruns behave
// identically to an uninstrumented service.
func (in *Injector) SetEnabled(on bool) {
	if in != nil {
		in.enabled.Store(on)
	}
}

// Enabled reports whether the injector is armed (false for nil).
func (in *Injector) Enabled() bool { return in != nil && in.enabled.Load() }

// Fire consults the schedule for point p and injects at most one fault:
// latency rules sleep (returning early with ctx.Err if ctx ends first) and
// return nil, error/cancel rules return the injected error, panic rules
// panic with a *PanicValue. Nil and disabled injectors return nil
// immediately.
func (in *Injector) Fire(ctx context.Context, p Point) error {
	if in == nil || !in.enabled.Load() {
		return nil
	}
	in.mu.Lock()
	rules := in.rules[p]
	if len(rules) == 0 {
		in.mu.Unlock()
		return nil
	}
	in.hits[p]++
	var chosen Rule
	found := false
	for _, r := range rules {
		if r.Prob >= 1 || r.Prob == 0 || in.rng.Float64() < r.Prob {
			chosen, found = r, true
			break
		}
	}
	if found {
		in.fired[p]++
	}
	in.mu.Unlock()
	if !found {
		return nil
	}
	switch chosen.Kind {
	case KindLatency:
		t := time.NewTimer(chosen.Latency)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case KindError:
		return &InjectedError{Point: p}
	case KindCancel:
		return fmt.Errorf("faultinject: injected cancellation at %s: %w", p, context.Canceled)
	case KindPanic:
		panic(&PanicValue{Point: p})
	}
	return nil
}

// Fired returns how many faults have been injected per point.
func (in *Injector) Fired() map[Point]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Point]uint64, len(in.fired))
	for p, n := range in.fired {
		out[p] = n
	}
	return out
}

// Hits returns how many Fire calls each armed point has seen.
func (in *Injector) Hits() map[Point]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Point]uint64, len(in.hits))
	for p, n := range in.hits {
		out[p] = n
	}
	return out
}

// String renders the injector back in spec form (rules sorted by point for
// stability).
func (in *Injector) String() string {
	if in == nil {
		return "<nil>"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var rules []Rule
	for _, rs := range in.rules {
		rules = append(rules, rs...)
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Point != rules[j].Point {
			return rules[i].Point < rules[j].Point
		}
		return rules[i].Kind < rules[j].Kind
	})
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = r.String()
	}
	return strconv.FormatInt(in.seed, 10) + ":" + strings.Join(parts, ",")
}
