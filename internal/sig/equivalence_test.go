package sig

import (
	"math/bits"
	"testing"
)

// Reference implementations: the original loop-and-compare definitions the
// branch-free hot-path versions must match bit for bit.

func ext3OfRef(v uint32) Ext3 {
	var e Ext3
	for i := 1; i < WordBytes; i++ {
		if byteOf(v, i) == signExtByte(byteOf(v, i-1)) {
			e |= 1 << (i - 1)
		}
	}
	return e
}

func sigHalvesRef(v uint32) int {
	lo := uint16(v)
	var ext uint16
	if lo&0x8000 != 0 {
		ext = 0xffff
	}
	if uint16(v>>16) == ext {
		return 1
	}
	return 2
}

func sigByteCountRef(e Ext3) int {
	n := 1
	for i := 1; i < WordBytes; i++ {
		if !e.IsExt(i) {
			n++
		}
	}
	return n
}

func checkOne(t *testing.T, v uint32) {
	t.Helper()
	if got, want := Ext3Of(v), ext3OfRef(v); got != want {
		t.Fatalf("Ext3Of(%#08x) = %03b, want %03b", v, got, want)
	}
	if got, want := SigHalves(v), sigHalvesRef(v); got != want {
		t.Fatalf("SigHalves(%#08x) = %d, want %d", v, got, want)
	}
}

// TestSigBitTrickBoundaries sweeps every value whose bytes come from the
// boundary set that can flip an extension decision, covering all sign-bit /
// all-zero / all-one byte interactions exhaustively (8^4 words), plus a
// window of values around every power of two.
func TestSigBitTrickBoundaries(t *testing.T) {
	boundary := []byte{0x00, 0x01, 0x7f, 0x80, 0x81, 0xfe, 0xff, 0x55}
	for _, b3 := range boundary {
		for _, b2 := range boundary {
			for _, b1 := range boundary {
				for _, b0 := range boundary {
					v := uint32(b0) | uint32(b1)<<8 | uint32(b2)<<16 | uint32(b3)<<24
					checkOne(t, v)
				}
			}
		}
	}
	for s := 0; s < 32; s++ {
		p := uint32(1) << s
		for d := uint32(0); d <= 4; d++ {
			checkOne(t, p-d)
			checkOne(t, p+d)
			checkOne(t, ^(p - d))
			checkOne(t, ^(p + d))
		}
	}
}

// TestSigBitTrickSampled runs a fast LCG over a few million words so the
// short-mode test still covers the space densely and deterministically.
func TestSigBitTrickSampled(t *testing.T) {
	const samples = 1 << 22
	x := uint32(0x2545f491)
	for i := 0; i < samples; i++ {
		x = x*1664525 + 1013904223
		checkOne(t, x)
	}
}

// TestSigBitTrickExhaustive proves Ext3Of/SigHalves equivalence over the
// entire 2^32 input space. It takes tens of seconds, so it is skipped in
// short mode and under the race detector (where it would take many
// minutes); the boundary and sampled sweeps above always run.
func TestSigBitTrickExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("full 2^32 sweep skipped in short mode")
	}
	if raceEnabled {
		t.Skip("full 2^32 sweep skipped under the race detector")
	}
	v := uint32(0)
	for {
		if got, want := Ext3Of(v), ext3OfRef(v); got != want {
			t.Fatalf("Ext3Of(%#08x) = %03b, want %03b", v, got, want)
		}
		if got, want := SigHalves(v), sigHalvesRef(v); got != want {
			t.Fatalf("SigHalves(%#08x) = %d, want %d", v, got, want)
		}
		v++
		if v == 0 {
			return
		}
	}
}

// TestSigByteCountAllFields checks the popcount SigByteCount against the
// loop reference for every extension field value (including the unused high
// bits staying masked off).
func TestSigByteCountAllFields(t *testing.T) {
	for e := 0; e < 256; e++ {
		got := Ext3(e).SigByteCount()
		want := sigByteCountRef(Ext3(e) & 0x7)
		if got != want {
			t.Fatalf("Ext3(%#x).SigByteCount() = %d, want %d", e, got, want)
		}
		if got != WordBytes-bits.OnesCount8(uint8(e)&0x7) {
			t.Fatalf("Ext3(%#x).SigByteCount() inconsistent with popcount", e)
		}
	}
}
