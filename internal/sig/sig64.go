package sig

// 64-bit generalization of the significance schemes, supporting the
// paper's closing observation in §2.9: "these results are for a 32 bit
// architecture; if a 64-bit ISA were to be used (as in [1]), the savings
// will likely be much greater." A 64-bit machine executing the same
// integer code holds the same small values sign-extended across eight
// bytes, so the compressible fraction of each word grows.

// Word64Bytes is the 64-bit datapath width in bytes.
const Word64Bytes = 8

// Ext64Bits is the per-doubleword overhead of the per-byte scheme (one bit
// for each of the seven upper bytes).
const Ext64Bits = 7

// SigBytes64 returns the minimal number of low-order bytes whose sign
// extension reproduces v (1–8).
func SigBytes64(v uint64) int {
	n := Word64Bytes
	for n > 1 {
		hi := byte(v >> (8 * (n - 1)))
		lowTop := byte(v>>(8*(n-2))) & 0x80
		var ext byte
		if lowTop != 0 {
			ext = 0xff
		}
		if hi != ext {
			break
		}
		n--
	}
	return n
}

// Ext64Of computes the maximal per-byte extension marking of a 64-bit
// word: bit i set means byte i+1 is the sign extension of byte i.
func Ext64Of(v uint64) uint8 {
	var e uint8
	for i := 1; i < Word64Bytes; i++ {
		b := byte(v >> (8 * i))
		below := byte(v >> (8 * (i - 1)))
		var fill byte
		if below&0x80 != 0 {
			fill = 0xff
		}
		if b == fill {
			e |= 1 << (i - 1)
		}
	}
	return e
}

// SigByteCount64 returns the stored bytes under the per-byte marking.
func SigByteCount64(e uint8) int {
	n := 1
	for i := 0; i < Word64Bytes-1; i++ {
		if e&(1<<i) == 0 {
			n++
		}
	}
	return n
}

// StoredBits64 returns the held bits of v on a 64-bit significance-
// compressed machine (stored bytes plus the 7 extension bits).
func StoredBits64(v uint64) int {
	return 8*SigByteCount64(Ext64Of(v)) + Ext64Bits
}

// Extend64 sign-extends a 32-bit register value to the 64-bit register a
// 64-bit machine running the same integer program would hold.
func Extend64(v uint32) uint64 { return uint64(int64(int32(v))) }
