package sig

import "fmt"

// Partition generalizes the significance scheme to arbitrary segment
// widths — the paper's §2.1 future-work item ("one could consider
// non-power-of-two bit sequences and dividing words into sequences of
// different lengths, but this remains for future study").
//
// A Partition lists segment widths in bits, least significant first,
// summing to 32. The lowest segment is always stored; each higher segment
// carries one extension bit marking it as the sign extension of the
// segment below (all bits equal to that segment's top bit). The byte
// scheme is Partition{8, 8, 8, 8}; the halfword scheme is Partition{16, 16}.
type Partition []int

// Validate reports an error unless the widths are positive and sum to 32.
func (p Partition) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("sig: empty partition")
	}
	total := 0
	for _, w := range p {
		if w <= 0 || w > 32 {
			return fmt.Errorf("sig: invalid segment width %d", w)
		}
		total += w
	}
	if total != 32 {
		return fmt.Errorf("sig: partition widths sum to %d, want 32", total)
	}
	return nil
}

// ExtBits returns the per-word extension overhead: one bit per elidable
// segment.
func (p Partition) ExtBits() int { return len(p) - 1 }

// segments splits v by the partition, least significant first.
func (p Partition) segments(v uint32) []uint32 {
	segs := make([]uint32, len(p))
	shift := 0
	for i, w := range p {
		segs[i] = (v >> uint(shift)) & (uint32(1)<<uint(w) - 1)
		shift += w
	}
	return segs
}

// extOf returns the per-segment extension marking (index 1..len-1): true
// means the segment equals the sign extension of the segment below it.
func (p Partition) extOf(v uint32) []bool {
	segs := p.segments(v)
	ext := make([]bool, len(p))
	for i := 1; i < len(p); i++ {
		below := segs[i-1]
		signBit := below >> uint(p[i-1]-1) & 1
		var fill uint32
		if signBit == 1 {
			fill = uint32(1)<<uint(p[i]) - 1
		}
		ext[i] = segs[i] == fill
	}
	return ext
}

// StoredSegments returns how many segments of v must be stored (1..len(p)).
func (p Partition) StoredSegments(v uint32) int {
	ext := p.extOf(v)
	n := 1
	for i := 1; i < len(p); i++ {
		if !ext[i] {
			n++
		}
	}
	return n
}

// StoredBits returns total held bits for v: stored segment bits plus the
// extension overhead.
func (p Partition) StoredBits(v uint32) int {
	ext := p.extOf(v)
	bits := p[0]
	for i := 1; i < len(p); i++ {
		if !ext[i] {
			bits += p[i]
		}
	}
	return bits + p.ExtBits()
}

// Compress returns the stored segments (least significant first) and the
// extension marking.
func (p Partition) Compress(v uint32) (segs []uint32, ext []bool) {
	all := p.segments(v)
	ext = p.extOf(v)
	segs = append(segs, all[0])
	for i := 1; i < len(p); i++ {
		if !ext[i] {
			segs = append(segs, all[i])
		}
	}
	return segs, ext
}

// Decompress reconstructs the word from stored segments and markings.
func (p Partition) Decompress(segs []uint32, ext []bool) (uint32, error) {
	if len(ext) != len(p) {
		return 0, fmt.Errorf("sig: marking length %d, want %d", len(ext), len(p))
	}
	var v uint32
	shift := 0
	next := 0
	var prev uint32
	var prevW int
	for i, w := range p {
		var seg uint32
		if i == 0 || !ext[i] {
			if next >= len(segs) {
				return 0, fmt.Errorf("sig: not enough stored segments")
			}
			seg = segs[next] & (uint32(1)<<uint(w) - 1)
			next++
		} else {
			if prev>>uint(prevW-1)&1 == 1 {
				seg = uint32(1)<<uint(w) - 1
			}
		}
		v |= seg << uint(shift)
		shift += w
		prev, prevW = seg, w
	}
	if next != len(segs) {
		return 0, fmt.Errorf("sig: %d unused stored segments", len(segs)-next)
	}
	return v, nil
}

// CandidatePartitions returns the partition designs studied by the
// future-work ablation: the paper's byte and halfword schemes plus
// non-uniform and non-power-of-two splits.
func CandidatePartitions() map[string]Partition {
	return map[string]Partition{
		"8-8-8-8 (paper byte)": {8, 8, 8, 8},
		"16-16 (paper half)":   {16, 16},
		"8-8-16":               {8, 8, 16},
		"8-24":                 {8, 24},
		"12-20":                {12, 20},
		"6-6-6-14":             {6, 6, 6, 14},
		"4-4-8-16":             {4, 4, 8, 16},
		"10-10-12":             {10, 10, 12},
	}
}
