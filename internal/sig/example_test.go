package sig_test

import (
	"fmt"

	"repro/internal/sig"
)

// The paper's §2.1 example values under the 3-bit per-byte scheme.
func ExampleCompressExt3() {
	for _, v := range []uint32{0x00000004, 0xfffff504, 0x10000009, 0xffe70004} {
		stored, ext := sig.CompressExt3(v)
		fmt.Printf("%08x -> %s ext=%03b stored=% x\n", v, sig.PatternOf(v), uint8(ext), stored)
	}
	// Output:
	// 00000004 -> eees ext=111 stored=04
	// fffff504 -> eess ext=110 stored=04 f5
	// 10000009 -> sees ext=011 stored=09 10
	// ffe70004 -> eses ext=101 stored=04 e7
}

// The 2-bit count scheme compresses only contiguous top extension bytes.
func ExampleExt2Representable() {
	fmt.Println(sig.Ext2Representable(0xfffff504)) // top bytes contiguous
	fmt.Println(sig.Ext2Representable(0x10000009)) // internal zeros: no
	// Output:
	// true
	// false
}

// Arbitrary word partitions (the §2.1 future-work generalization).
func ExamplePartition_StoredBits() {
	p := sig.Partition{4, 4, 8, 16}
	fmt.Println(p.StoredBits(7))      // fits the low nibble
	fmt.Println(p.StoredBits(0x1234)) // needs the low three segments
	// Output:
	// 7
	// 19
}
