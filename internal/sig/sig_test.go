package sig

import (
	"testing"
	"testing/quick"
)

func TestSigBytesExamples(t *testing.T) {
	cases := []struct {
		v    uint32
		want int
	}{
		{0x00000000, 1},
		{0x00000004, 1}, // paper: -- -- -- 04 : 11
		{0x0000007f, 1},
		{0x00000080, 2}, // top bit of low byte set -> needs a zero byte
		{0xffffffff, 1}, // -1
		{0xffffff80, 1}, // -128
		{0xffffff7f, 2},
		{0xfffff504, 2}, // paper: -- -- F5 04 : 10
		{0x00007fff, 2},
		{0x00008000, 3},
		{0x12345678, 4},
		{0x10000009, 4}, // 2-bit scheme cannot compress this
		{0x7fffffff, 4},
		{0x80000000, 4},
	}
	for _, c := range cases {
		if got := SigBytes(c.v); got != c.want {
			t.Errorf("SigBytes(%#08x) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSigHalvesExamples(t *testing.T) {
	cases := []struct {
		v    uint32
		want int
	}{
		{0, 1}, {0x7fff, 1}, {0x8000, 2}, {0xffff8000, 1},
		{0xffff7fff, 2}, {0x12345678, 2}, {0xffffffff, 1},
	}
	for _, c := range cases {
		if got := SigHalves(c.v); got != c.want {
			t.Errorf("SigHalves(%#08x) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestExt3PaperExamples(t *testing.T) {
	// 00 00 00 04 -> only byte0 stored (pattern eees, 3 ext bytes).
	if got := PatternOf(0x00000004); got != "eees" {
		t.Errorf("pattern(4) = %q", got)
	}
	// FF FF F5 04 -> two significant bytes: eess.
	if got := PatternOf(0xfffff504); got != "eess" {
		t.Errorf("pattern(fffff504) = %q", got)
	}
	// 10 00 00 09 -> paper: 10 -- -- 09 : 011 => pattern "sees".
	e := Ext3Of(0x10000009)
	if got := e.Pattern(); got != "sees" {
		t.Errorf("pattern(10000009) = %q", got)
	}
	if e.SigByteCount() != 2 {
		t.Errorf("sig bytes of 10000009 = %d", e.SigByteCount())
	}
	// FF E7 00 04 -> paper: -- E7 -- 04 : 101 => pattern "eses".
	e = Ext3Of(0xffe70004)
	if got := e.Pattern(); got != "eses" {
		t.Errorf("pattern(ffe70004) = %q", got)
	}
	if e.SigByteCount() != 2 {
		t.Errorf("sig bytes of ffe70004 = %d", e.SigByteCount())
	}
}

func TestExt3ExtensionBitValues(t *testing.T) {
	// 10 00 00 09: byte1 and byte2 are extensions, byte3 significant ->
	// bits (byte1,byte2,byte3) = (1,1,0) -> value 0b011.
	if e := Ext3Of(0x10000009); uint8(e) != 0b011 {
		t.Errorf("ext bits = %03b, want 011", uint8(e))
	}
	// FF E7 00 04: byte1 ext, byte2 sig, byte3 ext -> 0b101.
	if e := Ext3Of(0xffe70004); uint8(e) != 0b101 {
		t.Errorf("ext bits = %03b, want 101", uint8(e))
	}
}

func TestCompressDecompressExt3RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		stored, e := CompressExt3(v)
		got, err := DecompressExt3(stored, e)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompressDecompressExt2RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		stored, e := CompressExt2(v)
		got, err := DecompressExt2(stored, e)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExt3NeverStoresMoreThanExt2(t *testing.T) {
	// The 3-bit scheme is at least as compact as the 2-bit scheme.
	f := func(v uint32) bool {
		return Ext3Of(v).SigByteCount() <= SigBytes(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExt2RepresentableMatchesSchemes(t *testing.T) {
	// When a value is 2-bit representable the two schemes store the same
	// number of bytes; when not, the 3-bit scheme stores fewer.
	f := func(v uint32) bool {
		s3 := Ext3Of(v).SigByteCount()
		s2 := SigBytes(v)
		if Ext2Representable(v) {
			return s3 == s2
		}
		return s3 < s2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDecompressErrors sweeps every extension field against every short and
// overlong stored-slice length: decompression must succeed exactly when the
// length matches the field's significant-byte count, and must never panic.
func TestDecompressErrors(t *testing.T) {
	stored := []byte{0x80, 0x01, 0xff, 0x7f, 0x12, 0x34}
	for e := Ext3(0); e < 8; e++ {
		for n := 0; n <= len(stored); n++ {
			_, err := DecompressExt3(stored[:n], e)
			if wantOK := n == e.SigByteCount(); (err == nil) != wantOK {
				t.Errorf("DecompressExt3(len %d, ext %03b): err=%v, want ok=%v", n, uint8(e), err, wantOK)
			}
		}
	}
	for cnt := Ext2(0); cnt < 8; cnt++ {
		for n := 0; n <= len(stored); n++ {
			_, err := DecompressExt2(stored[:n], cnt)
			wantOK := int(cnt) < WordBytes && n == cnt.SigByteCount()
			if (err == nil) != wantOK {
				t.Errorf("DecompressExt2(len %d, cnt %d): err=%v, want ok=%v", n, uint8(cnt), err, wantOK)
			}
		}
	}
}

func TestPatternAlphabet(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range AllPatterns() {
		if len(p) != 4 || p[3] != 's' {
			t.Errorf("bad pattern %q", p)
		}
		if seen[p] {
			t.Errorf("duplicate pattern %q", p)
		}
		seen[p] = true
	}
	if len(seen) != 8 {
		t.Errorf("expected 8 patterns, got %d", len(seen))
	}
	// Every value's pattern is in the alphabet.
	f := func(v uint32) bool { return seen[PatternOf(v)] }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStoredBits(t *testing.T) {
	if got := StoredBits3(0x04); got != 8+3 {
		t.Errorf("StoredBits3(4) = %d", got)
	}
	if got := StoredBits2(0x04); got != 8+2 {
		t.Errorf("StoredBits2(4) = %d", got)
	}
	if got := StoredBitsH(0x04); got != 16+1 {
		t.Errorf("StoredBitsH(4) = %d", got)
	}
	if got := StoredBits3(0x12345678); got != 32+3 {
		t.Errorf("StoredBits3(big) = %d", got)
	}
}

func TestExtHOf(t *testing.T) {
	if ExtHOf(0x1234).SigHalfCount() != 1 {
		t.Error("small value should store one halfword")
	}
	if ExtHOf(0x00018000).SigHalfCount() != 2 {
		t.Error("0x00018000 needs both halfwords")
	}
}

func TestSigBytesMatchesDecompressibility(t *testing.T) {
	// Sign-extending the SigBytes(v) low bytes reproduces v; using one byte
	// fewer must not (unless already at 1 byte).
	f := func(v uint32) bool {
		n := SigBytes(v)
		ext := func(k int) uint32 {
			shift := uint(32 - 8*k)
			return uint32(int32(v<<shift) >> shift)
		}
		if ext(n) != v {
			return false
		}
		if n > 1 && ext(n-1) == v {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSigBytes64Examples(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 1},
		{4, 1},
		{0x7f, 1},
		{0x80, 2},
		{0xffffffffffffffff, 1}, // -1
		{0x123456789abcdef0, 8},
		{0x00007fffffffffff, 6},
		{0xffffffff80000000, 4}, // INT32_MIN sign-extended
	}
	for _, c := range cases {
		if got := SigBytes64(c.v); got != c.want {
			t.Errorf("SigBytes64(%#x) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestExtend64PreservesValue(t *testing.T) {
	f := func(v uint32) bool {
		e := Extend64(v)
		return uint32(e) == v && (int64(e) < 0) == (int32(v) < 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The paper's §2.9 claim: the same value stored on a 64-bit machine wastes
// a larger fraction, so relative savings grow.
func TestSixtyFourBitSavingsGreater(t *testing.T) {
	f := func(v uint32) bool {
		save32 := 1 - float64(StoredBits3(v))/32
		save64 := 1 - float64(StoredBits64(Extend64(v)))/64
		// Allow equality for full-width negative-boundary values.
		return save64 >= save32-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// And strictly greater for a typical small value.
	if !(1-float64(StoredBits64(Extend64(7)))/64 > 1-float64(StoredBits3(7))/32) {
		t.Fatal("64-bit saving should exceed 32-bit for small values")
	}
}

func TestSigByteCount64MatchesSigBytes64ForContiguous(t *testing.T) {
	f := func(v uint64) bool {
		// The per-byte marking stores at most as many bytes as the count
		// scheme.
		return SigByteCount64(Ext64Of(v)) <= SigBytes64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
