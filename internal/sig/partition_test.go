package sig

import (
	"testing"
	"testing/quick"
)

func TestPartitionValidate(t *testing.T) {
	good := []Partition{{8, 8, 8, 8}, {16, 16}, {32}, {1, 31}, {6, 6, 6, 14}}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
	bad := []Partition{{}, {8, 8}, {0, 32}, {-4, 36}, {33}, {16, 17}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%v: expected error", p)
		}
	}
}

func TestPartitionByteSchemeAgreesWithExt3(t *testing.T) {
	p := Partition{8, 8, 8, 8}
	f := func(v uint32) bool {
		return p.StoredSegments(v) == Ext3Of(v).SigByteCount() &&
			p.StoredBits(v) == StoredBits3(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionHalfSchemeAgreesWithExtH(t *testing.T) {
	p := Partition{16, 16}
	f := func(v uint32) bool {
		return p.StoredSegments(v) == SigHalves(v) &&
			p.StoredBits(v) == StoredBitsH(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	for name, p := range CandidatePartitions() {
		p := p
		f := func(v uint32) bool {
			segs, ext := p.Compress(v)
			got, err := p.Decompress(segs, ext)
			return err == nil && got == v
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPartitionNonUniformExamples(t *testing.T) {
	// 8-24: value 4 stores only the low byte.
	p := Partition{8, 24}
	if got := p.StoredBits(4); got != 8+1 {
		t.Errorf("8-24 of 4: %d bits", got)
	}
	// 8-24: value 0x1234 must store both segments: 32+1.
	if got := p.StoredBits(0x1234); got != 32+1 {
		t.Errorf("8-24 of 0x1234: %d bits", got)
	}
	// 6-6-6-14: value 4 (fits in 6 bits, positive) stores one segment.
	p = Partition{6, 6, 6, 14}
	if got := p.StoredBits(4); got != 6+3 {
		t.Errorf("6-6-6-14 of 4: %d bits", got)
	}
	// Negative small value: -3 = 0xfffffffd; low 6 bits 0b111101, sign 1,
	// all upper segments are ones -> extensions.
	if got := p.StoredBits(0xfffffffd); got != 6+3 {
		t.Errorf("6-6-6-14 of -3: %d bits", got)
	}
}

func TestPartitionDecompressErrors(t *testing.T) {
	p := Partition{8, 8, 8, 8}
	if _, err := p.Decompress([]uint32{1}, []bool{false, true}); err == nil {
		t.Error("marking length mismatch should error")
	}
	if _, err := p.Decompress([]uint32{1}, []bool{false, false, true, true}); err == nil {
		t.Error("missing segments should error")
	}
	if _, err := p.Decompress([]uint32{1, 2, 3}, []bool{false, true, true, true}); err == nil {
		t.Error("extra segments should error")
	}
}

func TestCandidatePartitionsValid(t *testing.T) {
	cands := CandidatePartitions()
	if len(cands) < 6 {
		t.Fatalf("candidates: %d", len(cands))
	}
	for name, p := range cands {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPartitionStoredBitsNeverExceedsFullWord(t *testing.T) {
	for name, p := range CandidatePartitions() {
		p := p
		f := func(v uint32) bool {
			b := p.StoredBits(v)
			return b >= p[0]+p.ExtBits() && b <= 32+p.ExtBits()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
