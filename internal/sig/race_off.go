//go:build !race

package sig

// raceEnabled reports whether the race detector is compiled in; the
// exhaustive equivalence sweep skips itself under it.
const raceEnabled = false
