package sig

import "testing"

// Decompressors must never panic on arbitrary stored bytes and extension
// fields: they either reconstruct a word or return an error.
func FuzzDecompressExt3(f *testing.F) {
	f.Add([]byte{0x04}, uint8(0b111))
	f.Add([]byte{0x04, 0xf5}, uint8(0b110))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(0b101))
	f.Fuzz(func(t *testing.T, stored []byte, ext uint8) {
		v, err := DecompressExt3(stored, Ext3(ext&7))
		if err != nil {
			return
		}
		// A successful decompression must re-compress to the same length
		// or shorter (our compression is maximal) and round-trip its value.
		re, e2 := CompressExt3(v)
		if len(re) > len(stored) {
			t.Fatalf("recompression grew: %d > %d", len(re), len(stored))
		}
		v2, err := DecompressExt3(re, e2)
		if err != nil || v2 != v {
			t.Fatalf("canonical round trip failed: %v %v", v2, err)
		}
	})
}

// FuzzDecompressExt2 mirrors FuzzDecompressExt3 for the 2-bit count scheme:
// arbitrary stored bytes either reconstruct a word or error, and canonical
// recompression never grows and always round-trips.
func FuzzDecompressExt2(f *testing.F) {
	f.Add([]byte{0x04}, uint8(3))
	f.Add([]byte{0x04, 0xf5}, uint8(2))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4}, uint8(0))
	f.Add([]byte{0x80, 0xff}, uint8(2))
	f.Fuzz(func(t *testing.T, stored []byte, cnt uint8) {
		e := Ext2(cnt & 3)
		// A well-formed (count, length) pair must never error.
		if len(stored) == e.SigByteCount() {
			if _, err := DecompressExt2(stored, e); err != nil {
				t.Fatalf("well-formed input rejected: %v", err)
			}
		}
		v, err := DecompressExt2(stored, e)
		if err != nil {
			return
		}
		re, e2 := CompressExt2(v)
		if len(re) > len(stored) {
			t.Fatalf("recompression grew: %d > %d", len(re), len(stored))
		}
		v2, err := DecompressExt2(re, e2)
		if err != nil || v2 != v {
			t.Fatalf("canonical round trip failed: %#x %v", v2, err)
		}
		if Ext2Of(v) != e2 {
			t.Fatalf("Ext2Of(%#x) = %d, CompressExt2 said %d", v, Ext2Of(v), e2)
		}
	})
}

// FuzzExtHalfword ties the halfword extension bit, the SigHalves count, and
// the general Partition{16,16} scheme together on arbitrary words.
func FuzzExtHalfword(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0x7fff))
	f.Add(uint32(0x8000))
	f.Add(uint32(0xffff8000))
	f.Add(uint32(0xdeadbeef))
	f.Fuzz(func(t *testing.T, v uint32) {
		e := ExtHOf(v)
		if e.SigHalfCount() != SigHalves(v) {
			t.Fatalf("SigHalfCount %d != SigHalves %d for %#x", e.SigHalfCount(), SigHalves(v), v)
		}
		p := Partition{16, 16}
		if p.StoredSegments(v) != SigHalves(v) {
			t.Fatalf("Partition{16,16}.StoredSegments %d != SigHalves %d for %#x",
				p.StoredSegments(v), SigHalves(v), v)
		}
		if want := 16*SigHalves(v) + ExtHBits; StoredBitsH(v) != want {
			t.Fatalf("StoredBitsH(%#x) = %d, want %d", v, StoredBitsH(v), want)
		}
		segs, ext := p.Compress(v)
		v2, err := p.Decompress(segs, ext)
		if err != nil || v2 != v {
			t.Fatalf("halfword partition round trip: %#x -> %#x (%v)", v, v2, err)
		}
	})
}

// FuzzPartitionDecompress exercises the general partition scheme.
func FuzzPartitionDecompress(f *testing.F) {
	f.Add(uint32(0), uint32(0x1234), true, false, true)
	f.Add(uint32(0xffffffff), uint32(7), false, true, true)
	f.Fuzz(func(t *testing.T, s0, s1 uint32, e1, e2, e3 bool) {
		p := Partition{8, 8, 8, 8}
		ext := []bool{false, e1, e2, e3}
		var segs []uint32
		segs = append(segs, s0)
		need := 0
		for i := 1; i < 4; i++ {
			if !ext[i] {
				need++
			}
		}
		for len(segs) < 1+need {
			segs = append(segs, s1)
		}
		v, err := p.Decompress(segs, ext)
		if err != nil {
			return
		}
		// Round trip through the canonical compression.
		cs, ce := p.Compress(v)
		v2, err := p.Decompress(cs, ce)
		if err != nil || v2 != v {
			t.Fatalf("round trip: %#x vs %#x (%v)", v2, v, err)
		}
	})
}
