package sig

import "testing"

// Decompressors must never panic on arbitrary stored bytes and extension
// fields: they either reconstruct a word or return an error.
func FuzzDecompressExt3(f *testing.F) {
	f.Add([]byte{0x04}, uint8(0b111))
	f.Add([]byte{0x04, 0xf5}, uint8(0b110))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(0b101))
	f.Fuzz(func(t *testing.T, stored []byte, ext uint8) {
		v, err := DecompressExt3(stored, Ext3(ext&7))
		if err != nil {
			return
		}
		// A successful decompression must re-compress to the same length
		// or shorter (our compression is maximal) and round-trip its value.
		re, e2 := CompressExt3(v)
		if len(re) > len(stored) {
			t.Fatalf("recompression grew: %d > %d", len(re), len(stored))
		}
		v2, err := DecompressExt3(re, e2)
		if err != nil || v2 != v {
			t.Fatalf("canonical round trip failed: %v %v", v2, err)
		}
	})
}

// FuzzPartitionDecompress exercises the general partition scheme.
func FuzzPartitionDecompress(f *testing.F) {
	f.Add(uint32(0), uint32(0x1234), true, false, true)
	f.Add(uint32(0xffffffff), uint32(7), false, true, true)
	f.Fuzz(func(t *testing.T, s0, s1 uint32, e1, e2, e3 bool) {
		p := Partition{8, 8, 8, 8}
		ext := []bool{false, e1, e2, e3}
		var segs []uint32
		segs = append(segs, s0)
		need := 0
		for i := 1; i < 4; i++ {
			if !ext[i] {
				need++
			}
		}
		for len(segs) < 1+need {
			segs = append(segs, s1)
		}
		v, err := p.Decompress(segs, ext)
		if err != nil {
			return
		}
		// Round trip through the canonical compression.
		cs, ce := p.Compress(v)
		v2, err := p.Decompress(cs, ce)
		if err != nil || v2 != v {
			t.Fatalf("round trip: %#x vs %#x (%v)", v2, v, err)
		}
	})
}
