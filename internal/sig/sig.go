// Package sig implements significance compression of 32-bit words — the
// paper's central data representation (§2.1).
//
// A word is stored as its significant low-order bytes plus a small number of
// extension bits that record which upper bytes are mere sign extensions:
//
//   - The 3-bit scheme (Ext3) keeps one bit per upper byte. Bit i set means
//     byte i+1 equals the sign extension of byte i, so the byte need not be
//     stored, read, written or latched. Internal extension bytes are allowed
//     (e.g. the paper's 10 -- -- 09 : 011 memory address).
//   - The 2-bit scheme (Ext2) keeps only the count of contiguous sign
//     extension bytes at the most-significant end (0–3). It has lower
//     overhead but cannot skip internal bytes.
//   - The halfword scheme (ExtH) applies the same idea at 16-bit granularity
//     with a single extension bit.
//
// The low-order byte (halfword) is always represented, as in the paper.
package sig

import (
	"fmt"
	"math/bits"
)

// WordBytes is the datapath word size in bytes.
const WordBytes = 4

// Overheads in extension bits per 32-bit word for each scheme (§2.1: "two
// extra extension bits ... about 6 percent"; "three extension bits (approx.
// 9% overhead)").
const (
	Ext2Bits = 2
	Ext3Bits = 3
	ExtHBits = 1
)

// signExtByte returns the byte that sign-extends b: 0xFF if b's top bit is
// set, 0x00 otherwise.
func signExtByte(b byte) byte {
	if b&0x80 != 0 {
		return 0xff
	}
	return 0x00
}

// byteOf extracts byte i (0 = least significant) of v.
func byteOf(v uint32, i int) byte { return byte(v >> (8 * i)) }

// SigBytes returns the minimal number of low-order bytes whose sign
// extension reproduces v (1–4). It equals the storage cost under the 2-bit
// scheme.
func SigBytes(v uint32) int {
	n := WordBytes
	for n > 1 {
		hi := byteOf(v, n-1)
		if hi != signExtByte(byteOf(v, n-2)) {
			break
		}
		n--
	}
	return n
}

// SigHalves returns the minimal number of low-order halfwords whose sign
// extension reproduces v (1–2).
//
// Branch-free: the upper halfword is the sign extension of the lower one
// exactly when the top 17 bits of v are all equal. Adding 1 to that 17-bit
// window wraps all-ones to zero and turns all-zeros into 1, so after the
// shift y is zero iff the window was uniform; (0-y)>>31 then yields the
// 0-or-1 "second halfword needed" flag. This sits on the annotation hot
// path (once per operand per retired instruction), where the previous
// compare-and-branch version was measurably slower on mixed value streams.
func SigHalves(v uint32) int {
	y := (((v >> 15) + 1) & 0x1ffff) >> 1
	return 1 + int((0-y)>>31)
}

// Ext3 is the paper's 3-bit per-byte extension field. Bit i (i = 0..2)
// corresponds to byte i+1 of the word; a set bit marks that byte as the sign
// extension of the byte below it.
type Ext3 uint8

// Ext3Of computes the maximal (canonical) extension marking for v: every
// upper byte that equals the sign extension of its predecessor is marked.
//
// Branch-free: byte i is the sign extension of byte i-1 exactly when the
// nine bits v[8i-1 .. 8i+7] — byte i plus the sign bit below it — are all
// equal, which extBit tests per window without comparisons. Annotation
// calls this up to three times per retired instruction (both operands and
// the writeback value), making it the hottest leaf in the tracer.
func Ext3Of(v uint32) Ext3 {
	return Ext3(extBit(v>>7) | extBit(v>>15)<<1 | extBit(v>>23)<<2)
}

// extBit reports (as 0 or 1) whether the low nine bits of w are uniform
// (all zero or all one): adding 1 maps 0x1ff->0x000 and 0x000->0x001, both
// of which — and only which — collapse to zero after the halving shift.
func extBit(w uint32) uint32 {
	y := ((w + 1) & 0x1ff) >> 1
	return (y - 1) >> 31
}

// IsExt reports whether byte i (1–3) is marked as an extension byte.
func (e Ext3) IsExt(i int) bool {
	if i < 1 || i >= WordBytes {
		return false
	}
	return e&(1<<(i-1)) != 0
}

// SigByteCount returns the number of stored bytes (1–4), i.e. the low byte
// plus all unmarked upper bytes.
func (e Ext3) SigByteCount() int {
	return WordBytes - bits.OnesCount8(uint8(e)&0x7)
}

// Pattern renders the paper's Table-1 notation: four characters, most
// significant byte first, 's' for a significant (stored) byte and 'e' for an
// extension byte. The least significant byte is always 's'.
func (e Ext3) Pattern() string {
	var b [WordBytes]byte
	for i := 0; i < WordBytes; i++ {
		if e.IsExt(WordBytes - 1 - i) {
			b[i] = 'e'
		} else {
			b[i] = 's'
		}
	}
	return string(b[:])
}

// PatternOf is shorthand for Ext3Of(v).Pattern().
func PatternOf(v uint32) string { return Ext3Of(v).Pattern() }

// AllPatterns lists the eight possible byte-significance patterns in the
// fixed order used for reporting (one significant byte first, then by
// increasing stored size).
func AllPatterns() []string {
	return []string{"eees", "eess", "esss", "ssss", "eses", "sees", "sses", "sess"}
}

// Ext2Representable reports whether the pattern of v is expressible by the
// 2-bit count scheme (no internal extension bytes below a significant one).
func Ext2Representable(v uint32) bool {
	e := Ext3Of(v)
	// Representable iff the marked bytes form a contiguous run at the top.
	// Walk from byte 3 downward: once a significant byte is seen, no byte
	// below it may be needed... every marking of the form e...es...s works.
	seenSig := false
	for i := WordBytes - 1; i >= 1; i-- {
		if e.IsExt(i) {
			if seenSig {
				return false
			}
		} else {
			seenSig = true
		}
	}
	return true
}

// CompressExt3 returns the stored bytes of v (least significant first) and
// the extension field. len(stored) == e.SigByteCount().
func CompressExt3(v uint32) (stored []byte, e Ext3) {
	e = Ext3Of(v)
	stored = make([]byte, 0, WordBytes)
	stored = append(stored, byteOf(v, 0))
	for i := 1; i < WordBytes; i++ {
		if !e.IsExt(i) {
			stored = append(stored, byteOf(v, i))
		}
	}
	return stored, e
}

// DecompressExt3 reconstructs the word from stored bytes and extension
// field. It fails if the number of stored bytes does not match e.
func DecompressExt3(stored []byte, e Ext3) (uint32, error) {
	if len(stored) != e.SigByteCount() {
		return 0, fmt.Errorf("sig: %d stored bytes but extension field %03b needs %d",
			len(stored), uint8(e), e.SigByteCount())
	}
	var bytes [WordBytes]byte
	bytes[0] = stored[0]
	next := 1
	for i := 1; i < WordBytes; i++ {
		if e.IsExt(i) {
			bytes[i] = signExtByte(bytes[i-1])
		} else {
			bytes[i] = stored[next]
			next++
		}
	}
	return uint32(bytes[0]) | uint32(bytes[1])<<8 | uint32(bytes[2])<<16 | uint32(bytes[3])<<24, nil
}

// Ext2 is the 2-bit count scheme: the number of most-significant bytes that
// are sign extensions (0–3).
type Ext2 uint8

// Ext2Of computes the extension count for v.
func Ext2Of(v uint32) Ext2 { return Ext2(WordBytes - SigBytes(v)) }

// SigByteCount returns the number of stored bytes (1–4).
func (e Ext2) SigByteCount() int { return WordBytes - int(e) }

// CompressExt2 returns the stored low-order bytes (least significant first)
// and the count field.
func CompressExt2(v uint32) (stored []byte, e Ext2) {
	e = Ext2Of(v)
	n := e.SigByteCount()
	stored = make([]byte, n)
	for i := 0; i < n; i++ {
		stored[i] = byteOf(v, i)
	}
	return stored, e
}

// DecompressExt2 reconstructs the word from the stored bytes and count.
func DecompressExt2(stored []byte, e Ext2) (uint32, error) {
	if int(e) >= WordBytes || len(stored) != e.SigByteCount() {
		return 0, fmt.Errorf("sig: %d stored bytes but count field %d needs %d",
			len(stored), uint8(e), WordBytes-int(e))
	}
	var v uint32
	for i, b := range stored {
		v |= uint32(b) << (8 * i)
	}
	ext := signExtByte(stored[len(stored)-1])
	for i := len(stored); i < WordBytes; i++ {
		v |= uint32(ext) << (8 * i)
	}
	return v, nil
}

// ExtH is the halfword-granularity scheme: a single bit marking the upper
// halfword as the sign extension of the lower one.
type ExtH uint8

// ExtHOf computes the halfword extension bit for v.
func ExtHOf(v uint32) ExtH {
	if SigHalves(v) == 1 {
		return 1
	}
	return 0
}

// SigHalfCount returns the number of stored halfwords (1–2).
func (e ExtH) SigHalfCount() int {
	if e != 0 {
		return 1
	}
	return 2
}

// StoredBits3 returns the total bits held for v under the 3-bit byte scheme
// (stored data bytes plus extension bits).
func StoredBits3(v uint32) int { return 8*Ext3Of(v).SigByteCount() + Ext3Bits }

// StoredBits2 returns the total bits held for v under the 2-bit count
// scheme.
func StoredBits2(v uint32) int { return 8*SigBytes(v) + Ext2Bits }

// StoredBitsH returns the total bits held for v under the halfword scheme.
func StoredBitsH(v uint32) int { return 16*SigHalves(v) + ExtHBits }
