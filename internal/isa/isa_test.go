package isa

import (
	"testing"
	"testing/quick"
)

func TestDecodeEncodeRoundTripR(t *testing.T) {
	raw := EncodeR(FnADDU, RegT1, RegT2, RegT0, 0)
	i := Decode(raw)
	if i.Op != OpSpecial || i.Funct != FnADDU {
		t.Fatalf("decode R: got op=%#x funct=%#x", i.Op, i.Funct)
	}
	if i.Rs != RegT1 || i.Rt != RegT2 || i.Rd != RegT0 {
		t.Fatalf("decode R regs: %v %v %v", i.Rs, i.Rt, i.Rd)
	}
	if err := i.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestDecodeEncodeRoundTripI(t *testing.T) {
	raw := EncodeI(OpADDIU, RegSP, RegSP, -16)
	i := Decode(raw)
	if i.Op != OpADDIU || i.Rs != RegSP || i.Rt != RegSP || i.Imm != -16 {
		t.Fatalf("decode I: %+v", i)
	}
}

func TestDecodeEncodeRoundTripJ(t *testing.T) {
	raw := EncodeJ(OpJAL, 0x0010_0000>>2)
	i := Decode(raw)
	if i.Op != OpJAL || i.Target != 0x0010_0000>>2 {
		t.Fatalf("decode J: %+v", i)
	}
	if got := i.JumpTarget(0x0040_0000); got != 0x0010_0000 {
		t.Fatalf("jump target: %#x", got)
	}
}

func TestDecodeFieldExtractionProperty(t *testing.T) {
	// Reassembling the decoded fields must reproduce the raw word.
	f := func(raw uint32) bool {
		i := Decode(raw)
		re := uint32(i.Op)<<26 | uint32(i.Rs)<<21 | uint32(i.Rt)<<16 |
			uint32(i.Rd)<<11 | uint32(i.Shamt)<<6 | uint32(i.Funct)
		return re == raw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestImmSignExtension(t *testing.T) {
	i := Decode(EncodeI(OpADDI, RegT0, RegT1, -1))
	if i.Imm != -1 {
		t.Fatalf("imm: got %d", i.Imm)
	}
	if uint16(i.Imm) != 0xffff {
		t.Fatalf("imm bits: %#x", uint16(i.Imm))
	}
}

func TestBranchTarget(t *testing.T) {
	// beq taken backward by 3 instructions from pc.
	i := Decode(EncodeI(OpBEQ, RegT0, RegT1, -4))
	pc := uint32(0x0040_0010)
	if got, want := i.BranchTarget(pc), pc+4-16; got != want {
		t.Fatalf("target: got %#x want %#x", got, want)
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		raw                          uint32
		load, store, branch, jump, r bool
		memBytes                     int
	}{
		{EncodeI(OpLW, RegSP, RegT0, 4), true, false, false, false, false, 4},
		{EncodeI(OpLBU, RegSP, RegT0, 0), true, false, false, false, false, 1},
		{EncodeI(OpSH, RegSP, RegT0, 2), false, true, false, false, false, 2},
		{EncodeI(OpBNE, RegT0, RegT1, 8), false, false, true, false, false, 0},
		{EncodeRegimm(RegimmBLTZ, RegT0, 4), false, false, true, false, false, 0},
		{EncodeJ(OpJ, 100), false, false, false, true, false, 0},
		{EncodeR(FnJR, RegRA, 0, 0, 0), false, false, false, true, true, 0},
		{EncodeR(FnADDU, RegT0, RegT1, RegT2, 0), false, false, false, false, true, 0},
	}
	for _, c := range cases {
		i := Decode(c.raw)
		name := i.Disassemble(0)
		if i.IsLoad() != c.load {
			t.Errorf("%s: IsLoad=%v", name, i.IsLoad())
		}
		if i.IsStore() != c.store {
			t.Errorf("%s: IsStore=%v", name, i.IsStore())
		}
		if i.IsBranch() != c.branch {
			t.Errorf("%s: IsBranch=%v", name, i.IsBranch())
		}
		if i.IsJump() != c.jump {
			t.Errorf("%s: IsJump=%v", name, i.IsJump())
		}
		if (i.Format() == FormatR) != c.r {
			t.Errorf("%s: Format=%v", name, i.Format())
		}
		if i.MemBytes() != c.memBytes {
			t.Errorf("%s: MemBytes=%d", name, i.MemBytes())
		}
	}
}

func TestDestReg(t *testing.T) {
	cases := []struct {
		raw  uint32
		reg  Reg
		ok   bool
		desc string
	}{
		{EncodeR(FnADDU, RegT0, RegT1, RegT2, 0), RegT2, true, "addu"},
		{EncodeR(FnADDU, RegT0, RegT1, RegZero, 0), 0, false, "addu to $zero"},
		{EncodeI(OpADDIU, RegT0, RegT3, 1), RegT3, true, "addiu"},
		{EncodeI(OpLW, RegSP, RegT4, 0), RegT4, true, "lw"},
		{EncodeI(OpSW, RegSP, RegT4, 0), 0, false, "sw"},
		{EncodeJ(OpJAL, 64), RegRA, true, "jal"},
		{EncodeJ(OpJ, 64), 0, false, "j"},
		{EncodeI(OpBEQ, RegT0, RegT1, 4), 0, false, "beq"},
		{EncodeR(FnMULT, RegT0, RegT1, 0, 0), 0, false, "mult"},
		{EncodeR(FnMFLO, 0, 0, RegT5, 0), RegT5, true, "mflo"},
	}
	for _, c := range cases {
		r, ok := Decode(c.raw).DestReg()
		if ok != c.ok || (ok && r != c.reg) {
			t.Errorf("%s: DestReg=(%v,%v) want (%v,%v)", c.desc, r, ok, c.reg, c.ok)
		}
	}
}

func TestReadsRsRt(t *testing.T) {
	cases := []struct {
		raw    uint32
		rs, rt bool
		desc   string
	}{
		{EncodeR(FnADDU, RegT0, RegT1, RegT2, 0), true, true, "addu"},
		{EncodeR(FnSLL, 0, RegT1, RegT2, 3), false, true, "sll"},
		{EncodeR(FnSLLV, RegT0, RegT1, RegT2, 0), true, true, "sllv"},
		{EncodeR(FnJR, RegRA, 0, 0, 0), true, false, "jr"},
		{EncodeR(FnMFLO, 0, 0, RegT2, 0), false, false, "mflo"},
		{EncodeI(OpADDIU, RegT0, RegT1, 4), true, false, "addiu"},
		{EncodeI(OpLW, RegT0, RegT1, 4), true, false, "lw"},
		{EncodeI(OpSW, RegT0, RegT1, 4), true, true, "sw"},
		{EncodeI(OpLUI, 0, RegT1, 0x10), false, false, "lui"},
		{EncodeI(OpBEQ, RegT0, RegT1, 4), true, true, "beq"},
		{EncodeI(OpBLEZ, RegT0, 0, 4), true, false, "blez"},
		{EncodeJ(OpJ, 16), false, false, "j"},
	}
	for _, c := range cases {
		i := Decode(c.raw)
		if i.ReadsRs() != c.rs || i.ReadsRt() != c.rt {
			t.Errorf("%s: reads=(%v,%v) want (%v,%v)", c.desc, i.ReadsRs(), i.ReadsRt(), c.rs, c.rt)
		}
	}
}

func TestRegByName(t *testing.T) {
	cases := []struct {
		in  string
		reg Reg
		ok  bool
	}{
		{"zero", RegZero, true},
		{"t0", RegT0, true},
		{"sp", RegSP, true},
		{"ra", RegRA, true},
		{"31", RegRA, true},
		{"0", RegZero, true},
		{"32", 0, false},
		{"x9", 0, false},
		{"1x", 0, false},
	}
	for _, c := range cases {
		r, ok := RegByName(c.in)
		if ok != c.ok || (ok && r != c.reg) {
			t.Errorf("RegByName(%q) = (%v,%v), want (%v,%v)", c.in, r, ok, c.reg, c.ok)
		}
	}
}

func TestValidateRejectsUndefined(t *testing.T) {
	bad := []uint32{
		uint32(0x3f) << 26,               // undefined opcode
		EncodeR(Funct(0x3f), 0, 0, 0, 0), // undefined funct
		EncodeRegimm(0x1f, RegT0, 0),     // undefined regimm selector
	}
	for _, raw := range bad {
		if err := Decode(raw).Validate(); err == nil {
			t.Errorf("Validate(%#08x): expected error", raw)
		}
	}
}

func TestDisassembleSmoke(t *testing.T) {
	cases := []struct {
		raw  uint32
		pc   uint32
		want string
	}{
		{EncodeR(FnADDU, RegT0, RegT1, RegT2, 0), 0, "addu $t2, $t0, $t1"},
		{EncodeR(FnSLL, 0, RegT1, RegT2, 4), 0, "sll $t2, $t1, 4"},
		{0, 0, "nop"},
		{EncodeI(OpLW, RegSP, RegT0, 8), 0, "lw $t0, 8($sp)"},
		{EncodeI(OpADDIU, RegT0, RegT1, -2), 0, "addiu $t1, $t0, -2"},
		{EncodeI(OpLUI, 0, RegT0, 0x1000), 0, "lui $t0, 0x1000"},
	}
	for _, c := range cases {
		if got := Decode(c.raw).Disassemble(c.pc); got != c.want {
			t.Errorf("disasm %#08x: got %q want %q", c.raw, got, c.want)
		}
	}
}

func TestIsShiftImm(t *testing.T) {
	if !Decode(EncodeR(FnSLL, 0, RegT1, RegT2, 4)).IsShiftImm() {
		t.Error("sll should be shift-imm")
	}
	if Decode(EncodeR(FnSLLV, RegT0, RegT1, RegT2, 0)).IsShiftImm() {
		t.Error("sllv should not be shift-imm")
	}
}
