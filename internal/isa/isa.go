// Package isa defines the MIPS-I integer instruction subset used throughout
// the simulator: binary encodings, a decoder, encoders, instruction
// classification helpers and a disassembler.
//
// The subset covers the integer ISA the paper's evaluation depends on
// (Mediabench compiled to a "MIPS-like ISA", §3): R-format ALU and shift
// operations, multiply/divide with HI/LO, I-format ALU-immediate forms,
// loads and stores of byte/halfword/word width, branches (including the
// REGIMM BLTZ/BGEZ pair), and J-format jumps. Floating point is out of
// scope, as in the paper ("we focus on integer instructions").
package isa

import "fmt"

// Reg identifies one of the 32 general-purpose registers.
type Reg uint8

// Conventional MIPS register aliases.
const (
	RegZero Reg = 0 // hardwired zero
	RegAT   Reg = 1 // assembler temporary
	RegV0   Reg = 2 // results
	RegV1   Reg = 3
	RegA0   Reg = 4 // arguments
	RegA1   Reg = 5
	RegA2   Reg = 6
	RegA3   Reg = 7
	RegT0   Reg = 8 // caller-saved temporaries
	RegT1   Reg = 9
	RegT2   Reg = 10
	RegT3   Reg = 11
	RegT4   Reg = 12
	RegT5   Reg = 13
	RegT6   Reg = 14
	RegT7   Reg = 15
	RegS0   Reg = 16 // callee-saved
	RegS1   Reg = 17
	RegS2   Reg = 18
	RegS3   Reg = 19
	RegS4   Reg = 20
	RegS5   Reg = 21
	RegS6   Reg = 22
	RegS7   Reg = 23
	RegT8   Reg = 24
	RegT9   Reg = 25
	RegK0   Reg = 26 // reserved for OS
	RegK1   Reg = 27
	RegGP   Reg = 28 // global pointer
	RegSP   Reg = 29 // stack pointer
	RegFP   Reg = 30 // frame pointer
	RegRA   Reg = 31 // return address
)

var regNames = [32]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// Name returns the conventional assembly name ("$t0" style without the $).
func (r Reg) Name() string {
	if r < 32 {
		return regNames[r]
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// String implements fmt.Stringer with the leading $.
func (r Reg) String() string { return "$" + r.Name() }

// RegByName resolves both numeric ($5) and symbolic ($a1) register names.
// The leading $ must already be stripped.
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	// numeric form
	var v int
	if _, err := fmt.Sscanf(name, "%d", &v); err == nil && v >= 0 && v < 32 {
		// Reject trailing junk such as "1x".
		if fmt.Sprintf("%d", v) == name {
			return Reg(v), true
		}
	}
	return 0, false
}

// Opcode is the primary 6-bit opcode field (bits 31:26).
type Opcode uint8

// Primary opcodes.
const (
	OpSpecial Opcode = 0x00 // R-format; funct field selects operation
	OpRegimm  Opcode = 0x01 // BLTZ/BGEZ family; rt field selects
	OpJ       Opcode = 0x02
	OpJAL     Opcode = 0x03
	OpBEQ     Opcode = 0x04
	OpBNE     Opcode = 0x05
	OpBLEZ    Opcode = 0x06
	OpBGTZ    Opcode = 0x07
	OpADDI    Opcode = 0x08
	OpADDIU   Opcode = 0x09
	OpSLTI    Opcode = 0x0a
	OpSLTIU   Opcode = 0x0b
	OpANDI    Opcode = 0x0c
	OpORI     Opcode = 0x0d
	OpXORI    Opcode = 0x0e
	OpLUI     Opcode = 0x0f
	OpLB      Opcode = 0x20
	OpLH      Opcode = 0x21
	OpLW      Opcode = 0x23
	OpLBU     Opcode = 0x24
	OpLHU     Opcode = 0x25
	OpSB      Opcode = 0x28
	OpSH      Opcode = 0x29
	OpSW      Opcode = 0x2b
)

// Funct is the 6-bit function field of R-format instructions (bits 5:0).
type Funct uint8

// R-format function codes.
const (
	FnSLL     Funct = 0x00
	FnSRL     Funct = 0x02
	FnSRA     Funct = 0x03
	FnSLLV    Funct = 0x04
	FnSRLV    Funct = 0x06
	FnSRAV    Funct = 0x07
	FnJR      Funct = 0x08
	FnJALR    Funct = 0x09
	FnSYSCALL Funct = 0x0c
	FnBREAK   Funct = 0x0d
	FnMFHI    Funct = 0x10
	FnMTHI    Funct = 0x11
	FnMFLO    Funct = 0x12
	FnMTLO    Funct = 0x13
	FnMULT    Funct = 0x18
	FnMULTU   Funct = 0x19
	FnDIV     Funct = 0x1a
	FnDIVU    Funct = 0x1b
	FnADD     Funct = 0x20
	FnADDU    Funct = 0x21
	FnSUB     Funct = 0x22
	FnSUBU    Funct = 0x23
	FnAND     Funct = 0x24
	FnOR      Funct = 0x25
	FnXOR     Funct = 0x26
	FnNOR     Funct = 0x27
	FnSLT     Funct = 0x2a
	FnSLTU    Funct = 0x2b
)

// REGIMM rt selectors.
const (
	RegimmBLTZ = 0x00
	RegimmBGEZ = 0x01
)

// Format distinguishes the three MIPS instruction encodings.
type Format uint8

const (
	FormatR Format = iota
	FormatI
	FormatJ
)

func (f Format) String() string {
	switch f {
	case FormatR:
		return "R"
	case FormatI:
		return "I"
	default:
		return "J"
	}
}

// Inst is a decoded instruction. Raw always holds the 32-bit encoding the
// instruction was decoded from (or would encode to).
type Inst struct {
	Raw    uint32
	Op     Opcode
	Rs     Reg
	Rt     Reg
	Rd     Reg
	Shamt  uint8
	Funct  Funct
	Imm    int16  // sign-extended I-format immediate
	Target uint32 // 26-bit J-format target field
}

// Decode splits a raw 32-bit word into its fields. Every 32-bit pattern
// decodes to *something*; use Validate to check it is a defined instruction.
func Decode(raw uint32) Inst {
	return Inst{
		Raw:    raw,
		Op:     Opcode(raw >> 26),
		Rs:     Reg((raw >> 21) & 0x1f),
		Rt:     Reg((raw >> 16) & 0x1f),
		Rd:     Reg((raw >> 11) & 0x1f),
		Shamt:  uint8((raw >> 6) & 0x1f),
		Funct:  Funct(raw & 0x3f),
		Imm:    int16(raw & 0xffff),
		Target: raw & 0x03ffffff,
	}
}

// EncodeR builds an R-format instruction.
func EncodeR(fn Funct, rs, rt, rd Reg, shamt uint8) uint32 {
	return uint32(rs&0x1f)<<21 | uint32(rt&0x1f)<<16 | uint32(rd&0x1f)<<11 |
		uint32(shamt&0x1f)<<6 | uint32(fn&0x3f)
}

// EncodeI builds an I-format instruction.
func EncodeI(op Opcode, rs, rt Reg, imm int16) uint32 {
	return uint32(op&0x3f)<<26 | uint32(rs&0x1f)<<21 | uint32(rt&0x1f)<<16 |
		uint32(uint16(imm))
}

// EncodeJ builds a J-format instruction from a 26-bit target field.
func EncodeJ(op Opcode, target uint32) uint32 {
	return uint32(op&0x3f)<<26 | target&0x03ffffff
}

// EncodeRegimm builds a REGIMM branch (BLTZ/BGEZ).
func EncodeRegimm(sel uint8, rs Reg, imm int16) uint32 {
	return uint32(OpRegimm)<<26 | uint32(rs&0x1f)<<21 | uint32(sel&0x1f)<<16 |
		uint32(uint16(imm))
}

// Format reports the encoding format of the instruction.
func (i Inst) Format() Format {
	switch i.Op {
	case OpSpecial:
		return FormatR
	case OpJ, OpJAL:
		return FormatJ
	default:
		return FormatI
	}
}

// IsLoad reports whether the instruction reads data memory.
func (i Inst) IsLoad() bool {
	switch i.Op {
	case OpLB, OpLBU, OpLH, OpLHU, OpLW:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes data memory.
func (i Inst) IsStore() bool {
	switch i.Op {
	case OpSB, OpSH, OpSW:
		return true
	}
	return false
}

// IsMem reports whether the instruction accesses data memory.
func (i Inst) IsMem() bool { return i.IsLoad() || i.IsStore() }

// MemBytes reports the access width in bytes of a load or store (0 if the
// instruction does not touch memory).
func (i Inst) MemBytes() int {
	switch i.Op {
	case OpLB, OpLBU, OpSB:
		return 1
	case OpLH, OpLHU, OpSH:
		return 2
	case OpLW, OpSW:
		return 4
	}
	return 0
}

// IsBranch reports whether the instruction is a conditional branch.
func (i Inst) IsBranch() bool {
	switch i.Op {
	case OpBEQ, OpBNE, OpBLEZ, OpBGTZ, OpRegimm:
		return true
	}
	return false
}

// IsJump reports whether the instruction is an unconditional jump (J, JAL,
// JR, JALR).
func (i Inst) IsJump() bool {
	if i.Op == OpJ || i.Op == OpJAL {
		return true
	}
	return i.Op == OpSpecial && (i.Funct == FnJR || i.Funct == FnJALR)
}

// IsControl reports whether the instruction redirects the PC.
func (i Inst) IsControl() bool { return i.IsBranch() || i.IsJump() }

// IsShiftImm reports whether the instruction is an immediate shift, which
// uses the shamt field but not rs (relevant for the paper's R-format
// permutation, §2.3).
func (i Inst) IsShiftImm() bool {
	return i.Op == OpSpecial && (i.Funct == FnSLL || i.Funct == FnSRL || i.Funct == FnSRA)
}

// UsesFunct reports whether an R-format instruction meaningfully uses its
// function field (true for all OpSpecial encodings in this subset).
func (i Inst) UsesFunct() bool { return i.Op == OpSpecial }

// ReadsRs reports whether the rs register value is a source operand.
func (i Inst) ReadsRs() bool {
	switch i.Op {
	case OpJ, OpJAL, OpLUI:
		return false
	case OpSpecial:
		switch i.Funct {
		case FnSLL, FnSRL, FnSRA, FnMFHI, FnMFLO, FnSYSCALL, FnBREAK:
			return false
		}
		return true
	}
	return true
}

// ReadsRt reports whether the rt register value is a source operand.
func (i Inst) ReadsRt() bool {
	switch i.Op {
	case OpSpecial:
		switch i.Funct {
		case FnJR, FnJALR, FnMFHI, FnMFLO, FnMTHI, FnMTLO, FnSYSCALL, FnBREAK:
			return false
		}
		return true
	case OpBEQ, OpBNE:
		return true
	case OpSB, OpSH, OpSW:
		return true // store data
	}
	return false
}

// DestReg reports the GPR written by the instruction, and whether one is
// written at all. Writes to $zero are reported as no write.
func (i Inst) DestReg() (Reg, bool) {
	var d Reg
	switch i.Op {
	case OpSpecial:
		switch i.Funct {
		case FnJR, FnSYSCALL, FnBREAK, FnMTHI, FnMTLO, FnMULT, FnMULTU, FnDIV, FnDIVU:
			return 0, false
		}
		d = i.Rd
	case OpJAL:
		d = RegRA
	case OpJ, OpBEQ, OpBNE, OpBLEZ, OpBGTZ, OpRegimm, OpSB, OpSH, OpSW:
		return 0, false
	default:
		d = i.Rt
	}
	if d == RegZero {
		return 0, false
	}
	return d, true
}

// WritesHILO reports whether the instruction writes the HI/LO pair.
func (i Inst) WritesHILO() bool {
	if i.Op != OpSpecial {
		return false
	}
	switch i.Funct {
	case FnMULT, FnMULTU, FnDIV, FnDIVU, FnMTHI, FnMTLO:
		return true
	}
	return false
}

// BranchTarget computes the branch destination given the branch's own PC.
func (i Inst) BranchTarget(pc uint32) uint32 {
	return pc + 4 + uint32(int32(i.Imm))<<2
}

// JumpTarget computes a J/JAL destination given the jump's own PC.
func (i Inst) JumpTarget(pc uint32) uint32 {
	return (pc+4)&0xf0000000 | i.Target<<2
}

// Validate reports a non-nil error if the encoding is not a defined
// instruction of the subset.
func (i Inst) Validate() error {
	switch i.Op {
	case OpSpecial:
		switch i.Funct {
		case FnSLL, FnSRL, FnSRA, FnSLLV, FnSRLV, FnSRAV, FnJR, FnJALR,
			FnSYSCALL, FnBREAK, FnMFHI, FnMTHI, FnMFLO, FnMTLO,
			FnMULT, FnMULTU, FnDIV, FnDIVU,
			FnADD, FnADDU, FnSUB, FnSUBU, FnAND, FnOR, FnXOR, FnNOR,
			FnSLT, FnSLTU:
			return nil
		}
		return fmt.Errorf("isa: undefined funct %#02x", uint8(i.Funct))
	case OpRegimm:
		if uint8(i.Rt) == RegimmBLTZ || uint8(i.Rt) == RegimmBGEZ {
			return nil
		}
		return fmt.Errorf("isa: undefined regimm selector %#02x", uint8(i.Rt))
	case OpJ, OpJAL, OpBEQ, OpBNE, OpBLEZ, OpBGTZ,
		OpADDI, OpADDIU, OpSLTI, OpSLTIU, OpANDI, OpORI, OpXORI, OpLUI,
		OpLB, OpLH, OpLW, OpLBU, OpLHU, OpSB, OpSH, OpSW:
		return nil
	}
	return fmt.Errorf("isa: undefined opcode %#02x", uint8(i.Op))
}

// FunctName returns the mnemonic for an R-format function code.
func FunctName(fn Funct) string {
	if n, ok := functNames[fn]; ok {
		return n
	}
	return fmt.Sprintf("funct%#02x", uint8(fn))
}

var functNames = map[Funct]string{
	FnSLL: "sll", FnSRL: "srl", FnSRA: "sra",
	FnSLLV: "sllv", FnSRLV: "srlv", FnSRAV: "srav",
	FnJR: "jr", FnJALR: "jalr", FnSYSCALL: "syscall", FnBREAK: "break",
	FnMFHI: "mfhi", FnMTHI: "mthi", FnMFLO: "mflo", FnMTLO: "mtlo",
	FnMULT: "mult", FnMULTU: "multu", FnDIV: "div", FnDIVU: "divu",
	FnADD: "add", FnADDU: "addu", FnSUB: "sub", FnSUBU: "subu",
	FnAND: "and", FnOR: "or", FnXOR: "xor", FnNOR: "nor",
	FnSLT: "slt", FnSLTU: "sltu",
}

var opNames = map[Opcode]string{
	OpJ: "j", OpJAL: "jal", OpBEQ: "beq", OpBNE: "bne",
	OpBLEZ: "blez", OpBGTZ: "bgtz",
	OpADDI: "addi", OpADDIU: "addiu", OpSLTI: "slti", OpSLTIU: "sltiu",
	OpANDI: "andi", OpORI: "ori", OpXORI: "xori", OpLUI: "lui",
	OpLB: "lb", OpLH: "lh", OpLW: "lw", OpLBU: "lbu", OpLHU: "lhu",
	OpSB: "sb", OpSH: "sh", OpSW: "sw",
}

// Mnemonic returns the assembly mnemonic of the instruction.
func (i Inst) Mnemonic() string {
	switch i.Op {
	case OpSpecial:
		return FunctName(i.Funct)
	case OpRegimm:
		if uint8(i.Rt) == RegimmBGEZ {
			return "bgez"
		}
		return "bltz"
	}
	if n, ok := opNames[i.Op]; ok {
		return n
	}
	return fmt.Sprintf("op%#02x", uint8(i.Op))
}

// Disassemble renders the instruction in conventional MIPS assembly. The pc
// is used to render branch and jump targets as absolute addresses.
func (i Inst) Disassemble(pc uint32) string {
	m := i.Mnemonic()
	switch i.Op {
	case OpSpecial:
		switch i.Funct {
		case FnSLL, FnSRL, FnSRA:
			if i.Raw == 0 {
				return "nop"
			}
			return fmt.Sprintf("%s %s, %s, %d", m, i.Rd, i.Rt, i.Shamt)
		case FnSLLV, FnSRLV, FnSRAV:
			return fmt.Sprintf("%s %s, %s, %s", m, i.Rd, i.Rt, i.Rs)
		case FnJR:
			return fmt.Sprintf("%s %s", m, i.Rs)
		case FnJALR:
			return fmt.Sprintf("%s %s, %s", m, i.Rd, i.Rs)
		case FnSYSCALL, FnBREAK:
			return m
		case FnMFHI, FnMFLO:
			return fmt.Sprintf("%s %s", m, i.Rd)
		case FnMTHI, FnMTLO:
			return fmt.Sprintf("%s %s", m, i.Rs)
		case FnMULT, FnMULTU, FnDIV, FnDIVU:
			return fmt.Sprintf("%s %s, %s", m, i.Rs, i.Rt)
		default:
			return fmt.Sprintf("%s %s, %s, %s", m, i.Rd, i.Rs, i.Rt)
		}
	case OpRegimm:
		return fmt.Sprintf("%s %s, %#x", m, i.Rs, i.BranchTarget(pc))
	case OpJ, OpJAL:
		return fmt.Sprintf("%s %#x", m, i.JumpTarget(pc))
	case OpBEQ, OpBNE:
		return fmt.Sprintf("%s %s, %s, %#x", m, i.Rs, i.Rt, i.BranchTarget(pc))
	case OpBLEZ, OpBGTZ:
		return fmt.Sprintf("%s %s, %#x", m, i.Rs, i.BranchTarget(pc))
	case OpLUI:
		return fmt.Sprintf("%s %s, %#x", m, i.Rt, uint16(i.Imm))
	case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpSB, OpSH, OpSW:
		return fmt.Sprintf("%s %s, %d(%s)", m, i.Rt, i.Imm, i.Rs)
	case OpANDI, OpORI, OpXORI:
		return fmt.Sprintf("%s %s, %s, %#x", m, i.Rt, i.Rs, uint16(i.Imm))
	default:
		return fmt.Sprintf("%s %s, %s, %d", m, i.Rt, i.Rs, i.Imm)
	}
}
