package icomp_test

import (
	"fmt"

	"repro/internal/icomp"
	"repro/internal/isa"
)

// Most instructions fetch as three bytes after the §2.3 recode; a funct
// outside the top-8 needs all four.
func ExampleRecoder_FetchBytes() {
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	addu := isa.EncodeR(isa.FnADDU, 1, 2, 3, 0)
	nor := isa.EncodeR(isa.FnNOR, 1, 2, 3, 0)
	addiuSmall := isa.EncodeI(isa.OpADDIU, 1, 2, 5)
	addiuWide := isa.EncodeI(isa.OpADDIU, 1, 2, 1000)
	fmt.Println(rc.FetchBytes(addu), rc.FetchBytes(nor),
		rc.FetchBytes(addiuSmall), rc.FetchBytes(addiuWide))
	// Output:
	// 3 4 3 4
}

// Encode/Decode round-trips exactly; three-byte instructions do not depend
// on the dropped byte.
func ExampleRecoder_Encode() {
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	raw := isa.EncodeR(isa.FnADDU, isa.RegT0, isa.RegT1, isa.RegT2, 0)
	s := rc.Encode(raw)
	fmt.Println(s.Bytes(), rc.Decode(s) == raw)
	// Output:
	// 3 true
}
