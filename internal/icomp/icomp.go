// Package icomp implements the paper's instruction-cache significance
// compression (§2.3): a permutation of instruction bits plus a recoding of
// the R-format function field that lets most instructions be fetched and
// latched as three bytes instead of four. One extension bit per instruction
// word records whether the fourth byte is needed.
//
// The stored layouts (most significant byte first; byte 0 is the droppable
// one) follow the paper's Figure 2:
//
//	R-format (fig. 2a):  opcode(6) rs(5) rt(5) | rd(5) f1(3) | f2(3) shamt(5)
//	R-shift  (fig. 2b):  opcode(6) shamt(5) rt(5) | rd(5) f1(3) | f2(3) rs(5)
//	I-format (fig. 2c):  opcode(6) rs(5) rt(5) | imm-low(8) | imm-high(8)
//	J-format:            stored unpermuted; always four bytes.
//
// The function field is split into f1 (the three bits kept in byte 1) and
// f2 (the three bits in the droppable byte 0). The eight most frequent
// function codes are recoded so that f2 = 000; for them — when the
// remaining bits of byte 0 are also zero — only three bytes need to be
// fetched. Immediate-shift instructions do not use rs, so rs and shamt
// trade places, putting the zero rs field in the droppable byte. I-format
// instructions drop the immediate's high byte when it is recoverable from
// the low byte under the opcode's own extension rule (sign extension for
// arithmetic/compare/memory/branch immediates, zero extension for logical
// immediates).
package icomp

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// FetchExtBits is the per-instruction-word overhead of the scheme: a single
// extension bit ("3.29 bytes if we include the extension bit", §2.3).
const FetchExtBits = 1

// zeroExtImm reports whether the opcode's 16-bit immediate is consumed
// zero-extended (the logical immediates); all other immediates are
// sign-extended (or are branch displacements, also sign-extended).
func zeroExtImm(op isa.Opcode) bool {
	return op == isa.OpANDI || op == isa.OpORI || op == isa.OpXORI
}

// Recoder holds the profile-driven function-code recoding and performs the
// permutation in both directions.
type Recoder struct {
	enc [64]uint8 // original funct -> recoded 6-bit value
	dec [64]uint8 // recoded value  -> original funct
}

// TopFuncts returns the n most frequent function codes in counts, most
// frequent first, with deterministic (ascending code) tie-breaking.
func TopFuncts(counts map[isa.Funct]uint64, n int) []isa.Funct {
	all := make([]isa.Funct, 0, len(counts))
	for fn := range counts {
		all = append(all, fn)
	}
	sort.Slice(all, func(i, j int) bool {
		if counts[all[i]] != counts[all[j]] {
			return counts[all[i]] > counts[all[j]]
		}
		return all[i] < all[j]
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// DefaultTopFuncts is a reasonable static top-8 for MIPS integer code,
// mirroring the paper's Table 3 (ADDU and SLL dominate; SLL is also the
// NOP encoding). Used when no profile is available.
func DefaultTopFuncts() []isa.Funct {
	return []isa.Funct{
		isa.FnADDU, isa.FnSLL, isa.FnSLT, isa.FnOR,
		isa.FnSRA, isa.FnSUBU, isa.FnSLTU, isa.FnXOR,
	}
}

// NewRecoder builds a Recoder giving the (up to eight) listed function
// codes the compact f2=000 encodings, in order. Remaining function codes
// are assigned the non-compact encodings deterministically.
func NewRecoder(top []isa.Funct) (*Recoder, error) {
	if len(top) > 8 {
		return nil, fmt.Errorf("icomp: %d top functs; the compact space holds 8", len(top))
	}
	r := &Recoder{}
	const unset = 0xff
	for i := range r.enc {
		r.enc[i], r.dec[i] = unset, unset
	}
	seen := map[isa.Funct]bool{}
	for i, fn := range top {
		if fn > 0x3f {
			return nil, fmt.Errorf("icomp: funct %#x out of range", uint8(fn))
		}
		if seen[fn] {
			return nil, fmt.Errorf("icomp: duplicate top funct %#x", uint8(fn))
		}
		seen[fn] = true
		// Compact code: f1 = i (kept bits), f2 = 000 (dropped bits).
		// Within the 6-bit recoded value we place f1 in the high three
		// bits and f2 in the low three, matching the stored layout.
		code := uint8(i) << 3
		r.enc[fn] = code
		r.dec[code] = uint8(fn)
	}
	// Assign every other funct a remaining encoding, preferring f2 != 000;
	// when fewer than eight compact codes were claimed the leftovers are
	// handed out too (harmless: those functs simply also fetch compactly).
	var free []uint8
	for code := 0; code < 64; code++ {
		if code&0x7 != 0 && r.dec[code] == unset {
			free = append(free, uint8(code))
		}
	}
	for code := 0; code < 64; code++ {
		if code&0x7 == 0 && r.dec[code] == unset {
			free = append(free, uint8(code))
		}
	}
	for fn := 0; fn < 64; fn++ {
		if r.enc[fn] != unset {
			continue
		}
		code := free[0]
		free = free[1:]
		r.enc[fn] = code
		r.dec[code] = uint8(fn)
	}
	return r, nil
}

// MustNewRecoder is NewRecoder for statically known-good inputs.
func MustNewRecoder(top []isa.Funct) *Recoder {
	r, err := NewRecoder(top)
	if err != nil {
		panic(err)
	}
	return r
}

// Stored is the cache-resident form of one instruction.
type Stored struct {
	// Word is the permuted/recoded 32-bit pattern.
	Word uint32
	// Ext is the instruction extension bit: true means all four bytes must
	// be fetched; false means the low (droppable) byte is zero and only
	// three bytes are fetched and latched.
	Ext bool
}

// Bytes returns the number of instruction bytes fetched (3 or 4).
func (s Stored) Bytes() int {
	if s.Ext {
		return 4
	}
	return 3
}

// Encode permutes and recodes a raw instruction for cache residence.
func (r *Recoder) Encode(raw uint32) Stored {
	inst := isa.Decode(raw)
	switch inst.Format() {
	case isa.FormatR:
		rc := r.enc[inst.Funct&0x3f]
		f1, f2 := uint32(rc>>3), uint32(rc&0x7)
		var hi16, b0 uint32
		if inst.IsShiftImm() {
			// Fig 2b: shamt occupies the rs slot; rs (always zero for
			// immediate shifts, but preserved for exactness) moves to the
			// droppable byte.
			hi16 = uint32(inst.Op)<<26 | uint32(inst.Shamt)<<21 | uint32(inst.Rt)<<16
			b0 = f2<<5 | uint32(inst.Rs)
		} else {
			hi16 = uint32(inst.Op)<<26 | uint32(inst.Rs)<<21 | uint32(inst.Rt)<<16
			b0 = f2<<5 | uint32(inst.Shamt)
		}
		word := hi16 | uint32(inst.Rd)<<11 | f1<<8 | b0
		return Stored{Word: word, Ext: b0 != 0}
	case isa.FormatI:
		imm := uint16(inst.Imm)
		lo, hi := uint32(imm&0xff), uint32(imm>>8)
		word := uint32(inst.Op)<<26 | uint32(inst.Rs)<<21 | uint32(inst.Rt)<<16 |
			lo<<8 | hi
		var need4 bool
		if zeroExtImm(inst.Op) {
			need4 = hi != 0
		} else {
			var ext uint32
			if lo&0x80 != 0 {
				ext = 0xff
			}
			need4 = hi != ext
		}
		return Stored{Word: word, Ext: need4}
	default: // J-format: no compression opportunity in a 26-bit target.
		return Stored{Word: raw, Ext: true}
	}
}

// Decode inverts Encode, reconstructing the original raw instruction. When
// the extension bit is clear the low byte of s.Word is ignored and
// regenerated (three-byte fetch), so callers may zero it.
func (r *Recoder) Decode(s Stored) uint32 {
	op := isa.Opcode(s.Word >> 26)
	switch {
	case op == isa.OpSpecial:
		word := s.Word
		if !s.Ext {
			word &^= 0xff // only three bytes were fetched
		}
		f1 := (word >> 8) & 0x7
		f2 := (word >> 5) & 0x7
		fn := isa.Funct(r.dec[f1<<3|f2])
		rd := isa.Reg(word >> 11 & 0x1f)
		slotA := isa.Reg(word >> 21 & 0x1f) // rs or shamt
		slotB := isa.Reg(word >> 16 & 0x1f) // rt
		low5 := uint8(word & 0x1f)          // shamt or rs
		if fn == isa.FnSLL || fn == isa.FnSRL || fn == isa.FnSRA {
			return isa.EncodeR(fn, isa.Reg(low5), slotB, rd, uint8(slotA))
		}
		return isa.EncodeR(fn, slotA, slotB, rd, low5)
	case op == isa.OpJ || op == isa.OpJAL:
		return s.Word
	default: // I-format
		word := s.Word
		lo := word >> 8 & 0xff
		var hi uint32
		if s.Ext {
			hi = word & 0xff
		} else if !zeroExtImm(op) && lo&0x80 != 0 {
			hi = 0xff
		}
		imm := int16(uint16(hi<<8 | lo))
		return isa.EncodeI(op, isa.Reg(word>>21&0x1f), isa.Reg(word>>16&0x1f), imm)
	}
}

// FetchBytes reports how many instruction bytes a fetch of raw moves
// through the I-cache read port (3 or 4).
func (r *Recoder) FetchBytes(raw uint32) int { return r.Encode(raw).Bytes() }

// FetchBits reports the fetched bits including the per-word extension bit.
func (r *Recoder) FetchBits(raw uint32) int {
	return 8*r.FetchBytes(raw) + FetchExtBits
}

// IsCompact reports whether funct has one of the eight f2=000 encodings.
func (r *Recoder) IsCompact(fn isa.Funct) bool { return r.enc[fn&0x3f]&0x7 == 0 }

// Profile is a Recoder's complete behavioral identity: the function-code
// encoding table. Two Recoders with equal Profiles encode, decode, and size
// every instruction identically, so Profile is the right memoization key for
// anything derived from a recoding (the capture replay engine keys its
// per-slot fetch-size tables by it, collapsing recoder churn).
type Profile [64]uint8

// Profile returns the recoder's encoding table as a comparable value.
func (r *Recoder) Profile() Profile { return r.enc }
