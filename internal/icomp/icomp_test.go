package icomp

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

func testRecoder(t *testing.T) *Recoder {
	t.Helper()
	r, err := NewRecoder(DefaultTopFuncts())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// validInstructions generates a broad sample of well-formed instructions.
func validInstructions(n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	rfuncts := []isa.Funct{
		isa.FnSLL, isa.FnSRL, isa.FnSRA, isa.FnSLLV, isa.FnSRLV, isa.FnSRAV,
		isa.FnJR, isa.FnJALR, isa.FnSYSCALL, isa.FnMFHI, isa.FnMFLO,
		isa.FnMTHI, isa.FnMTLO, isa.FnMULT, isa.FnMULTU, isa.FnDIV, isa.FnDIVU,
		isa.FnADD, isa.FnADDU, isa.FnSUB, isa.FnSUBU, isa.FnAND, isa.FnOR,
		isa.FnXOR, isa.FnNOR, isa.FnSLT, isa.FnSLTU,
	}
	iops := []isa.Opcode{
		isa.OpBEQ, isa.OpBNE, isa.OpBLEZ, isa.OpBGTZ,
		isa.OpADDI, isa.OpADDIU, isa.OpSLTI, isa.OpSLTIU,
		isa.OpANDI, isa.OpORI, isa.OpXORI, isa.OpLUI,
		isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLBU, isa.OpLHU,
		isa.OpSB, isa.OpSH, isa.OpSW,
	}
	out := make([]uint32, 0, n)
	for len(out) < n {
		switch rng.Intn(4) {
		case 0: // R-format
			fn := rfuncts[rng.Intn(len(rfuncts))]
			rs, rt, rd := isa.Reg(rng.Intn(32)), isa.Reg(rng.Intn(32)), isa.Reg(rng.Intn(32))
			var shamt uint8
			if fn == isa.FnSLL || fn == isa.FnSRL || fn == isa.FnSRA {
				shamt = uint8(rng.Intn(32))
				rs = 0
			}
			out = append(out, isa.EncodeR(fn, rs, rt, rd, shamt))
		case 1: // I-format with small immediate
			op := iops[rng.Intn(len(iops))]
			out = append(out, isa.EncodeI(op, isa.Reg(rng.Intn(32)), isa.Reg(rng.Intn(32)), int16(rng.Intn(256)-128)))
		case 2: // I-format with wide immediate
			op := iops[rng.Intn(len(iops))]
			out = append(out, isa.EncodeI(op, isa.Reg(rng.Intn(32)), isa.Reg(rng.Intn(32)), int16(rng.Uint32())))
		default: // J-format
			op := isa.OpJ
			if rng.Intn(2) == 1 {
				op = isa.OpJAL
			}
			out = append(out, isa.EncodeJ(op, rng.Uint32()&0x03ffffff))
		}
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := testRecoder(t)
	for _, raw := range validInstructions(5000, 1) {
		s := r.Encode(raw)
		if got := r.Decode(s); got != raw {
			t.Fatalf("roundtrip %#08x (%s): got %#08x (%s), stored %#08x ext=%v",
				raw, isa.Decode(raw).Disassemble(0), got, isa.Decode(got).Disassemble(0), s.Word, s.Ext)
		}
	}
}

func TestThreeByteFetchDropsLowByte(t *testing.T) {
	// When Ext is clear, decode must not depend on the dropped byte.
	r := testRecoder(t)
	for _, raw := range validInstructions(5000, 2) {
		s := r.Encode(raw)
		if s.Ext {
			continue
		}
		// For R-format the recode guarantees the dropped byte is zero; for
		// I-format it holds the redundant immediate-high byte.
		if isa.Decode(raw).Format() == isa.FormatR && s.Word&0xff != 0 {
			t.Fatalf("%#08x: compact R encoding has nonzero droppable byte %#08x", raw, s.Word)
		}
		garbled := s
		garbled.Word |= 0xa5 // simulate not fetching the byte
		if got := r.Decode(garbled); got != raw {
			t.Fatalf("%#08x: decode depends on dropped byte", raw)
		}
	}
}

func TestCompactRFormatIsThreeBytes(t *testing.T) {
	r := testRecoder(t)
	// addu with any registers: compact.
	s := r.Encode(isa.EncodeR(isa.FnADDU, 1, 2, 3, 0))
	if s.Bytes() != 3 {
		t.Fatalf("addu: %d bytes", s.Bytes())
	}
	// A funct outside the top-8: four bytes.
	s = r.Encode(isa.EncodeR(isa.FnNOR, 1, 2, 3, 0))
	if s.Bytes() != 4 {
		t.Fatalf("nor: %d bytes", s.Bytes())
	}
	// Immediate shift in the top-8: compact despite nonzero shamt.
	s = r.Encode(isa.EncodeR(isa.FnSLL, 0, 2, 3, 7))
	if s.Bytes() != 3 {
		t.Fatalf("sll: %d bytes", s.Bytes())
	}
}

func TestIFormatImmediateCompression(t *testing.T) {
	r := testRecoder(t)
	cases := []struct {
		raw   uint32
		bytes int
		desc  string
	}{
		{isa.EncodeI(isa.OpADDIU, 1, 2, 5), 3, "small positive"},
		{isa.EncodeI(isa.OpADDIU, 1, 2, -5), 3, "small negative"},
		{isa.EncodeI(isa.OpADDIU, 1, 2, 127), 3, "max 8-bit"},
		{isa.EncodeI(isa.OpADDIU, 1, 2, 128), 4, "needs 9 bits"},
		{isa.EncodeI(isa.OpADDIU, 1, 2, -128), 3, "min 8-bit"},
		{isa.EncodeI(isa.OpADDIU, 1, 2, -129), 4, "needs 9 bits negative"},
		{isa.EncodeI(isa.OpORI, 1, 2, 0xff), 3, "ori zero-extended 8-bit"},
		{isa.EncodeI(isa.OpORI, 1, 2, 0x100), 4, "ori 9-bit"},
		{isa.EncodeI(isa.OpANDI, 1, 2, int16(-1)), 4, "andi 0xffff is not 8-bit"},
		{isa.EncodeI(isa.OpLUI, 0, 2, 0x1000), 4, "lui wide"},
		{isa.EncodeI(isa.OpBEQ, 1, 2, -3), 3, "short branch"},
	}
	for _, c := range cases {
		if got := r.FetchBytes(c.raw); got != c.bytes {
			t.Errorf("%s: %d bytes, want %d", c.desc, got, c.bytes)
		}
	}
}

func TestJFormatAlwaysFour(t *testing.T) {
	r := testRecoder(t)
	if got := r.FetchBytes(isa.EncodeJ(isa.OpJ, 4)); got != 4 {
		t.Fatalf("j: %d bytes", got)
	}
}

func TestFetchBits(t *testing.T) {
	r := testRecoder(t)
	if got := r.FetchBits(isa.EncodeI(isa.OpADDIU, 1, 2, 5)); got != 25 {
		t.Fatalf("compact fetch bits: %d", got)
	}
	if got := r.FetchBits(isa.EncodeJ(isa.OpJ, 4)); got != 33 {
		t.Fatalf("full fetch bits: %d", got)
	}
}

func TestTopFuncts(t *testing.T) {
	counts := map[isa.Funct]uint64{
		isa.FnADDU: 100, isa.FnSLL: 90, isa.FnOR: 80, isa.FnSUBU: 10,
	}
	top := TopFuncts(counts, 3)
	if len(top) != 3 || top[0] != isa.FnADDU || top[1] != isa.FnSLL || top[2] != isa.FnOR {
		t.Fatalf("top: %v", top)
	}
	// Deterministic tie-break by code.
	counts = map[isa.Funct]uint64{isa.FnXOR: 5, isa.FnAND: 5}
	top = TopFuncts(counts, 2)
	if top[0] != isa.FnAND || top[1] != isa.FnXOR {
		t.Fatalf("tie-break: %v", top)
	}
}

func TestNewRecoderErrors(t *testing.T) {
	if _, err := NewRecoder(make([]isa.Funct, 9)); err == nil {
		t.Error("more than 8 top functs should error")
	}
	if _, err := NewRecoder([]isa.Funct{isa.FnADDU, isa.FnADDU}); err == nil {
		t.Error("duplicate functs should error")
	}
	if _, err := NewRecoder([]isa.Funct{isa.Funct(0x40)}); err == nil {
		t.Error("out-of-range funct should error")
	}
}

func TestRecoderBijection(t *testing.T) {
	r := testRecoder(t)
	seen := map[uint8]bool{}
	for fn := 0; fn < 64; fn++ {
		code := r.enc[fn]
		if code > 0x3f {
			t.Fatalf("funct %#x: encoding %#x out of range", fn, code)
		}
		if seen[code] {
			t.Fatalf("encoding %#x assigned twice", code)
		}
		seen[code] = true
		if r.dec[code] != uint8(fn) {
			t.Fatalf("decode table mismatch for funct %#x", fn)
		}
	}
}

func TestIsCompact(t *testing.T) {
	r := testRecoder(t)
	for _, fn := range DefaultTopFuncts() {
		if !r.IsCompact(fn) {
			t.Errorf("funct %s should be compact", isa.FunctName(fn))
		}
	}
	if r.IsCompact(isa.FnNOR) {
		t.Error("nor should not be compact")
	}
}

func TestProfileDrivenRecoderRoundTrip(t *testing.T) {
	// A recoder built from a different top-8 must also round-trip.
	r := MustNewRecoder([]isa.Funct{isa.FnAND, isa.FnNOR, isa.FnDIV})
	for _, raw := range validInstructions(2000, 3) {
		if got := r.Decode(r.Encode(raw)); got != raw {
			t.Fatalf("roundtrip %#08x failed with custom recoder", raw)
		}
	}
}
