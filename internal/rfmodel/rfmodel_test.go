package rfmodel

import (
	"math"
	"testing"
)

func TestLayoutValidate(t *testing.T) {
	if err := Baseline32().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Layout{Rows: 0, RowBits: 8}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero rows should be invalid")
	}
}

// §2.4: a byte bank costs about one quarter of the monolithic array per
// access.
func TestBankAccessIsQuarter(t *testing.T) {
	ratio := ByteBank().AccessEnergy() / Baseline32().AccessEnergy()
	if ratio < 0.23 || ratio > 0.30 {
		t.Fatalf("byte bank per-access ratio %.3f, expected ~0.25", ratio)
	}
}

// §2.4's worst case: even four serial accesses cost approximately the same
// as one monolithic access.
func TestWorstCaseApproximatelyEqual(t *testing.T) {
	r := WorstCaseRatio()
	if r < 0.95 || r > 1.25 {
		t.Fatalf("worst-case ratio %.3f, paper argues ~1", r)
	}
}

// With the measured operand distribution (Table 1: ~53% one byte, ~20% two,
// ~6% three-significant variants, rest four) the expected banked energy is
// roughly half the monolithic file — the mechanism behind Table 5's 47%
// register-read saving.
func TestExpectedRatioWithTable1Distribution(t *testing.T) {
	dist := [4]float64{0.53, 0.25, 0.08, 0.14}
	r := ExpectedRatio(dist)
	if r < 0.35 || r > 0.65 {
		t.Fatalf("expected ratio %.3f, want ~0.5", r)
	}
}

func TestHalfwordBankBetweenByteAndMono(t *testing.T) {
	b := ByteBank().AccessEnergy()
	h := HalfwordBank().AccessEnergy()
	m := Baseline32().AccessEnergy()
	if !(b < h && h < m) {
		t.Fatalf("ordering violated: %v %v %v", b, h, m)
	}
}

func TestExpectedRatioDegenerate(t *testing.T) {
	// All accesses full width: equals the worst case.
	if got, want := ExpectedRatio([4]float64{0, 0, 0, 1}), WorstCaseRatio(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("full-width dist %.4f != worst case %.4f", got, want)
	}
	// All accesses one byte: a quarter-ish.
	if got := ExpectedRatio([4]float64{1, 0, 0, 0}); got > 0.30 {
		t.Fatalf("single-byte dist %.4f, want ~0.25", got)
	}
}
