// Package rfmodel implements the paper's §2.4 register-file layout
// analysis. The paper argues that splitting the 32-entry × 32-bit register
// file into four 32 × 8-bit banks does not increase energy even when all
// four banks end up being accessed:
//
//	"The word line consumption of each single access is reduced by a
//	factor of about four, since every bank is about one fourth the width
//	... Bit line consumption is reduced by about four ... Sense amplifier
//	consumption is also reduced by a factor of four ... Thus, four
//	accesses result in approximately the same word line, bit line and
//	sense amplifier energy consumption as the 32-bit bank file."
//
// The model is the standard first-order SRAM access-energy decomposition
// (after Wada, Rajan & Przybylski's access-time model, the paper's [17]):
// per access, the energy splits into
//
//	word line:       ∝ bits per row (the wires driven across the row)
//	bit lines:       ∝ columns swung (bitline pairs precharged/discharged)
//	sense amplifiers: ∝ columns sensed
//	decoder:          ∝ log2(rows) (address predecode, small)
//
// all in arbitrary relative units (1 unit = one bit-column of a 32-entry
// array). Absolute calibration is circuit-level work the paper defers; the
// *ratios* are what §2.4 argues from and what the tests verify.
package rfmodel

import "fmt"

// Layout describes one register-file data-array organization.
type Layout struct {
	Name    string
	Rows    int // word lines (register count)
	RowBits int // bits per row (bank width)
}

// Validate reports malformed geometries.
func (l Layout) Validate() error {
	if l.Rows <= 0 || l.RowBits <= 0 {
		return fmt.Errorf("rfmodel: non-positive geometry %+v", l)
	}
	return nil
}

// AccessEnergy returns the relative energy of one read or write access to
// the array (all columns of one row).
func (l Layout) AccessEnergy() float64 {
	wordline := float64(l.RowBits)
	bitlines := float64(l.RowBits)
	sense := float64(l.RowBits)
	decoder := log2f(l.Rows)
	return wordline + bitlines + sense + decoder
}

func log2f(v int) float64 {
	n := 0.0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Baseline32 is the paper's monolithic file: 32 words of 32 bits.
func Baseline32() Layout { return Layout{Name: "32x32 monolithic", Rows: 32, RowBits: 32} }

// ByteBank is one of the four banks of the proposed pipelines: 32 words of
// 8 bits ("32 word lines of 8 bits each for the proposed pipelines", §2.4).
func ByteBank() Layout { return Layout{Name: "32x8 bank", Rows: 32, RowBits: 8} }

// HalfwordBank is the 16-bit bank of the halfword-granularity designs.
func HalfwordBank() Layout { return Layout{Name: "32x16 bank", Rows: 32, RowBits: 16} }

// WorstCaseRatio returns the energy of reading a full 32-bit value through
// n-byte banks (n accesses) relative to one monolithic access — the §2.4
// claim is that this ratio is ≈ 1 (slightly above, due to the per-access
// decoder overhead).
func WorstCaseRatio() float64 {
	return 4 * ByteBank().AccessEnergy() / Baseline32().AccessEnergy()
}

// ExpectedRatio returns the energy ratio for an operand with the given
// significant-byte distribution: dist[k] is the probability of needing k+1
// bytes (k = 0..3). This is where significance compression wins — most
// accesses touch one bank.
func ExpectedRatio(dist [4]float64) float64 {
	bank := ByteBank().AccessEnergy()
	mono := Baseline32().AccessEnergy()
	e := 0.0
	for k, p := range dist {
		e += p * float64(k+1) * bank
	}
	return e / mono
}
