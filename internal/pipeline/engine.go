// Package pipeline implements the paper's seven in-order timing models on
// one shared stage-scheduling engine:
//
//	Baseline32            conventional 32-bit 5-stage pipeline (§3)
//	ByteSerial            1-byte datapath, 3-byte I-cache (§4, Fig. 3)
//	HalfwordSerial        16-bit datapath variant (§4)
//	SemiParallel          3B fetch / 2B RF+ALU / 1B D-cache (§5, Fig. 5)
//	ParallelSkewed        4B datapath, byte-sliced EX stages (§6, Fig. 7)
//	ParallelCompressed    4B datapath, original 5 stages (§6, Fig. 9)
//	ParallelSkewedBypass  skewed plus forwarding/skip paths (§6)
//
// Shared conventions (§3 and DESIGN.md §5): in-order issue, no branch
// prediction — fetch stalls until a branch resolves in the ALU stage(s);
// J/JAL redirect at the end of decode; cache and TLB latencies from the
// paper's memory hierarchy; full forwarding where the design provides it.
//
// The engine is an analytical in-order scheduler: per instruction it
// computes the cycle each stage is entered subject to (a) stage occupancy
// of earlier instructions, (b) the no-passing rule (an instruction cannot
// overtake its predecessor in any stage), (c) operand readiness via the
// model's forwarding discipline, and (d) fetch blocking by unresolved
// control flow. Serial models stream blocks: a stage may start one cycle
// after its predecessor stage started (first byte flows ahead while later
// bytes are still being produced), which is the paper's byte pipelining
// ("while later sequential data bytes are being processed, earlier bytes
// can proceed up the pipeline", §4).
package pipeline

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// StallKind classifies lost cycles for the §5 bottleneck study.
type StallKind string

// Stall categories.
const (
	StallBranch    StallKind = "branch"       // fetch blocked on unresolved control flow
	StallICache    StallKind = "icache"       // instruction fetch misses
	StallDCache    StallKind = "dcache"       // data access misses
	StallData      StallKind = "data-hazard"  // operand not ready
	StallStructEX  StallKind = "struct-ex"    // EX stage busy (multi-cycle occupancy ahead)
	StallStructRF  StallKind = "struct-rf"    // RF/decode stage busy
	StallStructMEM StallKind = "struct-mem"   // MEM stage busy
	StallStructWB  StallKind = "struct-wb"    // WB stage busy
	StallStructIF  StallKind = "struct-if"    // fetch stage busy
	StallFetchBuf  StallKind = "fetch-buffer" // byte-fetch buffer full (frontend models)
)

// Result is the outcome of one model over one benchmark trace.
type Result struct {
	Model  string
	Insts  uint64
	Cycles uint64
	Stalls map[StallKind]uint64
}

// CPI returns cycles per instruction.
func (r Result) CPI() float64 {
	if r.Insts == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Insts)
}

// occFunc computes a stage's occupancy in cycles for one instruction.
type occFunc func(e trace.Event) int

// one is the unit-occupancy stage.
func one(trace.Event) int { return 1 }

// spec describes one pipeline model for the engine.
type spec struct {
	name   string
	stages []string
	occ    []occFunc

	// kind selects the batch-replay kernel mirroring this spec's closures
	// (see batch.go); kindGeneric (the zero value) makes ConsumeBlock fall
	// back to the scalar Consume path.
	kind int

	// lat gives per-stage extra latency cycles: the instruction spends the
	// extra cycles in the stage but does NOT hold it against the next
	// instruction. This models the parallel designs' banked stages, whose
	// second access phase (upper-byte banks, fourth instruction byte)
	// overlaps the successor's first phase (low-byte bank) without
	// conflict. nil entries mean zero.
	lat []occFunc

	// skip marks stages an instruction passes through combinationally
	// (zero cycles, no occupancy) — the skewed+bypass design's forwarding
	// paths that let short operands "skip the stages where no operation is
	// performed" (§6). nil entries mean never skipped.
	skip []func(e trace.Event) bool

	// exStage consumes register operands and resolves branches; memStage
	// holds the D-cache access; wbStage writes the register file.
	exStage, memStage, wbStage int

	// streaming: stage s+1 may start one cycle after stage s started
	// (byte/halfword pipelining). Non-streaming models hand the whole
	// word forward: stage s+1 starts after stage s completes.
	streaming bool

	// exSlices returns how many cycles after EX entry the full result is
	// available for forwarding (serial production). nil means the EX
	// occupancy is used.
	exSlices func(e trace.Event) int

	// branchResolve returns the cycle the fetch unblocks given the EX
	// entry cycle. nil means end of EX occupancy.
	branchResolve func(e trace.Event, exEnter, exEnd uint64) uint64

	// pcExtra adds serial PC-increment cycles to the fetch stage.
	pcExtra func(e trace.Event) int

	// frontend, when non-nil, replaces the whole scheduling core with the
	// byte-budgeted fetch engine (frontend.go): fetch bandwidth in bytes
	// per cycle, a capacity-bounded fetch buffer, and optional dual issue
	// of compressed instruction pairs.
	frontend *frontendSpec
}

// structKind maps a stage index to its structural stall bucket.
func (s *spec) structKind(stage int) StallKind {
	switch {
	case stage == 0:
		return StallStructIF
	case stage == s.exStage:
		return StallStructEX
	case stage == s.memStage:
		return StallStructMEM
	case stage == s.wbStage:
		return StallStructWB
	default:
		return StallStructRF
	}
}

// Model is a pipeline timing simulator consuming one benchmark's trace.
type Model struct {
	spec spec
	hier *mem.Hierarchy
	pred *predictor // nil in the paper's base machines
	// observer, when set, receives every scheduled instruction's stage
	// entry times (used by Timeline).
	observer func(e trace.Event, enter []uint64, occ []int, skip []bool)

	stageFree    []uint64
	prevEnter    []uint64
	fetchBlocked uint64
	// Register readiness for forwarding: First is when the first block can
	// be consumed by a streaming EX; Full is when the whole value exists.
	readyFirst [32]uint64
	readyFull  [32]uint64
	hiloFull   uint64

	insts  uint64
	cycles uint64
	stalls map[StallKind]uint64

	enter []uint64       // scratch
	batch *batchState    // ConsumeBlock scratch, built lazily
	fe    *frontendState // byte-fetch scheduler state (frontend models only)
}

func newModel(s spec) *Model {
	return &Model{
		spec:      s,
		hier:      mem.NewHierarchy(mem.DefaultHierarchyConfig()),
		stageFree: make([]uint64, len(s.stages)),
		prevEnter: make([]uint64, len(s.stages)),
		stalls:    make(map[StallKind]uint64),
		enter:     make([]uint64, len(s.stages)),
	}
}

// SetHierarchy replaces the model's memory system (for cache-geometry
// sensitivity studies). It must be called before the first Consume.
func (m *Model) SetHierarchy(cfg mem.HierarchyConfig) *Model {
	if m.insts != 0 {
		panic("pipeline: SetHierarchy after simulation started")
	}
	m.hier = mem.NewHierarchy(cfg)
	return m
}

// Name returns the model name.
func (m *Model) Name() string { return m.spec.name }

func (m *Model) stall(kind StallKind, cycles uint64) {
	if cycles > 0 {
		m.stalls[kind] += cycles
	}
}

// Consume implements trace.Consumer: schedules one instruction.
func (m *Model) Consume(e trace.Event) {
	if m.spec.frontend != nil {
		m.consumeFrontend(e)
		return
	}
	s := &m.spec
	n := len(s.stages)

	// Stage occupancies and extra latencies for this instruction.
	occ := make([]int, n)
	lat := make([]int, n)
	for i := range occ {
		occ[i] = s.occ[i](e)
		if occ[i] < 1 {
			occ[i] = 1
		}
		if s.lat != nil && s.lat[i] != nil {
			lat[i] = s.lat[i](e)
		}
	}
	if s.pcExtra != nil {
		occ[0] += s.pcExtra(e)
	}

	// Cache/TLB stalls. Fetch stalls extend the fetch occupancy; data
	// stalls extend MEM.
	icStall := m.hier.Fetch(e.PC)
	occ[0] += icStall
	m.stall(StallICache, uint64(icStall))
	dcStall := 0
	if e.MemWidth > 0 {
		dcStall = m.hier.Data(e.Addr, e.Inst.IsStore())
		occ[s.memStage] += dcStall
		m.stall(StallDCache, uint64(dcStall))
	}

	// Fetch entry: stage free, no passing, and control-flow blocking.
	enter := m.enter
	base := m.stageFree[0]
	if p := m.prevEnter[0] + 1; m.insts > 0 && p > base {
		base = p
	}
	if m.fetchBlocked > base {
		m.stall(StallBranch, m.fetchBlocked-base)
		base = m.fetchBlocked
	}
	enter[0] = base

	// stallIn[i] is the cache stall embedded in stage i's occupancy; even in
	// streaming mode no data leaves the stage before the miss is serviced.
	stallIn := make([]int, n)
	stallIn[0] = icStall
	stallIn[s.memStage] += dcStall

	skipped := make([]bool, n)
	prevAdvance := func(i int) uint64 {
		if skipped[i-1] {
			return enter[i-1] + uint64(lat[i-1])
		}
		if s.streaming {
			return enter[i-1] + 1 + uint64(stallIn[i-1]) + uint64(lat[i-1])
		}
		return enter[i-1] + uint64(occ[i-1]) + uint64(lat[i-1])
	}
	for i := 1; i < n; i++ {
		if s.skip != nil && s.skip[i] != nil && s.skip[i](e) {
			// Forwarded combinationally through this stage.
			skipped[i] = true
			enter[i] = prevAdvance(i)
			continue
		}
		t := prevAdvance(i)
		if m.stageFree[i] > t {
			m.stall(s.structKind(i), m.stageFree[i]-t)
			t = m.stageFree[i]
		}
		if p := m.prevEnter[i] + 1; m.insts > 0 && p > t {
			t = p
		}
		if i == s.exStage {
			if ready := m.operandReady(e); ready > t {
				m.stall(StallData, ready-t)
				t = ready
			}
		}
		enter[i] = t
	}

	// Occupy stages (skipped stages are not held).
	for i := 0; i < n; i++ {
		if !skipped[i] {
			m.stageFree[i] = enter[i] + uint64(occ[i])
		}
		m.prevEnter[i] = enter[i]
	}

	exEnter := enter[s.exStage]
	exEnd := exEnter + uint64(occ[s.exStage]) + uint64(lat[s.exStage])

	// Publish result readiness.
	if e.HasDest {
		var first, full uint64
		if e.Inst.IsLoad() {
			memEnd := enter[s.memStage] + uint64(occ[s.memStage]) + uint64(lat[s.memStage])
			first = enter[s.memStage] + uint64(dcStall) + 1
			full = memEnd
		} else {
			first = exEnter + 1
			slices := occ[s.exStage]
			if s.exSlices != nil {
				slices = s.exSlices(e)
			}
			full = exEnter + uint64(slices)
		}
		if full < first {
			full = first
		}
		m.readyFirst[e.Dest] = first
		m.readyFull[e.Dest] = full
	}
	if e.Inst.WritesHILO() {
		m.hiloFull = exEnd
	}

	// Control flow: conditional branches and register jumps resolve in EX;
	// J/JAL redirect after decode. With the optional predictor, correctly
	// predicted branches cost only the decode redirect (taken) or nothing
	// (not-taken); mispredictions block fetch until resolution.
	switch {
	case e.Inst.IsBranch():
		resolve := exEnd
		if s.branchResolve != nil {
			resolve = s.branchResolve(e, exEnter, exEnd)
		}
		if m.pred != nil {
			predicted := m.pred.predict(e.PC)
			m.pred.update(e.PC, predicted, e.Taken)
			switch {
			case predicted == e.Taken && !e.Taken:
				// Correct fall-through: fetch never stalled.
			case predicted == e.Taken:
				// Correct taken: BTB redirect at the end of decode.
				m.fetchBlocked = enter[1] + uint64(occ[1])
			default:
				m.fetchBlocked = resolve
			}
		} else {
			m.fetchBlocked = resolve
		}
	case e.Inst.Op == isa.OpSpecial && (e.Inst.Funct == isa.FnJR || e.Inst.Funct == isa.FnJALR):
		resolve := exEnd
		if s.branchResolve != nil {
			resolve = s.branchResolve(e, exEnter, exEnd)
		}
		m.fetchBlocked = resolve
	case e.Inst.Op == isa.OpJ || e.Inst.Op == isa.OpJAL:
		decodeEnd := enter[1] + uint64(occ[1])
		m.fetchBlocked = decodeEnd
	}

	end := enter[n-1] + uint64(occ[n-1]) + uint64(lat[n-1])
	if end > m.cycles {
		m.cycles = end
	}
	if m.observer != nil {
		m.observer(e, enter, occ, skipped)
	}
	m.insts++
}

// operandReady returns the earliest cycle the EX stage may start given the
// forwarding discipline and this instruction's register sources.
func (m *Model) operandReady(e trace.Event) uint64 {
	s := &m.spec
	var ready uint64
	use := func(r isa.Reg) {
		var t uint64
		if s.streaming {
			t = m.readyFirst[r]
		} else {
			t = m.readyFull[r]
		}
		// Register jumps need the complete address regardless.
		if e.Inst.IsJump() {
			t = m.readyFull[r]
		}
		if t > ready {
			ready = t
		}
	}
	if e.ReadsA {
		use(e.Inst.Rs)
	}
	if e.ReadsB {
		use(e.Inst.Rt)
	}
	if e.Inst.Op == isa.OpSpecial &&
		(e.Inst.Funct == isa.FnMFHI || e.Inst.Funct == isa.FnMFLO) {
		if m.hiloFull > ready {
			ready = m.hiloFull
		}
	}
	return ready
}

// Result returns the accumulated statistics.
func (m *Model) Result() Result {
	stalls := make(map[StallKind]uint64, len(m.stalls))
	for k, v := range m.stalls {
		stalls[k] = v
	}
	return Result{Model: m.spec.name, Insts: m.insts, Cycles: m.cycles, Stalls: stalls}
}
