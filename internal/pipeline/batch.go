// Batch consumption: trace.BatchConsumer implementation for the timing
// models.
//
// The scalar Consume path is the reference implementation: it materializes
// occupancy/latency slices per event, evaluates the spec's closures on a
// by-value Event, and tallies stalls in a map. Those per-event costs are
// what batch replay exists to remove, so ConsumeBlock runs the same
// scheduling algorithm against reusable scratch: per-model kernels compute
// each row's stage costs directly from the capture columns (packed sig word
// + a per-slot static table), stalls accumulate in a fixed array that is
// merged into the map once per block, and no Event is ever built on the
// fast path. The kernels mirror the spec closures in models.go exactly;
// TestConsumeBlockMatchesConsume pins the two paths cycle-for-cycle across
// every model and benchmark.
//
// Models without a kernel (the ablation alternates in alternates.go, or any
// model with a Timeline observer attached) fall back to EventAt + Consume,
// which is always correct.
package pipeline

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// Model kinds select the batch kernel; kindGeneric falls back to the scalar
// path. Set by the constructors in models.go.
const (
	kindGeneric = iota
	kindBaseline32
	kindByteSerial
	kindHalfSerial
	kindSemiParallel
	kindSkewed
	kindSkewedBypass
	kindCompressed
	kindByteFetch
)

// maxStages bounds the scratch arrays (semiparallel has six stages).
const maxStages = 6

// Stall-kind indices for array accumulation on the batch path.
const (
	stBranch = iota
	stICache
	stDCache
	stData
	stStructEX
	stStructRF
	stStructMEM
	stStructWB
	stStructIF
	stFetchBuf
	nStallKinds
)

// stallKinds maps the array indices back to the exported stall buckets.
var stallKinds = [nStallKinds]StallKind{
	StallBranch, StallICache, StallDCache, StallData,
	StallStructEX, StallStructRF, StallStructMEM, StallStructWB, StallStructIF,
	StallFetchBuf,
}

// structIdx is the array-index twin of spec.structKind.
func (s *spec) structIdx(stage int) uint8 {
	switch {
	case stage == 0:
		return stStructIF
	case stage == s.exStage:
		return stStructEX
	case stage == s.memStage:
		return stStructMEM
	case stage == s.wbStage:
		return stStructWB
	default:
		return stStructRF
	}
}

type slotFlags uint16

const (
	sfReadsA slotFlags = 1 << iota
	sfReadsB
	sfHasDest
	sfIsStore
	sfIsLoad
	sfIsMem
	sfWritesHILO
	sfIsBranch
	sfIsJReg   // JR/JALR: resolves in EX like a branch
	sfIsJDir   // J/JAL: redirects at the end of decode
	sfIsMFHILO // MFHI/MFLO: serialized on the HI/LO horizon
	sfIsJump   // any jump: operands must be complete (operandReady)
)

// slotInfo is the batch path's per-statics-slot digest of everything the
// scheduler needs that is static per instruction word, including the
// recoder-dependent fetch size of the current replay.
type slotInfo struct {
	flags    slotFlags
	dest     uint8
	rs, rt   uint8
	memWidth uint8
	ifb      uint8
	simm     uint32
}

// rowDyn carries one row's computed stage costs from the kernel to the
// scheduler. Entries a model's kernel never writes stay zero for the
// model's lifetime (a Model has exactly one kind).
type rowDyn struct {
	occ      [maxStages]int
	lat      [maxStages]int
	skipped  [maxStages]bool
	exSlices int // cycles after EX entry until the full result exists
	brDelta  int // >= 0: resolve at exEnter+brDelta; -1: at end of EX
	pc       uint32
	nextPC   uint32
	addr     uint32
	taken    bool
}

// batchState is the Model's reusable batch scratch.
type batchState struct {
	staticsID *trace.Static // identity of the table slots was built from
	ifbID     *uint8
	slots     []slotInfo
	structIdx [maxStages]uint8
	stalls    [nStallKinds]uint64
	d         rowDyn
}

func (m *Model) ensureBatch(blk *trace.Block) *batchState {
	bs := m.batch
	if bs == nil {
		bs = &batchState{}
		for i := range m.spec.stages {
			bs.structIdx[i] = m.spec.structIdx(i)
		}
		m.batch = bs
	}
	var sid *trace.Static
	if len(blk.Statics) > 0 {
		sid = &blk.Statics[0]
	}
	var iid *uint8
	if len(blk.IFB) > 0 {
		iid = &blk.IFB[0]
	}
	if bs.staticsID != sid || bs.ifbID != iid || len(bs.slots) != len(blk.Statics) {
		bs.buildSlots(blk)
		bs.staticsID, bs.ifbID = sid, iid
	}
	return bs
}

func (bs *batchState) buildSlots(blk *trace.Block) {
	if cap(bs.slots) < len(blk.Statics) {
		bs.slots = make([]slotInfo, len(blk.Statics))
	}
	bs.slots = bs.slots[:len(blk.Statics)]
	for i := range blk.Statics {
		st := &blk.Statics[i]
		in := st.Inst
		var fl slotFlags
		if st.ReadsA {
			fl |= sfReadsA
		}
		if st.ReadsB {
			fl |= sfReadsB
		}
		if st.HasDest {
			fl |= sfHasDest
		}
		if st.IsStore {
			fl |= sfIsStore
		}
		if in.IsLoad() {
			fl |= sfIsLoad
		}
		if st.MemWidth > 0 {
			fl |= sfIsMem
		}
		if in.WritesHILO() {
			fl |= sfWritesHILO
		}
		if in.IsBranch() {
			fl |= sfIsBranch
		}
		if in.IsJump() {
			fl |= sfIsJump
		}
		if in.Op == isa.OpSpecial {
			switch in.Funct {
			case isa.FnJR, isa.FnJALR:
				fl |= sfIsJReg
			case isa.FnMFHI, isa.FnMFLO:
				fl |= sfIsMFHILO
			}
		}
		if in.Op == isa.OpJ || in.Op == isa.OpJAL {
			fl |= sfIsJDir
		}
		bs.slots[i] = slotInfo{
			flags:    fl,
			dest:     uint8(st.Dest),
			rs:       uint8(in.Rs),
			rt:       uint8(in.Rt),
			memWidth: st.MemWidth,
			ifb:      blk.IFB[i],
			simm:     st.Simm,
		}
	}
}

// ConsumeBlock implements trace.BatchConsumer: schedules every row of the
// block, bit-identical to feeding the rows through Consume one by one.
func (m *Model) ConsumeBlock(blk *trace.Block) {
	if m.spec.kind == kindGeneric || m.observer != nil {
		// Reference fallback: reconstruct events and run the scalar path.
		var ev trace.Event
		for i := range blk.Slot {
			blk.EventAt(i, &ev)
			m.Consume(ev)
		}
		return
	}
	if m.spec.frontend != nil {
		m.consumeFrontendBlock(blk)
		return
	}
	bs := m.ensureBatch(blk)
	d := &bs.d
	n := len(blk.Slot)
	for i := 0; i < n; i++ {
		sw := blk.Slot[i]
		si := &bs.slots[sw&trace.SlotMask]
		d.pc = blk.PC[i]
		if i+1 < n {
			d.nextPC = blk.PC[i+1]
		} else {
			d.nextPC = blk.EndNextPC
		}
		d.taken = sw&trace.TakenBit != 0
		if si.flags&sfIsMem != 0 {
			d.addr = blk.SrcA[i] + si.simm
		}
		m.rowCosts(si, trace.PackedSig(blk.Sig[i]), d)
		m.stepRow(si, d, bs)
	}
	// Merge the block's stall tallies into the map once.
	for i, v := range bs.stalls {
		if v > 0 {
			m.stalls[stallKinds[i]] += v
			bs.stalls[i] = 0
		}
	}
}

// rowCosts fills d's stage costs for one row. Each case mirrors the spec
// closures of the corresponding constructor in models.go; keep them in
// lockstep (pinned by TestConsumeBlockMatchesConsume).
func (m *Model) rowCosts(si *slotInfo, sg trace.PackedSig, d *rowDyn) {
	switch m.spec.kind {
	case kindBaseline32:
		d.occ[0], d.occ[1], d.occ[2], d.occ[3], d.occ[4] = 1, 1, 1, 1, 1
		d.exSlices = 1
		d.brDelta = -1

	case kindByteSerial, kindHalfSerial:
		var msb, alu, mo, wb int
		if m.spec.kind == kindByteSerial {
			msb, alu = sg.MaxSrcBytes(), sg.ALUOps()
			mo, wb = sg.MemBytes(), sg.WBBytes()
		} else {
			msb, alu = sg.MaxSrcHalves(), sg.ALUHalfOps()
			mo, wb = sg.MemHalves(), sg.WBHalves()
		}
		if alu < 1 {
			alu = 1
		}
		ex := msb
		if alu > ex {
			ex = alu
		}
		occ0 := 1
		if si.ifb > 3 {
			occ0 = 2
		}
		g := 1
		if m.spec.kind == kindHalfSerial {
			g = 2
		}
		occ0 += pcCarry(d.pc, d.nextPC, g)
		if si.flags&sfIsMem == 0 || mo < 1 {
			mo = 1
		}
		if wb < 1 {
			wb = 1
		}
		d.occ[0], d.occ[1], d.occ[2], d.occ[3], d.occ[4] = occ0, 1, ex, mo, wb
		d.exSlices = ex
		d.brDelta = -1

	case kindSemiParallel:
		msb := sg.MaxSrcBytes()
		alu := sg.ALUOps()
		if alu < 1 {
			alu = 1
		}
		extraSrc := maxInt(1, msb/2)
		extraALU := maxInt(1, alu/2)
		occ0 := 1
		if si.ifb > 3 {
			occ0 = 2
		}
		occ0 += pcCarry(d.pc, d.nextPC, 1)
		mo := 1
		if si.flags&sfIsMem != 0 {
			if mb := sg.MemBytes(); mb > 1 {
				mo = mb
			}
		}
		d.occ[0], d.occ[1], d.occ[2] = occ0, 1, extraSrc
		d.occ[3] = maxInt(extraSrc, extraALU)
		d.occ[4] = mo
		d.occ[5] = maxInt(1, (sg.WBBytes()+1)/2)
		d.exSlices = (alu + 1) / 2
		d.brDelta = (msb + 1) / 2

	case kindSkewed, kindSkewedBypass:
		d.occ[0], d.occ[1], d.occ[2], d.occ[3], d.occ[4], d.occ[5] = 1, 1, 1, 1, 1, 1
		msb := sg.MaxSrcBytes()
		d.brDelta = msb
		if m.spec.kind == kindSkewedBypass {
			alu := sg.ALUOps()
			d.exSlices = maxInt(1, alu)
			d.skipped[3] = msb <= 1 && alu <= 1
		} else {
			d.exSlices = 4
		}

	case kindCompressed:
		occ0 := 1 + pcCarry(d.pc, d.nextPC, 1)
		d.occ[0], d.occ[1], d.occ[2], d.occ[3], d.occ[4] = occ0, 1, 1, 1, 1
		d.lat[0], d.lat[1], d.lat[3] = 0, 0, 0
		if si.ifb > 3 {
			d.lat[0] = 1
		}
		if sg.MaxSrcBytes() > 1 {
			d.lat[1] = 1
		}
		if si.flags&sfIsLoad != 0 && sg.MemBytes() > 1 {
			d.lat[3] = 1
		}
		d.exSlices = 1
		d.brDelta = -1
	}
}

// stepRow is the batch twin of Consume's scheduling core, operating on the
// precomputed row costs and slot digest instead of an Event, with array
// stall accounting. The algorithm is line-for-line the same; any change
// here must be made in Consume too (and vice versa).
func (m *Model) stepRow(si *slotInfo, d *rowDyn, bs *batchState) {
	s := &m.spec
	n := len(s.stages)

	icStall := m.hier.Fetch(d.pc)
	d.occ[0] += icStall
	if icStall > 0 {
		bs.stalls[stICache] += uint64(icStall)
	}
	dcStall := 0
	if si.flags&sfIsMem != 0 {
		dcStall = m.hier.Data(d.addr, si.flags&sfIsStore != 0)
		d.occ[s.memStage] += dcStall
		if dcStall > 0 {
			bs.stalls[stDCache] += uint64(dcStall)
		}
	}

	enter := m.enter
	base := m.stageFree[0]
	if p := m.prevEnter[0] + 1; m.insts > 0 && p > base {
		base = p
	}
	if m.fetchBlocked > base {
		bs.stalls[stBranch] += m.fetchBlocked - base
		base = m.fetchBlocked
	}
	enter[0] = base

	for i := 1; i < n; i++ {
		// prevAdvance with stallIn resolved inline: the embedded cache
		// stall of stage i-1 is icStall for fetch, dcStall for MEM.
		prev := i - 1
		var t uint64
		switch {
		case d.skipped[prev]:
			t = enter[prev] + uint64(d.lat[prev])
		case s.streaming:
			sin := 0
			if prev == 0 {
				sin = icStall
			} else if prev == s.memStage {
				sin = dcStall
			}
			t = enter[prev] + 1 + uint64(sin) + uint64(d.lat[prev])
		default:
			t = enter[prev] + uint64(d.occ[prev]) + uint64(d.lat[prev])
		}
		if d.skipped[i] {
			enter[i] = t
			continue
		}
		if m.stageFree[i] > t {
			bs.stalls[bs.structIdx[i]] += m.stageFree[i] - t
			t = m.stageFree[i]
		}
		if p := m.prevEnter[i] + 1; m.insts > 0 && p > t {
			t = p
		}
		if i == s.exStage {
			if ready := m.operandReadySlot(si); ready > t {
				bs.stalls[stData] += ready - t
				t = ready
			}
		}
		enter[i] = t
	}

	for i := 0; i < n; i++ {
		if !d.skipped[i] {
			m.stageFree[i] = enter[i] + uint64(d.occ[i])
		}
		m.prevEnter[i] = enter[i]
	}

	exEnter := enter[s.exStage]
	exEnd := exEnter + uint64(d.occ[s.exStage]) + uint64(d.lat[s.exStage])

	if si.flags&sfHasDest != 0 {
		var first, full uint64
		if si.flags&sfIsLoad != 0 {
			memEnd := enter[s.memStage] + uint64(d.occ[s.memStage]) + uint64(d.lat[s.memStage])
			first = enter[s.memStage] + uint64(dcStall) + 1
			full = memEnd
		} else {
			first = exEnter + 1
			full = exEnter + uint64(d.exSlices)
		}
		if full < first {
			full = first
		}
		m.readyFirst[si.dest] = first
		m.readyFull[si.dest] = full
	}
	if si.flags&sfWritesHILO != 0 {
		m.hiloFull = exEnd
	}

	switch {
	case si.flags&sfIsBranch != 0:
		resolve := exEnd
		if d.brDelta >= 0 {
			resolve = exEnter + uint64(d.brDelta)
		}
		if m.pred != nil {
			predicted := m.pred.predict(d.pc)
			m.pred.update(d.pc, predicted, d.taken)
			switch {
			case predicted == d.taken && !d.taken:
				// Correct fall-through: fetch never stalled.
			case predicted == d.taken:
				m.fetchBlocked = enter[1] + uint64(d.occ[1])
			default:
				m.fetchBlocked = resolve
			}
		} else {
			m.fetchBlocked = resolve
		}
	case si.flags&sfIsJReg != 0:
		resolve := exEnd
		if d.brDelta >= 0 {
			resolve = exEnter + uint64(d.brDelta)
		}
		m.fetchBlocked = resolve
	case si.flags&sfIsJDir != 0:
		m.fetchBlocked = enter[1] + uint64(d.occ[1])
	}

	end := enter[n-1] + uint64(d.occ[n-1]) + uint64(d.lat[n-1])
	if end > m.cycles {
		m.cycles = end
	}
	m.insts++
}

// operandReadySlot is operandReady over the slot digest.
func (m *Model) operandReadySlot(si *slotInfo) uint64 {
	var ready uint64
	full := !m.spec.streaming || si.flags&sfIsJump != 0
	use := func(r uint8) {
		var t uint64
		if full {
			t = m.readyFull[r]
		} else {
			t = m.readyFirst[r]
		}
		if t > ready {
			ready = t
		}
	}
	if si.flags&sfReadsA != 0 {
		use(si.rs)
	}
	if si.flags&sfReadsB != 0 {
		use(si.rt)
	}
	if si.flags&sfIsMFHILO != 0 && m.hiloFull > ready {
		ready = m.hiloFull
	}
	return ready
}
