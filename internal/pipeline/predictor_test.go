package pipeline

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
)

func TestPredictorCounters(t *testing.T) {
	var p predictor
	pc := uint32(0x400100)
	if p.predict(pc) {
		t.Fatal("cold counters should predict not-taken")
	}
	// Train taken twice: prediction flips.
	p.update(pc, p.predict(pc), true)
	p.update(pc, p.predict(pc), true)
	if !p.predict(pc) {
		t.Fatal("trained counter should predict taken")
	}
	// One not-taken does not flip a saturated counter pair immediately.
	p.update(pc, p.predict(pc), true) // saturate at 3
	p.update(pc, p.predict(pc), false)
	if !p.predict(pc) {
		t.Fatal("single not-taken should not flip a saturated counter")
	}
}

func TestPredictorAccuracyStats(t *testing.T) {
	var p predictor
	pc := uint32(0x400000)
	for i := 0; i < 100; i++ {
		p.update(pc, p.predict(pc), true)
	}
	if p.Lookups != 100 {
		t.Fatalf("lookups: %d", p.Lookups)
	}
	if acc := p.Accuracy(); acc < 0.95 {
		t.Fatalf("accuracy on monotone branch: %.2f", acc)
	}
}

// A loop branch (taken N-1 of N times) is nearly free with prediction and
// expensive without.
func TestPredictionRemovesLoopBranchCost(t *testing.T) {
	stream := func() []cpu.Exec {
		var execs []cpu.Exec
		for i := 0; i < 5000; i++ {
			pc := uint32(0x0040_0000)
			for j := 0; j < 4; j++ {
				execs = append(execs, aluExec(pc, isa.RegT2, 1, 2))
				pc += 4
			}
			execs = append(execs, branchExec(pc, 0, 0, true)) // back edge
		}
		return execs
	}
	base := NewBaseline32()
	for _, e := range stream() {
		base.Consume(annotate(e))
	}
	pred := NewPredicted(NameBaseline32)
	for _, e := range stream() {
		pred.Consume(annotate(e))
	}
	noBP, withBP := base.Result().CPI(), pred.Result().CPI()
	if withBP >= noBP {
		t.Fatalf("prediction did not help: %.3f vs %.3f", withBP, noBP)
	}
	// The taken back edge costs 2 bubbles in 5 instructions without
	// prediction (~+0.4 CPI); with a trained predictor the redirect happens
	// at decode (~+0.2).
	if noBP-withBP < 0.15 {
		t.Fatalf("prediction benefit too small: %.3f vs %.3f", withBP, noBP)
	}
	if acc := pred.PredictorAccuracy(); acc < 0.9 {
		t.Fatalf("loop branch accuracy %.2f", acc)
	}
}

func TestNewPredictedNames(t *testing.T) {
	m := NewPredicted(NameByteSerial)
	if m == nil || m.Name() != NameByteSerial+"+bp" {
		t.Fatalf("name: %v", m)
	}
	if NewPredicted("nope") != nil {
		t.Fatal("unknown base model should return nil")
	}
	if NewBaseline32().PredictorAccuracy() != 0 {
		t.Fatal("unpredicted model should report zero accuracy")
	}
}
