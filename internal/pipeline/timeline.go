package pipeline

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Timeline records per-instruction stage entry times and renders the
// classic textbook pipeline diagram — the debugging view for understanding
// where a design's cycles go. Attach it to a model before simulation:
//
//	m := pipeline.NewByteSerial()
//	tl := pipeline.NewTimeline(m, 40)
//	... feed events ...
//	fmt.Print(tl.Render())
type Timeline struct {
	model *Model
	limit int
	rows  []timelineRow
}

type timelineRow struct {
	disasm string
	enter  []uint64
	occ    []int
	skip   []bool
}

// NewTimeline attaches a recorder for the first limit instructions.
func NewTimeline(m *Model, limit int) *Timeline {
	tl := &Timeline{model: m, limit: limit}
	m.observer = tl.observe
	return tl
}

func (tl *Timeline) observe(e trace.Event, enter []uint64, occ []int, skip []bool) {
	if len(tl.rows) >= tl.limit {
		return
	}
	row := timelineRow{
		disasm: e.Inst.Disassemble(e.PC),
		enter:  append([]uint64(nil), enter...),
		occ:    append([]int(nil), occ...),
		skip:   append([]bool(nil), skip...),
	}
	tl.rows = append(tl.rows, row)
}

// Len reports how many instructions were recorded.
func (tl *Timeline) Len() int { return len(tl.rows) }

// Render draws the pipeline diagram: one row per instruction, one column
// per cycle, cells holding the stage mnemonic occupying that cycle
// (lower-cased beyond the first cycle of a multi-cycle occupancy).
func (tl *Timeline) Render() string {
	if len(tl.rows) == 0 {
		return "(no instructions recorded)\n"
	}
	names := tl.model.spec.stages
	first := tl.rows[0].enter[0]
	last := first
	for _, r := range tl.rows {
		end := r.enter[len(r.enter)-1] + uint64(r.occ[len(r.occ)-1])
		if end > last {
			last = end
		}
	}
	width := int(last - first)
	if width > 2000 {
		width = 2000 // sanity bound for pathological requests
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s cycle %d..%d (%s)\n", "instruction", first, last, tl.model.Name())
	for _, r := range tl.rows {
		cells := make([]string, width+1)
		for s := range names {
			if r.skip != nil && s < len(r.skip) && r.skip[s] {
				continue
			}
			for k := 0; k < r.occ[s]; k++ {
				idx := int(r.enter[s]-first) + k
				if idx < 0 || idx >= len(cells) {
					continue
				}
				label := names[s]
				if k > 0 {
					label = strings.ToLower(label)
				}
				if cells[idx] != "" {
					label = cells[idx] + "/" + label
				}
				cells[idx] = label
			}
		}
		d := r.disasm
		if len(d) > 26 {
			d = d[:26]
		}
		fmt.Fprintf(&sb, "%-28s", d)
		for _, c := range cells {
			if c == "" {
				c = "."
			}
			fmt.Fprintf(&sb, "%-4s", abbrev(c))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// abbrev shortens stage labels to at most three characters for the grid.
func abbrev(s string) string {
	if len(s) <= 3 {
		return s
	}
	return s[:3]
}
