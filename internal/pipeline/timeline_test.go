package pipeline

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
)

func TestTimelineRecordsAndRenders(t *testing.T) {
	m := NewBaseline32()
	tl := NewTimeline(m, 5)
	for _, e := range loopStream(8, func(i int, pc uint32) cpu.Exec {
		return aluExec(pc, isa.RegT2, 1, 2)
	}) {
		m.Consume(annotate(e))
	}
	if tl.Len() != 5 {
		t.Fatalf("recorded %d rows, want 5 (limit)", tl.Len())
	}
	out := tl.Render()
	if !strings.Contains(out, "addu") {
		t.Fatalf("render missing disassembly:\n%s", out)
	}
	if !strings.Contains(out, "IF") || !strings.Contains(out, "WB") {
		t.Fatalf("render missing stages:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + 5 rows
		t.Fatalf("lines: %d\n%s", len(lines), out)
	}
}

func TestTimelineMultiCycleStageLowercased(t *testing.T) {
	m := NewByteSerial()
	tl := NewTimeline(m, 3)
	for _, e := range loopStream(3, func(i int, pc uint32) cpu.Exec {
		return aluExec(pc, isa.RegT2, 0x12345678, 0x01020304) // 4 EX cycles
	}) {
		m.Consume(annotate(e))
	}
	out := tl.Render()
	if !strings.Contains(out, "ex") {
		t.Fatalf("expected lower-case continuation cells for serial EX:\n%s", out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	tl := NewTimeline(NewBaseline32(), 4)
	if !strings.Contains(tl.Render(), "no instructions") {
		t.Fatal("empty render should say so")
	}
}
