package pipeline

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/trace"
)

// byteFetchTestNames are the registered byte-fetch models.
var byteFetchTestNames = []string{
	NameByteFetch2, NameByteFetch3, NameByteFetch4, NameByteFetch4Raw, NameDualCompress4,
}

// TestByteFetchRawMatchesBaseline32 is the tentpole equivalence anchor:
// ByteFetch(4) with recoding disabled must reproduce the word-fetch
// baseline cycle-for-cycle — cycles, instruction count, and every stall
// bucket — on every benchmark of the suite.
func TestByteFetchRawMatchesBaseline32(t *testing.T) {
	ctx := context.Background()
	for _, b := range bench.All() {
		cp, err := trace.CaptureRun(ctx, b)
		if err != nil {
			t.Fatalf("capture %s: %v", b.Name, err)
		}
		base := NewBaseline32()
		raw := New(NameByteFetch4Raw)
		if err := cp.ReplayBlocks(ctx, testRecoder, base, raw); err != nil {
			t.Fatalf("replay %s: %v", b.Name, err)
		}
		rb, rr := base.Result(), raw.Result()
		if rb.Cycles != rr.Cycles || rb.Insts != rr.Insts {
			t.Errorf("%s: baseline %d cycles / %d insts, bytefetch4-raw %d cycles / %d insts",
				b.Name, rb.Cycles, rb.Insts, rr.Cycles, rr.Insts)
		}
		if !reflect.DeepEqual(rb.Stalls, rr.Stalls) {
			t.Errorf("%s: stall breakdown diverges\nbaseline: %v\nraw:      %v",
				b.Name, rb.Stalls, rr.Stalls)
		}
	}
}

// TestByteFetchLiveReplayBatchIdentical pins, for every byte-fetch model,
// the three execution paths against each other: live interpretation, scalar
// capture replay, and column-block batch replay must produce the same
// Result.
func TestByteFetchLiveReplayBatchIdentical(t *testing.T) {
	ctx := context.Background()
	b, _ := bench.ByName("g711dec")
	cp := captureBench(t, "g711dec")
	for _, name := range byteFetchTestNames {
		live, scalar, batch := New(name), New(name), New(name)
		c, err := b.NewCPU()
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.RunOn(c, b, testRecoder, live); err != nil {
			t.Fatalf("%s live: %v", name, err)
		}
		if err := cp.ReplayOn(ctx, nil, testRecoder, scalar); err != nil {
			t.Fatalf("%s scalar replay: %v", name, err)
		}
		if err := cp.ReplayBlocks(ctx, testRecoder, batch); err != nil {
			t.Fatalf("%s batch replay: %v", name, err)
		}
		rl, rs, rb := live.Result(), scalar.Result(), batch.Result()
		if !reflect.DeepEqual(rl, rs) || !reflect.DeepEqual(rs, rb) {
			t.Errorf("%s: paths diverge\nlive:   %+v\nscalar: %+v\nbatch:  %+v", name, rl, rs, rb)
		}
		fl, fs, fb := live.FetchUnit(), scalar.FetchUnit(), batch.FetchUnit()
		if !reflect.DeepEqual(fl, fs) || !reflect.DeepEqual(fs, fb) {
			t.Errorf("%s: frontend stats diverge\nlive:   %+v\nscalar: %+v\nbatch:  %+v", name, fl, fs, fb)
		}
	}
}

// storeExec builds a sw t1, 0(t0).
func storeExec(pc uint32, addr, val uint32) cpu.Exec {
	raw := isa.EncodeI(isa.OpSW, isa.RegT0, isa.RegT1, 0)
	return cpu.Exec{
		PC: pc, Raw: raw, Inst: isa.Decode(raw),
		SrcA: addr, SrcB: val, ReadsA: true, ReadsB: true,
		Addr: addr, MemWidth: 4,
		NextPC: pc + 4,
	}
}

// randomFrontendTrace builds a seeded random instruction stream exercising
// every frontend path: mixed 3/4-byte recodings, dependent ALU chains,
// loads, stores, and taken/not-taken branches.
func randomFrontendTrace(seed int64, n int) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	regs := []isa.Reg{isa.RegT2, isa.RegT3, isa.RegT4, isa.RegT5}
	events := make([]trace.Event, 0, n)
	pc := uint32(0x0040_0000)
	for i := 0; i < n; i++ {
		var e cpu.Exec
		switch r := rng.Intn(10); {
		case r < 5: // ALU, sometimes consuming a recent destination
			e = aluExec(pc, regs[rng.Intn(len(regs))], rng.Uint32(), rng.Uint32())
			e.Inst.Rs = regs[rng.Intn(len(regs))]
			e.Inst.Rt = regs[rng.Intn(len(regs))]
		case r < 7:
			e = loadExec(pc, regs[rng.Intn(len(regs))], 0x1000_0000+uint32(rng.Intn(64))*4, rng.Uint32())
		case r < 8:
			e = storeExec(pc, 0x1000_0000+uint32(rng.Intn(64))*4, rng.Uint32())
		default:
			e = branchExec(pc, 0, uint32(rng.Intn(2)), rng.Intn(3) == 0)
		}
		pc = e.NextPC
		if pc >= 0x0040_0400 || pc < 0x0040_0000 {
			pc = 0x0040_0000
		}
		ev := annotate(e)
		// Override the recoded size with a seeded mix so the compressed
		// share is controlled by the trace, not the recoder.
		ev.IFBytes = 3
		if rng.Intn(4) == 0 {
			ev.IFBytes = 4
		}
		events = append(events, ev)
	}
	return events
}

// TestFetchBufferProperties checks the fetch-buffer invariants across
// seeded random traces and every configured bandwidth: occupancy never
// exceeds the capacity, and per-cycle decode issue never exceeds the
// model's issue width (1, or 2 when dual-issue pairs).
func TestFetchBufferProperties(t *testing.T) {
	widths := []int{1, 2, 3, 4, 6, 8}
	for seed := int64(1); seed <= 5; seed++ {
		events := randomFrontendTrace(seed, 3000)
		for _, w := range widths {
			for _, dual := range []bool{false, true} {
				m := NewByteFetch(w, dual, false)
				for _, ev := range events {
					m.Consume(ev)
				}
				fu := m.FetchUnit()
				r := m.Result()
				if fu.MaxOccupancy > uint64(fu.BufferBytes) {
					t.Fatalf("seed %d %s: buffer occupancy %d exceeds capacity %d",
						seed, m.Name(), fu.MaxOccupancy, fu.BufferBytes)
				}
				if !dual {
					if fu.DualIssued != 0 || fu.IssueCycles != r.Insts {
						t.Fatalf("seed %d %s: single-issue frontend issued %d pairs over %d cycles for %d insts",
							seed, m.Name(), fu.DualIssued, fu.IssueCycles, r.Insts)
					}
				} else {
					if fu.IssueCycles+fu.DualIssued != r.Insts {
						t.Fatalf("seed %d %s: issue accounting broken: %d cycles + %d pairs != %d insts",
							seed, m.Name(), fu.IssueCycles, fu.DualIssued, r.Insts)
					}
					if fu.DualIssued > fu.IssueCycles {
						t.Fatalf("seed %d %s: more pairs (%d) than issue cycles (%d): >2 per cycle",
							seed, m.Name(), fu.DualIssued, fu.IssueCycles)
					}
				}
				if ipc := fu.IntoDecodeIPC(r.Insts); ipc > 2.0 {
					t.Fatalf("seed %d %s: into-decode IPC %.3f exceeds the decode width", seed, m.Name(), ipc)
				}
			}
		}
	}
}

// TestFetchBufferDrainsMonotonically: more fetch bandwidth never costs
// cycles — the same trace through increasing byte budgets yields
// non-increasing total cycles, and dual issue never loses to single issue
// at the same budget.
func TestFetchBufferDrainsMonotonically(t *testing.T) {
	widths := []int{1, 2, 3, 4, 6, 8}
	for seed := int64(1); seed <= 5; seed++ {
		events := randomFrontendTrace(seed, 3000)
		run := func(w int, dual bool) uint64 {
			m := NewByteFetch(w, dual, false)
			for _, ev := range events {
				m.Consume(ev)
			}
			return m.Result().Cycles
		}
		prev := uint64(1<<63 - 1)
		for _, w := range widths {
			c := run(w, false)
			if c > prev {
				t.Fatalf("seed %d: cycles increased with bandwidth: %d B/cyc -> %d cycles (prev %d)",
					seed, w, c, prev)
			}
			prev = c
		}
		if single, dual := run(4, false), run(4, true); dual > single {
			t.Fatalf("seed %d: dual issue costs cycles: %d vs single %d", seed, dual, single)
		}
	}
}

// TestByteFetchBackpressure: a fetch path wider than the decode drain rate
// must fill the buffer and charge fetch-buffer stalls rather than fetching
// unboundedly ahead.
func TestByteFetchBackpressure(t *testing.T) {
	m := NewByteFetch(8, false, true) // 8 B/cycle raw: fetches 2 insts/cycle, decode drains 1
	for _, e := range loopStream(2000, func(i int, pc uint32) cpu.Exec {
		return aluExec(pc, isa.RegT2, 1, 2)
	}) {
		m.Consume(annotate(e))
	}
	fu := m.FetchUnit()
	if fu.BufferStalls == 0 {
		t.Fatal("wide fetch into a 1-inst/cycle decode produced no buffer backpressure")
	}
	if fu.MaxOccupancy < uint64(fu.BufferBytes)-4 {
		t.Fatalf("buffer never approached capacity: max occupancy %d of %d", fu.MaxOccupancy, fu.BufferBytes)
	}
	if r := m.Result(); r.Stalls[StallFetchBuf] != fu.BufferStalls {
		t.Fatalf("stall map (%d) and frontend stats (%d) disagree on buffer stalls",
			r.Stalls[StallFetchBuf], fu.BufferStalls)
	}
}

// TestDualIssueCompressedStream: an all-compressed independent ALU stream
// at 4 B/cycle sustains more than one instruction into decode per issue
// cycle — the DRiM effect the model family exists to measure.
func TestDualIssueCompressedStream(t *testing.T) {
	m := NewByteFetch(4, true, false)
	for _, e := range loopStream(4000, func(i int, pc uint32) cpu.Exec {
		// Independent ALU ops with distinct destinations so no intra-pair
		// RAW dependence blocks pairing.
		return aluExec(pc, []isa.Reg{isa.RegT2, isa.RegT3}[i%2], 1, 2)
	}) {
		ev := annotate(e)
		ev.IFBytes = 3
		m.Consume(ev)
	}
	fu := m.FetchUnit()
	r := m.Result()
	if fu.DualIssued == 0 {
		t.Fatal("compressed stream at 4 B/cycle never dual-issued")
	}
	if ipc := fu.IntoDecodeIPC(r.Insts); ipc <= 1.0 {
		t.Fatalf("into-decode IPC %.3f, want > 1.0 on an all-compressed stream", ipc)
	}
}

// TestDualIssuePairingExclusions: intra-pair RAW dependences and
// memory-operation pairs must not dual-issue.
func TestDualIssuePairingExclusions(t *testing.T) {
	run := func(gen func(i int, pc uint32) cpu.Exec) *FetchUnitStats {
		m := NewByteFetch(4, true, false)
		for _, e := range loopStream(2000, gen) {
			ev := annotate(e)
			ev.IFBytes = 3
			m.Consume(ev)
		}
		return m.FetchUnit()
	}
	// A dependent chain: every instruction reads the previous destination.
	chain := run(func(i int, pc uint32) cpu.Exec {
		e := aluExec(pc, isa.RegT2, 1, 2)
		e.Inst.Rs, e.Inst.Rt = isa.RegT2, isa.RegT2
		return e
	})
	if chain.DualIssued != 0 {
		t.Fatalf("RAW-dependent chain dual-issued %d pairs", chain.DualIssued)
	}
	// Back-to-back memory operations: the single MEM port forbids pairing.
	mem := run(func(i int, pc uint32) cpu.Exec {
		return loadExec(pc, []isa.Reg{isa.RegT2, isa.RegT3}[i%2], 0x1000_0000+uint32(i%16)*4, 7)
	})
	if mem.DualIssued != 0 {
		t.Fatalf("back-to-back memory ops dual-issued %d pairs", mem.DualIssued)
	}
}

// TestModelRegistryConsistency pins the single-source-of-truth contract:
// every advertised name constructs a model with that exact name, the
// catalog has no duplicates, and the parameterized byte-fetch spellings
// resolve to correctly named models.
func TestModelRegistryConsistency(t *testing.T) {
	seen := make(map[string]bool)
	for _, n := range AllNames() {
		if seen[n] {
			t.Fatalf("duplicate model name %q in registry", n)
		}
		seen[n] = true
		m := New(n)
		if m == nil {
			t.Fatalf("advertised model %q does not construct", n)
		}
		if m.Name() != n {
			t.Fatalf("New(%q).Name() = %q", n, m.Name())
		}
	}
	for _, n := range []string{"bytefetch6", "bytefetch8-raw", "dualc8", "dualc6-raw"} {
		m := New(n)
		if m == nil || m.Name() != n {
			t.Fatalf("parameterized spelling %q did not resolve", n)
		}
	}
	for _, bad := range []string{"bytefetch0", "bytefetch65", "dualc", "bytefetch4x", "bytefetch04"} {
		if New(bad) != nil {
			t.Fatalf("invalid spelling %q resolved to a model", bad)
		}
	}
}

// TestByteFetchNarrowerIsSlower: at full 4-byte instructions (raw), a
// narrower fetch path must cost CPI — the family orders correctly.
func TestByteFetchNarrowerIsSlower(t *testing.T) {
	cp := captureBench(t, "rawdaudio")
	ctx := context.Background()
	cycles := make(map[int]uint64)
	for _, w := range []int{1, 2, 4} {
		m := NewByteFetch(w, false, true)
		if err := cp.ReplayBlocks(ctx, testRecoder, m); err != nil {
			t.Fatal(err)
		}
		cycles[w] = m.Result().Cycles
	}
	if !(cycles[1] > cycles[2] && cycles[2] > cycles[4]) {
		t.Fatalf("raw byte-fetch family out of order: %v", cycles)
	}
}

// TestByteFetchCompressionBuysBandwidth: with recoding on, a 3 B/cycle path
// beats the raw 3 B/cycle path (compressed instructions need fewer fetch
// cycles), and bytefetch4 never loses to bytefetch4-raw.
func TestByteFetchCompressionBuysBandwidth(t *testing.T) {
	cp := captureBench(t, "g711dec")
	ctx := context.Background()
	run := func(name string) uint64 {
		m := New(name)
		if err := cp.ReplayBlocks(ctx, testRecoder, m); err != nil {
			t.Fatal(err)
		}
		return m.Result().Cycles
	}
	if comp, raw := run("bytefetch3"), run("bytefetch3-raw"); comp >= raw {
		t.Fatalf("recoding bought nothing at 3 B/cycle: compressed %d vs raw %d cycles", comp, raw)
	}
	if comp, raw := run(NameByteFetch4), run(NameByteFetch4Raw); comp > raw {
		t.Fatalf("recoding costs cycles at 4 B/cycle: compressed %d vs raw %d", comp, raw)
	}
}

func ExampleNewByteFetch() {
	m := NewByteFetch(4, true, false)
	fmt.Println(m.Name())
	// Output: dualc4
}
