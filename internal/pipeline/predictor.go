package pipeline

// The paper's machines use no branch prediction ("this is in keeping with
// some very low power embedded processors, although the trend is toward
// implementing branch prediction. The implications of branch prediction
// will be the subject of future study", §3). This file implements that
// future study as an optional extension: a classic bimodal predictor (2-bit
// saturating counters indexed by PC) with an implied branch target buffer,
// attachable to any of the seven pipeline models.
//
// With prediction enabled, a correctly predicted not-taken branch costs
// nothing; a correctly predicted taken branch redirects at the end of
// decode (BTB hit); a misprediction blocks fetch until the branch resolves,
// exactly as every branch does in the paper's base machines. Register
// jumps (JR/JALR) still resolve in EX — no return-address stack is
// modelled.

// predictorEntries is the counter-table size (direct-mapped by word PC).
const predictorEntries = 512

type predictor struct {
	counters [predictorEntries]uint8 // 2-bit saturating, initialized weakly not-taken
	// statistics
	Lookups uint64
	Hits    uint64
}

func (p *predictor) index(pc uint32) uint32 {
	return (pc >> 2) & (predictorEntries - 1)
}

// predict returns the taken/not-taken guess for the branch at pc.
func (p *predictor) predict(pc uint32) bool {
	return p.counters[p.index(pc)] >= 2
}

// update trains the counter with the actual outcome and records accuracy.
func (p *predictor) update(pc uint32, predicted, taken bool) {
	p.Lookups++
	if predicted == taken {
		p.Hits++
	}
	i := p.index(pc)
	if taken {
		if p.counters[i] < 3 {
			p.counters[i]++
		}
	} else if p.counters[i] > 0 {
		p.counters[i]--
	}
}

// Accuracy returns the fraction of correct predictions (0 when unused).
func (p *predictor) Accuracy() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Hits) / float64(p.Lookups)
}

// WithPrediction equips a model with the bimodal predictor and returns it.
// The model's name gains a "+bp" suffix.
func WithPrediction(m *Model) *Model {
	m.pred = &predictor{}
	m.spec.name += "+bp"
	return m
}

// NewPredicted builds the named model with branch prediction attached.
func NewPredicted(name string) *Model {
	m := New(name)
	if m == nil {
		return nil
	}
	return WithPrediction(m)
}

// PredictorAccuracy reports the attached predictor's accuracy (0 if none).
func (m *Model) PredictorAccuracy() float64 {
	if m.pred == nil {
		return 0
	}
	return m.pred.Accuracy()
}
