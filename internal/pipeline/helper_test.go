package pipeline

import "repro/internal/mem"

// memDefaultConfigSmall returns a 2 KB split-L1 hierarchy for tests.
func memDefaultConfigSmall() mem.HierarchyConfig {
	cfg := mem.DefaultHierarchyConfig()
	cfg.L1I.Size = 2 << 10
	cfg.L1D.Size = 2 << 10
	return cfg
}
