package pipeline

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/icomp"
	"repro/internal/trace"
)

// batchTestBenches are small suite members covering loads, stores, branches,
// register jumps, and mult/div — every scheduling path in the engine.
var batchTestBenches = []string{"dijkstra", "g711dec", "rawdaudio"}

func captureBench(t *testing.T, name string) *trace.Capture {
	t.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	cp, err := trace.CaptureRun(context.Background(), b)
	if err != nil {
		t.Fatalf("capture %s: %v", name, err)
	}
	return cp
}

// batchTestModels builds every model variant twice (one for each replay
// path): the seven paper models, the two ablation alternates (which take the
// generic fallback), and the predicted variants (which exercise the
// predictor state machine on the fast path).
func batchTestModels() map[string]func() *Model {
	ctors := map[string]func() *Model{
		NameCompressedOccupancy: NewParallelCompressedOccupancy,
		NameSkewedLateBranch:    NewParallelSkewedLateBranch,
	}
	for _, name := range AllNames() {
		name := name
		ctors[name] = func() *Model { return New(name) }
		ctors[name+"+bp"] = func() *Model { return NewPredicted(name) }
	}
	return ctors
}

// TestConsumeBlockMatchesConsume pins the batch kernels to the scalar
// reference: for every model variant and benchmark, replaying through
// ConsumeBlock must produce exactly the same Result (cycles, instruction
// count, and every stall bucket) as the event-at-a-time Consume path.
func TestConsumeBlockMatchesConsume(t *testing.T) {
	ctx := context.Background()
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	ctors := batchTestModels()
	for _, bn := range batchTestBenches {
		cp := captureBench(t, bn)
		for label, ctor := range ctors {
			scalar, batch := ctor(), ctor()
			if err := cp.ReplayOn(ctx, nil, rc, scalar); err != nil {
				t.Fatalf("%s/%s scalar replay: %v", bn, label, err)
			}
			if err := cp.ReplayBlocks(ctx, rc, batch); err != nil {
				t.Fatalf("%s/%s batch replay: %v", bn, label, err)
			}
			want, got := scalar.Result(), batch.Result()
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%s: batch result diverges\nscalar: %+v\nbatch:  %+v", bn, label, want, got)
			}
			if scalar.PredictorAccuracy() != batch.PredictorAccuracy() {
				t.Errorf("%s/%s: predictor accuracy diverges: scalar %v batch %v",
					bn, label, scalar.PredictorAccuracy(), batch.PredictorAccuracy())
			}
		}
	}
}

// TestConsumeBlockSplitBlocks feeds the same trace through ConsumeBlock in
// deliberately tiny, unevenly sized blocks to verify the scheduler state
// carries correctly across block boundaries (NextPC of a block's last row,
// prevEnter/no-passing coupling, fetch blocking).
func TestConsumeBlockSplitBlocks(t *testing.T) {
	ctx := context.Background()
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	cp := captureBench(t, "dijkstra")

	scalar := NewByteSerial()
	if err := cp.ReplayOn(ctx, nil, rc, scalar); err != nil {
		t.Fatalf("scalar replay: %v", err)
	}

	// Recover the raw blocks via a capturing BatchConsumer, then re-feed
	// them in odd-sized sub-blocks.
	batch := NewByteSerial()
	var rows int
	err := cp.ReplayBlocks(ctx, rc, blockFunc(func(b *trace.Block) {
		n := b.Len()
		for lo := 0; lo < n; {
			hi := lo + 1 + (lo % 7)
			if hi > n {
				hi = n
			}
			sub := trace.Block{
				Start:     b.Start + lo,
				Slot:      b.Slot[lo:hi],
				PC:        b.PC[lo:hi],
				SrcA:      b.SrcA[lo:hi],
				SrcB:      b.SrcB[lo:hi],
				Result:    b.Result[lo:hi],
				Sig:       b.Sig[lo:hi],
				EndNextPC: b.EndNextPC,
				Statics:   b.Statics,
				IFB:       b.IFB,
			}
			if hi < n {
				sub.EndNextPC = b.PC[hi]
			}
			batch.ConsumeBlock(&sub)
			rows += hi - lo
			lo = hi
		}
	}))
	if err != nil {
		t.Fatalf("batch replay: %v", err)
	}
	if rows != cp.Len() {
		t.Fatalf("sub-blocks covered %d rows, capture has %d", rows, cp.Len())
	}
	if want, got := scalar.Result(), batch.Result(); !reflect.DeepEqual(want, got) {
		t.Errorf("sub-block batch result diverges\nscalar: %+v\nbatch:  %+v", want, got)
	}
}

// blockFunc adapts a function to trace.BatchConsumer for tests.
type blockFunc func(*trace.Block)

func (f blockFunc) Consume(trace.Event)         { panic("scalar path not expected") }
func (f blockFunc) ConsumeBlock(b *trace.Block) { f(b) }
