package pipeline

import "repro/internal/trace"

// Model name constants.
const (
	NameBaseline32           = "baseline32"
	NameByteSerial           = "byteserial"
	NameHalfwordSerial       = "halfserial"
	NameSemiParallel         = "semiparallel"
	NameParallelSkewed       = "skewed"
	NameParallelCompressed   = "compressed"
	NameParallelSkewedBypass = "skewed+bypass"
)

// ifOcc3Banks models the three-byte-wide instruction cache shared by all
// compressed designs: three bytes in one cycle, a second cycle for the
// fourth byte (§4: "three instruction cache banks ... the instruction
// remains in this stage for one more cycle").
func ifOcc3Banks(e trace.Event) int {
	if e.IFBytes > 3 {
		return 2
	}
	return 1
}

// pcCarry returns the extra serial PC-increment cycles at block size g
// bytes: the increment processes low blocks until the carry dies (Table 2).
func pcCarry(pc, nextPC uint32, g int) int {
	if nextPC != pc+4 {
		return 0 // redirects are charged to the branch machinery
	}
	extra := 0
	mask := uint32(1)<<(8*g) - 1
	add := uint32(4)
	for b := 0; b < 4/g-1; b++ {
		blk := (pc >> (8 * g * b)) & mask
		if blk+add <= mask {
			break // carry dies in this block
		}
		extra++
		add = 1
	}
	return extra
}

// pcCarryBlocks is pcCarry over an annotated event.
func pcCarryBlocks(e trace.Event, g int) int { return pcCarry(e.PC, e.NextPC, g) }

func pcExtraByte(e trace.Event) int { return pcCarryBlocks(e, 1) }
func pcExtraHalf(e trace.Event) int { return pcCarryBlocks(e, 2) }

func maxSrcBytes(e trace.Event) int  { return e.MaxSrcBytes() }
func maxSrcHalves(e trace.Event) int { return e.MaxSrcHalves() }

func aluCyclesByte(e trace.Event) int { return maxInt(1, e.ALUOps) }
func aluCyclesHalf(e trace.Event) int { return maxInt(1, e.ALUHalfOps) }

func memOccByte(e trace.Event) int {
	if e.MemWidth > 0 {
		return maxInt(1, e.MemBytes)
	}
	return 1
}

func memOccHalf(e trace.Event) int {
	if e.MemWidth > 0 {
		return maxInt(1, e.MemHalves)
	}
	return 1
}

func wbOccByte(e trace.Event) int { return maxInt(1, e.WBBytes) }
func wbOccHalf(e trace.Event) int { return maxInt(1, e.WBHalves) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NewBaseline32 builds the conventional 32-bit 5-stage pipeline: the
// reference machine of every figure.
func NewBaseline32() *Model {
	return newModel(spec{
		name:     NameBaseline32,
		kind:     kindBaseline32,
		stages:   []string{"IF", "ID", "EX", "MEM", "WB"},
		occ:      []occFunc{one, one, one, one, one},
		exStage:  2,
		memStage: 3,
		wbStage:  4,
	})
}

// NewByteSerial builds the §4 byte-serial pipeline: one-byte datapath
// everywhere except the three-byte instruction cache, with a serial PC
// increment unit.
//
// The register bytes stream straight into the byte ALU (decode reads the
// low byte plus extension bits in one cycle; further bytes arrive one per
// cycle as the ALU consumes them), so the combined operand-plus-ALU
// serialization is carried by the EX stage: its occupancy is
// max(significant source bytes, ALU byte operations). This matches the
// paper's bottleneck attribution ("72% of the stalls were caused by
// structural hazards in the EX stage", §5) — and its remedy, which widens
// the register file and the ALU together.
func NewByteSerial() *Model {
	exOcc := func(e trace.Event) int {
		return maxInt(maxSrcBytes(e), aluCyclesByte(e))
	}
	return newModel(spec{
		name:      NameByteSerial,
		kind:      kindByteSerial,
		stages:    []string{"IF", "ID", "EX", "MEM", "WB"},
		occ:       []occFunc{ifOcc3Banks, one, exOcc, memOccByte, wbOccByte},
		exStage:   2,
		memStage:  3,
		wbStage:   4,
		streaming: true,
		pcExtra:   pcExtraByte,
	})
}

// NewHalfwordSerial builds the 16-bit variant of the serial pipeline (§4's
// "widened to 16-bits" design). The three-byte instruction cache is kept:
// instruction compression is independent of the data granularity.
func NewHalfwordSerial() *Model {
	exOcc := func(e trace.Event) int {
		return maxInt(maxSrcHalves(e), aluCyclesHalf(e))
	}
	return newModel(spec{
		name:      NameHalfwordSerial,
		kind:      kindHalfSerial,
		stages:    []string{"IF", "ID", "EX", "MEM", "WB"},
		occ:       []occFunc{ifOcc3Banks, one, exOcc, memOccHalf, wbOccHalf},
		exStage:   2,
		memStage:  3,
		wbStage:   4,
		streaming: true,
		pcExtra:   pcExtraHalf,
	})
}

// NewSemiParallel builds the §5 byte semi-parallel pipeline (Fig. 5):
// bandwidth-balanced at 3 fetch bytes, 2 register/ALU bytes and 1 data
// cache byte per cycle. The register access is skewed: the low byte and
// extension bits are read in RF0; the remaining bytes are read two per
// cycle in the next stage ("produce a full data word in 2 cycles instead
// of 4") while the ALU begins on the low byte; the second ALU stage runs
// for as many cycles as the register stage (§5). Write-back stores the low
// byte plus one more in its first cycle, two per cycle after that.
func NewSemiParallel() *Model {
	// ceil((n-1)/2) with a floor of one cycle: the additional bytes beyond
	// the low byte, two per cycle.
	extra := func(n int) int { return maxInt(1, n/2) }
	rfExtra := func(e trace.Event) int { return extra(e.MaxSrcBytes()) }
	exExtra := func(e trace.Event) int {
		// "used for as many cycles as the previous stage", bounded below
		// by the ALU's own serial demand at two bytes per cycle.
		return maxInt(extra(e.MaxSrcBytes()), extra(maxInt(1, e.ALUOps)))
	}
	wbOcc := func(e trace.Event) int { return maxInt(1, (e.WBBytes+1)/2) }
	return newModel(spec{
		name:      NameSemiParallel,
		kind:      kindSemiParallel,
		stages:    []string{"IF", "RF0", "RF1/EX0", "EX1", "MEM", "WB"},
		occ:       []occFunc{ifOcc3Banks, one, rfExtra, exExtra, memOccByte, wbOcc},
		exStage:   2,
		memStage:  4,
		wbStage:   5,
		streaming: true,
		pcExtra:   pcExtraByte,
		// Result complete after all ALU bytes stream through EX0/EX1 at
		// two bytes per cycle.
		exSlices: func(e trace.Event) int { return (maxInt(1, e.ALUOps) + 1) / 2 },
		// The byte-serial comparator resolves a branch once the last
		// significant operand byte pair has been examined.
		branchResolve: func(e trace.Event, exEnter, exEnd uint64) uint64 {
			return exEnter + uint64((maxInt(e.MaxSrcBytes(), 1)+1)/2)
		},
	})
}

// newSkewed builds the §6 byte-parallel skewed pipeline (Fig. 7): a
// full-width datapath whose EX is byte-sliced across two skewed stages, so
// no stage is ever held more than one cycle ("optimized for the long data
// case ... No stage is used more than once"). The data cache is indexed by
// the low address bytes, so MEM follows the second slice stage; the upper
// result slices (EX2/EX3 in the figure) complete in parallel with MEM and
// are modelled through the forwarding-readiness horizon (exSlices) rather
// than as occupied stages.
//
// With bypasses (the skewed+bypass design) short operands forward their
// complete result as soon as the needed slices have run and the branch
// outcome is collected from the slice that finishes the comparison; without
// them the control unit picks the outcome up one slice later and full
// results exist only after the last slice.
func newSkewed(name string, bypasses bool) *Model {
	s := spec{
		name: name,
		stages: []string{
			"IF", "RF0", "EX0", "EX1", "MEM", "WB",
		},
		occ: []occFunc{
			one, one, one, one, one, one,
		},
		exStage:   2,
		memStage:  4,
		wbStage:   5,
		streaming: true,
	}
	if bypasses {
		s.kind = kindSkewedBypass
	} else {
		s.kind = kindSkewed
	}
	// The byte-sliced comparator resolves a branch in the slice holding the
	// last significant operand byte (intrinsic to the skewed datapath).
	s.branchResolve = func(e trace.Event, exEnter, exEnd uint64) uint64 {
		return exEnter + uint64(maxInt(e.MaxSrcBytes(), 1))
	}
	if bypasses {
		s.exSlices = aluCyclesByte
		// Short operations skip the second slice stage entirely.
		shortOp := func(e trace.Event) bool {
			return e.MaxSrcBytes() <= 1 && e.ALUOps <= 1
		}
		s.skip = []func(trace.Event) bool{nil, nil, nil, shortOp, nil, nil}
	} else {
		// Without the extra forwarding paths the full value exists only
		// after the last slice.
		s.exSlices = func(trace.Event) int { return 4 }
	}
	return newModel(s)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// NewParallelSkewed builds the plain byte-parallel skewed pipeline.
func NewParallelSkewed() *Model { return newSkewed(NameParallelSkewed, false) }

// NewParallelSkewedBypass builds the skewed pipeline with forwarding paths
// (§6's best-of-both design).
func NewParallelSkewedBypass() *Model { return newSkewed(NameParallelSkewedBypass, true) }

// NewParallelCompressed builds the §6 "compressed" parallel pipeline
// (Fig. 9): the original five stages, full-width units with operand
// gating; short data flows in single cycles while full-width data spends
// "one more cycle in the same stage" for the fourth instruction byte, the
// upper operand bytes and the upper loaded bytes. The second cycle reads
// the upper-byte banks, which the successor's first cycle (low-byte bank
// plus extension bits) does not touch, so it adds latency to the
// instruction without holding the stage — that pipelining is the only
// reading consistent with the paper's 6% average CPI cost.
func NewParallelCompressed() *Model {
	ifLat := func(e trace.Event) int {
		if e.IFBytes > 3 {
			return 1
		}
		return 0
	}
	rfLat := func(e trace.Event) int {
		if e.MaxSrcBytes() > 1 {
			return 1
		}
		return 0
	}
	memLat := func(e trace.Event) int {
		if e.Inst.IsLoad() && e.MemBytes > 1 {
			return 1
		}
		return 0
	}
	return newModel(spec{
		name:     NameParallelCompressed,
		kind:     kindCompressed,
		stages:   []string{"IF", "RF", "EX", "MEM", "WB"},
		occ:      []occFunc{one, one, one, one, one},
		lat:      []occFunc{ifLat, rfLat, nil, memLat, nil},
		exStage:  2,
		memStage: 3,
		wbStage:  4,
		pcExtra:  pcExtraByte,
	})
}

// registry is the single source of truth for the model catalog: AllNames,
// New, NewAll, the sigsim suite table, and the service's /v1/models all
// derive from this ordered list, so a model added here is listed, servable,
// and swept everywhere at once (pinned by TestModelRegistryConsistency).
var registry = []struct {
	name string
	ctor func() *Model
}{
	{NameBaseline32, NewBaseline32},
	{NameByteSerial, NewByteSerial},
	{NameHalfwordSerial, NewHalfwordSerial},
	{NameSemiParallel, NewSemiParallel},
	{NameParallelCompressed, NewParallelCompressed},
	{NameParallelSkewed, NewParallelSkewed},
	{NameParallelSkewedBypass, NewParallelSkewedBypass},
	{NameByteFetch2, func() *Model { return NewByteFetch(2, false, false) }},
	{NameByteFetch3, func() *Model { return NewByteFetch(3, false, false) }},
	{NameByteFetch4, func() *Model { return NewByteFetch(4, false, false) }},
	{NameByteFetch4Raw, func() *Model { return NewByteFetch(4, false, true) }},
	{NameDualCompress4, func() *Model { return NewByteFetch(4, true, false) }},
}

// New builds a model by name, or nil if unknown. Beyond the registry it
// resolves the parameterized byte-fetch spellings ("bytefetch<B>[-raw]",
// "dualc<B>[-raw]") for sweep axes outside the advertised widths.
func New(name string) *Model {
	for _, r := range registry {
		if r.name == name {
			return r.ctor()
		}
	}
	if bytes, dual, raw, ok := parseByteFetchName(name); ok {
		return NewByteFetch(bytes, dual, raw)
	}
	return nil
}

// AllNames lists the models in presentation order (baseline first, then by
// increasing hardware parallelism, then the byte-fetch frontends).
func AllNames() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.name
	}
	return out
}

// NewAll builds one of every model.
func NewAll() []*Model {
	names := AllNames()
	out := make([]*Model, len(names))
	for i, n := range names {
		out[i] = New(n)
	}
	return out
}
