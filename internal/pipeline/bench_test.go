package pipeline

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/icomp"
	"repro/internal/trace"
)

// BenchmarkModelReplay measures one model consuming one captured benchmark
// trace, scalar (event-at-a-time Consume) versus batch (ConsumeBlock over
// column blocks) — the per-job cost of a warm sweep under each path.
func BenchmarkModelReplay(b *testing.B) {
	bm, ok := bench.ByName("dijkstra")
	if !ok {
		b.Fatal("unknown benchmark")
	}
	ctx := context.Background()
	cp, err := trace.CaptureRun(ctx, bm)
	if err != nil {
		b.Fatal(err)
	}
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	for _, model := range []string{NameBaseline32, NameByteSerial, NameParallelCompressed} {
		for _, path := range []string{"scalar", "batch"} {
			b.Run(fmt.Sprintf("%s/%s", model, path), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m := New(model)
					var err error
					if path == "batch" {
						err = cp.ReplayBlocks(ctx, rc, m)
					} else {
						err = cp.ReplayOn(ctx, nil, rc, m)
					}
					if err != nil {
						b.Fatal(err)
					}
					if m.Result().Cycles == 0 {
						b.Fatal("no cycles")
					}
				}
			})
		}
	}
}
