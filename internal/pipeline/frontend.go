// Byte-budgeted fetch frontends: the compressed-fetch model family.
//
// The seven paper models fetch one instruction per cycle regardless of its
// recoded size — §2.3's 3-byte instructions only narrow the I-cache banks.
// This file closes the loop between compression and timing: a ByteFetch(B)
// frontend delivers at most B *bytes* per cycle into a small fetch buffer,
// so recoded 3-byte instructions let a narrow path (4 B/cycle) complete
// more than one instruction's fetch per cycle, and a dual-issue-when-
// compressed variant (in the style of DRiM's pairing of compressed RISC-V
// instructions) lets two adjacent 3-byte instructions enter decode — and
// flow down the pipe — together.
//
// The frontend keeps the engine's analytical style: no cycle loop. Fetch
// completion of instruction i in a straight-line stream is
//
//	fd_i = streamBase + extra + ceil(cumBytes_i / B) - 1
//
// where streamBase is the cycle the stream (re)started, cumBytes is the
// byte total including instruction i, and extra accumulates in-stream
// delays (I-cache misses, fetch-buffer backpressure) that push every later
// byte. Control transfers end the stream: fetch resumes at the redirect
// cycle with an empty buffer, charging the skid to StallBranch exactly like
// the word-fetch engine. The backend (ID/EX/MEM/WB) uses the same
// recurrences as the baseline 5-stage machine — stage-free, no-passing,
// operand readiness on full results — so ByteFetch(4) with recoding
// disabled is cycle-for-cycle identical to baseline32 (pinned by
// TestByteFetchRawMatchesBaseline32).
//
// The fetch buffer holds fetched-but-not-yet-decoded instruction bytes.
// When admitting instruction i would push its occupancy past the capacity,
// the fetch unit waits for the oldest buffered instruction to decode,
// charging StallFetchBuf; the delay joins `extra` so successors inherit it.
//
// Dual issue pairs the current instruction with its predecessor ex post:
// if the predecessor issued alone at cycle T, the current instruction's
// fetch completed before T, both are 3-byte recodings, they are not both
// memory operations, and no intra-pair register (or HI/LO) dependence
// exists, the pair shares the decode cycle and may share each later stage's
// cycle (at most two per stage; the MEM port is effectively single because
// pairs never contain two memory operations, and WB gains a second write
// port). A pair splits naturally when operand readiness pushes the second
// instruction's EX entry past its partner's.
package pipeline

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/trace"
)

// feBufCap is the fetch-buffer capacity in bytes, sized like RVCoreP-32IC's
// small prefetch queue: four uncompressed words. It must be at least one
// uncompressed instruction (4 bytes) for the backpressure loop to progress.
const feBufCap = 16

// frontendSpec parameterizes a byte-budgeted fetch unit.
type frontendSpec struct {
	bytes  int  // fetch bandwidth, bytes per cycle
	bufCap int  // fetch-buffer capacity, bytes
	dual   bool // dual-issue-when-compressed pairing
	raw    bool // recoding disabled: every instruction fetches 4 bytes
}

// FetchUnitStats are the frontend counters of one byte-fetch model over one
// trace. All fields are totals; IntoDecodeIPC derives the issue rate.
type FetchUnitStats struct {
	BytesPerCycle int    // configured fetch bandwidth
	BufferBytes   int    // configured fetch-buffer capacity
	IssueCycles   uint64 // distinct cycles in which decode accepted instructions
	DualIssued    uint64 // instruction pairs that shared a decode cycle
	BufferStalls  uint64 // fetch cycles lost to a full fetch buffer
	MaxOccupancy  uint64 // peak fetch-buffer occupancy observed, bytes
}

// IntoDecodeIPC is the mean number of instructions entering decode per
// decode-accepting cycle: exactly 1.0 for single-issue frontends, above it
// when compressed pairs dual-issue.
func (f FetchUnitStats) IntoDecodeIPC(insts uint64) float64 {
	if f.IssueCycles == 0 {
		return 0
	}
	return float64(insts) / float64(f.IssueCycles)
}

// FetchUnit returns the byte-fetch frontend counters, or nil for the
// word-fetch models.
func (m *Model) FetchUnit() *FetchUnitStats {
	if m.spec.frontend == nil {
		return nil
	}
	st := m.fe.stats
	return &st
}

// feEntry is one fetched-but-undecoded instruction in the fetch buffer:
// its bytes leave the buffer at the cycle it enters decode.
type feEntry struct {
	id    uint64 // decode-entry cycle
	bytes uint32
}

// frontendState is the byte-fetch scheduler's per-model state.
type frontendState struct {
	// Fetch stream.
	streamBase  uint64 // cycle the current straight-line stream started
	streamBytes uint64 // bytes fetched in the stream, incl. the current instruction
	extra       uint64 // accumulated in-stream delay (I-cache, buffer backpressure)
	lastFetch   uint64 // previous instruction's fetch-completion cycle
	redirect    bool   // a control transfer ended the stream; restart before next fetch

	// Fetch buffer: FIFO of undecoded instructions, head at fifo[pos].
	fifo    []feEntry
	pos     int
	drained uint64 // bytes of popped (decoded) entries in this stream

	// Backend per-stage state: last entry cycle, instructions sharing it,
	// and the MEM stage's free horizon (D-cache misses occupy it).
	lastID, lastEX, lastMEM, lastWB uint64
	idN, exN, memN, wbN             int
	memFree                         uint64

	// Previous instruction's pairing-relevant facts.
	prevSize int
	prevMem  bool
	prevDest int // -1 when no register destination
	prevHILO bool

	stalls [nStallKinds]uint64
	stats  FetchUnitStats
}

// feIn is the per-instruction input of the byte-fetch scheduler, fillable
// from a scalar Event or from the batch path's slot digest without ever
// materializing the other form.
type feIn struct {
	size       int
	pc, addr   uint32
	rs, rt     uint8
	dest       uint8
	readsA     bool
	readsB     bool
	hasDest    bool
	isMem      bool
	isStore    bool
	isLoad     bool
	writesHILO bool
	isMFHILO   bool
	isBranch   bool
	isJReg     bool
	isJDir     bool
	taken      bool
}

// feSched reports one instruction's scheduled stage-entry cycles (for the
// Timeline observer and tests).
type feSched struct {
	fetch, id, ex, mem, wb uint64
	dc                     int
	paired                 bool
}

func ceilDiv(a, b uint64) uint64 { return (a + b - 1) / b }

// feStep schedules one instruction through the byte-budgeted frontend and
// the 5-stage backend. It is the single scheduling core shared by the
// scalar Consume path and the batch ConsumeBlock path, which makes the two
// bit-identical by construction.
func (m *Model) feStep(in *feIn) feSched {
	fe := m.fe
	cfg := m.spec.frontend
	size := uint64(in.size)
	if cfg.raw {
		size = 4
	}

	ic := m.hier.Fetch(in.pc)
	fe.stalls[stICache] += uint64(ic)
	dc := 0
	if in.isMem {
		dc = m.hier.Data(in.addr, in.isStore)
		fe.stalls[stDCache] += uint64(dc)
	}

	// --- fetch: restart the stream after a control transfer ---
	if fe.redirect {
		restart := fe.lastFetch + 1
		if m.fetchBlocked > restart {
			fe.stalls[stBranch] += m.fetchBlocked - restart
			restart = m.fetchBlocked
		}
		fe.streamBase = restart
		fe.streamBytes = 0
		fe.extra = 0
		fe.fifo = fe.fifo[:0]
		fe.pos = 0
		fe.drained = 0
		fe.redirect = false
	}

	// Fetch completion: bandwidth recurrence plus buffer admission.
	fe.extra += uint64(ic)
	fe.streamBytes += size
	natural := fe.streamBase + fe.extra + ceilDiv(fe.streamBytes, uint64(cfg.bytes)) - 1
	fd := natural
	for {
		for fe.pos < len(fe.fifo) && fe.fifo[fe.pos].id <= fd {
			fe.drained += uint64(fe.fifo[fe.pos].bytes)
			fe.pos++
		}
		pending := fe.streamBytes - fe.drained
		if pending <= uint64(cfg.bufCap) {
			if pending > fe.stats.MaxOccupancy {
				fe.stats.MaxOccupancy = pending
			}
			break
		}
		// Buffer full: the next byte slot opens when the oldest buffered
		// instruction decodes.
		next := fe.fifo[fe.pos].id
		fe.stalls[stFetchBuf] += next - fd
		fe.stats.BufferStalls += next - fd
		fd = next
	}
	fe.extra += fd - natural
	fe.lastFetch = fd

	// --- decode: dual-issue pairing, then the struct-RF rule ---
	idC := fd + 1
	paired := cfg.dual && m.insts > 0 && fe.idN == 1 && idC <= fe.lastID &&
		size == 3 && fe.prevSize == 3 &&
		!(fe.prevMem && in.isMem) &&
		!(fe.prevDest >= 0 && ((in.readsA && int(in.rs) == fe.prevDest) ||
			(in.readsB && int(in.rt) == fe.prevDest))) &&
		!(fe.prevHILO && in.isMFHILO)
	if paired {
		idC = fe.lastID
		fe.idN = 2
		fe.stats.DualIssued++
	} else {
		if free := fe.lastID + 1; m.insts > 0 && free > idC {
			fe.stalls[stStructRF] += free - idC
			idC = free
		}
		fe.lastID = idC
		fe.idN = 1
		fe.stats.IssueCycles++
	}
	if fe.pos > 0 && fe.pos == len(fe.fifo) {
		fe.fifo = fe.fifo[:0]
		fe.pos = 0
	}
	fe.fifo = append(fe.fifo, feEntry{id: idC, bytes: uint32(size)})

	// --- EX: pair sharing, stage-free, operand readiness ---
	together := paired
	exC := idC + 1
	shareEX := together && fe.exN < 2 && fe.lastEX >= exC
	if shareEX {
		exC = fe.lastEX
	} else if free := fe.lastEX + 1; m.insts > 0 && free > exC {
		fe.stalls[stStructEX] += free - exC
		exC = free
	}
	if ready := m.feOperandReady(in); ready > exC {
		fe.stalls[stData] += ready - exC
		exC = ready
		shareEX = false // readiness split the pair at EX
	}
	if shareEX {
		fe.exN++
	} else {
		fe.lastEX = exC
		fe.exN = 1
	}
	together = together && shareEX

	// --- MEM: at most one memory operation per pair ---
	memC := exC + 1
	shareMEM := together && fe.memN < 2 && fe.lastMEM >= memC
	if shareMEM {
		memC = fe.lastMEM
	} else if m.insts > 0 && fe.memFree > memC {
		fe.stalls[stStructMEM] += fe.memFree - memC
		memC = fe.memFree
	}
	if shareMEM {
		fe.memN++
	} else {
		fe.lastMEM = memC
		fe.memN = 1
	}
	if free := memC + 1 + uint64(dc); free > fe.memFree {
		fe.memFree = free
	}
	together = together && shareMEM

	// --- WB: paired instructions may use both write ports ---
	wbC := memC + 1 + uint64(dc)
	shareWB := together && fe.wbN < 2 && fe.lastWB >= wbC
	if shareWB {
		wbC = fe.lastWB
		fe.wbN++
	} else {
		if free := fe.lastWB + 1; m.insts > 0 && free > wbC {
			fe.stalls[stStructWB] += free - wbC
			wbC = free
		}
		fe.lastWB = wbC
		fe.wbN = 1
	}

	// Result readiness: full-word forwarding like the baseline machine.
	if in.hasDest {
		full := exC + 1
		if in.isLoad {
			full = memC + 1 + uint64(dc)
		}
		m.readyFirst[in.dest] = full
		m.readyFull[in.dest] = full
	}
	if in.writesHILO {
		m.hiloFull = exC + 1
	}

	// Control flow: branches and register jumps resolve at the end of EX,
	// J/JAL redirect at the end of decode. With the optional predictor a
	// correctly predicted not-taken branch leaves the stream running.
	switch {
	case in.isBranch:
		resolve := exC + 1
		block := true
		if m.pred != nil {
			predicted := m.pred.predict(in.pc)
			m.pred.update(in.pc, predicted, in.taken)
			switch {
			case predicted == in.taken && !in.taken:
				block = false // correct fall-through: fetch never breaks
			case predicted == in.taken:
				resolve = idC + 1 // BTB redirect at the end of decode
			}
		}
		if block {
			m.fetchBlocked = resolve
			fe.redirect = true
		}
	case in.isJReg:
		m.fetchBlocked = exC + 1
		fe.redirect = true
	case in.isJDir:
		m.fetchBlocked = idC + 1
		fe.redirect = true
	}

	if end := wbC + 1; end > m.cycles {
		m.cycles = end
	}

	fe.prevSize = int(size)
	fe.prevMem = in.isMem
	fe.prevDest = -1
	if in.hasDest {
		fe.prevDest = int(in.dest)
	}
	fe.prevHILO = in.writesHILO
	m.insts++
	return feSched{fetch: fd, id: idC, ex: exC, mem: memC, wb: wbC, dc: dc, paired: paired}
}

// feOperandReady is operand readiness for the frontend backend: full-word
// forwarding, plus the HI/LO horizon for MFHI/MFLO.
func (m *Model) feOperandReady(in *feIn) uint64 {
	var ready uint64
	if in.readsA && m.readyFull[in.rs] > ready {
		ready = m.readyFull[in.rs]
	}
	if in.readsB && m.readyFull[in.rt] > ready {
		ready = m.readyFull[in.rt]
	}
	if in.isMFHILO && m.hiloFull > ready {
		ready = m.hiloFull
	}
	return ready
}

// flushFEStalls merges the frontend's array tallies into the Result map.
func (m *Model) flushFEStalls() {
	for i, v := range m.fe.stalls {
		if v > 0 {
			m.stalls[stallKinds[i]] += v
			m.fe.stalls[i] = 0
		}
	}
}

// consumeFrontend is the scalar path of the byte-fetch models: build the
// scheduler input from the Event and run the shared core.
func (m *Model) consumeFrontend(e trace.Event) {
	in := feIn{
		size:       e.IFBytes,
		pc:         e.PC,
		addr:       e.Addr,
		rs:         uint8(e.Inst.Rs),
		rt:         uint8(e.Inst.Rt),
		dest:       uint8(e.Dest),
		readsA:     e.ReadsA,
		readsB:     e.ReadsB,
		hasDest:    e.HasDest,
		isMem:      e.MemWidth > 0,
		isStore:    e.Inst.IsStore(),
		isLoad:     e.Inst.IsLoad(),
		writesHILO: e.Inst.WritesHILO(),
		isBranch:   e.Inst.IsBranch(),
		taken:      e.Taken,
	}
	if e.Inst.Op == isa.OpSpecial {
		switch e.Inst.Funct {
		case isa.FnJR, isa.FnJALR:
			in.isJReg = true
		case isa.FnMFHI, isa.FnMFLO:
			in.isMFHILO = true
		}
	}
	in.isJDir = e.Inst.Op == isa.OpJ || e.Inst.Op == isa.OpJAL
	sched := m.feStep(&in)
	m.flushFEStalls()
	if m.observer != nil {
		enter := m.enter
		enter[0], enter[1], enter[2], enter[3], enter[4] =
			sched.fetch, sched.id, sched.ex, sched.mem, sched.wb
		occ := []int{1, 1, 1, 1 + sched.dc, 1}
		m.observer(e, enter, occ, make([]bool, 5))
	}
}

// consumeFrontendBlock is the batch path: per row, fill the scheduler input
// from the slot digest and columns and run the same core as Consume.
func (m *Model) consumeFrontendBlock(blk *trace.Block) {
	bs := m.ensureBatch(blk)
	var in feIn
	n := len(blk.Slot)
	for i := 0; i < n; i++ {
		sw := blk.Slot[i]
		si := &bs.slots[sw&trace.SlotMask]
		fl := si.flags
		in = feIn{
			size:       int(si.ifb),
			pc:         blk.PC[i],
			rs:         si.rs,
			rt:         si.rt,
			dest:       si.dest,
			readsA:     fl&sfReadsA != 0,
			readsB:     fl&sfReadsB != 0,
			hasDest:    fl&sfHasDest != 0,
			isMem:      fl&sfIsMem != 0,
			isStore:    fl&sfIsStore != 0,
			isLoad:     fl&sfIsLoad != 0,
			writesHILO: fl&sfWritesHILO != 0,
			isMFHILO:   fl&sfIsMFHILO != 0,
			isBranch:   fl&sfIsBranch != 0,
			isJReg:     fl&sfIsJReg != 0,
			isJDir:     fl&sfIsJDir != 0,
			taken:      sw&trace.TakenBit != 0,
		}
		if in.isMem {
			in.addr = blk.SrcA[i] + si.simm
		}
		m.feStep(&in)
	}
	m.flushFEStalls()
}

// Canonical byte-fetch model names. New() additionally resolves any
// parameterized spelling — "bytefetch<B>", "bytefetch<B>-raw", "dualc<B>"
// for 1 <= B <= 64 — so sweeps can probe widths outside the advertised set.
const (
	NameByteFetch2    = "bytefetch2"
	NameByteFetch3    = "bytefetch3"
	NameByteFetch4    = "bytefetch4"
	NameByteFetch4Raw = "bytefetch4-raw"
	NameDualCompress4 = "dualc4"
)

// maxFetchBytes bounds the parameterized fetch bandwidth.
const maxFetchBytes = 64

// NewByteFetch builds a byte-budgeted fetch frontend over the baseline
// 5-stage backend: bytes per cycle of fetch bandwidth, a 16-byte fetch
// buffer, optional dual-issue-when-compressed pairing, and optionally raw
// (recoding disabled — every instruction fetches 4 bytes; at 4 B/cycle this
// is cycle-for-cycle the baseline32 machine).
func NewByteFetch(bytes int, dual, raw bool) *Model {
	if bytes < 1 || bytes > maxFetchBytes {
		return nil
	}
	name := fmt.Sprintf("bytefetch%d", bytes)
	if dual {
		name = fmt.Sprintf("dualc%d", bytes)
	}
	if raw {
		name += "-raw"
	}
	m := newModel(spec{
		name:     name,
		kind:     kindByteFetch,
		stages:   []string{"IF", "ID", "EX", "MEM", "WB"},
		occ:      []occFunc{one, one, one, one, one},
		exStage:  2,
		memStage: 3,
		wbStage:  4,
		frontend: &frontendSpec{bytes: bytes, bufCap: feBufCap, dual: dual, raw: raw},
	})
	m.fe = &frontendState{prevDest: -1}
	m.fe.stats.BytesPerCycle = bytes
	m.fe.stats.BufferBytes = feBufCap
	return m
}

// parseByteFetchName resolves a parameterized byte-fetch model name, or
// ok=false if name is not of that family.
func parseByteFetchName(name string) (bytes int, dual, raw bool, ok bool) {
	rest, dualName := strings.CutPrefix(name, "dualc")
	if !dualName {
		rest, ok = strings.CutPrefix(name, "bytefetch")
		if !ok {
			return 0, false, false, false
		}
	}
	rest, raw = strings.CutSuffix(rest, "-raw")
	b, err := strconv.Atoi(rest)
	if err != nil || b < 1 || b > maxFetchBytes || rest != strconv.Itoa(b) {
		return 0, false, false, false
	}
	return b, dualName, raw, true
}
