package pipeline

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/icomp"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Synthetic event builders for engine unit tests.

var testRecoder = icomp.MustNewRecoder(icomp.DefaultTopFuncts())

func annotate(e cpu.Exec) trace.Event { return trace.Annotate(e, testRecoder) }

// aluExec builds an addu dest, t0, t1 with the given operand values.
func aluExec(pc uint32, dest isa.Reg, a, b uint32) cpu.Exec {
	raw := isa.EncodeR(isa.FnADDU, isa.RegT0, isa.RegT1, dest, 0)
	return cpu.Exec{
		PC: pc, Raw: raw, Inst: isa.Decode(raw),
		SrcA: a, SrcB: b, ReadsA: true, ReadsB: true,
		Dest: dest, Result: a + b, HasDest: dest != 0,
		NextPC: pc + 4,
	}
}

// loadExec builds a lw dest, 0(t0).
func loadExec(pc uint32, dest isa.Reg, addr, val uint32) cpu.Exec {
	raw := isa.EncodeI(isa.OpLW, isa.RegT0, dest, 0)
	return cpu.Exec{
		PC: pc, Raw: raw, Inst: isa.Decode(raw),
		SrcA: addr, ReadsA: true,
		Dest: dest, Result: val, HasDest: true,
		Addr: addr, MemWidth: 4, Loaded: val,
		NextPC: pc + 4,
	}
}

// branchExec builds a beq t0, t1 with the given operand values.
func branchExec(pc uint32, a, b uint32, taken bool) cpu.Exec {
	raw := isa.EncodeI(isa.OpBEQ, isa.RegT0, isa.RegT1, 4)
	e := cpu.Exec{
		PC: pc, Raw: raw, Inst: isa.Decode(raw),
		SrcA: a, SrcB: b, ReadsA: true, ReadsB: true,
		NextPC: pc + 4,
	}
	if taken {
		e.Taken = true
		e.NextPC = e.Inst.BranchTarget(pc)
	}
	return e
}

// loopStream builds n events by cycling gen over a small PC region so the
// working set fits the caches.
func loopStream(n int, gen func(i int, pc uint32) cpu.Exec) []cpu.Exec {
	execs := make([]cpu.Exec, 0, n)
	pc := uint32(0x0040_0000)
	for i := 0; i < n; i++ {
		execs = append(execs, gen(i, pc))
		pc += 4
		if pc >= 0x0040_0200 { // 512 B loop: 16 I-cache lines
			pc = 0x0040_0000
		}
	}
	return execs
}

// steadyCPI measures marginal CPI: it feeds the stream once to warm the
// model's caches, snapshots, feeds it again, and returns the delta rate.
func steadyCPI(m *Model, execs []cpu.Exec) (float64, Result) {
	for _, e := range execs {
		m.Consume(annotate(e))
	}
	warm := m.Result()
	for _, e := range execs {
		m.Consume(annotate(e))
	}
	r := m.Result()
	cpi := float64(r.Cycles-warm.Cycles) / float64(r.Insts-warm.Insts)
	return cpi, r
}

// Independent single-byte ALU operations on the baseline sustain CPI 1.
func TestBaselineSteadyStateCPI(t *testing.T) {
	cpi, _ := steadyCPI(NewBaseline32(), loopStream(2000, func(i int, pc uint32) cpu.Exec {
		return aluExec(pc, isa.RegT2, 1, 2)
	}))
	if cpi > 1.05 {
		t.Fatalf("independent ALU CPI = %.3f, want ~1", cpi)
	}
}

// Back-to-back dependent ALU operations are fully forwarded in the
// baseline: still CPI 1.
func TestBaselineForwardingNoStall(t *testing.T) {
	cpi, _ := steadyCPI(NewBaseline32(), loopStream(2000, func(i int, pc uint32) cpu.Exec {
		e := aluExec(pc, isa.RegT2, uint32(i), 1)
		e.Inst.Rs, e.Inst.Rt = isa.RegT2, isa.RegT2 // consume own chain
		return e
	}))
	if cpi > 1.05 {
		t.Fatalf("dependent ALU CPI = %.3f, want ~1 with forwarding", cpi)
	}
}

// A branch with no prediction costs two bubbles in the baseline.
func TestBaselineBranchPenalty(t *testing.T) {
	run := func(branchEvery int) float64 {
		cpi, _ := steadyCPI(NewBaseline32(), loopStream(4000, func(i int, pc uint32) cpu.Exec {
			if i%branchEvery == branchEvery-1 {
				return branchExec(pc, 0, 0, false)
			}
			return aluExec(pc, isa.RegT2, 1, 2)
		}))
		return cpi
	}
	delta := run(5) - run(1<<20)
	// One branch in five at 2 bubbles each adds ~0.4 CPI.
	if delta < 0.3 || delta > 0.5 {
		t.Fatalf("branch penalty delta = %.3f CPI, want ~0.4", delta)
	}
}

// Load-use in the baseline costs one bubble.
func TestBaselineLoadUseBubble(t *testing.T) {
	cpi, r := steadyCPI(NewBaseline32(), loopStream(2000, func(i int, pc uint32) cpu.Exec {
		if i%2 == 0 {
			return loadExec(pc, isa.RegT0, 0x1000_0000, 7)
		}
		return aluExec(pc, isa.RegT2, 7, 1) // reads t0: load-use
	}))
	if cpi < 1.4 || cpi > 1.6 {
		t.Fatalf("load-use CPI = %.3f, want ~1.5", cpi)
	}
	if r.Stalls[StallData] == 0 {
		t.Fatal("expected data-hazard stalls")
	}
}

// Byte-serial: wide operands serialize the pipeline; ALU work beyond the
// operand width (Table-4 exception bytes) shows up as EX structural stalls.
func TestByteSerialWideOperandsSerialize(t *testing.T) {
	narrow, _ := steadyCPI(NewByteSerial(), loopStream(2000, func(i int, pc uint32) cpu.Exec {
		return aluExec(pc, isa.RegT2, 3, 4)
	}))
	wide, rw := steadyCPI(NewByteSerial(), loopStream(2000, func(i int, pc uint32) cpu.Exec {
		return aluExec(pc, isa.RegT2, 0x12345678, 0x01020304)
	}))
	if narrow >= wide {
		t.Fatalf("narrow CPI %.3f should beat wide CPI %.3f", narrow, wide)
	}
	if wide < 3.0 {
		t.Fatalf("wide byte-serial CPI %.3f, expected near 4", wide)
	}
	// Operands with one significant byte whose sum overflows: RF takes one
	// cycle but the ALU needs a second byte (exception) -> EX binds.
	_, rx := steadyCPI(NewByteSerial(), loopStream(2000, func(i int, pc uint32) cpu.Exec {
		return aluExec(pc, isa.RegT2, 0xffffff80, 0xffffff80)
	}))
	if rx.Stalls[StallStructEX] == 0 {
		t.Fatal("expected EX structural stalls when ALU work exceeds operand width")
	}
	_ = rw
}

// The I-cache is three bytes wide: four-byte instructions occupy fetch for
// two cycles in the byte-serial design.
func TestByteSerialFourByteFetch(t *testing.T) {
	cpi, _ := steadyCPI(NewByteSerial(), loopStream(2000, func(i int, pc uint32) cpu.Exec {
		// NOR is outside the default top-8 recode: always 4 bytes.
		raw := isa.EncodeR(isa.FnNOR, isa.RegT0, isa.RegT1, isa.RegT2, 0)
		return cpu.Exec{
			PC: pc, Raw: raw, Inst: isa.Decode(raw),
			SrcA: 1, SrcB: 1, ReadsA: true, ReadsB: true,
			Dest: isa.RegT2, Result: ^uint32(1), HasDest: true,
			NextPC: pc + 4,
		}
	}))
	if cpi < 1.8 {
		t.Fatalf("four-byte-instruction CPI = %.3f, want ~2", cpi)
	}
}

// The compressed model's banked second cycles add latency, not occupancy:
// independent wide-operand instructions still sustain CPI ~1.
func TestCompressedBankedStagesPipeline(t *testing.T) {
	cpi, _ := steadyCPI(NewParallelCompressed(), loopStream(2000, func(i int, pc uint32) cpu.Exec {
		e := aluExec(pc, 0, 0x00012345, 2) // wide source, no dest
		return e
	}))
	if cpi > 1.05 {
		t.Fatalf("independent wide ops on compressed: CPI %.3f, want ~1", cpi)
	}
}

// The compressed model's wide-operand latency lengthens branch shadows:
// wide-operand branches cost more than narrow ones.
func TestCompressedWideBranchLatency(t *testing.T) {
	run := func(opval uint32) float64 {
		cpi, _ := steadyCPI(NewParallelCompressed(), loopStream(4000, func(i int, pc uint32) cpu.Exec {
			if i%4 == 3 {
				return branchExec(pc, opval, opval, false)
			}
			return aluExec(pc, isa.RegT2, 1, 2)
		}))
		return cpi
	}
	if narrow, wide := run(1), run(0x12345678); narrow >= wide {
		t.Fatalf("narrow-branch CPI %.3f should beat wide-branch CPI %.3f", narrow, wide)
	}
}

// Deterministic scheduling.
func TestDeterminism(t *testing.T) {
	build := func() Result {
		_, r := steadyCPI(NewSemiParallel(), loopStream(1000, func(i int, pc uint32) cpu.Exec {
			return aluExec(pc, isa.RegT2, uint32(i)*3, uint32(i)<<7)
		}))
		return r
	}
	a, b := build(), build()
	if a.Cycles != b.Cycles || a.Insts != b.Insts {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestNewByName(t *testing.T) {
	for _, n := range AllNames() {
		m := New(n)
		if m == nil {
			t.Fatalf("New(%q) = nil", n)
		}
		if m.Name() != n {
			t.Fatalf("New(%q).Name() = %q", n, m.Name())
		}
	}
	if New("bogus") != nil {
		t.Fatal("unknown name should return nil")
	}
}

func TestResultCPIZeroInsts(t *testing.T) {
	var r Result
	if r.CPI() != 0 {
		t.Fatal("CPI of empty result should be 0")
	}
}

// Taken control flow blocks fetch: a tight taken-branch loop on the
// baseline runs at CPI ~3 (1 + 2-cycle resolution shadow).
func TestTakenBranchLoop(t *testing.T) {
	m := NewBaseline32()
	var warm Result
	for lap := 0; lap < 2; lap++ {
		for i := 0; i < 1000; i++ {
			m.Consume(annotate(branchExec(0x0040_0000, 0, 0, true)))
		}
		if lap == 0 {
			warm = m.Result()
		}
	}
	r := m.Result()
	cpi := float64(r.Cycles-warm.Cycles) / float64(r.Insts-warm.Insts)
	if cpi < 2.5 || cpi > 3.5 {
		t.Fatalf("taken-branch loop CPI = %.3f, want ~3", cpi)
	}
	if r.Stalls[StallBranch] == 0 {
		t.Fatal("expected branch stalls")
	}
}

// The skewed designs resolve short-operand branches as early as the
// baseline, but wide-operand branches pay for the extra slices.
func TestSkewedBranchResolutionByWidth(t *testing.T) {
	run := func(name string, opval uint32) float64 {
		cpi, _ := steadyCPI(New(name), loopStream(4000, func(i int, pc uint32) cpu.Exec {
			if i%4 == 3 {
				return branchExec(pc, opval, opval, false)
			}
			return aluExec(pc, isa.RegT2, 1, 2)
		}))
		return cpi
	}
	for _, name := range []string{NameParallelSkewed, NameParallelSkewedBypass} {
		if narrow, wide := run(name, 1), run(name, 0x7fffffff); narrow >= wide {
			t.Errorf("%s: narrow-branch CPI %.3f should beat wide %.3f", name, narrow, wide)
		}
	}
}

func TestSetHierarchy(t *testing.T) {
	cfg := memDefaultConfigSmall()
	m := NewBaseline32().SetHierarchy(cfg)
	// Smaller I-cache: the 512 B loop still fits; behaviour unchanged.
	cpi, _ := steadyCPI(m, loopStream(1000, func(i int, pc uint32) cpu.Exec {
		return aluExec(pc, isa.RegT2, 1, 2)
	}))
	if cpi > 1.05 {
		t.Fatalf("cpi: %.3f", cpi)
	}
	// After consuming, swapping the hierarchy must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("SetHierarchy after start should panic")
		}
	}()
	m.SetHierarchy(cfg)
}
