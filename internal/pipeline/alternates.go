package pipeline

import "repro/internal/trace"

// Alternative model interpretations, kept for the modeling-sensitivity
// ablation (DESIGN.md §5 records which reading we adopted and why; these
// constructors quantify what the rejected readings would have cost).

// NameCompressedOccupancy labels the strict-stall reading of Fig. 9.
const NameCompressedOccupancy = "compressed-occ"

// NewParallelCompressedOccupancy builds the rejected reading of the
// compressed design, where a stage's second cycle *blocks* the next
// instruction instead of overlapping it (no banked pipelining). The paper's
// +6% average CPI is unreachable under this reading — the ablation shows
// it costs several times more.
func NewParallelCompressedOccupancy() *Model {
	ifOcc := func(e trace.Event) int {
		if e.IFBytes > 3 {
			return 2
		}
		return 1
	}
	rfOcc := func(e trace.Event) int {
		if e.MaxSrcBytes() > 1 {
			return 2
		}
		return 1
	}
	memOcc := func(e trace.Event) int {
		if e.Inst.IsLoad() && e.MemBytes > 1 {
			return 2
		}
		return 1
	}
	return newModel(spec{
		name:     NameCompressedOccupancy,
		stages:   []string{"IF", "RF", "EX", "MEM", "WB"},
		occ:      []occFunc{ifOcc, rfOcc, one, memOcc, one},
		exStage:  2,
		memStage: 3,
		wbStage:  4,
		pcExtra:  pcExtraByte,
	})
}

// NameSkewedLateBranch labels the late-resolution reading of Fig. 7.
const NameSkewedLateBranch = "skewed-late-br"

// NewParallelSkewedLateBranch builds the rejected reading of the skewed
// design in which every branch resolves only after the last byte slice
// (no per-slice comparator early-out). Figure 8's "very close to baseline"
// is unreachable under this reading.
func NewParallelSkewedLateBranch() *Model {
	m := newSkewed(NameParallelSkewed, false)
	m.spec.name = NameSkewedLateBranch
	m.spec.branchResolve = func(e trace.Event, exEnter, exEnd uint64) uint64 {
		return exEnter + 4
	}
	// The skewed batch kernel no longer mirrors this spec; take the
	// (always-correct) scalar fallback under batch replay.
	m.spec.kind = kindGeneric
	return m
}
