// Package diffsim is the differential verification harness for the
// simulator's central invariant: significance compression is *lossless*.
// Extension bits (package sig), the byte-serial significance ALU (package
// sigalu), and the 3-byte instruction recoding (package icomp) must never
// change architectural results — only activity and CPI (PAPER.md §3–4).
//
// The harness has three parts:
//
//   - A deterministic, seed-driven random program generator over the
//     internal/isa MIPS subset (this file). Generated programs terminate by
//     construction: all control flow is forward except bounded loops whose
//     back edge is fused with its counter decrement, and loads/stores stay
//     inside a sandboxed data segment addressed off a reserved base register.
//
//   - A differential oracle (check.go, shadow.go): the plain internal/cpu
//     interpreter is the golden reference, and a shadow machine that keeps
//     every architected value in compressed form — Ext3 registers, sigalu
//     byte-serial arithmetic, icomp-recoded instruction fetch — runs in
//     lockstep. Any divergence of PC, register file, HI/LO, or store traffic
//     is a Mismatch. The compression primitives are routed through a
//     swappable Oracle so harness self-tests can inject known bugs.
//
//   - A delta-debugging shrinker (shrink.go) that reduces a failing program
//     to a minimal repro, serialized under testdata/ as a committed
//     regression seed (seedfile.go).
//
// cmd/sigfuzz drives long campaigns; FuzzDifferential wires the same check
// into native Go fuzzing.
package diffsim

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
)

// Memory layout shared with the assembler-built benchmarks (asm defaults).
const (
	// TextBase is the load address of the generated code.
	TextBase = 0x0040_0000
	// DataBase is the bottom of the sandboxed data segment ("the data
	// segment base of our experimental framework", §2.1).
	DataBase = 0x1000_0000
	// StackTop matches asm.DefaultStackTop; generated code never uses the
	// stack but the golden CPU is built with the conventional $sp.
	StackTop = 0x7fff_f000
)

// CtlKind classifies how an Op's control flow is encoded.
type CtlKind uint8

// Control kinds.
const (
	// CtlNone is a fully encoded non-control instruction (Raw is final).
	CtlNone CtlKind = iota
	// CtlBranch is a conditional forward branch; Raw has a zero immediate
	// field, patched from Target at encode time.
	CtlBranch
	// CtlJump is J/JAL; Raw has a zero target field, patched from Target.
	CtlJump
	// CtlJumpReg expands to three words — lui $at, ori $at, then Raw (a
	// JR/JALR through $at) — so the register jump lands on Target exactly.
	CtlJumpReg
	// CtlLoopBack expands to two words: the fused counter decrement
	// (addiu $k,$k,-1) followed by Raw, a BGTZ $k with backward Target.
	// Fusing the decrement with the back edge keeps every program
	// terminating under arbitrary shrinking: the branch can never execute
	// without its decrement.
	CtlLoopBack
)

func (k CtlKind) String() string {
	switch k {
	case CtlNone:
		return "none"
	case CtlBranch:
		return "branch"
	case CtlJump:
		return "jump"
	case CtlJumpReg:
		return "jumpreg"
	case CtlLoopBack:
		return "loopback"
	}
	return fmt.Sprintf("ctl%d", uint8(k))
}

// ctlKindByName inverts CtlKind.String for the seed-file parser.
func ctlKindByName(s string) (CtlKind, bool) {
	for _, k := range []CtlKind{CtlNone, CtlBranch, CtlJump, CtlJumpReg, CtlLoopBack} {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Op is one generated instruction unit. Control-flow units reference their
// destination as an *op index* (not an address), so programs stay
// re-encodable after the shrinker removes units.
type Op struct {
	Raw    uint32  // encoding; control-flow offset/target fields are zero
	Ctl    CtlKind // how Raw relates to Target
	Target int     // destination op index; len(Ops) means the exit stub
}

// words returns how many instruction words the unit encodes to.
func (o Op) words() int {
	switch o.Ctl {
	case CtlJumpReg:
		return 3
	case CtlLoopBack:
		return 2
	}
	return 1
}

// Program is a generated (or shrunken) differential test case.
type Program struct {
	// Seed records provenance: the generator seed the program came from
	// (unchanged by shrinking).
	Seed uint64
	// Ops is the instruction unit list; an exit stub (addiu $v0,$zero,10;
	// syscall) is appended automatically at encode time.
	Ops []Op
	// Data is the initial content of the sandboxed data segment at
	// DataBase. All generated loads and stores stay within it.
	Data []byte
}

// Clone returns a deep copy (the shrinker mutates candidates in place).
func (p *Program) Clone() *Program {
	q := &Program{Seed: p.Seed}
	q.Ops = append([]Op(nil), p.Ops...)
	q.Data = append([]byte(nil), p.Data...)
	return q
}

// Config bounds the generator.
type Config struct {
	// Ops is the number of generated instruction units (excluding the exit
	// stub). Default 60.
	Ops int
	// DataBytes sizes the sandboxed data segment (word-aligned). Default
	// 1024.
	DataBytes int
	// Loops caps the bounded backward loops (each uses its own reserved
	// counter register, so at most 2). 0 means the default of 2; use a
	// negative value for a loop-free program.
	Loops int
	// LoopIters caps each loop's trip count. Default 8.
	LoopIters int
}

func (c Config) withDefaults() Config {
	if c.Ops <= 0 {
		c.Ops = 60
	}
	if c.DataBytes < 8 {
		c.DataBytes = 1024
	}
	c.DataBytes &^= 3 // word-aligned segment size keeps offsets encodable
	if c.Loops == 0 {
		c.Loops = len(loopCounters)
	} else if c.Loops < 0 {
		c.Loops = 0
	}
	if c.Loops > len(loopCounters) {
		c.Loops = len(loopCounters)
	}
	if c.LoopIters <= 0 {
		c.LoopIters = 8
	}
	return c
}

// Register roles. $at is the jump-register scratch, $k0/$k1 the loop
// counters, $gp the sandbox base; none of them may be a general destination,
// so their invariants survive any generated instruction mix.
var (
	loopCounters = [...]isa.Reg{isa.RegK0, isa.RegK1}

	// destPool lists the registers generated instructions may write.
	destPool = []isa.Reg{
		isa.RegV0, isa.RegV1, isa.RegA0, isa.RegA1, isa.RegA2, isa.RegA3,
		isa.RegT0, isa.RegT1, isa.RegT2, isa.RegT3, isa.RegT4, isa.RegT5,
		isa.RegT6, isa.RegT7, isa.RegS0, isa.RegS1, isa.RegS2, isa.RegS3,
		isa.RegS4, isa.RegS5, isa.RegS6, isa.RegT8, isa.RegT9, isa.RegFP,
		isa.RegRA,
	}
	// srcPool adds read-only registers worth sampling: $zero (the constant
	// significance pattern), $gp (a large address), the loop counters
	// (small descending values).
	srcPool = append(append([]isa.Reg{}, destPool...),
		isa.RegZero, isa.RegGP, isa.RegK0, isa.RegK1)
)

// interestingImms biases immediates toward significance-compression edge
// cases: sign-extension boundaries at each byte and halfword seam.
var interestingImms = []int16{
	0, 1, -1, 2, -2, 0x7f, -0x80, 0x80, 0xff, 0x100, -0x100,
	0x7ff, 0x7fff, -0x8000, -0x7f, 0x1234, -0x1234, 0x00ff, -0x00ff,
}

type gen struct {
	rng *rand.Rand
	cfg Config
}

func (g *gen) reg(pool []isa.Reg) isa.Reg { return pool[g.rng.Intn(len(pool))] }

func (g *gen) imm() int16 {
	switch g.rng.Intn(4) {
	case 0:
		return interestingImms[g.rng.Intn(len(interestingImms))]
	case 1:
		return int16(g.rng.Intn(256) - 128) // small values dominate real code
	default:
		return int16(g.rng.Uint32())
	}
}

// dataOffset returns an in-sandbox offset aligned to the access width.
func (g *gen) dataOffset(width int) int16 {
	off := g.rng.Intn(g.cfg.DataBytes - (width - 1))
	return int16(off &^ (width - 1))
}

// Generate builds a deterministic random program from seed.
func Generate(seed uint64, cfg Config) *Program {
	cfg = cfg.withDefaults()
	g := &gen{rng: rand.New(rand.NewSource(int64(seed))), cfg: cfg}

	p := &Program{Seed: seed}
	p.Data = make([]byte, cfg.DataBytes)
	for i := range p.Data {
		switch r := g.rng.Intn(100); {
		case r < 30:
			p.Data[i] = 0
		case r < 55:
			p.Data[i] = byte(g.rng.Intn(16)) // small positive values
		case r < 70:
			p.Data[i] = 0xff
		default:
			p.Data[i] = byte(g.rng.Uint32())
		}
	}

	// Plan bounded loops in disjoint index regions, one counter register
	// each. The head (set counter) sits at loopHead[i]; the fused
	// decrement+BGTZ back edge at loopBack[i], targeting head+1.
	loopHead := map[int]isa.Reg{}
	loopBack := map[int]int{} // back-edge index -> head index
	backReg := map[int]isa.Reg{}
	nLoops := 0
	if cfg.Loops > 0 {
		nLoops = g.rng.Intn(cfg.Loops + 1)
	}
	if nLoops > 0 {
		segLen := cfg.Ops / nLoops
		for l := 0; l < nLoops && segLen >= 6; l++ {
			lo := l * segLen
			head := lo + 1 + g.rng.Intn(segLen/3+1)
			back := head + 2 + g.rng.Intn(segLen/2)
			if back >= lo+segLen {
				back = lo + segLen - 1
			}
			if back-head < 2 {
				continue
			}
			k := loopCounters[l]
			loopHead[head] = k
			loopBack[back] = head
			backReg[back] = k
		}
	}

	// Prologue: $gp = DataBase (low halfword is zero, one LUI suffices).
	p.Ops = append(p.Ops, Op{Raw: isa.EncodeI(isa.OpLUI, 0, isa.RegGP, int16(DataBase>>16))})

	for i := len(p.Ops); i < cfg.Ops; i++ {
		if k, ok := loopHead[i]; ok {
			iters := int16(1 + g.rng.Intn(cfg.LoopIters))
			p.Ops = append(p.Ops, Op{Raw: isa.EncodeI(isa.OpADDIU, isa.RegZero, k, iters)})
			continue
		}
		if head, ok := loopBack[i]; ok {
			p.Ops = append(p.Ops, Op{
				Raw:    isa.EncodeI(isa.OpBGTZ, backReg[i], 0, 0),
				Ctl:    CtlLoopBack,
				Target: head + 1,
			})
			continue
		}
		p.Ops = append(p.Ops, g.randomOp(i))
	}
	return p
}

// fwdTarget picks a forward destination for the op at index i: somewhere in
// (i, i+13], capped at the exit stub.
func (g *gen) fwdTarget(i int) int {
	t := i + 1 + g.rng.Intn(13)
	if t > g.cfg.Ops {
		t = g.cfg.Ops
	}
	return t
}

var (
	rAluFns   = []isa.Funct{isa.FnADDU, isa.FnADD, isa.FnSUBU, isa.FnSUB, isa.FnAND, isa.FnOR, isa.FnXOR, isa.FnNOR, isa.FnSLT, isa.FnSLTU}
	shImmFns  = []isa.Funct{isa.FnSLL, isa.FnSRL, isa.FnSRA}
	shVarFns  = []isa.Funct{isa.FnSLLV, isa.FnSRLV, isa.FnSRAV}
	iAluOps   = []isa.Opcode{isa.OpADDI, isa.OpADDIU, isa.OpSLTI, isa.OpSLTIU, isa.OpANDI, isa.OpORI, isa.OpXORI}
	loadOps   = []isa.Opcode{isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLW}
	storeOps  = []isa.Opcode{isa.OpSB, isa.OpSH, isa.OpSW}
	mulDivFns = []isa.Funct{isa.FnMULT, isa.FnMULTU, isa.FnDIV, isa.FnDIVU}
	hiloFns   = []isa.Funct{isa.FnMFHI, isa.FnMFLO, isa.FnMTHI, isa.FnMTLO}
)

// randomOp draws one instruction unit from the weighted opcode mix.
func (g *gen) randomOp(i int) Op {
	w := g.rng.Intn(100)
	switch {
	case w < 28: // R-format ALU
		fn := rAluFns[g.rng.Intn(len(rAluFns))]
		return Op{Raw: isa.EncodeR(fn, g.reg(srcPool), g.reg(srcPool), g.reg(destPool), 0)}
	case w < 36: // immediate shift
		fn := shImmFns[g.rng.Intn(len(shImmFns))]
		return Op{Raw: isa.EncodeR(fn, 0, g.reg(srcPool), g.reg(destPool), uint8(g.rng.Intn(32)))}
	case w < 41: // variable shift
		fn := shVarFns[g.rng.Intn(len(shVarFns))]
		return Op{Raw: isa.EncodeR(fn, g.reg(srcPool), g.reg(srcPool), g.reg(destPool), 0)}
	case w < 59: // I-format ALU
		op := iAluOps[g.rng.Intn(len(iAluOps))]
		return Op{Raw: isa.EncodeI(op, g.reg(srcPool), g.reg(destPool), g.imm())}
	case w < 63: // LUI
		return Op{Raw: isa.EncodeI(isa.OpLUI, 0, g.reg(destPool), g.imm())}
	case w < 74: // load from the sandbox
		op := loadOps[g.rng.Intn(len(loadOps))]
		width := isa.Decode(isa.EncodeI(op, 0, 0, 0)).MemBytes()
		return Op{Raw: isa.EncodeI(op, isa.RegGP, g.reg(destPool), g.dataOffset(width))}
	case w < 81: // store into the sandbox
		op := storeOps[g.rng.Intn(len(storeOps))]
		width := isa.Decode(isa.EncodeI(op, 0, 0, 0)).MemBytes()
		return Op{Raw: isa.EncodeI(op, isa.RegGP, g.reg(srcPool), g.dataOffset(width))}
	case w < 85: // MULT/MULTU/DIV/DIVU
		fn := mulDivFns[g.rng.Intn(len(mulDivFns))]
		return Op{Raw: isa.EncodeR(fn, g.reg(srcPool), g.reg(srcPool), 0, 0)}
	case w < 89: // HI/LO moves
		fn := hiloFns[g.rng.Intn(len(hiloFns))]
		if fn == isa.FnMFHI || fn == isa.FnMFLO {
			return Op{Raw: isa.EncodeR(fn, 0, 0, g.reg(destPool), 0)}
		}
		return Op{Raw: isa.EncodeR(fn, g.reg(srcPool), 0, 0, 0)}
	case w < 96: // forward conditional branch
		t := g.fwdTarget(i)
		switch g.rng.Intn(4) {
		case 0:
			return Op{Raw: isa.EncodeI(isa.OpBEQ, g.reg(srcPool), g.reg(srcPool), 0), Ctl: CtlBranch, Target: t}
		case 1:
			return Op{Raw: isa.EncodeI(isa.OpBNE, g.reg(srcPool), g.reg(srcPool), 0), Ctl: CtlBranch, Target: t}
		case 2:
			op := isa.OpBLEZ
			if g.rng.Intn(2) == 0 {
				op = isa.OpBGTZ
			}
			return Op{Raw: isa.EncodeI(op, g.reg(srcPool), 0, 0), Ctl: CtlBranch, Target: t}
		default:
			sel := uint8(isa.RegimmBLTZ)
			if g.rng.Intn(2) == 0 {
				sel = isa.RegimmBGEZ
			}
			return Op{Raw: isa.EncodeRegimm(sel, g.reg(srcPool), 0), Ctl: CtlBranch, Target: t}
		}
	case w < 98: // forward J/JAL
		op := isa.OpJ
		if g.rng.Intn(2) == 0 {
			op = isa.OpJAL
		}
		return Op{Raw: isa.EncodeJ(op, 0), Ctl: CtlJump, Target: g.fwdTarget(i)}
	default: // forward JR/JALR through $at
		raw := isa.EncodeR(isa.FnJR, isa.RegAT, 0, 0, 0)
		if g.rng.Intn(2) == 0 {
			raw = isa.EncodeR(isa.FnJALR, isa.RegAT, 0, g.reg(destPool), 0)
		}
		return Op{Raw: raw, Ctl: CtlJumpReg, Target: g.fwdTarget(i)}
	}
}
