package diffsim

import (
	"testing"

	"repro/internal/icomp"
	"repro/internal/sig"
	"repro/internal/sigalu"
)

// TestDifferentialCleanSeeds is the core positive property: over a spread of
// generated programs, the compressed paths agree with the golden interpreter
// on every retired instruction.
func TestDifferentialCleanSeeds(t *testing.T) {
	or := DefaultOracle()
	for seed := uint64(0); seed < 60; seed++ {
		p := Generate(seed, Config{})
		opts := CheckOpts{Timing: seed%10 == 0}
		rep := Check(p, or, opts)
		if !rep.OK() {
			t.Fatalf("seed %d: %s\nprogram:\n%s", seed, rep.Mismatch, p.Listing())
		}
		if rep.Steps == 0 {
			t.Fatalf("seed %d: program retired zero instructions", seed)
		}
	}
}

// brokenExt3Oracle returns an oracle whose DecompressExt3 drops the sign
// extension for negative two-byte values — the canonical injected bug from
// the acceptance criteria.
func brokenExt3Oracle() *Oracle {
	or := DefaultOracle()
	or.DecompressExt3 = func(stored []byte, e sig.Ext3) (uint32, error) {
		v, err := sig.DecompressExt3(stored, e)
		if err != nil {
			return 0, err
		}
		// Bug: a value whose significant bytes end at byte 1 is
		// zero-extended instead of sign-extended.
		if e.SigByteCount() == 2 && v&0x8000 != 0 && v>>16 == 0xffff {
			v &= 0x0000_ffff
		}
		return v, nil
	}
	return or
}

func findMismatch(t *testing.T, or *Oracle, wantKinds ...string) (*Program, Report) {
	t.Helper()
	want := map[string]bool{}
	for _, k := range wantKinds {
		want[k] = true
	}
	for seed := uint64(0); seed < 500; seed++ {
		p := Generate(seed, Config{})
		rep := Check(p, or, CheckOpts{})
		if rep.OK() {
			continue
		}
		if !want[rep.Mismatch.Kind] {
			t.Fatalf("seed %d: wrong mismatch kind %q (want one of %v): %s",
				seed, rep.Mismatch.Kind, wantKinds, rep.Mismatch)
		}
		return p, rep
	}
	t.Fatalf("no seed in 0..500 triggered kinds %v", wantKinds)
	return nil, Report{}
}

func TestInjectedExt3BugCaught(t *testing.T) {
	// The sign-extension bug corrupts decompressed register reads, so it
	// must surface as an architectural register/address divergence, never
	// go unnoticed.
	p, rep := findMismatch(t, brokenExt3Oracle(), "reg", "hilo", "store", "pc", "exit", "sandbox", "golden")
	t.Logf("seed %d failed as expected: %s", p.Seed, rep.Mismatch)
}

func TestInjectedAdderBugCaught(t *testing.T) {
	or := DefaultOracle()
	or.Add = func(a, b uint32) sigalu.Result {
		r := sigalu.Add(a, b)
		// Bug: carry out of byte 0 is dropped.
		if (a&0xff)+(b&0xff) > 0xff {
			r.Value -= 0x100
			r.Ext = sig.Ext3Of(r.Value)
		}
		return r
	}
	p, rep := findMismatch(t, or, "reg", "hilo", "store", "pc", "exit", "sandbox", "golden")
	t.Logf("seed %d failed as expected: %s", p.Seed, rep.Mismatch)
}

func TestInjectedRecoderBugCaught(t *testing.T) {
	or := DefaultOracle()
	dec := or.DecodeInst
	or.DecodeInst = func(st icomp.Stored) uint32 {
		// Bug: the recoded-opcode table regeneration flips a bit in the
		// immediate of recoded (Ext=false) instructions.
		v := dec(st)
		if !st.Ext {
			v ^= 1 << 3
		}
		return v
	}
	p, rep := findMismatch(t, or, "icomp")
	t.Logf("seed %d failed as expected: %s", p.Seed, rep.Mismatch)
}
