package diffsim

import "testing"

// FuzzDifferential is the native-fuzzing entry point: the fuzzer explores
// the generator's seed/configuration space, and every generated program must
// pass the full differential check (compressed register file, byte-serial
// ALU, instruction recoding, memory traffic, exit state).
//
// Run a short budget with:
//
//	go test -fuzz=FuzzDifferential -fuzztime=30s ./internal/diffsim
func FuzzDifferential(f *testing.F) {
	f.Add(uint64(0), uint16(60), uint8(2))
	f.Add(uint64(1), uint16(8), uint8(0))
	f.Add(uint64(0xdeadbeef), uint16(200), uint8(3))
	f.Add(uint64(42), uint16(30), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, nOps uint16, loops uint8) {
		cfg := Config{
			Ops:   int(nOps%512) + 4,
			Loops: int(loops%4) - 1, // -1 (none) through 2
		}
		p := Generate(seed, cfg)
		rep := Check(p, DefaultOracle(), CheckOpts{Timing: seed%16 == 0})
		if !rep.OK() {
			t.Fatalf("differential mismatch: %s\nseed file:\n%s", rep.Mismatch, p.Marshal())
		}
	})
}
