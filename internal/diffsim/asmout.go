package diffsim

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// AsmSource renders the program as assembler source accepted by
// internal/asm. The rendering is exact: assembling it reproduces the same
// text image as Encode word for word (la expands to the identical lui/ori
// pair a CtlJumpReg unit encodes, and the fused loop back-edge renders as
// its two component instructions), so the fuzz generator doubles as a
// workload generator for the program-intake service.
func (p *Program) AsmSource() (string, error) {
	var b strings.Builder
	label := func(idx int) string {
		if idx < 0 || idx > len(p.Ops) {
			idx = len(p.Ops)
		}
		return fmt.Sprintf("op%d", idx)
	}
	b.WriteString(".text\nmain:\n")
	for i, o := range p.Ops {
		fmt.Fprintf(&b, "%s:\n", label(i))
		inst := isa.Decode(o.Raw)
		switch o.Ctl {
		case CtlNone:
			fmt.Fprintf(&b, "    %s\n", inst.Disassemble(0))
		case CtlBranch:
			t := label(o.Target)
			switch inst.Op {
			case isa.OpBEQ, isa.OpBNE:
				fmt.Fprintf(&b, "    %s %s, %s, %s\n", inst.Mnemonic(), inst.Rs, inst.Rt, t)
			case isa.OpBLEZ, isa.OpBGTZ, isa.OpRegimm:
				fmt.Fprintf(&b, "    %s %s, %s\n", inst.Mnemonic(), inst.Rs, t)
			default:
				return "", fmt.Errorf("diffsim: op %d: branch unit with opcode %#02x", i, uint8(inst.Op))
			}
		case CtlJump:
			fmt.Fprintf(&b, "    %s %s\n", inst.Mnemonic(), label(o.Target))
		case CtlJumpReg:
			fmt.Fprintf(&b, "    la %s, %s\n", isa.RegAT, label(o.Target))
			fmt.Fprintf(&b, "    %s\n", inst.Disassemble(0))
		case CtlLoopBack:
			k := inst.Rs
			fmt.Fprintf(&b, "    addiu %s, %s, -1\n", k, k)
			fmt.Fprintf(&b, "    bgtz %s, %s\n", k, label(o.Target))
		default:
			return "", fmt.Errorf("diffsim: op %d: unknown ctl kind %d", i, o.Ctl)
		}
	}
	fmt.Fprintf(&b, "%s:\n", label(len(p.Ops)))
	fmt.Fprintf(&b, "    addiu %s, %s, 10\n", isa.RegV0, isa.RegZero)
	b.WriteString("    syscall\n")

	if len(p.Data) > 0 {
		b.WriteString("\n.data\n")
		for i := 0; i < len(p.Data); i += 16 {
			end := i + 16
			if end > len(p.Data) {
				end = len(p.Data)
			}
			parts := make([]string, 0, 16)
			for _, v := range p.Data[i:end] {
				parts = append(parts, fmt.Sprintf("%d", v))
			}
			fmt.Fprintf(&b, "    .byte %s\n", strings.Join(parts, ", "))
		}
	}
	return b.String(), nil
}
