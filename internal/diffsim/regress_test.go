package diffsim

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateSeeds = flag.Bool("update-seeds", false, "regenerate the committed corpus seeds under testdata/")

// corpusSpecs are the generator configurations behind the committed corpus:
// a default mix, a loop-heavy program, a long straight-line program, and a
// small tight program exercising the jump/branch paths densely.
var corpusSpecs = []struct {
	name string
	seed uint64
	cfg  Config
}{
	{"mix-default", 7, Config{}},
	{"loop-heavy", 11, Config{Ops: 80, Loops: 3, LoopIters: 12}},
	{"straightline-long", 23, Config{Ops: 300, Loops: -1, DataBytes: 2048}},
	{"dense-small", 41, Config{Ops: 16, Loops: 1, DataBytes: 64}},
}

// TestUpdateCorpusSeeds regenerates the corpus when run with -update-seeds;
// otherwise it verifies the committed files match their specs exactly, so a
// generator change that silently alters the corpus is caught.
func TestUpdateCorpusSeeds(t *testing.T) {
	for _, spec := range corpusSpecs {
		p := Generate(spec.seed, spec.cfg)
		want := p.Marshal()
		path := filepath.Join("testdata", fmt.Sprintf("corpus-%s.seed", spec.name))
		if *updateSeeds {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, want, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d ops)", path, len(p.Ops))
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update-seeds to regenerate)", err)
		}
		if string(got) != string(want) {
			t.Errorf("%s is stale: generator output changed (run with -update-seeds and review the diff)", path)
		}
	}
}

// TestRegressionSeeds replays every committed seed under testdata/ through
// the full differential check (timing pass included). Shrunken repros from
// past fuzzing campaigns land here via `cmd/sigfuzz`, so once a compression
// bug is fixed its trigger stays in the ordinary test pass forever.
func TestRegressionSeeds(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.seed"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed regression seeds under testdata/")
	}
	or := DefaultOracle()
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			p, err := UnmarshalProgram(data)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			rep := Check(p, or, CheckOpts{Timing: true})
			if !rep.OK() {
				t.Fatalf("regression seed fails: %s\n%s", rep.Mismatch, p.Listing())
			}
		})
	}
}
