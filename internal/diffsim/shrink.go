package diffsim

import (
	"repro/internal/isa"
)

// ShrinkOpts bounds the delta-debugging loop.
type ShrinkOpts struct {
	// Check bounds each candidate evaluation.
	Check CheckOpts
	// MaxChecks caps total candidate evaluations (0 = 4096).
	MaxChecks int
}

func (o ShrinkOpts) withDefaults() ShrinkOpts {
	if o.MaxChecks <= 0 {
		o.MaxChecks = 4096
	}
	return o
}

// Shrink reduces a failing program to a (locally) minimal repro via
// delta debugging: chunked instruction removal to a fixpoint, then operand
// simplification, then data-segment zeroing. A candidate is accepted only
// when it still fails with the *same mismatch kind*, so candidates that
// merely break a harness invariant (sandbox escapes, timeouts) are
// rejected rather than mistaken for repros.
//
// The original program must fail under or; Shrink panics otherwise so a
// misuse cannot masquerade as a successful reduction.
func Shrink(p *Program, or *Oracle, opts ShrinkOpts) *Program {
	opts = opts.withDefaults()
	orig := Check(p, or, opts.Check)
	if orig.OK() {
		panic("diffsim: Shrink called on a passing program")
	}
	kind := orig.Mismatch.Kind
	budget := opts.MaxChecks
	fails := func(cand *Program) bool {
		if budget <= 0 {
			return false
		}
		budget--
		rep := Check(cand, or, opts.Check)
		return !rep.OK() && rep.Mismatch.Kind == kind
	}

	cur := p.Clone()
	cur = shrinkRemove(cur, fails)
	cur = shrinkSimplify(cur, fails)
	// One more removal round: simplification often unlocks removals.
	cur = shrinkRemove(cur, fails)
	if len(cur.Data) > 0 {
		cand := cur.Clone()
		cand.Data = make([]byte, len(cur.Data))
		if fails(cand) {
			cur = cand
		}
	}
	return cur
}

// shrinkRemove is chunked ddmin over the op list.
func shrinkRemove(cur *Program, fails func(*Program) bool) *Program {
	for chunk := len(cur.Ops); chunk >= 1; chunk /= 2 {
		for start := 0; start < len(cur.Ops); {
			end := start + chunk
			if end > len(cur.Ops) {
				end = len(cur.Ops)
			}
			cand := removeOps(cur, start, end)
			if fails(cand) {
				cur = cand
				// Same start now addresses the next ops; do not advance.
				continue
			}
			start += chunk
		}
	}
	return cur
}

// removeOps drops ops [lo, hi) and retargets surviving control flow: each
// Target maps to the next surviving op at or after it (the exit stub when
// none survives). Forward targets stay strictly forward and backward loop
// targets stay at or before their branch, so termination is preserved.
func removeOps(p *Program, lo, hi int) *Program {
	q := &Program{Seed: p.Seed, Data: append([]byte(nil), p.Data...)}
	// nextKept[i] = new index of the first kept op with old index >= i.
	nextKept := make([]int, len(p.Ops)+1)
	newIdx := 0
	for i := 0; i <= len(p.Ops); i++ {
		nextKept[i] = newIdx
		if i < len(p.Ops) && !(i >= lo && i < hi) {
			newIdx++
		}
	}
	for i, o := range p.Ops {
		if i >= lo && i < hi {
			continue
		}
		if o.Ctl != CtlNone {
			o.Target = nextKept[clampIdx(o.Target, len(p.Ops))]
		}
		q.Ops = append(q.Ops, o)
	}
	return q
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

// shrinkSimplify canonicalizes operands of non-control ops one field at a
// time: immediates to zero, shift amounts to zero, registers to $t0. Every
// accepted change must preserve the failure kind.
func shrinkSimplify(cur *Program, fails func(*Program) bool) *Program {
	for i := 0; i < len(cur.Ops); i++ {
		if cur.Ops[i].Ctl != CtlNone {
			continue
		}
		for _, alt := range simplerRaws(cur.Ops[i].Raw) {
			if alt == cur.Ops[i].Raw {
				continue
			}
			cand := cur.Clone()
			cand.Ops[i].Raw = alt
			if fails(cand) {
				cur = cand
			}
		}
	}
	return cur
}

// simplerRaws proposes simpler encodings of one instruction, most
// aggressive first.
func simplerRaws(raw uint32) []uint32 {
	d := isa.Decode(raw)
	var out []uint32
	switch d.Format() {
	case isa.FormatI:
		if d.Imm != 0 {
			out = append(out, isa.EncodeI(d.Op, d.Rs, d.Rt, 0))
		}
		if d.Rs != isa.RegT0 {
			out = append(out, isa.EncodeI(d.Op, isa.RegT0, d.Rt, d.Imm))
		}
		if d.Rt != isa.RegT0 {
			out = append(out, isa.EncodeI(d.Op, d.Rs, isa.RegT0, d.Imm))
		}
	case isa.FormatR:
		if d.Shamt != 0 {
			out = append(out, isa.EncodeR(d.Funct, d.Rs, d.Rt, d.Rd, 0))
		}
		for _, alt := range []uint32{
			isa.EncodeR(d.Funct, isa.RegT0, d.Rt, d.Rd, d.Shamt),
			isa.EncodeR(d.Funct, d.Rs, isa.RegT0, d.Rd, d.Shamt),
			isa.EncodeR(d.Funct, d.Rs, d.Rt, isa.RegT0, d.Shamt),
		} {
			if alt != raw {
				out = append(out, alt)
			}
		}
	}
	return out
}
