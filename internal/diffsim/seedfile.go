package diffsim

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// seedMagic heads every serialized seed file.
const seedMagic = "diffsim-seed v1"

// Marshal renders a program as the committed regression-seed text format:
//
//	diffsim-seed v1
//	seed 0xdeadbeef
//	op 24020000 none 0  # addiu $v0, $zero, 0
//	op 1c400000 loopback 1  # bgtz $v0, ...
//	data 00ff10...
//
// Targets are op indices (not addresses) so seeds survive re-encoding.
func (p *Program) Marshal() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", seedMagic)
	fmt.Fprintf(&b, "seed %#x\n", p.Seed)
	for _, o := range p.Ops {
		fmt.Fprintf(&b, "op %08x %s %d  # %s\n",
			o.Raw, o.Ctl, o.Target, isa.Decode(o.Raw).Disassemble(0))
	}
	if len(p.Data) > 0 {
		fmt.Fprintf(&b, "data %s\n", hex.EncodeToString(p.Data))
	}
	return []byte(b.String())
}

// UnmarshalProgram parses the Marshal text format.
func UnmarshalProgram(data []byte) (*Program, error) {
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := sc.Text()
			if i := strings.Index(line, "#"); i >= 0 {
				line = line[:i]
			}
			line = strings.TrimSpace(line)
			if line != "" {
				return line, true
			}
		}
		return "", false
	}

	first, ok := next()
	if !ok || first != seedMagic {
		return nil, fmt.Errorf("diffsim: line %d: missing %q header", lineNo, seedMagic)
	}
	p := &Program{}
	for {
		line, ok := next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "seed":
			if len(fields) != 2 {
				return nil, fmt.Errorf("diffsim: line %d: want `seed <value>`", lineNo)
			}
			v, err := strconv.ParseUint(fields[1], 0, 64)
			if err != nil {
				return nil, fmt.Errorf("diffsim: line %d: bad seed: %v", lineNo, err)
			}
			p.Seed = v
		case "op":
			if len(fields) != 4 {
				return nil, fmt.Errorf("diffsim: line %d: want `op <raw-hex> <ctl> <target>`", lineNo)
			}
			raw, err := strconv.ParseUint(fields[1], 16, 32)
			if err != nil {
				return nil, fmt.Errorf("diffsim: line %d: bad raw word: %v", lineNo, err)
			}
			ctl, ok := ctlKindByName(fields[2])
			if !ok {
				return nil, fmt.Errorf("diffsim: line %d: unknown ctl kind %q", lineNo, fields[2])
			}
			tgt, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("diffsim: line %d: bad target: %v", lineNo, err)
			}
			p.Ops = append(p.Ops, Op{Raw: uint32(raw), Ctl: ctl, Target: tgt})
		case "data":
			if len(fields) != 2 {
				return nil, fmt.Errorf("diffsim: line %d: want `data <hex>`", lineNo)
			}
			d, err := hex.DecodeString(fields[1])
			if err != nil {
				return nil, fmt.Errorf("diffsim: line %d: bad data hex: %v", lineNo, err)
			}
			p.Data = d
		default:
			return nil, fmt.Errorf("diffsim: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("diffsim: %v", err)
	}
	for i, o := range p.Ops {
		if o.Ctl != CtlNone && (o.Target < 0 || o.Target > len(p.Ops)) {
			return nil, fmt.Errorf("diffsim: op %d: target %d out of range", i, o.Target)
		}
	}
	return p, nil
}
