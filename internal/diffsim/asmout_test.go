package diffsim

import (
	"bytes"
	"testing"

	"repro/internal/asm"
)

// TestAsmSourceExact proves the assembly rendering is an exact re-encoding:
// assembling AsmSource reproduces the Encode text image word for word and
// the data segment byte for byte, across a spread of generator seeds (with
// and without loops, jumps, and branches).
func TestAsmSourceExact(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		p := Generate(seed, Config{Ops: 80})
		src, err := p.AsmSource()
		if err != nil {
			t.Fatalf("seed %d: AsmSource: %v", seed, err)
		}
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble rendered source: %v\n%s", seed, err, src)
		}
		words, err := p.Encode()
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		if len(prog.Text) != len(words) {
			t.Fatalf("seed %d: %d assembled words, %d encoded", seed, len(prog.Text), len(words))
		}
		for i := range words {
			if prog.Text[i] != words[i] {
				t.Fatalf("seed %d: word %d: assembled %#08x, encoded %#08x", seed, i, prog.Text[i], words[i])
			}
		}
		if prog.Entry != TextBase {
			t.Fatalf("seed %d: entry %#x, want %#x", seed, prog.Entry, uint32(TextBase))
		}
		if prog.DataBase != DataBase || !bytes.Equal(prog.Data, p.Data) {
			t.Fatalf("seed %d: data segment differs (base %#x, %d bytes)", seed, prog.DataBase, len(prog.Data))
		}
	}
}

// TestCheckBinarySpotCheck exercises the intake-facing entry: a budgeted
// prefix check that treats hitting the cap as success.
func TestCheckBinarySpotCheck(t *testing.T) {
	p := Generate(7, Config{})
	words, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	or := DefaultOracle()
	full := CheckBinary(words, p.Data, or, CheckOpts{})
	if !full.OK() {
		t.Fatalf("full check failed: %v", full.Mismatch)
	}
	if full.Steps == 0 {
		t.Fatal("program retired no instructions")
	}
	// Capped below the full run: a plain check times out, the spot-check
	// succeeds at exactly the cap.
	capped := CheckBinary(words, p.Data, or, CheckOpts{MaxSteps: full.Steps / 2})
	if capped.OK() || capped.Mismatch.Kind != "timeout" {
		t.Fatalf("capped check: got %v, want timeout", capped.Mismatch)
	}
	spot := CheckBinary(words, p.Data, or, CheckOpts{MaxSteps: full.Steps / 2, StopAtCap: true})
	if !spot.OK() {
		t.Fatalf("spot check failed: %v", spot.Mismatch)
	}
	if spot.Steps != full.Steps/2 {
		t.Fatalf("spot check retired %d steps, want %d", spot.Steps, full.Steps/2)
	}
}
