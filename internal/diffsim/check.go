package diffsim

import (
	"errors"
	"fmt"
	"reflect"
	"sync"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// Mismatch is one divergence between the golden interpreter and the
// compressed paths (or a violated harness invariant).
//
// Kinds: "reg" / "hilo" / "pc" / "store" / "exit" (architectural divergence),
// "ext2" / "ext3" (write-path round-trip failures), "icomp" (instruction
// recoding round-trip), "timing" (non-deterministic pipeline results),
// "sandbox" / "golden" / "timeout" / "encode" / "fetch" / "decode" /
// "syscall" (harness invariant violations — generator or program bugs, not
// compression bugs).
type Mismatch struct {
	Kind   string
	Step   uint64 // retired-instruction index at detection
	PC     uint32 // PC of the instruction that exposed it
	Detail string
}

func (m *Mismatch) String() string {
	return fmt.Sprintf("[%s] step %d pc %#08x: %s", m.Kind, m.Step, m.PC, m.Detail)
}

// Report is the outcome of checking one program.
type Report struct {
	Steps    uint64
	Mismatch *Mismatch // nil when every check passed
}

// OK reports whether the program passed all differential checks.
func (r Report) OK() bool { return r.Mismatch == nil }

// MemWindow is one allowed data-access range [Base, Base+Size).
type MemWindow struct {
	Base uint32
	Size uint32
}

// Contains reports whether the [addr, addr+width) access falls inside.
func (w MemWindow) Contains(addr uint32, width int) bool {
	end := uint64(addr) + uint64(width)
	return addr >= w.Base && end <= uint64(w.Base)+uint64(w.Size)
}

// CheckOpts bounds one differential run.
type CheckOpts struct {
	// MaxSteps caps retired instructions (0 = 1<<20). Generated programs
	// terminate by construction; hitting the cap is reported as a
	// "timeout" harness mismatch unless StopAtCap is set.
	MaxSteps uint64
	// Timing enables the pipeline-determinism pass: every model's Result
	// must be identical across a repeat run and a concurrent
	// (goroutine-per-model) run. Honoured by Check only; CheckBinary runs
	// the architectural lockstep alone.
	Timing bool
	// Entry is the start PC (0 = TextBase). Assembled user programs may
	// enter at a `main` label that is not the first text word.
	Entry uint32
	// Windows lists the allowed data-access ranges. Empty means the
	// generator default: exactly the data segment at DataBase. The
	// program-intake spot-check adds a stack window for compiled code.
	Windows []MemWindow
	// StopAtCap makes reaching MaxSteps a success instead of a "timeout"
	// mismatch — the spot-check mode used by untrusted-program intake,
	// where only a budgeted prefix of the run is cross-checked.
	StopAtCap bool
	// AllowPrints lets the shadow treat the print syscalls (print_int,
	// print_string, putc) as architectural no-ops, matching the golden
	// interpreter, instead of flagging a "syscall" harness mismatch.
	// Generated programs only ever exit; user programs may print.
	AllowPrints bool
}

func (o CheckOpts) withDefaults() CheckOpts {
	if o.MaxSteps == 0 {
		o.MaxSteps = 1 << 20
	}
	if o.Entry == 0 {
		o.Entry = TextBase
	}
	return o
}

// Check runs p through the golden interpreter and the compressed-path
// shadow machine in lockstep, cross-checking architectural state each
// retired instruction, plus the per-instruction icomp round-trip and
// (optionally) pipeline timing determinism.
func Check(p *Program, or *Oracle, opts CheckOpts) Report {
	opts = opts.withDefaults()
	words, err := p.Encode()
	if err != nil {
		return Report{Mismatch: &Mismatch{Kind: "encode", Detail: err.Error()}}
	}
	rep := CheckBinary(words, p.Data, or, opts)
	if rep.Mismatch == nil && opts.Timing {
		if m := checkTiming(p, or, opts.MaxSteps); m != nil {
			rep.Mismatch = m
		}
	}
	return rep
}

// CheckBinary is the raw-words lockstep core of Check: it runs an arbitrary
// text image (loaded at TextBase) plus data segment through the golden
// interpreter and the fully-compressed shadow machine, cross-checking
// architectural state each retired instruction. It is the entry point the
// untrusted-program intake uses to spot-check accepted submissions against
// the Ext3 shadow before they are admitted to the served suite.
func CheckBinary(words []uint32, data []byte, or *Oracle, opts CheckOpts) Report {
	opts = opts.withDefaults()
	rep := Report{}
	fail := func(kind string, step uint64, pc uint32, format string, args ...interface{}) Report {
		rep.Mismatch = &Mismatch{Kind: kind, Step: step, PC: pc, Detail: fmt.Sprintf(format, args...)}
		return rep
	}

	windows := opts.Windows
	if len(windows) == 0 {
		windows = []MemWindow{{Base: DataBase, Size: uint32(len(data))}}
	}
	inWindow := func(addr uint32, width int) bool {
		for _, w := range windows {
			if w.Contains(addr, width) {
				return true
			}
		}
		return false
	}

	m := mem.NewMemory()
	for i, w := range words {
		m.Store32(TextBase+4*uint32(i), w)
	}
	m.LoadSegment(DataBase, data)
	golden := cpu.New(m, opts.Entry, StackTop)
	sh := newShadow(or, words, data)
	sh.pc = opts.Entry
	sh.allowPrints = opts.AllowPrints

	for !golden.Done {
		if rep.Steps >= opts.MaxSteps {
			if opts.StopAtCap {
				return rep
			}
			return fail("timeout", rep.Steps, golden.PC, "exceeded %d steps (generator termination invariant violated)", opts.MaxSteps)
		}
		if sh.pc != golden.PC {
			return fail("pc", rep.Steps, golden.PC, "shadow PC %#08x, golden %#08x", sh.pc, golden.PC)
		}
		e, err := golden.Step()
		if err != nil {
			return fail("golden", rep.Steps, golden.PC, "golden interpreter error: %v", err)
		}
		// Sandbox invariant: data accesses stay inside the allowed
		// windows. Violations mean a malformed (usually over-shrunken)
		// program, not a compression bug.
		if e.MemWidth > 0 && !inWindow(e.Addr, e.MemWidth) {
			return fail("sandbox", rep.Steps, e.PC, "%d-byte access at %#08x outside data segment", e.MemWidth, e.Addr)
		}
		// Instruction-compression round trip, including the documented
		// contract that a clear extension bit makes the low stored byte
		// irrelevant (three-byte fetch).
		st := or.EncodeInst(e.Raw)
		if got := or.DecodeInst(st); got != e.Raw {
			return fail("icomp", rep.Steps, e.PC, "encode/decode %#08x -> %#08x (%s)", e.Raw, got, isa.Decode(e.Raw).Disassemble(e.PC))
		}
		if !st.Ext {
			zeroed := st
			zeroed.Word &^= 0xff
			if got := or.DecodeInst(zeroed); got != e.Raw {
				return fail("icomp", rep.Steps, e.PC, "3-byte fetch decode %#08x -> %#08x", e.Raw, got)
			}
		}

		eff, err := sh.step()
		if err != nil {
			var me *mismatchError
			if errors.As(err, &me) {
				return fail(me.kind, rep.Steps, e.PC, "%s", me.detail)
			}
			return fail("shadow", rep.Steps, e.PC, "%v", err)
		}

		// Store traffic must match value-for-value at the store width.
		if e.Inst.IsStore() || eff.width > 0 {
			mask := widthMask(e.MemWidth)
			if eff.width != e.MemWidth || eff.addr != e.Addr || eff.val&mask != e.StoreVal&mask {
				return fail("store", rep.Steps, e.PC, "shadow store %d@%#08x=%#x, golden %d@%#08x=%#x",
					eff.width, eff.addr, eff.val&mask, e.MemWidth, e.Addr, e.StoreVal&mask)
			}
		}

		// Full architected-state comparison (reads decompress the shadow's
		// Ext3 state, so a 3-bit scheme bug surfaces here).
		for r := 0; r < 32; r++ {
			sv, err := sh.read(isa.Reg(r))
			if err != nil {
				var me *mismatchError
				if errors.As(err, &me) {
					return fail(me.kind, rep.Steps, e.PC, "%s", me.detail)
				}
				return fail("ext3", rep.Steps, e.PC, "%v", err)
			}
			if sv != golden.Regs[r] {
				return fail("reg", rep.Steps, e.PC, "%s = %#08x, golden %#08x after %s",
					isa.Reg(r), sv, golden.Regs[r], e.Inst.Disassemble(e.PC))
			}
		}
		for _, h := range []struct {
			name   string
			c      creg
			golden uint32
		}{{"HI", sh.hi, golden.HI}, {"LO", sh.lo, golden.LO}} {
			sv, err := sh.readHILO(h.c, h.name)
			if err != nil {
				var me *mismatchError
				if errors.As(err, &me) {
					return fail(me.kind, rep.Steps, e.PC, "%s", me.detail)
				}
				return fail("ext3", rep.Steps, e.PC, "%v", err)
			}
			if sv != h.golden {
				return fail("hilo", rep.Steps, e.PC, "%s = %#08x, golden %#08x", h.name, sv, h.golden)
			}
		}
		rep.Steps++
	}
	if !sh.done {
		return fail("exit", rep.Steps, golden.PC, "golden exited, shadow still running at %#08x", sh.pc)
	}
	if sh.exitCode != golden.ExitCode {
		return fail("exit", rep.Steps, golden.PC, "exit code %d, golden %d", sh.exitCode, golden.ExitCode)
	}
	return rep
}

func widthMask(w int) uint32 {
	switch w {
	case 1:
		return 0xff
	case 2:
		return 0xffff
	}
	return 0xffff_ffff
}

// timingResults runs the program through one fresh instance of every
// pipeline model. When concurrent is true each model consumes the event
// stream on its own goroutine (through a buffered channel), mirroring the
// parallel-suite execution; results must not depend on that choice.
func timingResults(p *Program, or *Oracle, maxSteps uint64, concurrent bool) (map[string]pipeline.Result, error) {
	golden, err := p.NewCPU()
	if err != nil {
		return nil, err
	}
	models := pipeline.NewAll()
	var (
		chans []chan trace.Event
		wg    sync.WaitGroup
	)
	if concurrent {
		chans = make([]chan trace.Event, len(models))
		for i, m := range models {
			ch := make(chan trace.Event, 256)
			chans[i] = ch
			wg.Add(1)
			go func(m *pipeline.Model, ch <-chan trace.Event) {
				defer wg.Done()
				for e := range ch {
					m.Consume(e)
				}
			}(m, ch)
		}
	}
	var steps uint64
	for !golden.Done && steps < maxSteps {
		e, err := golden.Step()
		if err != nil {
			return nil, err
		}
		ev := trace.Annotate(e, or.Recoder)
		if concurrent {
			for _, ch := range chans {
				ch <- ev
			}
		} else {
			for _, m := range models {
				m.Consume(ev)
			}
		}
		steps++
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	out := make(map[string]pipeline.Result, len(models))
	for _, m := range models {
		out[m.Name()] = m.Result()
	}
	return out, nil
}

// checkTiming asserts pipeline determinism: a repeat sequential run and a
// concurrent goroutine-per-model run must produce bit-identical Results
// (cycles, instruction counts, and stall breakdowns) for every model.
func checkTiming(p *Program, or *Oracle, maxSteps uint64) *Mismatch {
	base, err := timingResults(p, or, maxSteps, false)
	if err != nil {
		return &Mismatch{Kind: "timing", Detail: fmt.Sprintf("baseline pass: %v", err)}
	}
	for pass, concurrent := range map[string]bool{"repeat": false, "parallel": true} {
		again, err := timingResults(p, or, maxSteps, concurrent)
		if err != nil {
			return &Mismatch{Kind: "timing", Detail: fmt.Sprintf("%s pass: %v", pass, err)}
		}
		for name, want := range base {
			got, ok := again[name]
			if !ok || !reflect.DeepEqual(got, want) {
				return &Mismatch{Kind: "timing", Detail: fmt.Sprintf(
					"%s pass: model %s diverged: %+v vs %+v", pass, name, got, want)}
			}
		}
	}
	return nil
}
