package diffsim

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/icomp"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sig"
	"repro/internal/sigalu"
)

// Oracle bundles the compressed-path primitives under differential test.
// Every field defaults to the production implementation; harness self-tests
// swap individual fields for intentionally broken versions to prove the
// differential check catches (and the shrinker minimizes) real bug classes.
type Oracle struct {
	// Ext3 per-byte scheme: the shadow machine's architected values live in
	// this representation, so a decompression bug becomes architectural.
	CompressExt3   func(uint32) ([]byte, sig.Ext3)
	DecompressExt3 func([]byte, sig.Ext3) (uint32, error)

	// Ext2 count scheme: round-tripped on every register/memory write.
	CompressExt2   func(uint32) ([]byte, sig.Ext2)
	DecompressExt2 func([]byte, sig.Ext2) (uint32, error)

	// Add is the byte-serial adder used for arithmetic and every
	// effective-address computation.
	Add func(a, b uint32) sigalu.Result

	// EncodeInst/DecodeInst are the instruction-compression paths; the
	// shadow fetches through them.
	EncodeInst func(uint32) icomp.Stored
	DecodeInst func(icomp.Stored) uint32

	// Recoder is the recoder behind the default EncodeInst/DecodeInst and
	// the trace annotation of the timing pass.
	Recoder *icomp.Recoder
}

// DefaultOracle wires the production implementations with the static top-8
// function-code recoding.
func DefaultOracle() *Oracle {
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	return &Oracle{
		CompressExt3:   sig.CompressExt3,
		DecompressExt3: sig.DecompressExt3,
		CompressExt2:   sig.CompressExt2,
		DecompressExt2: sig.DecompressExt2,
		Add:            sigalu.Add,
		EncodeInst:     rc.Encode,
		DecodeInst:     rc.Decode,
		Recoder:        rc,
	}
}

// creg is a register held in compressed (stored bytes + extension) form.
type creg struct {
	stored []byte
	ext    sig.Ext3
}

// mismatchError carries a classified divergence out of the shadow step.
type mismatchError struct {
	kind   string
	detail string
}

func (e *mismatchError) Error() string { return e.kind + ": " + e.detail }

// storeEffect reports a data-memory write performed by one shadow step, for
// cross-checking against the golden machine's Exec record.
type storeEffect struct {
	addr  uint32
	val   uint32 // value after the compressed datapath transfer
	width int
}

// shadow is the compressed-path machine: registers, HI/LO and store traffic
// in Ext3 form, instruction fetch through the icomp recoding, arithmetic
// through the significance ALU.
type shadow struct {
	or   *Oracle
	regs [32]creg
	hi   creg
	lo   creg
	pc   uint32
	mem  *mem.Memory // sandboxed data memory (text lives only in `text`)
	text map[uint32]icomp.Stored

	done     bool
	exitCode uint32

	// allowPrints treats print syscalls as architectural no-ops (the
	// golden interpreter only appends to its Output buffer), for checking
	// user-submitted programs; generated programs only ever exit.
	allowPrints bool
}

func newShadow(or *Oracle, words []uint32, data []byte) *shadow {
	s := &shadow{or: or, pc: TextBase, mem: mem.NewMemory(), text: make(map[uint32]icomp.Stored, len(words))}
	for i, w := range words {
		st := or.EncodeInst(w)
		if !st.Ext {
			// Only three bytes are fetched; model that by dropping the
			// stored low byte, which Decode must regenerate.
			st.Word &^= 0xff
		}
		s.text[TextBase+4*uint32(i)] = st
	}
	s.mem.LoadSegment(DataBase, data)
	for r := range s.regs {
		s.regs[r] = s.compress(0)
	}
	s.regs[isa.RegSP] = s.compress(StackTop)
	s.hi, s.lo = s.compress(0), s.compress(0)
	return s
}

func (s *shadow) compress(v uint32) creg {
	stored, e := s.or.CompressExt3(v)
	return creg{stored: stored, ext: e}
}

// write routes a value through the compressed datapath into r, round-trip
// checking the 2-bit count scheme on the way (the 3-bit scheme is checked
// architecturally: the value is *stored* compressed and read back later).
func (s *shadow) write(r isa.Reg, v uint32) error {
	if err := s.checkExt2(v); err != nil {
		return err
	}
	if r != isa.RegZero {
		s.regs[r&31] = s.compress(v)
	}
	return nil
}

func (s *shadow) checkExt2(v uint32) error {
	stored, e := s.or.CompressExt2(v)
	got, err := s.or.DecompressExt2(stored, e)
	if err != nil {
		return &mismatchError{kind: "ext2", detail: fmt.Sprintf("decompress(%x, %d) of %#08x: %v", stored, e, v, err)}
	}
	if got != v {
		return &mismatchError{kind: "ext2", detail: fmt.Sprintf("round trip %#08x -> %#08x", v, got)}
	}
	return nil
}

func (s *shadow) read(r isa.Reg) (uint32, error) {
	c := s.regs[r&31]
	v, err := s.or.DecompressExt3(c.stored, c.ext)
	if err != nil {
		return 0, &mismatchError{kind: "ext3", detail: fmt.Sprintf("%s: %v", r, err)}
	}
	return v, nil
}

func (s *shadow) readHILO(c creg, name string) (uint32, error) {
	v, err := s.or.DecompressExt3(c.stored, c.ext)
	if err != nil {
		return 0, &mismatchError{kind: "ext3", detail: fmt.Sprintf("%s: %v", name, err)}
	}
	return v, nil
}

// step executes one instruction on the compressed paths. It returns the
// store effect (width 0 when the instruction does not store).
func (s *shadow) step() (storeEffect, error) {
	var eff storeEffect
	if s.done {
		return eff, &mismatchError{kind: "exit", detail: "shadow stepped after exit"}
	}
	st, ok := s.text[s.pc]
	if !ok {
		return eff, &mismatchError{kind: "fetch", detail: fmt.Sprintf("PC %#08x outside generated text", s.pc)}
	}
	raw := s.or.DecodeInst(st)
	inst := isa.Decode(raw)
	a, err := s.read(inst.Rs)
	if err != nil {
		return eff, err
	}
	b, err := s.read(inst.Rt)
	if err != nil {
		return eff, err
	}
	simm := uint32(int32(inst.Imm))
	zimm := uint32(uint16(inst.Imm))
	next := s.pc + 4

	branchTo := func() { next = inst.BranchTarget(s.pc) }

	switch inst.Op {
	case isa.OpSpecial:
		if err := s.stepSpecial(inst, a, b, &next); err != nil {
			return eff, err
		}
	case isa.OpRegimm:
		neg := int32(a) < 0
		if (uint8(inst.Rt) == isa.RegimmBLTZ && neg) || (uint8(inst.Rt) == isa.RegimmBGEZ && !neg) {
			branchTo()
		}
	case isa.OpJ:
		next = inst.JumpTarget(s.pc)
	case isa.OpJAL:
		if err := s.write(isa.RegRA, s.pc+4); err != nil {
			return eff, err
		}
		next = inst.JumpTarget(s.pc)
	case isa.OpBEQ:
		if eq, _ := sigalu.Compare(a, b); eq {
			branchTo()
		}
	case isa.OpBNE:
		if eq, _ := sigalu.Compare(a, b); !eq {
			branchTo()
		}
	case isa.OpBLEZ:
		if int32(a) <= 0 {
			branchTo()
		}
	case isa.OpBGTZ:
		if int32(a) > 0 {
			branchTo()
		}
	case isa.OpADDI, isa.OpADDIU:
		if err := s.write(inst.Rt, s.or.Add(a, simm).Value); err != nil {
			return eff, err
		}
	case isa.OpSLTI:
		if err := s.write(inst.Rt, sigalu.SetLess(a, simm, true).Value); err != nil {
			return eff, err
		}
	case isa.OpSLTIU:
		if err := s.write(inst.Rt, sigalu.SetLess(a, simm, false).Value); err != nil {
			return eff, err
		}
	case isa.OpANDI:
		if err := s.write(inst.Rt, sigalu.And(a, zimm).Value); err != nil {
			return eff, err
		}
	case isa.OpORI:
		if err := s.write(inst.Rt, sigalu.Or(a, zimm).Value); err != nil {
			return eff, err
		}
	case isa.OpXORI:
		if err := s.write(inst.Rt, sigalu.Xor(a, zimm).Value); err != nil {
			return eff, err
		}
	case isa.OpLUI:
		if err := s.write(inst.Rt, zimm<<16); err != nil {
			return eff, err
		}
	case isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLW:
		addr := s.or.Add(a, simm).Value
		var v uint32
		switch inst.Op {
		case isa.OpLB:
			v = uint32(int32(int8(s.mem.Load8(addr))))
		case isa.OpLBU:
			v = uint32(s.mem.Load8(addr))
		case isa.OpLH:
			v = uint32(int32(int16(s.mem.Load16(addr))))
		case isa.OpLHU:
			v = uint32(s.mem.Load16(addr))
		case isa.OpLW:
			v = s.mem.Load32(addr)
		}
		if err := s.write(inst.Rt, v); err != nil {
			return eff, err
		}
	case isa.OpSB, isa.OpSH, isa.OpSW:
		addr := s.or.Add(a, simm).Value
		// The store value crosses the datapath compressed: round-trip it
		// through the 3-bit scheme before it reaches memory, so a
		// compression bug corrupts the shadow's memory image and the
		// per-store cross-check (and any later load) catches it.
		stored, e := s.or.CompressExt3(b)
		v, err := s.or.DecompressExt3(stored, e)
		if err != nil {
			return eff, &mismatchError{kind: "ext3", detail: fmt.Sprintf("store value %#08x: %v", b, err)}
		}
		if err := s.checkExt2(b); err != nil {
			return eff, err
		}
		eff = storeEffect{addr: addr, val: v, width: inst.MemBytes()}
		switch inst.Op {
		case isa.OpSB:
			s.mem.Store8(addr, byte(v))
		case isa.OpSH:
			s.mem.Store16(addr, uint16(v))
		case isa.OpSW:
			s.mem.Store32(addr, v)
		}
	default:
		return eff, &mismatchError{kind: "decode", detail: fmt.Sprintf("unexpected opcode %#02x at %#08x", uint8(inst.Op), s.pc)}
	}
	s.pc = next
	return eff, nil
}

func (s *shadow) stepSpecial(inst isa.Inst, a, b uint32, next *uint32) error {
	wr := func(r isa.Reg, v uint32) error { return s.write(r, v) }
	switch inst.Funct {
	case isa.FnSLL:
		return wr(inst.Rd, sigalu.ShiftLeft(b, uint32(inst.Shamt)).Value)
	case isa.FnSRL:
		return wr(inst.Rd, sigalu.ShiftRightL(b, uint32(inst.Shamt)).Value)
	case isa.FnSRA:
		return wr(inst.Rd, sigalu.ShiftRightA(b, uint32(inst.Shamt)).Value)
	case isa.FnSLLV:
		return wr(inst.Rd, sigalu.ShiftLeft(b, a).Value)
	case isa.FnSRLV:
		return wr(inst.Rd, sigalu.ShiftRightL(b, a).Value)
	case isa.FnSRAV:
		return wr(inst.Rd, sigalu.ShiftRightA(b, a).Value)
	case isa.FnJR:
		*next = a
	case isa.FnJALR:
		if err := wr(inst.Rd, s.pc+4); err != nil {
			return err
		}
		*next = a
	case isa.FnSYSCALL:
		v0, err := s.read(isa.RegV0)
		if err != nil {
			return err
		}
		switch v0 {
		case cpu.SysExit:
			s.done, s.exitCode = true, 0
		case cpu.SysExit2:
			a0, err := s.read(isa.RegA0)
			if err != nil {
				return err
			}
			s.done, s.exitCode = true, a0
		case cpu.SysPrintInt, cpu.SysPrintString, cpu.SysPutChar:
			if !s.allowPrints {
				return &mismatchError{kind: "syscall", detail: fmt.Sprintf("unexpected syscall %d (generator emits only exits)", v0)}
			}
			// Architectural no-op: the golden machine only writes its
			// Output buffer.
		default:
			return &mismatchError{kind: "syscall", detail: fmt.Sprintf("unexpected syscall %d (generator emits only exits)", v0)}
		}
	case isa.FnMFHI:
		v, err := s.readHILO(s.hi, "HI")
		if err != nil {
			return err
		}
		return wr(inst.Rd, v)
	case isa.FnMFLO:
		v, err := s.readHILO(s.lo, "LO")
		if err != nil {
			return err
		}
		return wr(inst.Rd, v)
	case isa.FnMTHI:
		if err := s.checkExt2(a); err != nil {
			return err
		}
		s.hi = s.compress(a)
	case isa.FnMTLO:
		if err := s.checkExt2(a); err != nil {
			return err
		}
		s.lo = s.compress(a)
	case isa.FnMULT, isa.FnMULTU:
		hi, lo, _ := sigalu.Mult(a, b, inst.Funct == isa.FnMULT)
		s.hi, s.lo = s.compress(hi), s.compress(lo)
	case isa.FnDIV, isa.FnDIVU:
		quo, rem, _ := sigalu.Div(a, b, inst.Funct == isa.FnDIV)
		s.lo, s.hi = s.compress(quo), s.compress(rem)
	case isa.FnADD, isa.FnADDU:
		return wr(inst.Rd, s.or.Add(a, b).Value)
	case isa.FnSUB, isa.FnSUBU:
		return wr(inst.Rd, sigalu.Sub(a, b).Value)
	case isa.FnAND:
		return wr(inst.Rd, sigalu.And(a, b).Value)
	case isa.FnOR:
		return wr(inst.Rd, sigalu.Or(a, b).Value)
	case isa.FnXOR:
		return wr(inst.Rd, sigalu.Xor(a, b).Value)
	case isa.FnNOR:
		return wr(inst.Rd, sigalu.Nor(a, b).Value)
	case isa.FnSLT:
		return wr(inst.Rd, sigalu.SetLess(a, b, true).Value)
	case isa.FnSLTU:
		return wr(inst.Rd, sigalu.SetLess(a, b, false).Value)
	default:
		return &mismatchError{kind: "decode", detail: fmt.Sprintf("unexpected funct %#02x at %#08x", uint8(inst.Funct), s.pc)}
	}
	return nil
}
