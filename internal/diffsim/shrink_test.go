package diffsim

import "testing"

// TestShrinkInjectedExt3Bug is the acceptance self-test from the harness
// design: an intentionally injected sign-extension bug in DecompressExt3
// must be caught by the differential check and shrunk to a minimal repro of
// at most 8 instructions that still fails with the same mismatch kind —
// and that passes cleanly once the bug is removed.
func TestShrinkInjectedExt3Bug(t *testing.T) {
	broken := brokenExt3Oracle()
	p, rep := findMismatch(t, broken, "reg", "hilo", "store", "pc", "exit", "sandbox", "golden")
	kind := rep.Mismatch.Kind

	small := Shrink(p, broken, ShrinkOpts{})
	t.Logf("shrunk %d ops -> %d ops", len(p.Ops), len(small.Ops))
	if len(small.Ops) > 8 {
		t.Fatalf("shrunk repro still has %d ops (want <= 8):\n%s", len(small.Ops), small.Marshal())
	}

	// The minimized program must reproduce the same failure...
	again := Check(small, broken, CheckOpts{})
	if again.OK() {
		t.Fatalf("shrunk repro no longer fails:\n%s", small.Marshal())
	}
	if again.Mismatch.Kind != kind {
		t.Fatalf("shrunk repro fails with kind %q, original %q", again.Mismatch.Kind, kind)
	}
	// ...and must be a genuine compression repro: clean on the fixed code.
	clean := Check(small, DefaultOracle(), CheckOpts{})
	if !clean.OK() {
		t.Fatalf("shrunk repro fails even without the injected bug: %s", clean.Mismatch)
	}

	// Round-trip through the seed-file format, as cmd/sigfuzz would emit it.
	q, err := UnmarshalProgram(small.Marshal())
	if err != nil {
		t.Fatalf("marshal/unmarshal of shrunk repro: %v", err)
	}
	if rep := Check(q, broken, CheckOpts{}); rep.OK() || rep.Mismatch.Kind != kind {
		t.Fatalf("seed-file round trip lost the repro: %+v", rep.Mismatch)
	}
}

// TestShrinkPreservesTermination forces pathological removals and verifies
// shrink candidates never hang: every Check inside Shrink is step-bounded
// and loop back-edges stay fused with their counter decrement.
func TestShrinkPreservesTermination(t *testing.T) {
	p := Generate(3, Config{Ops: 40, Loops: 2})
	// Removing arbitrary chunks directly must keep programs terminating.
	for lo := 0; lo < len(p.Ops); lo += 3 {
		hi := lo + 5
		if hi > len(p.Ops) {
			hi = len(p.Ops)
		}
		cand := removeOps(p, lo, hi)
		rep := Check(cand, DefaultOracle(), CheckOpts{MaxSteps: 1 << 16})
		if !rep.OK() && rep.Mismatch.Kind == "timeout" {
			t.Fatalf("removal [%d,%d) produced a non-terminating program:\n%s", lo, hi, cand.Listing())
		}
	}
}

func TestShrinkPanicsOnPassingProgram(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Shrink on a passing program did not panic")
		}
	}()
	Shrink(Generate(1, Config{}), DefaultOracle(), ShrinkOpts{})
}
