package diffsim

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/isa"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a := Generate(seed, Config{})
		b := Generate(seed, Config{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
		wa, err := a.Encode()
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		wb, _ := b.Encode()
		if !reflect.DeepEqual(wa, wb) {
			t.Fatalf("seed %d: encodings differ", seed)
		}
	}
}

func TestGenerateEncodesValidText(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		p := Generate(seed, Config{})
		words, err := p.Encode()
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		for i, w := range words {
			inst := isa.Decode(w)
			if err := inst.Validate(); err != nil {
				t.Fatalf("seed %d word %d (%#08x): %v", seed, i, w, err)
			}
		}
	}
}

// TestGenerateOpcodeCoverage checks that across a modest seed range the
// generator exercises every structural instruction class the differential
// harness is meant to stress.
func TestGenerateOpcodeCoverage(t *testing.T) {
	seen := map[string]bool{}
	for seed := uint64(0); seed < 200; seed++ {
		p := Generate(seed, Config{})
		words, err := p.Encode()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, w := range words {
			inst := isa.Decode(w)
			switch {
			case inst.IsLoad():
				seen["load"] = true
			case inst.IsStore():
				seen["store"] = true
			case inst.IsBranch():
				seen["branch"] = true
			case inst.IsJump():
				seen["jump"] = true
			case inst.WritesHILO():
				seen["hilo"] = true
			case inst.Op == isa.OpSpecial && inst.Funct == isa.FnSLL && inst.Shamt > 0:
				seen["shift"] = true
			case inst.Op == isa.OpSpecial:
				seen["r-alu"] = true
			case inst.Op == isa.OpLUI:
				seen["lui"] = true
			default:
				seen["i-alu"] = true
			}
		}
	}
	for _, class := range []string{"load", "store", "branch", "jump", "hilo", "shift", "r-alu", "lui", "i-alu"} {
		if !seen[class] {
			t.Errorf("no %s instruction generated across 200 seeds", class)
		}
	}
}

func TestSeedFileRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		p := Generate(seed, Config{Ops: 20, DataBytes: 64})
		data := p.Marshal()
		q, err := UnmarshalProgram(data)
		if err != nil {
			t.Fatalf("seed %d: unmarshal: %v\n%s", seed, err, data)
		}
		if !reflect.DeepEqual(p.Ops, q.Ops) || !bytes.Equal(p.Data, q.Data) || p.Seed != q.Seed {
			t.Fatalf("seed %d: round trip changed program", seed)
		}
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"not-a-seed\n",
		"diffsim-seed v1\nop zzzz none 0\n",
		"diffsim-seed v1\nop 00000000 sideways 0\n",
		"diffsim-seed v1\nop 00000000 branch 7\n", // target out of range
		"diffsim-seed v1\ndata xyz\n",
		"diffsim-seed v1\nbogus 1\n",
	}
	for _, c := range cases {
		if _, err := UnmarshalProgram([]byte(c)); err == nil {
			t.Errorf("UnmarshalProgram(%q) unexpectedly succeeded", c)
		}
	}
}
