package diffsim

import (
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// exitWords is the unconditional epilogue: addiu $v0,$zero,10; syscall.
func exitWords() [2]uint32 {
	return [2]uint32{
		isa.EncodeI(isa.OpADDIU, isa.RegZero, isa.RegV0, cpu.SysExit),
		isa.EncodeR(isa.FnSYSCALL, 0, 0, 0, 0),
	}
}

// wordOffsets returns the word offset of each op plus, at index len(Ops),
// the offset of the exit stub.
func (p *Program) wordOffsets() []int {
	off := make([]int, len(p.Ops)+1)
	for i, o := range p.Ops {
		off[i+1] = off[i] + o.words()
	}
	return off
}

// Encode renders the program as a contiguous text image at TextBase,
// patching every control-flow unit's destination from its op index.
func (p *Program) Encode() ([]uint32, error) {
	off := p.wordOffsets()
	addrOf := func(idx int) uint32 {
		if idx < 0 || idx > len(p.Ops) {
			idx = len(p.Ops)
		}
		return TextBase + 4*uint32(off[idx])
	}
	words := make([]uint32, 0, off[len(p.Ops)]+2)
	for i, o := range p.Ops {
		switch o.Ctl {
		case CtlNone:
			words = append(words, o.Raw)
		case CtlBranch, CtlLoopBack:
			if o.Ctl == CtlLoopBack {
				k := isa.Decode(o.Raw).Rs
				words = append(words, isa.EncodeI(isa.OpADDIU, k, k, -1))
			}
			pc := TextBase + 4*uint32(len(words))
			disp := (int64(addrOf(o.Target)) - int64(pc) - 4) / 4
			if disp < -0x8000 || disp > 0x7fff {
				return nil, fmt.Errorf("diffsim: op %d: branch displacement %d out of range", i, disp)
			}
			words = append(words, o.Raw|uint32(uint16(int16(disp))))
		case CtlJump:
			words = append(words, o.Raw|(addrOf(o.Target)>>2)&0x03ffffff)
		case CtlJumpReg:
			t := addrOf(o.Target)
			words = append(words,
				isa.EncodeI(isa.OpLUI, 0, isa.RegAT, int16(t>>16)),
				isa.EncodeI(isa.OpORI, isa.RegAT, isa.RegAT, int16(uint16(t))),
				o.Raw)
		default:
			return nil, fmt.Errorf("diffsim: op %d: unknown ctl kind %d", i, o.Ctl)
		}
	}
	ex := exitWords()
	words = append(words, ex[0], ex[1])
	return words, nil
}

// NewCPU encodes the program and loads it into a fresh golden machine.
func (p *Program) NewCPU() (*cpu.CPU, error) {
	words, err := p.Encode()
	if err != nil {
		return nil, err
	}
	m := mem.NewMemory()
	for i, w := range words {
		m.Store32(TextBase+4*uint32(i), w)
	}
	m.LoadSegment(DataBase, p.Data)
	return cpu.New(m, TextBase, StackTop), nil
}

// Listing renders a human-readable disassembly of the encoded program,
// used in mismatch reports and seed-file comments.
func (p *Program) Listing() string {
	words, err := p.Encode()
	if err != nil {
		return fmt.Sprintf("<unencodable: %v>", err)
	}
	var b strings.Builder
	for i, w := range words {
		pc := TextBase + 4*uint32(i)
		fmt.Fprintf(&b, "%08x: %08x  %s\n", pc, w, isa.Decode(w).Disassemble(pc))
	}
	return b.String()
}
