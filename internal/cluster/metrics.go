package cluster

import "sync/atomic"

// Metrics is the gateway's counter registry. All fields are safe for
// concurrent use; the exported view is an immutable Snapshot whose JSON
// schema is pinned by test (dashboards key off it, like the shard's).
type Metrics struct {
	requests      atomic.Uint64 // client requests accepted by the gateway API
	routed        atomic.Uint64 // single jobs dispatched by ring ownership
	scatterSuites atomic.Uint64 // suite evaluations scattered over the fleet
	scatterSweeps atomic.Uint64 // sweep grids scattered over the fleet
	partials      atomic.Uint64 // shard partials merged into suite responses
	retries       atomic.Uint64 // same-backend retries (Retry-After honored)
	failovers     atomic.Uint64 // dispatches moved to the next backend after a failure
	hedges        atomic.Uint64 // speculative duplicate dispatches launched
	hedgeWins     atomic.Uint64 // ... that returned first
	backendErrors atomic.Uint64 // failed backend calls (transport or 5xx)
	backendDown   atomic.Uint64 // healthy->unhealthy transitions
	errors        atomic.Uint64 // client requests answered with an error

	programsRouted  atomic.Uint64 // program submissions dispatched to content-hash owners
	programReplicas atomic.Uint64 // validated replicas installed on backends
	replicaErrors   atomic.Uint64 // replica pushes that failed (retried on next scatter)
}

// Snapshot is a point-in-time copy of every gateway counter.
type Snapshot struct {
	Requests       uint64 `json:"requests"`
	Routed         uint64 `json:"routed"`
	ScatterSuites  uint64 `json:"scatterSuites"`
	ScatterSweeps  uint64 `json:"scatterSweeps"`
	MergedPartials uint64 `json:"mergedPartials"`
	Retries        uint64 `json:"retries"`
	Failovers      uint64 `json:"failovers"`
	Hedges         uint64 `json:"hedges"`
	HedgeWins      uint64 `json:"hedgeWins"`
	BackendErrors  uint64 `json:"backendErrors"`
	BackendDown    uint64 `json:"backendDown"`
	Errors         uint64 `json:"errors"`

	ProgramsRouted  uint64 `json:"programsRouted"`
	ProgramReplicas uint64 `json:"programReplicas"`
	ReplicaErrors   uint64 `json:"replicaErrors"`
}

// Snapshot returns a consistent copy of the current counters.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Requests:       m.requests.Load(),
		Routed:         m.routed.Load(),
		ScatterSuites:  m.scatterSuites.Load(),
		ScatterSweeps:  m.scatterSweeps.Load(),
		MergedPartials: m.partials.Load(),
		Retries:        m.retries.Load(),
		Failovers:      m.failovers.Load(),
		Hedges:         m.hedges.Load(),
		HedgeWins:      m.hedgeWins.Load(),
		BackendErrors:  m.backendErrors.Load(),
		BackendDown:    m.backendDown.Load(),
		Errors:         m.errors.Load(),

		ProgramsRouted:  m.programsRouted.Load(),
		ProgramReplicas: m.programReplicas.Load(),
		ReplicaErrors:   m.replicaErrors.Load(),
	}
}
