package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/simsvc"
	"repro/internal/workload"
)

// attemptOut carries one backend attempt's outcome back to dispatch.
type attemptOut[T any] struct {
	idx int
	val T
	err error
}

// dispatch runs fn against the fleet in ring preference order for key:
// the owner first, in-rotation backends before broken ones (broken ones
// stay reachable as a last resort — a fully-down fleet still gets tried
// once rather than failing without a network packet). One straggler hedge
// duplicates the work onto the next choice after HedgeAfter; any transient
// failure moves on to the next choice immediately. The first success wins
// and cancels the losers. Permanent (400) answers propagate at once: the
// request is wrong, not the shard.
func dispatch[T any](ctx context.Context, g *Gateway, key string, fn func(context.Context, *backend) (T, error)) (T, error) {
	var zero T
	seq := g.ring.sequence(key)
	if len(seq) == 0 {
		return zero, fmt.Errorf("cluster: no backends configured")
	}
	var cands, benched []*backend
	for _, i := range seq {
		b := g.backends[i]
		if b.available(g.cfg.BreakerThreshold, g.cfg.BreakerCooldown) {
			cands = append(cands, b)
		} else {
			benched = append(benched, b)
		}
	}
	cands = append(cands, benched...)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan attemptOut[T], len(cands))
	launched, hedgedIdx := 0, -1
	launch := func() {
		idx := launched
		b := cands[idx]
		launched++
		go func() {
			v, err := attempt(ctx, g, b, fn)
			results <- attemptOut[T]{idx: idx, val: v, err: err}
		}()
	}
	launch()

	var hedgeC <-chan time.Time
	if g.cfg.HedgeAfter > 0 && len(cands) > 1 {
		timer := time.NewTimer(g.cfg.HedgeAfter)
		defer timer.Stop()
		hedgeC = timer.C
	}

	outstanding := 1
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return zero, ctx.Err()
		case <-hedgeC:
			// One straggler hedge per dispatch: the primary hasn't answered,
			// so speculatively duplicate the work onto the next choice and
			// let the faster shard win.
			hedgeC = nil
			if launched < len(cands) {
				hedgedIdx = launched
				g.metrics.hedges.Add(1)
				launch()
				outstanding++
			}
		case res := <-results:
			outstanding--
			if res.err == nil {
				if res.idx == hedgedIdx {
					g.metrics.hedgeWins.Add(1)
				}
				return res.val, nil
			}
			if ctx.Err() != nil {
				return zero, ctx.Err()
			}
			var he *httpError
			if errors.As(res.err, &he) && he.permanent() {
				return zero, res.err
			}
			lastErr = res.err
			if launched < len(cands) {
				g.metrics.failovers.Add(1)
				launch()
				outstanding++
			} else if outstanding == 0 {
				return zero, lastErr
			}
		}
	}
}

// attempt runs fn against one backend, retrying in place when the shard
// sheds load: a 429/503 with a Retry-After hint is honored (capped at
// RetryAfterCap) up to Retries times before the attempt is given up and
// dispatch fails over. Transport failures feed the breaker and fail the
// attempt immediately — a dead shard gets a failover, not patience.
func attempt[T any](ctx context.Context, g *Gateway, b *backend, fn func(context.Context, *backend) (T, error)) (T, error) {
	var zero T
	for try := 0; ; try++ {
		v, err := fn(ctx, b)
		if err == nil {
			b.markSuccess()
			return v, nil
		}
		if ctx.Err() != nil {
			return zero, ctx.Err()
		}
		g.metrics.backendErrors.Add(1)
		var he *httpError
		switch {
		case errors.As(err, &he) && he.permanent():
			// The shard is fine; the request is not. Don't punish the breaker.
			return zero, err
		case errors.As(err, &he) && he.retryable() && try < g.cfg.Retries:
			wait := he.RetryAfter
			if wait <= 0 {
				// No hint: exponential backoff from 100ms.
				wait = 100 * time.Millisecond << uint(try)
			}
			if wait > g.cfg.RetryAfterCap {
				wait = g.cfg.RetryAfterCap
			}
			g.metrics.retries.Add(1)
			select {
			case <-time.After(wait):
				continue
			case <-ctx.Done():
				return zero, ctx.Err()
			}
		default:
			if b.markFailure(g.cfg.BreakerThreshold) {
				g.metrics.backendDown.Add(1)
			}
			return zero, err
		}
	}
}

// jobKey is the ring key for a single (bench, model) job; partitions use
// the bare benchmark with an empty model so a benchmark's suite share and
// its single-job results land on the same shard's caches.
func jobKey(bench, model string) string { return bench + "|" + model }

// Simulate routes one job to the shard owning (bench, model), with
// failover along the ring.
func (g *Gateway) Simulate(ctx context.Context, req simsvc.Request) (*simsvc.Response, error) {
	g.metrics.requests.Add(1)
	resp, err := g.simulate(ctx, req)
	if err != nil {
		g.metrics.errors.Add(1)
	}
	return resp, err
}

// simulate is the dispatch without the client-request accounting, shared
// with the scattered sweep (whose per-pair failures are flagged results,
// not gateway errors).
func (g *Gateway) simulate(ctx context.Context, req simsvc.Request) (*simsvc.Response, error) {
	g.metrics.routed.Add(1)
	if workload.IsUserName(req.Bench) {
		// A user-program job can land on any shard along the failover
		// sequence; make sure the gateway's replica (if it has one) is
		// installed fleet-wide first. Confirmed installs make this a no-op.
		g.ensurePrograms(ctx, []string{req.Bench})
	}
	q := url.Values{}
	q.Set("bench", req.Bench)
	q.Set("model", req.Model)
	if req.Gran != 0 {
		q.Set("gran", strconv.Itoa(req.Gran))
	}
	path := "/v1/simulate?" + q.Encode()
	return dispatch(ctx, g, jobKey(req.Bench, req.Model), func(ctx context.Context, b *backend) (*simsvc.Response, error) {
		var out simsvc.Response
		if err := g.getJSON(ctx, b, path, &out); err != nil {
			return nil, err
		}
		return &out, nil
	})
}

// Suite scatters the full evaluation across the fleet — each shard
// computes the partition of benchmarks it owns on the ring — and merges
// the partials into the complete suite document. Because every shard
// serves the whole suite (so the recoder profile is identical everywhere)
// and partials carry raw collector counts, the merged response is
// byte-identical to a single process's /v1/suite, whatever the partition.
// Any partition that cannot be computed anywhere fails the whole suite:
// a partial answer is never passed off as the full one.
func (g *Gateway) Suite(ctx context.Context) (*simsvc.Response, error) {
	return g.SuiteOf(ctx, nil)
}

// SuiteOf is Suite over an explicit benchmark list, built-ins and accepted
// user programs mixed freely and merged in the requested order. User
// programs the gateway holds replicas for are pushed to unconfirmed shards
// before the scatter (see ensurePrograms), so the partition owning a user
// benchmark can always resolve it; the recoder stays profiled over the
// fixed served suite on every shard, so the same list merges to the same
// bytes whatever the shard count. An empty list is the full served suite.
func (g *Gateway) SuiteOf(ctx context.Context, names []string) (*simsvc.Response, error) {
	g.metrics.requests.Add(1)
	cat, err := g.loadCatalog(ctx)
	if err != nil {
		g.metrics.errors.Add(1)
		return nil, err
	}
	order := cat.order
	if len(names) > 0 {
		seen := make(map[string]bool, len(names))
		for _, bn := range names {
			if seen[bn] {
				g.metrics.errors.Add(1)
				return nil, invalidf("duplicate benchmark %q in suite", bn)
			}
			seen[bn] = true
			if !cat.benchSet[bn] && !workload.IsUserName(bn) {
				g.metrics.errors.Add(1)
				return nil, invalidf("unknown benchmark %q (submitted programs are served under the user: namespace)", bn)
			}
		}
		order = names
		g.ensurePrograms(ctx, userBenchesOf(names))
	}
	g.metrics.scatterSuites.Add(1)
	start := time.Now()

	// Partition the suite by ring ownership, preserving requested order
	// within each partition. Ownership only sets where each share runs
	// first — any shard can compute any subset, so failover and hedging
	// stay safe.
	partIdx := make(map[int]int)
	var partitions [][]string
	for _, name := range order {
		owner := g.ring.owner(jobKey(name, ""))
		i, ok := partIdx[owner]
		if !ok {
			i = len(partitions)
			partIdx[owner] = i
			partitions = append(partitions, nil)
		}
		partitions[i] = append(partitions[i], name)
	}

	responses := make([]*simsvc.Response, len(partitions))
	errs := make([]error, len(partitions))
	var wg sync.WaitGroup
	for i, part := range partitions {
		wg.Add(1)
		go func(i int, part []string) {
			defer wg.Done()
			path := "/v1/partial?bench=" + url.QueryEscape(strings.Join(part, ","))
			responses[i], errs[i] = dispatch(ctx, g, jobKey(part[0], ""), func(ctx context.Context, b *backend) (*simsvc.Response, error) {
				var out simsvc.Response
				if err := g.getJSON(ctx, b, path, &out); err != nil {
					return nil, err
				}
				if out.Partial == nil {
					return nil, fmt.Errorf("%w: %s: partial response missing payload", errTransport, b.name)
				}
				return &out, nil
			})
		}(i, part)
	}
	wg.Wait()
	for i, perr := range errs {
		if perr != nil {
			g.metrics.errors.Add(1)
			return nil, fmt.Errorf("cluster: suite partition %s failed: %w", strings.Join(partitions[i], ","), perr)
		}
	}

	parts := make([]*experiments.PartialSuite, len(responses))
	for i, r := range responses {
		parts[i] = r.Partial
		g.metrics.partials.Add(1)
	}
	suite, insts, err := experiments.MergePartials(order, parts)
	if err != nil {
		g.metrics.errors.Add(1)
		return nil, err
	}
	return &simsvc.Response{
		Insts:     insts,
		Suite:     suite,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	}, nil
}

// sweepJob is one (benchmark × model) unit of a scattered sweep.
type sweepJob struct {
	bench, model string
}

// Sweep scatters the (benchmark × model) grid across the fleet, each pair
// routed to its ring owner, and calls emit for each result in completion
// order — the same contract as the shard-local Sweep, down to the shared
// SweepAccumulator producing the summary. Pairs that fail everywhere
// become Responses with Error set and are tallied in the summary: partial
// results are flagged, never silently wrong.
func (g *Gateway) Sweep(ctx context.Context, gran int, benches, models []string, emit func(*simsvc.Response) error) (*simsvc.SweepSummary, error) {
	g.metrics.requests.Add(1)
	cat, err := g.loadCatalog(ctx)
	if err != nil {
		g.metrics.errors.Add(1)
		return nil, err
	}
	if len(benches) == 0 {
		benches = cat.order
	}
	if len(models) == 0 {
		models = cat.models
	}
	if gran == 0 {
		gran = 1
	}
	for _, bn := range benches {
		if !cat.benchSet[bn] && !workload.IsUserName(bn) {
			g.metrics.errors.Add(1)
			return nil, invalidf("unknown benchmark %q (submitted programs are served under the user: namespace)", bn)
		}
	}
	for _, mn := range models {
		if !cat.modelSet[mn] {
			g.metrics.errors.Add(1)
			return nil, invalidf("unknown model %q", mn)
		}
	}
	g.ensurePrograms(ctx, userBenchesOf(benches))
	g.metrics.scatterSweeps.Add(1)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make([]sweepJob, 0, len(benches)*len(models))
	for _, bn := range benches {
		for _, mn := range models {
			jobs = append(jobs, sweepJob{bench: bn, model: mn})
		}
	}

	type sweepOut struct {
		job  sweepJob
		resp *simsvc.Response
		err  error
	}
	ch := make(chan sweepOut)
	sem := make(chan struct{}, g.cfg.SweepInflight)
	var wg sync.WaitGroup
	for _, job := range jobs {
		wg.Add(1)
		go func(job sweepJob) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				return
			}
			resp, err := g.simulate(ctx, simsvc.Request{Bench: job.bench, Model: job.model, Gran: gran})
			select {
			case ch <- sweepOut{job: job, resp: resp, err: err}:
			case <-ctx.Done():
			}
		}(job)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()

	acc := simsvc.NewSweepAccumulator(gran, benches, models)
	for out := range ch {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp := acc.Add(out.job.bench, out.job.model, out.resp, out.err)
		if emit != nil {
			if err := emit(resp); err != nil {
				cancel()
				g.metrics.errors.Add(1)
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return acc.Summary(), nil
}
