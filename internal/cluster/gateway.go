package cluster

import (
	"container/list"
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/simsvc"
	"repro/internal/workload"
)

// Config parameterizes a Gateway. The zero value of every field except
// Backends selects a sensible default.
type Config struct {
	// Backends lists the sigserve shards fronted by the gateway, as base
	// URLs ("http://host:port" or bare "host:port"). Required.
	Backends []string

	// Replicas is the virtual-node count per backend on the hash ring.
	Replicas int

	// Retries is how many times a single dispatch re-asks the same shard
	// after a 429/503 before failing over (default 2).
	Retries int

	// RetryAfterCap bounds how long the gateway honors a shard's
	// Retry-After hint per retry (default 5s) — a shard deep in overload
	// may suggest 30s, but the gateway would rather fail over.
	RetryAfterCap time.Duration

	// HedgeAfter is how long a dispatch waits on its primary shard before
	// speculatively duplicating the work onto the next ring choice
	// (default 2s; <0 disables hedging).
	HedgeAfter time.Duration

	// ProbeInterval is the active /readyz probing period (default 2s;
	// <0 disables the prober).
	ProbeInterval time.Duration

	// BreakerThreshold is the consecutive-failure count that takes a
	// backend out of rotation (default 3); BreakerCooldown is how long it
	// stays out before one half-open trial is allowed (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// SweepInflight bounds how many (benchmark × model) jobs a scattered
	// sweep keeps in flight across the fleet (default 2 per backend).
	SweepInflight int

	// ProgramReplicas and ProgramReplicaBytes bound the gateway's store of
	// accepted-program replicas by count and bytes (defaults mirror the
	// shard registry: 256 programs, 16 MiB). Evicted replicas are simply
	// re-fetched from the content-hash owner shard on a later lookup, so
	// the bound costs a round trip, never an answer.
	ProgramReplicas     int
	ProgramReplicaBytes int64

	// InstallToken, when set, is sent as X-Install-Token on every replica
	// push so shards can gate POST /v1/program/install behind the shared
	// fleet secret. Must match the shards' -program-install-token.
	InstallToken string

	// Client is the HTTP client used for all backend traffic. Defaults to
	// a dedicated client with no overall timeout (suite evaluations are
	// long; cancellation comes from request contexts).
	Client *http.Client
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Replicas <= 0 {
		out.Replicas = defaultReplicas
	}
	if out.Retries == 0 {
		out.Retries = 2
	}
	if out.RetryAfterCap <= 0 {
		out.RetryAfterCap = 5 * time.Second
	}
	if out.HedgeAfter == 0 {
		out.HedgeAfter = 2 * time.Second
	}
	if out.ProbeInterval == 0 {
		out.ProbeInterval = 2 * time.Second
	}
	if out.BreakerThreshold <= 0 {
		out.BreakerThreshold = 3
	}
	if out.BreakerCooldown <= 0 {
		out.BreakerCooldown = 5 * time.Second
	}
	if out.SweepInflight <= 0 {
		out.SweepInflight = 2 * len(out.Backends)
		if out.SweepInflight < 4 {
			out.SweepInflight = 4
		}
	}
	if out.ProgramReplicas <= 0 {
		out.ProgramReplicas = workload.DefaultMaxPrograms
	}
	if out.ProgramReplicaBytes <= 0 {
		out.ProgramReplicaBytes = workload.DefaultMaxStoredBytes
	}
	if out.Client == nil {
		out.Client = &http.Client{}
	}
	return out
}

// Gateway fronts a fleet of sigserve shards: it routes single simulation
// jobs by ring ownership for cache locality and scatter/gathers suite and
// sweep evaluations across every shard, merging the partials into
// responses indistinguishable from a single process's.
type Gateway struct {
	cfg      Config
	backends []*backend
	ring     *ring
	client   *http.Client
	metrics  Metrics
	start    time.Time

	done chan struct{}
	wg   sync.WaitGroup

	catMu sync.Mutex
	cat   *catalog

	// progMu guards the gateway's replica store: programs accepted through
	// this gateway, each with the set of backends that confirmed its
	// install (keyed by backend base URL). Scatter paths re-push
	// unconfirmed replicas so a shard that was down at accept time still
	// gets the program before work lands on it. The store is a count- and
	// byte-bounded LRU (Config.ProgramReplicas/ProgramReplicaBytes):
	// replicas carry full source + assembly, so an unbounded store would
	// leak monotonically on a long-lived gateway. An evicted replica is
	// re-fetched from the fleet on demand.
	progMu    sync.Mutex
	programs  map[string]*list.Element // -> *replica
	progLRU   *list.List               // front = most recent
	progBytes int64
}

// replica is one stored accepted program plus its per-backend install
// confirmations.
type replica struct {
	p         *workload.Program
	confirmed map[string]bool
}

// New builds a Gateway over cfg.Backends and starts the readiness prober.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends configured")
	}
	g := &Gateway{
		cfg:      cfg,
		client:   cfg.Client,
		start:    time.Now(),
		done:     make(chan struct{}),
		programs: make(map[string]*list.Element),
		progLRU:  list.New(),
	}
	names := make([]string, 0, len(cfg.Backends))
	seen := make(map[string]bool, len(cfg.Backends))
	for _, raw := range cfg.Backends {
		b, err := newBackend(raw)
		if err != nil {
			return nil, err
		}
		if seen[b.base] {
			return nil, fmt.Errorf("cluster: duplicate backend %s", b.name)
		}
		seen[b.base] = true
		g.backends = append(g.backends, b)
		names = append(names, b.name)
	}
	g.ring = newRing(names, cfg.Replicas)
	if cfg.ProbeInterval > 0 {
		g.wg.Add(1)
		go g.probeLoop()
	}
	return g, nil
}

// Close stops the readiness prober. In-flight requests are not awaited;
// callers drain their HTTP server first.
func (g *Gateway) Close() {
	close(g.done)
	g.wg.Wait()
}

// Metrics exposes the gateway counter registry.
func (g *Gateway) Metrics() *Metrics { return &g.metrics }

// Uptime reports how long the gateway has been running.
func (g *Gateway) Uptime() time.Duration { return time.Since(g.start) }

// Backends reports the per-backend health view for /metrics and /readyz.
func (g *Gateway) Backends() []interface{} {
	out := make([]interface{}, 0, len(g.backends))
	for _, b := range g.backends {
		out = append(out, b.status())
	}
	return out
}

// catalog is the fleet's served suite and model set, fetched once from any
// shard and cached: every shard serves the same suite (the merge invariant
// depends on it), so any answer is the fleet's answer.
type catalog struct {
	benches  []benchEntry
	order    []string // benchmark names in serving order
	models   []string
	benchSet map[string]bool
	modelSet map[string]bool
}

// benchEntry mirrors the /v1/benchmarks list items.
type benchEntry struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// loadCatalog returns the cached catalog, fetching it from the fleet on
// first use.
func (g *Gateway) loadCatalog(ctx context.Context) (*catalog, error) {
	g.catMu.Lock()
	defer g.catMu.Unlock()
	if g.cat != nil {
		return g.cat, nil
	}
	cat, err := dispatch(ctx, g, "catalog", func(ctx context.Context, b *backend) (*catalog, error) {
		var benches []benchEntry
		if err := g.getJSON(ctx, b, "/v1/benchmarks", &benches); err != nil {
			return nil, err
		}
		var models []string
		if err := g.getJSON(ctx, b, "/v1/models", &models); err != nil {
			return nil, err
		}
		c := &catalog{
			benches:  benches,
			models:   models,
			benchSet: make(map[string]bool, len(benches)),
			modelSet: make(map[string]bool, len(models)),
		}
		for _, be := range benches {
			c.order = append(c.order, be.Name)
			c.benchSet[be.Name] = true
		}
		for _, m := range models {
			c.modelSet[m] = true
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	if len(cat.order) == 0 {
		return nil, fmt.Errorf("cluster: fleet serves an empty benchmark suite")
	}
	g.cat = cat
	return cat, nil
}

// invalidf builds the 400-mapped error shared with the shard API.
func invalidf(format string, args ...interface{}) error {
	return &simsvc.InvalidRequestError{Reason: fmt.Sprintf(format, args...)}
}
