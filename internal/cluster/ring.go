// Package cluster is the sharded simulation fleet behind cmd/siggate: a
// gateway that fronts N sigserve backends, consistent-hashes single jobs by
// (bench, model) so each shard's result and trace caches stay hot, and
// scatter/gathers suite and sweep evaluations across the fleet, merging
// partial results through the mergeable-collector invariant (a suite
// scattered over three shards encodes byte-identically to a single-process
// run). Backend loss is survived with the resilience vocabulary of the
// service layer: readiness probing takes draining shards out of rotation,
// per-backend circuit breaking sidelines dead ones, retries honor the
// shards' load-aware Retry-After, and straggling partitions are hedged onto
// healthy peers.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultReplicas is the virtual-node count per backend on the hash ring;
// enough to spread a 16-benchmark suite acceptably evenly over small
// fleets.
const defaultReplicas = 64

// ring is a consistent-hash ring over backend indices. It is immutable
// once built; membership changes build a new ring (see Gateway.setRing).
type ring struct {
	n      int            // number of backends
	hashes []uint64       // sorted virtual-node hashes
	owners map[uint64]int // hash -> backend index
}

// newRing hashes each backend name onto replicas virtual nodes.
func newRing(names []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{n: len(names), owners: make(map[uint64]int, len(names)*replicas)}
	for i, name := range names {
		for v := 0; v < replicas; v++ {
			h := hash64(fmt.Sprintf("%s#%d", name, v))
			// On the (astronomically unlikely) collision the earlier backend
			// keeps the point; determinism is what matters.
			if _, taken := r.owners[h]; taken {
				continue
			}
			r.owners[h] = i
			r.hashes = append(r.hashes, h)
		}
	}
	sort.Slice(r.hashes, func(a, b int) bool { return r.hashes[a] < r.hashes[b] })
	return r
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// owner returns the backend index owning key (the first virtual node at or
// clockwise of the key's hash).
func (r *ring) owner(key string) int {
	if r.n == 0 {
		return -1
	}
	return r.owners[r.hashes[r.at(key)]]
}

func (r *ring) at(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return i
}

// sequence returns every backend index exactly once, in ring preference
// order for key: the owner first, then each further distinct backend met
// walking clockwise. Dispatch uses it as the failover/hedging order, so
// every request has a deterministic second and third choice.
func (r *ring) sequence(key string) []int {
	if r.n == 0 {
		return nil
	}
	seq := make([]int, 0, r.n)
	seen := make(map[int]bool, r.n)
	for i, steps := r.at(key), 0; steps < len(r.hashes) && len(seq) < r.n; steps++ {
		b := r.owners[r.hashes[i]]
		if !seen[b] {
			seen[b] = true
			seq = append(seq, b)
		}
		i++
		if i == len(r.hashes) {
			i = 0
		}
	}
	return seq
}
