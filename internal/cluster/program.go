package cluster

import (
	"context"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/simsvc"
	"repro/internal/workload"
)

// SubmitProgram routes one untrusted submission to the shard owning its
// content hash (the same deterministic routing as single jobs, so repeat
// submissions of the same source land on the same shard's registry) and,
// on acceptance, replicates the validated program across the fleet so
// scattered suites and sweeps can land its jobs anywhere. Rejections and
// quarantines are permanent answers: the gateway propagates them without
// re-running the probation on another shard.
func (g *Gateway) SubmitProgram(ctx context.Context, tenant string, req simsvc.ProgramRequest) (*workload.Program, error) {
	g.metrics.requests.Add(1)
	lang := req.Lang
	if lang == "" {
		lang = workload.LangAsm
	}
	id := workload.ProgramID(lang, req.Source)
	g.metrics.programsRouted.Add(1)
	var hdr http.Header
	if tenant != "" {
		hdr = http.Header{"X-Tenant": []string{tenant}}
	}
	p, err := dispatch(ctx, g, "program|"+id, func(ctx context.Context, b *backend) (*workload.Program, error) {
		var out workload.Program
		if err := g.postJSON(ctx, b, "/v1/program", hdr, req, &out); err != nil {
			return nil, err
		}
		return &out, nil
	})
	if err != nil {
		g.metrics.errors.Add(1)
		return nil, err
	}
	g.storeReplica(p)
	g.ensurePrograms(ctx, []string{p.Name})
	return p, nil
}

// storeReplica inserts (or refreshes) one accepted program in the bounded
// replica store, evicting LRU tails past the count/byte budget. Eviction
// drops the install confirmations with the program; if the name comes back
// later it is re-fetched and re-pushed, and shards answer re-pushes of a
// resident program cheaply.
func (g *Gateway) storeReplica(p *workload.Program) {
	g.progMu.Lock()
	defer g.progMu.Unlock()
	if el, ok := g.programs[p.Name]; ok {
		rep := el.Value.(*replica)
		g.progBytes += p.Bytes() - rep.p.Bytes()
		rep.p = p
		g.progLRU.MoveToFront(el)
	} else {
		el := g.progLRU.PushFront(&replica{p: p, confirmed: make(map[string]bool)})
		g.programs[p.Name] = el
		g.progBytes += p.Bytes()
	}
	for (g.progLRU.Len() > g.cfg.ProgramReplicas || g.progBytes > g.cfg.ProgramReplicaBytes) && g.progLRU.Len() > 1 {
		back := g.progLRU.Back()
		rep := back.Value.(*replica)
		g.progLRU.Remove(back)
		delete(g.programs, rep.p.Name)
		g.progBytes -= rep.p.Bytes()
	}
}

// replicaOf returns the stored replica for name (touching its LRU slot),
// or nil.
func (g *Gateway) replicaOf(name string) *replica {
	g.progMu.Lock()
	defer g.progMu.Unlock()
	if el, ok := g.programs[name]; ok {
		g.progLRU.MoveToFront(el)
		return el.Value.(*replica)
	}
	return nil
}

// GetProgram answers a program lookup from the gateway's replica store,
// falling back to the fleet (content-hash owner first). An unknown id is a
// permanent 404: content addressing means no other shard can have it under
// a different name.
func (g *Gateway) GetProgram(ctx context.Context, id string) (*workload.Program, error) {
	g.metrics.requests.Add(1)
	name := id
	if !workload.IsUserName(name) {
		name = "user:" + name
	}
	if rep := g.replicaOf(name); rep != nil {
		return rep.p, nil
	}
	bare := strings.TrimPrefix(name, "user:")
	p, err := dispatch(ctx, g, "program|"+bare, func(ctx context.Context, b *backend) (*workload.Program, error) {
		var out workload.Program
		if err := g.getJSON(ctx, b, "/v1/program/"+url.PathEscape(bare), &out); err != nil {
			return nil, err
		}
		return &out, nil
	})
	if err != nil {
		g.metrics.errors.Add(1)
		return nil, err
	}
	return p, nil
}

// ensurePrograms pushes the gateway's validated replicas of the named user
// programs to every backend that has not yet confirmed the install. It is
// the scatter-time half of replication: acceptance broadcasts once, and any
// shard that was down (or joined late) gets the program re-pushed before
// scattered work can land on it. Names the gateway does not hold replicas
// for are left to the shards — a program submitted directly to one shard
// still runs there, and a genuinely unknown name gets that shard's typed
// error. Push failures are counted and retried on the next scatter rather
// than failing the request: the shard answering the work is the one that
// must hold the program, and dispatch prefers shards that confirmed.
func (g *Gateway) ensurePrograms(ctx context.Context, names []string) {
	var hdr http.Header
	if g.cfg.InstallToken != "" {
		hdr = http.Header{"X-Install-Token": []string{g.cfg.InstallToken}}
	}
	for _, name := range names {
		if !workload.IsUserName(name) {
			continue
		}
		rep := g.replicaOf(name)
		if rep == nil {
			continue
		}
		for _, b := range g.backends {
			// rep.confirmed is guarded by progMu; the *replica itself stays
			// valid even if the store evicts it mid-push — the confirmations
			// are then simply discarded with it.
			g.progMu.Lock()
			done := rep.confirmed[b.base]
			g.progMu.Unlock()
			if done {
				continue
			}
			if err := g.postJSON(ctx, b, "/v1/program/install", hdr, rep.p, nil); err != nil {
				g.metrics.replicaErrors.Add(1)
				continue
			}
			g.metrics.programReplicas.Add(1)
			g.progMu.Lock()
			rep.confirmed[b.base] = true
			g.progMu.Unlock()
		}
	}
}

// userBenchesOf filters names down to user-program benchmarks, the inputs
// scatter paths must replicate before dispatching.
func userBenchesOf(names []string) []string {
	var out []string
	for _, n := range names {
		if workload.IsUserName(n) {
			out = append(out, n)
		}
	}
	return out
}
