package cluster

import (
	"context"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/simsvc"
	"repro/internal/workload"
)

// SubmitProgram routes one untrusted submission to the shard owning its
// content hash (the same deterministic routing as single jobs, so repeat
// submissions of the same source land on the same shard's registry) and,
// on acceptance, replicates the validated program across the fleet so
// scattered suites and sweeps can land its jobs anywhere. Rejections and
// quarantines are permanent answers: the gateway propagates them without
// re-running the probation on another shard.
func (g *Gateway) SubmitProgram(ctx context.Context, tenant string, req simsvc.ProgramRequest) (*workload.Program, error) {
	g.metrics.requests.Add(1)
	lang := req.Lang
	if lang == "" {
		lang = workload.LangAsm
	}
	id := workload.ProgramID(lang, req.Source)
	g.metrics.programsRouted.Add(1)
	var hdr http.Header
	if tenant != "" {
		hdr = http.Header{"X-Tenant": []string{tenant}}
	}
	p, err := dispatch(ctx, g, "program|"+id, func(ctx context.Context, b *backend) (*workload.Program, error) {
		var out workload.Program
		if err := g.postJSON(ctx, b, "/v1/program", hdr, req, &out); err != nil {
			return nil, err
		}
		return &out, nil
	})
	if err != nil {
		g.metrics.errors.Add(1)
		return nil, err
	}
	g.progMu.Lock()
	g.programs[p.Name] = p
	g.progMu.Unlock()
	g.ensurePrograms(ctx, []string{p.Name})
	return p, nil
}

// GetProgram answers a program lookup from the gateway's replica store,
// falling back to the fleet (content-hash owner first). An unknown id is a
// permanent 404: content addressing means no other shard can have it under
// a different name.
func (g *Gateway) GetProgram(ctx context.Context, id string) (*workload.Program, error) {
	g.metrics.requests.Add(1)
	name := id
	if !workload.IsUserName(name) {
		name = "user:" + name
	}
	g.progMu.Lock()
	p := g.programs[name]
	g.progMu.Unlock()
	if p != nil {
		return p, nil
	}
	bare := strings.TrimPrefix(name, "user:")
	p, err := dispatch(ctx, g, "program|"+bare, func(ctx context.Context, b *backend) (*workload.Program, error) {
		var out workload.Program
		if err := g.getJSON(ctx, b, "/v1/program/"+url.PathEscape(bare), &out); err != nil {
			return nil, err
		}
		return &out, nil
	})
	if err != nil {
		g.metrics.errors.Add(1)
		return nil, err
	}
	return p, nil
}

// ensurePrograms pushes the gateway's validated replicas of the named user
// programs to every backend that has not yet confirmed the install. It is
// the scatter-time half of replication: acceptance broadcasts once, and any
// shard that was down (or joined late) gets the program re-pushed before
// scattered work can land on it. Names the gateway does not hold replicas
// for are left to the shards — a program submitted directly to one shard
// still runs there, and a genuinely unknown name gets that shard's typed
// error. Push failures are counted and retried on the next scatter rather
// than failing the request: the shard answering the work is the one that
// must hold the program, and dispatch prefers shards that confirmed.
func (g *Gateway) ensurePrograms(ctx context.Context, names []string) {
	for _, name := range names {
		if !workload.IsUserName(name) {
			continue
		}
		g.progMu.Lock()
		p := g.programs[name]
		g.progMu.Unlock()
		if p == nil {
			continue
		}
		for _, b := range g.backends {
			g.progMu.Lock()
			done := g.replicated[name][b.base]
			g.progMu.Unlock()
			if done {
				continue
			}
			if err := g.postJSON(ctx, b, "/v1/program/install", nil, p, nil); err != nil {
				g.metrics.replicaErrors.Add(1)
				continue
			}
			g.metrics.programReplicas.Add(1)
			g.progMu.Lock()
			if g.replicated[name] == nil {
				g.replicated[name] = make(map[string]bool)
			}
			g.replicated[name][b.base] = true
			g.progMu.Unlock()
		}
	}
}

// userBenchesOf filters names down to user-program benchmarks, the inputs
// scatter paths must replicate before dispatching.
func userBenchesOf(names []string) []string {
	var out []string
	for _, n := range names {
		if workload.IsUserName(n) {
			out = append(out, n)
		}
	}
	return out
}
