package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/simsvc"
	"repro/internal/workload"
)

// statusClientClosedRequest mirrors the shard API's convention for a
// client that went away mid-request.
const statusClientClosedRequest = 499

// NewHandler builds the siggate HTTP API around g. It mirrors the shard
// API surface — a client pointed at the gateway instead of a shard sees
// the same endpoints and the same response shapes:
//
//	GET  /healthz            gateway liveness + uptime
//	GET  /readyz             readiness: 200 while ≥1 backend is in rotation, else 503
//	GET  /metrics            gateway counters + per-backend health (JSON)
//	GET  /v1/benchmarks      the fleet's served suite (proxied, cached)
//	GET  /v1/models          servable pipeline models (proxied, cached)
//	GET  /v1/simulate        one job, routed by ring ownership; POST takes a JSON Request
//	GET  /v1/sweep           the grid scattered over the fleet, streamed as NDJSON
//	GET  /v1/suite           the full evaluation scattered and merged, one JSON document;
//	                         ?bench=a,b scatters an explicit list (user programs included)
//	POST /v1/program         untrusted-program intake routed to the content-hash owner,
//	                         accepted programs replicated fleet-wide (X-Tenant forwarded)
//	GET  /v1/program/{id}    one accepted program, from the replica store or the fleet
func NewHandler(g *Gateway) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"status":        "ok",
			"uptimeSeconds": g.Uptime().Seconds(),
		})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		healthy := g.healthyCount()
		status := http.StatusOK
		state := "ready"
		if healthy == 0 {
			status = http.StatusServiceUnavailable
			state = "no backends in rotation"
		}
		writeJSON(w, status, map[string]interface{}{
			"ready":           healthy > 0,
			"status":          state,
			"healthyBackends": healthy,
			"totalBackends":   len(g.backends),
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Snapshot
			Backends        []interface{} `json:"backends"`
			HealthyBackends int           `json:"healthyBackends"`
			UptimeSeconds   float64       `json:"uptimeSeconds"`
		}{g.metrics.Snapshot(), g.Backends(), g.healthyCount(), g.Uptime().Seconds()})
	})
	mux.HandleFunc("GET /v1/benchmarks", func(w http.ResponseWriter, r *http.Request) {
		cat, err := g.loadCatalog(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, cat.benches)
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		cat, err := g.loadCatalog(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, cat.models)
	})
	mux.HandleFunc("GET /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		req := simsvc.Request{Bench: q.Get("bench"), Model: fixModelName(q.Get("model"))}
		if gran := q.Get("gran"); gran != "" {
			n, err := strconv.Atoi(gran)
			if err != nil {
				writeError(w, invalidf("bad granularity %q", gran))
				return
			}
			req.Gran = n
		}
		serveSimulate(g, w, r.Context(), req)
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		var req simsvc.Request
		if err := dec.Decode(&req); err != nil {
			writeError(w, invalidf("bad request body: %v", err))
			return
		}
		serveSimulate(g, w, r.Context(), req)
	})
	mux.HandleFunc("POST /v1/program", func(w http.ResponseWriter, r *http.Request) {
		// The same per-endpoint body cap as the shard API: oversized
		// submissions die at the gateway without a backend round trip.
		r.Body = http.MaxBytesReader(w, r.Body, maxProgramBody)
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		var req simsvc.ProgramRequest
		if err := dec.Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeJSON(w, http.StatusRequestEntityTooLarge,
					map[string]string{"error": fmt.Sprintf("siggate: request body exceeds %d bytes", tooBig.Limit)})
				return
			}
			writeError(w, invalidf("bad request body: %v", err))
			return
		}
		p, err := g.SubmitProgram(r.Context(), r.Header.Get("X-Tenant"), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, p)
	})
	mux.HandleFunc("GET /v1/program/{id}", func(w http.ResponseWriter, r *http.Request) {
		p, err := g.GetProgram(r.Context(), r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, p)
	})
	mux.HandleFunc("GET /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		serveSweep(g, w, r)
	})
	mux.HandleFunc("GET /v1/suite", func(w http.ResponseWriter, r *http.Request) {
		resp, err := g.SuiteOf(r.Context(), splitList(r.URL.Query().Get("bench")))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	return mux
}

// maxProgramBody mirrors the shard's POST /v1/program cap.
const maxProgramBody = 4 << 20

// fixModelName undoes '+'-as-space query decoding, like the shard API.
func fixModelName(m string) string { return strings.ReplaceAll(m, " ", "+") }

func serveSimulate(g *Gateway, w http.ResponseWriter, ctx context.Context, req simsvc.Request) {
	resp, err := g.Simulate(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// serveSweep streams one NDJSON line per completed job and a final
// {"summary": ...} line — the shard sweep contract, scattered.
func serveSweep(g *Gateway, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	gran := 0
	if gq := q.Get("gran"); gq != "" {
		n, err := strconv.Atoi(gq)
		if err != nil {
			writeError(w, invalidf("bad granularity %q", gq))
			return
		}
		gran = n
	}
	benches := splitList(q.Get("bench"))
	models := splitList(q.Get("model"))
	for i, m := range models {
		models[i] = fixModelName(m)
	}

	// Resolve and validate the grid before committing to the streaming
	// content type so bad names still get a clean 400.
	cat, err := g.loadCatalog(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	for _, bn := range benches {
		if !cat.benchSet[bn] && !workload.IsUserName(bn) {
			writeError(w, invalidf("unknown benchmark %q (submitted programs are served under the user: namespace)", bn))
			return
		}
	}
	for _, mn := range models {
		if !cat.modelSet[mn] {
			writeError(w, invalidf("unknown model %q", mn))
			return
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	summary, err := g.Sweep(r.Context(), gran, benches, models, func(resp *simsvc.Response) error {
		if err := enc.Encode(resp); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		enc.Encode(map[string]string{"error": err.Error()})
		return
	}
	enc.Encode(map[string]*simsvc.SweepSummary{"summary": summary})
}

func splitList(v string) []string {
	if v == "" {
		return nil
	}
	parts := strings.Split(v, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps gateway-side failures onto the API: client mistakes are
// 400 (including a shard's 400 passed through verbatim), shed/overload
// answers keep their 429/503 status and Retry-After hint (a tenant that
// exhausted every retry should be told to back off, not that the fleet
// broke), an exhausted fleet is 502, and timeouts/cancellations keep the
// shard API's codes.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadGateway
	var inv *simsvc.InvalidRequestError
	var he *httpError
	switch {
	case errors.As(err, &inv):
		status = http.StatusBadRequest
	case errors.As(err, &he) && (he.permanent() || he.retryable()):
		status = he.Status
		if he.retryable() && he.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int(he.RetryAfter/time.Second)))
		}
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = statusClientClosedRequest
	}
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf("siggate: %v", err)})
}
