package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// backend is one sigserve shard as seen from the gateway: its base URL plus
// a small circuit-breaker state machine fed by both the active readiness
// prober and passive transport failures. Consecutive failures at or beyond
// the threshold take the backend out of rotation; after the cooldown a
// single caller at a time may try it again (half-open), and any success —
// probe or request — closes the circuit.
type backend struct {
	name string // display identity (host:port)
	base string // URL prefix, no trailing slash

	mu      sync.Mutex
	healthy bool
	fails   int       // consecutive failures (probe or transport)
	downAt  time.Time // set on the healthy->unhealthy transition
	probing bool      // one half-open trial in flight
}

func newBackend(rawURL string) (*backend, error) {
	base := strings.TrimRight(rawURL, "/")
	if base == "" {
		return nil, fmt.Errorf("cluster: empty backend URL")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	name := strings.TrimPrefix(strings.TrimPrefix(base, "http://"), "https://")
	return &backend{name: name, base: base, healthy: true}, nil
}

// available reports whether the backend should receive new dispatches,
// admitting one half-open trial per cooldown once it has lapsed.
func (b *backend) available(threshold int, cooldown time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.healthy || b.fails < threshold {
		return true
	}
	if time.Since(b.downAt) >= cooldown && !b.probing {
		b.probing = true
		return true
	}
	return false
}

// inRotation is the side-effect-free view of available: whether the
// breaker is closed, without admitting a half-open trial.
func (b *backend) inRotation(threshold int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy || b.fails < threshold
}

// markSuccess closes the circuit.
func (b *backend) markSuccess() {
	b.mu.Lock()
	b.healthy = true
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// markFailure records one probe/transport failure and reports whether this
// crossed the threshold (a healthy->unhealthy transition, for the metric).
func (b *backend) markFailure(threshold int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.probing = false
	if b.fails >= threshold {
		transitioned := b.healthy
		if transitioned || b.fails == threshold {
			b.downAt = time.Now()
		}
		b.healthy = false
		return transitioned
	}
	return false
}

// status is the per-backend block of the gateway's /metrics payload.
type backendStatus struct {
	Name             string `json:"name"`
	Healthy          bool   `json:"healthy"`
	ConsecutiveFails int    `json:"consecutiveFails"`
}

func (b *backend) status() backendStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return backendStatus{Name: b.name, Healthy: b.healthy || b.fails == 0, ConsecutiveFails: b.fails}
}

// httpError is a non-2xx shard answer: the decoded error message plus
// enough context for the gateway to decide between propagating (client
// errors), retrying in place (shed/quarantined with Retry-After), and
// failing over.
type httpError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration // from the Retry-After header, 0 if absent
}

func (e *httpError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("shard answered %d: %s", e.Status, e.Msg)
	}
	return fmt.Sprintf("shard answered %d", e.Status)
}

// permanent reports whether retrying elsewhere cannot help: the request
// itself is invalid (400/413), lacks credentials every shard would demand
// (401/403, e.g. a missing fleet install token), names something that does
// not exist (404), or concerns a program the fleet has quarantined (422) —
// re-running a probation that faulted on another shard is exactly what
// quarantine forbids.
func (e *httpError) permanent() bool {
	switch e.Status {
	case http.StatusBadRequest, http.StatusUnauthorized, http.StatusForbidden,
		http.StatusNotFound, http.StatusRequestEntityTooLarge, http.StatusUnprocessableEntity:
		return true
	}
	return false
}

// retryable reports whether the same shard asked to be tried again later.
func (e *httpError) retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// errTransport wraps connection-level failures (dial refused, reset, EOF):
// the strongest signal that the whole shard — not one request — is gone.
var errTransport = errors.New("cluster: backend transport failure")

// getJSON performs one GET against the backend and decodes a 200 body into
// out. Non-2xx answers come back as *httpError; connection failures wrap
// errTransport.
func (g *Gateway) getJSON(ctx context.Context, b *backend, path string, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("%w: %s: %v", errTransport, b.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readHTTPError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("%w: %s: decoding %s: %v", errTransport, b.name, path, err)
	}
	return nil
}

// postJSON performs one POST against the backend, JSON-encoding body and
// decoding a 200 answer into out, with the same error taxonomy as getJSON.
// Headers (e.g. the tenant identity) are forwarded verbatim.
func (g *Gateway) postJSON(ctx context.Context, b *backend, path string, hdr http.Header, body, out interface{}) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := g.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("%w: %s: %v", errTransport, b.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readHTTPError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("%w: %s: decoding %s: %v", errTransport, b.name, path, err)
	}
	return nil
}

// readHTTPError turns a non-2xx shard response into an *httpError,
// capturing the error envelope and any Retry-After hint.
func readHTTPError(resp *http.Response) error {
	he := &httpError{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			he.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var envelope struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &envelope) == nil && envelope.Error != "" {
		he.Msg = envelope.Error
	} else {
		he.Msg = strings.TrimSpace(string(body))
	}
	return he
}
