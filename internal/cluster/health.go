package cluster

import (
	"context"
	"sync"
	"time"
)

// probeTimeout bounds one readiness probe; a shard that can't answer
// /readyz this fast is treated as down.
const probeTimeout = 2 * time.Second

// probeLoop actively probes every backend's /readyz on the configured
// interval until the gateway closes. Active probing is what lets the
// gateway react to a *draining* shard — one that still answers requests
// but wants out of rotation — before any request has to fail, and what
// re-admits a recovered shard without a client paying for the discovery.
func (g *Gateway) probeLoop() {
	defer g.wg.Done()
	ticker := time.NewTicker(g.cfg.ProbeInterval)
	defer ticker.Stop()
	g.probeOnce()
	for {
		select {
		case <-g.done:
			return
		case <-ticker.C:
			g.probeOnce()
		}
	}
}

// probeOnce probes every backend concurrently and folds the verdicts into
// the per-backend breaker state: a 200 closes the circuit, anything else
// (503 draining/overloaded, transport failure) counts as a failure.
func (g *Gateway) probeOnce() {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
			defer cancel()
			if err := g.getJSON(ctx, b, "/readyz", nil); err != nil {
				if b.markFailure(g.cfg.BreakerThreshold) {
					g.metrics.backendDown.Add(1)
				}
				return
			}
			b.markSuccess()
		}(b)
	}
	wg.Wait()
}

// healthyCount reports how many backends are currently in rotation. It is
// a pure read (unlike available, it never admits a half-open trial), so
// readiness and metrics handlers can call it freely.
func (g *Gateway) healthyCount() int {
	n := 0
	for _, b := range g.backends {
		if b.inRotation(g.cfg.BreakerThreshold) {
			n++
		}
	}
	return n
}
