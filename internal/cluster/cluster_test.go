package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/diffsim"
	"repro/internal/faultinject"
	"repro/internal/pipeline"
	"repro/internal/simsvc"
	"repro/internal/workload"
)

// fleetBenches is the suite served by every test shard: small enough to
// evaluate quickly, big enough to partition across three shards.
var fleetBenches = []string{"g711dec", "g711enc", "crc32"}

// newShard boots one in-process sigserve shard over HTTP.
func newShard(t *testing.T, cfg simsvc.Config, benchNames ...string) (*simsvc.Service, *httptest.Server) {
	t.Helper()
	if len(benchNames) == 0 {
		benchNames = fleetBenches
	}
	for _, n := range benchNames {
		b, ok := bench.ByName(n)
		if !ok {
			t.Fatalf("unknown test benchmark %q", n)
		}
		cfg.Benchmarks = append(cfg.Benchmarks, b)
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	svc := simsvc.New(cfg)
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(simsvc.NewHandler(svc))
	t.Cleanup(func() {
		srv.Close()
		http.DefaultClient.CloseIdleConnections()
	})
	return svc, srv
}

// newFleet boots n identical shards. Every shard serves the same suite —
// the merge invariant (the recoder is profiled over the served suite)
// depends on it.
func newFleet(t *testing.T, n int) []*httptest.Server {
	t.Helper()
	servers := make([]*httptest.Server, n)
	for i := range servers {
		_, servers[i] = newShard(t, simsvc.Config{})
	}
	return servers
}

// newGateway fronts the given shards. Tests default to passive health
// only (no prober) and no hedging so failure handling is deterministic;
// individual tests opt back in through mod.
func newGateway(t *testing.T, servers []*httptest.Server, mod func(*Config)) (*Gateway, *httptest.Server) {
	t.Helper()
	cfg := Config{
		ProbeInterval: -1,
		HedgeAfter:    -1,
		RetryAfterCap: 100 * time.Millisecond,
	}
	for _, srv := range servers {
		cfg.Backends = append(cfg.Backends, srv.URL)
	}
	if mod != nil {
		mod(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	srv := httptest.NewServer(NewHandler(g))
	t.Cleanup(func() {
		srv.Close()
		http.DefaultClient.CloseIdleConnections()
	})
	return g, srv
}

func getJSON(t *testing.T, url string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestRingOwnerDeterministicAndSequenceComplete(t *testing.T) {
	names := []string{"a:1", "b:2", "c:3"}
	r := newRing(names, 0)
	for _, key := range []string{"g711dec|baseline32", "crc32|skewed+bypass", "fft|"} {
		o1, o2 := r.owner(key), r.owner(key)
		if o1 != o2 {
			t.Fatalf("owner(%q) not deterministic: %d vs %d", key, o1, o2)
		}
		seq := r.sequence(key)
		if len(seq) != len(names) {
			t.Fatalf("sequence(%q) = %v, want all %d backends", key, seq, len(names))
		}
		if seq[0] != o1 {
			t.Fatalf("sequence(%q) starts at %d, owner is %d", key, seq[0], o1)
		}
		seen := make(map[int]bool)
		for _, i := range seq {
			if seen[i] {
				t.Fatalf("sequence(%q) repeats backend %d: %v", key, i, seq)
			}
			seen[i] = true
		}
	}
}

// The consistent-hashing property: removing one backend only remaps the
// keys it owned; every other key keeps its owner.
func TestRingConsistencyUnderMembershipChange(t *testing.T) {
	full := newRing([]string{"a:1", "b:2", "c:3"}, 0)
	reduced := newRing([]string{"a:1", "b:2"}, 0)
	moved, kept := 0, 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("bench%d|model", i)
		before := full.owner(key)
		after := reduced.owner(key)
		if before == 2 {
			continue // owned by the removed backend: must remap somewhere
		}
		if before == after {
			kept++
		} else {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys owned by surviving backends moved (kept %d); consistent hashing must only remap the lost backend's keys", moved, kept)
	}
}

// suiteDoc fetches /v1/suite from url and returns the canonical bytes of
// the suite document plus the instruction count. The envelope's elapsed
// time is the only field allowed to differ between runs.
func suiteDoc(t *testing.T, url string) ([]byte, uint64) {
	t.Helper()
	var resp simsvc.Response
	if r := getJSON(t, url+"/v1/suite", &resp); r.StatusCode != 200 {
		t.Fatalf("suite status %d", r.StatusCode)
	}
	if resp.Suite == nil {
		t.Fatal("suite response missing the suite document")
	}
	doc, err := json.MarshalIndent(resp.Suite, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return doc, resp.Insts
}

// The tentpole acceptance: a suite scattered over 1, 2 and 3 shards is
// byte-identical to the single-process evaluation, and stays identical
// when the shard count changes between runs (the partitioning moves, the
// answer must not).
func TestClusterSuiteByteIdenticalAcrossShardCounts(t *testing.T) {
	_, single := newShard(t, simsvc.Config{})
	want, wantInsts := suiteDoc(t, single.URL)

	for _, shards := range []int{1, 2, 3} {
		_, gw := newGateway(t, newFleet(t, shards), nil)
		got, gotInsts := suiteDoc(t, gw.URL)
		if gotInsts != wantInsts {
			t.Fatalf("%d shards: instructions %d, single-process %d", shards, gotInsts, wantInsts)
		}
		if string(got) != string(want) {
			t.Fatalf("%d shards: suite document differs from the single-process evaluation (%d vs %d bytes)", shards, len(got), len(want))
		}
	}
}

// sweepLines runs a sweep over url and returns the canonicalized NDJSON
// result lines (sorted, volatile envelope fields cleared) plus the
// summary.
func sweepLines(t *testing.T, url, query string) ([]string, *simsvc.SweepSummary) {
	t.Helper()
	resp, err := http.Get(url + "/v1/sweep" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	var lines []string
	var summary *simsvc.SweepSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var wrapped struct {
			Summary *simsvc.SweepSummary `json:"summary"`
			Error   string               `json:"error"`
		}
		if json.Unmarshal([]byte(line), &wrapped) == nil && wrapped.Summary != nil {
			summary = wrapped.Summary
			continue
		}
		if wrapped.Error != "" {
			t.Fatalf("sweep stream error: %s", wrapped.Error)
		}
		var r simsvc.Response
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad sweep line %q: %v", line, err)
		}
		// Serving envelope, not science: timings and cache hits depend on
		// which process answered.
		r.ElapsedMS = 0
		r.Cached = false
		canon, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(canon))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if summary == nil {
		t.Fatal("sweep stream ended without a summary line")
	}
	sortStrings(lines)
	return lines, summary
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// A sweep scattered over three shards produces the same result set and
// the same summary tables as a single shard's sweep.
func TestClusterSweepMatchesSingleShard(t *testing.T) {
	query := "?model=" + pipeline.NameBaseline32 + ",skewed%2Bbypass," + pipeline.NameDualCompress4
	_, single := newShard(t, simsvc.Config{})
	wantLines, wantSum := sweepLines(t, single.URL, query)

	_, gw := newGateway(t, newFleet(t, 3), nil)
	gotLines, gotSum := sweepLines(t, gw.URL, query)

	if len(gotLines) != len(wantLines) {
		t.Fatalf("scattered sweep has %d result lines, single shard %d", len(gotLines), len(wantLines))
	}
	for i := range wantLines {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("sweep line %d differs:\n gateway: %s\n single:  %s", i, gotLines[i], wantLines[i])
		}
	}
	if gotSum.Jobs != wantSum.Jobs || gotSum.Failed != wantSum.Failed {
		t.Fatalf("summary jobs/failed %d/%d, single shard %d/%d", gotSum.Jobs, gotSum.Failed, wantSum.Jobs, wantSum.Failed)
	}
	gotCPI, _ := json.Marshal(gotSum.MeanCPI)
	wantCPI, _ := json.Marshal(wantSum.MeanCPI)
	if string(gotCPI) != string(wantCPI) {
		t.Fatalf("summary meanCPI differs: %s vs %s", gotCPI, wantCPI)
	}
	gotTable, _ := json.Marshal(gotSum.CPITable)
	wantTable, _ := json.Marshal(wantSum.CPITable)
	if string(gotTable) != string(wantTable) {
		t.Fatalf("summary CPI table differs:\n%s\n%s", gotTable, wantTable)
	}
}

// Chaos: one shard is armed with fault injection that fails every job it
// picks up. The gateway must route around it — failing over partition
// dispatches — and still produce the byte-identical suite.
func TestClusterSuiteSurvivesPoisonedShard(t *testing.T) {
	_, single := newShard(t, simsvc.Config{})
	want, wantInsts := suiteDoc(t, single.URL)

	faults, err := faultinject.Parse("7:pool.pickup=error@1.0")
	if err != nil {
		t.Fatal(err)
	}
	_, poisoned := newShard(t, simsvc.Config{Faults: faults, Retries: 1})
	_, healthy1 := newShard(t, simsvc.Config{})
	_, healthy2 := newShard(t, simsvc.Config{})

	g, gw := newGateway(t, []*httptest.Server{poisoned, healthy1, healthy2}, nil)
	got, gotInsts := suiteDoc(t, gw.URL)
	if gotInsts != wantInsts || string(got) != string(want) {
		t.Fatal("suite over a fleet with a poisoned shard differs from the single-process evaluation")
	}

	// Ring placement under httptest's random ports can leave the poisoned
	// shard (backend index 0) owning no suite partition — a 3-benchmark
	// suite over 3 shards skips it roughly a third of the time — so the
	// chaos assertion drives a job at it deliberately: pick a (bench,
	// model) key it owns and simulate through the gateway. The owner
	// attempt must fail and fail over.
	var pb, pm string
search:
	for _, b := range fleetBenches {
		for _, m := range pipeline.AllNames() {
			if g.ring.owner(jobKey(b, m)) == 0 {
				pb, pm = b, m
				break search
			}
		}
	}
	if pb == "" {
		t.Fatal("poisoned shard owns no (bench, model) key at all — ring is degenerate")
	}
	var out simsvc.Response
	if r := getJSON(t, gw.URL+"/v1/simulate?bench="+pb+"&model="+url.QueryEscape(pm), &out); r.StatusCode != 200 {
		t.Fatalf("simulate via poisoned owner: status %d, want 200 after failover", r.StatusCode)
	}
	snap := g.Metrics().Snapshot()
	if snap.BackendErrors == 0 {
		t.Fatal("poisoned shard produced no backend errors — the chaos never bit")
	}
}

// Chaos: a whole shard is killed mid-sweep. In-flight dispatches to it
// die with transport errors; the gateway fails them over to the surviving
// shards, so the sweep completes with zero failed pairs — partial results
// are flagged when they happen, and here none may happen.
func TestClusterSweepSurvivesShardKillMidSweep(t *testing.T) {
	servers := newFleet(t, 3)
	g, gw := newGateway(t, servers, func(c *Config) {
		c.SweepInflight = 2 // keep pairs in flight while the victim dies
	})

	// Pick the victim by ring ownership so the killed shard is guaranteed
	// to own sweep pairs.
	victim := g.ring.owner(jobKey("g711enc", pipeline.NameBaseline32))

	resp, err := http.Get(gw.URL + "/v1/sweep?model=" + pipeline.NameBaseline32 + ",skewed%2Bbypass")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var summary *simsvc.SweepSummary
	results := 0
	for sc.Scan() {
		line := sc.Bytes()
		var wrapped struct {
			Summary *simsvc.SweepSummary `json:"summary"`
			Error   string               `json:"error"`
		}
		if json.Unmarshal(line, &wrapped) == nil && wrapped.Summary != nil {
			summary = wrapped.Summary
			continue
		}
		if wrapped.Error != "" {
			t.Fatalf("sweep stream aborted: %s", wrapped.Error)
		}
		var r simsvc.Response
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatal(err)
		}
		if r.Error != "" {
			t.Fatalf("pair %s/%s failed despite two healthy shards: %s", r.Bench, r.Model, r.Error)
		}
		results++
		if results == 1 {
			// First result is out: the sweep is live. Kill the victim —
			// drop its connections and stop its listener.
			servers[victim].CloseClientConnections()
			servers[victim].Close()
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if summary == nil {
		t.Fatal("sweep ended without a summary")
	}
	if summary.Failed != 0 {
		t.Fatalf("summary reports %d failed pairs; failover should have absorbed the shard loss", summary.Failed)
	}
	if summary.Jobs != len(fleetBenches)*2 {
		t.Fatalf("summary covers %d jobs, want %d", summary.Jobs, len(fleetBenches)*2)
	}
}

// A shard that sheds with 429 + Retry-After is retried in place (the hint
// honored, capped) rather than failed over.
func TestDispatchHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	shard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "simsvc: overloaded"})
			return
		}
		json.NewEncoder(w).Encode(simsvc.Response{Bench: "g711dec", Model: pipeline.NameBaseline32, Insts: 1, CPI: 1})
	}))
	t.Cleanup(func() {
		shard.Close()
		http.DefaultClient.CloseIdleConnections()
	})

	g, _ := newGateway(t, []*httptest.Server{shard}, func(c *Config) {
		c.RetryAfterCap = 20 * time.Millisecond // honor the hint, but don't let the test wait a real second
	})
	start := time.Now()
	resp, err := g.Simulate(context.Background(), simsvc.Request{Bench: "g711dec", Model: pipeline.NameBaseline32})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if resp.Insts != 1 || calls.Load() != 2 {
		t.Fatalf("resp %+v after %d calls, want the retried success", resp, calls.Load())
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("retry came back in %v; the Retry-After wait was not honored", elapsed)
	}
	if snap := g.Metrics().Snapshot(); snap.Retries != 1 {
		t.Fatalf("retries counter = %d, want 1", snap.Retries)
	}
}

// Identical (bench, model) jobs land on the same shard: that is the whole
// point of routing by ring ownership — the shard's result cache answers
// the repeat.
func TestRouteAffinity(t *testing.T) {
	_, gw := newGateway(t, newFleet(t, 3), nil)
	url := gw.URL + "/v1/simulate?bench=g711dec&model=" + pipeline.NameBaseline32

	var first simsvc.Response
	if r := getJSON(t, url, &first); r.StatusCode != 200 {
		t.Fatalf("status %d", r.StatusCode)
	}
	var second simsvc.Response
	getJSON(t, url, &second)
	if !second.Cached {
		t.Fatal("repeat of an identical job missed the shard cache: routing is not sticky")
	}
	if second.CPI != first.CPI || second.Cycles != first.Cycles {
		t.Fatal("cached result differs from the first")
	}
}

// The gateway's readiness follows the fleet: with every shard drained the
// prober empties the rotation and /readyz flips to 503.
func TestGatewayReadyzFollowsFleet(t *testing.T) {
	svc, shard := newShard(t, simsvc.Config{}, "g711dec")
	_, gw := newGateway(t, []*httptest.Server{shard}, func(c *Config) {
		c.ProbeInterval = 20 * time.Millisecond
		c.BreakerThreshold = 1
		c.BreakerCooldown = time.Hour // no half-open re-admission during the test
	})

	var ready struct {
		Ready bool `json:"ready"`
	}
	if r := getJSON(t, gw.URL+"/readyz", &ready); r.StatusCode != 200 || !ready.Ready {
		t.Fatalf("gateway not ready over a healthy shard: %d %+v", r.StatusCode, ready)
	}

	svc.Drain()
	deadline := time.Now().Add(5 * time.Second)
	for {
		r := getJSON(t, gw.URL+"/readyz", &ready)
		if r.StatusCode == 503 && !ready.Ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gateway still ready 5s after its only shard started draining")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// The /metrics schema is pinned: dashboards key off these fields, so
// renames and removals must be deliberate.
func TestGatewayMetricsSchema(t *testing.T) {
	_, gw := newGateway(t, newFleet(t, 1), nil)
	var m map[string]interface{}
	if r := getJSON(t, gw.URL+"/metrics", &m); r.StatusCode != 200 {
		t.Fatalf("metrics status %d", r.StatusCode)
	}
	want := []string{
		"requests", "routed", "scatterSuites", "scatterSweeps",
		"mergedPartials", "retries", "failovers", "hedges", "hedgeWins",
		"backendErrors", "backendDown", "errors",
		"programsRouted", "programReplicas", "replicaErrors",
		"backends", "healthyBackends", "uptimeSeconds",
	}
	for _, k := range want {
		if _, ok := m[k]; !ok {
			t.Errorf("/metrics missing field %q", k)
		}
	}
	if len(m) != len(want) {
		t.Errorf("/metrics has %d fields, schema pins %d: %v", len(m), len(want), m)
	}
	backends, ok := m["backends"].([]interface{})
	if !ok || len(backends) != 1 {
		t.Fatalf("backends is %T %v, want a 1-element array", m["backends"], m["backends"])
	}
	be, ok := backends[0].(map[string]interface{})
	if !ok {
		t.Fatalf("backends[0] is %T", backends[0])
	}
	for _, k := range []string{"name", "healthy", "consecutiveFails"} {
		if _, ok := be[k]; !ok {
			t.Errorf("backends[0] missing %q", k)
		}
	}
}

// submitProgram POSTs one assembly source to base's /v1/program (shard or
// gateway — same contract) and returns the accepted program.
func submitProgram(t *testing.T, base, tenant, src string) *workload.Program {
	t.Helper()
	body, _ := json.Marshal(simsvc.ProgramRequest{Lang: workload.LangAsm, Source: src})
	req, err := http.NewRequest("POST", base+"/v1/program", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit to %s: status %d: %s", base, resp.StatusCode, raw)
	}
	var p workload.Program
	if err := json.Unmarshal(raw, &p); err != nil {
		t.Fatalf("decoding accepted program: %v", err)
	}
	return &p
}

// suiteDocOf is suiteDoc over an explicit benchmark list.
func suiteDocOf(t *testing.T, base string, benches []string) ([]byte, uint64) {
	t.Helper()
	var resp simsvc.Response
	u := base + "/v1/suite?bench=" + url.QueryEscape(strings.Join(benches, ","))
	if r := getJSON(t, u, &resp); r.StatusCode != 200 {
		t.Fatalf("suite status %d", r.StatusCode)
	}
	if resp.Suite == nil {
		t.Fatal("suite response missing the suite document")
	}
	doc, err := json.MarshalIndent(resp.Suite, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return doc, resp.Insts
}

// The intake acceptance for the cluster layer: a fuzz-generated program
// submitted through the gateway is replicated fleet-wide, runs as a single
// routed job, and a mixed suite (built-ins + the user program) scattered
// over 1, 2 and 3 shards merges byte-identically to the single-process
// evaluation of the same list.
func TestClusterUserProgramByteIdenticalAcrossShardCounts(t *testing.T) {
	gen := diffsim.Generate(42, diffsim.Config{Ops: 60})
	src, err := gen.AsmSource()
	if err != nil {
		t.Fatal(err)
	}

	// Single-process reference: submit straight to one shard.
	_, single := newShard(t, simsvc.Config{})
	ref := submitProgram(t, single.URL, "fuzz", src)
	benches := append(append([]string{}, fleetBenches...), ref.Name)
	want, wantInsts := suiteDocOf(t, single.URL, benches)

	for _, shards := range []int{1, 2, 3} {
		servers := newFleet(t, shards)
		g, gw := newGateway(t, servers, nil)

		p := submitProgram(t, gw.URL, "fuzz", src)
		if p.Name != ref.Name {
			t.Fatalf("%d shards: content addressing disagrees: %q vs %q", shards, p.Name, ref.Name)
		}

		// Acceptance replicated the validated program to every shard.
		for i, srv := range servers {
			var got workload.Program
			if r := getJSON(t, srv.URL+"/v1/program/"+p.ID, &got); r.StatusCode != 200 {
				t.Fatalf("%d shards: shard %d missing the replica (%d)", shards, i, r.StatusCode)
			}
		}
		if shards > 1 {
			if snap := g.Metrics().Snapshot(); snap.ProgramReplicas == 0 {
				t.Fatalf("%d shards: no replicas pushed: %+v", shards, snap)
			}
		}

		// The user program runs as a normal routed job.
		var sim simsvc.Response
		if r := getJSON(t, gw.URL+"/v1/simulate?bench="+p.Name+"&model="+pipeline.NameBaseline32, &sim); r.StatusCode != 200 {
			t.Fatalf("%d shards: simulate user program: %d", shards, r.StatusCode)
		}
		if sim.Insts == 0 {
			t.Fatalf("%d shards: empty user-program result: %+v", shards, sim)
		}

		got, gotInsts := suiteDocOf(t, gw.URL, benches)
		if gotInsts != wantInsts {
			t.Fatalf("%d shards: instructions %d, single-process %d", shards, gotInsts, wantInsts)
		}
		if string(got) != string(want) {
			t.Fatalf("%d shards: mixed suite differs from the single-process evaluation (%d vs %d bytes)", shards, len(got), len(want))
		}
	}
}

// A gateway suite naming an unknown user program propagates the shard's
// typed 404 — never a failover storm or a breaker trip (content addressing
// means no other shard can know the name either).
func TestClusterUnknownUserBench(t *testing.T) {
	g, gw := newGateway(t, newFleet(t, 2), nil)
	var body map[string]string
	bogus := "user:" + strings.Repeat("ab", 32)
	if r := getJSON(t, gw.URL+"/v1/suite?bench=g711dec,"+bogus, &body); r.StatusCode != 404 {
		t.Fatalf("unknown user bench in suite: status %d, want 404 (%v)", r.StatusCode, body)
	}
	if !strings.Contains(body["error"], "unknown program") {
		t.Fatalf("error body %q does not name the problem", body["error"])
	}
	if g.healthyCount() != 2 {
		t.Fatal("an unknown user bench took a shard out of rotation")
	}
}

// A tenant that exhausts every shard's submission quota must be told to
// back off: the gateway's error writer keeps the shards' 429 status and
// Retry-After hint instead of collapsing the exhausted dispatch into a
// 502 fleet failure.
func TestGatewayShedKeepsRetryAfter(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, fmt.Errorf("dispatch: %w",
		&httpError{Status: 429, Msg: "tenant quota", RetryAfter: 3 * time.Second}))
	if rec.Code != 429 {
		t.Fatalf("exhausted 429 dispatch answered %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	rec = httptest.NewRecorder()
	writeError(rec, fmt.Errorf("dispatch: %w", &httpError{Status: 503, Msg: "overloaded"}))
	if rec.Code != 503 {
		t.Fatalf("exhausted 503 dispatch answered %d, want 503", rec.Code)
	}
}

// Bad requests are the client's problem, never a failover trigger: an
// unknown benchmark answers 400 from the gateway without marking any
// shard unhealthy.
func TestGatewayBadRequestPropagates(t *testing.T) {
	g, gw := newGateway(t, newFleet(t, 2), nil)
	var body map[string]string
	if r := getJSON(t, gw.URL+"/v1/simulate?bench=nope&model="+pipeline.NameBaseline32, &body); r.StatusCode != 400 {
		t.Fatalf("unknown benchmark: status %d, want 400", r.StatusCode)
	}
	if !strings.Contains(body["error"], "nope") {
		t.Fatalf("error body %q does not name the bad benchmark", body["error"])
	}
	if snap := g.Metrics().Snapshot(); snap.Failovers != 0 || snap.BackendDown != 0 {
		t.Fatalf("a 400 caused failovers (%d) or breaker trips (%d)", snap.Failovers, snap.BackendDown)
	}
	if g.healthyCount() != 2 {
		t.Fatal("a 400 took a shard out of rotation")
	}
}

// The gateway's replica store is a bounded LRU, not an append-only map: a
// long-lived gateway fed a stream of accepted programs (each retaining full
// source + assembly) must not grow monotonically. Evicted replicas are
// re-fetchable from the fleet, so the bound only costs a round trip.
func TestGatewayReplicaStoreBounded(t *testing.T) {
	g, _ := newGateway(t, newFleet(t, 1), func(c *Config) {
		c.ProgramReplicas = 4
		c.ProgramReplicaBytes = 1 << 20
	})

	for i := 0; i < 32; i++ {
		g.storeReplica(&workload.Program{
			Name:   fmt.Sprintf("user:%064d", i),
			Source: strings.Repeat("s", 100),
			Asm:    strings.Repeat("a", 100),
		})
	}
	g.progMu.Lock()
	count, bytes := len(g.programs), g.progBytes
	lruLen := g.progLRU.Len()
	g.progMu.Unlock()
	if count != 4 || lruLen != 4 {
		t.Fatalf("replica store holds %d entries (lru %d), want capped at 4", count, lruLen)
	}
	if bytes != 4*200 {
		t.Fatalf("replica store accounts %d bytes, want %d", bytes, 4*200)
	}
	// The survivors are the most recently stored, and evicted names are gone.
	if g.replicaOf("user:"+fmt.Sprintf("%064d", 0)) != nil {
		t.Fatal("evicted replica still resident")
	}
	if g.replicaOf("user:"+fmt.Sprintf("%064d", 31)) == nil {
		t.Fatal("most recent replica evicted")
	}

	// The byte budget evicts independently of the count budget.
	g.storeReplica(&workload.Program{
		Name:   "user:big",
		Source: strings.Repeat("s", 1<<20),
	})
	g.progMu.Lock()
	count, bytes = len(g.programs), g.progBytes
	g.progMu.Unlock()
	if count != 1 || bytes != 1<<20 {
		t.Fatalf("byte budget: %d entries / %d bytes resident, want the one over-budget program alone", count, bytes)
	}
}

// With a fleet install token configured, replica pushes authenticate: a
// gateway holding the secret replicates across token-gated shards, while a
// gateway without it has its pushes refused (and the refusal is permanent —
// no failover storm) yet still serves the program from the accepting shard.
func TestClusterInstallTokenReplication(t *testing.T) {
	gen := diffsim.Generate(7, diffsim.Config{Ops: 40})
	src, err := gen.AsmSource()
	if err != nil {
		t.Fatal(err)
	}

	newTokenFleet := func(n int) []*httptest.Server {
		servers := make([]*httptest.Server, n)
		for i := range servers {
			_, servers[i] = newShard(t, simsvc.Config{InstallToken: "s3cret"})
		}
		return servers
	}

	// Matching token: acceptance replicates to every shard.
	servers := newTokenFleet(2)
	g, gw := newGateway(t, servers, func(c *Config) { c.InstallToken = "s3cret" })
	p := submitProgram(t, gw.URL, "fuzz", src)
	for i, srv := range servers {
		var got workload.Program
		if r := getJSON(t, srv.URL+"/v1/program/"+p.ID, &got); r.StatusCode != 200 {
			t.Fatalf("shard %d missing the replica (%d)", i, r.StatusCode)
		}
	}
	if snap := g.Metrics().Snapshot(); snap.ProgramReplicas == 0 || snap.ReplicaErrors != 0 {
		t.Fatalf("tokened replication: %+v", snap)
	}

	// Missing token: every push is refused with 401, counted, and the
	// shards stay in rotation. Only the shard that accepted the submission
	// holds the program — replication did not happen.
	servers = newTokenFleet(2)
	g, gw = newGateway(t, servers, nil)
	p = submitProgram(t, gw.URL, "fuzz", src)
	if snap := g.Metrics().Snapshot(); snap.ProgramReplicas != 0 || snap.ReplicaErrors == 0 {
		t.Fatalf("tokenless replication: %+v", snap)
	}
	if g.healthyCount() != 2 {
		t.Fatal("a refused replica push took a shard out of rotation")
	}
	holders := 0
	for _, srv := range servers {
		if r := getJSON(t, srv.URL+"/v1/program/"+p.ID, nil); r.StatusCode == 200 {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("%d shards hold the program, want the accepting owner alone", holders)
	}
}

// TestClusterTraceDirWarmStart pins the fleet warm-start story end to end:
// a second shard sharing the first one's trace dir answers the full suite
// over HTTP without a single interpreter run — every benchmark streams from
// the first shard's mapped SIGCAP02 spills — and the suite document stays
// byte-identical.
func TestClusterTraceDirWarmStart(t *testing.T) {
	dir := t.TempDir()
	cold, coldSrv := newShard(t, simsvc.Config{TraceDir: dir})
	want, wantInsts := suiteDoc(t, coldSrv.URL)
	if m := cold.Metrics().Snapshot(); m.Captures == 0 || m.TraceSpills == 0 {
		t.Fatalf("cold shard: captures=%d spills=%d, want both > 0", m.Captures, m.TraceSpills)
	}

	warm, warmSrv := newShard(t, simsvc.Config{TraceDir: dir})
	got, gotInsts := suiteDoc(t, warmSrv.URL)
	m := warm.Metrics().Snapshot()
	if m.Captures != 0 {
		t.Fatalf("warm shard ran %d interpreter captures, want 0", m.Captures)
	}
	if int(m.TraceMapLoads) != len(fleetBenches) {
		t.Fatalf("warm shard map loads = %d, want %d (one mapped spill per benchmark)",
			m.TraceMapLoads, len(fleetBenches))
	}
	if gotInsts != wantInsts {
		t.Fatalf("warm shard instructions %d, cold %d", gotInsts, wantInsts)
	}
	if string(got) != string(want) {
		t.Fatalf("warm shard suite document differs from cold shard (%d vs %d bytes)", len(got), len(want))
	}
}
