package experiments

import (
	"encoding/json"

	"repro/internal/activity"
	"repro/internal/pcincr"
)

// JSONResults is the machine-readable export of a full evaluation — the one
// schema shared by the sigsim CLI (-json), the sigtables exporter, and the
// sigserve service.
type JSONResults struct {
	Benchmarks []BenchJSON        `json:"benchmarks"`
	Patterns   []PatternJSON      `json:"significantBytePatterns"`
	PCIncr     []pcincr.TableRow  `json:"pcIncrementModel"`
	Functs     []FunctJSON        `json:"functProfile"`
	Fetch      FetchJSON          `json:"instructionCompression"`
	Partitions []PartitionRowJSON `json:"partitionAblation"`
	BMGating   []BMJSON           `json:"bmGatingBaseline,omitempty"`
	Width64    Width64JSON        `json:"width64Projection"`
	Frontend   FrontendJSON       `json:"compressedFrontend"`
}

// BenchJSON is the machine-readable result of one benchmark: CPI per
// pipeline model and per-stage activity savings at both granularities.
type BenchJSON struct {
	Name       string                   `json:"name"`
	Insts      uint64                   `json:"instructions"`
	CPI        map[string]float64       `json:"cpi"`
	ByteSaving map[string]float64       `json:"activitySavingByte"`
	HalfSaving map[string]float64       `json:"activitySavingHalfword"`
	PredictAcc float64                  `json:"branchPredictorAccuracy"`
	FetchUnits map[string]FetchUnitJSON `json:"fetchUnits,omitempty"`
}

// FetchUnitJSON is one byte-fetch model's frontend accounting over one
// benchmark.
type FetchUnitJSON struct {
	BytesPerCycle int     `json:"bytesPerCycle"`
	BufferBytes   int     `json:"bufferBytes"`
	IssueCycles   uint64  `json:"issueCycles"`
	DualIssued    uint64  `json:"dualIssued"`
	BufferStalls  uint64  `json:"bufferStalls"`
	MaxOccupancy  uint64  `json:"maxOccupancy"`
	IntoDecodeIPC float64 `json:"intoDecodeIPC"`
}

// FrontendJSON carries the suite-level compressed-fetch frontend profile:
// the dual-issue opportunity the dynamic stream offers a
// dual-issue-when-compressed decoder.
type FrontendJSON struct {
	CompressedShare float64 `json:"compressedShare"`
	PairShare       float64 `json:"pairShare"`
	MeanRunLength   float64 `json:"meanRunLength"`
}

// PatternJSON is one row of the Table 1 significant-byte-pattern profile.
type PatternJSON struct {
	Pattern    string  `json:"pattern"`
	Percent    float64 `json:"percent"`
	Cumulative float64 `json:"cumulative"`
	TwoBitOK   bool    `json:"twoBitEncodable"`
}

// FunctJSON is one row of the Table 3 dynamic function-code profile.
type FunctJSON struct {
	Funct   string  `json:"funct"`
	Percent float64 `json:"percent"`
	Compact bool    `json:"recodedCompact"`
}

// FetchJSON carries the §2.3 instruction-compression summary numbers.
type FetchJSON struct {
	MeanBytes        float64 `json:"meanBytesPerInstruction"`
	MeanBytesWithExt float64 `json:"meanBytesWithExtensionBit"`
	ThreeByteShare   float64 `json:"threeByteShare"`
}

// PartitionRowJSON is one row of the register-partitioning ablation.
type PartitionRowJSON struct {
	Partition string  `json:"partition"`
	MeanBits  float64 `json:"meanBitsPerValue"`
	Saving    float64 `json:"savingPercent"`
}

// BMJSON is one benchmark's Brooks-Martonosi ALU-gating baseline (the
// paper's reference [1]) — what significance compression is measured
// against.
type BMJSON struct {
	Benchmark   string  `json:"benchmark"`
	ALUSaving   float64 `json:"aluSavingPercent"`
	NarrowShare float64 `json:"narrowOperandShare"`
}

// Width64JSON carries the §2.9 64-bit-ISA projection.
type Width64JSON struct {
	Saving32 float64 `json:"savingPercent32"`
	Saving64 float64 `json:"savingPercent64"`
}

// SavingMap renders per-stage activity reductions as a stage-keyed map.
func SavingMap(c activity.Counts) map[string]float64 {
	out := make(map[string]float64, 8)
	row := c.Row()
	for i, s := range activity.Stages() {
		out[s] = row[i]
	}
	return out
}

// EncodeBench converts one benchmark's results to the shared JSON schema.
func EncodeBench(b BenchResult) BenchJSON {
	out := BenchJSON{
		Name:       b.Name,
		Insts:      b.Insts,
		CPI:        b.CPI,
		ByteSaving: SavingMap(b.ByteAct),
		HalfSaving: SavingMap(b.HalfAct),
		PredictAcc: b.PredAcc,
	}
	if len(b.FetchUnits) > 0 {
		out.FetchUnits = make(map[string]FetchUnitJSON, len(b.FetchUnits))
		for name, fu := range b.FetchUnits {
			out.FetchUnits[name] = FetchUnitJSON{
				BytesPerCycle: fu.BytesPerCycle,
				BufferBytes:   fu.BufferBytes,
				IssueCycles:   fu.IssueCycles,
				DualIssued:    fu.DualIssued,
				BufferStalls:  fu.BufferStalls,
				MaxOccupancy:  fu.MaxOccupancy,
				IntoDecodeIPC: fu.IntoDecodeIPC(b.Insts),
			}
		}
	}
	return out
}

// pct returns 100*n/d, 0 when the denominator is empty (keeps the encoding
// NaN-free, which encoding/json rejects).
func pct(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// Encode converts the complete evaluation to the shared JSON schema. Each
// section goes through the same encoder the cross-node merge path
// (MergePartials) uses, so a scattered evaluation cannot drift from the
// single-process encoding.
func (r *Results) Encode() *JSONResults {
	out := &JSONResults{PCIncr: pcincr.Table2()}
	order := make([]string, 0, len(r.Bench))
	for _, b := range r.Bench {
		out.Benchmarks = append(out.Benchmarks, EncodeBench(b))
		order = append(order, b.Name)
	}
	out.Patterns = EncodePatterns(r.Patterns)
	out.Functs = EncodeFuncts(r.Functs, r.Recoder)
	out.Fetch = EncodeFetch(r.Fetch)
	out.Partitions = EncodePartitions(r.Partitions)
	// Benchmark order (not map order) keeps the encoding deterministic.
	out.BMGating = EncodeBM(order, r.BM)
	out.Width64 = EncodeWidth64(r.Width64)
	out.Frontend = EncodeFrontend(r.Frontend)
	return out
}

// JSON renders the complete evaluation as indented JSON.
func (r *Results) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Encode(), "", "  ")
}

// DecodeJSON parses data produced by Results.JSON back into the shared
// schema, so downstream tooling can consume saved evaluations.
func DecodeJSON(data []byte) (*JSONResults, error) {
	var out JSONResults
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
