package experiments

import (
	"encoding/json"

	"repro/internal/activity"
	"repro/internal/icomp"
	"repro/internal/isa"
	"repro/internal/pcincr"
)

// jsonResults is the machine-readable export of a full evaluation.
type jsonResults struct {
	Benchmarks []jsonBench        `json:"benchmarks"`
	Patterns   []jsonPattern      `json:"significantBytePatterns"`
	PCIncr     []pcincr.TableRow  `json:"pcIncrementModel"`
	Functs     []jsonFunct        `json:"functProfile"`
	Fetch      jsonFetch          `json:"instructionCompression"`
	Partitions []jsonPartitionRow `json:"partitionAblation"`
}

type jsonBench struct {
	Name       string             `json:"name"`
	Insts      uint64             `json:"instructions"`
	CPI        map[string]float64 `json:"cpi"`
	ByteSaving map[string]float64 `json:"activitySavingByte"`
	HalfSaving map[string]float64 `json:"activitySavingHalfword"`
	PredictAcc float64            `json:"branchPredictorAccuracy"`
}

type jsonPattern struct {
	Pattern    string  `json:"pattern"`
	Percent    float64 `json:"percent"`
	Cumulative float64 `json:"cumulative"`
	TwoBitOK   bool    `json:"twoBitEncodable"`
}

type jsonFunct struct {
	Funct   string  `json:"funct"`
	Percent float64 `json:"percent"`
	Compact bool    `json:"recodedCompact"`
}

type jsonFetch struct {
	MeanBytes        float64 `json:"meanBytesPerInstruction"`
	MeanBytesWithExt float64 `json:"meanBytesWithExtensionBit"`
	ThreeByteShare   float64 `json:"threeByteShare"`
}

type jsonPartitionRow struct {
	Partition string  `json:"partition"`
	MeanBits  float64 `json:"meanBitsPerValue"`
	Saving    float64 `json:"savingPercent"`
}

func savingMap(c activity.Counts) map[string]float64 {
	out := make(map[string]float64, 8)
	row := c.Row()
	for i, s := range activity.Stages() {
		out[s] = row[i]
	}
	return out
}

// JSON renders the complete evaluation as indented JSON.
func (r *Results) JSON() ([]byte, error) {
	out := jsonResults{PCIncr: pcincr.Table2()}
	for _, b := range r.Bench {
		out.Benchmarks = append(out.Benchmarks, jsonBench{
			Name:       b.Name,
			Insts:      b.Insts,
			CPI:        b.CPI,
			ByteSaving: savingMap(b.ByteAct),
			HalfSaving: savingMap(b.HalfAct),
			PredictAcc: b.PredAcc,
		})
	}
	for _, p := range r.Patterns.Rows() {
		out.Patterns = append(out.Patterns, jsonPattern{
			Pattern: p.Pattern, Percent: p.Percent,
			Cumulative: p.Cumulative, TwoBitOK: p.TwoBitOK,
		})
	}
	var total uint64
	for _, n := range r.Functs {
		total += n
	}
	for _, fn := range icomp.TopFuncts(r.Functs, 64) {
		out.Functs = append(out.Functs, jsonFunct{
			Funct:   isa.FunctName(fn),
			Percent: 100 * float64(r.Functs[fn]) / float64(total),
			Compact: r.Recoder.IsCompact(fn),
		})
	}
	f := r.Fetch
	out.Fetch = jsonFetch{
		MeanBytes:        f.MeanBytes(),
		MeanBytesWithExt: f.MeanBytesWithExt(),
		ThreeByteShare:   100 * float64(f.ThreeByte) / float64(f.Insts),
	}
	for _, row := range r.Partitions.Rows() {
		out.Partitions = append(out.Partitions, jsonPartitionRow{
			Partition: row.Name, MeanBits: row.MeanBits, Saving: row.Saving,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
