// Package experiments orchestrates the paper's full evaluation: it runs the
// workload suite once through every pipeline model and activity collector
// and renders each table and figure of the paper (the per-experiment index
// lives in DESIGN.md §4).
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/activity"
	"repro/internal/bench"
	"repro/internal/bmgating"
	"repro/internal/icomp"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pcincr"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/trace"
)

// BenchResult aggregates everything measured over one benchmark.
type BenchResult struct {
	Name       string
	Insts      uint64
	CPI        map[string]float64 // per pipeline model (incl. +bp variants)
	Stalls     map[string]map[pipeline.StallKind]uint64
	ByteAct    activity.Counts
	HalfAct    activity.Counts
	Scheme2Act activity.Counts // 2-bit extension scheme ablation (§2.1)
	PredAcc    float64         // bimodal predictor accuracy (extension)
	// FetchUnits holds the byte-budgeted frontend accounting of every
	// byte-fetch model (keyed by model name; word-fetch models have none).
	FetchUnits map[string]pipeline.FetchUnitStats
}

// Results carries the complete evaluation.
type Results struct {
	Recoder    *icomp.Recoder
	Functs     map[isa.Funct]uint64
	Bench      []BenchResult
	Patterns   *activity.PatternStats
	Fetch      *activity.FetchStats
	Partitions *activity.PartitionStats
	Width64    *activity.Width64Stats
	Frontend   *activity.FrontendStats
	// BM holds per-benchmark Brooks-Martonosi baseline collectors (keyed
	// by benchmark name): the paper's reference [1], ALU-only gating.
	BM map[string]*bmgating.Collector
}

// memo caches the first successful evaluation of a process. Unlike a bare
// sync.Once it does NOT latch failures: a cancelled or transient first call
// leaves the memo empty so the next caller retries instead of inheriting the
// stale error forever. Concurrent callers serialize on the mutex; whoever
// holds it during a successful run fills the cache for everyone after.
type memo struct {
	mu  sync.Mutex
	res *Results
	ok  bool
}

// get returns the cached result, running fn (and caching only on success)
// when none exists yet.
func (m *memo) get(fn func() (*Results, error)) (*Results, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ok {
		return m.res, nil
	}
	res, err := fn()
	if err != nil {
		return nil, err
	}
	m.res, m.ok = res, true
	return res, nil
}

var runMemo memo

// Run executes the complete evaluation once per process and caches the
// successful result, fanning benchmarks across GOMAXPROCS workers. Failed
// attempts are retried by later callers rather than cached.
func Run() (*Results, error) {
	return runMemo.get(func() (*Results, error) {
		return RunParallel(context.Background(), runtime.GOMAXPROCS(0))
	})
}

// SuiteCollectors bundles the suite-level trace consumers a full evaluation
// accumulates across every benchmark (pattern, fetch, partition, and
// 64-bit-projection statistics plus the Brooks-Martonosi baselines).
// Standalone per-benchmark runs (the serving layer) pass nil and skip them.
type SuiteCollectors struct {
	Patterns   *activity.PatternStats
	Fetch      *activity.FetchStats
	Partitions *activity.PartitionStats
	Width64    *activity.Width64Stats
	Frontend   *activity.FrontendStats
	BM         map[string]*bmgating.Collector
}

// NewSuiteCollectors builds an empty set of suite-level collectors.
func NewSuiteCollectors() *SuiteCollectors {
	return &SuiteCollectors{
		Patterns:   activity.NewPatternStats(),
		Fetch:      &activity.FetchStats{},
		Partitions: activity.NewPartitionStats(),
		Width64:    activity.NewWidth64Stats(),
		Frontend:   activity.NewFrontendStats(),
		BM:         make(map[string]*bmgating.Collector),
	}
}

// Merge folds other's tallies into sc. Every underlying collector merge is a
// pure count sum, so merging is order-independent and any per-benchmark
// split recombines to exactly the tallies of one shared collector set —
// the invariant the parallel evaluation relies on. Row/table ordering is
// derived from the merged counts at render time, so callers that want
// deterministic output only need deterministic totals, which any merge
// order provides.
func (sc *SuiteCollectors) Merge(other *SuiteCollectors) {
	sc.Patterns.Merge(other.Patterns)
	sc.Fetch.Merge(other.Fetch)
	sc.Partitions.Merge(other.Partitions)
	sc.Width64.Merge(other.Width64)
	sc.Frontend.Merge(other.Frontend)
	for name, col := range other.BM {
		if existing, ok := sc.BM[name]; ok {
			existing.Merge(col)
		} else {
			sc.BM[name] = col
		}
	}
}

// evalBench builds the full per-benchmark consumer set — every pipeline
// model (including the branch-prediction ablation variants), every activity
// collector, and the suite-level collectors when suite is non-nil — hands
// it to drive (a live run or a capture replay), and assembles the
// BenchResult. memory is the image the activity collectors read cache-line
// contents from; the caller fills in Insts.
func evalBench(name string, rc *icomp.Recoder, memory *mem.Memory, suite *SuiteCollectors,
	drive func([]trace.Consumer) error) (BenchResult, error) {
	models := pipeline.NewAll()
	// Branch-prediction ablation (the paper's §3 future-work item) on
	// three representative designs.
	for _, n := range []string{
		pipeline.NameBaseline32, pipeline.NameByteSerial, pipeline.NameParallelSkewedBypass,
	} {
		models = append(models, pipeline.NewPredicted(n))
	}
	byteCol := activity.NewCollector(1, rc, memory)
	halfCol := activity.NewCollector(2, rc, memory)
	twoBitCol := activity.NewCollectorScheme(1, activity.Scheme2, rc, memory)
	consumers := []trace.Consumer{byteCol, halfCol, twoBitCol}
	var bmCol *bmgating.Collector
	if suite != nil {
		bmCol = bmgating.NewCollector()
		consumers = append(consumers, suite.Patterns, suite.Fetch, suite.Partitions, suite.Width64, suite.Frontend, bmCol)
	}
	for _, m := range models {
		consumers = append(consumers, m)
	}
	if err := drive(consumers); err != nil {
		return BenchResult{}, err
	}
	// Register the Brooks-Martonosi collector only now: a failed run must
	// not leave a partially-filled collector in the results map.
	if suite != nil {
		suite.BM[name] = bmCol
		// Pairing adjacency must not span benchmarks: a shared sequential
		// collector set has to tally exactly what per-benchmark sets merged
		// afterwards would.
		suite.Frontend.EndRun()
	}
	br := BenchResult{
		Name:       name,
		CPI:        make(map[string]float64),
		Stalls:     make(map[string]map[pipeline.StallKind]uint64),
		ByteAct:    byteCol.Counts(),
		HalfAct:    halfCol.Counts(),
		Scheme2Act: twoBitCol.Counts(),
		FetchUnits: make(map[string]pipeline.FetchUnitStats),
	}
	for _, m := range models {
		r := m.Result()
		br.CPI[m.Name()] = r.CPI()
		br.Stalls[m.Name()] = r.Stalls
		if m.PredictorAccuracy() > 0 && m.Name() == pipeline.NameBaseline32+"+bp" {
			br.PredAcc = m.PredictorAccuracy()
		}
		if fu := m.FetchUnit(); fu != nil {
			br.FetchUnits[m.Name()] = *fu
		}
	}
	return br, nil
}

// RunBenchCtx executes one benchmark through every pipeline model (including
// the branch-prediction ablation variants) and every activity collector,
// honoring ctx cancellation, and returns its BenchResult. When suite is
// non-nil the suite-level collectors accumulate this benchmark's trace too.
// This is the per-benchmark unit of work the full evaluation (sequential or
// parallel) fans out over and the serving layer (internal/simsvc) reuses
// instead of recomputing the whole suite.
func RunBenchCtx(ctx context.Context, b bench.Benchmark, rc *icomp.Recoder, suite *SuiteCollectors) (BenchResult, error) {
	c, err := b.NewCPU()
	if err != nil {
		return BenchResult{}, err
	}
	br, err := evalBench(b.Name, rc, c.Mem, suite, func(consumers []trace.Consumer) error {
		return trace.RunOnCtx(ctx, c, b, rc, consumers...)
	})
	if err != nil {
		return BenchResult{}, err
	}
	br.Insts = c.Retired
	return br, nil
}

// RunBenchReplay is RunBenchCtx fed from a recorded trace instead of the
// interpreter: the capture is replayed (bit-identically — see
// internal/trace) into exactly the same consumer set, over a fresh memory
// image the replay's stores are applied to. One capture serves any number
// of RunBenchReplay calls, concurrently if desired. Replay goes through the
// batch engine: the timing models and activity collectors consume column
// blocks (trace.BatchConsumer), any other consumer rides the scalar shim.
// Either replay tier works — a resident *trace.Capture or a streaming
// *trace.MappedCapture — and the result is the same by construction (the
// two share the block-emission path) and by test.
func RunBenchReplay(ctx context.Context, rep trace.Replayer, rc *icomp.Recoder, suite *SuiteCollectors) (BenchResult, error) {
	m, err := rep.NewMemory()
	if err != nil {
		return BenchResult{}, err
	}
	br, err := evalBench(rep.Bench().Name, rc, m, suite, func(consumers []trace.Consumer) error {
		return rep.ReplayBlocksOn(ctx, m, rc, consumers...)
	})
	if err != nil {
		return BenchResult{}, err
	}
	br.Insts = uint64(rep.Len())
	return br, nil
}

// RunParallel executes the full evaluation with benchmark-level parallelism:
// every benchmark runs through RunBenchCtx with its own SuiteCollectors on a
// bounded worker group (first error cancels the rest), and the per-run
// collectors are merged in suite order. Because collector merging is pure
// count addition, the Results — including every rendered table and figure —
// are bit-identical to the sequential path.
func RunParallel(ctx context.Context, workers int) (*Results, error) {
	return RunSuite(ctx, bench.All(), workers)
}

// RunSuite executes the evaluation over the given benchmarks with the given
// worker count, on the capture-once / replay-many path: each benchmark is
// interpreted exactly once into a trace.Capture, the instruction recoder is
// profiled from the captures for free, and every model/collector pass is a
// replay. Results are bit-identical to RunSuiteLive (asserted by test);
// only the interpreter redundancy is gone. Peak transient memory is the
// captured suite, ~24 B per dynamic instruction (~90 MB for the full
// 16-benchmark suite). workers <= 1 selects the sequential path (one shared
// collector set, no goroutines); workers > 1 fans benchmarks across that
// many goroutines with per-run collectors merged afterwards.
func RunSuite(ctx context.Context, suite []bench.Benchmark, workers int) (*Results, error) {
	caps, err := CaptureSuite(ctx, suite, workers)
	if err != nil {
		return nil, err
	}
	functs := make(map[isa.Funct]uint64)
	for _, cp := range caps {
		for fn, n := range cp.FunctCounts() {
			functs[fn] += n
		}
	}
	rc, err := icomp.NewRecoder(icomp.TopFuncts(functs, 8))
	if err != nil {
		return nil, err
	}
	return assembleSuite(ctx, rc, functs, len(caps), workers,
		func(ctx context.Context, i int, cols *SuiteCollectors) (BenchResult, error) {
			return RunBenchReplay(ctx, caps[i], rc, cols)
		})
}

// RunSuiteLive is the pre-capture evaluation path: the recoder is profiled
// by re-running the suite and every benchmark is re-interpreted for its
// model/collector pass. It exists as the reference the replay-backed
// RunSuite is equivalence-tested against (and for callers that must not
// hold captured traces in memory).
func RunSuiteLive(ctx context.Context, suite []bench.Benchmark, workers int) (*Results, error) {
	rc, functs, err := trace.SuiteRecoder(suite)
	if err != nil {
		return nil, err
	}
	return assembleSuite(ctx, rc, functs, len(suite), workers,
		func(ctx context.Context, i int, cols *SuiteCollectors) (BenchResult, error) {
			return RunBenchCtx(ctx, suite[i], rc, cols)
		})
}

// CaptureSuite records each benchmark's trace, fanning the interpreter runs
// across up to workers goroutines (first error cancels the rest).
func CaptureSuite(ctx context.Context, suite []bench.Benchmark, workers int) ([]*trace.Capture, error) {
	caps := make([]*trace.Capture, len(suite))
	if workers <= 1 {
		for i, b := range suite {
			cp, err := trace.CaptureRun(ctx, b)
			if err != nil {
				return nil, err
			}
			caps[i] = cp
		}
		return caps, nil
	}
	err := forEachBench(ctx, len(suite), workers, func(ctx context.Context, i int) error {
		cp, err := trace.CaptureRun(ctx, suite[i])
		if err != nil {
			return err
		}
		caps[i] = cp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return caps, nil
}

// forEachBench runs fn(i) for every index across up to workers goroutines;
// the first error cancels the remaining work and is returned.
func forEachBench(ctx context.Context, n, workers int, fn func(context.Context, int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, workers)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				return
			}
			if err := fn(ctx, i); err != nil {
				// First error wins and cancels the remaining benchmarks.
				errOnce.Do(func() {
					firstErr = err
					cancel()
				})
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// assembleSuite drives the per-benchmark evaluation unit (live or replay)
// over n benchmarks and assembles the Results. workers <= 1 shares one
// collector set sequentially; otherwise per-run collectors merge in suite
// order afterwards (merging is order-independent for the counts; Bench rows
// must follow suite order for the tables).
func assembleSuite(ctx context.Context, rc *icomp.Recoder, functs map[isa.Funct]uint64, n, workers int,
	runOne func(context.Context, int, *SuiteCollectors) (BenchResult, error)) (*Results, error) {
	collectors := NewSuiteCollectors()
	res := &Results{
		Recoder:    rc,
		Functs:     functs,
		Patterns:   collectors.Patterns,
		Fetch:      collectors.Fetch,
		Partitions: collectors.Partitions,
		Width64:    collectors.Width64,
		Frontend:   collectors.Frontend,
		BM:         collectors.BM,
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			br, err := runOne(ctx, i, collectors)
			if err != nil {
				return nil, err
			}
			res.Bench = append(res.Bench, br)
		}
		return res, nil
	}

	type benchOut struct {
		br   BenchResult
		cols *SuiteCollectors
	}
	outs := make([]benchOut, n)
	err := forEachBench(ctx, n, workers, func(ctx context.Context, i int) error {
		cols := NewSuiteCollectors()
		br, err := runOne(ctx, i, cols)
		if err != nil {
			return err
		}
		outs[i] = benchOut{br: br, cols: cols}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range outs {
		res.Bench = append(res.Bench, outs[i].br)
		collectors.Merge(outs[i].cols)
	}
	return res, nil
}

// MeanCPI returns the arithmetic-mean CPI of one model over the suite.
func (r *Results) MeanCPI(model string) float64 {
	var xs []float64
	for _, b := range r.Bench {
		xs = append(xs, b.CPI[model])
	}
	return stats.Mean(xs)
}

// CPIOverhead returns the mean CPI of model relative to the baseline,
// as a +percentage.
func (r *Results) CPIOverhead(model string) float64 {
	base := r.MeanCPI(pipeline.NameBaseline32)
	if base == 0 {
		return 0
	}
	return 100 * (r.MeanCPI(model)/base - 1)
}

// Table1 renders the significant-byte pattern frequencies.
func (r *Results) Table1() *stats.Table {
	t := stats.NewTable(
		"Table 1: Frequency of significant byte patterns (register operand values)",
		"pattern", "% values", "cumulative %", "2-bit encodable")
	for _, row := range r.Patterns.Rows() {
		t.AddStringRow(row.Pattern,
			fmt.Sprintf("%.1f", row.Percent),
			fmt.Sprintf("%.1f", row.Cumulative),
			fmt.Sprintf("%v", row.TwoBitOK))
	}
	return t
}

// Table2 renders the analytic PC-increment model.
func (r *Results) Table2() *stats.Table {
	t := stats.NewTable(
		"Table 2: Activity and latency estimates for PC updating (block-serial increment)",
		"block size (bits)", "activity (bits)", "latency (cycles)")
	for _, row := range pcincr.Table2() {
		t.AddStringRow(
			fmt.Sprintf("%d", row.BlockBits),
			fmt.Sprintf("%.4f", row.Activity),
			fmt.Sprintf("%.4f", row.Latency))
	}
	return t
}

// Table3 renders the dynamic function-code frequencies and the recoded
// top-8 set.
func (r *Results) Table3() *stats.Table {
	t := stats.NewTable(
		"Table 3: Dynamic frequency of R-format function codes",
		"funct", "%", "cumulative %", "recoded compact")
	var total uint64
	for _, n := range r.Functs {
		total += n
	}
	cum := 0.0
	for _, fn := range icomp.TopFuncts(r.Functs, 64) {
		pct := 100 * float64(r.Functs[fn]) / float64(total)
		cum += pct
		t.AddStringRow(isa.FunctName(fn),
			fmt.Sprintf("%.1f", pct),
			fmt.Sprintf("%.1f", cum),
			fmt.Sprintf("%v", r.Recoder.IsCompact(fn)))
	}
	return t
}

// activityTable renders Table 5 (byte) or Table 6 (halfword).
func (r *Results) activityTable(title string, sel func(BenchResult) activity.Counts) *stats.Table {
	headers := append([]string{"benchmark"}, activity.Stages()...)
	t := stats.NewTable(title, headers...)
	sums := make([]float64, len(activity.Stages()))
	for _, b := range r.Bench {
		row := sel(b).Row()
		cells := []string{b.Name}
		for i, v := range row {
			cells = append(cells, fmt.Sprintf("%.1f", v))
			sums[i] += v
		}
		t.AddStringRow(cells...)
	}
	avg := []string{"AVG"}
	for _, s := range sums {
		avg = append(avg, fmt.Sprintf("%.1f", s/float64(len(r.Bench))))
	}
	t.AddStringRow(avg...)
	return t
}

// Table5 renders per-benchmark byte-granularity activity reductions.
func (r *Results) Table5() *stats.Table {
	return r.activityTable(
		"Table 5: Activity reduction (%) for datapath operations (8 bit granularity)",
		func(b BenchResult) activity.Counts { return b.ByteAct })
}

// Table6 renders halfword-granularity activity reductions.
func (r *Results) Table6() *stats.Table {
	return r.activityTable(
		"Table 6: Activity reduction (%) for datapath operations (16 bit granularity)",
		func(b BenchResult) activity.Counts { return b.HalfAct })
}

// cpiFigure renders a per-benchmark CPI comparison for the given models.
func (r *Results) cpiFigure(title string, models ...string) *stats.Table {
	headers := []string{"benchmark"}
	headers = append(headers, models...)
	t := stats.NewTable(title, headers...)
	for _, b := range r.Bench {
		cells := []string{b.Name}
		for _, m := range models {
			cells = append(cells, fmt.Sprintf("%.3f", b.CPI[m]))
		}
		t.AddStringRow(cells...)
	}
	avg := []string{"AVG"}
	for _, m := range models {
		avg = append(avg, fmt.Sprintf("%.3f", r.MeanCPI(m)))
	}
	t.AddStringRow(avg...)
	over := []string{"vs baseline"}
	for _, m := range models {
		over = append(over, fmt.Sprintf("%+.1f%%", r.CPIOverhead(m)))
	}
	t.AddStringRow(over...)
	return t
}

// Fig4 renders the byte-serial (and halfword-serial) CPI comparison.
func (r *Results) Fig4() *stats.Table {
	return r.cpiFigure("Figure 4: Performance of the byte-serial implementation (CPI)",
		pipeline.NameBaseline32, pipeline.NameByteSerial, pipeline.NameHalfwordSerial)
}

// Fig6 renders the byte semi-parallel CPI comparison.
func (r *Results) Fig6() *stats.Table {
	return r.cpiFigure("Figure 6: Performance of the byte semi-parallel implementation (CPI)",
		pipeline.NameBaseline32, pipeline.NameSemiParallel, pipeline.NameByteSerial)
}

// Fig8 renders the byte-parallel skewed CPI comparison.
func (r *Results) Fig8() *stats.Table {
	return r.cpiFigure("Figure 8: Performance of the byte-parallel skewed microarchitecture (CPI)",
		pipeline.NameBaseline32, pipeline.NameParallelSkewed)
}

// Fig10 renders the compressed and skewed+bypass CPI comparison.
func (r *Results) Fig10() *stats.Table {
	return r.cpiFigure("Figure 10: Performance of the byte-parallel compressed and skewed+bypass designs (CPI)",
		pipeline.NameBaseline32, pipeline.NameParallelSkewedBypass, pipeline.NameParallelCompressed)
}

// Bottleneck renders the §5 stall study of the byte-serial design.
func (r *Results) Bottleneck() *stats.Table {
	t := stats.NewTable(
		"Section 5 bottleneck study: byte-serial stall breakdown (cycles, % of stalls)",
		"benchmark", "struct-ex %", "struct-rf %", "struct-mem %", "struct-wb %", "struct-if %", "branch %", "data %", "cache %")
	kinds := []pipeline.StallKind{
		pipeline.StallStructEX, pipeline.StallStructRF, pipeline.StallStructMEM,
		pipeline.StallStructWB, pipeline.StallStructIF,
		pipeline.StallBranch, pipeline.StallData,
	}
	var sums [8]float64
	for _, b := range r.Bench {
		st := b.Stalls[pipeline.NameByteSerial]
		var total uint64
		for _, v := range st {
			total += v
		}
		cells := []string{b.Name}
		for i, k := range kinds {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(st[k]) / float64(total)
			}
			sums[i] += pct
			cells = append(cells, fmt.Sprintf("%.1f", pct))
		}
		cache := 0.0
		if total > 0 {
			cache = 100 * float64(st[pipeline.StallICache]+st[pipeline.StallDCache]) / float64(total)
		}
		sums[7] += cache
		cells = append(cells, fmt.Sprintf("%.1f", cache))
		t.AddStringRow(cells...)
	}
	avg := []string{"AVG"}
	for _, s := range sums {
		avg = append(avg, fmt.Sprintf("%.1f", s/float64(len(r.Bench))))
	}
	t.AddStringRow(avg...)
	return t
}

// FetchSummary renders the §2.3 text numbers.
func (r *Results) FetchSummary() string {
	f := r.Fetch
	return fmt.Sprintf(
		"Instruction compression (§2.3): mean %.2f bytes/inst (%.2f incl. extension bit); "+
			"3-byte share %.1f%%; formats R %.1f%% / I %.1f%% / J %.1f%%; "+
			"immediates compressed to 8 bits: %.1f%% of I-format\n"+
			"2-bit scheme pattern coverage (§2.1): %.1f%% of operand values",
		f.MeanBytes(), f.MeanBytesWithExt(),
		100*float64(f.ThreeByte)/float64(f.Insts),
		100*float64(f.RFormat)/float64(f.Insts),
		100*float64(f.IFormat)/float64(f.Insts),
		100*float64(f.JFormat)/float64(f.Insts),
		100*float64(f.ImmFits8)/float64(f.ImmUsers),
		r.Patterns.TwoBitCoverage()) + fmt.Sprintf(
		"\n64-bit ISA projection (§2.9): operand storage saving %.1f%% at 32 bits vs %.1f%% at 64 bits",
		r.Width64.Saving32(), r.Width64.Saving64())
}
