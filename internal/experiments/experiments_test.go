package experiments

import (
	"strings"
	"testing"

	"repro/internal/pipeline"
)

// The integration assertions of DESIGN.md §6: the qualitative shape of the
// paper's results must hold.

func load(t testing.TB) *Results {
	t.Helper()
	r, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// CPI ordering across the design space (DESIGN.md §6 item 3/4).
func TestCPIOrdering(t *testing.T) {
	r := load(t)
	base := r.MeanCPI(pipeline.NameBaseline32)
	byteS := r.MeanCPI(pipeline.NameByteSerial)
	halfS := r.MeanCPI(pipeline.NameHalfwordSerial)
	semi := r.MeanCPI(pipeline.NameSemiParallel)
	comp := r.MeanCPI(pipeline.NameParallelCompressed)
	skew := r.MeanCPI(pipeline.NameParallelSkewed)
	byp := r.MeanCPI(pipeline.NameParallelSkewedBypass)

	t.Logf("base %.3f | byte %.3f | half %.3f | semi %.3f | comp %.3f | skew %.3f | byp %.3f",
		base, byteS, halfS, semi, comp, skew, byp)

	if !(byteS > halfS && halfS > semi && semi > comp && comp > skew && skew >= byp && byp > base) {
		t.Fatal("CPI ordering violated")
	}
}

// The byte-serial penalty is tens of percent (paper: +79%); the parallel
// designs are within single digits (paper: 2-6%).
func TestCPIMagnitudes(t *testing.T) {
	r := load(t)
	if o := r.CPIOverhead(pipeline.NameByteSerial); o < 50 || o > 120 {
		t.Errorf("byte-serial overhead %.1f%%, paper ~79%%", o)
	}
	if o := r.CPIOverhead(pipeline.NameHalfwordSerial); o < 15 || o > 50 {
		t.Errorf("halfword-serial overhead %.1f%%, paper ~29%%", o)
	}
	if o := r.CPIOverhead(pipeline.NameSemiParallel); o < 10 || o > 35 {
		t.Errorf("semi-parallel overhead %.1f%%, paper ~24%%", o)
	}
	if o := r.CPIOverhead(pipeline.NameParallelCompressed); o < 2 || o > 20 {
		t.Errorf("compressed overhead %.1f%%, paper ~6%%", o)
	}
	if o := r.CPIOverhead(pipeline.NameParallelSkewedBypass); o < 0 || o > 10 {
		t.Errorf("skewed+bypass overhead %.1f%%, paper ~2%%", o)
	}
	// Baseline CPI itself must be plausible for a 5-stage in-order machine
	// without branch prediction (the paper's bandwidth analysis uses 1.5).
	if b := r.MeanCPI(pipeline.NameBaseline32); b < 1.1 || b > 1.7 {
		t.Errorf("baseline CPI %.3f, expected ~1.4-1.5", b)
	}
}

// The §5 bottleneck claim: structural hazards in EX dominate byte-serial
// stalls (paper: 72% of stalls).
func TestByteSerialEXBottleneck(t *testing.T) {
	r := load(t)
	var ex, total uint64
	for _, b := range r.Bench {
		for k, v := range b.Stalls[pipeline.NameByteSerial] {
			total += v
			if k == pipeline.StallStructEX {
				ex += v
			}
		}
	}
	share := 100 * float64(ex) / float64(total)
	t.Logf("EX structural share of byte-serial stalls: %.1f%%", share)
	if share < 35 {
		t.Errorf("EX structural stalls only %.1f%% of byte-serial stalls; expected the dominant class", share)
	}
	// EX must be the largest structural class.
	classes := map[pipeline.StallKind]uint64{}
	for _, b := range r.Bench {
		for k, v := range b.Stalls[pipeline.NameByteSerial] {
			classes[k] += v
		}
	}
	for k, v := range classes {
		if strings.HasPrefix(string(k), "struct-") && k != pipeline.StallStructEX && v > classes[pipeline.StallStructEX] {
			t.Errorf("structural class %s (%d) exceeds EX (%d)", k, v, classes[pipeline.StallStructEX])
		}
	}
}

// Table/figure renderers must produce one row per benchmark plus summary
// rows, and never be empty.
func TestRenderers(t *testing.T) {
	r := load(t)
	n := len(r.Bench)
	cases := []struct {
		name string
		tbl  interface{ Rows() int }
		want int
	}{
		{"Table1", r.Table1(), 8},
		{"Table2", r.Table2(), 8},
		{"Table5", r.Table5(), n + 1},
		{"Table6", r.Table6(), n + 1},
		{"Fig4", r.Fig4(), n + 2},
		{"Fig6", r.Fig6(), n + 2},
		{"Fig8", r.Fig8(), n + 2},
		{"Fig10", r.Fig10(), n + 2},
		{"Bottleneck", r.Bottleneck(), n + 1},
	}
	for _, c := range cases {
		if got := c.tbl.Rows(); got != c.want {
			t.Errorf("%s: %d rows, want %d", c.name, got, c.want)
		}
	}
	if r.Table3().Rows() < 8 {
		t.Error("Table3 should list at least the top-8 functs")
	}
	if !strings.Contains(r.FetchSummary(), "bytes/inst") {
		t.Error("fetch summary malformed")
	}
}

// Per-benchmark spread (paper: ALU savings range 15-68%, RF read 34-72%):
// the suite must show a real spread, not uniform savings.
func TestActivitySpread(t *testing.T) {
	r := load(t)
	min, max := 200.0, -200.0
	for _, b := range r.Bench {
		v := b.ByteAct.ALU.Reduction()
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min < 15 {
		t.Errorf("ALU savings spread %.1f..%.1f too uniform", min, max)
	}
	t.Logf("ALU savings spread: %.1f%% .. %.1f%%", min, max)
}
