package experiments

import (
	"context"
	"testing"

	"repro/internal/pipeline"
)

// TestSuiteByteFetchEquivalence is the suite-level face of the equivalence
// wall: in a full evaluation, ByteFetch(4) with recoding disabled must
// report exactly the baseline's CPI on every benchmark, the byte-fetch
// models must carry fetch-unit accounting (and the word-fetch models must
// not), and the suite-level frontend profile must be populated.
func TestSuiteByteFetchEquivalence(t *testing.T) {
	res, err := RunSuite(context.Background(), replaySubset(t), 4)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	for _, b := range res.Bench {
		if b.CPI[pipeline.NameByteFetch4Raw] != b.CPI[pipeline.NameBaseline32] {
			t.Errorf("%s: bytefetch4-raw CPI %v != baseline32 CPI %v",
				b.Name, b.CPI[pipeline.NameByteFetch4Raw], b.CPI[pipeline.NameBaseline32])
		}
		for _, name := range []string{
			pipeline.NameByteFetch2, pipeline.NameByteFetch3, pipeline.NameByteFetch4,
			pipeline.NameByteFetch4Raw, pipeline.NameDualCompress4,
		} {
			fu, ok := b.FetchUnits[name]
			if !ok {
				t.Fatalf("%s: no fetch-unit accounting for %s", b.Name, name)
			}
			if fu.IssueCycles == 0 {
				t.Errorf("%s/%s: zero issue cycles", b.Name, name)
			}
		}
		if _, ok := b.FetchUnits[pipeline.NameBaseline32]; ok {
			t.Errorf("%s: word-fetch baseline grew a fetch unit", b.Name)
		}
		dual := b.FetchUnits[pipeline.NameDualCompress4]
		if dual.DualIssued == 0 {
			t.Errorf("%s: dualc4 never paired", b.Name)
		}
		if ipc := dual.IntoDecodeIPC(b.Insts); ipc <= 1.0 || ipc > 2.0 {
			t.Errorf("%s: dualc4 into-decode IPC %.3f outside (1, 2]", b.Name, ipc)
		}
	}
	if res.Frontend.Insts == 0 || res.Frontend.Pairs == 0 {
		t.Errorf("suite frontend profile degenerate: %+v", res.Frontend.State())
	}
	// The renderers over the new sections must not panic and must carry the
	// model columns.
	if tbl := res.FigFetch(); tbl == nil {
		t.Fatal("FigFetch returned nil")
	}
	if s := res.FrontendSummary(); s == "" {
		t.Fatal("empty frontend summary")
	}
}

// TestFetchSweepTable exercises the bandwidth sweep end-to-end on the
// narrow axis (the full sweep is the committed EXPERIMENTS.md artifact).
func TestFetchSweepTable(t *testing.T) {
	if testing.Short() {
		t.Skip("fetch sweep replays the whole suite")
	}
	results, err := FetchSweep([]int{4})
	if err != nil {
		t.Fatalf("FetchSweep: %v", err)
	}
	if len(results) == 0 {
		t.Fatal("empty sweep")
	}
	best := 0.0
	for _, r := range results {
		if r.CPIDual > r.CPIComp {
			t.Errorf("%s @%dB: dual-issue CPI %.3f worse than single %.3f",
				r.Bench, r.Bytes, r.CPIDual, r.CPIComp)
		}
		if r.DualIPC > best {
			best = r.DualIPC
		}
	}
	if best <= 1.0 {
		t.Errorf("no benchmark sustains >1 inst/cycle into decode at 4 B/cycle (best %.3f)", best)
	}
	if FetchSweepTable(results) == nil {
		t.Fatal("nil sweep table")
	}
}
