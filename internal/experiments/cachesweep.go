package experiments

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/trace"
)

// CacheSweep evaluates the robustness of the paper's conclusions to the L1
// geometry (§2.3 notes the fill overhead argument "assumes a reasonable
// instruction cache miss rate"): baseline and byte-serial mean CPI at
// several split-L1 sizes. Geometry is a model parameter, not part of the
// cached one-pass evaluation, so the sweep runs its own traces — but each
// benchmark is interpreted exactly once and replayed per geometry (one
// capture live at a time, so the sweep's footprint stays one trace).
func CacheSweep(sizes []int) (*stats.Table, error) {
	ctx := context.Background()
	suite := bench.All()
	rc, _, err := trace.SuiteRecoder(suite)
	if err != nil {
		return nil, err
	}
	baseSums := make([]float64, len(sizes))
	serialSums := make([]float64, len(sizes))
	for _, b := range suite {
		cp, err := trace.CaptureRun(ctx, b)
		if err != nil {
			return nil, err
		}
		for i, size := range sizes {
			cfg := mem.DefaultHierarchyConfig()
			cfg.L1I.Size = size
			cfg.L1D.Size = size
			base := pipeline.NewBaseline32().SetHierarchy(cfg)
			serial := pipeline.NewByteSerial().SetHierarchy(cfg)
			// Batch replay with no memory image: timing models never read
			// program memory, so the stores need not be applied anywhere.
			if err := cp.ReplayBlocks(ctx, rc, base, serial); err != nil {
				return nil, err
			}
			baseSums[i] += base.Result().CPI()
			serialSums[i] += serial.Result().CPI()
		}
	}
	t := stats.NewTable(
		"Sensitivity: L1 size (split I/D) vs mean CPI",
		"L1 size", "baseline32", "byteserial", "serial overhead")
	n := float64(len(suite))
	for i, size := range sizes {
		t.AddStringRow(
			fmt.Sprintf("%d KB", size>>10),
			fmt.Sprintf("%.3f", baseSums[i]/n),
			fmt.Sprintf("%.3f", serialSums[i]/n),
			fmt.Sprintf("%+.1f%%", 100*(serialSums[i]/baseSums[i]-1)))
	}
	return t, nil
}

// DefaultCacheSweepSizes are the L1 sizes the sensitivity study covers
// (the paper's configuration is 8 KB).
func DefaultCacheSweepSizes() []int {
	return []int{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10}
}
