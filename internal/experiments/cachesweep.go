package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/trace"
)

// CacheSweep evaluates the robustness of the paper's conclusions to the L1
// geometry (§2.3 notes the fill overhead argument "assumes a reasonable
// instruction cache miss rate"): baseline and byte-serial mean CPI at
// several split-L1 sizes. It runs its own traces (geometry is a model
// parameter, not part of the cached one-pass evaluation).
func CacheSweep(sizes []int) (*stats.Table, error) {
	suite := bench.All()
	rc, _, err := trace.SuiteRecoder(suite)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Sensitivity: L1 size (split I/D) vs mean CPI",
		"L1 size", "baseline32", "byteserial", "serial overhead")
	for _, size := range sizes {
		cfg := mem.DefaultHierarchyConfig()
		cfg.L1I.Size = size
		cfg.L1D.Size = size
		var baseSum, serialSum float64
		for _, b := range suite {
			base := pipeline.NewBaseline32().SetHierarchy(cfg)
			serial := pipeline.NewByteSerial().SetHierarchy(cfg)
			if _, err := trace.Run(b, rc, base, serial); err != nil {
				return nil, err
			}
			baseSum += base.Result().CPI()
			serialSum += serial.Result().CPI()
		}
		n := float64(len(suite))
		t.AddStringRow(
			fmt.Sprintf("%d KB", size>>10),
			fmt.Sprintf("%.3f", baseSum/n),
			fmt.Sprintf("%.3f", serialSum/n),
			fmt.Sprintf("%+.1f%%", 100*(serialSum/baseSum-1)))
	}
	return t, nil
}

// DefaultCacheSweepSizes are the L1 sizes the sensitivity study covers
// (the paper's configuration is 8 KB).
func DefaultCacheSweepSizes() []int {
	return []int{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10}
}
