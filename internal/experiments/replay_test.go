package experiments

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/bench"
)

// replaySubset is a small slice of the suite, enough to exercise loads,
// stores, branches, mult/div, and every consumer, while keeping the
// double (live + replay) evaluation fast.
func replaySubset(t *testing.T) []bench.Benchmark {
	t.Helper()
	var subset []bench.Benchmark
	for _, name := range []string{"dijkstra", "g711dec", "rawdaudio"} {
		b, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("benchmark %q not in suite", name)
		}
		subset = append(subset, b)
	}
	return subset
}

// TestRunSuiteReplayMatchesLive is the experiments-layer bit-identity
// guarantee: the capture-once/replay-many evaluation must encode to exactly
// the same JSON as the live-interpreter path, for both the sequential and
// the parallel drivers.
func TestRunSuiteReplayMatchesLive(t *testing.T) {
	ctx := context.Background()
	subset := replaySubset(t)
	live, err := RunSuiteLive(ctx, subset, 1)
	if err != nil {
		t.Fatalf("RunSuiteLive: %v", err)
	}
	wantJSON, err := json.Marshal(live.Encode())
	if err != nil {
		t.Fatalf("marshal live: %v", err)
	}
	for _, workers := range []int{1, 4} {
		replay, err := RunSuite(ctx, subset, workers)
		if err != nil {
			t.Fatalf("RunSuite(workers=%d): %v", workers, err)
		}
		gotJSON, err := json.Marshal(replay.Encode())
		if err != nil {
			t.Fatalf("marshal replay: %v", err)
		}
		if string(gotJSON) != string(wantJSON) {
			t.Errorf("workers=%d: replay-backed suite JSON differs from live run\n live:   %d bytes\n replay: %d bytes",
				workers, len(wantJSON), len(gotJSON))
		}
	}
}

// TestCaptureSuiteCancel checks that suite capture honors cancellation.
func TestCaptureSuiteCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CaptureSuite(ctx, replaySubset(t), 2); err == nil {
		t.Error("CaptureSuite under cancelled context succeeded")
	}
}
