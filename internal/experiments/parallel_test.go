package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/icomp"
)

// TestParallelSequentialEquivalence is the tentpole acceptance check: the
// parallel evaluation (per-run collectors merged in suite order) must render
// byte-identical tables, figures, and summaries to the sequential
// shared-collector path.
func TestParallelSequentialEquivalence(t *testing.T) {
	suite := bench.All()
	if len(suite) > 3 {
		suite = suite[:3]
	}
	seq, err := RunSuite(context.Background(), suite, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSuite(context.Background(), suite, len(suite))
	if err != nil {
		t.Fatal(err)
	}

	renders := []struct {
		name     string
		seq, par string
	}{
		{"Table1", seq.Table1().String(), par.Table1().String()},
		{"Table3", seq.Table3().String(), par.Table3().String()},
		{"Table5", seq.Table5().String(), par.Table5().String()},
		{"Table6", seq.Table6().String(), par.Table6().String()},
		{"Fig4", seq.Fig4().String(), par.Fig4().String()},
		{"Fig10", seq.Fig10().String(), par.Fig10().String()},
		{"Bottleneck", seq.Bottleneck().String(), par.Bottleneck().String()},
		{"FetchSummary", seq.FetchSummary(), par.FetchSummary()},
	}
	for _, r := range renders {
		if r.seq != r.par {
			t.Errorf("%s differs between sequential and parallel runs:\n--- sequential ---\n%s\n--- parallel ---\n%s", r.name, r.seq, r.par)
		}
	}

	if !reflect.DeepEqual(seq.Patterns.Rows(), par.Patterns.Rows()) {
		t.Error("pattern rows differ")
	}
	if !reflect.DeepEqual(seq.Partitions.Rows(), par.Partitions.Rows()) {
		t.Error("partition rows differ")
	}
	if seq.Width64.Saving32() != par.Width64.Saving32() || seq.Width64.Saving64() != par.Width64.Saving64() {
		t.Error("64-bit projection differs")
	}
	if len(seq.BM) != len(par.BM) {
		t.Fatalf("BM collectors: sequential %d, parallel %d", len(seq.BM), len(par.BM))
	}
	for name, sc := range seq.BM {
		pc, ok := par.BM[name]
		if !ok {
			t.Errorf("BM key %q missing from parallel results", name)
			continue
		}
		if sc.ALUSaving() != pc.ALUSaving() || sc.NarrowShare() != pc.NarrowShare() || sc.Ops() != pc.Ops() {
			t.Errorf("BM collector %q differs", name)
		}
	}
	if !reflect.DeepEqual(seq.Bench, par.Bench) {
		t.Error("per-benchmark results differ")
	}
}

// Regression for the once-poisoning bug: a failed first evaluation must not
// latch its error for every later caller.
func TestMemoRetriesAfterError(t *testing.T) {
	var m memo
	calls := 0
	boom := errors.New("transient failure")
	if _, err := m.get(func() (*Results, error) { calls++; return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("first call: err = %v, want %v", err, boom)
	}
	want := &Results{}
	got, err := m.get(func() (*Results, error) { calls++; return want, nil })
	if err != nil || got != want {
		t.Fatalf("retry after error: got %v, %v", got, err)
	}
	got, err = m.get(func() (*Results, error) { calls++; return nil, errors.New("must not run") })
	if err != nil || got != want {
		t.Fatalf("cached call: got %v, %v", got, err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2 (one failure, one success, then cached)", calls)
	}
}

// Regression for suite-map poisoning: a failed benchmark run must not leave
// a partially-filled Brooks-Martonosi collector in the suite results.
func TestRunBenchCtxFailureLeavesNoBMCollector(t *testing.T) {
	b := bench.All()[0]
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	cols := NewSuiteCollectors()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunBenchCtx(ctx, b, rc, cols); err == nil {
		t.Fatal("expected an error from a cancelled context")
	}
	if len(cols.BM) != 0 {
		t.Fatalf("failed run registered a BM collector: %v", cols.BM)
	}
}

// A cancelled parallel run must fail with the context error, not hang or
// return partial results.
func TestRunSuiteCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	suite := bench.All()[:2]
	if _, err := RunSuite(ctx, suite, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func benchmarkSuite(b *testing.B, workers int) {
	suite := bench.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSuite(context.Background(), suite, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// The acceptance benchmark pair: on a 4+-core host the parallel evaluation
// at 4 workers should run the full suite at least 2x faster than the
// sequential path (go test -bench 'FullEvaluation' ./internal/experiments).
func BenchmarkFullEvaluationSequential(b *testing.B) { benchmarkSuite(b, 1) }
func BenchmarkFullEvaluationParallel4(b *testing.B)  { benchmarkSuite(b, 4) }
