package experiments

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/trace"
)

// FetchSweepResult is one (bandwidth, benchmark) cell of the fetch sweep:
// the CPI of the compressed, raw, and dual-issue byte-fetch frontends at
// that byte budget, plus the dual frontend's sustained into-decode rate.
type FetchSweepResult struct {
	Bytes     int
	Bench     string
	CPIComp   float64 // bytefetch<B>: recoded 3/4-byte stream
	CPIRaw    float64 // bytefetch<B>-raw: fixed 4-byte stream
	CPIDual   float64 // dualc<B>: dual-issue-when-compressed
	DualIPC   float64 // dualc<B> instructions per decode-accepting cycle
	DualPairs uint64  // dualc<B> pairs actually issued
}

// FetchSweep sweeps fetch bandwidth (bytes per cycle) over the whole suite
// through the three byte-fetch frontends — the CPI-vs-fetch-bytes axis of
// the compressed-fetch study. Each benchmark is interpreted exactly once
// and batch-replayed per width (one capture live at a time, like
// CacheSweep).
func FetchSweep(widths []int) ([]FetchSweepResult, error) {
	ctx := context.Background()
	suite := bench.All()
	rc, _, err := trace.SuiteRecoder(suite)
	if err != nil {
		return nil, err
	}
	var out []FetchSweepResult
	for _, b := range suite {
		cp, err := trace.CaptureRun(ctx, b)
		if err != nil {
			return nil, err
		}
		for _, w := range widths {
			comp := pipeline.NewByteFetch(w, false, false)
			raw := pipeline.NewByteFetch(w, false, true)
			dual := pipeline.NewByteFetch(w, true, false)
			if err := cp.ReplayBlocks(ctx, rc, comp, raw, dual); err != nil {
				return nil, err
			}
			rd := dual.Result()
			fu := dual.FetchUnit()
			out = append(out, FetchSweepResult{
				Bytes:     w,
				Bench:     b.Name,
				CPIComp:   comp.Result().CPI(),
				CPIRaw:    raw.Result().CPI(),
				CPIDual:   rd.CPI(),
				DualIPC:   fu.IntoDecodeIPC(rd.Insts),
				DualPairs: fu.DualIssued,
			})
		}
	}
	return out, nil
}

// FetchSweepTable renders the sweep as mean CPI per width, with the best
// per-benchmark dual-issue into-decode rate as the headline column.
func FetchSweepTable(results []FetchSweepResult) *stats.Table {
	t := stats.NewTable(
		"Compressed fetch: CPI vs fetch bandwidth (bytes/cycle, suite mean)",
		"B/cycle", "raw (4B insts)", "compressed", "dual-issue", "best dual IPC (bench)")
	type agg struct {
		n               int
		comp, raw, dual float64
		bestIPC         float64
		bestBench       string
	}
	byWidth := make(map[int]*agg)
	var widths []int
	for _, r := range results {
		a, ok := byWidth[r.Bytes]
		if !ok {
			a = &agg{}
			byWidth[r.Bytes] = a
			widths = append(widths, r.Bytes)
		}
		a.n++
		a.comp += r.CPIComp
		a.raw += r.CPIRaw
		a.dual += r.CPIDual
		if r.DualIPC > a.bestIPC {
			a.bestIPC, a.bestBench = r.DualIPC, r.Bench
		}
	}
	for _, w := range widths {
		a := byWidth[w]
		n := float64(a.n)
		t.AddStringRow(
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%.3f", a.raw/n),
			fmt.Sprintf("%.3f", a.comp/n),
			fmt.Sprintf("%.3f", a.dual/n),
			fmt.Sprintf("%.3f (%s)", a.bestIPC, a.bestBench))
	}
	return t
}

// DefaultFetchSweepWidths are the byte budgets the sweep covers; 4 B/cycle
// is the interesting point — one word, where recoding is what buys slack.
func DefaultFetchSweepWidths() []int {
	return []int{2, 3, 4, 6, 8}
}

// FigFetch renders the per-benchmark CPI comparison of the byte-fetch
// family against the word-fetch baseline from a full evaluation.
func (r *Results) FigFetch() *stats.Table {
	return r.cpiFigure("Compressed-fetch frontend: per-benchmark CPI (4 B/cycle fetch)",
		pipeline.NameBaseline32, pipeline.NameByteFetch4Raw, pipeline.NameByteFetch2,
		pipeline.NameByteFetch3, pipeline.NameByteFetch4, pipeline.NameDualCompress4)
}

// FrontendSummary renders the suite-level dual-issue opportunity profile.
func (r *Results) FrontendSummary() string {
	f := r.Frontend
	return fmt.Sprintf(
		"Compressed-fetch frontend: %.1f%% of instructions 3-byte; "+
			"dual-issue pairs cover %.1f%% of the stream; mean fetch run %.1f insts",
		f.CompressedShare(), f.PairShare(), f.MeanRunLength())
}
