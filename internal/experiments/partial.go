package experiments

import (
	"fmt"

	"repro/internal/activity"
	"repro/internal/bmgating"
	"repro/internal/icomp"
	"repro/internal/isa"
	"repro/internal/pcincr"
)

// This file is the cross-node form of the suite evaluation: one shard
// evaluates a subset of the benchmark suite and exports a PartialSuite; a
// gateway merges any number of partials — in any grouping — back into the
// complete JSONResults. Because every suite-level collector travels as raw
// count state (see activity/state.go, bmgating/state.go) and every derived
// figure is computed only after the merge, a suite scattered over N shards
// encodes byte-identically to a single-process run. This is the PR 2 merge
// invariant promoted to a fan-in contract between machines.

// CollectorsState is the wire form of a SuiteCollectors set.
type CollectorsState struct {
	Patterns   activity.PatternState     `json:"patterns"`
	Fetch      activity.FetchStats       `json:"fetch"`
	Partitions activity.PartitionState   `json:"partitions"`
	Width64    activity.Width64State     `json:"width64"`
	Frontend   activity.FrontendState    `json:"frontend"`
	BM         map[string]bmgating.State `json:"bmGating,omitempty"`
}

// State exports the collector set's raw tallies for transport.
func (sc *SuiteCollectors) State() CollectorsState {
	st := CollectorsState{
		Patterns:   sc.Patterns.State(),
		Fetch:      *sc.Fetch,
		Partitions: sc.Partitions.State(),
		Width64:    sc.Width64.State(),
		Frontend:   sc.Frontend.State(),
		BM:         make(map[string]bmgating.State, len(sc.BM)),
	}
	for name, col := range sc.BM {
		st.BM[name] = col.State()
	}
	return st
}

// AddState folds a transported collector set into sc. Like Merge, the sums
// are order-independent, so any grouping of partial states recombines to
// one shared collector set's tallies.
func (sc *SuiteCollectors) AddState(st CollectorsState) error {
	sc.Patterns.AddState(st.Patterns)
	sc.Fetch.Merge(&st.Fetch)
	if err := sc.Partitions.AddState(st.Partitions); err != nil {
		return err
	}
	sc.Width64.AddState(st.Width64)
	sc.Frontend.AddState(st.Frontend)
	for name, bm := range st.BM {
		col, ok := sc.BM[name]
		if !ok {
			col = bmgating.NewCollector()
			sc.BM[name] = col
		}
		col.AddState(bm)
	}
	return nil
}

// PartialSuite is one shard's share of a scattered suite evaluation: the
// fully-encoded per-benchmark results for its partition plus the raw
// suite-level collector state over exactly those benchmarks. Functs is the
// dynamic function-code profile of the shard's whole served suite — it is
// an input to the recoder, not a per-partition tally, so every shard
// serving the same suite reports an identical section and the gateway may
// take it from any one of them.
type PartialSuite struct {
	Benchmarks []BenchJSON     `json:"benchmarks"`
	Functs     []FunctJSON     `json:"functProfile"`
	Collectors CollectorsState `json:"collectors"`
}

// MergePartials recombines shard partials into the complete evaluation
// JSON. order is the full suite's benchmark order (the single-process
// serving order); every name in it must appear in exactly one partial. The
// returned instruction total is the sum over the ordered benchmarks,
// matching the single-process suite response.
func MergePartials(order []string, parts []*PartialSuite) (*JSONResults, uint64, error) {
	if len(parts) == 0 {
		return nil, 0, fmt.Errorf("experiments: no suite partials to merge")
	}
	byName := make(map[string]BenchJSON)
	master := NewSuiteCollectors()
	for _, p := range parts {
		if p == nil {
			return nil, 0, fmt.Errorf("experiments: nil suite partial")
		}
		for _, b := range p.Benchmarks {
			if _, dup := byName[b.Name]; dup {
				return nil, 0, fmt.Errorf("experiments: benchmark %q appears in more than one partial", b.Name)
			}
			byName[b.Name] = b
		}
		if err := master.AddState(p.Collectors); err != nil {
			return nil, 0, err
		}
	}
	out := &JSONResults{
		PCIncr: pcincr.Table2(),
		Functs: parts[0].Functs,
	}
	var insts uint64
	for _, name := range order {
		b, ok := byName[name]
		if !ok {
			return nil, 0, fmt.Errorf("experiments: benchmark %q missing from merged partials", name)
		}
		out.Benchmarks = append(out.Benchmarks, b)
		insts += b.Insts
	}
	if extra := len(byName) - len(order); extra > 0 {
		return nil, 0, fmt.Errorf("experiments: partials carry %d benchmarks not in suite order", extra)
	}
	out.Patterns = EncodePatterns(master.Patterns)
	out.Fetch = EncodeFetch(master.Fetch)
	out.Partitions = EncodePartitions(master.Partitions)
	out.BMGating = EncodeBM(order, master.BM)
	out.Width64 = EncodeWidth64(master.Width64)
	out.Frontend = EncodeFrontend(master.Frontend)
	return out, insts, nil
}

// EncodePatterns renders the Table 1 pattern profile section.
func EncodePatterns(p *activity.PatternStats) []PatternJSON {
	var out []PatternJSON
	for _, row := range p.Rows() {
		out = append(out, PatternJSON{
			Pattern: row.Pattern, Percent: row.Percent,
			Cumulative: row.Cumulative, TwoBitOK: row.TwoBitOK,
		})
	}
	return out
}

// EncodeFuncts renders the Table 3 function-code profile section.
func EncodeFuncts(functs map[isa.Funct]uint64, rc *icomp.Recoder) []FunctJSON {
	var total uint64
	for _, n := range functs {
		total += n
	}
	var out []FunctJSON
	for _, fn := range icomp.TopFuncts(functs, 64) {
		out = append(out, FunctJSON{
			Funct:   isa.FunctName(fn),
			Percent: pct(functs[fn], total),
			Compact: rc.IsCompact(fn),
		})
	}
	return out
}

// EncodeFetch renders the §2.3 instruction-compression section.
func EncodeFetch(f *activity.FetchStats) FetchJSON {
	return FetchJSON{
		MeanBytes:        f.MeanBytes(),
		MeanBytesWithExt: f.MeanBytesWithExt(),
		ThreeByteShare:   pct(f.ThreeByte, f.Insts),
	}
}

// EncodeFrontend renders the compressed-fetch frontend profile section.
func EncodeFrontend(f *activity.FrontendStats) FrontendJSON {
	return FrontendJSON{
		CompressedShare: f.CompressedShare(),
		PairShare:       f.PairShare(),
		MeanRunLength:   f.MeanRunLength(),
	}
}

// EncodePartitions renders the register-partitioning ablation section.
func EncodePartitions(ps *activity.PartitionStats) []PartitionRowJSON {
	var out []PartitionRowJSON
	for _, row := range ps.Rows() {
		out = append(out, PartitionRowJSON{
			Partition: row.Name, MeanBits: row.MeanBits, Saving: row.Saving,
		})
	}
	return out
}

// EncodeBM renders the Brooks-Martonosi baseline section in benchmark
// (not map) order, keeping the encoding deterministic.
func EncodeBM(order []string, bm map[string]*bmgating.Collector) []BMJSON {
	var out []BMJSON
	for _, name := range order {
		col, ok := bm[name]
		if !ok {
			continue
		}
		out = append(out, BMJSON{
			Benchmark:   name,
			ALUSaving:   col.ALUSaving(),
			NarrowShare: col.NarrowShare(),
		})
	}
	return out
}

// EncodeWidth64 renders the §2.9 64-bit-ISA projection section.
func EncodeWidth64(w *activity.Width64Stats) Width64JSON {
	return Width64JSON{Saving32: w.Saving32(), Saving64: w.Saving64()}
}
