package experiments

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/activity"
	"repro/internal/icomp"
	"repro/internal/isa"
	"repro/internal/pipeline"
)

// fakeResults builds a small synthetic evaluation: two benchmarks, a couple
// of function codes, and non-zero fetch statistics — enough to exercise
// every section of the JSON schema without running the 30-second suite.
func fakeResults(t *testing.T) *Results {
	t.Helper()
	act := activity.Counts{Insts: 100}
	act.Fetch.Baseline = 3200
	act.Fetch.Compressed = 2400
	act.ALU.Baseline = 1000
	act.ALU.Compressed = 400
	return &Results{
		Recoder: icomp.MustNewRecoder(icomp.DefaultTopFuncts()),
		Functs: map[isa.Funct]uint64{
			isa.FnADDU: 75,
			isa.FnSLL:  25,
		},
		Bench: []BenchResult{
			{
				Name:  "fake1",
				Insts: 100,
				CPI: map[string]float64{
					pipeline.NameBaseline32: 1.25,
					pipeline.NameByteSerial: 2.5,
				},
				ByteAct: act,
				HalfAct: act,
				FetchUnits: map[string]pipeline.FetchUnitStats{
					pipeline.NameDualCompress4: {
						BytesPerCycle: 4, BufferBytes: 16,
						IssueCycles: 80, DualIssued: 20, MaxOccupancy: 7,
					},
				},
			},
			{
				Name:    "fake2",
				Insts:   200,
				CPI:     map[string]float64{pipeline.NameBaseline32: 1.5},
				PredAcc: 0.875,
			},
		},
		Patterns:   activity.NewPatternStats(),
		Fetch:      &activity.FetchStats{Insts: 100, Bytes: 317, ThreeByte: 83},
		Partitions: activity.NewPartitionStats(),
		Width64:    activity.NewWidth64Stats(),
		Frontend:   &activity.FrontendStats{Insts: 300, Bytes: 1000, Compressed: 240, Pairs: 60, Redirects: 50},
	}
}

// TestJSONRoundTrip asserts Results.JSON → DecodeJSON reproduces the encoded
// form exactly: the schema survives a full encode/decode cycle.
func TestJSONRoundTrip(t *testing.T) {
	r := fakeResults(t)
	data, err := r.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	got, err := DecodeJSON(data)
	if err != nil {
		t.Fatalf("DecodeJSON: %v", err)
	}
	want := r.Encode()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// A second encode of the decoded form must be byte-identical.
	again, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(again) != string(data) {
		t.Error("re-encoded JSON differs from the original encoding")
	}
}

// TestJSONBenchFields spot-checks the encoded per-benchmark values.
func TestJSONBenchFields(t *testing.T) {
	r := fakeResults(t)
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Benchmarks) != 2 {
		t.Fatalf("decoded %d benchmarks, want 2", len(dec.Benchmarks))
	}
	b := dec.Benchmarks[0]
	if b.Name != "fake1" || b.Insts != 100 {
		t.Errorf("bench[0] = %s/%d, want fake1/100", b.Name, b.Insts)
	}
	if b.CPI[pipeline.NameByteSerial] != 2.5 {
		t.Errorf("byteserial CPI = %v, want 2.5", b.CPI[pipeline.NameByteSerial])
	}
	if got := b.ByteSaving["Fetch"]; got != 25 {
		t.Errorf("Fetch saving = %v, want 25", got)
	}
	if got := b.ByteSaving["ALU"]; got != 60 {
		t.Errorf("ALU saving = %v, want 60", got)
	}
	if dec.Benchmarks[1].PredictAcc != 0.875 {
		t.Errorf("PredictAcc = %v, want 0.875", dec.Benchmarks[1].PredictAcc)
	}
	if dec.Fetch.ThreeByteShare != 83 {
		t.Errorf("ThreeByteShare = %v, want 83", dec.Fetch.ThreeByteShare)
	}
	// Byte-fetch frontend sections: per-model fetch-unit accounting and the
	// suite-level dual-issue opportunity profile.
	fu, ok := b.FetchUnits[pipeline.NameDualCompress4]
	if !ok {
		t.Fatal("dualc4 fetch-unit accounting missing from bench JSON")
	}
	if fu.BytesPerCycle != 4 || fu.DualIssued != 20 || fu.IntoDecodeIPC != 1.25 {
		t.Errorf("fetch unit = %+v, want 4 B/cycle, 20 pairs, IPC 1.25", fu)
	}
	if dec.Frontend.CompressedShare != 80 || dec.Frontend.PairShare != 40 || dec.Frontend.MeanRunLength != 6 {
		t.Errorf("frontend section = %+v, want 80/40/6", dec.Frontend)
	}
	// Dynamic funct profile: addu dominates and is in the compact set.
	if len(dec.Functs) != 2 {
		t.Fatalf("decoded %d functs, want 2", len(dec.Functs))
	}
	if dec.Functs[0].Funct != "addu" || dec.Functs[0].Percent != 75 || !dec.Functs[0].Compact {
		t.Errorf("functs[0] = %+v, want addu/75/compact", dec.Functs[0])
	}
}

// TestEncodeBenchSharedSchema asserts the per-bench encoder (used by the
// sigsim -json flag and the sigserve service) matches the full encoding.
func TestEncodeBenchSharedSchema(t *testing.T) {
	r := fakeResults(t)
	full := r.Encode()
	for i, b := range r.Bench {
		if !reflect.DeepEqual(EncodeBench(b), full.Benchmarks[i]) {
			t.Errorf("EncodeBench(%s) differs from full encoding", b.Name)
		}
	}
}
