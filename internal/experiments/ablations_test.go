package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/pipeline"
)

func TestAblationSchemeRenderer(t *testing.T) {
	r := load(t)
	tbl := r.AblationScheme()
	if tbl.Rows() != len(r.Bench)+1 {
		t.Fatalf("rows: %d", tbl.Rows())
	}
	// Both schemes must deliver real average RF-read savings; the 3-bit
	// scheme must not lose to the 2-bit one on register reads (addresses
	// with internal extension bytes are its raison d'être).
	var rf3, rf2 float64
	for _, b := range r.Bench {
		rf3 += b.ByteAct.RFRead.Reduction()
		rf2 += b.Scheme2Act.RFRead.Reduction()
	}
	n := float64(len(r.Bench))
	if rf3/n <= rf2/n {
		t.Errorf("3-bit RF read saving %.1f%% should beat 2-bit %.1f%%", rf3/n, rf2/n)
	}
	if rf2/n < 20 {
		t.Errorf("2-bit scheme saving %.1f%% implausibly low", rf2/n)
	}
}

func TestAblationPredictionRenderer(t *testing.T) {
	r := load(t)
	tbl := r.AblationPrediction()
	if tbl.Rows() != len(r.Bench)+1 {
		t.Fatalf("rows: %d", tbl.Rows())
	}
	// Prediction must help every design on average, and accuracy must be
	// recorded.
	for _, base := range []string{
		pipeline.NameBaseline32, pipeline.NameByteSerial, pipeline.NameParallelSkewedBypass,
	} {
		if r.MeanCPI(base+"+bp") >= r.MeanCPI(base) {
			t.Errorf("%s: prediction did not lower mean CPI", base)
		}
	}
	for _, b := range r.Bench {
		if b.PredAcc <= 0.5 || b.PredAcc > 1 {
			t.Errorf("%s: predictor accuracy %.2f out of range", b.Name, b.PredAcc)
		}
	}
}

func TestAblationPartitionRenderer(t *testing.T) {
	r := load(t)
	tbl := r.AblationPartition()
	if tbl.Rows() < 6 {
		t.Fatalf("rows: %d", tbl.Rows())
	}
	rows := r.Partitions.Rows()
	// Ordered best-first.
	for i := 1; i < len(rows); i++ {
		if rows[i].MeanBits < rows[i-1].MeanBits {
			t.Fatal("partition rows not sorted by mean bits")
		}
	}
	// The paper's byte scheme must rank near the top (within 1 bit/value
	// of the best candidate) and far above the halfword scheme.
	var byteMean, halfMean, best float64
	best = rows[0].MeanBits
	for _, row := range rows {
		if strings.Contains(row.Name, "paper byte") {
			byteMean = row.MeanBits
		}
		if strings.Contains(row.Name, "paper half") {
			halfMean = row.MeanBits
		}
	}
	if byteMean == 0 || halfMean == 0 {
		t.Fatal("paper schemes missing from candidates")
	}
	if byteMean-best > 1 {
		t.Errorf("byte scheme %.2f bits, best %.2f: paper's compromise claim violated", byteMean, best)
	}
	if halfMean <= byteMean {
		t.Errorf("halfword (%.2f) should store more than byte (%.2f)", halfMean, byteMean)
	}
	if r.Partitions.Values() == 0 {
		t.Fatal("no operand values tallied")
	}
}

func TestCacheSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("cache sweep runs its own traces")
	}
	tbl, err := CacheSweep([]int{4 << 10, 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 2 {
		t.Fatalf("rows: %d", tbl.Rows())
	}
}

func TestEnergySummaryRenderer(t *testing.T) {
	r := load(t)
	tbl := r.EnergySummary()
	if tbl.Rows() != len(r.Bench) {
		t.Fatalf("rows: %d", tbl.Rows())
	}
	// Every benchmark must show a positive machine-level energy saving.
	for _, b := range r.Bench {
		est := energy.FromCounts(b.ByteAct, energy.DefaultWeights())
		if est.Saving() <= 20 {
			t.Errorf("%s: energy saving %.1f%% implausibly low", b.Name, est.Saving())
		}
	}
}

func TestJSONExport(t *testing.T) {
	r := load(t)
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"benchmarks", "significantBytePatterns", "pcIncrementModel", "functProfile", "instructionCompression", "partitionAblation"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("JSON missing %q", key)
		}
	}
	benches := decoded["benchmarks"].([]interface{})
	if len(benches) != len(r.Bench) {
		t.Fatalf("benchmarks: %d", len(benches))
	}
}

func TestBaselineComparisonRenderer(t *testing.T) {
	r := load(t)
	tbl := r.BaselineComparison()
	if tbl.Rows() != len(r.Bench)+1 {
		t.Fatalf("rows: %d", tbl.Rows())
	}
	// Byte-granularity gating must beat the 16-bit BM detector on the
	// suite average (finer granularity sees strictly more opportunities).
	var bm, sig float64
	for _, b := range r.Bench {
		bm += r.BM[b.Name].ALUSaving()
		sig += b.ByteAct.ALU.Reduction()
	}
	n := float64(len(r.Bench))
	if sig/n <= bm/n {
		t.Errorf("significance ALU saving %.1f%% should beat BM-16 %.1f%%", sig/n, bm/n)
	}
	// And BM itself must find real savings (sanity of the baseline).
	if bm/n < 15 {
		t.Errorf("BM saving %.1f%% implausibly low", bm/n)
	}
}
