package experiments

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/bench"
)

// TestSuiteJSONDeterministicAcrossWorkerCounts is the differential-harness
// companion for the reporting layer: the serialized suite results must be
// byte-identical no matter how the evaluation was scheduled, so any
// nondeterministic map iteration or merge-order dependence in the collectors
// shows up as a simple byte diff.
func TestSuiteJSONDeterministicAcrossWorkerCounts(t *testing.T) {
	suite := bench.All()
	if len(suite) > 3 {
		suite = suite[:3]
	}
	a, err := RunSuite(context.Background(), suite, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSuite(context.Background(), suite, 3)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("suite JSON differs between 2-worker and 3-worker runs:\n--- workers=2 ---\n%s\n--- workers=3 ---\n%s", ja, jb)
	}
	// And a repeat run at the same worker count must also be identical.
	c, err := RunSuite(context.Background(), suite, 2)
	if err != nil {
		t.Fatal(err)
	}
	jc, err := c.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jc) {
		t.Fatal("suite JSON differs between two identical 2-worker runs")
	}
}
