package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/energy"
	"repro/internal/pipeline"
	"repro/internal/sigalu"
	"repro/internal/stats"
	"repro/internal/trace"
)

// AblationScheme compares the 2-bit and 3-bit extension schemes (§2.1's
// trade-off: the 2-bit scheme has 6% instead of 9% storage overhead but
// cannot compress internal extension bytes). Columns are the
// storage/transport stages the scheme choice affects.
func (r *Results) AblationScheme() *stats.Table {
	t := stats.NewTable(
		"Ablation (§2.1): 3-bit per-byte scheme vs 2-bit count scheme, activity reduction (%)",
		"benchmark", "RFread 3b", "RFread 2b", "RFwrite 3b", "RFwrite 2b",
		"D$data 3b", "D$data 2b", "Latch 3b", "Latch 2b")
	var sums [8]float64
	for _, b := range r.Bench {
		vals := []float64{
			b.ByteAct.RFRead.Reduction(), b.Scheme2Act.RFRead.Reduction(),
			b.ByteAct.RFWrite.Reduction(), b.Scheme2Act.RFWrite.Reduction(),
			b.ByteAct.DCacheData.Reduction(), b.Scheme2Act.DCacheData.Reduction(),
			b.ByteAct.Latch.Reduction(), b.Scheme2Act.Latch.Reduction(),
		}
		cells := []string{b.Name}
		for i, v := range vals {
			sums[i] += v
			cells = append(cells, fmt.Sprintf("%.1f", v))
		}
		t.AddStringRow(cells...)
	}
	avg := []string{"AVG"}
	for _, s := range sums {
		avg = append(avg, fmt.Sprintf("%.1f", s/float64(len(r.Bench))))
	}
	t.AddStringRow(avg...)
	return t
}

// AblationPrediction reports the paper's future-work item: CPI of three
// representative designs with and without a bimodal branch predictor.
func (r *Results) AblationPrediction() *stats.Table {
	bases := []string{
		pipeline.NameBaseline32, pipeline.NameByteSerial, pipeline.NameParallelSkewedBypass,
	}
	headers := []string{"benchmark"}
	for _, b := range bases {
		headers = append(headers, b, b+"+bp")
	}
	headers = append(headers, "pred.acc")
	t := stats.NewTable(
		"Ablation (§3 future work): bimodal branch prediction (CPI)", headers...)
	for _, b := range r.Bench {
		cells := []string{b.Name}
		for _, base := range bases {
			cells = append(cells, fmt.Sprintf("%.3f", b.CPI[base]),
				fmt.Sprintf("%.3f", b.CPI[base+"+bp"]))
		}
		cells = append(cells, fmt.Sprintf("%.1f%%", 100*b.PredAcc))
		t.AddStringRow(cells...)
	}
	avg := []string{"AVG"}
	for _, base := range bases {
		avg = append(avg, fmt.Sprintf("%.3f", r.MeanCPI(base)),
			fmt.Sprintf("%.3f", r.MeanCPI(base+"+bp")))
	}
	avg = append(avg, "")
	t.AddStringRow(avg...)
	return t
}

// AblationPartition renders the §2.1 future-work study: stored bits per
// operand value for candidate word partitions, including each scheme's
// extension-bit overhead (32-bit baseline = 32 bits).
func (r *Results) AblationPartition() *stats.Table {
	t := stats.NewTable(
		"Ablation (§2.1 future work): word-partition schemes, stored bits per operand value",
		"partition", "ext bits", "mean bits/value", "saving vs 32b")
	for _, row := range r.Partitions.Rows() {
		t.AddStringRow(row.Name,
			fmt.Sprintf("%d", row.Segments.ExtBits()),
			fmt.Sprintf("%.2f", row.MeanBits),
			fmt.Sprintf("%.1f%%", row.Saving))
	}
	return t
}

// EnergySummary converts the byte-granularity activity tallies into the
// first-order relative energy estimates of internal/energy and compares
// designs by energy-delay product: the baseline machine runs at baseline
// activity, the compressed machines at compressed activity, each with its
// own cycle count.
func (r *Results) EnergySummary() *stats.Table {
	w := energy.DefaultWeights()
	t := stats.NewTable(
		"Energy estimate (relative units; §7's first-order step)",
		"benchmark", "energy saving", "EDP base", "EDP byteserial", "EDP skewed+bypass", "EDP best")
	for _, b := range r.Bench {
		est := energy.FromCounts(b.ByteAct, w)
		base, comp := est.Totals()
		baseCycles := uint64(b.CPI[pipeline.NameBaseline32] * float64(b.Insts))
		serialCycles := uint64(b.CPI[pipeline.NameByteSerial] * float64(b.Insts))
		bypassCycles := uint64(b.CPI[pipeline.NameParallelSkewedBypass] * float64(b.Insts))
		edpBase := energy.EDP(base, baseCycles)
		edpSerial := energy.EDP(comp, serialCycles)
		edpBypass := energy.EDP(comp, bypassCycles)
		best := "baseline"
		switch {
		case edpBypass <= edpBase && edpBypass <= edpSerial:
			best = "skewed+bypass"
		case edpSerial <= edpBase:
			best = "byteserial"
		}
		t.AddStringRow(b.Name,
			fmt.Sprintf("%.1f%%", est.Saving()),
			fmt.Sprintf("%.3g", edpBase),
			fmt.Sprintf("%.3g", edpSerial),
			fmt.Sprintf("%.3g", edpBypass),
			best)
	}
	return t
}

// AblationInterpretation quantifies the modeling decisions recorded in
// DESIGN.md §5 by also running the readings we rejected: the compressed
// design with strictly-blocking two-cycle stages, and the skewed design
// with branch resolution only after the last byte slice. It runs its own
// traces (the alternates are not part of the cached one-pass evaluation).
func AblationInterpretation() (*stats.Table, error) {
	suite := bench.All()
	rc, _, err := trace.SuiteRecoder(suite)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Ablation (DESIGN.md §5): adopted vs rejected model interpretations (mean CPI)",
		"model", "adopted", "rejected", "penalty of rejected reading")
	var baseSum, compSum, compOccSum, skewSum, skewLateSum float64
	for _, b := range suite {
		base := pipeline.NewBaseline32()
		comp := pipeline.New(pipeline.NameParallelCompressed)
		compOcc := pipeline.NewParallelCompressedOccupancy()
		skew := pipeline.New(pipeline.NameParallelSkewed)
		skewLate := pipeline.NewParallelSkewedLateBranch()
		if _, err := trace.Run(b, rc, base, comp, compOcc, skew, skewLate); err != nil {
			return nil, err
		}
		baseSum += base.Result().CPI()
		compSum += comp.Result().CPI()
		compOccSum += compOcc.Result().CPI()
		skewSum += skew.Result().CPI()
		skewLateSum += skewLate.Result().CPI()
	}
	n := float64(len(suite))
	t.AddStringRow("compressed (banked latency vs blocking occupancy)",
		fmt.Sprintf("%.3f (%+.1f%%)", compSum/n, 100*(compSum/baseSum-1)),
		fmt.Sprintf("%.3f (%+.1f%%)", compOccSum/n, 100*(compOccSum/baseSum-1)),
		fmt.Sprintf("%+.1f%%", 100*(compOccSum/compSum-1)))
	t.AddStringRow("skewed (per-slice vs last-slice branch resolve)",
		fmt.Sprintf("%.3f (%+.1f%%)", skewSum/n, 100*(skewSum/baseSum-1)),
		fmt.Sprintf("%.3f (%+.1f%%)", skewLateSum/n, 100*(skewLateSum/baseSum-1)),
		fmt.Sprintf("%+.1f%%", 100*(skewLateSum/skewSum-1)))
	return t, nil
}

// Table4 renders the exact derivation of the paper's Table 4 (Case-3
// exception classes of the significance adder), computed by exhaustive
// enumeration in internal/sigalu.
func Table4() *stats.Table {
	t := stats.NewTable(
		"Table 4 (derived exactly): Case-3 exception classes",
		"preceding-byte tops", "condition", "exception cases", "of class")
	for _, r := range sigalu.DeriveTable4() {
		cond := "always"
		if r.CarryDependent {
			cond = "bit-6 carry dependent"
		}
		t.AddStringRow(
			fmt.Sprintf("%02bxxxxxx + %02bxxxxxx", r.TopBitsA, r.TopBitsB),
			cond,
			fmt.Sprintf("%d", r.Exceptions),
			fmt.Sprintf("%d", r.Population))
	}
	return t
}

// BaselineComparison contrasts the paper's whole-pipeline significance
// compression with its starting point, Brooks & Martonosi's ALU-only
// narrow-operand gating (the paper's [1]): ALU savings side by side, and
// the stages only significance compression reaches.
func (r *Results) BaselineComparison() *stats.Table {
	t := stats.NewTable(
		"Comparison with Brooks-Martonosi operand gating (the paper's [1])",
		"benchmark", "ALU: BM-16", "ALU: sigcomp", "RFread: sigcomp", "Fetch: sigcomp", "Latches: sigcomp")
	var bmSum, sigSum float64
	for _, b := range r.Bench {
		bm := r.BM[b.Name]
		bmSum += bm.ALUSaving()
		sigSum += b.ByteAct.ALU.Reduction()
		t.AddStringRow(b.Name,
			fmt.Sprintf("%.1f", bm.ALUSaving()),
			fmt.Sprintf("%.1f", b.ByteAct.ALU.Reduction()),
			fmt.Sprintf("%.1f", b.ByteAct.RFRead.Reduction()),
			fmt.Sprintf("%.1f", b.ByteAct.Fetch.Reduction()),
			fmt.Sprintf("%.1f", b.ByteAct.Latch.Reduction()))
	}
	n := float64(len(r.Bench))
	t.AddStringRow("AVG", fmt.Sprintf("%.1f", bmSum/n), fmt.Sprintf("%.1f", sigSum/n), "", "", "")
	return t
}
