package bench

import "fmt"

func init() {
	kernelBuilders = append(kernelBuilders, mpeg2Motion)
}

const (
	meFrameW = 64
	meFrameH = 64
	meBlock  = 8 // macroblock edge
	meGrid   = 4 // 4x4 macroblocks
	meOrigin = 8 // first MB origin; keeps the ±2 window in bounds
	meWindow = 2 // search ±2 pixels
)

// mpeg2Frames synthesizes a current frame and a reference frame that is the
// current frame shifted by (1,2) with added noise, so the search has real
// motion to find.
func mpeg2Frames() (cur, ref []byte) {
	cur = synthImage(meFrameW, meFrameH)
	ref = make([]byte, len(cur))
	rng := newXorshift(0x51ed0)
	for y := 0; y < meFrameH; y++ {
		for x := 0; x < meFrameW; x++ {
			sy, sx := (y+1)%meFrameH, (x+2)%meFrameW
			v := int32(cur[sy*meFrameW+sx]) + int32(rng.next()%7) - 3
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			ref[y*meFrameW+x] = byte(v)
		}
	}
	return cur, ref
}

// mpeg2MotionRef performs the full-search SAD motion estimation and folds
// each macroblock's best SAD and encoded motion vector into the checksum.
func mpeg2MotionRef(cur, ref []byte) uint32 {
	sum := uint32(0)
	for mby := 0; mby < meGrid; mby++ {
		for mbx := 0; mbx < meGrid; mbx++ {
			oy, ox := meOrigin+mby*meBlock, meOrigin+mbx*meBlock
			best := int32(1<<31 - 1)
			bmv := int32(0)
			for dy := -meWindow; dy <= meWindow; dy++ {
				for dx := -meWindow; dx <= meWindow; dx++ {
					var sad int32
					for y := 0; y < meBlock; y++ {
						for x := 0; x < meBlock; x++ {
							a := int32(cur[(oy+y)*meFrameW+ox+x])
							b := int32(ref[(oy+y+dy)*meFrameW+ox+x+dx])
							d := a - b
							if d < 0 {
								d = -d
							}
							sad += d
						}
					}
					if sad < best {
						best = sad
						bmv = int32((dy+meWindow)*(2*meWindow+1) + dx + meWindow)
					}
				}
			}
			sum = mix(sum, uint32(best))
			sum = mix(sum, uint32(bmv))
		}
	}
	return sum
}

// mpeg2Motion builds the mpeg2me benchmark: exhaustive-search motion
// estimation (the dominant kernel of Mediabench's mpeg2 encoder).
func mpeg2Motion() Benchmark {
	cur, ref := mpeg2Frames()
	sum := mpeg2MotionRef(cur, ref)
	src := fmt.Sprintf(`
# mpeg2me: full-search SAD motion estimation, %dx%d MBs of %dx%d, window +-%d.
.text
main:
    li   $s7, 0
    li   $s0, 0                # mby
mb_row:
    li   $s1, 0                # mbx
mb_col:
    li   $s4, 0x7fffffff       # best
    li   $s5, 0                # best mv code
    li   $s2, -%d              # dy
cand_dy:
    li   $s3, -%d              # dx
cand_dx:
    li   $t8, 0                # sad
    li   $t5, 0                # y
sad_row:
    li   $t6, 0                # x
sad_col:
    # a = cur[(origin+mby*8+y)*64 + origin+mbx*8+x]
    sll  $t7, $s0, 3
    addu $t7, $t7, $t5
    addiu $t7, $t7, %d
    sll  $t7, $t7, 6
    sll  $t9, $s1, 3
    addu $t7, $t7, $t9
    addu $t7, $t7, $t6
    addiu $t7, $t7, %d
    la   $t9, curframe
    addu $t9, $t9, $t7
    lbu  $t0, 0($t9)
    # b = ref[same + dy*64 + dx]
    sll  $t9, $s2, 6
    addu $t7, $t7, $t9
    addu $t7, $t7, $s3
    la   $t9, refframe
    addu $t9, $t9, $t7
    lbu  $t1, 0($t9)
    subu $t2, $t0, $t1
    bgez $t2, sad_acc
    subu $t2, $zero, $t2
sad_acc:
    addu $t8, $t8, $t2
    addiu $t6, $t6, 1
    li   $t7, %d
    blt  $t6, $t7, sad_col
    addiu $t5, $t5, 1
    li   $t7, %d
    blt  $t5, $t7, sad_row
    # keep if strictly better
    bge  $t8, $s4, next_cand
    move $s4, $t8
    addiu $t7, $s2, %d         # (dy+w)*(2w+1) + dx+w
    li   $t9, %d
    mult $t7, $t9
    mflo $t7
    addu $t7, $t7, $s3
    addiu $t7, $t7, %d
    move $s5, $t7
next_cand:
    addiu $s3, $s3, 1
    li   $t7, %d
    ble  $s3, $t7, cand_dx
    addiu $s2, $s2, 1
    li   $t7, %d
    ble  $s2, $t7, cand_dy
    # fold best SAD and mv
    sll  $t7, $s7, 5
    addu $s7, $t7, $s7
    addu $s7, $s7, $s4
    sll  $t7, $s7, 5
    addu $s7, $t7, $s7
    addu $s7, $s7, $s5
    addiu $s1, $s1, 1
    li   $t7, %d
    blt  $s1, $t7, mb_col
    addiu $s0, $s0, 1
    li   $t7, %d
    blt  $s0, $t7, mb_row
%s
.data
curframe:
%s
refframe:
%s
`, meGrid, meGrid, meBlock, meBlock, meWindow,
		meWindow, meWindow,
		meOrigin, meOrigin,
		meBlock, meBlock,
		meWindow, 2*meWindow+1, meWindow,
		meWindow, meWindow,
		meGrid, meGrid, exitOK,
		byteData(cur), byteData(ref))
	return Benchmark{
		Name:        "mpeg2me",
		Description: "MPEG-2 encoder motion estimation: exhaustive SAD search over 8x8 macroblocks",
		Source:      src,
		Checksum:    sum,
		MaxInsts:    3_000_000,
	}
}
