package bench

import "fmt"

func init() {
	kernelBuilders = append(kernelBuilders, dijkstraKernel)
}

const (
	djNodes = 48
	djInf   = 0x7fffffff
)

// dijkstraGraph synthesizes a sparse weighted adjacency matrix (byte
// weights, 0 = no edge) with a guaranteed ring so every node is reachable.
func dijkstraGraph() []byte {
	rng := newXorshift(0xd175a1)
	adj := make([]byte, djNodes*djNodes)
	for i := 0; i < djNodes; i++ {
		// Ring edge.
		adj[i*djNodes+(i+1)%djNodes] = byte(rng.next()%60 + 1)
		// A few random extra edges.
		for k := 0; k < 3; k++ {
			j := int(rng.next()) % djNodes
			if j != i {
				adj[i*djNodes+j] = byte(rng.next()%120 + 1)
			}
		}
	}
	return adj
}

// dijkstraRef runs the O(N^2) single-source shortest path from node 0 and
// checksums the final distance vector.
func dijkstraRef(adj []byte) uint32 {
	dist := make([]int32, djNodes)
	visited := make([]bool, djNodes)
	for i := range dist {
		dist[i] = djInf
	}
	dist[0] = 0
	for iter := 0; iter < djNodes; iter++ {
		// Select the unvisited node with minimal distance.
		u, best := -1, int32(djInf)
		for i := 0; i < djNodes; i++ {
			if !visited[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 {
			break
		}
		visited[u] = true
		for v := 0; v < djNodes; v++ {
			w := int32(adj[u*djNodes+v])
			if w != 0 && !visited[v] && dist[u]+w < dist[v] {
				dist[v] = dist[u] + w
			}
		}
	}
	sum := uint32(0)
	for _, d := range dist {
		sum = mix(sum, uint32(d))
	}
	return sum
}

// dijkstraKernel builds the dijkstra benchmark: single-source shortest
// paths (MiBench's network kernel) — a comparison- and branch-heavy
// workload unlike the media kernels.
func dijkstraKernel() Benchmark {
	adj := dijkstraGraph()
	sum := dijkstraRef(adj)
	src := fmt.Sprintf(`
# dijkstra: O(N^2) shortest paths over a %d-node graph.
.text
main:
    # init dist[] = INF, visited[] = 0; dist[0] = 0
    la   $s0, dist
    la   $s1, visited
    li   $t0, %d
    li   $t1, 0x7fffffff
init:
    sw   $t1, 0($s0)
    sb   $zero, 0($s1)
    addiu $s0, $s0, 4
    addiu $s1, $s1, 1
    addiu $t0, $t0, -1
    bgtz $t0, init
    la   $s0, dist
    sw   $zero, 0($s0)

    li   $s2, %d               # outer iterations
outer:
    # find unvisited min
    li   $s3, -1               # u
    li   $s4, 0x7fffffff       # best
    li   $t0, 0                # i
find:
    la   $t6, visited
    addu $t6, $t6, $t0
    lbu  $t1, 0($t6)
    bnez $t1, find_next
    sll  $t6, $t0, 2
    la   $t7, dist
    addu $t7, $t7, $t6
    lw   $t2, 0($t7)
    bge  $t2, $s4, find_next
    move $s3, $t0
    move $s4, $t2
find_next:
    addiu $t0, $t0, 1
    li   $t6, %d
    blt  $t0, $t6, find
    bltz $s3, done             # no reachable unvisited node

    la   $t6, visited          # visited[u] = 1
    addu $t6, $t6, $s3
    li   $t1, 1
    sb   $t1, 0($t6)

    # relax edges from u
    li   $t0, 0                # v
    li   $t5, %d
    mult $s3, $t5              # u*N
    mflo $s5
relax:
    la   $t6, adjacency
    addu $t6, $t6, $s5
    addu $t6, $t6, $t0
    lbu  $t1, 0($t6)           # w
    beqz $t1, relax_next
    la   $t6, visited
    addu $t6, $t6, $t0
    lbu  $t2, 0($t6)
    bnez $t2, relax_next
    addu $t3, $s4, $t1         # dist[u] + w
    sll  $t6, $t0, 2
    la   $t7, dist
    addu $t7, $t7, $t6
    lw   $t4, 0($t7)
    bge  $t3, $t4, relax_next
    sw   $t3, 0($t7)
relax_next:
    addiu $t0, $t0, 1
    li   $t6, %d
    blt  $t0, $t6, relax

    addiu $s2, $s2, -1
    bgtz $s2, outer
done:
    # checksum dist[]
    la   $s0, dist
    li   $t0, %d
    li   $s7, 0
cksum:
    lw   $t1, 0($s0)
    sll  $t6, $s7, 5
    addu $s7, $t6, $s7
    addu $s7, $s7, $t1
    addiu $s0, $s0, 4
    addiu $t0, $t0, -1
    bgtz $t0, cksum
%s
.data
adjacency:
%s
dist:
    .space %d
visited:
    .space %d
`, djNodes, djNodes, djNodes, djNodes, djNodes, djNodes, djNodes, exitOK,
		byteData(adj), 4*djNodes, djNodes)
	return Benchmark{
		Name:        "dijkstra",
		Description: "single-source shortest paths (MiBench network kernel): branch- and compare-heavy counterpoint",
		Source:      src,
		Checksum:    sum,
		MaxInsts:    2_000_000,
	}
}
