package bench

import "fmt"

// IMA/DVI ADPCM tables, as used by Mediabench's adpcm (rawcaudio /
// rawdaudio).
var imaIndexTable = [16]int32{
	-1, -1, -1, -1, 2, 4, 6, 8,
	-1, -1, -1, -1, 2, 4, 6, 8,
}

var imaStepTable = [89]int32{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

const adpcmSamples = 2048

// adpcmEncodeRef is the Go reference IMA ADPCM encoder. It returns the
// 4-bit codes and the running checksum over them.
func adpcmEncodeRef(samples []int16) (codes []byte, sum uint32) {
	valpred, index := int32(0), int32(0)
	codes = make([]byte, 0, len(samples))
	for _, s := range samples {
		step := imaStepTable[index]
		diff := int32(s) - valpred
		var sign int32
		if diff < 0 {
			sign = 8
			diff = -diff
		}
		delta := int32(0)
		vpdiff := step >> 3
		if diff >= step {
			delta = 4
			diff -= step
			vpdiff += step
		}
		step >>= 1
		if diff >= step {
			delta |= 2
			diff -= step
			vpdiff += step
		}
		step >>= 1
		if diff >= step {
			delta |= 1
			vpdiff += step
		}
		if sign != 0 {
			valpred -= vpdiff
		} else {
			valpred += vpdiff
		}
		if valpred > 32767 {
			valpred = 32767
		} else if valpred < -32768 {
			valpred = -32768
		}
		delta |= sign
		index += imaIndexTable[delta]
		if index < 0 {
			index = 0
		} else if index > 88 {
			index = 88
		}
		codes = append(codes, byte(delta))
		sum = mix(sum, uint32(delta))
	}
	return codes, sum
}

// adpcmDecodeRef is the Go reference IMA ADPCM decoder; the checksum folds
// the low 16 bits of every reconstructed sample.
func adpcmDecodeRef(codes []byte) (sum uint32) {
	valpred, index := int32(0), int32(0)
	step := imaStepTable[0]
	for _, c := range codes {
		delta := int32(c)
		index += imaIndexTable[delta]
		if index < 0 {
			index = 0
		} else if index > 88 {
			index = 88
		}
		sign := delta & 8
		mag := delta & 7
		vpdiff := step >> 3
		if mag&4 != 0 {
			vpdiff += step
		}
		if mag&2 != 0 {
			vpdiff += step >> 1
		}
		if mag&1 != 0 {
			vpdiff += step >> 2
		}
		if sign != 0 {
			valpred -= vpdiff
		} else {
			valpred += vpdiff
		}
		if valpred > 32767 {
			valpred = 32767
		} else if valpred < -32768 {
			valpred = -32768
		}
		step = imaStepTable[index]
		sum = mix(sum, uint32(uint16(valpred)))
	}
	return sum
}

func adpcmTables() string {
	idx := make([]int32, len(imaIndexTable))
	copy(idx, imaIndexTable[:])
	st := make([]int32, len(imaStepTable))
	copy(st, imaStepTable[:])
	return "index_table:\n" + wordData(idx) + "step_table:\n" + wordData(st)
}

// adpcmEncode builds the rawcaudio-like benchmark: IMA ADPCM encoding of a
// synthetic speech-like waveform.
func adpcmEncode() Benchmark {
	samples := synthAudio(adpcmSamples)
	_, sum := adpcmEncodeRef(samples)
	src := fmt.Sprintf(`
# rawcaudio: IMA ADPCM encoder over %d 16-bit samples.
.text
main:
    la   $s0, samples          # sample pointer
    la   $s1, samples_end
    li   $s2, 0                # valpred
    li   $s3, 0                # index
    la   $s4, out              # code output pointer
    li   $s7, 0                # checksum
    la   $t7, step_table
    la   $t8, index_table
enc_loop:
    lh   $t0, 0($s0)           # sample
    subu $t1, $t0, $s2         # diff = sample - valpred
    li   $t2, 0                # sign
    bgez $t1, enc_pos
    li   $t2, 8
    subu $t1, $zero, $t1
enc_pos:
    sll  $t6, $s3, 2           # step = step_table[index]
    addu $t6, $t7, $t6
    lw   $t5, 0($t6)
    li   $t3, 0                # delta
    sra  $t4, $t5, 3           # vpdiff = step >> 3
    blt  $t1, $t5, enc_b2
    ori  $t3, $t3, 4
    subu $t1, $t1, $t5
    addu $t4, $t4, $t5
enc_b2:
    sra  $t5, $t5, 1
    blt  $t1, $t5, enc_b1
    ori  $t3, $t3, 2
    subu $t1, $t1, $t5
    addu $t4, $t4, $t5
enc_b1:
    sra  $t5, $t5, 1
    blt  $t1, $t5, enc_sign
    ori  $t3, $t3, 1
    addu $t4, $t4, $t5
enc_sign:
    beqz $t2, enc_add
    subu $s2, $s2, $t4
    j    enc_clamp
enc_add:
    addu $s2, $s2, $t4
enc_clamp:
    li   $t6, 32767
    ble  $s2, $t6, enc_cl2
    move $s2, $t6
enc_cl2:
    li   $t6, -32768
    bge  $s2, $t6, enc_index
    move $s2, $t6
enc_index:
    or   $t3, $t3, $t2         # delta |= sign
    sll  $t6, $t3, 2           # index += index_table[delta]
    addu $t6, $t8, $t6
    lw   $t6, 0($t6)
    addu $s3, $s3, $t6
    bgez $s3, enc_ic2
    li   $s3, 0
enc_ic2:
    li   $t6, 88
    ble  $s3, $t6, enc_emit
    move $s3, $t6
enc_emit:
    sb   $t3, 0($s4)
    sll  $t6, $s7, 5           # checksum = checksum*33 + delta
    addu $s7, $t6, $s7
    addu $s7, $s7, $t3
    addiu $s0, $s0, 2
    addiu $s4, $s4, 1
    blt  $s0, $s1, enc_loop
%s
.data
samples:
%ssamples_end:
%s
out:
    .space %d
`, adpcmSamples, exitOK, halfData(samples), adpcmTables(), adpcmSamples)
	return Benchmark{
		Name:        "rawcaudio",
		Description: "IMA ADPCM encoder (Mediabench adpcm rawcaudio) over a synthetic speech-like waveform",
		Source:      src,
		Checksum:    sum,
		MaxInsts:    1_000_000,
	}
}

// adpcmDecode builds the rawdaudio-like benchmark: decoding the code stream
// produced by the reference encoder.
func adpcmDecode() Benchmark {
	samples := synthAudio(adpcmSamples)
	codes, _ := adpcmEncodeRef(samples)
	sum := adpcmDecodeRef(codes)
	src := fmt.Sprintf(`
# rawdaudio: IMA ADPCM decoder over %d 4-bit codes.
.text
main:
    la   $s0, codes
    la   $s1, codes_end
    li   $s2, 0                # valpred
    li   $s3, 0                # index
    li   $s7, 0                # checksum
    la   $t7, step_table
    la   $t8, index_table
    lw   $s5, 0($t7)           # step = step_table[0]
dec_loop:
    lbu  $t0, 0($s0)           # delta
    sll  $t6, $t0, 2           # index += index_table[delta]
    addu $t6, $t8, $t6
    lw   $t6, 0($t6)
    addu $s3, $s3, $t6
    bgez $s3, dec_ic2
    li   $s3, 0
dec_ic2:
    li   $t6, 88
    ble  $s3, $t6, dec_vp
    move $s3, $t6
dec_vp:
    andi $t2, $t0, 8           # sign
    andi $t3, $t0, 7           # magnitude
    sra  $t4, $s5, 3           # vpdiff = step>>3
    andi $t6, $t3, 4
    beqz $t6, dec_b2
    addu $t4, $t4, $s5
dec_b2:
    andi $t6, $t3, 2
    beqz $t6, dec_b1
    sra  $t5, $s5, 1
    addu $t4, $t4, $t5
dec_b1:
    andi $t6, $t3, 1
    beqz $t6, dec_sign
    sra  $t5, $s5, 2
    addu $t4, $t4, $t5
dec_sign:
    beqz $t2, dec_add
    subu $s2, $s2, $t4
    j    dec_clamp
dec_add:
    addu $s2, $s2, $t4
dec_clamp:
    li   $t6, 32767
    ble  $s2, $t6, dec_cl2
    move $s2, $t6
dec_cl2:
    li   $t6, -32768
    bge  $s2, $t6, dec_step
    move $s2, $t6
dec_step:
    sll  $t6, $s3, 2           # step = step_table[index]
    addu $t6, $t7, $t6
    lw   $s5, 0($t6)
    andi $t6, $s2, 0xffff      # checksum over low 16 bits of sample
    sll  $t5, $s7, 5
    addu $s7, $t5, $s7
    addu $s7, $s7, $t6
    addiu $s0, $s0, 1
    blt  $s0, $s1, dec_loop
%s
.data
codes:
%scodes_end:
%s
`, len(codes), exitOK, byteData(codes), adpcmTables())
	return Benchmark{
		Name:        "rawdaudio",
		Description: "IMA ADPCM decoder (Mediabench adpcm rawdaudio) over the encoded synthetic waveform",
		Source:      src,
		Checksum:    sum,
		MaxInsts:    1_000_000,
	}
}
