package bench

import (
	"fmt"
	"sort"
)

func init() {
	kernelBuilders = append(kernelBuilders, huffmanDecode)
}

const (
	huffSymbols   = 16
	huffStreamLen = 6000
)

// huffLeaf marks a node-table entry as a leaf carrying the symbol in its
// low byte.
const huffLeaf = 0x100

// huffTree builds a deterministic Huffman tree for a skewed symbol
// distribution and returns the node table (two words per internal node:
// left child index then right child index; leaf entries have huffLeaf set)
// and the per-symbol codes.
func huffTree() (table []int32, codes [][]bool) {
	// Skewed frequencies: symbol s has weight 2^(15-s)+1 — short codes for
	// small symbols, like DCT coefficient statistics.
	type node struct {
		weight      int
		symbol      int // -1 for internal
		left, right *node
	}
	var heap []*node
	for s := 0; s < huffSymbols; s++ {
		heap = append(heap, &node{weight: 1<<(15-uint(s)) + 1, symbol: s})
	}
	pop := func() *node {
		sort.SliceStable(heap, func(i, j int) bool {
			if heap[i].weight != heap[j].weight {
				return heap[i].weight < heap[j].weight
			}
			// Deterministic tie-break on symbol (internal nodes last).
			return heap[i].symbol > heap[j].symbol
		})
		n := heap[0]
		heap = heap[1:]
		return n
	}
	for len(heap) > 1 {
		a, b := pop(), pop()
		heap = append(heap, &node{weight: a.weight + b.weight, symbol: -1, left: a, right: b})
	}
	root := heap[0]

	// Serialize internal nodes breadth-first; entry i occupies table[2i]
	// and table[2i+1].
	var order []*node
	index := map[*node]int{}
	queue := []*node{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.symbol >= 0 {
			continue
		}
		index[n] = len(order)
		order = append(order, n)
		queue = append(queue, n.left, n.right)
	}
	table = make([]int32, 2*len(order))
	var assign func(n *node)
	assign = func(n *node) {
		i := index[n]
		for k, ch := range []*node{n.left, n.right} {
			if ch.symbol >= 0 {
				table[2*i+k] = int32(huffLeaf | ch.symbol)
			} else {
				table[2*i+k] = int32(index[ch])
				assign(ch)
			}
		}
	}
	assign(root)

	// Extract codes by walking.
	codes = make([][]bool, huffSymbols)
	var walk func(n *node, prefix []bool)
	walk = func(n *node, prefix []bool) {
		if n.symbol >= 0 {
			codes[n.symbol] = append([]bool(nil), prefix...)
			return
		}
		walk(n.left, append(prefix, false))
		walk(n.right, append(prefix, true))
	}
	walk(root, nil)
	return table, codes
}

// huffEncode packs a symbol stream into a bitstream (LSB-first per byte).
func huffEncode(symbols []int, codes [][]bool) []byte {
	var out []byte
	var cur byte
	nbits := 0
	for _, s := range symbols {
		for _, bit := range codes[s] {
			if bit {
				cur |= 1 << uint(nbits)
			}
			nbits++
			if nbits == 8 {
				out = append(out, cur)
				cur, nbits = 0, 0
			}
		}
	}
	if nbits > 0 {
		out = append(out, cur)
	}
	return out
}

// huffDecodeRef walks the node table over the bitstream and checksums the
// decoded symbols.
func huffDecodeRef(stream []byte, table []int32, count int) uint32 {
	sum := uint32(0)
	node := int32(0)
	bitPos := 0
	for decoded := 0; decoded < count; {
		b := stream[bitPos>>3]
		bit := (b >> uint(bitPos&7)) & 1
		bitPos++
		node = table[2*node+int32(bit)]
		if node&huffLeaf != 0 {
			sum = mix(sum, uint32(node&0xff))
			node = 0
			decoded++
		}
	}
	return sum
}

// huffmanDecode builds the huffdec benchmark: canonical Huffman decoding of
// a skewed symbol stream — the entropy-decoding stage of the JPEG/MPEG
// pipelines, a bit-twiddling workload with tiny operands.
func huffmanDecode() Benchmark {
	table, codes := huffTree()
	rng := newXorshift(0x5eed5)
	symbols := make([]int, huffStreamLen)
	for i := range symbols {
		// Geometric-ish distribution biased toward small symbols.
		v := rng.next()
		s := 0
		for s < huffSymbols-1 && v&1 == 1 {
			s++
			v >>= 1
		}
		symbols[i] = s
	}
	stream := huffEncode(symbols, codes)
	sum := huffDecodeRef(stream, table, len(symbols))
	src := fmt.Sprintf(`
# huffdec: table-driven Huffman decode of %d symbols from a %d-byte stream.
.text
main:
    la   $s0, stream
    la   $s1, nodes
    li   $s2, 0                # bit position
    li   $s3, 0                # current node index
    li   $s4, %d               # symbols remaining
    li   $s7, 0
bitloop:
    sra  $t0, $s2, 3           # byte index
    addu $t0, $s0, $t0
    lbu  $t1, 0($t0)           # stream byte
    andi $t2, $s2, 7
    srav $t1, $t1, $t2
    andi $t1, $t1, 1           # bit
    addiu $s2, $s2, 1
    sll  $t3, $s3, 3           # node*2 words = node*8 bytes
    sll  $t4, $t1, 2           # bit*4
    addu $t3, $t3, $t4
    addu $t3, $s1, $t3
    lw   $s3, 0($t3)           # next node or leaf
    andi $t5, $s3, %d
    beqz $t5, bitloop
    andi $t6, $s3, 0xff        # symbol
    sll  $t7, $s7, 5
    addu $s7, $t7, $s7
    addu $s7, $s7, $t6
    li   $s3, 0
    addiu $s4, $s4, -1
    bgtz $s4, bitloop
%s
.data
nodes:
%s
stream:
%s
`, huffStreamLen, len(stream), huffStreamLen, huffLeaf, exitOK,
		wordData(table), byteData(stream))
	return Benchmark{
		Name:        "huffdec",
		Description: "table-driven Huffman decoder: the entropy stage of the JPEG/MPEG pipelines",
		Source:      src,
		Checksum:    sum,
		MaxInsts:    2_000_000,
	}
}
