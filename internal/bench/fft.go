package bench

import (
	"fmt"
	"math"
)

func init() {
	kernelBuilders = append(kernelBuilders, fftKernel)
}

const (
	fftN    = 256
	fftLogN = 8
	fftQ    = 14 // twiddle fixed-point scale (Q14)
)

// fftTwiddles returns the Q14 cos/sin tables for a size-N FFT.
func fftTwiddles() (cos, sin []int32) {
	cos = make([]int32, fftN/2)
	sin = make([]int32, fftN/2)
	for k := 0; k < fftN/2; k++ {
		ang := -2 * math.Pi * float64(k) / fftN
		cos[k] = int32(math.Round(math.Cos(ang) * (1 << fftQ)))
		sin[k] = int32(math.Round(math.Sin(ang) * (1 << fftQ)))
	}
	return cos, sin
}

// fftRef is the fixed-point radix-2 DIT FFT reference: bit-reversal
// permutation, then log2(N) butterfly stages with per-stage >>1 scaling.
// All arithmetic wraps in int32 exactly as the MIPS datapath does.
func fftRef(re, im []int32, cos, sin []int32) uint32 {
	n := len(re)
	// Bit reversal.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
		mask := n >> 1
		for j&mask != 0 {
			j &^= mask
			mask >>= 1
		}
		j |= mask
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				i, j := start+k, start+k+half
				c, s := cos[k*step], sin[k*step]
				tr := (re[j]*c - im[j]*s) >> fftQ
				ti := (re[j]*s + im[j]*c) >> fftQ
				ar, ai := re[i]>>1, im[i]>>1
				tr, ti = tr>>1, ti>>1
				re[i], im[i] = ar+tr, ai+ti
				re[j], im[j] = ar-tr, ai-ti
			}
		}
	}
	sum := uint32(0)
	for i := 0; i < n; i++ {
		sum = mix(sum, uint32(uint16(re[i])))
		sum = mix(sum, uint32(uint16(im[i])))
	}
	return sum
}

// fftKernel builds the fft benchmark: a 256-point fixed-point FFT over a
// synthetic signal — the spectral front end shared by the paper's audio
// workloads (GSM, G.721 all build on filterbank/transform math).
func fftKernel() Benchmark {
	cos, sin := fftTwiddles()
	re := make([]int32, fftN)
	im := make([]int32, fftN)
	for i, s := range synthAudio(fftN) {
		re[i] = int32(s) >> 2
	}
	reIn := make([]int32, fftN)
	copy(reIn, re)
	sum := fftRef(re, im, cos, sin)
	src := fmt.Sprintf(`
# fft: %d-point fixed-point radix-2 DIT FFT (Q%d twiddles).
.text
main:
    # ---- bit-reversal permutation ----
    la   $s0, re
    la   $s1, im
    li   $t0, 0                # i
    li   $t1, 0                # j
brloop:
    bge  $t0, $t1, noswap      # swap only when i < j
    sll  $t4, $t0, 2
    sll  $t5, $t1, 2
    addu $t6, $s0, $t4
    addu $t7, $s0, $t5
    lw   $t8, 0($t6)
    lw   $t9, 0($t7)
    sw   $t9, 0($t6)
    sw   $t8, 0($t7)
    addu $t6, $s1, $t4
    addu $t7, $s1, $t5
    lw   $t8, 0($t6)
    lw   $t9, 0($t7)
    sw   $t9, 0($t6)
    sw   $t8, 0($t7)
noswap:
    li   $t4, %d               # mask = N/2
brmask:
    and  $t5, $t1, $t4
    beqz $t5, brset
    xor  $t1, $t1, $t4         # j &^= mask
    sra  $t4, $t4, 1
    bgtz $t4, brmask
brset:
    or   $t1, $t1, $t4
    addiu $t0, $t0, 1
    li   $t4, %d
    blt  $t0, $t4, brloop

    # ---- butterfly stages ----
    li   $s2, 2                # size
    li   $s7, 0
stageloop:
    sra  $s3, $s2, 1           # half
    li   $t0, %d
    divq $s4, $t0, $s2         # step = N / size
    li   $s5, 0                # start
startloop:
    li   $s6, 0                # k
kloop:
    addu $t0, $s5, $s6         # i
    addu $t1, $t0, $s3         # j = i + half
    # twiddle index k*step
    mul  $t2, $s6, $s4
    sll  $t2, $t2, 2
    la   $t3, costab
    addu $t3, $t3, $t2
    lw   $t4, 0($t3)           # c
    la   $t3, sintab
    addu $t3, $t3, $t2
    lw   $t5, 0($t3)           # s
    # load re[j], im[j]
    sll  $t2, $t1, 2
    la   $t3, re
    addu $t3, $t3, $t2
    lw   $t6, 0($t3)           # re[j]
    la   $t3, im
    addu $t3, $t3, $t2
    lw   $t7, 0($t3)           # im[j]
    # tr = (re[j]*c - im[j]*s) >> Q ; ti = (re[j]*s + im[j]*c) >> Q
    mul  $t8, $t6, $t4
    mul  $t9, $t7, $t5
    subu $t8, $t8, $t9         # tr<<Q
    sra  $t8, $t8, %d
    mul  $t9, $t6, $t5
    mul  $t6, $t7, $t4
    addu $t9, $t9, $t6         # ti<<Q
    sra  $t9, $t9, %d
    sra  $t8, $t8, 1           # tr >>= 1
    sra  $t9, $t9, 1           # ti >>= 1
    # load re[i], im[i]; halve
    sll  $t2, $t0, 2
    la   $t3, re
    addu $t3, $t3, $t2
    lw   $t6, 0($t3)
    sra  $t6, $t6, 1           # ar
    la   $t3, im
    addu $t3, $t3, $t2
    lw   $t7, 0($t3)
    sra  $t7, $t7, 1           # ai
    # write results
    addu $t2, $t6, $t8         # re[i] = ar+tr
    sll  $t3, $t0, 2
    la   $at, re               # (at is free between pseudo expansions)
    addu $t3, $at, $t3
    sw   $t2, 0($t3)
    subu $t2, $t6, $t8         # re[j] = ar-tr
    sll  $t3, $t1, 2
    la   $at, re
    addu $t3, $at, $t3
    sw   $t2, 0($t3)
    addu $t2, $t7, $t9         # im[i] = ai+ti
    sll  $t3, $t0, 2
    la   $at, im
    addu $t3, $at, $t3
    sw   $t2, 0($t3)
    subu $t2, $t7, $t9         # im[j] = ai-ti
    sll  $t3, $t1, 2
    la   $at, im
    addu $t3, $at, $t3
    sw   $t2, 0($t3)
    addiu $s6, $s6, 1
    blt  $s6, $s3, kloop
    addu $s5, $s5, $s2
    li   $t0, %d
    blt  $s5, $t0, startloop
    sll  $s2, $s2, 1
    li   $t0, %d
    ble  $s2, $t0, stageloop

    # ---- checksum ----
    li   $t0, 0
cksum:
    sll  $t2, $t0, 2
    la   $t3, re
    addu $t3, $t3, $t2
    lw   $t4, 0($t3)
    andi $t4, $t4, 0xffff
    sll  $t5, $s7, 5
    addu $s7, $t5, $s7
    addu $s7, $s7, $t4
    la   $t3, im
    addu $t3, $t3, $t2
    lw   $t4, 0($t3)
    andi $t4, $t4, 0xffff
    sll  $t5, $s7, 5
    addu $s7, $t5, $s7
    addu $s7, $s7, $t4
    addiu $t0, $t0, 1
    li   $t2, %d
    blt  $t0, $t2, cksum
%s
.data
re:
%s
im:
    .space %d
costab:
%s
sintab:
%s
`, fftN, fftQ,
		fftN/2, fftN,
		fftN,
		fftQ, fftQ,
		fftN, fftN,
		fftN, exitOK,
		wordData(reIn), 4*fftN, wordData(cos), wordData(sin))
	return Benchmark{
		Name:        "fft",
		Description: "256-point fixed-point radix-2 FFT: the spectral kernel beneath the audio codecs",
		Source:      src,
		Checksum:    sum,
		MaxInsts:    3_000_000,
	}
}
