package bench

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/minic"
)

func init() {
	kernelBuilders = append(kernelBuilders, bitcountKernel)
}

const bitcntN = 1024

// bitcountInput synthesizes the word array to count.
func bitcountInput() []int32 {
	rng := newXorshift(0xb17c047)
	vals := make([]int32, bitcntN)
	for i := range vals {
		// Mix of narrow and wide words, as MiBench bitcount's inputs are.
		v := rng.next()
		if i%3 == 0 {
			v &= 0xff
		} else if i%3 == 1 {
			v &= 0xffff
		}
		vals[i] = int32(v)
	}
	return vals
}

// bitcountRef mirrors the compiled kernel: per word, both the Kernighan
// loop and the nibble-table method, folded into the checksum.
func bitcountRef(vals []int32) uint32 {
	sum := uint32(0)
	for _, v := range vals {
		n := bits.OnesCount32(uint32(v))
		sum = mix(sum, uint32(n))   // Kernighan result
		sum = mix(sum, uint32(n*2)) // table result doubled, as in the C code
	}
	return sum
}

// bitcountKernel builds the bitcnt benchmark: MiBench's bitcount compiled
// from C by minic — two different popcount algorithms over a word array.
func bitcountKernel() Benchmark {
	vals := bitcountInput()
	sum := bitcountRef(vals)

	var initList strings.Builder
	for i, v := range vals {
		if i > 0 {
			initList.WriteString(", ")
		}
		fmt.Fprintf(&initList, "%d", v)
	}

	csrc := fmt.Sprintf(`
// bitcnt: two popcount algorithms over %d words (compiled by minic).
int data[%d] = {%s};
int nibble[16] = {0,1,1,2,1,2,2,3,1,2,2,3,2,3,3,4};

int kernighan(int v) {
    int n = 0;
    while (v != 0) {
        v = v & (v - 1);
        n += 1;
    }
    return n;
}

int bytable(int v) {
    int n = 0;
    int k;
    for (k = 0; k < 8; k += 1) {
        n += nibble[(v >> (k * 4)) & 15];
    }
    return n;
}

int main() {
    int sum = 0;
    int i;
    for (i = 0; i < %d; i += 1) {
        int v = data[i];
        sum = (sum << 5) + sum + kernighan(v);
        sum = (sum << 5) + sum + bytable(v) * 2;
    }
    return sum;
}
`, bitcntN, bitcntN, initList.String(), bitcntN)

	asmText, err := minic.CompileToAsm(csrc)
	if err != nil {
		panic(fmt.Sprintf("bench bitcnt: %v", err))
	}
	return Benchmark{
		Name:        "bitcnt",
		Description: "MiBench bitcount compiled from C by minic: two popcount algorithms over mixed-width words",
		Source:      asmText,
		Checksum:    sum,
		MaxInsts:    5_000_000,
	}
}
