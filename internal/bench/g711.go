package bench

import (
	"fmt"
	"math/bits"
)

func init() {
	kernelBuilders = append(kernelBuilders, g711Encode, g711Decode)
}

// µ-law codec constants (ITU-T G.711, the telephony substrate of
// Mediabench's g721 programs).
const (
	ulawBias = 0x84
	ulawClip = 32635
)

// ulawExpLUT is the standard segment-number lookup table indexed by
// (biased sample >> 7) & 0xFF.
func ulawExpLUT() []byte {
	lut := make([]byte, 256)
	for i := 1; i < 256; i++ {
		e := bits.Len(uint(i))
		if e > 7 {
			e = 7
		}
		lut[i] = byte(e)
	}
	return lut
}

// linear2ulawRef is the Go reference µ-law encoder.
func linear2ulawRef(pcm int16, lut []byte) byte {
	sign := byte(0)
	s := int32(pcm)
	if s < 0 {
		sign = 0x80
		s = -s
	}
	if s > ulawClip {
		s = ulawClip
	}
	s += ulawBias
	exponent := lut[(s>>7)&0xff]
	mantissa := byte(s>>(exponent+3)) & 0x0f
	return ^(sign | exponent<<4 | mantissa)
}

// ulaw2linearRef is the Go reference µ-law decoder.
func ulaw2linearRef(u byte) int16 {
	u = ^u
	sign := u & 0x80
	exponent := (u >> 4) & 7
	mantissa := u & 0x0f
	t := (int32(mantissa)<<3 + ulawBias) << exponent
	if sign != 0 {
		return int16(ulawBias - t)
	}
	return int16(t - ulawBias)
}

const g711Samples = 3000

// g711Encode builds the g711enc benchmark: µ-law compression of the
// synthetic waveform (the PCM→log-domain step of the Mediabench g721
// pipeline).
func g711Encode() Benchmark {
	samples := synthAudio(g711Samples)
	lut := ulawExpLUT()
	sum := uint32(0)
	for _, s := range samples {
		sum = mix(sum, uint32(linear2ulawRef(s, lut)))
	}
	src := fmt.Sprintf(`
# g711enc: mu-law encoder over %d 16-bit samples.
.text
main:
    la   $s0, samples
    la   $s1, samples_end
    la   $s4, out
    la   $t9, exp_lut
    li   $s7, 0
enc_loop:
    lh   $t0, 0($s0)
    li   $t2, 0                # sign
    bgez $t0, enc_pos
    li   $t2, 0x80
    subu $t0, $zero, $t0
enc_pos:
    li   $t6, %d               # CLIP
    ble  $t0, $t6, enc_bias
    move $t0, $t6
enc_bias:
    addiu $t0, $t0, %d         # BIAS
    sra  $t6, $t0, 7
    andi $t6, $t6, 0xff
    addu $t6, $t9, $t6
    lbu  $t3, 0($t6)           # exponent
    addiu $t6, $t3, 3
    srav $t4, $t0, $t6         # mantissa
    andi $t4, $t4, 0x0f
    sll  $t5, $t3, 4
    or   $t5, $t5, $t2
    or   $t5, $t5, $t4
    nor  $t5, $t5, $zero       # complement
    andi $t5, $t5, 0xff
    sb   $t5, 0($s4)
    sll  $t6, $s7, 5           # checksum fold
    addu $s7, $t6, $s7
    addu $s7, $s7, $t5
    addiu $s0, $s0, 2
    addiu $s4, $s4, 1
    blt  $s0, $s1, enc_loop
%s
.data
samples:
%ssamples_end:
exp_lut:
%s
out:
    .space %d
`, g711Samples, ulawClip, ulawBias, exitOK, halfData(samples), byteData(lut), g711Samples)
	return Benchmark{
		Name:        "g711enc",
		Description: "mu-law (G.711) encoder — the log-PCM front end of Mediabench's g721 codec",
		Source:      src,
		Checksum:    sum,
		MaxInsts:    1_000_000,
	}
}

// g711Decode builds the g711dec benchmark: expanding the µ-law stream the
// reference encoder produced.
func g711Decode() Benchmark {
	samples := synthAudio(g711Samples)
	lut := ulawExpLUT()
	codes := make([]byte, len(samples))
	for i, s := range samples {
		codes[i] = linear2ulawRef(s, lut)
	}
	sum := uint32(0)
	for _, u := range codes {
		sum = mix(sum, uint32(uint16(ulaw2linearRef(u))))
	}
	src := fmt.Sprintf(`
# g711dec: mu-law decoder over %d codes.
.text
main:
    la   $s0, codes
    la   $s1, codes_end
    li   $s7, 0
dec_loop:
    lbu  $t0, 0($s0)
    nor  $t0, $t0, $zero
    andi $t0, $t0, 0xff        # u = ~u
    andi $t2, $t0, 0x80        # sign
    srl  $t3, $t0, 4
    andi $t3, $t3, 7           # exponent
    andi $t4, $t0, 0x0f        # mantissa
    sll  $t5, $t4, 3
    addiu $t5, $t5, %d         # + BIAS
    sllv $t5, $t5, $t3
    beqz $t2, dec_posv
    li   $t6, %d
    subu $t5, $t6, $t5         # BIAS - t
    j    dec_sum
dec_posv:
    addiu $t5, $t5, -%d        # t - BIAS
dec_sum:
    andi $t5, $t5, 0xffff
    sll  $t6, $s7, 5
    addu $s7, $t6, $s7
    addu $s7, $s7, $t5
    addiu $s0, $s0, 1
    blt  $s0, $s1, dec_loop
%s
.data
codes:
%scodes_end:
`, g711Samples, ulawBias, ulawBias, ulawBias, exitOK, byteData(codes))
	return Benchmark{
		Name:        "g711dec",
		Description: "mu-law (G.711) decoder — the expansion step of Mediabench's g721 codec",
		Source:      src,
		Checksum:    sum,
		MaxInsts:    1_000_000,
	}
}
