package bench

import (
	"fmt"
	"math"
)

func init() {
	kernelBuilders = append(kernelBuilders, mesaTransform)
}

const (
	mesaVerts = 384
	mesaQ     = 12 // matrix fixed-point scale
)

// mesaMatrix returns a Q12 model-view matrix (rotation about two axes plus
// a translation), the workload of Mesa's vertex stage.
func mesaMatrix() []int32 {
	a, b := 0.31, 0.57
	ca, sa := math.Cos(a), math.Sin(a)
	cb, sb := math.Cos(b), math.Sin(b)
	f := func(x float64) int32 { return int32(math.Round(x * (1 << mesaQ))) }
	// Rz(a)·Ry(b) with a translation column.
	return []int32{
		f(ca * cb), f(-sa), f(ca * sb), f(1.5),
		f(sa * cb), f(ca), f(sa * sb), f(-2.25),
		f(-sb), 0, f(cb), f(0.75),
		0, 0, 0, f(1),
	}
}

// mesaVertices synthesizes a vertex buffer of 16-bit coordinates.
func mesaVertices() []int16 {
	rng := newXorshift(0x3d5a7)
	vs := make([]int16, 4*mesaVerts)
	for i := 0; i < mesaVerts; i++ {
		for c := 0; c < 3; c++ {
			vs[4*i+c] = int16(int32(rng.next()%2048) - 1024)
		}
		vs[4*i+3] = 1 << mesaQ >> 4 // w in a smaller scale
	}
	return vs
}

// mesaRef transforms every vertex by the matrix and checksums the low 16
// bits of each output component. All arithmetic wraps in int32 exactly as
// the MIPS datapath does.
func mesaRef(m []int32, vs []int16) uint32 {
	sum := uint32(0)
	for i := 0; i < mesaVerts; i++ {
		for row := 0; row < 4; row++ {
			var acc int32
			for col := 0; col < 4; col++ {
				acc += m[4*row+col] * int32(vs[4*i+col])
			}
			acc >>= mesaQ
			sum = mix(sum, uint32(uint16(acc)))
		}
	}
	return sum
}

// mesaTransform builds the mesa benchmark: the fixed-point 4x4 vertex
// transform at the front of Mediabench's mesa (3-D rendering) workload.
func mesaTransform() Benchmark {
	m := mesaMatrix()
	vs := mesaVertices()
	sum := mesaRef(m, vs)
	src := fmt.Sprintf(`
# mesa: 4x4 fixed-point vertex transform over %d vertices (Q%d matrix).
.text
main:
    la   $s0, verts
    li   $s1, %d               # vertices remaining
    li   $s7, 0
vert_loop:
    li   $s2, 0                # row
row_loop:
    li   $t4, 0                # acc
    li   $t5, 0                # col
col_loop:
    sll  $t6, $s2, 2           # m[4*row+col]
    addu $t6, $t6, $t5
    sll  $t6, $t6, 2
    la   $t7, matrix
    addu $t7, $t7, $t6
    lw   $t0, 0($t7)
    sll  $t6, $t5, 1           # verts[4*i+col]
    addu $t7, $s0, $t6
    lh   $t1, 0($t7)
    mult $t0, $t1
    mflo $t2
    addu $t4, $t4, $t2
    addiu $t5, $t5, 1
    li   $t6, 4
    blt  $t5, $t6, col_loop
    sra  $t4, $t4, %d          # >> Q
    andi $t4, $t4, 0xffff
    sll  $t6, $s7, 5           # checksum fold
    addu $s7, $t6, $s7
    addu $s7, $s7, $t4
    addiu $s2, $s2, 1
    li   $t6, 4
    blt  $s2, $t6, row_loop
    addiu $s0, $s0, 8          # next vertex (4 halfwords)
    addiu $s1, $s1, -1
    bgtz $s1, vert_loop
%s
.data
matrix:
%s
verts:
%s
`, mesaVerts, mesaQ, mesaVerts, mesaQ, exitOK, wordData(m), halfData(vs))
	return Benchmark{
		Name:        "mesa",
		Description: "Mesa-style fixed-point 4x4 vertex transform (3-D geometry stage)",
		Source:      src,
		Checksum:    sum,
		MaxInsts:    2_000_000,
	}
}
