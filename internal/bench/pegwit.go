package bench

import "fmt"

func init() {
	kernelBuilders = append(kernelBuilders, pegwitModExp)
}

const (
	pegwitPrime = 65521 // largest 16-bit prime
	pegwitPairs = 256
)

// pegwitRef computes base^exp mod p by square-and-multiply for every input
// pair and folds each residue into the checksum.
func pegwitRef(bases, exps []uint32) uint32 {
	sum := uint32(0)
	for i := range bases {
		r := uint32(1)
		b := bases[i] % pegwitPrime
		e := exps[i]
		for e != 0 {
			if e&1 != 0 {
				r = r * b % pegwitPrime
			}
			b = b * b % pegwitPrime
			e >>= 1
		}
		sum = mix(sum, r)
	}
	return sum
}

// pegwitModExp builds the pegwit benchmark: modular exponentiation, the
// arithmetic core of Mediabench's pegwit public-key cryptography program.
func pegwitModExp() Benchmark {
	rng := newXorshift(0xc0ffee)
	bases := make([]uint32, pegwitPairs)
	exps := make([]uint32, pegwitPairs)
	bw := make([]int32, pegwitPairs)
	ew := make([]int32, pegwitPairs)
	for i := range bases {
		bases[i] = rng.next()%(pegwitPrime-2) + 2
		exps[i] = rng.next() | 0x8000_0000 // force 32 squaring rounds
		bw[i] = int32(bases[i])
		ew[i] = int32(exps[i])
	}
	sum := pegwitRef(bases, exps)
	src := fmt.Sprintf(`
# pegwit: modular exponentiation mod %d over %d (base, exponent) pairs.
.text
main:
    la   $s0, bases
    la   $s1, exps
    li   $s2, %d               # pairs remaining
    li   $s6, %d               # modulus
    li   $s7, 0
pair_loop:
    lw   $t0, 0($s0)           # base
    divu $t0, $s6              # base %%= p
    mfhi $t0
    lw   $t1, 0($s1)           # exponent
    li   $t2, 1                # result
modexp:
    beqz $t1, pair_done
    andi $t3, $t1, 1
    beqz $t3, squarestep
    multu $t2, $t0             # r = r*b mod p
    mflo $t2
    divu $t2, $s6
    mfhi $t2
squarestep:
    multu $t0, $t0             # b = b*b mod p
    mflo $t0
    divu $t0, $s6
    mfhi $t0
    srl  $t1, $t1, 1
    j    modexp
pair_done:
    sll  $t3, $s7, 5
    addu $s7, $t3, $s7
    addu $s7, $s7, $t2
    addiu $s0, $s0, 4
    addiu $s1, $s1, 4
    addiu $s2, $s2, -1
    bgtz $s2, pair_loop
%s
.data
bases:
%s
exps:
%s
`, pegwitPrime, pegwitPairs, pegwitPairs, pegwitPrime, exitOK,
		wordData(bw), wordData(ew))
	return Benchmark{
		Name:        "pegwit",
		Description: "Pegwit-style public-key arithmetic: square-and-multiply modular exponentiation",
		Source:      src,
		Checksum:    sum,
		MaxInsts:    2_000_000,
	}
}
