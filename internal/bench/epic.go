package bench

import "fmt"

func init() {
	kernelBuilders = append(kernelBuilders, epicFilter)
}

const (
	epicW = 64
	epicH = 64
)

// epicFilterRef applies the separable 1-2-1 smoothing filter (the building
// block of EPIC's wavelet pyramid) horizontally then vertically, interior
// pixels only, and checksums the result.
func epicFilterRef(img []byte) uint32 {
	tmp := make([]byte, len(img))
	copy(tmp, img)
	for y := 0; y < epicH; y++ {
		for x := 1; x < epicW-1; x++ {
			i := y*epicW + x
			tmp[i] = byte((int32(img[i-1]) + 2*int32(img[i]) + int32(img[i+1])) >> 2)
		}
	}
	out := make([]byte, len(img))
	copy(out, tmp)
	for y := 1; y < epicH-1; y++ {
		for x := 0; x < epicW; x++ {
			i := y*epicW + x
			out[i] = byte((int32(tmp[i-epicW]) + 2*int32(tmp[i]) + int32(tmp[i+epicW])) >> 2)
		}
	}
	sum := uint32(0)
	for _, p := range out {
		sum = mix(sum, uint32(p))
	}
	return sum
}

// epicFilter builds the epicfilt benchmark: EPIC-style separable low-pass
// filtering over an 8-bit image.
func epicFilter() Benchmark {
	img := synthImage(epicW, epicH)
	sum := epicFilterRef(img)
	src := fmt.Sprintf(`
# epicfilt: separable 1-2-1 low-pass over a %dx%d 8-bit image.
.text
main:
    # copy img -> tmp (edges keep source values)
    la   $s0, img
    la   $s1, tmp
    li   $t0, %d
copy1:
    lbu  $t1, 0($s0)
    sb   $t1, 0($s1)
    addiu $s0, $s0, 1
    addiu $s1, $s1, 1
    addiu $t0, $t0, -1
    bgtz $t0, copy1

    # horizontal pass: tmp[y][x] = (img[i-1] + 2*img[i] + img[i+1]) >> 2
    li   $s2, 0                # y
hrow:
    li   $s3, 1                # x
hcol:
    sll  $t6, $s2, 6           # y*64
    addu $t6, $t6, $s3
    la   $t7, img
    addu $t7, $t7, $t6
    lbu  $t0, -1($t7)
    lbu  $t1, 0($t7)
    lbu  $t2, 1($t7)
    sll  $t1, $t1, 1
    addu $t0, $t0, $t1
    addu $t0, $t0, $t2
    sra  $t0, $t0, 2
    la   $t7, tmp
    addu $t7, $t7, $t6
    sb   $t0, 0($t7)
    addiu $s3, $s3, 1
    li   $t6, %d
    blt  $s3, $t6, hcol
    addiu $s2, $s2, 1
    li   $t6, %d
    blt  $s2, $t6, hrow

    # copy tmp -> out
    la   $s0, tmp
    la   $s1, out
    li   $t0, %d
copy2:
    lbu  $t1, 0($s0)
    sb   $t1, 0($s1)
    addiu $s0, $s0, 1
    addiu $s1, $s1, 1
    addiu $t0, $t0, -1
    bgtz $t0, copy2

    # vertical pass over interior rows
    li   $s2, 1                # y
vrow:
    li   $s3, 0                # x
vcol:
    sll  $t6, $s2, 6
    addu $t6, $t6, $s3
    la   $t7, tmp
    addu $t7, $t7, $t6
    lbu  $t0, -%d($t7)
    lbu  $t1, 0($t7)
    lbu  $t2, %d($t7)
    sll  $t1, $t1, 1
    addu $t0, $t0, $t1
    addu $t0, $t0, $t2
    sra  $t0, $t0, 2
    la   $t7, out
    addu $t7, $t7, $t6
    sb   $t0, 0($t7)
    addiu $s3, $s3, 1
    li   $t6, %d
    blt  $s3, $t6, vcol
    addiu $s2, $s2, 1
    li   $t6, %d
    blt  $s2, $t6, vrow

    # checksum out[]
    la   $s0, out
    la   $s1, out_end
    li   $s7, 0
cksum:
    lbu  $t0, 0($s0)
    sll  $t6, $s7, 5
    addu $s7, $t6, $s7
    addu $s7, $s7, $t0
    addiu $s0, $s0, 1
    blt  $s0, $s1, cksum
%s
.data
img:
%s
tmp:
    .space %d
out:
    .space %d
out_end:
    .byte 0
`, epicW, epicH,
		epicW*epicH,
		epicW-1, epicH,
		epicW*epicH,
		epicW, epicW,
		epicW, epicH-1,
		exitOK,
		byteData(img), epicW*epicH, epicW*epicH)
	return Benchmark{
		Name:        "epicfilt",
		Description: "EPIC-style separable 1-2-1 image low-pass filter over an 8-bit test image",
		Source:      src,
		Checksum:    sum,
		MaxInsts:    2_000_000,
	}
}
