package bench

import (
	"fmt"
	"math"
)

func init() {
	kernelBuilders = append(kernelBuilders, jpegDCT)
}

const (
	dctImgW      = 64
	dctImgH      = 64
	dctBlockRows = 4 // process the top 4 block rows (32 blocks)
	dctScaleBits = 12
)

// dctMatrix returns the integer 8x8 DCT-II basis scaled by 64 (so the 2-D
// transform carries a 4096 = 2^12 gain, removed by the final shift).
func dctMatrix() []int32 {
	c := make([]int32, 64)
	for u := 0; u < 8; u++ {
		for x := 0; x < 8; x++ {
			v := 64.0 * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
			if u == 0 {
				v = 64.0 / math.Sqrt2
			}
			c[u*8+x] = int32(math.Round(v))
		}
	}
	return c
}

// jpegDCTRef runs the integer 2-D DCT over the processed blocks and
// checksums the low 16 bits of every coefficient.
func jpegDCTRef(img []byte, c []int32) uint32 {
	sum := uint32(0)
	var tmp [64]int32
	for by := 0; by < dctBlockRows; by++ {
		for bx := 0; bx < dctImgW/8; bx++ {
			for u := 0; u < 8; u++ {
				for j := 0; j < 8; j++ {
					var acc int32
					for x := 0; x < 8; x++ {
						f := int32(img[(by*8+x)*dctImgW+bx*8+j]) - 128
						acc += c[u*8+x] * f
					}
					tmp[u*8+j] = acc
				}
			}
			for u := 0; u < 8; u++ {
				for v := 0; v < 8; v++ {
					var acc int32
					for j := 0; j < 8; j++ {
						acc += tmp[u*8+j] * c[v*8+j]
					}
					coef := acc >> dctScaleBits
					sum = mix(sum, uint32(uint16(coef)))
				}
			}
		}
	}
	return sum
}

// jpegDCT builds the jpegdct benchmark: the forward integer DCT of JPEG
// compression over blocks of a synthetic image.
func jpegDCT() Benchmark {
	img := synthImage(dctImgW, dctImgH)
	c := dctMatrix()
	sum := jpegDCTRef(img, c)
	src := fmt.Sprintf(`
# jpegdct: integer 8x8 forward DCT over %d blocks of a %dx%d image.
.text
main:
    li   $s7, 0
    li   $s0, 0                # by
blk_row:
    li   $s1, 0                # bx
blk_col:
    # stage 1: tmp[u][j] = sum_x C[u][x] * (img[by*8+x][bx*8+j] - 128)
    li   $s2, 0                # u
s1_u:
    li   $s3, 0                # j
s1_j:
    li   $t4, 0                # acc
    li   $t5, 0                # x
s1_x:
    sll  $t6, $s0, 3           # by*8
    addu $t6, $t6, $t5
    sll  $t6, $t6, 6           # *64
    sll  $t7, $s1, 3           # bx*8
    addu $t6, $t6, $t7
    addu $t6, $t6, $s3
    la   $t7, img
    addu $t7, $t7, $t6
    lbu  $t0, 0($t7)
    addiu $t0, $t0, -128
    sll  $t6, $s2, 3           # C[u*8+x]
    addu $t6, $t6, $t5
    sll  $t6, $t6, 2
    la   $t7, cmat
    addu $t7, $t7, $t6
    lw   $t1, 0($t7)
    mult $t0, $t1
    mflo $t2
    addu $t4, $t4, $t2
    addiu $t5, $t5, 1
    li   $t6, 8
    blt  $t5, $t6, s1_x
    sll  $t6, $s2, 3           # tmp[u*8+j] = acc
    addu $t6, $t6, $s3
    sll  $t6, $t6, 2
    la   $t7, tmpblk
    addu $t7, $t7, $t6
    sw   $t4, 0($t7)
    addiu $s3, $s3, 1
    li   $t6, 8
    blt  $s3, $t6, s1_j
    addiu $s2, $s2, 1
    li   $t6, 8
    blt  $s2, $t6, s1_u
    # stage 2: F[u][v] = (sum_j tmp[u][j] * C[v][j]) >> %d
    li   $s2, 0                # u
s2_u:
    li   $s3, 0                # v
s2_v:
    li   $t4, 0
    li   $t5, 0                # j
s2_j:
    sll  $t6, $s2, 3
    addu $t6, $t6, $t5
    sll  $t6, $t6, 2
    la   $t7, tmpblk
    addu $t7, $t7, $t6
    lw   $t0, 0($t7)
    sll  $t6, $s3, 3
    addu $t6, $t6, $t5
    sll  $t6, $t6, 2
    la   $t7, cmat
    addu $t7, $t7, $t6
    lw   $t1, 0($t7)
    mult $t0, $t1
    mflo $t2
    addu $t4, $t4, $t2
    addiu $t5, $t5, 1
    li   $t6, 8
    blt  $t5, $t6, s2_j
    sra  $t4, $t4, %d
    andi $t4, $t4, 0xffff
    sll  $t6, $s7, 5
    addu $s7, $t6, $s7
    addu $s7, $s7, $t4
    addiu $s3, $s3, 1
    li   $t6, 8
    blt  $s3, $t6, s2_v
    addiu $s2, $s2, 1
    li   $t6, 8
    blt  $s2, $t6, s2_u
    addiu $s1, $s1, 1
    li   $t6, %d
    blt  $s1, $t6, blk_col
    addiu $s0, $s0, 1
    li   $t6, %d
    blt  $s0, $t6, blk_row
%s
.data
img:
%s
cmat:
%s
tmpblk:
    .space 256
`, dctBlockRows*dctImgW/8, dctImgW, dctImgH,
		dctScaleBits, dctScaleBits,
		dctImgW/8, dctBlockRows, exitOK,
		byteData(img), wordData(c))
	return Benchmark{
		Name:        "jpegdct",
		Description: "JPEG forward integer 8x8 DCT (Mediabench jpeg cjpeg's transform stage)",
		Source:      src,
		Checksum:    sum,
		MaxInsts:    3_000_000,
	}
}
