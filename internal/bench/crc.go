package bench

import "fmt"

func init() {
	kernelBuilders = append(kernelBuilders, crc32Kernel)
}

const (
	crcPoly    = 0xEDB88320 // reflected CRC-32 (IEEE)
	crcBufSize = 4096
)

// crc32Ref is the bitwise reference CRC-32.
func crc32Ref(buf []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range buf {
		crc ^= uint32(b)
		for k := 0; k < 8; k++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ crcPoly
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

// crc32Kernel builds the crc32 benchmark: a bitwise CRC over a pseudo-random
// buffer. Its operands are full-width 32-bit values, the suite's
// least-compressible workload (the counterweight to the audio kernels).
func crc32Kernel() Benchmark {
	rng := newXorshift(0xcafe10)
	buf := make([]byte, crcBufSize)
	for i := range buf {
		buf[i] = byte(rng.next())
	}
	sum := crc32Ref(buf)
	src := fmt.Sprintf(`
# crc32: bitwise reflected CRC-32 over a %d-byte buffer.
.text
main:
    la   $s0, buf
    la   $s1, buf_end
    li   $s7, -1               # crc = 0xffffffff
    li   $s6, 0x%08x           # polynomial
byte_loop:
    lbu  $t0, 0($s0)
    xor  $s7, $s7, $t0
    li   $t1, 8
bit_loop:
    andi $t2, $s7, 1
    srl  $s7, $s7, 1
    beqz $t2, no_poly
    xor  $s7, $s7, $s6
no_poly:
    addiu $t1, $t1, -1
    bgtz $t1, bit_loop
    addiu $s0, $s0, 1
    blt  $s0, $s1, byte_loop
    nor  $s7, $s7, $zero       # final complement
%s
.data
buf:
%sbuf_end:
`, crcBufSize, uint32(crcPoly), exitOK, byteData(buf))
	return Benchmark{
		Name:        "crc32",
		Description: "bitwise CRC-32 over a pseudo-random buffer: wide-operand counterweight to the media kernels",
		Source:      src,
		Checksum:    sum,
		MaxInsts:    2_000_000,
	}
}
