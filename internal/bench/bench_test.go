package bench

import "testing"

// TestSuiteVerified runs every kernel and checks its checksum against the
// Go reference implementation.
func TestSuiteVerified(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			c, err := b.RunVerified()
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d instructions, checksum %#08x", b.Name, c.Retired, b.Checksum)
		})
	}
}
