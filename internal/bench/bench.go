// Package bench provides the workload suite driving every experiment — the
// stand-in for the paper's gcc-compiled Mediabench programs (§3).
//
// Each benchmark is a hand-written MIPS assembly kernel mirroring the
// computation of one Mediabench program (ADPCM coding, µ-law telephony
// codecs, GSM-style autocorrelation, EPIC-style filtering, JPEG-style DCT,
// MPEG-2-style motion estimation, Pegwit-style modular arithmetic, CRC).
// Inputs are deterministic synthetic media data embedded in the data
// segment (based at the paper's 0x10000000). Every kernel's result checksum
// is computed by a pure-Go reference implementation of the same algorithm;
// the kernel leaves its own checksum in $s7, and tests require the two to
// match, so traces come from verified real computations.
package bench

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Benchmark is one workload of the suite.
type Benchmark struct {
	// Name identifies the benchmark (Mediabench-style names).
	Name string
	// Description says what the kernel computes and which Mediabench
	// program it mirrors.
	Description string
	// Source is the complete assembly source, data included.
	Source string
	// Checksum is the expected $s7 value, computed by the Go reference.
	Checksum uint32
	// MaxInsts bounds the dynamic instruction count (runaway guard).
	MaxInsts uint64
}

// ChecksumReg is the register each kernel leaves its checksum in.
const ChecksumReg = isa.RegS7

// Program assembles the benchmark.
func (b Benchmark) Program() (*asm.Program, error) {
	p, err := asm.Assemble(b.Source)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	return p, nil
}

// NewCPU assembles and loads the benchmark into a fresh machine.
func (b Benchmark) NewCPU() (*cpu.CPU, error) {
	p, err := b.Program()
	if err != nil {
		return nil, err
	}
	m := mem.NewMemory()
	p.LoadInto(m)
	return cpu.New(m, p.Entry, asm.DefaultStackTop), nil
}

// RunVerified executes the benchmark to completion and checks exit code and
// checksum, returning the finished CPU.
func (b Benchmark) RunVerified() (*cpu.CPU, error) {
	c, err := b.NewCPU()
	if err != nil {
		return nil, err
	}
	if _, err := c.Run(b.MaxInsts); err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	if !c.Done {
		return nil, fmt.Errorf("bench %s: did not finish within %d instructions", b.Name, b.MaxInsts)
	}
	if c.ExitCode != 0 {
		return nil, fmt.Errorf("bench %s: exit code %d", b.Name, c.ExitCode)
	}
	if got := c.Regs[ChecksumReg]; got != b.Checksum {
		return nil, fmt.Errorf("bench %s: checksum %#08x, reference says %#08x", b.Name, got, b.Checksum)
	}
	return c, nil
}

var (
	allOnce sync.Once
	allList []Benchmark
)

// All returns the full suite. Construction (input synthesis + reference
// computation) happens once and is cached.
func All() []Benchmark {
	allOnce.Do(func() {
		allList = []Benchmark{
			adpcmEncode(),
			adpcmDecode(),
		}
		allList = append(allList, extraBenchmarks()...)
	})
	return allList
}

// ByName finds a benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names lists the suite in order.
func Names() []string {
	bs := All()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}

// --- checksum and data-formatting helpers shared by the kernels ---

// mix folds v into a running checksum: sum = sum*33 + v. The assembly
// kernels implement the same fold as sll/addu/addu.
func mix(sum, v uint32) uint32 { return sum*33 + v }

// The standard epilogue: move checksum to $s7's final place is done by the
// kernel itself; this exits cleanly.
const exitOK = `
    li   $v0, 10
    syscall
`

// wordData renders vals as .word directives, 8 per line.
func wordData(vals []int32) string {
	var sb strings.Builder
	for i, v := range vals {
		if i%8 == 0 {
			sb.WriteString("    .word ")
		}
		fmt.Fprintf(&sb, "%d", v)
		if i%8 == 7 || i == len(vals)-1 {
			sb.WriteByte('\n')
		} else {
			sb.WriteString(", ")
		}
	}
	return sb.String()
}

// halfData renders vals as .half directives.
func halfData(vals []int16) string {
	var sb strings.Builder
	for i, v := range vals {
		if i%8 == 0 {
			sb.WriteString("    .half ")
		}
		fmt.Fprintf(&sb, "%d", v)
		if i%8 == 7 || i == len(vals)-1 {
			sb.WriteByte('\n')
		} else {
			sb.WriteString(", ")
		}
	}
	return sb.String()
}

// byteData renders vals as .byte directives.
func byteData(vals []byte) string {
	var sb strings.Builder
	for i, v := range vals {
		if i%16 == 0 {
			sb.WriteString("    .byte ")
		}
		fmt.Fprintf(&sb, "%d", v)
		if i%16 == 15 || i == len(vals)-1 {
			sb.WriteByte('\n')
		} else {
			sb.WriteString(", ")
		}
	}
	return sb.String()
}

// synthAudio produces a deterministic speech-like 16-bit waveform: two
// sinusoids plus a small pseudo-random dither, with an amplitude envelope
// so the suite sees both quiet (highly compressible) and loud passages.
func synthAudio(n int) []int16 {
	out := make([]int16, n)
	rng := newXorshift(0x2f6e2b1)
	for i := range out {
		env := 0.25 + 0.75*math.Abs(math.Sin(float64(i)*0.003))
		s := 6000*math.Sin(float64(i)*0.071) + 1500*math.Sin(float64(i)*0.311)
		s += float64(int32(rng.next()%257) - 128)
		v := env * s
		if v > 32767 {
			v = 32767
		}
		if v < -32768 {
			v = -32768
		}
		out[i] = int16(v)
	}
	return out
}

// synthImage produces a deterministic 8-bit test image with smooth
// gradients, edges and noise (the operand mix an image kernel sees).
func synthImage(w, h int) []byte {
	img := make([]byte, w*h)
	rng := newXorshift(0x9e3779b9)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 96 + 80*math.Sin(float64(x)*0.15)*math.Cos(float64(y)*0.11)
			if (x/16+y/16)%2 == 0 {
				v += 40
			}
			v += float64(rng.next() % 17)
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			img[y*w+x] = byte(v)
		}
	}
	return img
}

// xorshift is the deterministic PRNG used for input synthesis.
type xorshift struct{ s uint32 }

func newXorshift(seed uint32) *xorshift {
	if seed == 0 {
		seed = 1
	}
	return &xorshift{s: seed}
}

func (x *xorshift) next() uint32 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 17
	x.s ^= x.s << 5
	return x.s
}
