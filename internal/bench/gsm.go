package bench

import "fmt"

func init() {
	kernelBuilders = append(kernelBuilders, gsmAutocorr)
}

const (
	gsmFrames   = 16
	gsmFrameLen = 160 // GSM 06.10 frame length
	gsmLags     = 9   // autocorrelation lags 0..8
)

// gsmAutocorrRef computes per-frame autocorrelations with wrapping uint32
// accumulation (identical to addu/mflo semantics on the target) and folds
// every coefficient into the checksum.
func gsmAutocorrRef(samples []int16) uint32 {
	sum := uint32(0)
	for f := 0; f < gsmFrames; f++ {
		frame := samples[f*gsmFrameLen : (f+1)*gsmFrameLen]
		for k := 0; k < gsmLags; k++ {
			var acf uint32
			for i := k; i < gsmFrameLen; i++ {
				acf += uint32(int32(frame[i]) * int32(frame[i-k]))
			}
			sum = mix(sum, acf)
		}
	}
	return sum
}

// gsmAutocorr builds the gsmacf benchmark: the autocorrelation stage of
// GSM 06.10 LPC analysis (Mediabench gsm), a multiply-accumulate workload
// over 16-bit speech data.
func gsmAutocorr() Benchmark {
	samples := synthAudio(gsmFrames * gsmFrameLen)
	sum := gsmAutocorrRef(samples)
	src := fmt.Sprintf(`
# gsmacf: GSM-style LPC autocorrelation, %d frames x %d samples x %d lags.
.text
main:
    la   $s0, samples          # frame base
    li   $s1, %d               # frames remaining
    li   $s7, 0
frame_loop:
    li   $s2, 0                # k (lag)
lag_loop:
    li   $t4, 0                # acf accumulator
    move $t5, $s2              # i = k
inner_loop:
    sll  $t6, $t5, 1           # &frame[i]
    addu $t6, $s0, $t6
    lh   $t0, 0($t6)           # frame[i]
    subu $t7, $t5, $s2         # i-k
    sll  $t7, $t7, 1
    addu $t7, $s0, $t7
    lh   $t1, 0($t7)           # frame[i-k]
    mult $t0, $t1
    mflo $t2
    addu $t4, $t4, $t2
    addiu $t5, $t5, 1
    li   $t6, %d
    blt  $t5, $t6, inner_loop
    sll  $t6, $s7, 5           # checksum fold of acf
    addu $s7, $t6, $s7
    addu $s7, $s7, $t4
    addiu $s2, $s2, 1
    li   $t6, %d
    blt  $s2, $t6, lag_loop
    addiu $s0, $s0, %d         # next frame
    addiu $s1, $s1, -1
    bgtz $s1, frame_loop
%s
.data
samples:
%s
`, gsmFrames, gsmFrameLen, gsmLags,
		gsmFrames, gsmFrameLen, gsmLags, 2*gsmFrameLen, exitOK,
		halfData(samples))
	return Benchmark{
		Name:        "gsmacf",
		Description: "GSM 06.10 LPC autocorrelation (Mediabench gsm): multiply-accumulate over 16-bit speech frames",
		Source:      src,
		Checksum:    sum,
		MaxInsts:    2_000_000,
	}
}
