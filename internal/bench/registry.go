package bench

import "sort"

// canonicalOrder fixes the presentation order of the suite (the two ADPCM
// programs first, as in the paper's tables).
var canonicalOrder = []string{
	"rawcaudio", "rawdaudio", "g711enc", "g711dec", "gsmacf",
	"epicfilt", "jpegdct", "huffdec", "mpeg2me", "mesa", "fft", "dijkstra", "qsort", "bitcnt", "pegwit", "crc32",
}

func orderOf(name string) int {
	for i, n := range canonicalOrder {
		if n == name {
			return i
		}
	}
	return len(canonicalOrder)
}

// extraBenchmarks builds the kernels beyond the ADPCM pair, in canonical
// order.
func extraBenchmarks() []Benchmark {
	out := make([]Benchmark, 0, len(kernelBuilders))
	for _, f := range kernelBuilders {
		out = append(out, f())
	}
	sort.Slice(out, func(i, j int) bool { return orderOf(out[i].Name) < orderOf(out[j].Name) })
	return out
}

// kernelBuilders is appended to by each kernel file's init function.
var kernelBuilders []func() Benchmark
