package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/minic"
)

func init() {
	kernelBuilders = append(kernelBuilders, qsortKernel)
}

const qsortN = 512

// qsortInput synthesizes the array to sort.
func qsortInput() []int32 {
	rng := newXorshift(0x9507a7)
	vals := make([]int32, qsortN)
	for i := range vals {
		vals[i] = int32(rng.next()%65536) - 32768
	}
	return vals
}

// qsortRef sorts a copy with the same comparison semantics and folds the
// result into the checksum.
func qsortRef(vals []int32) uint32 {
	s := make([]int32, len(vals))
	copy(s, vals)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	sum := uint32(0)
	for _, v := range s {
		sum = mix(sum, uint32(uint16(v)))
	}
	return sum
}

// qsortKernel builds the qsort benchmark: recursive quicksort *compiled
// from C* by the repository's minic compiler — unlike the hand-written
// kernels it carries full compiled-code character (stack frames, calling
// convention traffic, caller-saved temporaries), which is what the paper's
// gcc-compiled Mediabench binaries look like.
func qsortKernel() Benchmark {
	vals := qsortInput()
	sum := qsortRef(vals)

	var initList strings.Builder
	for i, v := range vals {
		if i > 0 {
			initList.WriteString(", ")
		}
		fmt.Fprintf(&initList, "%d", v)
	}

	csrc := fmt.Sprintf(`
// qsort: recursive quicksort of %d 16-bit values (compiled by minic).
int data[%d] = {%s};

int partition(int lo, int hi) {
    int pivot = data[hi];
    int i = lo - 1;
    int j;
    for (j = lo; j < hi; j += 1) {
        if (data[j] < pivot) {
            i += 1;
            int tmp = data[i];
            data[i] = data[j];
            data[j] = tmp;
        }
    }
    int tmp2 = data[i + 1];
    data[i + 1] = data[hi];
    data[hi] = tmp2;
    return i + 1;
}

int quicksort(int lo, int hi) {
    if (lo < hi) {
        int p = partition(lo, hi);
        quicksort(lo, p - 1);
        quicksort(p + 1, hi);
    }
    return 0;
}

int main() {
    quicksort(0, %d);
    int sum = 0;
    int i;
    for (i = 0; i < %d; i += 1) {
        sum = (sum << 5) + sum + (data[i] & 0xffff);
    }
    return sum;
}
`, qsortN, qsortN, initList.String(), qsortN-1, qsortN)

	asmText, err := minic.CompileToAsm(csrc)
	if err != nil {
		panic(fmt.Sprintf("bench qsort: %v", err))
	}
	return Benchmark{
		Name:        "qsort",
		Description: "recursive quicksort compiled from C by minic (MiBench qsort): compiled-code stack/call traffic",
		Source:      asmText,
		Checksum:    sum,
		MaxInsts:    5_000_000,
	}
}
