// Package pcincr models the block-serial program-counter increment unit of
// §2.2 and reproduces Table 2: for a block size of b bits, the unit
// processes one block per cycle starting at the least significant end and
// stops when the carry dies out.
//
// For a uniformly distributed word-aligned instruction stream the carry out
// of the first block (which adds 1 in units of instructions — the paper's
// Table 2 analyses the increment of the word-address, i.e. +1) has
// probability 2^-b, out of the second 2^-2b, and so on, giving
//
//	expected blocks (latency, cycles) = 1 / (1 - 2^-b)
//	expected bits operated            = b / (1 - 2^-b)
//
// which matches every entry of Table 2 (e.g. b=8: 8.0314 bits, 1.0039
// cycles). The empirical estimator cross-checks the closed form against a
// real traced PC stream.
package pcincr

import "math"

// Analytic returns the expected activity (bits operated) and latency
// (cycles) per increment for block size b bits (1 ≤ b ≤ 32).
func Analytic(b int) (activity, latency float64) {
	p := math.Pow(2, -float64(b))
	latency = 1 / (1 - p)
	activity = float64(b) * latency
	return activity, latency
}

// TableRow is one line of Table 2.
type TableRow struct {
	BlockBits int
	Activity  float64 // bits operated per increment
	Latency   float64 // cycles per increment
}

// Table2 returns the paper's Table 2 for block sizes 1..8.
func Table2() []TableRow {
	rows := make([]TableRow, 0, 8)
	for b := 1; b <= 8; b++ {
		a, l := Analytic(b)
		rows = append(rows, TableRow{BlockBits: b, Activity: a, Latency: l})
	}
	return rows
}

// Empirical measures the same two quantities over a concrete sequence of
// increment-by-one values (e.g. successive word addresses of a real
// instruction stream). It returns the mean bits operated and mean cycles.
type Empirical struct {
	blockBits int
	incs      uint64
	blocks    uint64
}

// NewEmpirical builds an estimator for block size b bits. b must divide 32.
func NewEmpirical(b int) *Empirical { return &Empirical{blockBits: b} }

// Step accounts one increment from v to v+1.
func (e *Empirical) Step(v uint32) {
	e.incs++
	mask := uint32(1)<<e.blockBits - 1
	blocks := uint64(1)
	for shift := 0; shift < 32-e.blockBits; shift += e.blockBits {
		if (v>>shift)&mask != mask {
			break // no carry out of this block
		}
		blocks++
	}
	e.blocks += blocks
}

// Activity returns mean bits operated per increment.
func (e *Empirical) Activity() float64 {
	if e.incs == 0 {
		return 0
	}
	return float64(e.blocks) * float64(e.blockBits) / float64(e.incs)
}

// Latency returns mean cycles per increment.
func (e *Empirical) Latency() float64 {
	if e.incs == 0 {
		return 0
	}
	return float64(e.blocks) / float64(e.incs)
}

// Increments returns how many increments were accounted.
func (e *Empirical) Increments() uint64 { return e.incs }
