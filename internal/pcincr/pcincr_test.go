package pcincr

import (
	"math"
	"testing"
)

// Table 2 of the paper, transcribed.
var paperTable2 = []struct {
	bits     int
	activity float64
	latency  float64
}{
	{1, 2.0000, 2.0000},
	{2, 2.6667, 1.3333},
	{3, 3.4286, 1.1429},
	{4, 4.2667, 1.0667},
	{5, 5.1613, 1.0323},
	{6, 6.0952, 1.0159},
	{7, 7.0551, 1.0079},
	{8, 8.0314, 1.0039},
}

func TestAnalyticMatchesPaperTable2(t *testing.T) {
	for _, row := range paperTable2 {
		a, l := Analytic(row.bits)
		if math.Abs(a-row.activity) > 5e-4 {
			t.Errorf("b=%d: activity %.4f, paper %.4f", row.bits, a, row.activity)
		}
		if math.Abs(l-row.latency) > 5e-4 {
			t.Errorf("b=%d: latency %.4f, paper %.4f", row.bits, l, row.latency)
		}
	}
}

func TestTable2Rows(t *testing.T) {
	rows := Table2()
	if len(rows) != 8 {
		t.Fatalf("rows: %d", len(rows))
	}
	for i, r := range rows {
		if r.BlockBits != i+1 {
			t.Errorf("row %d: block bits %d", i, r.BlockBits)
		}
	}
}

// A long sequential counter stream must converge to the analytic values.
func TestEmpiricalConvergesToAnalytic(t *testing.T) {
	for _, b := range []int{1, 2, 4, 8} {
		est := NewEmpirical(b)
		for v := uint32(0); v < 1<<18; v++ {
			est.Step(v)
		}
		wantA, wantL := Analytic(b)
		if math.Abs(est.Activity()-wantA) > 0.01 {
			t.Errorf("b=%d: empirical activity %.4f vs analytic %.4f", b, est.Activity(), wantA)
		}
		if math.Abs(est.Latency()-wantL) > 0.01 {
			t.Errorf("b=%d: empirical latency %.4f vs analytic %.4f", b, est.Latency(), wantL)
		}
	}
}

func TestEmpiricalCarryChain(t *testing.T) {
	est := NewEmpirical(8)
	est.Step(0x000000ff) // carry into the second block
	if est.Latency() != 2 {
		t.Fatalf("latency: %v", est.Latency())
	}
	est = NewEmpirical(8)
	est.Step(0x00ffffff) // carries through three blocks
	if est.Latency() != 4 {
		t.Fatalf("deep carry latency: %v", est.Latency())
	}
	est = NewEmpirical(8)
	est.Step(0xffffffff) // wraps: all four blocks
	if est.Latency() != 4 {
		t.Fatalf("wrap latency: %v", est.Latency())
	}
}

func TestEmpiricalIdle(t *testing.T) {
	est := NewEmpirical(8)
	if est.Activity() != 0 || est.Latency() != 0 || est.Increments() != 0 {
		t.Fatal("idle estimator should report zeros")
	}
}
