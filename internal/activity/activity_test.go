package activity

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/trace"
)

// suite runs every benchmark through byte and halfword collectors once.
var suiteResults = struct {
	byteCounts map[string]Counts
	halfCounts map[string]Counts
	patterns   *PatternStats
	fetch      *FetchStats
}{}

func runSuite(t testing.TB) {
	if suiteResults.byteCounts != nil {
		return
	}
	rc, _, err := trace.SuiteRecoder(bench.All())
	if err != nil {
		t.Fatal(err)
	}
	suiteResults.byteCounts = make(map[string]Counts)
	suiteResults.halfCounts = make(map[string]Counts)
	suiteResults.patterns = NewPatternStats()
	suiteResults.fetch = &FetchStats{}
	for _, b := range bench.All() {
		c, err := b.NewCPU()
		if err != nil {
			t.Fatal(err)
		}
		byteCol := NewCollector(1, rc, c.Mem)
		halfCol := NewCollector(2, rc, c.Mem)
		if err := trace.RunOn(c, b, rc, byteCol, halfCol, suiteResults.patterns, suiteResults.fetch); err != nil {
			t.Fatal(err)
		}
		suiteResults.byteCounts[b.Name] = byteCol.Counts()
		suiteResults.halfCounts[b.Name] = halfCol.Counts()
	}
}

func averages(m map[string]Counts) []float64 {
	avg := make([]float64, 8)
	for _, c := range m {
		for i, v := range c.Row() {
			avg[i] += v
		}
	}
	for i := range avg {
		avg[i] /= float64(len(m))
	}
	return avg
}

// The paper's Table 5 average row is 18.2 / 46.5 / 42.1 / 33.2 / ~30 / ~1 /
// 73.3 / 42.2. We assert each average lands in a generous band around it —
// the substitution of workloads shifts absolute numbers, but the shape must
// hold (DESIGN.md §6).
func TestTable5ByteActivityBands(t *testing.T) {
	runSuite(t)
	avg := averages(suiteResults.byteCounts)
	names := Stages()
	bands := [][2]float64{
		{8, 35},  // Fetch (paper 18.2)
		{25, 70}, // RFread (46.5)
		{25, 65}, // RFwrite (42.1)
		{15, 55}, // ALU (33.2)
		{10, 55}, // D-cache data (~30)
		{-1, 5},  // D-cache tag (~1)
		{55, 85}, // PC increment (73.3)
		{25, 60}, // Latches (42.2)
	}
	for i, b := range bands {
		if avg[i] < b[0] || avg[i] > b[1] {
			t.Errorf("%s: average reduction %.1f%% outside band [%.0f, %.0f]",
				names[i], avg[i], b[0], b[1])
		}
		t.Logf("%s: %.1f%%", names[i], avg[i])
	}
}

// Table 6: halfword savings must be real but smaller than byte savings for
// the data stages (fetch is the same scheme in both tables).
func TestTable6HalfwordBelowByte(t *testing.T) {
	runSuite(t)
	byteAvg := averages(suiteResults.byteCounts)
	halfAvg := averages(suiteResults.halfCounts)
	names := Stages()
	for i := range names {
		if names[i] == "Fetch" || names[i] == "D-cache tag" {
			continue
		}
		if halfAvg[i] >= byteAvg[i] {
			t.Errorf("%s: halfword %.1f%% >= byte %.1f%%", names[i], halfAvg[i], byteAvg[i])
		}
		if halfAvg[i] <= 0 {
			t.Errorf("%s: halfword saving %.1f%% should be positive", names[i], halfAvg[i])
		}
		t.Logf("%s: byte %.1f%% / halfword %.1f%%", names[i], byteAvg[i], halfAvg[i])
	}
}

// Table 1 shape: the single-significant-byte pattern dominates; the four
// 2-bit-encodable patterns cover the large majority of operand values
// (paper: ~94%).
func TestTable1PatternShape(t *testing.T) {
	runSuite(t)
	rows := suiteResults.patterns.Rows()
	if rows[0].Pattern != "eees" {
		t.Errorf("most common pattern is %q, expected eees", rows[0].Pattern)
	}
	if rows[0].Percent < 30 {
		t.Errorf("eees only %.1f%%, expected dominance", rows[0].Percent)
	}
	cov := suiteResults.patterns.TwoBitCoverage()
	if cov < 75 {
		t.Errorf("2-bit coverage %.1f%%, expected the large majority (>75%%)", cov)
	}
	t.Logf("2-bit coverage: %.1f%%; top pattern %s %.1f%%", cov, rows[0].Pattern, rows[0].Percent)
	for _, r := range rows {
		t.Logf("  %s  %5.1f%%  cum %5.1f%%  2bit=%v", r.Pattern, r.Percent, r.Cumulative, r.TwoBitOK)
	}
}

// §2.3 text: mean fetched bytes per instruction ≈ 3.17 (3.29 with the
// extension bit); most instructions compress to three bytes.
func TestFetchStatsShape(t *testing.T) {
	runSuite(t)
	f := suiteResults.fetch
	mean := f.MeanBytes()
	if mean < 3.0 || mean > 3.8 {
		t.Errorf("mean fetch bytes %.2f outside [3.0, 3.8]", mean)
	}
	if f.ThreeByte*2 < f.Insts {
		t.Errorf("only %d/%d instructions compress to 3 bytes", f.ThreeByte, f.Insts)
	}
	t.Logf("mean %.2f bytes (%.2f with ext bit); 3-byte share %.1f%%; formats R %.1f%% I %.1f%% J %.1f%%",
		mean, f.MeanBytesWithExt(),
		100*float64(f.ThreeByte)/float64(f.Insts),
		100*float64(f.RFormat)/float64(f.Insts),
		100*float64(f.IFormat)/float64(f.Insts),
		100*float64(f.JFormat)/float64(f.Insts))
}

// Per-benchmark sanity: wide-operand crc32 must save less RF/ALU activity
// than the byte-oriented audio kernels.
func TestWorkloadSpread(t *testing.T) {
	runSuite(t)
	crc := suiteResults.byteCounts["crc32"]
	adpcm := suiteResults.byteCounts["rawcaudio"]
	if crc.ALU.Reduction() >= adpcm.ALU.Reduction() {
		t.Errorf("crc32 ALU saving %.1f%% should be below rawcaudio %.1f%%",
			crc.ALU.Reduction(), adpcm.ALU.Reduction())
	}
	t.Logf("ALU savings: crc32 %.1f%%, rawcaudio %.1f%%", crc.ALU.Reduction(), adpcm.ALU.Reduction())
}

func TestStageBitsReduction(t *testing.T) {
	s := StageBits{Baseline: 100, Compressed: 60}
	if got := s.Reduction(); got != 40 {
		t.Fatalf("reduction: %v", got)
	}
	var zero StageBits
	if zero.Reduction() != 0 {
		t.Fatal("idle reduction should be 0")
	}
}
