package activity

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/icomp"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

var rc = icomp.MustNewRecoder(icomp.DefaultTopFuncts())

func newByteCollector() (*Collector, *mem.Memory) {
	m := mem.NewMemory()
	return NewCollector(1, rc, m), m
}

// aluEvent is an addu with chosen operand values.
func aluEvent(pc uint32, a, b uint32) trace.Event {
	raw := isa.EncodeR(isa.FnADDU, isa.RegT0, isa.RegT1, isa.RegT2, 0)
	return trace.Annotate(cpu.Exec{
		PC: pc, Raw: raw, Inst: isa.Decode(raw),
		SrcA: a, SrcB: b, ReadsA: true, ReadsB: true,
		Dest: isa.RegT2, Result: a + b, HasDest: true, NextPC: pc + 4,
	}, rc)
}

func TestCollectorRFReadBits(t *testing.T) {
	c, _ := newByteCollector()
	// One-byte operands: each read costs 8 data bits + 3 ext bits vs 32.
	c.Consume(aluEvent(0x400000, 3, 4))
	got := c.Counts().RFRead
	if got.Baseline != 64 {
		t.Fatalf("baseline read bits: %d", got.Baseline)
	}
	if got.Compressed != 2*(8+3) {
		t.Fatalf("compressed read bits: %d", got.Compressed)
	}
}

func TestCollectorRFWriteBits(t *testing.T) {
	c, _ := newByteCollector()
	c.Consume(aluEvent(0x400000, 1, 1)) // result 2: one significant byte
	got := c.Counts().RFWrite
	if got.Baseline != 32 || got.Compressed != 11 {
		t.Fatalf("write bits: %d/%d", got.Compressed, got.Baseline)
	}
}

func TestCollectorALUBits(t *testing.T) {
	c, _ := newByteCollector()
	c.Consume(aluEvent(0x400000, 1, 1))
	if got := c.Counts().ALU; got.Compressed != 8 || got.Baseline != 32 {
		t.Fatalf("narrow alu bits: %d/%d", got.Compressed, got.Baseline)
	}
	c2, _ := newByteCollector()
	c2.Consume(aluEvent(0x400000, 0x12345678, 0x01010101))
	if got := c2.Counts().ALU; got.Compressed != 32 {
		t.Fatalf("wide alu bits: %d", got.Compressed)
	}
}

func TestCollectorFetchBits(t *testing.T) {
	c, _ := newByteCollector()
	c.Consume(aluEvent(0x400000, 1, 1)) // addu: compact 3-byte fetch
	got := c.Counts().Fetch
	// First fetch also fills a 32-byte line: baseline 32+256. Compressed:
	// 3 bytes + 1 ext bit + line fill of 8 zero words (each decodes as a
	// compact 3-byte sll/nop: 25 bits each).
	if got.Baseline != 32+256 {
		t.Fatalf("fetch baseline: %d", got.Baseline)
	}
	if got.Compressed != 25+8*25 {
		t.Fatalf("fetch compressed: %d", got.Compressed)
	}
	// Second fetch on the same line: no fill.
	c.Consume(aluEvent(0x400004, 1, 1))
	got = c.Counts().Fetch
	if got.Baseline != 32+256+32 || got.Compressed != 25+8*25+25 {
		t.Fatalf("second fetch: %d/%d", got.Compressed, got.Baseline)
	}
}

func TestCollectorPCIncrementBits(t *testing.T) {
	c, _ := newByteCollector()
	c.Consume(aluEvent(0x400000, 1, 1)) // PC 0x400000 -> 0x400004: 1 byte
	if got := c.Counts().PCIncr; got.Compressed != 8 || got.Baseline != 32 {
		t.Fatalf("pc bits: %d/%d", got.Compressed, got.Baseline)
	}
	// Crossing a byte boundary: 0x4000fc -> 0x400100 touches two bytes.
	c2, _ := newByteCollector()
	c2.Consume(aluEvent(0x4000fc, 1, 1))
	if got := c2.Counts().PCIncr; got.Compressed != 16 {
		t.Fatalf("carry pc bits: %d", got.Compressed)
	}
}

func TestCollectorDCacheBits(t *testing.T) {
	c, m := newByteCollector()
	// Store the value 7 (1 significant byte) as a word. The line fill
	// reads 8 words from memory (all zero: 11 bits each compressed).
	m.Store32(0x10000000, 0) // contents at fill time
	raw := isa.EncodeI(isa.OpSW, isa.RegT0, isa.RegT1, 0)
	ev := trace.Annotate(cpu.Exec{
		PC: 0x400000, Raw: raw, Inst: isa.Decode(raw),
		SrcA: 0x10000000, SrcB: 7, ReadsA: true, ReadsB: true,
		Addr: 0x10000000, MemWidth: 4, StoreVal: 7, NextPC: 0x400004,
	}, rc)
	c.Consume(ev)
	got := c.Counts().DCacheData
	// Baseline: 32 (store) + 256 (fill). Compressed: 11 (store of one
	// significant byte) + 8*11 (fill of zero words).
	if got.Baseline != 32+256 {
		t.Fatalf("dcache baseline: %d", got.Baseline)
	}
	if got.Compressed != 11+8*11 {
		t.Fatalf("dcache compressed: %d", got.Compressed)
	}
	// Tag accounting: 19 tag bits each side (8 KB DM, 32 B lines).
	tag := c.Counts().DCacheTag
	if tag.Baseline != 19 || tag.Compressed != 19 {
		t.Fatalf("tag bits: %d/%d", tag.Compressed, tag.Baseline)
	}
}

func TestCollectorLatchBits(t *testing.T) {
	c, _ := newByteCollector()
	c.Consume(aluEvent(0x400000, 1, 1))
	got := c.Counts().Latch
	if got.Baseline != 160 {
		t.Fatalf("latch baseline: %d", got.Baseline)
	}
	// IF 25 + two operands 11 each + EX out 11 + MEM passthrough 11 = 69.
	if got.Compressed != 25+11+11+11+11 {
		t.Fatalf("latch compressed: %d", got.Compressed)
	}
}

func TestCollectorScheme2StorageBits(t *testing.T) {
	m := mem.NewMemory()
	c2 := NewCollectorScheme(1, Scheme2, rc, m)
	// Value 0x10000009 ("sees"): 3-bit scheme stores 2 bytes; 2-bit scheme
	// cannot skip the internal zeros and stores 4.
	raw := isa.EncodeR(isa.FnADDU, isa.RegT0, isa.RegT1, isa.RegT2, 0)
	ev := trace.Annotate(cpu.Exec{
		PC: 0x400000, Raw: raw, Inst: isa.Decode(raw),
		SrcA: 0x10000009, SrcB: 0, ReadsA: true, ReadsB: true,
		Dest: isa.RegT2, Result: 0x10000009, HasDest: true, NextPC: 0x400004,
	}, rc)
	c2.Consume(ev)
	got := c2.Counts().RFRead
	// Operand A: 4 bytes + 2 ext bits = 34; operand B (zero): 8+2 = 10.
	if got.Compressed != 34+10 {
		t.Fatalf("scheme2 read bits: %d", got.Compressed)
	}
	c3 := NewCollector(1, rc, m)
	c3.Consume(ev)
	// 3-bit scheme: A = 16+3 = 19; B = 8+3 = 11.
	if got := c3.Counts().RFRead; got.Compressed != 19+11 {
		t.Fatalf("scheme3 read bits: %d", got.Compressed)
	}
}

func TestHalfwordCollectorBits(t *testing.T) {
	m := mem.NewMemory()
	c := NewCollector(2, rc, m)
	c.Consume(aluEvent(0x400000, 3, 4))
	// Each operand: one halfword + 1 ext bit = 17.
	if got := c.Counts().RFRead; got.Compressed != 34 {
		t.Fatalf("halfword read bits: %d", got.Compressed)
	}
	if got := c.Counts().PCIncr; got.Compressed != 16 {
		t.Fatalf("halfword pc bits: %d", got.Compressed)
	}
}

func TestStagesRowAlignment(t *testing.T) {
	if len(Stages()) != 8 {
		t.Fatalf("stages: %d", len(Stages()))
	}
	var c Counts
	if len(c.Row()) != len(Stages()) {
		t.Fatal("Row/Stages mismatch")
	}
}
