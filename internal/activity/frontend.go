// FrontendStats tallies the compressed-fetch frontend opportunity profile:
// how much of the dynamic stream is 3-byte recoded, how many adjacent
// instruction pairs a dual-issue-when-compressed decoder could accept, and
// how often control transfers break the sequential fetch run.
//
// The pair tally is a static opportunity count over the trace — greedy,
// non-overlapping, using the same admission rules as the pipeline's
// dual-issue frontend (both instructions 3-byte, at most one memory op, no
// intra-pair RAW dependence) but without the timing constraints. The
// pipeline's FetchUnitStats reports pairs actually achieved; the gap
// between the two is fetch-bandwidth and scheduling loss.
package activity

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// FrontendStats is a mergeable per-suite collector. The exported fields are
// pure sums; the unexported fields are intra-benchmark adjacency state and
// deliberately excluded from Merge/State — collectors are fed one benchmark
// each, and instruction adjacency does not span benchmarks.
type FrontendStats struct {
	Insts      uint64 // instructions observed
	Bytes      uint64 // recoded fetch bytes
	Compressed uint64 // 3-byte instructions
	Pairs      uint64 // greedy non-overlapping dual-issue opportunities
	Redirects  uint64 // control transfers (fetch-run breaks)

	prevOK      bool // previous instruction is an unpaired 3-byte candidate
	prevMem     bool
	prevHasDest bool
	prevDest    isa.Reg
}

// NewFrontendStats returns an empty tally.
func NewFrontendStats() *FrontendStats { return &FrontendStats{} }

// Consume implements trace.Consumer.
func (f *FrontendStats) Consume(e trace.Event) {
	f.consume(e.Inst, e.IFBytes, e.ReadsA, e.ReadsB, e.HasDest, e.Dest)
}

// ConsumeBlock implements trace.BatchConsumer, mirroring Consume from the
// capture columns without materializing Events.
func (f *FrontendStats) ConsumeBlock(b *trace.Block) {
	for i := range b.Slot {
		st := &b.Statics[b.Slot[i]&trace.SlotMask]
		f.consume(st.Inst, int(b.IFB[b.Slot[i]&trace.SlotMask]),
			st.ReadsA, st.ReadsB, st.HasDest, st.Dest)
	}
}

func (f *FrontendStats) consume(inst isa.Inst, ifBytes int, readsA, readsB, hasDest bool, dest isa.Reg) {
	f.Insts++
	f.Bytes += uint64(ifBytes)
	compressed := ifBytes == 3
	if compressed {
		f.Compressed++
	}
	paired := false
	if f.prevOK && compressed && !(f.prevMem && inst.IsMem()) {
		raw := f.prevHasDest && f.prevDest != 0 &&
			((readsA && inst.Rs == f.prevDest) || (readsB && inst.Rt == f.prevDest))
		if !raw {
			f.Pairs++
			paired = true
		}
	}
	// The pairing decision precedes the run break, so a control transfer
	// may ride as the second instruction of a pair — but nothing pairs
	// across it.
	if inst.IsControl() {
		f.Redirects++
		f.prevOK = false
		return
	}
	f.prevOK = compressed && !paired
	f.prevMem = inst.IsMem()
	f.prevHasDest = hasDest
	f.prevDest = dest
}

// EndRun clears the adjacency state at a benchmark boundary. A shared
// collector fed benchmarks back-to-back must not pair the last instruction
// of one benchmark with the first of the next, or its tally would diverge
// from per-benchmark collectors merged afterwards — the suite evaluation
// runs both ways and asserts bit-identity.
func (f *FrontendStats) EndRun() {
	f.prevOK, f.prevMem, f.prevHasDest, f.prevDest = false, false, false, 0
}

// Merge folds other's tallies into f (order-independent sums over the
// exported counts; adjacency state does not travel).
func (f *FrontendStats) Merge(other *FrontendStats) {
	f.Insts += other.Insts
	f.Bytes += other.Bytes
	f.Compressed += other.Compressed
	f.Pairs += other.Pairs
	f.Redirects += other.Redirects
}

// CompressedShare is the percentage of instructions fetched at 3 bytes.
func (f *FrontendStats) CompressedShare() float64 {
	if f.Insts == 0 {
		return 0
	}
	return 100 * float64(f.Compressed) / float64(f.Insts)
}

// PairShare is the percentage of instructions covered by dual-issue pairs.
func (f *FrontendStats) PairShare() float64 {
	if f.Insts == 0 {
		return 0
	}
	return 100 * float64(2*f.Pairs) / float64(f.Insts)
}

// MeanRunLength is the average number of instructions between control
// transfers — the sequential window the byte-fetch path streams over.
func (f *FrontendStats) MeanRunLength() float64 {
	if f.Redirects == 0 {
		return float64(f.Insts)
	}
	return float64(f.Insts) / float64(f.Redirects)
}

// FrontendState is the wire form of a FrontendStats tally.
type FrontendState struct {
	Insts      uint64 `json:"insts"`
	Bytes      uint64 `json:"bytes"`
	Compressed uint64 `json:"compressed"`
	Pairs      uint64 `json:"pairs"`
	Redirects  uint64 `json:"redirects"`
}

// State returns a copy of the raw tally for transport.
func (f *FrontendStats) State() FrontendState {
	return FrontendState{
		Insts: f.Insts, Bytes: f.Bytes, Compressed: f.Compressed,
		Pairs: f.Pairs, Redirects: f.Redirects,
	}
}

// AddState folds a transported tally into f (order-independent sums).
func (f *FrontendStats) AddState(st FrontendState) {
	f.Insts += st.Insts
	f.Bytes += st.Bytes
	f.Compressed += st.Compressed
	f.Pairs += st.Pairs
	f.Redirects += st.Redirects
}
