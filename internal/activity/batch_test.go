package activity

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/icomp"
	"repro/internal/trace"
)

// TestCollectorBatchIdentical pins the collector's batch path to the scalar
// reference: replaying a capture through ConsumeBlock must produce exactly
// the same Counts as the event-at-a-time path, at every granularity and
// scheme. This also exercises the engine's store-delimited spans — the
// collector reads cache-line contents from program memory at fill time, so
// any store-ordering error in batch replay shows up as a fill-bit diff.
func TestCollectorBatchIdentical(t *testing.T) {
	ctx := context.Background()
	rc := icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	for _, bn := range []string{"dijkstra", "g711dec", "rawdaudio"} {
		b, ok := bench.ByName(bn)
		if !ok {
			t.Fatalf("unknown benchmark %q", bn)
		}
		cp, err := trace.CaptureRun(ctx, b)
		if err != nil {
			t.Fatalf("capture %s: %v", bn, err)
		}
		for _, cfg := range []struct {
			label  string
			g      int
			scheme Scheme
		}{
			{"byte/3bit", 1, Scheme3},
			{"byte/2bit", 1, Scheme2},
			{"half", 2, Scheme3},
		} {
			memS, err := cp.NewMemory()
			if err != nil {
				t.Fatalf("memory: %v", err)
			}
			scalar := NewCollectorScheme(cfg.g, cfg.scheme, rc, memS)
			if err := cp.ReplayOn(ctx, memS, rc, scalar); err != nil {
				t.Fatalf("%s/%s scalar replay: %v", bn, cfg.label, err)
			}
			memB, err := cp.NewMemory()
			if err != nil {
				t.Fatalf("memory: %v", err)
			}
			batch := NewCollectorScheme(cfg.g, cfg.scheme, rc, memB)
			if err := cp.ReplayBlocksOn(ctx, memB, rc, batch); err != nil {
				t.Fatalf("%s/%s batch replay: %v", bn, cfg.label, err)
			}
			if scalar.Counts() != batch.Counts() {
				t.Errorf("%s/%s: batch counts diverge\nscalar: %+v\nbatch:  %+v",
					bn, cfg.label, scalar.Counts(), batch.Counts())
			}
		}
	}
}
