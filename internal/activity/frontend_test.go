package activity

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/trace"
)

// loadEvent is a lw with a chosen destination register.
func loadEvent(pc uint32, dest isa.Reg) trace.Event {
	raw := isa.EncodeI(isa.OpLW, isa.RegT0, dest, 0)
	return trace.Annotate(cpu.Exec{
		PC: pc, Raw: raw, Inst: isa.Decode(raw),
		SrcA: 0x10000000, ReadsA: true,
		Addr: 0x10000000, MemWidth: 4,
		Dest: dest, Result: 7, HasDest: true, NextPC: pc + 4,
	}, rc)
}

// branchEvent is a not-taken beq.
func branchEvent(pc uint32) trace.Event {
	raw := isa.EncodeI(isa.OpBEQ, isa.RegT0, isa.RegT1, 4)
	return trace.Annotate(cpu.Exec{
		PC: pc, Raw: raw, Inst: isa.Decode(raw),
		SrcA: 1, SrcB: 2, ReadsA: true, ReadsB: true, NextPC: pc + 4,
	}, rc)
}

func sized(e trace.Event, bytes int) trace.Event {
	e.IFBytes = bytes
	return e
}

// TestFrontendStatsPairing checks the greedy pairing rules on hand-built
// streams: independent compressed ALU ops pair, RAW chains do not, memory
// pairs do not, and control transfers break runs but may close a pair.
func TestFrontendStatsPairing(t *testing.T) {
	indep := func(pc uint32, dest isa.Reg) trace.Event {
		e := aluEvent(pc, 1, 2)
		e.Dest = dest
		return sized(e, 3)
	}

	f := NewFrontendStats()
	for i := uint32(0); i < 6; i++ {
		f.Consume(indep(0x400000+4*i, []isa.Reg{isa.RegT2, isa.RegT3}[i%2]))
	}
	if f.Pairs != 3 || f.Compressed != 6 {
		t.Fatalf("independent compressed stream: %d pairs / %d compressed, want 3/6", f.Pairs, f.Compressed)
	}

	// RAW chain: every op reads the previous destination.
	f = NewFrontendStats()
	for i := uint32(0); i < 6; i++ {
		e := aluEvent(0x400000+4*i, 1, 2)
		e.Inst.Rs, e.Inst.Rt = isa.RegT2, isa.RegT2
		f.Consume(sized(e, 3))
	}
	if f.Pairs != 0 {
		t.Fatalf("RAW chain paired %d times", f.Pairs)
	}

	// Two adjacent memory ops must not pair; mem+alu may.
	f = NewFrontendStats()
	f.Consume(sized(loadEvent(0x400000, isa.RegT2), 3))
	f.Consume(sized(loadEvent(0x400004, isa.RegT3), 3))
	if f.Pairs != 0 {
		t.Fatalf("load/load paired")
	}
	f.Consume(sized(aluEvent(0x400008, 1, 2), 3))
	if f.Pairs != 1 {
		t.Fatalf("load/alu did not pair: %d", f.Pairs)
	}

	// A 4-byte instruction never pairs.
	f = NewFrontendStats()
	f.Consume(sized(aluEvent(0x400000, 1, 2), 4))
	f.Consume(sized(aluEvent(0x400004, 1, 2), 3))
	if f.Pairs != 0 {
		t.Fatalf("4-byte instruction paired")
	}

	// A branch may close a pair but nothing pairs across it.
	f = NewFrontendStats()
	f.Consume(sized(aluEvent(0x400000, 1, 2), 3))
	f.Consume(sized(branchEvent(0x400004), 3))
	f.Consume(sized(aluEvent(0x400008, 1, 2), 3))
	f.Consume(sized(aluEvent(0x40000c, 1, 2), 3))
	if f.Pairs != 2 || f.Redirects != 1 {
		t.Fatalf("branch handling: %d pairs / %d redirects, want 2/1", f.Pairs, f.Redirects)
	}
}

// TestFrontendStatsMergeAndState checks the PR 2 merge invariant for the
// new collector: halves merged — via Merge or via the State/AddState wire
// round-trip — equal one collector fed everything, and merging is
// order-independent. Pairing adjacency never spans benchmarks, so the
// fixture's split point sits on a control transfer: the whole-stream
// collector's run breaks exactly where the halves do.
func TestFrontendStatsMergeAndState(t *testing.T) {
	var all []trace.Event
	for i := uint32(0); i < 5; i++ {
		all = append(all, sized(aluEvent(0x400000+4*i, uint32(i), 0xdead0000+i), 3))
	}
	all = append(all, sized(branchEvent(0x400014), 4))
	for i := uint32(0); i < 4; i++ {
		all = append(all, sized(loadEvent(0x400018+4*i, []isa.Reg{isa.RegT2, isa.RegT3}[i%2]), 3))
	}
	first, second := all[:6], all[6:]
	whole, a, b := NewFrontendStats(), NewFrontendStats(), NewFrontendStats()
	for _, e := range all {
		whole.Consume(e)
	}
	for _, e := range first {
		a.Consume(e)
	}
	for _, e := range second {
		b.Consume(e)
	}

	merged := NewFrontendStats()
	merged.Merge(a)
	merged.Merge(b)
	if merged.State() != whole.State() {
		t.Fatalf("merged state %+v, want %+v", merged.State(), whole.State())
	}

	reversed := NewFrontendStats()
	reversed.AddState(b.State())
	reversed.AddState(a.State())
	if reversed.State() != merged.State() {
		t.Fatalf("merge is order-dependent: %+v vs %+v", reversed.State(), merged.State())
	}

	if whole.CompressedShare() != merged.CompressedShare() ||
		whole.PairShare() != merged.PairShare() ||
		whole.MeanRunLength() != merged.MeanRunLength() {
		t.Fatal("derived figures differ after merge")
	}
}

// TestFrontendStatsBatchIdentical pins ConsumeBlock to the scalar path on
// real benchmark captures.
func TestFrontendStatsBatchIdentical(t *testing.T) {
	ctx := context.Background()
	for _, bn := range []string{"dijkstra", "g711dec", "rawdaudio"} {
		b, ok := bench.ByName(bn)
		if !ok {
			t.Fatalf("unknown benchmark %q", bn)
		}
		cp, err := trace.CaptureRun(ctx, b)
		if err != nil {
			t.Fatalf("capture %s: %v", bn, err)
		}
		scalar, batch := NewFrontendStats(), NewFrontendStats()
		if err := cp.ReplayOn(ctx, nil, rc, scalar); err != nil {
			t.Fatalf("%s scalar replay: %v", bn, err)
		}
		if err := cp.ReplayBlocks(ctx, rc, batch); err != nil {
			t.Fatalf("%s batch replay: %v", bn, err)
		}
		if !reflect.DeepEqual(scalar, batch) {
			t.Errorf("%s: batch frontend stats diverge\nscalar: %+v\nbatch:  %+v", bn, scalar, batch)
		}
		if scalar.Insts == 0 || scalar.Compressed == 0 || scalar.Pairs == 0 {
			t.Errorf("%s: degenerate tally %+v", bn, scalar)
		}
	}
}
