package activity

import (
	"sort"

	"repro/internal/sig"
	"repro/internal/trace"
)

// PartitionStats evaluates the §2.1 future-work question: which division of
// the word into (possibly non-uniform, non-power-of-two) segments minimizes
// stored bits? It accumulates, per candidate partition, the total bits held
// for every register operand value, including each partition's extension
// overhead.
type PartitionStats struct {
	names  []string
	parts  []sig.Partition
	bits   []uint64
	values uint64
}

// NewPartitionStats builds the tally over sig.CandidatePartitions.
func NewPartitionStats() *PartitionStats {
	cands := sig.CandidatePartitions()
	names := make([]string, 0, len(cands))
	for n := range cands {
		names = append(names, n)
	}
	sort.Strings(names)
	ps := &PartitionStats{names: names}
	for _, n := range names {
		ps.parts = append(ps.parts, cands[n])
	}
	ps.bits = make([]uint64, len(ps.parts))
	return ps
}

// Consume implements trace.Consumer over register operand values.
func (ps *PartitionStats) Consume(e trace.Event) {
	if e.ReadsA {
		ps.add(e.SrcA)
	}
	if e.ReadsB {
		ps.add(e.SrcB)
	}
}

func (ps *PartitionStats) add(v uint32) {
	ps.values++
	for i, p := range ps.parts {
		ps.bits[i] += uint64(p.StoredBits(v))
	}
}

// Merge folds other's tallies into ps. Both sides must come from
// NewPartitionStats (same sorted candidate set), which every constructor in
// this repository guarantees; merging is then an order-independent sum.
func (ps *PartitionStats) Merge(other *PartitionStats) {
	if len(ps.bits) != len(other.bits) {
		panic("activity: merging PartitionStats over different candidate sets")
	}
	ps.values += other.values
	for i := range ps.bits {
		ps.bits[i] += other.bits[i]
	}
}

// PartitionRow is one candidate's outcome.
type PartitionRow struct {
	Name     string
	Segments sig.Partition
	MeanBits float64 // stored bits per value, overhead included
	Saving   float64 // percent vs the 32-bit baseline
}

// Rows returns the candidates ordered best (fewest mean bits) first.
func (ps *PartitionStats) Rows() []PartitionRow {
	rows := make([]PartitionRow, len(ps.parts))
	for i := range ps.parts {
		mean := 0.0
		if ps.values > 0 {
			mean = float64(ps.bits[i]) / float64(ps.values)
		}
		rows[i] = PartitionRow{
			Name:     ps.names[i],
			Segments: ps.parts[i],
			MeanBits: mean,
			Saving:   100 * (1 - mean/32),
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].MeanBits < rows[j].MeanBits })
	return rows
}

// Values returns how many operand values were tallied.
func (ps *PartitionStats) Values() uint64 { return ps.values }

// Width64Stats evaluates the paper's §2.9 closing claim ("if a 64-bit ISA
// were to be used, the savings will likely be much greater"): the same
// register operand values, held in 64-bit registers, compared under the
// per-byte scheme on both machine widths.
type Width64Stats struct {
	bits32, bits64 uint64
	values         uint64
}

// NewWidth64Stats returns an empty tally.
func NewWidth64Stats() *Width64Stats { return &Width64Stats{} }

// Consume implements trace.Consumer over register operand values.
func (w *Width64Stats) Consume(e trace.Event) {
	if e.ReadsA {
		w.add(e.SrcA)
	}
	if e.ReadsB {
		w.add(e.SrcB)
	}
}

func (w *Width64Stats) add(v uint32) {
	w.values++
	w.bits32 += uint64(sig.StoredBits3(v))
	w.bits64 += uint64(sig.StoredBits64(sig.Extend64(v)))
}

// Merge folds other's tallies into w (order-independent sums).
func (w *Width64Stats) Merge(other *Width64Stats) {
	w.bits32 += other.bits32
	w.bits64 += other.bits64
	w.values += other.values
}

// Saving32 returns the mean storage saving on the 32-bit machine (%).
func (w *Width64Stats) Saving32() float64 {
	if w.values == 0 {
		return 0
	}
	return 100 * (1 - float64(w.bits32)/float64(32*w.values))
}

// Saving64 returns the mean storage saving on the 64-bit machine (%).
func (w *Width64Stats) Saving64() float64 {
	if w.values == 0 {
		return 0
	}
	return 100 * (1 - float64(w.bits64)/float64(64*w.values))
}
