package activity

import "fmt"

// This file gives the suite-level collectors a wire representation: raw,
// order-independent count state that can be serialized by one process and
// folded into a live collector by another. It is the cross-node form of the
// Merge invariant — a shard evaluates its benchmark partition, ships State,
// and the gateway's AddState recombines the tallies to exactly what one
// shared collector fed the whole suite would hold. Only integer counts
// cross the wire; every percentage is derived after merging, so the result
// is bit-identical regardless of how the suite was partitioned.

// PatternState is the wire form of a PatternStats tally.
type PatternState struct {
	Counts map[string]uint64 `json:"counts,omitempty"`
	Total  uint64            `json:"total"`
}

// State returns a copy of the raw tally for transport.
func (p *PatternStats) State() PatternState {
	counts := make(map[string]uint64, len(p.counts))
	for pat, n := range p.counts {
		counts[pat] = n
	}
	return PatternState{Counts: counts, Total: p.total}
}

// AddState folds a transported tally into p (order-independent sums).
func (p *PatternStats) AddState(st PatternState) {
	for pat, n := range st.Counts {
		p.counts[pat] += n
	}
	p.total += st.Total
}

// PartitionState is the wire form of a PartitionStats tally. Names pins the
// candidate-set identity so tallies from mismatched builds cannot silently
// combine.
type PartitionState struct {
	Names  []string `json:"names"`
	Bits   []uint64 `json:"bits"`
	Values uint64   `json:"values"`
}

// State returns a copy of the raw tally for transport.
func (ps *PartitionStats) State() PartitionState {
	return PartitionState{
		Names:  append([]string(nil), ps.names...),
		Bits:   append([]uint64(nil), ps.bits...),
		Values: ps.values,
	}
}

// AddState folds a transported tally into ps, rejecting a candidate set
// that does not match this build's sig.CandidatePartitions.
func (ps *PartitionStats) AddState(st PartitionState) error {
	if len(st.Names) != len(ps.names) || len(st.Bits) != len(ps.bits) {
		return fmt.Errorf("activity: partition state has %d/%d candidates, want %d", len(st.Names), len(st.Bits), len(ps.names))
	}
	for i, n := range st.Names {
		if n != ps.names[i] {
			return fmt.Errorf("activity: partition state candidate %d is %q, want %q", i, n, ps.names[i])
		}
	}
	ps.values += st.Values
	for i := range ps.bits {
		ps.bits[i] += st.Bits[i]
	}
	return nil
}

// Width64State is the wire form of a Width64Stats tally.
type Width64State struct {
	Bits32 uint64 `json:"bits32"`
	Bits64 uint64 `json:"bits64"`
	Values uint64 `json:"values"`
}

// State returns a copy of the raw tally for transport.
func (w *Width64Stats) State() Width64State {
	return Width64State{Bits32: w.bits32, Bits64: w.bits64, Values: w.values}
}

// AddState folds a transported tally into w (order-independent sums).
func (w *Width64Stats) AddState(st Width64State) {
	w.bits32 += st.Bits32
	w.bits64 += st.Bits64
	w.values += st.Values
}
