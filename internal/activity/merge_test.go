package activity

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// splitEvents is the merge fixture: a mixed bag of operand values split in
// two, so "one collector fed everything" can be compared against "two
// collectors fed halves, then merged".
func splitEvents() (all, first, second []trace.Event) {
	vals := [][2]uint32{
		{3, 4},
		{0x12345678, 1},
		{0, 0xffffffff},
		{0x8000, 0x7fff},
		{0x00ff00ff, 0x12000000},
		{42, 0xdeadbeef},
	}
	for _, v := range vals {
		all = append(all, aluEvent(0x400000, v[0], v[1]))
	}
	return all, all[:3], all[3:]
}

func TestPatternStatsMerge(t *testing.T) {
	all, first, second := splitEvents()
	whole, a, b := NewPatternStats(), NewPatternStats(), NewPatternStats()
	for _, e := range all {
		whole.Consume(e)
	}
	for _, e := range first {
		a.Consume(e)
	}
	for _, e := range second {
		b.Consume(e)
	}
	a.Merge(b)
	if a.Total() != whole.Total() {
		t.Fatalf("merged total %d, want %d", a.Total(), whole.Total())
	}
	if !reflect.DeepEqual(a.Rows(), whole.Rows()) {
		t.Fatal("merged pattern rows differ from single-collector rows")
	}
	if a.TwoBitCoverage() != whole.TwoBitCoverage() {
		t.Fatal("merged two-bit coverage differs")
	}
}

func TestFetchStatsMerge(t *testing.T) {
	all, first, second := splitEvents()
	whole, a, b := &FetchStats{}, &FetchStats{}, &FetchStats{}
	for _, e := range all {
		whole.Consume(e)
	}
	for _, e := range first {
		a.Consume(e)
	}
	for _, e := range second {
		b.Consume(e)
	}
	a.Merge(b)
	if !reflect.DeepEqual(a, whole) {
		t.Fatalf("merged fetch stats %+v, want %+v", a, whole)
	}
}

func TestPartitionStatsMerge(t *testing.T) {
	all, first, second := splitEvents()
	whole, a, b := NewPartitionStats(), NewPartitionStats(), NewPartitionStats()
	for _, e := range all {
		whole.Consume(e)
	}
	for _, e := range first {
		a.Consume(e)
	}
	for _, e := range second {
		b.Consume(e)
	}
	a.Merge(b)
	if a.Values() != whole.Values() {
		t.Fatalf("merged values %d, want %d", a.Values(), whole.Values())
	}
	if !reflect.DeepEqual(a.Rows(), whole.Rows()) {
		t.Fatal("merged partition rows differ from single-collector rows")
	}
}

func TestWidth64StatsMerge(t *testing.T) {
	all, first, second := splitEvents()
	whole, a, b := NewWidth64Stats(), NewWidth64Stats(), NewWidth64Stats()
	for _, e := range all {
		whole.Consume(e)
	}
	for _, e := range first {
		a.Consume(e)
	}
	for _, e := range second {
		b.Consume(e)
	}
	a.Merge(b)
	if a.Saving32() != whole.Saving32() || a.Saving64() != whole.Saving64() {
		t.Fatalf("merged savings %.4f/%.4f, want %.4f/%.4f",
			a.Saving32(), a.Saving64(), whole.Saving32(), whole.Saving64())
	}
}
