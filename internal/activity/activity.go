// Package activity implements the paper's trace-driven activity study
// (§2.9): per-pipeline-stage counts of bits that are read, written, operated
// on, or latched, for a conventional 32-bit pipeline versus the
// significance-compressed pipeline, at byte (Table 5) and halfword
// (Table 6) granularity.
package activity

import (
	"repro/internal/icomp"
	"repro/internal/mem"
	"repro/internal/sig"
	"repro/internal/trace"
)

// StageBits accumulates baseline and compressed bit counts for one stage.
type StageBits struct {
	Baseline   uint64
	Compressed uint64
}

// Add accumulates one event's bits.
func (s *StageBits) Add(baseline, compressed int) {
	s.Baseline += uint64(baseline)
	s.Compressed += uint64(compressed)
}

// Reduction returns the percent activity saving (0 when idle).
func (s StageBits) Reduction() float64 {
	if s.Baseline == 0 {
		return 0
	}
	return 100 * (1 - float64(s.Compressed)/float64(s.Baseline))
}

// Counts carries the per-stage tallies of one benchmark run — the columns
// of the paper's Tables 5 and 6.
type Counts struct {
	Fetch      StageBits // instruction fetch (I-cache reads + fills)
	RFRead     StageBits // register file read ports
	RFWrite    StageBits // register write-back
	ALU        StageBits
	DCacheData StageBits // data array: loads, stores, fills, writebacks
	DCacheTag  StageBits // tag array
	PCIncr     StageBits // PC increment / redirect
	Latch      StageBits // inter-stage pipeline latches
	Insts      uint64
}

const (
	baselineWord  = 32
	baselineLatch = 160 // IF(32) + two operands(64) + EX out(32) + MEM out(32)
)

// Collector consumes annotated trace events and accumulates Counts. It owns
// a private cache hierarchy (for fill and tag accounting) and reads line
// contents from the running program's memory at fill time, which is when
// the paper generates extension bits ("new extension bit values are
// generated only when there is a cache line filled from main memory", §1).
type Collector struct {
	g      int // block size in bytes: 1 or 2
	scheme Scheme
	rc     *icomp.Recoder
	hier   *mem.Hierarchy
	memory *mem.Memory

	dataTagBits int
	counts      Counts
}

// Scheme selects the data-compression encoding under study (§2.1).
type Scheme int

// Available schemes.
const (
	// Scheme3 is the paper's primary choice: three extension bits, one per
	// upper byte, allowing internal extension bytes (9% overhead).
	Scheme3 Scheme = 3
	// Scheme2 is the two-bit count alternative: only contiguous
	// most-significant extension bytes compress (6% overhead).
	Scheme2 Scheme = 2
)

// NewCollector builds a collector at granularity g (1 = byte for Table 5,
// 2 = halfword for Table 6) using the paper's 3-bit scheme. memory is the
// running program's address space.
func NewCollector(g int, rc *icomp.Recoder, memory *mem.Memory) *Collector {
	return NewCollectorScheme(g, Scheme3, rc, memory)
}

// NewCollectorScheme additionally selects the extension-bit scheme (only
// meaningful at byte granularity; the halfword scheme always has a single
// bit). The 2-bit scheme affects storage and transport activity (register
// file, data cache, latches); ALU gating keeps the full per-byte marking in
// both cases, matching the paper's note that the two schemes' performance
// results "are likely to be very similar" (§2.1).
func NewCollectorScheme(g int, scheme Scheme, rc *icomp.Recoder, memory *mem.Memory) *Collector {
	cfg := mem.DefaultHierarchyConfig()
	c := &Collector{
		g:      g,
		scheme: scheme,
		rc:     rc,
		hier:   mem.NewHierarchy(cfg),
		memory: memory,
	}
	sets := cfg.L1D.Size / (cfg.L1D.LineBytes * cfg.L1D.Assoc)
	c.dataTagBits = 32 - log2(sets) - log2(cfg.L1D.LineBytes)
	return c
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// sigBlocks returns stored blocks of v under the collector's granularity
// and scheme.
func (c *Collector) sigBlocks(v uint32) int {
	if c.g == 2 {
		return sig.SigHalves(v)
	}
	if c.scheme == Scheme2 {
		return sig.SigBytes(v)
	}
	return sig.Ext3Of(v).SigByteCount()
}

// blockBits converts blocks to datapath bits.
func (c *Collector) blockBits(blocks int) int { return 8 * c.g * blocks }

// storedBits is blockBits plus the extension overhead of one word.
func (c *Collector) storedBits(blocks int) int { return c.blockBits(blocks) + c.extBits() }

// extBits returns the per-word extension overhead of the collector.
func (c *Collector) extBits() int {
	if c.g == 2 {
		return sig.ExtHBits
	}
	if c.scheme == Scheme2 {
		return sig.Ext2Bits
	}
	return sig.Ext3Bits
}

// lineFillBits computes baseline and compressed bits to move one cache line
// through a data array, reading the line's current contents.
func (c *Collector) lineFillBits(addr uint32, line int, instruction bool) (int, int) {
	base := addr &^ uint32(line-1)
	baseline := 8 * line
	compressed := 0
	for off := 0; off < line; off += 4 {
		w := c.memory.Load32(base + uint32(off))
		if instruction {
			compressed += c.rc.FetchBits(w)
		} else {
			compressed += c.storedBits(c.sigBlocks(w))
		}
	}
	return baseline, compressed
}

// pcBlocks returns how many blocks of the PC change between consecutive
// fetch addresses (the serial PC unit processes low-order blocks until the
// carry dies out; a redirect rewrites up to the highest differing block).
func (c *Collector) pcBlocks(old, new uint32) int {
	diff := old ^ new
	if diff == 0 {
		return 1
	}
	blocks := 4 / c.g
	highest := 0
	for i := 0; i < blocks; i++ {
		mask := uint32(1)<<(8*c.g) - 1
		if (diff>>(8*c.g*i))&mask != 0 {
			highest = i
		}
	}
	return highest + 1
}

// Consume implements trace.Consumer.
func (c *Collector) Consume(e trace.Event) {
	c.counts.Insts++

	// Instruction fetch: word read plus the extension bit; fills move the
	// whole line in both machines.
	fillsBefore := c.hier.InstFills
	c.hier.Fetch(e.PC)
	fetchBase, fetchComp := baselineWord, 8*e.IFBytes+icomp.FetchExtBits
	if c.hier.InstFills != fillsBefore {
		fb, fc := c.lineFillBits(e.PC, c.hier.L1I.Config().LineBytes, true)
		fetchBase += fb
		fetchComp += fc
	}
	c.counts.Fetch.Add(fetchBase, fetchComp)

	// PC increment.
	pcBase := baselineWord
	pcComp := c.blockBits(c.pcBlocks(e.PC, e.NextPC))
	c.counts.PCIncr.Add(pcBase, pcComp)

	// Register file reads.
	var readBase, readComp int
	if e.ReadsA {
		readBase += baselineWord
		readComp += c.storedBits(c.srcBlocksA(e))
	}
	if e.ReadsB {
		readBase += baselineWord
		readComp += c.storedBits(c.srcBlocksB(e))
	}
	c.counts.RFRead.Add(readBase, readComp)

	// ALU.
	aluOps := e.ALUOps
	if c.g == 2 {
		aluOps = e.ALUHalfOps
	}
	c.counts.ALU.Add(baselineWord, c.blockBits(aluOps))

	// Data cache.
	if e.MemWidth > 0 {
		fillsBefore := c.hier.DataFills
		wbBefore := c.hier.L1D.Writeback
		c.hier.Data(e.Addr, e.Inst.IsStore())

		memBlocks := c.memBlocks(e)
		dataBase := baselineWord
		if e.Inst.IsStore() {
			dataBase = 8 * e.MemWidth // byte-enables exist in the baseline
		}
		dataComp := c.storedBits(memBlocks)
		if c.hier.DataFills != fillsBefore {
			fb, fc := c.lineFillBits(e.Addr, c.hier.L1D.Config().LineBytes, false)
			dataBase += fb
			dataComp += fc
		}
		if c.hier.L1D.Writeback != wbBefore {
			// Dirty victim pushed to L2: approximate its contents with the
			// current memory image (stores have already landed there).
			fb, fc := c.lineFillBits(e.Addr, c.hier.L1D.Config().LineBytes, false)
			dataBase += fb
			dataComp += fc
		}
		c.counts.DCacheData.Add(dataBase, dataComp)
		// Tags are not compressed: equal activity on both machines.
		c.counts.DCacheTag.Add(c.dataTagBits, c.dataTagBits)
	}

	// Register write-back.
	if e.HasDest {
		c.counts.RFWrite.Add(baselineWord, c.storedBits(c.wbBlocks(e)))
	}

	// Pipeline latches: instruction word, both operands, EX output, MEM
	// output.
	latchComp := 8*e.IFBytes + icomp.FetchExtBits
	if e.ReadsA {
		latchComp += c.storedBits(c.srcBlocksA(e))
	}
	if e.ReadsB {
		latchComp += c.storedBits(c.srcBlocksB(e))
	}
	exOut := c.exOutBlocks(e)
	latchComp += c.storedBits(exOut)
	memOut := exOut
	if e.Inst.IsLoad() {
		memOut = c.memBlocks(e)
	}
	latchComp += c.storedBits(memOut)
	c.counts.Latch.Add(baselineLatch, latchComp)
}

// storedBlocks selects the stored-block count for a register-file or
// write-back value under the collector's granularity and scheme: the
// annotated halfword count at g=2, a fresh byte count of the raw value under
// the 2-bit scheme, the annotated 3-bit byte count otherwise.
func (c *Collector) storedBlocks(bytes3, halves int, raw uint32) int {
	if c.g == 2 {
		return halves
	}
	if c.scheme == Scheme2 {
		return sig.SigBytes(raw)
	}
	return bytes3
}

func (c *Collector) srcBlocksA(e trace.Event) int {
	return c.storedBlocks(e.SrcBytesA, e.SrcHalvesA, e.SrcA)
}

func (c *Collector) srcBlocksB(e trace.Event) int {
	return c.storedBlocks(e.SrcBytesB, e.SrcHalvesB, e.SrcB)
}

// memBlocksVal returns the significant units a data access of the given
// width moves for value v under the collector's scheme.
func (c *Collector) memBlocksVal(memBytes, memHalves int, v uint32, width int) int {
	if c.g == 2 {
		return memHalves
	}
	if c.scheme == Scheme2 {
		n := sig.SigBytes(v)
		if n > width {
			n = width
		}
		return n
	}
	return memBytes
}

// memBlocks returns the significant units the D-cache data access moves
// under the collector's scheme.
func (c *Collector) memBlocks(e trace.Event) int {
	v := e.Loaded
	if e.Inst.IsStore() {
		v = e.StoreVal
	}
	return c.memBlocksVal(e.MemBytes, e.MemHalves, v, e.MemWidth)
}

// wbBlocks returns the significant units written back under the collector's
// scheme.
func (c *Collector) wbBlocks(e trace.Event) int {
	return c.storedBlocks(e.WBBytes, e.WBHalves, e.Result)
}

// exOutBlocks estimates the significant blocks leaving the EX stage: the
// result for writers, the store value for stores, one block otherwise.
func (c *Collector) exOutBlocks(e trace.Event) int {
	switch {
	case e.HasDest:
		return c.wbBlocks(e)
	case e.Inst.IsStore():
		return c.sigBlocks(e.StoreVal)
	default:
		return 1
	}
}

// Counts returns the accumulated tallies.
func (c *Collector) Counts() Counts { return c.counts }

// Stages lists the stage columns in Table 5/6 order.
func Stages() []string {
	return []string{"Fetch", "RFread", "RFwrite", "ALU", "D-cache data", "D-cache tag", "PCincrement", "Latches"}
}

// Row renders the reductions in Stages order.
func (c Counts) Row() []float64 {
	return []float64{
		c.Fetch.Reduction(),
		c.RFRead.Reduction(),
		c.RFWrite.Reduction(),
		c.ALU.Reduction(),
		c.DCacheData.Reduction(),
		c.DCacheTag.Reduction(),
		c.PCIncr.Reduction(),
		c.Latch.Reduction(),
	}
}
