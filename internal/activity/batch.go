// Batch consumption: trace.BatchConsumer implementation for the activity
// collectors.
//
// ConsumeBlock mirrors Consume exactly but reads the capture columns
// directly — significance counts are unpacked from the sig column with
// branch-free shifts (trace.PackedSig) and no Event is materialized, which
// removes the two 200-byte struct copies (EventAt plus the Consume argument)
// the scalar shim pays per instruction. TestCollectorBatchIdentical pins the
// two paths to bit-identical Counts.
//
// Collectors read cache-line contents from the program memory image at fill
// time, so they must be replayed with ReplayBlocksOn/BatchReplay over the
// benchmark's initial image: the engine's store-delimited spans guarantee a
// row's fill never observes a later row's store.
package activity

import (
	"repro/internal/icomp"
	"repro/internal/trace"
)

// ConsumeBlock implements trace.BatchConsumer.
func (c *Collector) ConsumeBlock(b *trace.Block) {
	lineI := c.hier.L1I.Config().LineBytes
	lineD := c.hier.L1D.Config().LineBytes
	n := len(b.Slot)
	for i := 0; i < n; i++ {
		sw := b.Slot[i]
		st := &b.Statics[sw&trace.SlotMask]
		sg := trace.PackedSig(b.Sig[i])
		pc := b.PC[i]
		c.counts.Insts++

		// Instruction fetch: word read plus the extension bit; fills move
		// the whole line in both machines.
		ifBits := 8*int(b.IFB[sw&trace.SlotMask]) + icomp.FetchExtBits
		fillsBefore := c.hier.InstFills
		c.hier.Fetch(pc)
		fetchBase, fetchComp := baselineWord, ifBits
		if c.hier.InstFills != fillsBefore {
			fb, fc := c.lineFillBits(pc, lineI, true)
			fetchBase += fb
			fetchComp += fc
		}
		c.counts.Fetch.Add(fetchBase, fetchComp)

		// PC increment.
		nextPC := b.EndNextPC
		if i+1 < n {
			nextPC = b.PC[i+1]
		}
		c.counts.PCIncr.Add(baselineWord, c.blockBits(c.pcBlocks(pc, nextPC)))

		// Register file reads.
		var readBase, readComp, srcBitsA, srcBitsB int
		if st.ReadsA {
			readBase += baselineWord
			srcBitsA = c.storedBits(c.storedBlocks(sg.SrcBytesA(), sg.SrcHalvesA(), b.SrcA[i]))
			readComp += srcBitsA
		}
		if st.ReadsB {
			readBase += baselineWord
			srcBitsB = c.storedBits(c.storedBlocks(sg.SrcBytesB(), sg.SrcHalvesB(), b.SrcB[i]))
			readComp += srcBitsB
		}
		c.counts.RFRead.Add(readBase, readComp)

		// ALU.
		aluOps := sg.ALUOps()
		if c.g == 2 {
			aluOps = sg.ALUHalfOps()
		}
		c.counts.ALU.Add(baselineWord, c.blockBits(aluOps))

		// Data cache.
		memBlocks := 0
		if st.MemWidth > 0 {
			addr := b.SrcA[i] + st.Simm
			memVal := b.Result[i] // loaded value for loads (incl. load-to-$zero)
			if st.IsStore {
				memVal = b.SrcB[i]
			}
			memBlocks = c.memBlocksVal(sg.MemBytes(), sg.MemHalves(), memVal, int(st.MemWidth))
			fillsBefore := c.hier.DataFills
			wbBefore := c.hier.L1D.Writeback
			c.hier.Data(addr, st.IsStore)

			dataBase := baselineWord
			if st.IsStore {
				dataBase = 8 * int(st.MemWidth) // byte-enables exist in the baseline
			}
			dataComp := c.storedBits(memBlocks)
			if c.hier.DataFills != fillsBefore {
				fb, fc := c.lineFillBits(addr, lineD, false)
				dataBase += fb
				dataComp += fc
			}
			if c.hier.L1D.Writeback != wbBefore {
				// Dirty victim pushed to L2: approximate its contents with
				// the current memory image (stores have already landed).
				fb, fc := c.lineFillBits(addr, lineD, false)
				dataBase += fb
				dataComp += fc
			}
			c.counts.DCacheData.Add(dataBase, dataComp)
			// Tags are not compressed: equal activity on both machines.
			c.counts.DCacheTag.Add(c.dataTagBits, c.dataTagBits)
		}

		// Register write-back.
		wbBlocks := 0
		if st.HasDest {
			wbBlocks = c.storedBlocks(sg.WBBytes(), sg.WBHalves(), b.Result[i])
			c.counts.RFWrite.Add(baselineWord, c.storedBits(wbBlocks))
		}

		// Pipeline latches: instruction word, both operands, EX output, MEM
		// output.
		latchComp := ifBits
		if st.ReadsA {
			latchComp += srcBitsA
		}
		if st.ReadsB {
			latchComp += srcBitsB
		}
		var exOut int
		switch {
		case st.HasDest:
			exOut = wbBlocks
		case st.IsStore:
			exOut = c.sigBlocks(b.SrcB[i])
		default:
			exOut = 1
		}
		latchComp += c.storedBits(exOut)
		memOut := exOut
		if st.Inst.IsLoad() {
			memOut = memBlocks
		}
		latchComp += c.storedBits(memOut)
		c.counts.Latch.Add(baselineLatch, latchComp)
	}
}
