package activity

import (
	"sort"

	"repro/internal/sig"
	"repro/internal/trace"
)

// PatternStats tallies the paper's Table 1: the relative frequency of each
// significant-byte pattern over register operand values.
type PatternStats struct {
	counts map[string]uint64
	total  uint64
}

// NewPatternStats returns an empty tally.
func NewPatternStats() *PatternStats {
	return &PatternStats{counts: make(map[string]uint64)}
}

// Consume implements trace.Consumer: every register source operand value is
// classified.
func (p *PatternStats) Consume(e trace.Event) {
	if e.ReadsA {
		p.add(e.SrcA)
	}
	if e.ReadsB {
		p.add(e.SrcB)
	}
}

func (p *PatternStats) add(v uint32) {
	p.counts[sig.PatternOf(v)]++
	p.total++
}

// Merge folds other's tallies into p. Counts are pure sums, so merging is
// order-independent: any grouping of per-benchmark PatternStats merged in
// any order yields the same tally as one collector fed the whole suite.
func (p *PatternStats) Merge(other *PatternStats) {
	for pat, n := range other.counts {
		p.counts[pat] += n
	}
	p.total += other.total
}

// PatternRow is one line of Table 1.
type PatternRow struct {
	Pattern    string
	Percent    float64
	Cumulative float64
	TwoBitOK   bool // expressible by the 2-bit count scheme
}

// Rows returns the table sorted by descending frequency.
func (p *PatternStats) Rows() []PatternRow {
	type kv struct {
		pat string
		n   uint64
	}
	var all []kv
	for _, pat := range sig.AllPatterns() {
		all = append(all, kv{pat, p.counts[pat]})
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].n > all[j].n })
	rows := make([]PatternRow, 0, len(all))
	cum := 0.0
	for _, e := range all {
		pct := 0.0
		if p.total > 0 {
			pct = 100 * float64(e.n) / float64(p.total)
		}
		cum += pct
		rows = append(rows, PatternRow{
			Pattern:    e.pat,
			Percent:    pct,
			Cumulative: cum,
			TwoBitOK:   twoBitPattern(e.pat),
		})
	}
	return rows
}

// twoBitPattern reports whether a pattern has all its extension bytes
// contiguous at the most-significant end (encodable by the 2-bit scheme).
func twoBitPattern(pat string) bool {
	seenSig := false
	for i := 0; i < len(pat); i++ {
		if pat[i] == 's' {
			seenSig = true
		} else if seenSig {
			return false
		}
	}
	return true
}

// TwoBitCoverage returns the percentage of operand values whose pattern the
// 2-bit scheme can encode (the paper reports ~94%).
func (p *PatternStats) TwoBitCoverage() float64 {
	if p.total == 0 {
		return 0
	}
	var n uint64
	for pat, c := range p.counts {
		if twoBitPattern(pat) {
			n += c
		}
	}
	return 100 * float64(n) / float64(p.total)
}

// Total returns the number of operand values classified.
func (p *PatternStats) Total() uint64 { return p.total }

// FetchStats tallies the §2.3 text numbers: dynamic format mix and mean
// fetched bytes per instruction.
type FetchStats struct {
	Insts     uint64
	Bytes     uint64
	ThreeByte uint64
	RFormat   uint64
	IFormat   uint64
	JFormat   uint64
	ImmUsers  uint64 // I-format instructions
	ImmFits8  uint64 // ... whose immediate compressed away
}

// Consume implements trace.Consumer.
func (f *FetchStats) Consume(e trace.Event) {
	f.Insts++
	f.Bytes += uint64(e.IFBytes)
	if e.IFBytes == 3 {
		f.ThreeByte++
	}
	switch e.Inst.Format().String() {
	case "R":
		f.RFormat++
	case "J":
		f.JFormat++
	default:
		f.IFormat++
		f.ImmUsers++
		if e.IFBytes == 3 {
			f.ImmFits8++
		}
	}
}

// Merge folds other's tallies into f (order-independent sums).
func (f *FetchStats) Merge(other *FetchStats) {
	f.Insts += other.Insts
	f.Bytes += other.Bytes
	f.ThreeByte += other.ThreeByte
	f.RFormat += other.RFormat
	f.IFormat += other.IFormat
	f.JFormat += other.JFormat
	f.ImmUsers += other.ImmUsers
	f.ImmFits8 += other.ImmFits8
}

// MeanBytes is the average fetched bytes per instruction (paper: 3.17).
func (f *FetchStats) MeanBytes() float64 {
	if f.Insts == 0 {
		return 0
	}
	return float64(f.Bytes) / float64(f.Insts)
}

// MeanBytesWithExt includes the per-word extension bit (paper: 3.29).
func (f *FetchStats) MeanBytesWithExt() float64 {
	if f.Insts == 0 {
		return 0
	}
	return f.MeanBytes() + 1.0/8
}
