package core

import (
	"strings"
	"testing"

	"repro/internal/pipeline"
)

const testProg = `
main:
    li   $t0, 100
    li   $t1, 0
loop:
    addu $t1, $t1, $t0
    addiu $t0, $t0, -1
    bgtz $t0, loop
    move $a0, $t1
    li   $v0, 1
    syscall
    li   $v0, 10
    syscall
`

func TestMachineEvaluateSource(t *testing.T) {
	m := NewMachine(Config{})
	rep, err := m.EvaluateSource(testProg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Output != "5050" {
		t.Fatalf("output: %q", rep.Output)
	}
	if rep.ExitCode != 0 {
		t.Fatalf("exit: %d", rep.ExitCode)
	}
	if len(rep.Pipelines) != len(pipeline.AllNames()) {
		t.Fatalf("models: %d", len(rep.Pipelines))
	}
	if len(rep.Activity) != 2 {
		t.Fatalf("granularities: %d", len(rep.Activity))
	}
	// Sanity on the embedded results.
	if rep.CPI(pipeline.NameBaseline32) <= 0 {
		t.Fatal("baseline CPI missing")
	}
	if rep.Overhead(pipeline.NameByteSerial) <= 0 {
		t.Fatal("byte-serial should cost CPI over the baseline")
	}
	if rep.Activity[1].PCIncr.Reduction() <= 0 {
		t.Fatal("expected PC-increment activity savings")
	}
}

func TestMachineSubsetConfig(t *testing.T) {
	m := NewMachine(Config{
		Models:        []string{pipeline.NameBaseline32},
		Granularities: []int{1},
	})
	rep, err := m.EvaluateSource(testProg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pipelines) != 1 || len(rep.Activity) != 1 {
		t.Fatalf("subset config not honoured: %d models, %d grans",
			len(rep.Pipelines), len(rep.Activity))
	}
	if rep.CPI(pipeline.NameByteSerial) != 0 {
		t.Fatal("unrequested model present")
	}
	if rep.Overhead(pipeline.NameBaseline32) != 0 {
		t.Fatal("baseline overhead must be zero")
	}
}

func TestMachineErrors(t *testing.T) {
	if _, err := NewMachine(Config{Models: []string{"warpdrive"}}).EvaluateSource(testProg); err == nil || !strings.Contains(err.Error(), "unknown pipeline model") {
		t.Fatalf("unknown model: err=%v", err)
	}
	if _, err := NewMachine(Config{Granularities: []int{3}}).EvaluateSource(testProg); err == nil || !strings.Contains(err.Error(), "granularity") {
		t.Fatalf("bad granularity: err=%v", err)
	}
	if _, err := NewMachine(Config{}).EvaluateSource("bogus $t0"); err == nil {
		t.Fatal("assembly errors must surface")
	}
	if _, err := NewMachine(Config{MaxInsts: 10}).EvaluateSource(testProg); err == nil || !strings.Contains(err.Error(), "instruction limit") {
		t.Fatalf("instruction limit: err=%v", err)
	}
}

func TestOverheadWithoutBaseline(t *testing.T) {
	m := NewMachine(Config{Models: []string{pipeline.NameByteSerial}})
	rep, err := m.EvaluateSource(testProg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overhead(pipeline.NameByteSerial) != 0 {
		t.Fatal("overhead without a baseline should be 0")
	}
}
