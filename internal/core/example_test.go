package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// Evaluate a small program end to end: functional output plus the CPI of
// two pipeline organizations.
func ExampleMachine_EvaluateSource() {
	m := core.NewMachine(core.Config{
		Models:        []string{pipeline.NameBaseline32, pipeline.NameByteSerial},
		Granularities: []int{1},
	})
	rep, err := m.EvaluateSource(`
main:
    li   $t0, 10
    li   $t1, 0
loop:
    addu $t1, $t1, $t0
    addiu $t0, $t0, -1
    bgtz $t0, loop
    move $a0, $t1
    li   $v0, 1
    syscall
    li   $v0, 10
    syscall
`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("output=%s insts=%d models=%d\n", rep.Output, rep.Insts, len(rep.Pipelines))
	fmt.Printf("byte-serial costs more cycles: %v\n",
		rep.CPI(pipeline.NameByteSerial) > rep.CPI(pipeline.NameBaseline32))
	fmt.Printf("PC activity saved: %v\n", rep.Activity[1].PCIncr.Reduction() > 50)
	// Output:
	// output=55 insts=37 models=2
	// byte-serial costs more cycles: true
	// PC activity saved: true
}
