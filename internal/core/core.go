// Package core is the top-level façade of the significance-compression
// library: it wires the functional interpreter, the instruction recoder,
// the activity collectors and any set of pipeline timing models into a
// single Machine that evaluates a workload end to end.
//
// The paper's contribution decomposes into three mechanisms, each in its
// own package, all orchestrated here:
//
//   - data significance compression (package sig) — 2/3-bit extension
//     fields marking sign-extension bytes, at byte or halfword granularity;
//   - the significance-gated ALU (package sigalu) — byte-serial arithmetic
//     that touches only significant bytes (§2.5, Table 4);
//   - instruction significance compression (package icomp) — the R-format
//     recode + permutation and I-format immediate split that fetch most
//     instructions as three bytes (§2.3, Figures 2a–2c).
//
// A Machine runs a program once and reports, for that single trace, the
// CPI of every requested pipeline organization (§4–§6) and the per-stage
// activity reductions (§2.9, Tables 5/6).
package core

import (
	"fmt"

	"repro/internal/activity"
	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/icomp"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// Config selects what a Machine measures.
type Config struct {
	// Models lists the pipeline organizations to time. Empty means all
	// seven (pipeline.AllNames).
	Models []string
	// Granularities lists the activity-collection block sizes in bytes
	// (1 = byte, 2 = halfword). Empty means both.
	Granularities []int
	// Recoder supplies the instruction compression tables. Nil means the
	// static default top-8 (icomp.DefaultTopFuncts); for suite-profiled
	// recoding use trace.SuiteRecoder.
	Recoder *icomp.Recoder
	// MaxInsts bounds execution (0 = one hundred million).
	MaxInsts uint64
}

func (c Config) withDefaults() Config {
	if len(c.Models) == 0 {
		c.Models = pipeline.AllNames()
	}
	if len(c.Granularities) == 0 {
		c.Granularities = []int{1, 2}
	}
	if c.Recoder == nil {
		c.Recoder = icomp.MustNewRecoder(icomp.DefaultTopFuncts())
	}
	if c.MaxInsts == 0 {
		c.MaxInsts = 100_000_000
	}
	return c
}

// Report is the outcome of one evaluation.
type Report struct {
	// Insts is the dynamic instruction count of the run.
	Insts uint64
	// Output is whatever the program printed through syscalls.
	Output string
	// ExitCode is the program's exit status.
	ExitCode uint32
	// Pipelines holds one timing result per requested model.
	Pipelines map[string]pipeline.Result
	// Activity holds per-granularity stage tallies (keys 1 and 2).
	Activity map[int]activity.Counts
}

// CPI returns the CPI of one model in the report (0 if absent).
func (r *Report) CPI(model string) float64 {
	if p, ok := r.Pipelines[model]; ok {
		return p.CPI()
	}
	return 0
}

// Overhead returns model CPI relative to the baseline, as a +fraction
// (e.g. 0.79 for the paper's byte-serial). Returns 0 when either is absent.
func (r *Report) Overhead(model string) float64 {
	base := r.CPI(pipeline.NameBaseline32)
	if base == 0 {
		return 0
	}
	return r.CPI(model)/base - 1
}

// Machine evaluates programs under significance compression.
type Machine struct {
	cfg Config
}

// NewMachine builds a Machine from cfg (zero value selects everything).
func NewMachine(cfg Config) *Machine {
	return &Machine{cfg: cfg.withDefaults()}
}

// EvaluateProgram runs an assembled program.
func (m *Machine) EvaluateProgram(p *asm.Program) (*Report, error) {
	memory := mem.NewMemory()
	p.LoadInto(memory)
	c := cpu.New(memory, p.Entry, asm.DefaultStackTop)
	return m.evaluate(c)
}

// EvaluateSource assembles src and runs it.
func (m *Machine) EvaluateSource(src string) (*Report, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	return m.EvaluateProgram(p)
}

func (m *Machine) evaluate(c *cpu.CPU) (*Report, error) {
	models := make([]*pipeline.Model, 0, len(m.cfg.Models))
	consumers := make([]trace.Consumer, 0, len(m.cfg.Models)+len(m.cfg.Granularities))
	for _, n := range m.cfg.Models {
		pm := pipeline.New(n)
		if pm == nil {
			return nil, fmt.Errorf("core: unknown pipeline model %q", n)
		}
		models = append(models, pm)
		consumers = append(consumers, pm)
	}
	collectors := make(map[int]*activity.Collector, len(m.cfg.Granularities))
	for _, g := range m.cfg.Granularities {
		if g != 1 && g != 2 {
			return nil, fmt.Errorf("core: unsupported granularity %d (want 1 or 2)", g)
		}
		col := activity.NewCollector(g, m.cfg.Recoder, c.Mem)
		collectors[g] = col
		consumers = append(consumers, col)
	}

	var n uint64
	for !c.Done {
		if n >= m.cfg.MaxInsts {
			return nil, fmt.Errorf("core: instruction limit %d exceeded", m.cfg.MaxInsts)
		}
		e, err := c.Step()
		if err != nil {
			return nil, err
		}
		ev := trace.Annotate(e, m.cfg.Recoder)
		for _, cons := range consumers {
			cons.Consume(ev)
		}
		n++
	}

	rep := &Report{
		Insts:     c.Retired,
		Output:    c.Output.String(),
		ExitCode:  c.ExitCode,
		Pipelines: make(map[string]pipeline.Result, len(models)),
		Activity:  make(map[int]activity.Counts, len(collectors)),
	}
	for _, pm := range models {
		rep.Pipelines[pm.Name()] = pm.Result()
	}
	for g, col := range collectors {
		rep.Activity[g] = col.Counts()
	}
	return rep, nil
}
