package simsvc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// testPool builds a pool with its own metrics registry for direct tests.
func testPool(t *testing.T, workers, maxQueued int) (*pool, *Metrics) {
	t.Helper()
	m := &Metrics{}
	p := newPool(workers, maxQueued, m, nil)
	t.Cleanup(p.close)
	return p, m
}

func TestPoolCancelledSubmit(t *testing.T) {
	p, _ := testPool(t, 1, 0)
	block := make(chan struct{})
	go p.do(context.Background(), func() { <-block })
	time.Sleep(10 * time.Millisecond) // let the only worker pick the blocker up
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	ran := false
	if err := p.do(ctx, func() { ran = true }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if ran {
		t.Fatal("cancelled submission still ran")
	}
	close(block)
}

// Regression for the seed's process-killing bug: a panic in a job must be
// contained as a typed error, and the worker that caught it must keep
// serving later jobs.
func TestPoolPanicContained(t *testing.T) {
	p, m := testPool(t, 1, 0)
	err := p.do(context.Background(), func() { panic("boom") })
	if err == nil {
		t.Fatal("panicking job returned nil error")
	}
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T is not *PanicError", err)
	}
	if pe.Val != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("panic payload: val=%v stack=%d bytes", pe.Val, len(pe.Stack))
	}
	if got := m.panics.Load(); got != 1 {
		t.Fatalf("panics metric = %d, want 1", got)
	}

	// The single worker survived: it must still run ordinary jobs.
	ran := false
	if err := p.do(context.Background(), func() { ran = true }); err != nil {
		t.Fatalf("job after panic: %v", err)
	}
	if !ran {
		t.Fatal("worker did not run the job after containing a panic")
	}
}

// With every worker busy and the wait queue full, further admitted
// submissions are shed immediately with ErrOverloaded; internal
// submissions are not.
func TestPoolAdmissionShedding(t *testing.T) {
	p, m := testPool(t, 1, 1)
	block := make(chan struct{})
	defer close(block)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.do(context.Background(), func() { <-block }) }() // runs
	time.Sleep(10 * time.Millisecond)
	go func() { defer wg.Done(); p.do(context.Background(), func() {}) }() // queued (depth 1)
	time.Sleep(10 * time.Millisecond)

	if err := p.do(context.Background(), func() {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := m.shed.Load(); got != 1 {
		t.Fatalf("shed metric = %d, want 1", got)
	}
	if depth := m.queued.Load(); depth != 1 {
		t.Fatalf("queuedDepth gauge = %d, want 1 (the queued job)", depth)
	}

	// Internal fan-out bypasses admission control: it queues instead of
	// being shed.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.doInternal(ctx, func() {}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("internal submit err = %v, want deadline exceeded (queued, not shed)", err)
	}
	if got := m.shed.Load(); got != 1 {
		t.Fatalf("internal submission was shed: metric = %d", got)
	}
}

// The queued-depth gauge returns to zero once the queue drains.
func TestPoolQueuedDepthGauge(t *testing.T) {
	p, m := testPool(t, 2, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.do(context.Background(), func() { time.Sleep(5 * time.Millisecond) })
		}()
	}
	wg.Wait()
	if depth := m.queued.Load(); depth != 0 {
		t.Fatalf("queuedDepth gauge = %d after drain, want 0", depth)
	}
}
