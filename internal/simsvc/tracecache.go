package simsvc

import (
	"container/list"
	"context"
	"errors"
	"os"
	"sync"

	"repro/internal/activity"
	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/icomp"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// scalarReplayForBench forces the replay path back onto the event-at-a-time
// engine instead of the column-block batch engine. Benchmark-only knob:
// BenchmarkSweepReplayVsExecute flips it to measure the scalar arm. Never
// set in production, and only toggled before any request is in flight.
var scalarReplayForBench bool

// DefaultTraceCacheMB is the captured-trace budget when Config.TraceCacheMB
// is zero: enough for the whole served suite (~90 MB at 24 B/instruction)
// with headroom.
const DefaultTraceCacheMB = 256

// traceEntry is one benchmark's captured trace as held by the trace cache,
// with a per-granularity memo of the activity-collector counts. The
// collectors are model-independent (they see the same replayed events for
// every pipeline model), so a sweep over N models pays for one activity
// replay per granularity instead of N.
//
// The replay engine comes in two residency tiers behind trace.Replayer:
// a fully decoded *trace.Capture (resident tier, ~24 B/instruction) or a
// *trace.MappedCapture streaming frames out of a mapped SIGCAP02 spill
// file (mapped tier, ~index + one frame buffer against the budget; the
// file pages are clean, read-only, and shared with every co-located shard
// through the OS page cache). mapped is non-nil exactly when rep is the
// mapped tier, so eviction knows to unmap instead of spill.
type traceEntry struct {
	rep    trace.Replayer
	mapped *trace.MappedCapture // non-nil iff rep streams from a mapped file
	bytes  int64

	act [3]actMemo // indexed by granularity (1 = byte, 2 = halfword)
}

// close releases a mapped entry's handle (deferred past in-flight replays
// by its refcount); resident entries have nothing to release.
func (e *traceEntry) close() {
	if e.mapped != nil {
		e.mapped.Close()
	}
}

// actMemo caches one granularity's activity counts. Like experiments.memo
// it does NOT latch failures: a cancelled first replay leaves it empty so
// the next request retries instead of inheriting the error forever.
type actMemo struct {
	mu     sync.Mutex
	done   bool
	counts activity.Counts
}

// activityCounts replays the trace through an activity collector at gran,
// memoized per entry. Concurrent callers for the same granularity serialize
// on the memo; whoever completes first fills it for everyone after.
func (e *traceEntry) activityCounts(ctx context.Context, gran int, rc *icomp.Recoder) (activity.Counts, error) {
	m := &e.act[gran]
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return m.counts, nil
	}
	mem, err := e.rep.NewMemory()
	if err != nil {
		return activity.Counts{}, err
	}
	col := activity.NewCollector(gran, rc, mem)
	replay := e.rep.ReplayBlocksOn
	if scalarReplayForBench {
		replay = e.rep.ReplayOn
	}
	if err := replay(ctx, mem, rc, col); err != nil {
		return activity.Counts{}, err
	}
	m.counts, m.done = col.Counts(), true
	return m.counts, nil
}

// traceCache is a byte-accounted LRU of captured traces, keyed by benchmark
// name. Unlike the count-bounded result LRU, capacity is a memory budget:
// entries are admitted by their SizeBytes and the least-recently-used
// captures are evicted until the total fits. A capture larger than the
// whole budget is never cached (the request that built it still uses it).
type traceCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	order    *list.List // front = most recent; values are *traceCacheEntry
	items    map[string]*list.Element
	metrics  *Metrics
}

type traceCacheEntry struct {
	key   string
	entry *traceEntry
}

func newTraceCache(maxBytes int64, m *Metrics) *traceCache {
	return &traceCache{
		maxBytes: maxBytes,
		order:    list.New(),
		items:    make(map[string]*list.Element),
		metrics:  m,
	}
}

// get returns the cached capture for key, refreshing its recency.
func (c *traceCache) get(key string) (*traceEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*traceCacheEntry).entry, true
}

// add stores e under key, evicting least-recently-used captures until the
// byte budget holds. It returns the evicted entries so the caller can count
// them and demote their captures to the trace dir, plus the entry this one
// displaced (whose mapped handle, if any, must be closed) — I/O and unmaps
// happen outside this lock.
func (c *traceCache) add(key string, e *traceEntry) (evicted []*traceCacheEntry, replaced *traceEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.bytes > c.maxBytes {
		return nil, nil // larger than the whole budget: never cached
	}
	if el, ok := c.items[key]; ok {
		old := el.Value.(*traceCacheEntry)
		replaced = old.entry
		c.bytes += e.bytes - old.entry.bytes
		old.entry = e
		c.order.MoveToFront(el)
		c.metrics.traceCacheBytes.Store(c.bytes)
		return nil, replaced
	}
	c.items[key] = c.order.PushFront(&traceCacheEntry{key: key, entry: e})
	c.bytes += e.bytes
	evicted = c.evictOverBudget()
	c.metrics.traceCacheBytes.Store(c.bytes)
	return evicted, nil
}

// evictOverBudget drops LRU entries until the budget holds. Caller holds mu.
func (c *traceCache) evictOverBudget() []*traceCacheEntry {
	var evicted []*traceCacheEntry
	for c.bytes > c.maxBytes {
		oldest := c.order.Back()
		old := oldest.Value.(*traceCacheEntry)
		c.order.Remove(oldest)
		delete(c.items, old.key)
		c.bytes -= old.entry.bytes
		evicted = append(evicted, old)
	}
	return evicted
}

// refresh re-accounts key's entry from its capture's current SizeBytes.
// Replays grow a capture after admission — each new recoder profile adds a
// fetch-size memo — so without a refresh the LRU's byte ledger drifts below
// reality and the budget silently overshoots. The refreshed entry is
// treated as just-used (moved to front); if the growth pushes the cache
// over budget, LRU entries are evicted and returned for demotion.
func (c *traceCache) refresh(key string) []*traceCacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	e := el.Value.(*traceCacheEntry).entry
	nb := int64(e.rep.SizeBytes())
	if nb == e.bytes {
		return nil
	}
	c.bytes += nb - e.bytes
	e.bytes = nb
	c.order.MoveToFront(el)
	evicted := c.evictOverBudget()
	c.metrics.traceCacheBytes.Store(c.bytes)
	return evicted
}

func (c *traceCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *traceCache) bytesUsed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// mappedLen counts entries on the mapped (streaming) residency tier.
func (c *traceCache) mappedLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, el := range c.items {
		if el.Value.(*traceCacheEntry).entry.mapped != nil {
			n++
		}
	}
	return n
}

// captureFlight deduplicates concurrent captures of the same benchmark: the
// first requester interprets, everyone else waits for its capture. Shaped
// like flightGroup but carrying traceEntry results.
type captureFlight struct {
	mu    sync.Mutex
	calls map[string]*captureCall
}

type captureCall struct {
	done  chan struct{}
	entry *traceEntry
	err   error
}

func newCaptureFlight() *captureFlight {
	return &captureFlight{calls: make(map[string]*captureCall)}
}

func (g *captureFlight) do(ctx context.Context, key string, fn func() (*traceEntry, error)) (entry *traceEntry, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.entry, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &captureCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.entry, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.entry, false, c.err
}

// tracesEnabled reports whether the capture/replay path is on.
func (s *Service) tracesEnabled() bool { return s.traces != nil }

// TraceCacheLen returns the number of cached captures (0 when disabled).
func (s *Service) TraceCacheLen() int {
	if s.traces == nil {
		return 0
	}
	return s.traces.len()
}

// TraceCacheBytes returns the cached captures' accounted bytes.
func (s *Service) TraceCacheBytes() int64 {
	if s.traces == nil {
		return 0
	}
	return s.traces.bytesUsed()
}

// TraceMappedEntries returns how many cached captures are on the mapped
// (streaming SIGCAP02) residency tier rather than fully decoded.
func (s *Service) TraceMappedEntries() int {
	if s.traces == nil {
		return 0
	}
	return s.traces.mappedLen()
}

// captureFor returns b's captured trace, from the trace cache when
// possible; concurrent misses for the same benchmark share one interpreter
// run via the capture singleflight. With a trace dir configured, a miss
// tries the persisted capture before re-interpreting, and a fresh capture
// is persisted for future shards/restarts. The result-cache fault points
// guard the trace cache's seams the same way they guard the result LRU: an
// injected get failure degrades to a miss (re-capture), an injected put
// failure skips caching — neither fails the request.
func (s *Service) captureFor(ctx context.Context, b bench.Benchmark) (*traceEntry, error) {
	if e, ok := s.traceGet(ctx, b.Name); ok {
		s.metrics.traceCacheHits.Add(1)
		return e, nil
	}
	s.metrics.traceCacheMisses.Add(1)
	e, shared, err := s.tflight.do(ctx, b.Name, func() (*traceEntry, error) {
		e := s.loadSpilled(b)
		if e == nil {
			cp, err := trace.CaptureRun(ctx, b)
			if err != nil {
				return nil, err
			}
			s.metrics.captures.Add(1)
			s.spillCapture(cp)
			e = &traceEntry{rep: cp, bytes: int64(cp.SizeBytes())}
		}
		s.tracePut(ctx, b.Name, e)
		return e, nil
	})
	if shared && err == nil {
		s.metrics.flightShared.Add(1)
	}
	return e, err
}

// loadSpilled tries the trace dir for a previously persisted capture of b.
// SIGCAP02 spills are mapped, not decoded: the warm start costs the footer
// index and a frame buffer, the columns stream lazily at replay time, and
// co-located shards share the clean file pages through the OS page cache.
// SIGCAP01 spills (pre-migration directories) and platforms or configs
// without mmap fall back to the eager full decode. Any failure — no dir,
// no file, corruption, wrong benchmark — is a plain miss; the caller
// re-interprets.
func (s *Service) loadSpilled(b bench.Benchmark) *traceEntry {
	if s.traceDir == "" {
		return nil
	}
	path := trace.CaptureFilePath(s.traceDir, b.Name)
	if !s.traceNoMmap {
		if mc, err := trace.OpenMappedCapture(path); err == nil {
			// The file names its benchmark, but the served suite is
			// authoritative: a capture whose benchmark diverges from ours
			// replays the wrong trace.
			if got := mc.Bench(); got.Name != b.Name || got.Checksum != b.Checksum {
				mc.Close()
				return nil
			}
			s.metrics.traceSpillLoads.Add(1)
			s.metrics.traceMapLoads.Add(1)
			return &traceEntry{rep: mc, mapped: mc, bytes: int64(mc.SizeBytes())}
		}
	}
	cp, err := trace.ReadCaptureFile(path)
	if err != nil {
		return nil
	}
	if got := cp.Bench(); got.Name != b.Name || got.Checksum != b.Checksum {
		return nil
	}
	s.metrics.traceSpillLoads.Add(1)
	return &traceEntry{rep: cp, bytes: int64(cp.SizeBytes())}
}

// spillCapture persists cp to the trace dir unless it is already there.
// Captures are deterministic per benchmark, so an existing file is as good
// as ours; write errors are swallowed (the dir is an optimization, never
// a dependency).
func (s *Service) spillCapture(cp *trace.Capture) {
	if s.traceDir == "" {
		return
	}
	if _, err := os.Stat(trace.CaptureFilePath(s.traceDir, cp.Bench().Name)); err == nil {
		return
	}
	if _, err := trace.WriteCaptureFile(s.traceDir, cp); err != nil {
		return
	}
	s.metrics.traceSpills.Add(1)
}

// spillEvicted demotes evicted entries to the trace dir and counts the
// evictions. Resident captures are persisted (if not already on disk);
// mapped entries just close — their bytes ARE the disk file, so eviction
// is an unmap, not a write. In-flight replays keep the mapping alive via
// its refcount and finish normally; the next request for the benchmark
// re-maps. Runs outside the cache lock.
func (s *Service) spillEvicted(evicted []*traceCacheEntry) {
	if len(evicted) == 0 {
		return
	}
	s.metrics.traceCacheEvictions.Add(uint64(len(evicted)))
	for _, te := range evicted {
		if te.entry.mapped != nil {
			te.entry.close()
			continue
		}
		s.spillCapture(te.entry.rep.(*trace.Capture))
	}
}

// traceRefresh re-accounts key's cache entry after replays may have grown
// its capture's memos (each new recoder profile adds a per-slot fetch-size
// table), evicting and demoting if the growth breaks the budget.
func (s *Service) traceRefresh(key string) {
	if s.traces == nil {
		return
	}
	s.spillEvicted(s.traces.refresh(key))
}

func (s *Service) traceGet(ctx context.Context, key string) (*traceEntry, bool) {
	if err := s.faults.Fire(ctx, faultinject.PointCacheGet); err != nil {
		return nil, false
	}
	return s.traces.get(key)
}

func (s *Service) tracePut(ctx context.Context, key string, e *traceEntry) {
	if err := s.faults.Fire(ctx, faultinject.PointCachePut); err != nil {
		return
	}
	evicted, replaced := s.traces.add(key, e)
	if replaced != nil {
		// Displaced under racing misses: release the loser's mapping (its
		// refcount defers the unmap past any replay still using it).
		replaced.close()
	}
	s.spillEvicted(evicted)
}

// executeReplay is the capture-backed twin of the live half of execute: it
// resolves the benchmark's capture (sharing it across concurrent requests
// and models) and replays it instead of re-interpreting. Responses are
// bit-identical to the live path regardless of residency tier. A mapped
// entry can be evicted — and its handle closed — between our cache hit and
// the replay; that loses nothing but the mapping, so it is retried exactly
// once: the retry's captureFor misses and re-maps (or re-captures) fresh.
func (s *Service) executeReplay(ctx context.Context, req Request, rc *icomp.Recoder, b bench.Benchmark) (*Response, error) {
	resp, err := s.replayOnce(ctx, req, rc, b)
	if err != nil && errors.Is(err, trace.ErrMappedClosed) {
		resp, err = s.replayOnce(ctx, req, rc, b)
	}
	return resp, err
}

func (s *Service) replayOnce(ctx context.Context, req Request, rc *icomp.Recoder, b bench.Benchmark) (*Response, error) {
	e, err := s.captureFor(ctx, b)
	if err != nil {
		return nil, err
	}

	if req.Model == "" {
		br, err := experiments.RunBenchReplay(ctx, e.rep, rc, nil)
		if err != nil {
			return nil, err
		}
		s.traceRefresh(b.Name)
		full := experiments.EncodeBench(br)
		return &Response{
			Bench: b.Name,
			Insts: br.Insts,
			Full:  &full,
		}, nil
	}

	// Pipeline models never read program memory, so the model replay skips
	// the shadow image entirely; the activity counts come from the
	// per-entry memo (one memory-backed replay per granularity, shared by
	// every model of a sweep).
	m := pipeline.New(req.Model)
	if scalarReplayForBench {
		err = e.rep.ReplayOn(ctx, nil, rc, m)
	} else {
		err = e.rep.ReplayBlocks(ctx, rc, m)
	}
	if err != nil {
		return nil, err
	}
	counts, err := e.activityCounts(ctx, req.Gran, rc)
	if err != nil {
		return nil, err
	}
	// Replaying under a new recoder profile grows the capture's memo; keep
	// the byte-budgeted LRU's ledger honest.
	s.traceRefresh(b.Name)
	r := m.Result()
	stalls := make(map[string]uint64, len(r.Stalls))
	for k, v := range r.Stalls {
		stalls[string(k)] = v
	}
	return &Response{
		Bench:       b.Name,
		Model:       req.Model,
		Granularity: req.Gran,
		Insts:       r.Insts,
		Cycles:      r.Cycles,
		CPI:         r.CPI(),
		Stalls:      stalls,
		Activity:    experiments.SavingMap(counts),
	}, nil
}
