package simsvc

import (
	"context"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
)

// partialKeyPrefix namespaces partial-evaluation cache/singleflight keys.
// Benchmark names never contain a newline, so no per-job or suite key can
// collide with a partial key.
const partialKeyPrefix = "partial\n"

// Partial runs the full evaluation over a subset of the served suite and
// returns the shard's share of a scattered suite: encoded per-benchmark
// results plus raw suite-level collector state (see experiments.PartialSuite).
// The recoder and function-code profile are still those of the whole served
// suite — partitioning the work must not change the science — so a gateway
// merging partials from shards that serve the same suite reproduces the
// single-process suite document byte for byte. Results are cached in the
// LRU and deduplicated via singleflight exactly like Suite.
func (s *Service) Partial(ctx context.Context, benches []string) (*Response, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	s.metrics.requests.Add(1)
	if len(benches) == 0 {
		return nil, invalidf("partial evaluation needs at least one benchmark")
	}
	subset := make([]bench.Benchmark, 0, len(benches))
	seen := make(map[string]bool, len(benches))
	for _, name := range benches {
		// benchFor resolves registered user programs too: a gateway
		// scattering a mixed suite sends each shard its share by name.
		b, err := s.benchFor(name)
		if err != nil {
			s.metrics.invalid.Add(1)
			return nil, err
		}
		if seen[name] {
			s.metrics.invalid.Add(1)
			return nil, invalidf("duplicate benchmark %q in partial evaluation", name)
		}
		seen[name] = true
		subset = append(subset, b)
	}
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	key := partialKeyPrefix + strings.Join(benches, ",")
	if resp, ok := s.cacheGet(ctx, key); ok {
		s.metrics.cacheHits.Add(1)
		return serveCopy(resp, true), nil
	}
	s.metrics.cacheMisses.Add(1)
	resp, shared, err := s.flight.do(ctx, key, func() (*Response, error) {
		out, runErr := s.runPartial(ctx, subset)
		if runErr != nil {
			return nil, runErr
		}
		s.cachePut(ctx, key, out)
		return out, nil
	})
	if shared {
		s.metrics.flightShared.Add(1)
	}
	if err != nil {
		if countsAsFailure(err) {
			s.metrics.failures.Add(1)
		}
		return nil, err
	}
	return serveCopy(resp, false), nil
}

// runPartial evaluates the subset through the same per-benchmark unit as
// the full suite and packages the mergeable share.
func (s *Service) runPartial(ctx context.Context, subset []bench.Benchmark) (*Response, error) {
	rc, functs, err := s.recoderProfile()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	outs, err := s.evalBenches(ctx, rc, subset)
	if err != nil {
		return nil, err
	}
	master := experiments.NewSuiteCollectors()
	ps := &experiments.PartialSuite{
		Functs: experiments.EncodeFuncts(functs, rc),
	}
	var insts uint64
	for i := range outs {
		ps.Benchmarks = append(ps.Benchmarks, experiments.EncodeBench(outs[i].br))
		insts += outs[i].br.Insts
		master.Merge(outs[i].cols)
	}
	ps.Collectors = master.State()
	elapsed := time.Since(start)
	s.metrics.observeLatency(elapsed)
	return &Response{
		Insts:     insts,
		Partial:   ps,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}, nil
}
