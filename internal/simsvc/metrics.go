package simsvc

import (
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the service's counter and latency registry. All methods are
// safe for concurrent use; the exported view is an immutable Snapshot.
type Metrics struct {
	requests       atomic.Uint64
	cacheHits      atomic.Uint64
	cacheMisses    atomic.Uint64
	cacheEvictions atomic.Uint64
	executions     atomic.Uint64
	flightShared   atomic.Uint64
	failures       atomic.Uint64
	invalid        atomic.Uint64
	panics         atomic.Uint64 // job/handler panics contained
	shed           atomic.Uint64 // submissions rejected by admission control
	retries        atomic.Uint64 // transient-error re-attempts
	breakerOpen    atomic.Uint64 // circuit-breaker open transitions
	queued         atomic.Int64  // gauge: submissions waiting for a worker

	programsAccepted    atomic.Uint64 // /v1/program submissions accepted into the registry
	programsRejected    atomic.Uint64 // submissions refused by the validation wall
	programsQuarantined atomic.Uint64 // submissions quarantined after faulting the harness
	tenantSheds         atomic.Uint64 // submissions shed by per-tenant quotas

	captures            atomic.Uint64 // benchmark traces captured (interpreter runs)
	traceCacheHits      atomic.Uint64
	traceCacheMisses    atomic.Uint64
	traceCacheEvictions atomic.Uint64
	traceCacheBytes     atomic.Int64  // gauge: accounted bytes of cached captures
	traceSpills         atomic.Uint64 // captures persisted to the trace dir
	traceSpillLoads     atomic.Uint64 // cache misses served from the trace dir
	traceMapLoads       atomic.Uint64 // spill loads served by mapping (no eager decode)

	mu       sync.Mutex
	latCount uint64
	latSum   float64
	latMin   float64
	latMax   float64
}

// observeLatency records one successful simulation's wall-clock time.
func (m *Metrics) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.latCount == 0 || ms < m.latMin {
		m.latMin = ms
	}
	if ms > m.latMax {
		m.latMax = ms
	}
	m.latCount++
	m.latSum += ms
}

// meanLatency returns the mean observed simulation latency (0 before the
// first observation); the pool's load-aware Retry-After hint keys off it.
func (m *Metrics) meanLatency() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.latCount == 0 {
		return 0
	}
	return time.Duration(m.latSum / float64(m.latCount) * float64(time.Millisecond))
}

// LatencySnapshot summarizes observed simulation latencies in milliseconds.
type LatencySnapshot struct {
	Count      uint64  `json:"count"`
	MeanMillis float64 `json:"meanMillis"`
	MinMillis  float64 `json:"minMillis"`
	MaxMillis  float64 `json:"maxMillis"`
}

// Snapshot is a point-in-time copy of every metric, JSON-ready for the
// /metrics endpoint.
type Snapshot struct {
	Requests        uint64          `json:"requests"`
	CacheHits       uint64          `json:"cacheHits"`
	CacheMisses     uint64          `json:"cacheMisses"`
	CacheEvictions  uint64          `json:"cacheEvictions"`
	Executions      uint64          `json:"executions"`
	FlightShared    uint64          `json:"flightShared"`
	Failures        uint64          `json:"failures"`
	InvalidRequests uint64          `json:"invalidRequests"`
	Panics          uint64          `json:"panics"`
	Shed            uint64          `json:"shed"`
	Retries         uint64          `json:"retries"`
	BreakerOpen     uint64          `json:"breakerOpen"`
	QueuedDepth     int64           `json:"queuedDepth"`
	ProgramsOK      uint64          `json:"programsAccepted"`
	ProgramsRej     uint64          `json:"programsRejected"`
	ProgramsQuar    uint64          `json:"programsQuarantined"`
	TenantSheds     uint64          `json:"tenantSheds"`
	Captures        uint64          `json:"captures"`
	TraceCacheHits  uint64          `json:"traceCacheHits"`
	TraceCacheMiss  uint64          `json:"traceCacheMisses"`
	TraceCacheEvict uint64          `json:"traceCacheEvictions"`
	TraceCacheBytes int64           `json:"traceCacheBytes"`
	TraceSpills     uint64          `json:"traceSpills"`
	TraceSpillLoads uint64          `json:"traceSpillLoads"`
	TraceMapLoads   uint64          `json:"traceMapLoads"`
	SimLatency      LatencySnapshot `json:"simulationLatency"`
}

// Snapshot returns a consistent copy of the current counters.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Requests:        m.requests.Load(),
		CacheHits:       m.cacheHits.Load(),
		CacheMisses:     m.cacheMisses.Load(),
		CacheEvictions:  m.cacheEvictions.Load(),
		Executions:      m.executions.Load(),
		FlightShared:    m.flightShared.Load(),
		Failures:        m.failures.Load(),
		InvalidRequests: m.invalid.Load(),
		Panics:          m.panics.Load(),
		Shed:            m.shed.Load(),
		Retries:         m.retries.Load(),
		BreakerOpen:     m.breakerOpen.Load(),
		QueuedDepth:     m.queued.Load(),
		ProgramsOK:      m.programsAccepted.Load(),
		ProgramsRej:     m.programsRejected.Load(),
		ProgramsQuar:    m.programsQuarantined.Load(),
		TenantSheds:     m.tenantSheds.Load(),
		Captures:        m.captures.Load(),
		TraceCacheHits:  m.traceCacheHits.Load(),
		TraceCacheMiss:  m.traceCacheMisses.Load(),
		TraceCacheEvict: m.traceCacheEvictions.Load(),
		TraceCacheBytes: m.traceCacheBytes.Load(),
		TraceSpills:     m.traceSpills.Load(),
		TraceSpillLoads: m.traceSpillLoads.Load(),
		TraceMapLoads:   m.traceMapLoads.Load(),
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s.SimLatency = LatencySnapshot{Count: m.latCount, MinMillis: m.latMin, MaxMillis: m.latMax}
	if m.latCount > 0 {
		s.SimLatency.MeanMillis = m.latSum / float64(m.latCount)
	}
	return s
}
