package simsvc

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used result cache. Both reads
// and writes refresh an entry's recency; the oldest entry is evicted when a
// new key would exceed the capacity.
type lruCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recent; values are *cacheEntry
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	resp *Response
}

func newLRU(max int) *lruCache {
	return &lruCache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached response for key, refreshing its recency.
func (c *lruCache) get(key string) (*Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

// add stores resp under key and reports whether an older entry was evicted.
func (c *lruCache) add(key string, resp *Response) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.order.MoveToFront(el)
		return false
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, resp: resp})
	if c.order.Len() <= c.max {
		return false
	}
	oldest := c.order.Back()
	c.order.Remove(oldest)
	delete(c.items, oldest.Value.(*cacheEntry).key)
	return true
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
