package simsvc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/stats"
)

// SweepSummary aggregates a finished sweep: per-model mean CPI over the
// swept benchmarks and a JSON-renderable CPI table in the layout of the
// paper's figures. So that models stay comparable after partial failures,
// MeanCPI is restricted to the benchmarks where every swept model succeeded
// (CompleteBenches of them); a model with no such benchmark has no MeanCPI
// entry and renders as "err" in the table's AVG row. FailedByModel counts
// each model's failed benchmarks.
type SweepSummary struct {
	Jobs            int                `json:"jobs"`
	Cached          int                `json:"cached"`
	Failed          int                `json:"failed"`
	CompleteBenches int                `json:"completeBenchmarks"`
	FailedByModel   map[string]int     `json:"failedByModel,omitempty"`
	MeanCPI         map[string]float64 `json:"meanCPI"`
	CPITable        stats.TableJSON    `json:"cpiTable"`
	ElapsedMS       float64            `json:"elapsedMillis"`
}

// sweepItem is one completed (benchmark × model) unit.
type sweepItem struct {
	bench, model string
	resp         *Response
	err          error
}

// SweepAccumulator folds completed (benchmark × model) results into a
// SweepSummary. It is the single summary implementation behind both the
// in-process Sweep and the cluster gateway's scattered sweep, so a sweep
// fanned over shards summarizes exactly like a local one. Not safe for
// concurrent use: callers feed it from one collector goroutine.
type SweepAccumulator struct {
	gran            int
	benches, models []string
	sum             *SweepSummary
	cpi             map[string]map[string]float64 // bench -> model -> CPI
	start           time.Time
}

// NewSweepAccumulator starts a summary over the given grid (benches and
// models give the table's row/column order).
func NewSweepAccumulator(gran int, benches, models []string) *SweepAccumulator {
	return &SweepAccumulator{
		gran:    gran,
		benches: benches,
		models:  models,
		sum:     &SweepSummary{MeanCPI: make(map[string]float64)},
		cpi:     make(map[string]map[string]float64, len(benches)),
		start:   time.Now(),
	}
}

// Add records one completed unit and returns the emit-ready Response: the
// result itself on success, or an error Response carrying err for the
// NDJSON stream on failure.
func (a *SweepAccumulator) Add(bench, model string, resp *Response, err error) *Response {
	a.sum.Jobs++
	if err != nil {
		a.sum.Failed++
		if a.sum.FailedByModel == nil {
			a.sum.FailedByModel = make(map[string]int)
		}
		a.sum.FailedByModel[model]++
		return &Response{Bench: bench, Model: model, Granularity: a.gran, Error: err.Error()}
	}
	if resp.Cached {
		a.sum.Cached++
	}
	if a.cpi[bench] == nil {
		a.cpi[bench] = make(map[string]float64, len(a.models))
	}
	a.cpi[bench][model] = resp.CPI
	return resp
}

// Summary finalizes and returns the sweep summary: per-model means over
// the benchmarks where every model succeeded, and the CPI table in the
// layout of the paper's figures.
func (a *SweepAccumulator) Summary() *SweepSummary {
	sum, cpi, models, benches := a.sum, a.cpi, a.models, a.benches
	t := stats.NewTable(fmt.Sprintf("Sweep CPI (granularity %d)", a.gran), append([]string{"benchmark"}, models...)...)
	// Means are taken over the benchmarks where every model succeeded, so
	// per-model averages cover the same subset and stay comparable; a model
	// with no complete benchmark gets no mean at all (rendered "err"),
	// never a fake 0.000 from averaging an empty slice.
	distinct := make(map[string]struct{}, len(models))
	for _, mn := range models {
		distinct[mn] = struct{}{}
	}
	var complete []string
	for _, bn := range benches {
		if len(cpi[bn]) == len(distinct) {
			complete = append(complete, bn)
		}
	}
	sum.CompleteBenches = len(complete)
	for _, mn := range models {
		var xs []float64
		for _, bn := range complete {
			xs = append(xs, cpi[bn][mn])
		}
		if len(xs) > 0 {
			sum.MeanCPI[mn] = stats.Mean(xs)
		}
	}
	for _, bn := range benches {
		cells := []string{bn}
		for _, mn := range models {
			if v, ok := cpi[bn][mn]; ok {
				cells = append(cells, fmt.Sprintf("%.3f", v))
			} else {
				cells = append(cells, "err")
			}
		}
		t.AddStringRow(cells...)
	}
	avg := []string{"AVG"}
	for _, mn := range models {
		if v, ok := sum.MeanCPI[mn]; ok {
			avg = append(avg, fmt.Sprintf("%.3f", v))
		} else {
			avg = append(avg, "err")
		}
	}
	t.AddStringRow(avg...)
	sum.CPITable = t.JSON()
	sum.ElapsedMS = float64(time.Since(a.start)) / float64(time.Millisecond)
	return sum
}

// Sweep fans every (benchmark × model) pair out across the worker pool at
// the given granularity and calls emit for each result as it completes
// (completion order, one goroutine). Empty benches/models select the full
// served suite / every model. Per-job failures become Responses with Error
// set and are tallied in the summary; emit returning an error, or ctx
// ending, aborts the sweep.
func (s *Service) Sweep(ctx context.Context, gran int, benches, models []string, emit func(*Response) error) (*SweepSummary, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	if len(benches) == 0 {
		for _, b := range s.benches {
			benches = append(benches, b.Name)
		}
	}
	if len(models) == 0 {
		models = s.Models()
	}
	if gran == 0 {
		gran = 1
	}
	// Validate the whole grid up front so a bad name fails fast instead of
	// surfacing mid-stream.
	for _, bn := range benches {
		for _, mn := range models {
			if _, err := s.validate(Request{Bench: bn, Model: mn, Gran: gran}); err != nil {
				return nil, err
			}
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	ch := make(chan sweepItem)
	var wg sync.WaitGroup
	for _, bn := range benches {
		for _, mn := range models {
			wg.Add(1)
			go func(bn, mn string) {
				defer wg.Done()
				// Internal admission: this burst belongs to one already-
				// admitted sweep, so its jobs are not load-shed.
				resp, err := s.simulate(ctx, Request{Bench: bn, Model: mn, Gran: gran}, false)
				select {
				case ch <- sweepItem{bench: bn, model: mn, resp: resp, err: err}:
				case <-ctx.Done():
				}
			}(bn, mn)
		}
	}
	go func() {
		wg.Wait()
		close(ch)
	}()

	acc := NewSweepAccumulator(gran, benches, models)
	for it := range ch {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp := acc.Add(it.bench, it.model, it.resp, it.err)
		if emit != nil {
			if err := emit(resp); err != nil {
				cancel()
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return acc.Summary(), nil
}
