package simsvc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/stats"
)

// SweepSummary aggregates a finished sweep: per-model mean CPI over the
// swept benchmarks and a JSON-renderable CPI table in the layout of the
// paper's figures. So that models stay comparable after partial failures,
// MeanCPI is restricted to the benchmarks where every swept model succeeded
// (CompleteBenches of them); a model with no such benchmark has no MeanCPI
// entry and renders as "err" in the table's AVG row. FailedByModel counts
// each model's failed benchmarks.
type SweepSummary struct {
	Jobs            int                `json:"jobs"`
	Cached          int                `json:"cached"`
	Failed          int                `json:"failed"`
	CompleteBenches int                `json:"completeBenchmarks"`
	FailedByModel   map[string]int     `json:"failedByModel,omitempty"`
	MeanCPI         map[string]float64 `json:"meanCPI"`
	CPITable        stats.TableJSON    `json:"cpiTable"`
	ElapsedMS       float64            `json:"elapsedMillis"`
}

// sweepItem is one completed (benchmark × model) unit.
type sweepItem struct {
	bench, model string
	resp         *Response
	err          error
}

// Sweep fans every (benchmark × model) pair out across the worker pool at
// the given granularity and calls emit for each result as it completes
// (completion order, one goroutine). Empty benches/models select the full
// served suite / every model. Per-job failures become Responses with Error
// set and are tallied in the summary; emit returning an error, or ctx
// ending, aborts the sweep.
func (s *Service) Sweep(ctx context.Context, gran int, benches, models []string, emit func(*Response) error) (*SweepSummary, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	if len(benches) == 0 {
		for _, b := range s.benches {
			benches = append(benches, b.Name)
		}
	}
	if len(models) == 0 {
		models = s.Models()
	}
	if gran == 0 {
		gran = 1
	}
	// Validate the whole grid up front so a bad name fails fast instead of
	// surfacing mid-stream.
	for _, bn := range benches {
		for _, mn := range models {
			if _, err := s.validate(Request{Bench: bn, Model: mn, Gran: gran}); err != nil {
				return nil, err
			}
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	start := time.Now()

	ch := make(chan sweepItem)
	var wg sync.WaitGroup
	for _, bn := range benches {
		for _, mn := range models {
			wg.Add(1)
			go func(bn, mn string) {
				defer wg.Done()
				// Internal admission: this burst belongs to one already-
				// admitted sweep, so its jobs are not load-shed.
				resp, err := s.simulate(ctx, Request{Bench: bn, Model: mn, Gran: gran}, false)
				select {
				case ch <- sweepItem{bench: bn, model: mn, resp: resp, err: err}:
				case <-ctx.Done():
				}
			}(bn, mn)
		}
	}
	go func() {
		wg.Wait()
		close(ch)
	}()

	sum := &SweepSummary{MeanCPI: make(map[string]float64)}
	cpi := make(map[string]map[string]float64, len(benches)) // bench -> model -> CPI
	for it := range ch {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sum.Jobs++
		resp := it.resp
		if it.err != nil {
			sum.Failed++
			if sum.FailedByModel == nil {
				sum.FailedByModel = make(map[string]int)
			}
			sum.FailedByModel[it.model]++
			resp = &Response{Bench: it.bench, Model: it.model, Granularity: gran, Error: it.err.Error()}
		} else {
			if resp.Cached {
				sum.Cached++
			}
			if cpi[it.bench] == nil {
				cpi[it.bench] = make(map[string]float64, len(models))
			}
			cpi[it.bench][it.model] = resp.CPI
		}
		if emit != nil {
			if err := emit(resp); err != nil {
				cancel()
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	t := stats.NewTable(fmt.Sprintf("Sweep CPI (granularity %d)", gran), append([]string{"benchmark"}, models...)...)
	// Means are taken over the benchmarks where every model succeeded, so
	// per-model averages cover the same subset and stay comparable; a model
	// with no complete benchmark gets no mean at all (rendered "err"),
	// never a fake 0.000 from averaging an empty slice.
	distinct := make(map[string]struct{}, len(models))
	for _, mn := range models {
		distinct[mn] = struct{}{}
	}
	var complete []string
	for _, bn := range benches {
		if len(cpi[bn]) == len(distinct) {
			complete = append(complete, bn)
		}
	}
	sum.CompleteBenches = len(complete)
	for _, mn := range models {
		var xs []float64
		for _, bn := range complete {
			xs = append(xs, cpi[bn][mn])
		}
		if len(xs) > 0 {
			sum.MeanCPI[mn] = stats.Mean(xs)
		}
	}
	for _, bn := range benches {
		cells := []string{bn}
		for _, mn := range models {
			if v, ok := cpi[bn][mn]; ok {
				cells = append(cells, fmt.Sprintf("%.3f", v))
			} else {
				cells = append(cells, "err")
			}
		}
		t.AddStringRow(cells...)
	}
	avg := []string{"AVG"}
	for _, mn := range models {
		if v, ok := sum.MeanCPI[mn]; ok {
			avg = append(avg, fmt.Sprintf("%.3f", v))
		} else {
			avg = append(avg, "err")
		}
	}
	t.AddStringRow(avg...)
	sum.CPITable = t.JSON()
	sum.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return sum, nil
}
