package simsvc

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/bench"
	"repro/internal/icomp"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

func mustTestBench(t *testing.T, name string) bench.Benchmark {
	t.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return b
}

// churnRecoders builds n recoders with distinct profiles (rotations of the
// default top-funct list), simulating a fleet of requests that each arrive
// with their own recoding.
func churnRecoders(n int) []*icomp.Recoder {
	base := icomp.DefaultTopFuncts()
	out := make([]*icomp.Recoder, n)
	for i := range out {
		rot := make([]isa.Funct, len(base))
		for j := range base {
			rot[j] = base[(j+i)%len(base)]
		}
		out[i] = icomp.MustNewRecoder(rot)
	}
	return out
}

// TestTraceCacheRefreshUnderRecoderChurn pins the accounting fix: replaying
// a cached capture under new recoder profiles grows its fetch-size memo,
// and refresh must fold that growth back into the LRU's byte ledger — and
// evict when the growth breaks the budget — instead of letting the cache
// drift over budget unaccounted.
func TestTraceCacheRefreshUnderRecoderChurn(t *testing.T) {
	ctx := context.Background()
	cp, err := trace.CaptureRun(ctx, mustTestBench(t, "dijkstra"))
	if err != nil {
		t.Fatal(err)
	}
	e := &traceEntry{rep: cp, bytes: int64(cp.SizeBytes())}
	base := e.bytes

	var m Metrics
	// Budget fits the entry plus a little memo growth, not a lot of it.
	c := newTraceCache(base+1024, &m)
	if ev, _ := c.add("dijkstra", e); len(ev) != 0 {
		t.Fatalf("admission evicted %d entries", len(ev))
	}
	if c.bytesUsed() != base {
		t.Fatalf("accounted %d bytes, want %d", c.bytesUsed(), base)
	}

	// One extra profile: the capture grows but still fits. refresh must
	// re-account without evicting.
	rcs := churnRecoders(4)
	if err := cp.ReplayBlocks(ctx, rcs[0], pipeline.NewBaseline32()); err != nil {
		t.Fatal(err)
	}
	if err := cp.ReplayBlocks(ctx, rcs[1], pipeline.NewBaseline32()); err != nil {
		t.Fatal(err)
	}
	grown := int64(cp.SizeBytes())
	if grown <= base {
		t.Fatalf("capture did not grow under churn: %d <= %d", grown, base)
	}
	if ev := c.refresh("dijkstra"); len(ev) != 0 {
		t.Fatalf("in-budget refresh evicted %d entries", len(ev))
	}
	if c.bytesUsed() != grown || m.traceCacheBytes.Load() != grown {
		t.Fatalf("refresh accounted %d bytes (gauge %d), want %d",
			c.bytesUsed(), m.traceCacheBytes.Load(), grown)
	}

	// More profiles: the memo (bounded at maxIFBMemos inside the capture)
	// now exceeds the budget headroom, so refresh must evict the entry.
	for _, rc := range rcs[2:] {
		if err := cp.ReplayBlocks(ctx, rc, pipeline.NewBaseline32()); err != nil {
			t.Fatal(err)
		}
	}
	if int64(cp.SizeBytes()) <= base+1024 {
		t.Skip("memo growth under budget headroom; churn too cheap to force eviction")
	}
	ev := c.refresh("dijkstra")
	if len(ev) != 1 || ev[0].key != "dijkstra" {
		t.Fatalf("over-budget refresh evicted %v, want the grown entry", ev)
	}
	if c.len() != 0 || c.bytesUsed() != 0 {
		t.Fatalf("after eviction: %d entries, %d bytes", c.len(), c.bytesUsed())
	}
	// A refresh for a key that is no longer cached is a no-op.
	if ev := c.refresh("dijkstra"); ev != nil {
		t.Fatalf("refresh of evicted key returned %v", ev)
	}
}

// TestTraceDirSpillAndReload drives the full demote/promote cycle through
// the service: captures persist to the trace dir, an evicted benchmark
// reloads from disk instead of re-interpreting, and the reloaded capture's
// responses are byte-identical to the live path.
func TestTraceDirSpillAndReload(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	// 2 MB holds one ~1.4 MB capture at a time, so the two benchmarks
	// evict each other.
	s := testService(t, Config{Workers: 2, TraceCacheMB: 2, TraceDir: dir}, "dijkstra", "g711dec")
	live := testService(t, Config{Workers: 2, TraceCacheMB: -1}, "dijkstra", "g711dec")

	req1 := Request{Bench: "dijkstra", Model: pipeline.NameByteSerial}
	req2 := Request{Bench: "g711dec", Model: pipeline.NameByteSerial}

	if _, err := s.Simulate(ctx, req1); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ReadCaptureFile(trace.CaptureFilePath(dir, "dijkstra")); err != nil {
		t.Fatalf("capture was not persisted on first touch: %v", err)
	}
	if _, err := s.Simulate(ctx, req2); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics().Snapshot()
	if m.TraceSpills != 2 {
		t.Fatalf("spills = %d, want 2 (write-through on each capture)", m.TraceSpills)
	}
	if m.TraceCacheEvict != 1 {
		t.Fatalf("evictions = %d, want 1", m.TraceCacheEvict)
	}

	// dijkstra was evicted; touching it again must reload the spilled
	// capture, not re-interpret. A different model defeats the result LRU.
	req1b := Request{Bench: "dijkstra", Model: pipeline.NameBaseline32}
	got, err := s.Simulate(ctx, req1b)
	if err != nil {
		t.Fatal(err)
	}
	m = s.Metrics().Snapshot()
	if m.TraceSpillLoads != 1 {
		t.Fatalf("spill loads = %d, want 1", m.TraceSpillLoads)
	}
	if m.Captures != 2 {
		t.Fatalf("captures = %d, want 2 (reload must not re-interpret)", m.Captures)
	}

	// The reloaded capture must serve byte-identical responses.
	want, err := live.Simulate(ctx, req1b)
	if err != nil {
		t.Fatal(err)
	}
	normalize := func(r *Response) string {
		c := *r
		c.ElapsedMS = 0
		c.Cached = false
		j, err := json.Marshal(&c)
		if err != nil {
			t.Fatal(err)
		}
		return string(j)
	}
	if normalize(got) != normalize(want) {
		t.Fatalf("reloaded capture diverges from live path:\nreplay: %s\nlive:   %s", normalize(got), normalize(want))
	}
}

// TestTraceDirWarmStart checks the sharding story: a second service sharing
// the first one's trace dir serves its first request from disk without a
// single interpreter run.
func TestTraceDirWarmStart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	req := Request{Bench: "g711dec", Model: pipeline.NameByteSerial}

	s1 := testService(t, Config{Workers: 2, TraceDir: dir}, "g711dec")
	first, err := s1.Simulate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if m := s1.Metrics().Snapshot(); m.Captures != 1 || m.TraceSpills != 1 {
		t.Fatalf("shard 1: captures=%d spills=%d, want 1/1", m.Captures, m.TraceSpills)
	}

	s2 := testService(t, Config{Workers: 2, TraceDir: dir}, "g711dec")
	second, err := s2.Simulate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	m := s2.Metrics().Snapshot()
	if m.Captures != 0 {
		t.Fatalf("warm shard ran %d interpreter captures, want 0", m.Captures)
	}
	if m.TraceSpillLoads != 1 {
		t.Fatalf("warm shard spill loads = %d, want 1", m.TraceSpillLoads)
	}
	if first.CPI != second.CPI || first.Cycles != second.Cycles || first.Insts != second.Insts {
		t.Fatalf("warm shard diverged: %+v vs %+v", second, first)
	}
}

// TestTraceDirCorruptFileDegrades writes garbage where a capture should be;
// the service must fall back to interpreting, not fail or serve junk.
func TestTraceDirCorruptFileDegrades(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	if err := os.WriteFile(trace.CaptureFilePath(dir, "g711dec"), []byte("not a capture"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := testService(t, Config{Workers: 2, TraceDir: dir}, "g711dec")
	if _, err := s.Simulate(ctx, Request{Bench: "g711dec", Model: pipeline.NameByteSerial}); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics().Snapshot()
	if m.Captures != 1 {
		t.Fatalf("captures = %d, want 1 (corrupt file must force re-interpretation)", m.Captures)
	}
	if m.TraceSpillLoads != 0 {
		t.Fatalf("spill loads = %d, want 0", m.TraceSpillLoads)
	}
}

// TestTraceDirMappedTier pins the mapped residency tier: a shard warm-started
// from another shard's SIGCAP02 spills maps the files instead of decoding
// them, so (a) no interpreter runs, (b) every load is a map load, (c) both
// benchmarks fit a budget that forced the cold shard to evict — a mapped
// entry is accounted at roughly index + one frame buffer, not the decoded
// columns — and (d) the responses stay byte-identical to the cold shard's.
// With TraceNoMmap the same warm start falls back to eager decoding and the
// responses still match.
func TestTraceDirMappedTier(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	req1 := Request{Bench: "dijkstra", Model: pipeline.NameByteSerial, Gran: 1}
	req2 := Request{Bench: "g711dec", Model: pipeline.NameByteSerial, Gran: 1}

	normalize := func(r *Response) string {
		c := *r
		c.ElapsedMS = 0
		c.Cached = false
		j, err := json.Marshal(&c)
		if err != nil {
			t.Fatal(err)
		}
		return string(j)
	}

	// Cold shard: interprets and spills; the 2 MB budget holds only one
	// decoded (~1.4 MB) capture at a time, so the second bench evicts the
	// first.
	cold := testService(t, Config{Workers: 2, TraceCacheMB: 2, TraceDir: dir}, "dijkstra", "g711dec")
	w1, err := cold.Simulate(ctx, req1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := cold.Simulate(ctx, req2)
	if err != nil {
		t.Fatal(err)
	}
	if n := cold.TraceMappedEntries(); n != 0 {
		t.Fatalf("cold shard reports %d mapped entries, want 0 (captures are resident)", n)
	}
	if m := cold.Metrics().Snapshot(); m.TraceCacheEvict != 1 {
		t.Fatalf("cold shard evictions = %d, want 1 (budget fits one decoded capture)", m.TraceCacheEvict)
	}
	coldBytes := cold.TraceCacheBytes() // one resident capture

	// Warm shard sharing the dir under the same budget: both entries are
	// mapped, nothing is interpreted, nothing is evicted.
	warm := testService(t, Config{Workers: 2, TraceCacheMB: 2, TraceDir: dir}, "dijkstra", "g711dec")
	g1, err := warm.Simulate(ctx, req1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := warm.Simulate(ctx, req2)
	if err != nil {
		t.Fatal(err)
	}
	m := warm.Metrics().Snapshot()
	if m.Captures != 0 {
		t.Fatalf("warm shard ran %d interpreter captures, want 0", m.Captures)
	}
	if m.TraceSpillLoads != 2 || m.TraceMapLoads != 2 {
		t.Fatalf("warm shard loads: spill=%d map=%d, want 2/2", m.TraceSpillLoads, m.TraceMapLoads)
	}
	if n := warm.TraceMappedEntries(); n != 2 {
		t.Fatalf("warm shard mapped entries = %d, want 2", n)
	}
	if m.TraceCacheEvict != 0 {
		t.Fatalf("warm shard evicted %d entries; both mapped entries must fit the budget", m.TraceCacheEvict)
	}
	if wb := warm.TraceCacheBytes(); wb >= coldBytes/4 {
		t.Fatalf("two mapped entries account %d bytes, one resident capture %d: mapped tier is not cheap",
			wb, coldBytes)
	}
	if normalize(g1) != normalize(w1) || normalize(g2) != normalize(w2) {
		t.Fatalf("mapped replay diverges from resident replay:\nmapped:   %s\nresident: %s",
			normalize(g1), normalize(w1))
	}

	// TraceNoMmap: same warm start, eager tier only, same answers.
	eager := testService(t, Config{Workers: 2, TraceCacheMB: 2, TraceDir: dir, TraceNoMmap: true}, "dijkstra", "g711dec")
	e1, err := eager.Simulate(ctx, req1)
	if err != nil {
		t.Fatal(err)
	}
	m = eager.Metrics().Snapshot()
	if m.TraceMapLoads != 0 || m.TraceSpillLoads != 1 {
		t.Fatalf("TraceNoMmap loads: spill=%d map=%d, want 1/0", m.TraceSpillLoads, m.TraceMapLoads)
	}
	if n := eager.TraceMappedEntries(); n != 0 {
		t.Fatalf("TraceNoMmap shard mapped entries = %d, want 0", n)
	}
	if normalize(e1) != normalize(w1) {
		t.Fatalf("eager warm replay diverges:\neager: %s\ncold:  %s", normalize(e1), normalize(w1))
	}
}
