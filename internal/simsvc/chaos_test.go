// Chaos suite: drives the service with every fault class the injector can
// throw (latency, transient error, cancellation, panic) and asserts the
// operational invariants — the daemon never dies, workers survive panics,
// no goroutine leaks, the cache never holds a failed result, metrics
// reconcile with observed responses, and a fault-free (re)run is
// byte-identical to an uninstrumented service. Runs in the ordinary
// `go test` mode, no build tags.
package simsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pipeline"
)

// chaosService is testService with an armed injector.
func chaosService(t *testing.T, cfg Config, inj *faultinject.Injector, benches ...string) *Service {
	t.Helper()
	cfg.Faults = inj
	return testService(t, cfg, benches...)
}

// Latency faults at every seam slow everything down but break nothing:
// under concurrent load on mixed keys, every request still succeeds.
func TestChaosLatency(t *testing.T) {
	checkLeaks(t)
	inj := faultinject.MustNew(11,
		faultinject.Rule{Point: faultinject.PointCacheGet, Kind: faultinject.KindLatency, Latency: 2 * time.Millisecond, Prob: 0.5},
		faultinject.Rule{Point: faultinject.PointCachePut, Kind: faultinject.KindLatency, Latency: 2 * time.Millisecond, Prob: 0.5},
		faultinject.Rule{Point: faultinject.PointPoolPickup, Kind: faultinject.KindLatency, Latency: 5 * time.Millisecond, Prob: 0.5},
		faultinject.Rule{Point: faultinject.PointFlightJoin, Kind: faultinject.KindLatency, Latency: 2 * time.Millisecond, Prob: 0.5},
		faultinject.Rule{Point: faultinject.PointTraceRunStart, Kind: faultinject.KindLatency, Latency: 5 * time.Millisecond, Prob: 0.5},
	)
	s := chaosService(t, Config{Workers: 4}, inj)

	models := pipeline.AllNames()
	var wg sync.WaitGroup
	errs := make([]error, 24)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := Request{Bench: "g711dec", Model: models[i%len(models)], Gran: 1 + i%2}
			_, errs[i] = s.Simulate(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d under latency faults: %v", i, err)
		}
	}
	if m := s.Metrics().Snapshot(); m.Failures != 0 || m.Panics != 0 {
		t.Fatalf("latency-only chaos produced failures=%d panics=%d", m.Failures, m.Panics)
	}
}

// Transient errors are retried with backoff; with retry budget left the
// request succeeds and the retries metric records the re-attempts.
func TestChaosTransientErrorRetried(t *testing.T) {
	checkLeaks(t)
	inj := faultinject.MustNew(7,
		faultinject.Rule{Point: faultinject.PointTraceRunStart, Kind: faultinject.KindError, Prob: 0.5},
	)
	s := chaosService(t, Config{Workers: 2, Retries: 8}, inj)

	// Sequential loop over distinct keys: deterministic rng consumption for
	// the seeded schedule, and no singleflight collapsing.
	models := pipeline.AllNames()
	ok := 0
	for i := 0; i < 2*len(models); i++ {
		req := Request{Bench: "g711dec", Model: models[i%len(models)], Gran: 1 + i/len(models)}
		if _, err := s.Simulate(context.Background(), req); err != nil {
			t.Fatalf("request %d exhausted %d retries: %v", i, 8, err)
		}
		ok++
	}
	m := s.Metrics().Snapshot()
	if m.Retries == 0 {
		t.Fatal("no retries recorded despite 50% transient-error rate")
	}
	if m.Failures != 0 {
		t.Fatalf("failures = %d, want 0 (all retried to success)", m.Failures)
	}
	if s.CacheLen() != ok {
		t.Fatalf("cache holds %d entries for %d successful keys", s.CacheLen(), ok)
	}
}

// Without a retry budget transient errors surface as failures — but
// gracefully: the error is reported, nothing is cached, and the service
// keeps serving.
func TestChaosTransientErrorSurfaces(t *testing.T) {
	checkLeaks(t)
	inj := faultinject.MustNew(3,
		faultinject.Rule{Point: faultinject.PointTraceRunStart, Kind: faultinject.KindError, Prob: 1},
	)
	s := chaosService(t, Config{Workers: 2}, inj)
	req := Request{Bench: "g711dec", Model: pipeline.NameBaseline32}
	const n = 5
	for i := 0; i < n; i++ {
		_, err := s.Simulate(context.Background(), req)
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("request %d: err = %v, want injected error", i, err)
		}
	}
	m := s.Metrics().Snapshot()
	if m.Failures != n || m.Retries != 0 {
		t.Fatalf("failures=%d retries=%d, want %d/0", m.Failures, m.Retries, n)
	}
	if s.CacheLen() != 0 {
		t.Fatalf("failed results were cached: %d entries", s.CacheLen())
	}
	// Faults off: the very next request succeeds — no latched state.
	inj.SetEnabled(false)
	if resp, err := s.Simulate(context.Background(), req); err != nil || resp.CPI <= 0 {
		t.Fatalf("post-chaos request: resp=%+v err=%v", resp, err)
	}
}

// Injected cancellations are handled like real client disconnects: the
// request fails with context.Canceled, nothing is cached, nothing counts
// as a server-side failure, and the daemon keeps serving.
func TestChaosCancel(t *testing.T) {
	checkLeaks(t)
	inj := faultinject.MustNew(5,
		faultinject.Rule{Point: faultinject.PointTraceRunStart, Kind: faultinject.KindCancel, Prob: 1},
	)
	s := chaosService(t, Config{Workers: 2}, inj)
	req := Request{Bench: "g711dec", Model: pipeline.NameBaseline32}
	for i := 0; i < 4; i++ {
		if _, err := s.Simulate(context.Background(), req); !errors.Is(err, context.Canceled) {
			t.Fatalf("request %d: err = %v, want context.Canceled", i, err)
		}
	}
	m := s.Metrics().Snapshot()
	if m.Failures != 0 {
		t.Fatalf("injected cancellations counted as failures: %d", m.Failures)
	}
	if s.CacheLen() != 0 {
		t.Fatalf("cancelled results were cached: %d entries", s.CacheLen())
	}
	inj.SetEnabled(false)
	if _, err := s.Simulate(context.Background(), req); err != nil {
		t.Fatalf("post-chaos request: %v", err)
	}
}

// A panic inside a simulation job is contained by the pool: the caller
// gets ErrPanic, the worker survives, the process does not crash, and the
// metrics reconcile exactly with the observed responses.
func TestChaosPanicContainedAndReconciled(t *testing.T) {
	checkLeaks(t)
	inj := faultinject.MustNew(9,
		faultinject.Rule{Point: faultinject.PointTraceRunStart, Kind: faultinject.KindPanic, Prob: 1},
	)
	s := chaosService(t, Config{Workers: 2}, inj)
	req := Request{Bench: "g711dec", Model: pipeline.NameBaseline32}
	const n = 5
	observedPanics := 0
	for i := 0; i < n; i++ {
		_, err := s.Simulate(context.Background(), req)
		if !errors.Is(err, ErrPanic) {
			t.Fatalf("request %d: err = %v, want ErrPanic", i, err)
		}
		var pe *PanicError
		if !errors.As(err, &pe) || len(pe.Stack) == 0 {
			t.Fatalf("request %d: panic error carries no stack", i)
		}
		observedPanics++
	}
	m := s.Metrics().Snapshot()
	if m.Panics != uint64(observedPanics) {
		t.Fatalf("panics metric = %d, observed %d panic responses", m.Panics, observedPanics)
	}
	if m.Requests != n || m.Failures != n || m.Executions != 0 || m.CacheHits != 0 {
		t.Fatalf("metrics do not reconcile: %+v", m)
	}
	if s.CacheLen() != 0 {
		t.Fatalf("panicked results were cached: %d entries", s.CacheLen())
	}

	// Every worker survived: saturate the pool with ordinary jobs.
	inj.SetEnabled(false)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Simulate(context.Background(), Request{Bench: "g711dec", Model: pipeline.NameByteSerial, Gran: 1 + i%2})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("post-panic job %d: %v", i, err)
		}
	}
}

// Repeated panics on one (bench, model) open its circuit breaker: further
// requests are quarantined without burning a worker, and after the
// cooldown a probe closes the circuit again.
func TestChaosBreakerQuarantine(t *testing.T) {
	checkLeaks(t)
	inj := faultinject.MustNew(13,
		faultinject.Rule{Point: faultinject.PointTraceRunStart, Kind: faultinject.KindPanic, Prob: 1},
	)
	s := chaosService(t, Config{Workers: 2, BreakerThreshold: 3, BreakerCooldown: 50 * time.Millisecond}, inj)
	req := Request{Bench: "g711dec", Model: pipeline.NameBaseline32}
	for i := 0; i < 3; i++ {
		if _, err := s.Simulate(context.Background(), req); !errors.Is(err, ErrPanic) {
			t.Fatalf("request %d: err = %v, want ErrPanic", i, err)
		}
	}
	var q *QuarantinedError
	if _, err := s.Simulate(context.Background(), req); !errors.As(err, &q) {
		t.Fatalf("err = %v, want QuarantinedError after %d panics", err, 3)
	}
	m := s.Metrics().Snapshot()
	if m.Panics != 3 {
		t.Fatalf("quarantined request still executed: panics = %d", m.Panics)
	}
	if m.BreakerOpen != 1 {
		t.Fatalf("breakerOpen = %d, want 1", m.BreakerOpen)
	}
	// Healthy keys are unaffected by the quarantine.
	inj.SetEnabled(false)
	if _, err := s.Simulate(context.Background(), Request{Bench: "g711dec", Model: pipeline.NameByteSerial}); err != nil {
		t.Fatalf("healthy key rejected: %v", err)
	}
	// After the cooldown the probe succeeds and the circuit closes.
	time.Sleep(60 * time.Millisecond)
	if _, err := s.Simulate(context.Background(), req); err != nil {
		t.Fatalf("probe after cooldown: %v", err)
	}
	if _, err := s.Simulate(context.Background(), req); err != nil {
		t.Fatalf("circuit did not close after successful probe: %v", err)
	}
}

// A sweep under a hard fault degrades to partial results — the summary
// arrives, failed cells render "err", nothing is cached — and recovers
// fully once the fault clears.
func TestChaosSweepDegradesGracefully(t *testing.T) {
	checkLeaks(t)
	inj := faultinject.MustNew(17,
		faultinject.Rule{Point: faultinject.PointTraceRunStart, Kind: faultinject.KindError, Prob: 1},
	)
	s := chaosService(t, Config{Workers: 4, Retries: 1}, inj, "g711dec", "g711enc")
	models := []string{pipeline.NameBaseline32, pipeline.NameByteSerial}
	sum, err := s.Sweep(context.Background(), 1, nil, models, nil)
	if err != nil {
		t.Fatalf("sweep must degrade, not abort: %v", err)
	}
	if sum.Jobs != 4 || sum.Failed != 4 {
		t.Fatalf("jobs=%d failed=%d, want 4/4", sum.Jobs, sum.Failed)
	}
	if len(sum.MeanCPI) != 0 {
		t.Fatalf("means computed from failed jobs: %v", sum.MeanCPI)
	}
	if s.CacheLen() != 0 {
		t.Fatalf("failed sweep jobs were cached: %d entries", s.CacheLen())
	}
	if m := s.Metrics().Snapshot(); m.Retries == 0 {
		t.Fatal("sweep jobs were not retried before failing")
	}

	inj.SetEnabled(false)
	sum2, err := s.Sweep(context.Background(), 1, nil, models, nil)
	if err != nil || sum2.Failed != 0 {
		t.Fatalf("post-chaos sweep: failed=%d err=%v", sum2.Failed, err)
	}
}

// marshalSuite renders just the deterministic evaluation payload (the
// envelope's ElapsedMS/Cached differ run to run by design).
func marshalSuite(t *testing.T, resp *Response) []byte {
	t.Helper()
	if resp.Suite == nil {
		t.Fatal("suite payload missing")
	}
	b, err := json.Marshal(resp.Suite)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The acceptance invariant: a suite evaluation that survived chaos (via
// retries), and a fault-free rerun, are byte-identical to an
// uninstrumented service's output.
func TestChaosSuiteByteIdentical(t *testing.T) {
	checkLeaks(t)
	clean := testService(t, Config{Workers: 4}, "g711dec", "g711enc")
	cleanResp, err := clean.Suite(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := marshalSuite(t, cleanResp)

	inj := faultinject.MustNew(23,
		faultinject.Rule{Point: faultinject.PointSuiteBench, Kind: faultinject.KindError, Prob: 0.4},
		faultinject.Rule{Point: faultinject.PointPoolPickup, Kind: faultinject.KindLatency, Latency: 3 * time.Millisecond, Prob: 0.5},
		faultinject.Rule{Point: faultinject.PointCachePut, Kind: faultinject.KindError, Prob: 0.3},
	)
	s := chaosService(t, Config{Workers: 4, Retries: 10}, inj, "g711dec", "g711enc")
	chaosResp, err := s.Suite(context.Background())
	if err != nil {
		// Retry budget can run out under the injected schedule; the
		// invariant below still must hold for the fault-free rerun.
		t.Logf("suite under chaos failed (acceptable): %v", err)
	} else if got := marshalSuite(t, chaosResp); !bytes.Equal(got, want) {
		t.Fatal("suite JSON computed under chaos differs from clean service")
	}

	inj.SetEnabled(false)
	rerun, err := s.Suite(context.Background())
	if err != nil {
		t.Fatalf("fault-free rerun: %v", err)
	}
	if got := marshalSuite(t, rerun); !bytes.Equal(got, want) {
		t.Fatal("fault-free rerun suite JSON differs from clean service")
	}
}

// An injected panic on the request goroutine (cache seam) is contained by
// the HTTP recovery middleware: the client sees a 500 with the standard
// error envelope, the daemon survives, and recovery is immediate once the
// fault clears.
func TestChaosHTTPPanicContained(t *testing.T) {
	checkLeaks(t)
	inj := faultinject.MustNew(29,
		faultinject.Rule{Point: faultinject.PointCacheGet, Kind: faultinject.KindPanic, Prob: 1},
	)
	s := chaosService(t, Config{Workers: 2}, inj)
	srv := newTestServer(t, s)

	url := srv.URL + "/v1/simulate?bench=g711dec&model=" + pipeline.NameBaseline32
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("500 body %q is not the error envelope", body)
	}
	if m := s.Metrics().Snapshot(); m.Panics != 1 {
		t.Fatalf("panics metric = %d, want 1", m.Panics)
	}

	inj.SetEnabled(false)
	resp2, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-panic status %d, want 200", resp2.StatusCode)
	}
}

// Overload: with one worker pinned by latency faults and a one-deep wait
// queue, a concurrent burst is shed with 429 + Retry-After; when the load
// drops and faults clear, the service serves 200s again and /metrics shows
// the shed count.
func TestChaosLoadShedAndRecover(t *testing.T) {
	checkLeaks(t)
	inj := faultinject.MustNew(31,
		faultinject.Rule{Point: faultinject.PointPoolPickup, Kind: faultinject.KindLatency, Latency: 300 * time.Millisecond, Prob: 1},
	)
	s := chaosService(t, Config{Workers: 1, MaxQueued: 1}, inj)
	srv := newTestServer(t, s)

	// Prime the lazy recoder profile (and one cache entry) before arming
	// the burst, so the measurement window is only the faulted jobs.
	inj.SetEnabled(false)
	warm, err := http.Get(srv.URL + "/v1/simulate?bench=g711dec&model=" + pipeline.NameBaseline32)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, warm.Body)
	warm.Body.Close()
	inj.SetEnabled(true)

	// 10 concurrent distinct keys (distinct (model, gran) pairs, so no
	// singleflight collapsing and every 429 maps to one pool shed): at most
	// 1 running + 1 queued at a time, so most of the burst must shed.
	models := pipeline.AllNames()
	type result struct {
		status     int
		retryAfter string
	}
	results := make([]result, 10)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/v1/simulate?bench=g711dec&model=%s&gran=%d",
				srv.URL, models[1+i%5], 1+i/5)
			resp, err := http.Get(url)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			results[i] = result{resp.StatusCode, resp.Header.Get("Retry-After")}
		}(i)
	}
	wg.Wait()

	shed := 0
	for i, r := range results {
		switch r.status {
		case http.StatusTooManyRequests:
			shed++
			if r.retryAfter == "" {
				t.Errorf("429 response %d missing Retry-After", i)
			}
		case http.StatusOK, 0:
		default:
			t.Errorf("burst request %d: unexpected status %d", i, r.status)
		}
	}
	if shed == 0 {
		t.Fatal("no load shedding under a 10-deep burst on a 1+1 service")
	}
	var snap struct{ Shed uint64 }
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if snap.Shed != uint64(shed) {
		t.Fatalf("shed metric %d != observed 429s %d", snap.Shed, shed)
	}

	// Load dropped, faults off: back to 200s.
	inj.SetEnabled(false)
	resp, err := http.Get(srv.URL + "/v1/simulate?bench=g711dec&model=" + pipeline.NameByteSerial)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery request status %d, want 200", resp.StatusCode)
	}
}

// TestChaosSoak loops the full fault mix for SIGSERVE_CHAOS_SOAK (a
// time.Duration; unset = skip). The nightly workflow runs it for minutes;
// locally: SIGSERVE_CHAOS_SOAK=10s go test -race -run ChaosSoak ./internal/simsvc
func TestChaosSoak(t *testing.T) {
	budget := os.Getenv("SIGSERVE_CHAOS_SOAK")
	if budget == "" {
		t.Skip("SIGSERVE_CHAOS_SOAK not set")
	}
	d, err := time.ParseDuration(budget)
	if err != nil {
		t.Fatalf("bad SIGSERVE_CHAOS_SOAK %q: %v", budget, err)
	}
	checkLeaks(t)
	inj := faultinject.MustNew(37,
		faultinject.Rule{Point: faultinject.PointTraceRunStart, Kind: faultinject.KindError, Prob: 0.2},
		faultinject.Rule{Point: faultinject.PointTraceRunStart, Kind: faultinject.KindPanic, Prob: 0.05},
		faultinject.Rule{Point: faultinject.PointPoolPickup, Kind: faultinject.KindLatency, Latency: 2 * time.Millisecond, Prob: 0.3},
		faultinject.Rule{Point: faultinject.PointFlightJoin, Kind: faultinject.KindCancel, Prob: 0.1},
		faultinject.Rule{Point: faultinject.PointCacheGet, Kind: faultinject.KindError, Prob: 0.1},
		faultinject.Rule{Point: faultinject.PointCachePut, Kind: faultinject.KindError, Prob: 0.1},
	)
	s := chaosService(t, Config{Workers: 4, Retries: 3, BreakerThreshold: 5, BreakerCooldown: 200 * time.Millisecond}, inj, "g711dec", "g711enc")

	deadline := time.Now().Add(d)
	models := pipeline.AllNames()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				bench := "g711dec"
				if (w+i)%2 == 1 {
					bench = "g711enc"
				}
				_, err := s.Simulate(context.Background(), Request{Bench: bench, Model: models[(w+i)%len(models)], Gran: 1 + i%2})
				switch {
				case err == nil:
				case errors.Is(err, ErrPanic), errors.Is(err, faultinject.ErrInjected),
					errors.Is(err, context.Canceled), errors.Is(err, ErrOverloaded):
				default:
					var q *QuarantinedError
					if !errors.As(err, &q) {
						t.Errorf("soak worker %d: unexpected error class: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// The service must still be fully functional after the soak.
	inj.SetEnabled(false)
	time.Sleep(250 * time.Millisecond) // let any open breakers cool down
	for _, m := range models {
		if _, err := s.Simulate(context.Background(), Request{Bench: "g711dec", Model: m}); err != nil {
			t.Fatalf("post-soak request (%s): %v", m, err)
		}
	}
	t.Logf("soak metrics: %+v", s.Metrics().Snapshot())
}
