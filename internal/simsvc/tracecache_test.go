package simsvc

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/pipeline"
)

// syntheticEntry builds a cache entry of a given accounted size; the cache
// itself never dereferences cap, so nil is fine for unit tests.
func syntheticEntry(bytes int64) *traceEntry { return &traceEntry{bytes: bytes} }

// The byte-accounted LRU in isolation: admission, recency, update-in-place,
// eviction order, and the oversized-entry reject.
func TestTraceCacheLRUUnit(t *testing.T) {
	var m Metrics
	c := newTraceCache(100, &m)
	add := func(key string, e *traceEntry) []*traceCacheEntry {
		t.Helper()
		ev, replaced := c.add(key, e)
		if _, existed := c.items[key]; replaced != nil && !existed {
			t.Fatalf("add %s reported a replaced entry without holding the key", key)
		}
		return ev
	}

	if n := len(add("a", syntheticEntry(40))); n != 0 {
		t.Fatalf("add a evicted %d", n)
	}
	if n := len(add("b", syntheticEntry(40))); n != 0 {
		t.Fatalf("add b evicted %d", n)
	}
	if got := c.bytesUsed(); got != 80 {
		t.Fatalf("bytes = %d, want 80", got)
	}

	// Touch a so b becomes least recently used, then overflow: b must go.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	ev := add("c", syntheticEntry(40))
	if len(ev) != 1 || ev[0].key != "b" {
		t.Fatalf("add c evicted %v, want [b]", ev)
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction despite being LRU")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a (recently used) was evicted")
	}
	if got := c.bytesUsed(); got != 80 {
		t.Fatalf("bytes after eviction = %d, want 80", got)
	}
	if got := m.traceCacheBytes.Load(); got != 80 {
		t.Fatalf("bytes gauge = %d, want 80", got)
	}

	// Re-adding an existing key replaces in place, re-accounts, and hands
	// the displaced entry back so its mapping (if any) can be released.
	olderA, _ := c.get("a")
	ev2, replaced := c.add("a", syntheticEntry(60))
	if len(ev2) != 0 {
		t.Fatalf("update a evicted %d", len(ev2))
	}
	if replaced != olderA {
		t.Fatalf("update a returned replaced=%p, want the displaced entry %p", replaced, olderA)
	}
	if got := c.bytesUsed(); got != 100 {
		t.Fatalf("bytes after update = %d, want 100", got)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}

	// An entry larger than the whole budget is never admitted.
	if n := len(add("huge", syntheticEntry(101))); n != 0 {
		t.Fatalf("oversized add evicted %d", n)
	}
	if _, ok := c.get("huge"); ok {
		t.Fatal("oversized entry was cached")
	}

	// A single entry that exactly fits evicts everything else.
	if n := len(add("exact", syntheticEntry(100))); n != 2 {
		t.Fatalf("exact-fit add evicted %d, want 2", n)
	}
	if got := c.bytesUsed(); got != 100 || c.len() != 1 {
		t.Fatalf("after exact fit: %d bytes, %d entries", got, c.len())
	}
}

// Service-level memory accounting: a 2 MB budget holds one ~1.3-1.5 MB
// capture at a time, so touching a second benchmark evicts the first and the
// eviction/byte metrics track it.
func TestTraceCacheEvictionUnderBudget(t *testing.T) {
	s := testService(t, Config{Workers: 2, TraceCacheMB: 2}, "dijkstra", "g711dec")
	ctx := context.Background()

	if _, err := s.Simulate(ctx, Request{Bench: "dijkstra", Model: pipeline.NameBaseline32}); err != nil {
		t.Fatal(err)
	}
	if s.TraceCacheLen() != 1 {
		t.Fatalf("after first bench: %d cached traces, want 1", s.TraceCacheLen())
	}
	firstBytes := s.TraceCacheBytes()
	if firstBytes <= 0 || firstBytes > 2<<20 {
		t.Fatalf("first capture accounted at %d bytes", firstBytes)
	}

	if _, err := s.Simulate(ctx, Request{Bench: "g711dec", Model: pipeline.NameBaseline32}); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics().Snapshot()
	if s.TraceCacheLen() != 1 {
		t.Fatalf("after second bench: %d cached traces, want 1 (budget fits one)", s.TraceCacheLen())
	}
	if m.TraceCacheEvict != 1 {
		t.Fatalf("evictions = %d, want 1", m.TraceCacheEvict)
	}
	if got := s.TraceCacheBytes(); got > 2<<20 || got != m.TraceCacheBytes {
		t.Fatalf("accounted bytes %d (gauge %d) exceed the 2 MB budget", got, m.TraceCacheBytes)
	}

	// Returning to the evicted benchmark is a miss: it re-captures.
	if _, err := s.Simulate(ctx, Request{Bench: "dijkstra", Model: pipeline.NameByteSerial}); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics().Snapshot(); m.Captures != 3 {
		t.Fatalf("captures = %d, want 3 (dijkstra twice, g711dec once)", m.Captures)
	}
}

// Concurrent requests for different models of one benchmark must share a
// single interpreter run: the capture singleflight (or the trace cache, if
// the leader finishes first) dedups them, while the per-model simulations
// still execute separately.
func TestCaptureSingleflightDedup(t *testing.T) {
	s := testService(t, Config{Workers: 4})
	models := []string{
		pipeline.NameBaseline32, pipeline.NameByteSerial,
		pipeline.NameHalfwordSerial, pipeline.NameParallelCompressed,
	}

	start := make(chan struct{})
	errs := make([]error, len(models))
	var wg sync.WaitGroup
	for i, mn := range models {
		wg.Add(1)
		go func(i int, mn string) {
			defer wg.Done()
			<-start
			_, errs[i] = s.Simulate(context.Background(), Request{Bench: "g711dec", Model: mn})
		}(i, mn)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("model %s: %v", models[i], err)
		}
	}

	m := s.Metrics().Snapshot()
	if m.Captures != 1 {
		t.Fatalf("captures = %d, want exactly 1 for %d concurrent models", m.Captures, len(models))
	}
	if m.Executions != uint64(len(models)) {
		t.Fatalf("executions = %d, want %d (distinct models never share results)", m.Executions, len(models))
	}
	if s.TraceCacheLen() != 1 {
		t.Fatalf("cached traces = %d, want 1", s.TraceCacheLen())
	}
}

// The acceptance criterion: suite output must be byte-identical with the
// trace cache enabled (capture/replay) versus disabled (live reference
// path).
func TestSuiteByteIdenticalReplayVsLive(t *testing.T) {
	benches := []string{"dijkstra", "g711dec", "rawdaudio"}
	replaySvc := testService(t, Config{Workers: 4}, benches...)
	liveSvc := testService(t, Config{Workers: 4, TraceCacheMB: -1}, benches...)
	if !replaySvc.tracesEnabled() || liveSvc.tracesEnabled() {
		t.Fatal("trace-cache enablement wiring is wrong")
	}
	ctx := context.Background()

	replayResp, err := replaySvc.Suite(ctx)
	if err != nil {
		t.Fatal(err)
	}
	liveResp, err := liveSvc.Suite(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if replayResp.Insts != liveResp.Insts {
		t.Fatalf("insts: replay %d vs live %d", replayResp.Insts, liveResp.Insts)
	}
	replayJSON, err := json.Marshal(replayResp.Suite)
	if err != nil {
		t.Fatal(err)
	}
	liveJSON, err := json.Marshal(liveResp.Suite)
	if err != nil {
		t.Fatal(err)
	}
	if string(replayJSON) != string(liveJSON) {
		t.Fatalf("suite JSON differs between replay and live paths:\nreplay: %.400s\nlive:   %.400s", replayJSON, liveJSON)
	}
	if m := replaySvc.Metrics().Snapshot(); m.Captures != uint64(len(benches)) {
		t.Fatalf("replay suite captured %d traces, want %d", m.Captures, len(benches))
	}
}

// Per-job sweep responses must also be byte-identical between the replay and
// live paths, at both granularities.
func TestSweepByteIdenticalReplayVsLive(t *testing.T) {
	benches := []string{"dijkstra", "g711dec"}
	models := []string{pipeline.NameBaseline32, pipeline.NameByteSerial, pipeline.NameParallelCompressed}
	ctx := context.Background()

	collect := func(s *Service, gran int) map[string]string {
		t.Helper()
		out := make(map[string]string)
		_, err := s.Sweep(ctx, gran, benches, models, func(r *Response) error {
			if r.Error != "" {
				return fmt.Errorf("job %s/%s: %s", r.Bench, r.Model, r.Error)
			}
			// Normalize the non-deterministic envelope fields; everything
			// else must match bit for bit.
			c := *r
			c.ElapsedMS = 0
			c.Cached = false
			j, err := json.Marshal(&c)
			if err != nil {
				return err
			}
			out[r.Bench+"|"+r.Model] = string(j)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	for _, gran := range []int{1, 2} {
		replaySvc := testService(t, Config{Workers: 4}, benches...)
		liveSvc := testService(t, Config{Workers: 4, TraceCacheMB: -1}, benches...)
		replayJobs := collect(replaySvc, gran)
		liveJobs := collect(liveSvc, gran)
		if len(replayJobs) != len(benches)*len(models) {
			t.Fatalf("gran %d: %d jobs, want %d", gran, len(replayJobs), len(benches)*len(models))
		}
		for k, rj := range replayJobs {
			if lj, ok := liveJobs[k]; !ok || lj != rj {
				t.Fatalf("gran %d, job %s differs:\nreplay: %s\nlive:   %s", gran, k, rj, lj)
			}
		}
		// One capture per benchmark serves every model of the sweep.
		if m := replaySvc.Metrics().Snapshot(); m.Captures != uint64(len(benches)) {
			t.Fatalf("gran %d: captures = %d, want %d", gran, m.Captures, len(benches))
		}
	}
}

// Chaos on the trace-cache seams: injected get/put failures degrade to
// misses and skipped puts — requests keep succeeding with identical results,
// they just re-capture.
func TestTraceCacheChaosDegradesGracefully(t *testing.T) {
	inj := faultinject.MustNew(17,
		faultinject.Rule{Point: faultinject.PointCacheGet, Kind: faultinject.KindError, Prob: 1},
		faultinject.Rule{Point: faultinject.PointCachePut, Kind: faultinject.KindError, Prob: 1},
	)
	s := chaosService(t, Config{Workers: 2}, inj, "g711dec")
	clean := testService(t, Config{Workers: 2, TraceCacheMB: -1})
	ctx := context.Background()

	req := Request{Bench: "g711dec", Model: pipeline.NameByteSerial}
	want, err := clean.Simulate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := s.Simulate(ctx, Request{Bench: "g711dec", Model: pipeline.NameByteSerial, Gran: 0})
		if err != nil {
			t.Fatalf("request %d under cache faults: %v", i, err)
		}
		if got.CPI != want.CPI || got.Cycles != want.Cycles || got.Insts != want.Insts {
			t.Fatalf("request %d diverged under cache faults: %+v vs %+v", i, got, want)
		}
	}
	// Puts were all skipped, so nothing was ever cached...
	if s.TraceCacheLen() != 0 {
		t.Fatalf("cached traces = %d, want 0 (every put was injected away)", s.TraceCacheLen())
	}
	// ...but the result cache also dropped its puts, so each request
	// re-executed and re-captured: degraded, never wrong.
	if m := s.Metrics().Snapshot(); m.Captures != 3 || m.Executions != 3 {
		t.Fatalf("captures = %d, executions = %d, want 3/3", m.Captures, m.Executions)
	}
}
