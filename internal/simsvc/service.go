// Package simsvc is the concurrent simulation service behind cmd/sigserve:
// it wraps the trace/pipeline/activity/experiments layers behind a Service
// that fans (benchmark × model) jobs across a bounded worker pool, caches
// results in an LRU keyed by (bench, model, granularity), deduplicates
// concurrent identical requests through a singleflight group, threads
// request-scoped context cancellation into the trace run loop, and keeps a
// counters/latency metrics registry. It is the seam future scaling work
// (sharding, batching, multi-backend) plugs into.
package simsvc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/activity"
	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/icomp"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DefaultCacheSize is the LRU capacity when Config.CacheSize is zero.
const DefaultCacheSize = 128

// DefaultQueuedPerWorker scales the default admission bound: MaxQueued
// defaults to this many waiting submissions per pool worker.
const DefaultQueuedPerWorker = 8

// DefaultRetries and DefaultBreakerThreshold are the recommended settings
// for a production daemon (cmd/sigserve uses them as flag defaults). The
// Config zero values stay conservative — no retries, breaker off — so
// embedded and test services opt in explicitly.
const (
	DefaultRetries          = 2
	DefaultBreakerThreshold = 5
)

// retryBackoffBase is the first retry's backoff; each further attempt
// doubles it (capped at retryBackoffMax).
const (
	retryBackoffBase = 2 * time.Millisecond
	retryBackoffMax  = time.Second
)

// Config parameterizes a Service.
type Config struct {
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// CacheSize is the LRU result-cache capacity (default DefaultCacheSize).
	CacheSize int
	// Timeout bounds each simulation request (0 = no service-side limit).
	Timeout time.Duration
	// Benchmarks restricts the served suite (default bench.All()). The
	// instruction recoder is profiled over exactly this suite.
	Benchmarks []bench.Benchmark
	// MaxQueued bounds submissions waiting for a free worker; beyond it
	// externally-admitted jobs are shed with ErrOverloaded (HTTP 429).
	// 0 = DefaultQueuedPerWorker × Workers; negative = unbounded.
	MaxQueued int
	// Retries is how many times a transient execution failure
	// (faultinject.IsTransient) is re-attempted with exponential backoff.
	Retries int
	// BreakerThreshold opens a per-(bench, model) circuit after that many
	// consecutive failures, quarantining the key for BreakerCooldown.
	// 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the quarantine length (default
	// DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// TraceCacheMB budgets the in-memory LRU of captured benchmark traces
	// (the capture-once/replay-many engine, internal/trace). 0 selects
	// DefaultTraceCacheMB; negative disables capture/replay entirely, so
	// every request re-interprets (the reference path, bit-identical by
	// construction and by test).
	TraceCacheMB int
	// TraceDir, when set, backs the trace cache with a capture directory
	// (SIGCAP02 files; pre-migration SIGCAP01 spills stay readable): newly
	// captured traces are persisted there, evicted captures are demoted to
	// disk if not already present, and cache misses try the directory
	// before re-interpreting — so restarted or freshly sharded services
	// start warm from each other's captures. SIGCAP02 loads are mapped
	// read-only and replayed by streaming frames, so a warm start costs
	// the footer index (not a full decode) and co-located shards share
	// the file pages through the OS page cache. Ignored when the trace
	// cache is disabled. All directory I/O is best-effort: a missing,
	// corrupt, or unwritable file degrades to the in-memory path.
	TraceDir string
	// TraceNoMmap disables the mapped residency tier: spilled captures
	// are always eagerly decoded into memory. For platforms or operators
	// that cannot or do not want to mmap the trace dir (e.g. it lives on
	// a network filesystem with unreliable page-fault semantics). The
	// mapped tier also silently degrades to eager decode wherever mmap is
	// unsupported, so this is a policy knob, not a portability requirement.
	TraceNoMmap bool
	// Faults arms deterministic fault injection at the service's seams
	// (nil in production: every hook is then a zero-cost no-op).
	Faults *faultinject.Injector
	// Programs is the untrusted-program intake registry behind POST
	// /v1/program; its accepted programs are servable through simulate,
	// sweep, and suite under their "user:" names. Nil builds one with
	// default budgets (and this Config's Faults), so the intake is always
	// on — the wall, not a flag, is the protection.
	Programs *workload.Registry
	// InstallToken, when set, gates POST /v1/program/install behind a
	// shared fleet secret (X-Install-Token header): replication is
	// fleet-internal traffic and should not ride the public mux
	// unauthenticated. Empty leaves the endpoint open — the registry still
	// re-verifies hashes, rebuilds assembly, clamps budgets, and meters
	// installs, so an open endpoint is contained, just not private.
	InstallToken string
}

// Service executes significance-compression simulations on demand.
type Service struct {
	workers int
	timeout time.Duration
	retries int
	benches []bench.Benchmark
	byName  map[string]bench.Benchmark

	programs     *workload.Registry
	installToken string
	pool         *pool
	cache        *lruCache
	traces       *traceCache // nil when capture/replay is disabled
	traceDir     string      // capture spill directory ("" = in-memory only)
	traceNoMmap  bool        // true = spill loads always eagerly decode
	tflight      *captureFlight
	flight       *flightGroup
	breaker      *breaker
	faults       *faultinject.Injector
	metrics      Metrics
	start        time.Time
	closed       atomic.Bool
	draining     atomic.Bool
	inflight     sync.WaitGroup

	rcOnce   sync.Once
	rc       *icomp.Recoder
	rcFuncts map[isa.Funct]uint64
	rcErr    error

	// failHook injects per-request faults in tests (nil in production).
	failHook func(Request) error
}

// New builds a Service from cfg, applying defaults for zero fields.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.Benchmarks == nil {
		cfg.Benchmarks = bench.All()
	}
	if cfg.MaxQueued == 0 {
		cfg.MaxQueued = DefaultQueuedPerWorker * cfg.Workers
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Programs == nil {
		// Cannot fail: the only construction error is a spill directory,
		// and the default options have none.
		cfg.Programs, _ = workload.NewRegistry(workload.Options{Faults: cfg.Faults})
	}
	s := &Service{
		workers:      cfg.Workers,
		timeout:      cfg.Timeout,
		retries:      cfg.Retries,
		benches:      cfg.Benchmarks,
		byName:       make(map[string]bench.Benchmark, len(cfg.Benchmarks)),
		programs:     cfg.Programs,
		installToken: cfg.InstallToken,
		cache:        newLRU(cfg.CacheSize),
		faults:       cfg.Faults,
		start:        time.Now(),
	}
	s.pool = newPool(cfg.Workers, cfg.MaxQueued, &s.metrics, cfg.Faults)
	if cfg.TraceCacheMB >= 0 {
		mb := cfg.TraceCacheMB
		if mb == 0 {
			mb = DefaultTraceCacheMB
		}
		s.traces = newTraceCache(int64(mb)<<20, &s.metrics)
		s.traceDir = cfg.TraceDir
		s.traceNoMmap = cfg.TraceNoMmap
		s.tflight = newCaptureFlight()
	}
	s.flight = newFlightGroup(cfg.Faults)
	s.breaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, &s.metrics)
	for _, b := range cfg.Benchmarks {
		s.byName[b.Name] = b
	}
	return s
}

// begin admits one request into the in-flight set; it fails with ErrClosed
// once shutdown has begun.
func (s *Service) begin() error {
	s.inflight.Add(1)
	if s.closed.Load() {
		s.inflight.Done()
		return ErrClosed
	}
	return nil
}

func (s *Service) end() { s.inflight.Done() }

// Close shuts the service down gracefully: new requests are refused with
// ErrClosed, every in-flight request is drained to completion, and only
// then are the pool workers stopped. Safe to call more than once.
func (s *Service) Close() {
	s.draining.Store(true)
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.inflight.Wait()
	s.pool.close()
}

// Drain marks the service as draining without refusing work: /readyz starts
// failing so load balancers (the siggate rotation) stop sending new
// requests, while everything already arriving is still served. Call it
// ahead of Close so the fleet routes around this shard before the final
// refuse-and-wait; Close itself also sets it.
func (s *Service) Drain() { s.draining.Store(true) }

// Draining reports whether a drain (or close) has begun.
func (s *Service) Draining() bool { return s.draining.Load() || s.closed.Load() }

// Readiness is the /readyz payload: whether this shard should receive new
// work, and why not.
type Readiness struct {
	Ready      bool   `json:"ready"`
	Status     string `json:"status"` // "ready" | "draining" | "overloaded"
	QueueDepth int64  `json:"queueDepth"`
	MaxQueued  int64  `json:"maxQueued"` // <=0: unbounded
}

// Readiness reports whether the service can usefully accept new work:
// false while draining/closed, and false while the admission queue is at
// its shed threshold (new externally-admitted work would only be 429ed).
// Liveness (/healthz) is separate and stays true through both.
func (s *Service) Readiness() Readiness {
	r := Readiness{
		QueueDepth: s.metrics.queued.Load(),
		MaxQueued:  s.pool.maxQueued,
	}
	switch {
	case s.Draining():
		r.Status = "draining"
	case r.MaxQueued > 0 && r.QueueDepth >= r.MaxQueued:
		r.Status = "overloaded"
	default:
		r.Ready = true
		r.Status = "ready"
	}
	return r
}

// Workers returns the worker-pool size.
func (s *Service) Workers() int { return s.workers }

// Benchmarks returns the served suite.
func (s *Service) Benchmarks() []bench.Benchmark { return s.benches }

// Models returns the servable pipeline-model names.
func (s *Service) Models() []string { return pipeline.AllNames() }

// Metrics returns the live metrics registry.
func (s *Service) Metrics() *Metrics { return &s.metrics }

// Uptime reports how long the service has been running.
func (s *Service) Uptime() time.Duration { return time.Since(s.start) }

// CacheLen returns the number of cached results.
func (s *Service) CacheLen() int { return s.cache.len() }

// recoder lazily builds the profile-driven instruction recoder over the
// served suite, once per Service.
func (s *Service) recoder() (*icomp.Recoder, error) {
	rc, _, err := s.recoderProfile()
	return rc, err
}

// recoderProfile is recoder plus the dynamic function-code profile the
// recoding was derived from (the input to the paper's Table 3).
func (s *Service) recoderProfile() (*icomp.Recoder, map[isa.Funct]uint64, error) {
	s.rcOnce.Do(func() {
		s.rc, s.rcFuncts, s.rcErr = trace.SuiteRecoder(s.benches)
	})
	return s.rc, s.rcFuncts, s.rcErr
}

// Request identifies one simulation job.
type Request struct {
	// Bench names the benchmark (see Service.Benchmarks).
	Bench string `json:"bench"`
	// Model names the pipeline model; empty runs the full per-benchmark
	// evaluation (every model and collector, experiments.RunBenchCtx).
	Model string `json:"model,omitempty"`
	// Gran is the activity-collector granularity: 1 = byte (default),
	// 2 = halfword. Ignored (both collected) for full evaluations.
	Gran int `json:"granularity,omitempty"`
}

// key is the cache/singleflight identity of the request.
func (r Request) key() string { return fmt.Sprintf("%s|%s|%d", r.Bench, r.Model, r.Gran) }

// Response is one simulation result. A Response served from the cache or a
// shared singleflight execution carries identical measurement fields
// (ElapsedMS is always the underlying simulation's execution time); only
// Cached is per-serve.
type Response struct {
	Bench       string                    `json:"bench"`
	Model       string                    `json:"model,omitempty"`
	Granularity int                       `json:"granularity,omitempty"`
	Insts       uint64                    `json:"instructions"`
	Cycles      uint64                    `json:"cycles,omitempty"`
	CPI         float64                   `json:"cpi,omitempty"`
	Stalls      map[string]uint64         `json:"stalls,omitempty"`
	Activity    map[string]float64        `json:"activitySaving,omitempty"`
	Full        *experiments.BenchJSON    `json:"full,omitempty"`
	Suite       *experiments.JSONResults  `json:"suite,omitempty"`   // /v1/suite only
	Partial     *experiments.PartialSuite `json:"partial,omitempty"` // /v1/partial only (cluster fan-in)
	Cached      bool                      `json:"cached"`
	ElapsedMS   float64                   `json:"elapsedMillis"`
	Error       string                    `json:"error,omitempty"` // sweep stream only
}

// InvalidRequestError reports a malformed or unknown-entity request; the
// HTTP layer maps it to 400.
type InvalidRequestError struct{ Reason string }

func (e *InvalidRequestError) Error() string { return "simsvc: " + e.Reason }

func invalidf(format string, args ...interface{}) error {
	return &InvalidRequestError{Reason: fmt.Sprintf(format, args...)}
}

// benchFor resolves a benchmark name: the built-in suite first, then the
// user-program registry for "user:"-namespaced names. Any other unknown
// name is a typed InvalidRequestError — user programs cannot collide with
// (or shadow) built-ins because their names are forced into the "user:"
// namespace at submission, and lookups never cross namespaces.
func (s *Service) benchFor(name string) (bench.Benchmark, error) {
	if b, ok := s.byName[name]; ok {
		return b, nil
	}
	if workload.IsUserName(name) {
		p, err := s.programs.Get(name)
		if err != nil {
			return bench.Benchmark{}, err
		}
		return p.Benchmark(), nil
	}
	return bench.Benchmark{}, invalidf("unknown benchmark %q (submitted programs are served under the user: namespace)", name)
}

// validate checks req against the served suite (built-in or registered user
// program) and returns its normalized form (granularity defaulted,
// full-evaluation requests canonicalized).
func (s *Service) validate(req Request) (Request, error) {
	if _, err := s.benchFor(req.Bench); err != nil {
		return req, err
	}
	if req.Model == "" {
		req.Gran = 0 // full evaluation collects both granularities
		return req, nil
	}
	if pipeline.New(req.Model) == nil {
		return req, invalidf("unknown model %q", req.Model)
	}
	switch req.Gran {
	case 0:
		req.Gran = 1
	case 1, 2:
	default:
		return req, invalidf("granularity %d not in {1,2}", req.Gran)
	}
	return req, nil
}

// serveCopy returns a per-serve copy of a canonical response.
func serveCopy(r *Response, cached bool) *Response {
	cp := *r
	cp.Cached = cached
	return &cp
}

// cacheGet consults the LRU unless a cache.get fault is armed: an injected
// failure degrades to a cache miss (the job re-executes) rather than
// failing the request.
func (s *Service) cacheGet(ctx context.Context, key string) (*Response, bool) {
	if err := s.faults.Fire(ctx, faultinject.PointCacheGet); err != nil {
		return nil, false
	}
	return s.cache.get(key)
}

// cachePut stores a successful result unless a cache.put fault is armed:
// an injected failure skips caching (a later request re-executes) rather
// than failing the request that already has its answer.
func (s *Service) cachePut(ctx context.Context, key string, resp *Response) {
	if err := s.faults.Fire(ctx, faultinject.PointCachePut); err != nil {
		return
	}
	if s.cache.add(key, resp) { // errors are never cached
		s.metrics.cacheEvictions.Add(1)
	}
}

// withRetry runs fn, re-attempting transient failures (and only those) up
// to s.retries times with exponential backoff. Backoff waits end early when
// ctx does.
func (s *Service) withRetry(ctx context.Context, fn func() error) error {
	for attempt := 0; ; attempt++ {
		err := fn()
		if err == nil || attempt >= s.retries || !faultinject.IsTransient(err) || ctx.Err() != nil {
			return err
		}
		s.metrics.retries.Add(1)
		backoff := retryBackoffBase << attempt
		if backoff > retryBackoffMax {
			backoff = retryBackoffMax
		}
		t := time.NewTimer(backoff)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return err
		}
	}
}

// breakerKey is the circuit-breaker identity of a request: granularity is
// deliberately excluded — a failing simulation fails at every granularity.
func breakerKey(bench, model string) string { return bench + "|" + model }

// Simulate runs (or serves from cache) one simulation job. Identical
// concurrent requests share a single underlying trace execution.
func (s *Service) Simulate(ctx context.Context, req Request) (*Response, error) {
	return s.simulate(ctx, req, true)
}

// simulate is Simulate with an admission switch: service-internal fan-out
// (sweep jobs) bypasses the bounded wait queue, since those bursts belong
// to one already-admitted request.
func (s *Service) simulate(ctx context.Context, req Request, admit bool) (*Response, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	req, err := s.validate(req)
	if err != nil {
		s.metrics.invalid.Add(1)
		return nil, err
	}
	s.metrics.requests.Add(1)
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	key := req.key()
	if resp, ok := s.cacheGet(ctx, key); ok {
		s.metrics.cacheHits.Add(1)
		return serveCopy(resp, true), nil
	}
	s.metrics.cacheMisses.Add(1)
	bkey := breakerKey(req.Bench, req.Model)
	if err := s.breaker.allow(bkey); err != nil {
		return nil, err
	}
	resp, shared, err := s.flight.do(ctx, key, func() (*Response, error) {
		var out *Response
		runErr := s.withRetry(ctx, func() error {
			var execErr error
			submit := s.pool.do
			if !admit {
				submit = s.pool.doInternal
			}
			if poolErr := submit(ctx, func() {
				out, execErr = s.execute(ctx, req)
			}); poolErr != nil {
				return poolErr
			}
			return execErr
		})
		s.breaker.record(bkey, runErr)
		if runErr != nil {
			return nil, runErr
		}
		s.cachePut(ctx, key, out)
		return out, nil
	})
	if shared {
		s.metrics.flightShared.Add(1)
	}
	if err != nil {
		if countsAsFailure(err) {
			s.metrics.failures.Add(1)
		}
		return nil, err
	}
	return serveCopy(resp, false), nil
}

// countsAsFailure reports whether err is an execution failure for the
// failures metric: cancellations are the client's doing and shed
// submissions are already tallied separately as shed.
func countsAsFailure(err error) bool {
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) &&
		!errors.Is(err, ErrOverloaded)
}

// execute performs the actual trace run for req on the calling (worker)
// goroutine.
func (s *Service) execute(ctx context.Context, req Request) (*Response, error) {
	if err := s.faults.Fire(ctx, faultinject.PointTraceRunStart); err != nil {
		return nil, err
	}
	if s.failHook != nil {
		if err := s.failHook(req); err != nil {
			return nil, err
		}
	}
	rc, err := s.recoder()
	if err != nil {
		return nil, err
	}
	// Re-resolve at execution time: a user program can be evicted between
	// validation and its pool slot, which surfaces as the typed lookup
	// error rather than an empty benchmark.
	b, err := s.benchFor(req.Bench)
	if err != nil {
		return nil, err
	}
	s.metrics.executions.Add(1)
	start := time.Now()

	if s.tracesEnabled() {
		resp, err := s.executeReplay(ctx, req, rc, b)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		s.metrics.observeLatency(elapsed)
		resp.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
		return resp, nil
	}

	if req.Model == "" {
		br, err := experiments.RunBenchCtx(ctx, b, rc, nil)
		if err != nil {
			return nil, err
		}
		full := experiments.EncodeBench(br)
		elapsed := time.Since(start)
		s.metrics.observeLatency(elapsed)
		return &Response{
			Bench:     b.Name,
			Insts:     br.Insts,
			Full:      &full,
			ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		}, nil
	}

	c, err := b.NewCPU()
	if err != nil {
		return nil, err
	}
	m := pipeline.New(req.Model)
	col := activity.NewCollector(req.Gran, rc, c.Mem)
	if err := trace.RunOnCtx(ctx, c, b, rc, m, col); err != nil {
		return nil, err
	}
	r := m.Result()
	stalls := make(map[string]uint64, len(r.Stalls))
	for k, v := range r.Stalls {
		stalls[string(k)] = v
	}
	elapsed := time.Since(start)
	s.metrics.observeLatency(elapsed)
	return &Response{
		Bench:       b.Name,
		Model:       req.Model,
		Granularity: req.Gran,
		Insts:       r.Insts,
		Cycles:      r.Cycles,
		CPI:         r.CPI(),
		Stalls:      stalls,
		Activity:    experiments.SavingMap(col.Counts()),
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
	}, nil
}
