package simsvc

import (
	"context"
	"os"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/pipeline"
)

// TestBatchReplayBeatsScalar is the CI performance gate for the column-block
// replay engine: a warm sweep through ConsumeBlock must be decisively faster
// than the same sweep through the event-at-a-time path. Wall-clock
// assertions are too noisy for every developer run, so the test only arms
// itself under SIGPERF_SMOKE=1 (set by the CI benchmark-smoke step). The
// margin is 1.5x against a measured ~4x so scheduler noise cannot flake it;
// a real regression — the batch path falling back to the scalar shim — lands
// at 1.0x and fails clearly.
func TestBatchReplayBeatsScalar(t *testing.T) {
	if os.Getenv("SIGPERF_SMOKE") == "" {
		t.Skip("set SIGPERF_SMOKE=1 to run the wall-clock replay smoke (CI does)")
	}
	benches := []string{"dijkstra", "g711dec", "rawdaudio"}
	models := []string{
		pipeline.NameBaseline32, pipeline.NameByteSerial, pipeline.NameParallelCompressed,
		pipeline.NameByteFetch4, pipeline.NameDualCompress4,
	}
	cfg := Config{Workers: 1, CacheSize: 1}
	for _, n := range benches {
		bm, ok := bench.ByName(n)
		if !ok {
			t.Fatalf("unknown benchmark %q", n)
		}
		cfg.Benchmarks = append(cfg.Benchmarks, bm)
	}

	const rounds = 3
	measure := func(scalar bool) time.Duration {
		t.Helper()
		scalarReplayForBench = scalar
		defer func() { scalarReplayForBench = false }()
		s := New(cfg)
		defer s.Close()
		sweep := func() {
			sum, err := s.Sweep(context.Background(), 1, benches, models, nil)
			if err != nil {
				t.Fatal(err)
			}
			if sum.Failed != 0 {
				t.Fatalf("sweep failed %d jobs: %+v", sum.Failed, sum.FailedByModel)
			}
		}
		sweep() // warm-up: recoder profile + trace captures
		start := time.Now()
		for i := 0; i < rounds; i++ {
			sweep()
		}
		return time.Since(start)
	}

	scalar := measure(true)
	batch := measure(false)
	t.Logf("warm sweep ×%d: scalar %v, batch %v (%.2fx)",
		rounds, scalar, batch, float64(scalar)/float64(batch))
	if batch*3/2 >= scalar {
		t.Errorf("batch replay is not decisively faster: scalar %v vs batch %v (want ≥1.5x)", scalar, batch)
	}
}
