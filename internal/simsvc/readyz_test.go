package simsvc

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// Liveness and readiness are split: /healthz stays 200 through a drain
// (the process is alive) while /readyz flips to 503 so a gateway can
// rotate the shard out before Close() finishes.
func TestHTTPReadyzDrain(t *testing.T) {
	s, srv := testServer(t)

	var r Readiness
	if resp := getJSON(t, srv.URL+"/readyz", &r); resp.StatusCode != 200 || !r.Ready || r.Status != "ready" {
		t.Fatalf("readyz before drain: %d %+v", resp.StatusCode, r)
	}

	s.Drain()

	if resp := getJSON(t, srv.URL+"/readyz", &r); resp.StatusCode != 503 || r.Ready || r.Status != "draining" {
		t.Fatalf("readyz after drain: %d %+v", resp.StatusCode, r)
	}
	var health struct {
		Status string `json:"status"`
	}
	if resp := getJSON(t, srv.URL+"/healthz", &health); resp.StatusCode != 200 || health.Status != "ok" {
		t.Fatalf("healthz after drain: %d %+v (liveness must survive a drain)", resp.StatusCode, health)
	}

	// Draining is advisory: the shard still answers work until Close().
	if _, err := s.Simulate(context.Background(), Request{Bench: "g711dec", Model: s.Models()[0]}); err != nil {
		t.Fatalf("simulate while draining: %v", err)
	}
}

// A shed pool attaches a load-derived Retry-After hint instead of the old
// fixed 1s: depth × mean latency / workers, clamped to [1s, 30s].
func TestPoolShedRetryAfterHint(t *testing.T) {
	p, m := testPool(t, 1, 1)
	block := make(chan struct{})
	defer close(block)

	// Seed the latency registry with a known mean so the hint is
	// predictable: 4 seconds of observed work per job on 1 worker.
	m.observeLatency(4 * time.Second)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.do(context.Background(), func() { <-block }) }() // runs
	time.Sleep(10 * time.Millisecond)
	go func() { defer wg.Done(); p.do(context.Background(), func() {}) }() // queued
	time.Sleep(10 * time.Millisecond)

	err := p.do(context.Background(), func() {})
	var overloaded *OverloadedError
	if !errors.As(err, &overloaded) {
		t.Fatalf("shed error = %v, want *OverloadedError", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("OverloadedError must unwrap to ErrOverloaded")
	}
	// One job queued ahead at 4s mean on one worker: hint is 4s.
	if overloaded.RetryAfter != 4*time.Second {
		t.Fatalf("RetryAfter = %v, want 4s", overloaded.RetryAfter)
	}
}

// The hint is clamped: a deep queue never tells clients to go away for
// minutes, and an idle registry still suggests at least a second.
func TestRetryAfterHintClamps(t *testing.T) {
	p, m := testPool(t, 1, -1)
	if got := p.retryAfterHint(0); got != time.Second {
		t.Fatalf("hint(0) = %v, want 1s floor", got)
	}
	m.observeLatency(10 * time.Second)
	if got := p.retryAfterHint(1000); got != maxRetryAfterHint {
		t.Fatalf("hint(1000) = %v, want %v cap", got, maxRetryAfterHint)
	}
}

// The HTTP layer surfaces the hint as a Retry-After header, whole seconds
// rounded up; the bare sentinel keeps the legacy fixed hint.
func TestWriteErrorRetryAfterHeader(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, &OverloadedError{RetryAfter: 7 * time.Second})
	if rec.Code != 429 || rec.Header().Get("Retry-After") != "7" {
		t.Fatalf("overloaded: %d Retry-After=%q, want 429 / 7", rec.Code, rec.Header().Get("Retry-After"))
	}

	rec = httptest.NewRecorder()
	writeError(rec, ErrOverloaded)
	if rec.Code != 429 || rec.Header().Get("Retry-After") != "1" {
		t.Fatalf("bare sentinel: %d Retry-After=%q, want 429 / 1", rec.Code, rec.Header().Get("Retry-After"))
	}
}
