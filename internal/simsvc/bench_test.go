package simsvc

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/pipeline"
)

// BenchmarkSweepReplayVsExecute compares a 3-benchmark × 3-model sweep on
// the capture/replay path (warm trace cache) against the live path that
// re-interprets every job, with the replay path measured both through the
// column-block batch engine (the production path) and the event-at-a-time
// scalar engine (the reference it must beat). CacheSize 1 defeats the
// result LRU in all arms so every job really runs; each arm gets one
// untimed warm-up sweep (which fills the replay arms' trace cache —
// steady-state serving, the case the engine exists for).
func BenchmarkSweepReplayVsExecute(b *testing.B) {
	benches := []string{"dijkstra", "g711dec", "rawdaudio"}
	models := []string{pipeline.NameBaseline32, pipeline.NameByteSerial, pipeline.NameParallelCompressed}

	newSvc := func(b *testing.B, traceCacheMB int) *Service {
		b.Helper()
		cfg := Config{Workers: 1, CacheSize: 1, TraceCacheMB: traceCacheMB}
		for _, n := range benches {
			bm, ok := bench.ByName(n)
			if !ok {
				b.Fatalf("unknown benchmark %q", n)
			}
			cfg.Benchmarks = append(cfg.Benchmarks, bm)
		}
		s := New(cfg)
		b.Cleanup(s.Close)
		return s
	}

	sweep := func(b *testing.B, s *Service) {
		b.Helper()
		sum, err := s.Sweep(context.Background(), 1, benches, models, nil)
		if err != nil {
			b.Fatal(err)
		}
		if sum.Failed != 0 {
			b.Fatalf("sweep failed %d jobs: %+v", sum.Failed, sum.FailedByModel)
		}
	}

	for _, arm := range []struct {
		name         string
		traceCacheMB int
		scalar       bool
	}{
		{"execute", -1, false},     // live reference path: interpret every job
		{"replay-scalar", 0, true}, // replay each job event-at-a-time
		{"replay", 0, false},       // replay each job over column blocks
	} {
		b.Run(fmt.Sprintf("%s/benches=%d/models=%d", arm.name, len(benches), len(models)), func(b *testing.B) {
			scalarReplayForBench = arm.scalar
			defer func() { scalarReplayForBench = false }()
			s := newSvc(b, arm.traceCacheMB)
			sweep(b, s) // warm-up: recoder profile + (replay arms) trace captures
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sweep(b, s)
			}
		})
	}
}
