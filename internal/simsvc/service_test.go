package simsvc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/pipeline"
)

// testService builds a service over a small suite so tests profile and
// simulate tens of thousands of instructions, not the 30-second full suite.
func testService(t *testing.T, cfg Config, benchNames ...string) *Service {
	t.Helper()
	if len(benchNames) == 0 {
		benchNames = []string{"g711dec"}
	}
	for _, n := range benchNames {
		b, ok := bench.ByName(n)
		if !ok {
			t.Fatalf("unknown test benchmark %q", n)
		}
		cfg.Benchmarks = append(cfg.Benchmarks, b)
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// TestSingleflightDedup is the acceptance check: 12 concurrent identical
// requests must share exactly one underlying trace execution — the leader
// runs it, everyone else is served via the singleflight path or the cache.
func TestSingleflightDedup(t *testing.T) {
	s := testService(t, Config{Workers: 4})
	const clients = 12
	req := Request{Bench: "g711dec", Model: pipeline.NameByteSerial}

	start := make(chan struct{})
	responses := make([]*Response, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			responses[i], errs[i] = s.Simulate(context.Background(), req)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if responses[i].CPI != responses[0].CPI || responses[i].Cycles != responses[0].Cycles {
			t.Fatalf("client %d saw a different result", i)
		}
	}
	m := s.Metrics().Snapshot()
	if m.Executions != 1 {
		t.Fatalf("executions = %d, want exactly 1 for %d concurrent identical requests", m.Executions, clients)
	}
	if m.Requests != clients {
		t.Fatalf("requests = %d, want %d", m.Requests, clients)
	}
	if m.FlightShared+m.CacheHits != clients-1 {
		t.Fatalf("shared(%d) + cacheHits(%d) != %d", m.FlightShared, m.CacheHits, clients-1)
	}

	// A later identical request is a pure cache hit: still one execution.
	resp, err := s.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatal("repeat request was not served from cache")
	}
	if m := s.Metrics().Snapshot(); m.Executions != 1 {
		t.Fatalf("executions after repeat = %d, want 1", m.Executions)
	}
}

// Distinct (bench, model, gran) keys must not share executions.
func TestDistinctKeysExecuteSeparately(t *testing.T) {
	s := testService(t, Config{Workers: 4})
	ctx := context.Background()
	reqs := []Request{
		{Bench: "g711dec", Model: pipeline.NameBaseline32},
		{Bench: "g711dec", Model: pipeline.NameBaseline32, Gran: 2},
		{Bench: "g711dec", Model: pipeline.NameByteSerial},
	}
	for _, r := range reqs {
		if _, err := s.Simulate(ctx, r); err != nil {
			t.Fatalf("%+v: %v", r, err)
		}
	}
	if m := s.Metrics().Snapshot(); m.Executions != 3 {
		t.Fatalf("executions = %d, want 3", m.Executions)
	}
}

// A cache bounded below the working set evicts and counts evictions.
func TestCacheEvictionMetric(t *testing.T) {
	s := testService(t, Config{CacheSize: 1})
	ctx := context.Background()
	for _, m := range []string{pipeline.NameBaseline32, pipeline.NameByteSerial} {
		if _, err := s.Simulate(ctx, Request{Bench: "g711dec", Model: m}); err != nil {
			t.Fatal(err)
		}
	}
	if m := s.Metrics().Snapshot(); m.CacheEvictions != 1 {
		t.Fatalf("evictions = %d, want 1", m.CacheEvictions)
	}
	if s.CacheLen() != 1 {
		t.Fatalf("cache len = %d, want 1", s.CacheLen())
	}
}

func TestSimulateSingleModel(t *testing.T) {
	s := testService(t, Config{})
	resp, err := s.Simulate(context.Background(), Request{Bench: "g711dec", Model: pipeline.NameBaseline32})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Insts == 0 || resp.Cycles == 0 {
		t.Fatalf("empty result: %+v", resp)
	}
	if resp.CPI < 1 {
		t.Fatalf("CPI %v < 1 on an in-order pipeline", resp.CPI)
	}
	if resp.Granularity != 1 {
		t.Fatalf("granularity defaulted to %d, want 1", resp.Granularity)
	}
	if len(resp.Activity) == 0 {
		t.Fatal("no activity savings")
	}
}

// An empty model runs the full per-benchmark evaluation and returns the
// shared experiments JSON schema.
func TestSimulateFullEvaluation(t *testing.T) {
	s := testService(t, Config{})
	resp, err := s.Simulate(context.Background(), Request{Bench: "g711dec"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Full == nil {
		t.Fatal("full evaluation missing")
	}
	for _, m := range pipeline.AllNames() {
		if _, ok := resp.Full.CPI[m]; !ok {
			t.Errorf("full CPI missing model %s", m)
		}
	}
	if _, ok := resp.Full.CPI[pipeline.NameBaseline32+"+bp"]; !ok {
		t.Error("full CPI missing branch-prediction ablation")
	}
	if len(resp.Full.ByteSaving) == 0 || len(resp.Full.HalfSaving) == 0 {
		t.Error("full activity savings missing")
	}
}

func TestSimulateValidation(t *testing.T) {
	s := testService(t, Config{})
	ctx := context.Background()
	cases := []Request{
		{Bench: "nope", Model: pipeline.NameBaseline32},
		{Bench: "g711dec", Model: "nope"},
		{Bench: "g711dec", Model: pipeline.NameBaseline32, Gran: 3},
	}
	var inv *InvalidRequestError
	for _, c := range cases {
		if _, err := s.Simulate(ctx, c); !errors.As(err, &inv) {
			t.Errorf("%+v: err = %v, want InvalidRequestError", c, err)
		}
	}
	if m := s.Metrics().Snapshot(); m.InvalidRequests != uint64(len(cases)) || m.Executions != 0 {
		t.Fatalf("invalid=%d executions=%d, want %d/0", m.InvalidRequests, m.Executions, len(cases))
	}
}

func TestSimulateCancelled(t *testing.T) {
	s := testService(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Simulate(ctx, Request{Bench: "g711dec", Model: pipeline.NameBaseline32})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSimulateTimeout(t *testing.T) {
	s := testService(t, Config{Timeout: time.Nanosecond})
	_, err := s.Simulate(context.Background(), Request{Bench: "g711dec", Model: pipeline.NameBaseline32})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSimulateAfterClose(t *testing.T) {
	s := testService(t, Config{})
	s.Close()
	if _, err := s.Simulate(context.Background(), Request{Bench: "g711dec", Model: pipeline.NameBaseline32}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestSweep(t *testing.T) {
	s := testService(t, Config{Workers: 4}, "g711dec", "g711enc")
	models := []string{pipeline.NameBaseline32, pipeline.NameByteSerial}
	var streamed []*Response
	sum, err := s.Sweep(context.Background(), 1, nil, models, func(r *Response) error {
		streamed = append(streamed, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != 4 || len(streamed) != 4 {
		t.Fatalf("jobs = %d, streamed = %d, want 4", sum.Jobs, len(streamed))
	}
	if sum.Failed != 0 {
		t.Fatalf("failed = %d", sum.Failed)
	}
	base, byteS := sum.MeanCPI[pipeline.NameBaseline32], sum.MeanCPI[pipeline.NameByteSerial]
	if base <= 0 || byteS <= base {
		t.Fatalf("mean CPI base %v / byteserial %v: byte-serial must be slower", base, byteS)
	}
	// 2 benches × 2 models + AVG row.
	if got := len(sum.CPITable.Rows); got != 3 {
		t.Fatalf("CPI table rows = %d, want 3", got)
	}

	// Re-sweeping the same grid is served entirely from cache.
	before := s.Metrics().Snapshot().Executions
	sum2, err := s.Sweep(context.Background(), 1, nil, models, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Cached != 4 {
		t.Fatalf("second sweep cached = %d, want 4", sum2.Cached)
	}
	if after := s.Metrics().Snapshot().Executions; after != before {
		t.Fatalf("second sweep re-executed: %d -> %d", before, after)
	}
}

func TestSweepUnknownModel(t *testing.T) {
	s := testService(t, Config{})
	var inv *InvalidRequestError
	if _, err := s.Sweep(context.Background(), 1, nil, []string{"nope"}, nil); !errors.As(err, &inv) {
		t.Fatalf("err = %v, want InvalidRequestError", err)
	}
}

func TestSweepEmitAbort(t *testing.T) {
	s := testService(t, Config{Workers: 2}, "g711dec", "g711enc")
	boom := errors.New("client went away")
	_, err := s.Sweep(context.Background(), 1, nil, []string{pipeline.NameBaseline32}, func(*Response) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want emit error", err)
	}
}
