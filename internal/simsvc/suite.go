package simsvc

import (
	"context"
	"errors"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/icomp"
	"repro/internal/trace"
)

// suiteKey is the cache/singleflight identity of the full-suite evaluation.
// Request keys are "bench|model|gran" and benchmark names never contain a
// newline, so this key cannot collide with any per-job key.
const suiteKey = "suite\n"

// Suite runs the paper's complete evaluation over the served suite: every
// benchmark through every pipeline model and activity collector, with
// per-benchmark suite collectors merged deterministically in suite order.
// Per-benchmark runs fan out across the worker pool (first error cancels
// the rest); the finished evaluation is cached in the LRU and concurrent
// identical calls share one execution via singleflight, exactly like
// Simulate.
func (s *Service) Suite(ctx context.Context) (*Response, error) {
	return s.SuiteOf(ctx, nil)
}

// SuiteOf is Suite over an explicit benchmark list — built-ins and
// registered user programs mixed freely, evaluated and merged in the
// requested order. The recoder and function-code profile stay those of the
// fixed served suite regardless of the list (user programs must not change
// the science), so the same list produces a byte-identical document on
// every shard serving the same suite. An empty list is the full served
// suite (identical to Suite, same cache entry).
func (s *Service) SuiteOf(ctx context.Context, names []string) (*Response, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	s.metrics.requests.Add(1)
	subset := s.benches
	key := suiteKey
	if len(names) > 0 {
		subset = make([]bench.Benchmark, 0, len(names))
		seen := make(map[string]bool, len(names))
		for _, name := range names {
			if seen[name] {
				s.metrics.invalid.Add(1)
				return nil, invalidf("duplicate benchmark %q in suite", name)
			}
			seen[name] = true
			b, err := s.benchFor(name)
			if err != nil {
				s.metrics.invalid.Add(1)
				return nil, err
			}
			subset = append(subset, b)
		}
		// Benchmark names never contain a newline, so explicit-list keys
		// cannot collide with the bare suite key or each other's lists.
		key = suiteKey + strings.Join(names, ",")
	}
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	if resp, ok := s.cacheGet(ctx, key); ok {
		s.metrics.cacheHits.Add(1)
		return serveCopy(resp, true), nil
	}
	s.metrics.cacheMisses.Add(1)
	resp, shared, err := s.flight.do(ctx, key, func() (*Response, error) {
		out, runErr := s.runSuite(ctx, subset)
		if runErr != nil {
			return nil, runErr
		}
		s.cachePut(ctx, key, out)
		return out, nil
	})
	if shared {
		s.metrics.flightShared.Add(1)
	}
	if err != nil {
		if countsAsFailure(err) {
			s.metrics.failures.Add(1)
		}
		return nil, err
	}
	return serveCopy(resp, false), nil
}

// benchOut is one benchmark's share of a (full or partial) suite
// evaluation: its encoded result and its private suite-level collectors,
// merged in suite order afterwards.
type benchOut struct {
	br   experiments.BenchResult
	cols *experiments.SuiteCollectors
}

// evalBenches fans the per-benchmark full evaluation across the worker
// pool — one job per benchmark, each with its own SuiteCollectors, under
// the breaker and transient-retry policy — and returns the outputs in
// benches order. It is the shared unit under both the single-process suite
// (runSuite) and the cluster's scattered partial evaluation (runPartial).
func (s *Service) evalBenches(ctx context.Context, rc *icomp.Recoder, benches []bench.Benchmark) ([]benchOut, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	outs := make([]benchOut, len(benches))
	errs := make([]error, len(benches))
	var wg sync.WaitGroup
	for i, b := range benches {
		wg.Add(1)
		go func(i int, b bench.Benchmark) {
			defer wg.Done()
			bkey := breakerKey(b.Name, "")
			if err := s.breaker.allow(bkey); err != nil {
				errs[i] = err
				cancel()
				return
			}
			// Transient per-benchmark failures (and only those) are retried
			// with backoff before the whole evaluation is abandoned.
			err := s.withRetry(ctx, func() error {
				var runErr error
				poolErr := s.pool.doInternal(ctx, func() {
					if err := s.faults.Fire(ctx, faultinject.PointSuiteBench); err != nil {
						runErr = err
						return
					}
					if s.failHook != nil {
						if err := s.failHook(Request{Bench: b.Name}); err != nil {
							runErr = err
							return
						}
					}
					s.metrics.executions.Add(1)
					cols := experiments.NewSuiteCollectors()
					var (
						br       experiments.BenchResult
						benchErr error
					)
					if s.tracesEnabled() {
						// Replay the shared capture (one interpreter run per
						// benchmark, whoever asked first); bit-identical to
						// the live path by construction and by test. A mapped
						// entry evicted (and closed) between the cache hit and
						// the replay fails before consuming any event, so one
						// retry — which misses and re-maps — is safe and
						// sufficient.
						replay := func() (experiments.BenchResult, error) {
							e, err := s.captureFor(ctx, b)
							if err != nil {
								return experiments.BenchResult{}, err
							}
							return experiments.RunBenchReplay(ctx, e.rep, rc, cols)
						}
						br, benchErr = replay()
						if benchErr != nil && errors.Is(benchErr, trace.ErrMappedClosed) {
							br, benchErr = replay()
						}
					} else {
						br, benchErr = experiments.RunBenchCtx(ctx, b, rc, cols)
					}
					if benchErr != nil {
						runErr = benchErr
						return
					}
					outs[i] = benchOut{br: br, cols: cols}
				})
				if poolErr != nil {
					return poolErr
				}
				return runErr
			})
			s.breaker.record(bkey, err)
			if err != nil {
				errs[i] = err
				cancel()
			}
		}(i, b)
	}
	wg.Wait()
	// Report the root cause rather than a cancellation it induced: prefer
	// the first non-context error, falling back to the first error seen.
	var firstErr error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if firstErr == nil {
			firstErr = e
		}
		if !errors.Is(e, context.Canceled) && !errors.Is(e, context.DeadlineExceeded) {
			firstErr = e
			break
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return outs, nil
}

// runSuite performs the parallel full evaluation over the benchmark list
// and assembles the complete results document.
func (s *Service) runSuite(ctx context.Context, benches []bench.Benchmark) (*Response, error) {
	rc, functs, err := s.recoderProfile()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	outs, err := s.evalBenches(ctx, rc, benches)
	if err != nil {
		return nil, err
	}

	master := experiments.NewSuiteCollectors()
	res := &experiments.Results{
		Recoder:    rc,
		Functs:     functs,
		Patterns:   master.Patterns,
		Fetch:      master.Fetch,
		Partitions: master.Partitions,
		Width64:    master.Width64,
		Frontend:   master.Frontend,
		BM:         master.BM,
	}
	var insts uint64
	for i := range outs {
		res.Bench = append(res.Bench, outs[i].br)
		insts += outs[i].br.Insts
		master.Merge(outs[i].cols)
	}
	elapsed := time.Since(start)
	s.metrics.observeLatency(elapsed)
	return &Response{
		Insts:     insts,
		Suite:     res.Encode(),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}, nil
}
