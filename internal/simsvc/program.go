package simsvc

import (
	"context"
	"errors"

	"repro/internal/workload"
)

// ProgramRequest is the POST /v1/program body.
type ProgramRequest struct {
	// Lang is workload.LangAsm (default) or workload.LangMiniC.
	Lang string `json:"lang,omitempty"`
	// Source is the program text.
	Source string `json:"source"`
}

// Programs exposes the intake registry (cluster replication reads it).
func (s *Service) Programs() *workload.Registry { return s.programs }

// SubmitProgram pushes one untrusted submission through the workload
// validation wall. The probationary execution is real CPU work, so it rides
// the bounded worker pool under normal admission control: an intake flood
// sheds with ErrOverloaded (429 + Retry-After) exactly like a simulation
// burst, on top of the registry's own per-tenant quotas.
func (s *Service) SubmitProgram(ctx context.Context, tenant string, req ProgramRequest) (*workload.Program, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	s.metrics.requests.Add(1)
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	var (
		p    *workload.Program
		serr error
	)
	if poolErr := s.pool.do(ctx, func() {
		p, serr = s.programs.Submit(ctx, tenant, req.Lang, req.Source)
	}); poolErr != nil {
		return nil, poolErr
	}
	s.recordProgramOutcome(serr)
	return p, serr
}

// recordProgramOutcome classifies one submission outcome into the intake
// counters.
func (s *Service) recordProgramOutcome(err error) {
	var (
		quota       *workload.QuotaError
		quarantined *workload.QuarantinedError
		rejected    *workload.RejectedError
		src         *workload.SourceError
	)
	switch {
	case err == nil:
		s.metrics.programsAccepted.Add(1)
	case errors.As(err, &quota):
		s.metrics.tenantSheds.Add(1)
	case errors.As(err, &quarantined):
		s.metrics.programsQuarantined.Add(1)
	case errors.As(err, &rejected), errors.As(err, &src):
		s.metrics.programsRejected.Add(1)
	}
}

// InstallProgram installs an already-validated program replica from a peer
// (the gateway replicates accepted programs across the fleet on scatter)
// and returns the resident copy — assembly rebuilt from source, budgets
// clamped to this shard's own limits. The registry re-derives the content
// hash, so a forged replica — source that doesn't hash to its claimed ID —
// is refused with a typed rejection; replication never widens the
// validation wall, and it rides the registry's install-rate and per-tenant
// quotas like any other write.
func (s *Service) InstallProgram(p *workload.Program) (*workload.Program, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	s.metrics.requests.Add(1)
	installed, err := s.programs.Install(p)
	if err != nil {
		var quota *workload.QuotaError
		if errors.As(err, &quota) {
			s.metrics.tenantSheds.Add(1)
		} else {
			s.metrics.invalid.Add(1)
		}
		return nil, err
	}
	return installed, nil
}

// GetProgram looks up an accepted program by "user:<id>" name or bare id.
func (s *Service) GetProgram(name string) (*workload.Program, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	return s.programs.Get(name)
}

// ProgramInfo is the list view of an accepted program — everything but the
// source texts.
type ProgramInfo struct {
	Name     string `json:"name"`
	Tenant   string `json:"tenant"`
	Lang     string `json:"lang"`
	Insts    uint64 `json:"insts"`
	Checksum uint32 `json:"checksum"`
}

// ListPrograms summarizes the resident registry, most recently used first.
func (s *Service) ListPrograms() []ProgramInfo {
	ps := s.programs.List()
	out := make([]ProgramInfo, 0, len(ps))
	for _, p := range ps {
		out = append(out, ProgramInfo{
			Name: p.Name, Tenant: p.Tenant, Lang: p.Lang,
			Insts: p.Insts, Checksum: p.Checksum,
		})
	}
	return out
}
