package simsvc

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/pipeline"
)

func TestSuiteEvaluation(t *testing.T) {
	s := testService(t, Config{Workers: 4}, "g711dec", "g711enc")
	resp, err := s.Suite(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Suite == nil {
		t.Fatal("suite payload missing")
	}
	if got := len(resp.Suite.Benchmarks); got != 2 {
		t.Fatalf("suite benchmarks = %d, want 2", got)
	}
	// Benchmarks must appear in served-suite order regardless of which
	// worker finished first.
	if resp.Suite.Benchmarks[0].Name != "g711dec" || resp.Suite.Benchmarks[1].Name != "g711enc" {
		t.Fatalf("suite order: %s, %s", resp.Suite.Benchmarks[0].Name, resp.Suite.Benchmarks[1].Name)
	}
	for _, b := range resp.Suite.Benchmarks {
		if _, ok := b.CPI[pipeline.NameBaseline32]; !ok {
			t.Errorf("benchmark %s missing baseline CPI", b.Name)
		}
	}
	if len(resp.Suite.Patterns) == 0 || len(resp.Suite.Functs) == 0 || len(resp.Suite.Partitions) == 0 {
		t.Error("merged suite-level collectors missing from payload")
	}
	if len(resp.Suite.BMGating) != 2 {
		t.Errorf("BM gating rows = %d, want 2", len(resp.Suite.BMGating))
	}
	if resp.Suite.Fetch.MeanBytes <= 3 || resp.Suite.Fetch.MeanBytes > 4 {
		t.Errorf("mean fetch bytes %.2f outside (3,4]", resp.Suite.Fetch.MeanBytes)
	}
	if resp.Insts == 0 {
		t.Error("total instruction count missing")
	}

	// A repeat call is a pure cache hit: no new executions.
	before := s.Metrics().Snapshot().Executions
	resp2, err := s.Suite(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Fatal("repeat suite evaluation was not served from cache")
	}
	if after := s.Metrics().Snapshot().Executions; after != before {
		t.Fatalf("repeat suite evaluation re-executed: %d -> %d", before, after)
	}
}

// Concurrent suite requests share one underlying evaluation via
// singleflight.
func TestSuiteSingleflight(t *testing.T) {
	s := testService(t, Config{Workers: 4}, "g711dec", "g711enc")
	const clients = 6
	start := make(chan struct{})
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, errs[i] = s.Suite(context.Background())
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	// One evaluation over two benchmarks = exactly two executions.
	if m := s.Metrics().Snapshot(); m.Executions != 2 {
		t.Fatalf("executions = %d, want 2 (one evaluation, two benchmarks)", m.Executions)
	}
}

// A benchmark failure aborts the suite evaluation with the root cause and
// caches nothing.
func TestSuiteFirstErrorCancels(t *testing.T) {
	s := testService(t, Config{Workers: 2}, "g711dec", "g711enc")
	boom := errors.New("injected benchmark failure")
	s.failHook = func(req Request) error {
		if req.Bench == "g711enc" {
			return boom
		}
		return nil
	}
	if _, err := s.Suite(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if s.CacheLen() != 0 {
		t.Fatal("failed suite evaluation was cached")
	}
	// Clearing the fault must let a later call succeed (errors not latched).
	s.failHook = nil
	resp, err := s.Suite(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Suite == nil || len(resp.Suite.Benchmarks) != 2 {
		t.Fatal("retry after failure did not produce a full evaluation")
	}
}

func TestSuiteAfterClose(t *testing.T) {
	s := testService(t, Config{})
	s.Close()
	if _, err := s.Suite(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestHTTPSuite(t *testing.T) {
	_, srv := testServer(t, "g711dec", "g711enc")
	var resp Response
	if r := getJSON(t, srv.URL+"/v1/suite", &resp); r.StatusCode != 200 {
		t.Fatalf("suite status %d", r.StatusCode)
	}
	if resp.Suite == nil || len(resp.Suite.Benchmarks) != 2 {
		t.Fatalf("suite payload: %+v", resp.Suite)
	}
	if len(resp.Suite.Patterns) == 0 {
		t.Fatal("suite pattern profile missing over HTTP")
	}
	// Compressed-frontend schema pin: every benchmark carries fetch-unit
	// accounting for the byte-fetch models, the raw 4 B/cycle model matches
	// the word-fetch baseline exactly, and the suite-level frontend profile
	// is populated.
	for _, b := range resp.Suite.Benchmarks {
		if b.CPI[pipeline.NameByteFetch4Raw] != b.CPI[pipeline.NameBaseline32] {
			t.Errorf("%s: bytefetch4-raw CPI %v != baseline32 %v over HTTP",
				b.Name, b.CPI[pipeline.NameByteFetch4Raw], b.CPI[pipeline.NameBaseline32])
		}
		fu, ok := b.FetchUnits[pipeline.NameDualCompress4]
		if !ok {
			t.Fatalf("%s: fetchUnits section missing dualc4", b.Name)
		}
		if fu.BytesPerCycle != 4 || fu.IssueCycles == 0 || fu.IntoDecodeIPC <= 1.0 {
			t.Errorf("%s: dualc4 fetch unit %+v", b.Name, fu)
		}
	}
	if resp.Suite.Frontend.CompressedShare <= 0 || resp.Suite.Frontend.MeanRunLength <= 0 {
		t.Errorf("compressedFrontend section degenerate: %+v", resp.Suite.Frontend)
	}
}
