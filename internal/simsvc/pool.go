package simsvc

import (
	"context"
	"errors"
	"sync"
)

// ErrClosed is returned for work submitted after the service shut down.
var ErrClosed = errors.New("simsvc: service closed")

// pool is a bounded worker pool: a fixed set of goroutines draining an
// unbuffered job queue, so at most `workers` simulations run at once no
// matter how many requests are in flight.
type pool struct {
	jobs chan func()
	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

func newPool(workers int) *pool {
	p := &pool{jobs: make(chan func()), quit: make(chan struct{})}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case fn := <-p.jobs:
					fn()
				case <-p.quit:
					return
				}
			}
		}()
	}
	return p
}

// do hands fn to a worker and waits for it to finish. It gives up (without
// running fn) when ctx is cancelled or the pool closes before a worker
// becomes free.
func (p *pool) do(ctx context.Context, fn func()) error {
	done := make(chan struct{})
	wrapped := func() {
		defer close(done)
		fn()
	}
	select {
	case p.jobs <- wrapped: // unbuffered: a worker has accepted the job
	case <-p.quit:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
	<-done
	return nil
}

// close stops the workers after their current jobs finish.
func (p *pool) close() {
	p.once.Do(func() {
		close(p.quit)
		p.wg.Wait()
	})
}
