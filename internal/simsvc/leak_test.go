package simsvc

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// checkLeaks snapshots the goroutine count and fails the test if, after all
// later-registered cleanups (service Close, server shutdown) have run, the
// count has not returned to the baseline. Call it FIRST in a test — before
// building services or servers — so its cleanup runs last. Transient
// runtime/testing goroutines get a small slack and a settling grace period.
func checkLeaks(t *testing.T) {
	t.Helper()
	const slack = 3
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var now int
		for {
			runtime.GC() // flush finalizer-held conns etc.
			now = runtime.NumGoroutine()
			if now <= before+slack {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d before, %d after (slack %d)\n%s", before, now, slack, buf)
	})
}

// The plain service lifecycle must not leak: create, hammer concurrently
// (hits, misses, failures, cancellations), close, count goroutines.
func TestLeakServiceLifecycle(t *testing.T) {
	checkLeaks(t)
	s := testService(t, Config{Workers: 4})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%4 == 3 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithCancel(context.Background())
				cancel()
			}
			req := Request{Bench: "g711dec", Model: pipeline.NameBaseline32}
			if i%4 == 2 {
				req.Model = "nope" // invalid
			}
			s.Simulate(ctx, req)
		}(i)
	}
	wg.Wait()
	s.Close()
}

// Close must drain in-flight work: a request racing Close either completes
// or gets ErrClosed, and nothing is left running after Close returns.
func TestLeakCloseDrainsInflight(t *testing.T) {
	checkLeaks(t)
	s := testService(t, Config{Workers: 2})
	started := make(chan struct{})
	s.failHook = func(Request) error {
		close(started)
		time.Sleep(50 * time.Millisecond) // keep the job in flight across Close
		return nil
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Simulate(context.Background(), Request{Bench: "g711dec", Model: pipeline.NameBaseline32})
		done <- err
	}()
	<-started
	s.Close() // must block until the in-flight job finishes
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("in-flight request during Close: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("request did not finish after Close returned")
	}
	if _, err := s.Simulate(context.Background(), Request{Bench: "g711dec", Model: pipeline.NameBaseline32}); err != ErrClosed {
		t.Fatalf("post-Close request err = %v, want ErrClosed", err)
	}
}
