package simsvc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/pipeline"
)

// A partial failure must restrict every model's mean to the benchmarks
// where all models succeeded, so the means stay comparable.
func TestSweepPartialFailureAggregation(t *testing.T) {
	s := testService(t, Config{Workers: 4}, "g711dec", "g711enc")
	boom := errors.New("injected failure")
	s.failHook = func(req Request) error {
		if req.Bench == "g711enc" && req.Model == pipeline.NameByteSerial {
			return boom
		}
		return nil
	}
	models := []string{pipeline.NameBaseline32, pipeline.NameByteSerial}
	sum, err := s.Sweep(context.Background(), 1, nil, models, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 1 {
		t.Fatalf("failed = %d, want 1", sum.Failed)
	}
	if got := sum.FailedByModel[pipeline.NameByteSerial]; got != 1 {
		t.Fatalf("failedByModel[byteserial] = %d, want 1", got)
	}
	if sum.CompleteBenches != 1 {
		t.Fatalf("completeBenchmarks = %d, want 1 (only g711dec fully succeeded)", sum.CompleteBenches)
	}

	// Both means must cover exactly the complete subset {g711dec}: the
	// baseline mean may NOT include its g711enc result even though that
	// job succeeded, or the models would be averaged over different
	// benchmark sets.
	s.failHook = nil
	ref, err := s.Simulate(context.Background(), Request{Bench: "g711dec", Model: pipeline.NameBaseline32, Gran: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.MeanCPI[pipeline.NameBaseline32]; math.Abs(got-ref.CPI) > 1e-12 {
		t.Fatalf("baseline mean %v includes failed-model benchmarks; want g711dec-only %v", got, ref.CPI)
	}
	if _, ok := sum.MeanCPI[pipeline.NameByteSerial]; !ok {
		t.Fatal("byteserial mean missing despite one complete benchmark")
	}

	// The failed cell renders as "err"; the AVG row stays numeric.
	rows := sum.CPITable.Rows
	if len(rows) != 3 {
		t.Fatalf("table rows = %d, want 3", len(rows))
	}
	for _, row := range rows {
		if row[0] == "g711enc" && row[2] != "err" {
			t.Fatalf("failed cell rendered %q, want err", row[2])
		}
	}
}

// A model that fails everywhere leaves no common benchmark subset: every
// mean is withheld (rendered "err"), never a fake 0.000.
func TestSweepFullyFailedModel(t *testing.T) {
	s := testService(t, Config{Workers: 4}, "g711dec", "g711enc")
	s.failHook = func(req Request) error {
		if req.Model == pipeline.NameByteSerial {
			return fmt.Errorf("model %s broken", req.Model)
		}
		return nil
	}
	models := []string{pipeline.NameBaseline32, pipeline.NameByteSerial}
	sum, err := s.Sweep(context.Background(), 1, nil, models, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 2 || sum.FailedByModel[pipeline.NameByteSerial] != 2 {
		t.Fatalf("failed = %d, failedByModel = %v", sum.Failed, sum.FailedByModel)
	}
	if sum.CompleteBenches != 0 {
		t.Fatalf("completeBenchmarks = %d, want 0", sum.CompleteBenches)
	}
	if len(sum.MeanCPI) != 0 {
		t.Fatalf("meanCPI = %v, want empty (no comparable subset)", sum.MeanCPI)
	}
	avg := sum.CPITable.Rows[len(sum.CPITable.Rows)-1]
	if avg[0] != "AVG" || avg[1] != "err" || avg[2] != "err" {
		t.Fatalf("AVG row = %v, want all err", avg)
	}
}
