package simsvc

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/pipeline"
)

// newTestServer serves an existing Service over HTTP, closing both the
// listener and any kept-alive client connections on cleanup (so the
// goroutine-leak checker sees a quiet baseline).
func newTestServer(t *testing.T, s *Service) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		srv.Close()
		http.DefaultClient.CloseIdleConnections()
	})
	return srv
}

func testServer(t *testing.T, benchNames ...string) (*Service, *httptest.Server) {
	t.Helper()
	s := testService(t, Config{Workers: 4}, benchNames...)
	return s, newTestServer(t, s)
}

func getJSON(t *testing.T, url string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v\n%s", url, err, body)
		}
	}
	return resp
}

func TestHTTPHealthAndCatalog(t *testing.T) {
	_, srv := testServer(t)

	var health struct {
		Status string `json:"status"`
	}
	if resp := getJSON(t, srv.URL+"/healthz", &health); resp.StatusCode != 200 || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}

	var models []string
	getJSON(t, srv.URL+"/v1/models", &models)
	if len(models) != len(pipeline.AllNames()) {
		t.Fatalf("models: %v", models)
	}

	var benches []struct {
		Name        string `json:"name"`
		Description string `json:"description"`
	}
	getJSON(t, srv.URL+"/v1/benchmarks", &benches)
	if len(benches) != 1 || benches[0].Name != "g711dec" || benches[0].Description == "" {
		t.Fatalf("benchmarks: %+v", benches)
	}
}

func TestHTTPSimulate(t *testing.T) {
	_, srv := testServer(t)
	url := srv.URL + "/v1/simulate?bench=g711dec&model=" + pipeline.NameBaseline32

	var first Response
	if resp := getJSON(t, url, &first); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if first.CPI <= 0 || first.Cached {
		t.Fatalf("first: %+v", first)
	}

	var second Response
	getJSON(t, url, &second)
	if !second.Cached {
		t.Fatal("second request not served from cache")
	}
	if second.CPI != first.CPI || second.Cycles != first.Cycles {
		t.Fatal("cached result differs")
	}

	// POST body form of the same request is the same cache entry.
	body, _ := json.Marshal(Request{Bench: "g711dec", Model: pipeline.NameBaseline32})
	resp, err := http.Post(srv.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var third Response
	if err := json.NewDecoder(resp.Body).Decode(&third); err != nil {
		t.Fatal(err)
	}
	if !third.Cached {
		t.Fatal("POST request missed the cache")
	}

	var metrics struct {
		Snapshot
		Workers      int `json:"workers"`
		CacheEntries int `json:"cacheEntries"`
	}
	getJSON(t, srv.URL+"/metrics", &metrics)
	if metrics.Executions != 1 || metrics.CacheHits != 2 || metrics.CacheEntries != 1 {
		t.Fatalf("metrics: %+v", metrics)
	}
	if metrics.Workers != 4 {
		t.Fatalf("workers = %d", metrics.Workers)
	}
}

func TestHTTPSimulateErrors(t *testing.T) {
	_, srv := testServer(t)
	cases := map[string]int{
		"/v1/simulate?bench=nope":                            http.StatusBadRequest,
		"/v1/simulate?bench=g711dec&model=nope":              http.StatusBadRequest,
		"/v1/simulate?bench=g711dec&gran=9&model=baseline32": http.StatusBadRequest,
		"/v1/simulate?bench=g711dec&gran=x&model=baseline32": http.StatusBadRequest,
	}
	for url, want := range cases {
		var e struct {
			Error string `json:"error"`
		}
		if resp := getJSON(t, srv.URL+url, &e); resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", url, resp.StatusCode, want)
		} else if e.Error == "" {
			t.Errorf("%s: no error body", url)
		}
	}
}

// POST bodies are bounded at 1 MiB (413) and unknown JSON fields are
// rejected (400), both with the standard error envelope.
func TestHTTPPostBodyHardening(t *testing.T) {
	_, srv := testServer(t)

	post := func(body []byte) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, string(b)
	}

	// Oversized body: 413 with the error envelope.
	huge := append([]byte(`{"bench":"`), bytes.Repeat([]byte("x"), maxSimulateBody+1024)...)
	huge = append(huge, []byte(`"}`)...)
	resp, body := post(huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
		t.Fatalf("413 body %q is not the error envelope", body)
	}

	// Unknown field: 400.
	resp, body = post([]byte(`{"bench":"g711dec","model":"baseline32","bogus":1}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, "bogus") {
		t.Fatalf("400 body %q does not name the unknown field", body)
	}

	// A max-size-compliant valid body still works.
	resp, body = post([]byte(`{"bench":"g711dec","model":"baseline32"}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid body: status %d (%s)", resp.StatusCode, body)
	}
}

// The /metrics snapshot schema is pinned: fields must not silently vanish
// (dashboards and the chaos suite both key off them).
func TestHTTPMetricsSchema(t *testing.T) {
	_, srv := testServer(t)
	var m map[string]interface{}
	if resp := getJSON(t, srv.URL+"/metrics", &m); resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	want := []string{
		"requests", "cacheHits", "cacheMisses", "cacheEvictions",
		"executions", "flightShared", "failures", "invalidRequests",
		"panics", "shed", "retries", "breakerOpen", "queuedDepth",
		"programsAccepted", "programsRejected", "programsQuarantined",
		"tenantSheds",
		"captures", "traceCacheHits", "traceCacheMisses",
		"traceCacheEvictions", "traceCacheBytes",
		"traceSpills", "traceSpillLoads", "traceMapLoads",
		"simulationLatency", "workers", "cacheEntries",
		"traceMappedEntries", "uptimeSeconds",
	}
	for _, k := range want {
		if _, ok := m[k]; !ok {
			t.Errorf("/metrics missing field %q", k)
		}
	}
	if len(m) != len(want) {
		t.Errorf("/metrics has %d fields, schema pins %d: %v", len(m), len(want), m)
	}
	lat, ok := m["simulationLatency"].(map[string]interface{})
	if !ok {
		t.Fatalf("simulationLatency is %T", m["simulationLatency"])
	}
	for _, k := range []string{"count", "meanMillis", "minMillis", "maxMillis"} {
		if _, ok := lat[k]; !ok {
			t.Errorf("simulationLatency missing %q", k)
		}
	}
}

// Model names contain a literal '+' ("skewed+bypass"); both the
// percent-encoded and the naive form must resolve to the same model.
func TestHTTPModelPlusEncoding(t *testing.T) {
	_, srv := testServer(t)
	for _, q := range []string{"skewed%2Bbypass", "skewed+bypass"} {
		var r Response
		if resp := getJSON(t, srv.URL+"/v1/simulate?bench=g711dec&model="+q, &r); resp.StatusCode != 200 {
			t.Errorf("model=%s: status %d", q, resp.StatusCode)
		} else if r.Model != pipeline.NameParallelSkewedBypass {
			t.Errorf("model=%s resolved to %q", q, r.Model)
		}
	}
}

func TestHTTPSweepNDJSON(t *testing.T) {
	_, srv := testServer(t, "g711dec", "g711enc")
	models := pipeline.NameBaseline32 + "," + pipeline.NameByteSerial
	resp, err := http.Get(srv.URL + "/v1/sweep?model=" + models)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	var jobs []Response
	var summary *SweepSummary
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var wrapped struct {
			Summary *SweepSummary `json:"summary"`
		}
		if err := json.Unmarshal(line, &wrapped); err == nil && wrapped.Summary != nil {
			summary = wrapped.Summary
			continue
		}
		var r Response
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("bad line %s: %v", line, err)
		}
		jobs = append(jobs, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("streamed %d jobs, want 4", len(jobs))
	}
	for _, j := range jobs {
		if j.Error != "" || j.CPI <= 0 {
			t.Fatalf("bad job line: %+v", j)
		}
	}
	if summary == nil {
		t.Fatal("no summary line")
	}
	if summary.Jobs != 4 || summary.Failed != 0 {
		t.Fatalf("summary: %+v", summary)
	}
	if summary.CPITable.Title == "" || len(summary.CPITable.Rows) != 3 {
		t.Fatalf("summary table: %+v", summary.CPITable)
	}
}

func TestHTTPSweepBadRequest(t *testing.T) {
	_, srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/sweep?model=nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// Eight-plus concurrent HTTP clients on one key: the HTTP layer must ride
// the same singleflight path as direct Simulate calls.
func TestHTTPConcurrentSimulate(t *testing.T) {
	s, srv := testServer(t)
	url := fmt.Sprintf("%s/v1/simulate?bench=g711dec&model=%s", srv.URL, pipeline.NameByteSerial)
	const clients = 8
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			resp, err := http.Get(url)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				body, _ := io.ReadAll(resp.Body)
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if m := s.Metrics().Snapshot(); m.Executions != 1 {
		t.Fatalf("executions = %d, want 1", m.Executions)
	}
}
