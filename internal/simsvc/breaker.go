package simsvc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// DefaultBreakerCooldown is how long an open circuit quarantines its
// (bench, model) key before letting a single probe through.
const DefaultBreakerCooldown = 30 * time.Second

// QuarantinedError reports a job rejected without execution because its
// (bench, model) circuit breaker is open; the HTTP layer maps it to 503 +
// Retry-After.
type QuarantinedError struct {
	Key        string
	RetryAfter time.Duration
}

func (e *QuarantinedError) Error() string {
	return fmt.Sprintf("simsvc: %s quarantined by circuit breaker, retry in %v", e.Key, e.RetryAfter.Round(time.Second))
}

// breaker is a per-key circuit breaker: a key that fails `threshold`
// consecutive times is quarantined for `cooldown`, after which one probe
// request is let through — success closes the circuit, failure re-opens it.
// It keeps repeatedly failing (bench, model) jobs from burning pool workers
// while healthy keys keep being served. A nil *breaker (threshold <= 0)
// allows everything.
type breaker struct {
	threshold int
	cooldown  time.Duration
	m         *Metrics
	now       func() time.Time // test seam

	mu      sync.Mutex
	entries map[string]*breakerEntry
}

type breakerEntry struct {
	fails    int       // consecutive failures
	openedAt time.Time // set when fails reaches threshold
	probing  bool      // one half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration, m *Metrics) *breaker {
	if threshold <= 0 {
		return nil
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		m:         m,
		now:       time.Now,
		entries:   make(map[string]*breakerEntry),
	}
}

// allow reports whether a job for key may execute now. An open circuit
// rejects with *QuarantinedError until cooldown passes, then admits exactly
// one probe at a time.
func (b *breaker) allow(key string) error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil || e.fails < b.threshold {
		return nil
	}
	since := b.now().Sub(e.openedAt)
	if since >= b.cooldown && !e.probing {
		e.probing = true
		return nil
	}
	retry := b.cooldown - since
	if retry < time.Second {
		retry = time.Second
	}
	return &QuarantinedError{Key: key, RetryAfter: retry}
}

// record feeds one execution outcome back. Cancellations, shutdowns and
// shed submissions are neutral: they say nothing about the job itself, so
// they neither trip nor reset the circuit (but they do release a pending
// probe slot).
func (b *breaker) record(key string, err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrOverloaded) || errors.Is(err, ErrClosed)) {
		if e != nil {
			e.probing = false
		}
		return
	}
	if err == nil {
		delete(b.entries, key)
		return
	}
	if e == nil {
		e = &breakerEntry{}
		b.entries[key] = e
	}
	wasOpen := e.fails >= b.threshold
	e.fails++
	e.probing = false
	if e.fails >= b.threshold {
		e.openedAt = b.now()
		if !wasOpen {
			b.m.breakerOpen.Add(1)
		}
	}
}
