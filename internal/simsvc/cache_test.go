package simsvc

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	r := func(name string) *Response { return &Response{Bench: name} }
	if evicted := c.add("a", r("a")); evicted {
		t.Fatal("eviction below capacity")
	}
	c.add("b", r("b"))
	// Touch a so b becomes the LRU victim.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	if evicted := c.add("c", r("c")); !evicted {
		t.Fatal("no eviction above capacity")
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived, but it was least recently used")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLRUOverwrite(t *testing.T) {
	c := newLRU(2)
	c.add("a", &Response{Bench: "old"})
	c.add("a", &Response{Bench: "new"})
	got, ok := c.get("a")
	if !ok || got.Bench != "new" {
		t.Fatalf("got %+v", got)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRU(8)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				k := fmt.Sprintf("k%d", (i+j)%12)
				c.add(k, &Response{Bench: k})
				if resp, ok := c.get(k); ok && resp.Bench != k {
					t.Errorf("key %s returned %s", k, resp.Bench)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.len() > 8 {
		t.Fatalf("len = %d exceeds capacity", c.len())
	}
}
