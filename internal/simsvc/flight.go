package simsvc

import (
	"context"
	"sync"

	"repro/internal/faultinject"
)

// flightGroup deduplicates concurrent work by key (a minimal singleflight):
// the first caller for a key becomes the leader and runs fn; callers that
// arrive while the leader is in flight wait for its result instead of
// re-running the simulation. Followers stop waiting when their own context
// is cancelled; the leader's execution is governed by the leader's context.
type flightGroup struct {
	faults *faultinject.Injector
	mu     sync.Mutex
	calls  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	resp *Response
	err  error
}

func newFlightGroup(faults *faultinject.Injector) *flightGroup {
	return &flightGroup{faults: faults, calls: make(map[string]*flightCall)}
}

// do runs fn once per in-flight key. It returns the result, and shared=true
// when this caller waited on another caller's execution.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*Response, error)) (resp *Response, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		// A fault at the join seam fails only this follower; the leader's
		// execution (and every other waiter) is untouched.
		if err := g.faults.Fire(ctx, faultinject.PointFlightJoin); err != nil {
			return nil, true, err
		}
		select {
		case <-c.done:
			return c.resp, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.resp, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.resp, false, c.err
}
