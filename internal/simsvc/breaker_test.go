package simsvc

import (
	"context"
	"errors"
	"testing"
	"time"
)

func testBreaker(threshold int, cooldown time.Duration) (*breaker, *time.Time, *Metrics) {
	m := &Metrics{}
	b := newBreaker(threshold, cooldown, m)
	now := time.Unix(1000, 0)
	if b != nil {
		b.now = func() time.Time { return now }
	}
	return b, &now, m
}

func TestBreakerDisabled(t *testing.T) {
	b, _, _ := testBreaker(0, time.Minute)
	if b != nil {
		t.Fatal("threshold 0 built a live breaker")
	}
	if err := b.allow("k"); err != nil {
		t.Fatalf("nil breaker rejected: %v", err)
	}
	b.record("k", errors.New("boom")) // must not panic
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _, m := testBreaker(3, time.Minute)
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		if err := b.allow("k"); err != nil {
			t.Fatalf("rejected below threshold at %d: %v", i, err)
		}
		b.record("k", boom)
	}
	if m.breakerOpen.Load() != 0 {
		t.Fatal("breaker opened below threshold")
	}
	b.record("k", boom) // third consecutive failure
	var q *QuarantinedError
	if err := b.allow("k"); !errors.As(err, &q) {
		t.Fatalf("err = %v, want QuarantinedError", err)
	} else if q.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v", q.RetryAfter)
	}
	if m.breakerOpen.Load() != 1 {
		t.Fatalf("breakerOpen = %d, want 1", m.breakerOpen.Load())
	}
	// Other keys are unaffected.
	if err := b.allow("other"); err != nil {
		t.Fatalf("healthy key rejected: %v", err)
	}
}

func TestBreakerSuccessResets(t *testing.T) {
	b, _, m := testBreaker(2, time.Minute)
	boom := errors.New("boom")
	b.record("k", boom)
	b.record("k", nil) // success wipes the streak
	b.record("k", boom)
	if err := b.allow("k"); err != nil {
		t.Fatalf("breaker counted a non-consecutive streak: %v", err)
	}
	if m.breakerOpen.Load() != 0 {
		t.Fatal("breaker opened on interrupted streak")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, now, m := testBreaker(2, time.Minute)
	boom := errors.New("boom")
	b.record("k", boom)
	b.record("k", boom)
	if err := b.allow("k"); err == nil {
		t.Fatal("open breaker allowed")
	}

	*now = now.Add(2 * time.Minute) // cooldown passed
	if err := b.allow("k"); err != nil {
		t.Fatalf("probe not admitted after cooldown: %v", err)
	}
	// Only one probe at a time.
	if err := b.allow("k"); err == nil {
		t.Fatal("second concurrent probe admitted")
	}

	// Probe fails: circuit re-opens for a fresh cooldown (no new
	// open-transition count — it never closed).
	b.record("k", boom)
	if err := b.allow("k"); err == nil {
		t.Fatal("breaker admitted right after failed probe")
	}
	if m.breakerOpen.Load() != 1 {
		t.Fatalf("breakerOpen = %d, want 1 (re-open is not a new transition)", m.breakerOpen.Load())
	}

	// Next probe succeeds: circuit closes fully.
	*now = now.Add(2 * time.Minute)
	if err := b.allow("k"); err != nil {
		t.Fatalf("probe after re-open: %v", err)
	}
	b.record("k", nil)
	for i := 0; i < 3; i++ {
		if err := b.allow("k"); err != nil {
			t.Fatalf("closed breaker rejected: %v", err)
		}
	}
}

// Cancellations, shutdown and shedding say nothing about the job: they
// neither trip the breaker nor burn the probe slot permanently.
func TestBreakerNeutralErrors(t *testing.T) {
	b, now, _ := testBreaker(2, time.Minute)
	for _, err := range []error{context.Canceled, context.DeadlineExceeded, ErrOverloaded, ErrClosed} {
		b.record("k", err)
		b.record("k", err)
		if got := b.allow("k"); got != nil {
			t.Fatalf("neutral error %v tripped the breaker: %v", err, got)
		}
	}

	boom := errors.New("boom")
	b.record("k", boom)
	b.record("k", boom)
	*now = now.Add(2 * time.Minute)
	if err := b.allow("k"); err != nil {
		t.Fatalf("probe not admitted: %v", err)
	}
	// Probe outcome is a cancellation: slot must be released so a later
	// probe can still close the circuit.
	b.record("k", context.Canceled)
	if err := b.allow("k"); err != nil {
		t.Fatalf("probe slot leaked after neutral outcome: %v", err)
	}
}
